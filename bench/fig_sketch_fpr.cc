// E1 — Cache Sketch sizing: measured vs. analytic false-positive rate
// across entry counts, bits/entry and hash counts.
//
// Reproduces the Bloom-filter sizing analysis behind the Cache Sketch
// (companion BTW'15 paper, filter-dimensioning figure): measured FPR must
// track the analytic curve, the optimal k must sit at the minimum, and a
// sketch false positive only ever costs an unnecessary revalidation.
#include <cmath>
#include <string>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "sketch/bloom_filter.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

std::string Key(size_t i) {
  return "https://shop.example.com/api/records/p" + std::to_string(i);
}

double MeasureFpr(const sketch::BloomFilter& filter, size_t inserted,
                  int probes) {
  int false_positives = 0;
  for (int i = 0; i < probes; ++i) {
    if (filter.MightContain("absent/" + std::to_string(i) + "/" +
                            std::to_string(inserted))) {
      ++false_positives;
    }
  }
  return static_cast<double>(false_positives) / probes;
}

double AnalyticFpr(size_t bits, int k, size_t n) {
  double exponent = -static_cast<double>(k) * static_cast<double>(n) /
                    static_cast<double>(bits);
  return std::pow(1.0 - std::exp(exponent), k);
}

void SweepBitsPerKey(bench::JsonValue* rows) {
  bench::PrintSection("FPR vs bits/entry (k = optimal), n stale entries");
  bench::Row("%8s %10s %4s %12s %12s %12s", "n", "bits/key", "k", "measured",
             "analytic", "snapshot_B");
  for (size_t n : {1000u, 10000u, 100000u}) {
    for (int bits_per_key : {4, 8, 12, 16, 20}) {
      size_t bits = n * static_cast<size_t>(bits_per_key);
      int k = sketch::BloomFilter::OptimalHashes(bits, n);
      sketch::BloomFilter filter(bits, k);
      for (size_t i = 0; i < n; ++i) filter.Add(Key(i));
      double measured = MeasureFpr(filter, n, 200000);
      double analytic = AnalyticFpr(filter.bits(), k, n);
      bench::Row("%8zu %10d %4d %11.4f%% %11.4f%% %12zu", n, bits_per_key, k,
                 measured * 100, analytic * 100, filter.SizeBytes() + 8);
      rows->Push(bench::JsonRow(
          {{"section", "bits_per_key"},
           {"n", static_cast<uint64_t>(n)},
           {"bits_per_key", bits_per_key},
           {"k", k},
           {"measured_fpr", measured},
           {"analytic_fpr", analytic},
           {"snapshot_bytes", static_cast<uint64_t>(filter.SizeBytes() + 8)}}));
    }
  }
}

void SweepHashCount(bench::JsonValue* rows) {
  bench::PrintSection("FPR vs hash count at fixed 10 bits/entry (n=10000)");
  constexpr size_t kN = 10000;
  constexpr size_t kBits = kN * 10;
  bench::Row("%4s %12s %12s", "k", "measured", "analytic");
  for (int k = 1; k <= 12; ++k) {
    sketch::BloomFilter filter(kBits, k);
    for (size_t i = 0; i < kN; ++i) filter.Add(Key(i));
    double measured = MeasureFpr(filter, kN, 200000);
    double analytic = AnalyticFpr(filter.bits(), k, kN);
    bench::Row("%4d %11.4f%% %11.4f%%", k, measured * 100, analytic * 100);
    rows->Push(bench::JsonRow({{"section", "hash_count"},
                               {"k", k},
                               {"measured_fpr", measured},
                               {"analytic_fpr", analytic}}));
  }
  bench::Note("minimum should fall near k = 10 * ln2 ~ 7");
}

void SweepTargetFpr(bench::JsonValue* rows) {
  bench::PrintSection("auto-sizing ForCapacity(n, p): achieved vs requested");
  bench::Row("%8s %10s %12s %12s %12s", "n", "target", "measured", "bits/key",
             "snapshot_B");
  for (size_t n : {1000u, 20000u}) {
    for (double p : {0.2, 0.1, 0.05, 0.01, 0.001}) {
      sketch::BloomFilter filter = sketch::BloomFilter::ForCapacity(n, p);
      for (size_t i = 0; i < n; ++i) filter.Add(Key(i));
      double measured = MeasureFpr(filter, n, 200000);
      bench::Row("%8zu %9.3f%% %11.4f%% %12.1f %12zu", n, p * 100,
                 measured * 100, static_cast<double>(filter.bits()) / n,
                 filter.SizeBytes() + 8);
      rows->Push(bench::JsonRow(
          {{"section", "target_fpr"},
           {"n", static_cast<uint64_t>(n)},
           {"target_fpr", p},
           {"measured_fpr", measured},
           {"bits_per_key", static_cast<double>(filter.bits()) / n},
           {"snapshot_bytes", static_cast<uint64_t>(filter.SizeBytes() + 8)}}));
    }
  }
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "sketch_fpr");

  speedkit::bench::PrintHeader(
      "E1", "Cache Sketch false-positive rate vs sizing",
      "Bloom-filter dimensioning of the Cache Sketch (coherence protocol "
      "overhead knob)");
  speedkit::bench::JsonValue rows = speedkit::bench::JsonValue::Array();
  speedkit::SweepBitsPerKey(&rows);
  speedkit::SweepHashCount(&rows);
  speedkit::SweepTargetFpr(&rows);
  if (!json_path.empty()) {
    speedkit::bench::JsonValue root = speedkit::bench::JsonValue::Object();
    root.Set("bench", "sketch_fpr");
    root.Set("rows", std::move(rows));
    speedkit::bench::WriteJsonFile(json_path, root);
  }
  return 0;
}
