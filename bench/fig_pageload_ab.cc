// E5 — Page load time A/B: Speed Kit on vs. off, per customer profile.
//
// Reproduces the paper's headline field result (">1 year of productive use
// in the e-commerce industry"): full page loads — shell, assets, API
// calls, personalized blocks — for three customer profiles, with the
// accelerated arm (service worker + sketch + CDN + estimated TTLs) and the
// vanilla arm (origin + CDN for statics, dynamic content uncacheable)
// driven by identically-seeded session streams. The paper reports ~1.5-3x
// speedups at the percentiles; the shape to reproduce is "Speed Kit wins
// at every percentile, most at the median".
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "core/bounce.h"
#include "core/page_load.h"
#include "core/stack.h"
#include "tools/flags.h"
#include "workload/session.h"
#include "workload/write_process.h"

namespace speedkit {
namespace {

// Each profile describes the page mix AND the customer's pre-Speed-Kit
// infrastructure — the paper's field speedups vary per customer exactly
// because the baselines differ (origin-only shops gain most; sites that
// already run a CDN and tolerate stale HTML gain least).
struct Profile {
  std::string name;
  size_t num_products;
  int shared_assets;
  int product_images;
  double writes_per_sec;
  int user_blocks;
  int segment_blocks;
  bool vanilla_has_cdn;          // does the baseline site run a CDN?
  Duration vanilla_dynamic_ttl;  // baseline TTL on HTML/API (0 = no-cache)
};

const Profile kProfiles[] = {
    // Mid-size shop serving everything from its origin; HTML and API
    // uncacheable (personalized, no coherence).
    {"fashion-shop", 5000, 12, 8, 1.0, 1, 2, false, Duration::Zero()},
    // Large marketplace: CDN in place for statics, but dynamic content is
    // no-cache because prices change constantly.
    {"marketplace", 20000, 24, 4, 6.0, 2, 2, true, Duration::Zero()},
    // Publisher: CDN plus short fixed TTLs on articles (they accept some
    // staleness) — the weakest case for additional acceleration.
    {"publisher", 2000, 15, 2, 0.2, 0, 1, true, Duration::Seconds(120)},
};

struct ArmResult {
  Histogram load_ms;
  Histogram ttfb_ms;
  uint64_t page_views = 0;
  uint64_t origin_requests = 0;
  double cache_share = 0;
  double stale_rate = 0;
  uint64_t pii_violations = 0;
  double bounce_probability_sum = 0;  // expected abandons over page views

  double BounceRate() const {
    return page_views == 0 ? 0.0
                           : bounce_probability_sum /
                                 static_cast<double>(page_views);
  }
};

// Connectivity classes: broadband (defaults) and a mobile/3G-ish profile
// with higher RTTs and ~1.5 Mbit/s downlink — the field conditions where
// the paper's speedups are largest.
sim::NetworkConfig MobileNetwork() {
  sim::NetworkConfig net;
  net.client_edge = sim::LinkSpec{Duration::Millis(60), 0.35, 2.0e5};
  net.client_origin = sim::LinkSpec{Duration::Millis(250), 0.40, 1.5e5};
  net.edge_origin = sim::LinkSpec{Duration::Millis(80), 0.20, 12.0e6};
  return net;
}

ArmResult RunArm(const Profile& profile, bool speed_kit_on, bool mobile) {
  core::StackConfig config;
  config.seed = 77;
  if (mobile) config.network = MobileNetwork();
  if (speed_kit_on) {
    config.variant = core::SystemVariant::kSpeedKit;
  } else {
    // Vanilla site: the profile says whether a CDN exists and how the
    // operator TTLs dynamic content without coherence.
    config.variant = core::SystemVariant::kFixedTtlCdn;
    config.fixed_ttl = profile.vanilla_dynamic_ttl;
  }
  core::SpeedKitStack stack(config);
  proxy::ProxyConfig proxy_config = stack.DefaultProxyConfig();
  if (!speed_kit_on && !profile.vanilla_has_cdn) {
    proxy_config.use_cdn = false;
  }

  workload::CatalogConfig cconfig;
  cconfig.num_products = profile.num_products;
  workload::Catalog catalog(cconfig, Pcg32(1));
  catalog.Populate(&stack.store(), stack.clock().Now());
  for (int c = 0; c < catalog.num_categories(); ++c) {
    stack.origin().RegisterQuery(catalog.CategoryQuery(c));
    if (stack.pipeline() != nullptr) {
      stack.pipeline()->WatchQuery(catalog.CategoryQuery(c),
                                   catalog.CategoryUrl(c));
    }
  }
  stack.Advance(Duration::Seconds(5));

  // Personalized page template per profile.
  personalization::PageTemplate tpl;
  tpl.url = "https://shop.example.com/pages/product";
  for (int i = 0; i < profile.segment_blocks; ++i) {
    tpl.blocks.push_back({"recs-" + std::to_string(i),
                          personalization::BlockScope::kSegment, 2048});
  }
  for (int i = 0; i < profile.user_blocks; ++i) {
    tpl.blocks.push_back({"user-" + std::to_string(i),
                          personalization::BlockScope::kUser, 1024});
  }
  personalization::Segmenter segmenter(32);

  constexpr size_t kClients = 15;
  // One popularity CDF for the whole fleet; per-generator copies are an
  // O(catalog) duplication that the million-client benches cannot afford.
  workload::ZipfGenerator popularity(
      static_cast<size_t>(catalog.num_products()),
      workload::SessionConfig{}.product_skew);
  std::vector<std::unique_ptr<personalization::PiiVault>> vaults;
  std::vector<std::unique_ptr<personalization::BoundaryAuditor>> auditors;
  std::vector<std::unique_ptr<proxy::ClientProxy>> clients;
  std::vector<workload::SessionGenerator> session_gens;
  for (size_t i = 0; i < kClients; ++i) {
    uint64_t user_id = 100000 + i;
    vaults.push_back(std::make_unique<personalization::PiiVault>(user_id));
    vaults.back()->Put("name", "Visitor " + std::to_string(user_id));
    vaults.back()->Put("cart", std::to_string(i % 4) + " items");
    auditors.push_back(std::make_unique<personalization::BoundaryAuditor>());
    auditors.back()->RegisterVault(*vaults.back());
    clients.push_back(
        stack.MakeClient(proxy_config, user_id, auditors.back().get()));
    clients.back()->AttachVault(vaults.back().get());
    session_gens.emplace_back(&catalog, workload::SessionConfig{}, &popularity,
                              stack.ForkRng(500 + i));
  }

  workload::WriteProcess writes(profile.num_products, profile.writes_per_sec,
                                0.8, stack.ForkRng(42));
  core::PageLoader loader;
  ArmResult result;
  Pcg32 write_rng = stack.ForkRng(43);

  SimTime end = stack.clock().Now() + Duration::Minutes(15);
  SimTime next_write = writes.Next(stack.clock().Now()).at;
  size_t next_write_rank = 0;
  {
    workload::WriteEvent first = writes.Next(stack.clock().Now());
    next_write = first.at;
    next_write_rank = first.object_rank;
  }

  size_t turn = 0;
  while (stack.clock().Now() < end) {
    size_t c = turn++ % kClients;
    std::vector<workload::PageView> session = session_gens[c].NextSession();
    for (const workload::PageView& view : session) {
      // Apply any writes that fall before this page view.
      SimTime at = stack.clock().Now() + view.think_time_before;
      while (next_write <= at) {
        stack.AdvanceTo(next_write);
        stack.store().Update(catalog.ProductId(next_write_rank),
                             catalog.PriceUpdate(next_write_rank, write_rng),
                             stack.clock().Now());
        workload::WriteEvent ev = writes.Next(stack.clock().Now());
        next_write = ev.at;
        next_write_rank = ev.object_rank;
      }
      stack.AdvanceTo(at);
      if (stack.clock().Now() >= end) break;

      core::PageSpec page;
      switch (view.type) {
        case workload::PageType::kHome:
          page = core::MakeHomePage(profile.shared_assets);
          break;
        case workload::PageType::kCategory:
          page = core::MakeCategoryPage(catalog, view.category,
                                        profile.shared_assets, 6);
          break;
        case workload::PageType::kProduct:
          page = core::MakeProductPage(catalog, view.product_rank,
                                       profile.shared_assets,
                                       profile.product_images);
          break;
        case workload::PageType::kCart:
          continue;
      }
      page.page_template = &tpl;
      page.segmenter = &segmenter;
      static const core::BounceModel kBounceModel;
      core::PageLoadResult load = loader.Load(*clients[c], page);
      result.page_views++;
      result.load_ms.Add(static_cast<int64_t>(load.load_time.millis()));
      result.ttfb_ms.Add(static_cast<int64_t>(load.ttfb.millis()));
      result.bounce_probability_sum +=
          kBounceModel.BounceProbability(load.load_time);
      result.cache_share += static_cast<double>(load.served_from_cache) /
                            static_cast<double>(load.resources);
    }
  }
  result.cache_share /= static_cast<double>(std::max<uint64_t>(1, result.page_views));
  result.origin_requests = stack.origin().stats().requests;
  result.stale_rate = stack.staleness().report().StaleFraction();
  for (const auto& auditor : auditors) {
    result.pii_violations += auditor->violations();
  }
  return result;
}

bench::JsonValue JsonArm(const ArmResult& r) {
  return bench::JsonRow(
      {{"p50_ms", r.load_ms.P50()},
       {"p90_ms", r.load_ms.P90()},
       {"p99_ms", r.load_ms.P99()},
       {"ttfb_p50_ms", r.ttfb_ms.P50()},
       {"cache_share", r.cache_share},
       {"origin_requests", r.origin_requests},
       {"pii_violations", r.pii_violations},
       {"bounce_rate", r.BounceRate()},
       {"page_views", r.page_views}});
}

void RunProfile(const Profile& profile, bool mobile, bench::JsonValue* rows) {
  bench::PrintSection("customer profile: " + profile.name +
                      (mobile ? " (mobile network)" : " (broadband)"));
  ArmResult off = RunArm(profile, /*speed_kit_on=*/false, mobile);
  ArmResult on = RunArm(profile, /*speed_kit_on=*/true, mobile);
  bench::Row("%12s %10s %10s %10s %10s %12s %12s %10s %10s", "arm", "p50_ms",
             "p90_ms", "p99_ms", "ttfb_p50", "cache_share", "origin_reqs",
             "pii_leaks", "bounce");
  auto print_arm = [](const char* name, const ArmResult& r) {
    bench::Row(
        "%12s %10lld %10lld %10lld %10lld %11.1f%% %12llu %10llu %9.1f%%",
        name, static_cast<long long>(r.load_ms.P50()),
        static_cast<long long>(r.load_ms.P90()),
        static_cast<long long>(r.load_ms.P99()),
        static_cast<long long>(r.ttfb_ms.P50()), r.cache_share * 100,
        static_cast<unsigned long long>(r.origin_requests),
        static_cast<unsigned long long>(r.pii_violations),
        r.BounceRate() * 100);
  };
  print_arm("vanilla", off);
  print_arm("speed-kit", on);
  bench::Row("%12s %9.2fx %9.2fx %9.2fx %9.2fx", "speedup",
             static_cast<double>(off.load_ms.P50()) /
                 std::max<int64_t>(1, on.load_ms.P50()),
             static_cast<double>(off.load_ms.P90()) /
                 std::max<int64_t>(1, on.load_ms.P90()),
             static_cast<double>(off.load_ms.P99()) /
                 std::max<int64_t>(1, on.load_ms.P99()),
             static_cast<double>(off.ttfb_ms.P50()) /
                 std::max<int64_t>(1, on.ttfb_ms.P50()));
  bench::JsonValue row = bench::JsonRow(
      {{"profile", profile.name},
       {"network", mobile ? "mobile" : "broadband"},
       {"p50_speedup", static_cast<double>(off.load_ms.P50()) /
                           std::max<int64_t>(1, on.load_ms.P50())},
       {"p99_speedup", static_cast<double>(off.load_ms.P99()) /
                           std::max<int64_t>(1, on.load_ms.P99())}});
  row.Set("vanilla", JsonArm(off));
  row.Set("speed_kit", JsonArm(on));
  rows->Push(std::move(row));
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "pageload_ab");

  speedkit::bench::PrintHeader(
      "E5", "Page load time A/B: Speed Kit on vs off",
      "the paper's headline field experience (faster loads on real "
      "e-commerce traffic, GDPR-compliant personalization intact)");
  speedkit::bench::JsonValue rows = speedkit::bench::JsonValue::Array();
  for (const auto& profile : speedkit::kProfiles) {
    speedkit::RunProfile(profile, /*mobile=*/false, &rows);
  }
  for (const auto& profile : speedkit::kProfiles) {
    speedkit::RunProfile(profile, /*mobile=*/true, &rows);
  }
  if (!json_path.empty()) {
    speedkit::bench::JsonValue root = speedkit::bench::JsonValue::Object();
    root.Set("bench", "pageload_ab");
    root.Set("rows", std::move(rows));
    speedkit::bench::WriteJsonFile(json_path, root);
  }
  speedkit::bench::Note(
      "expected shape: speed-kit wins at every percentile; pii_leaks must "
      "be 0 on the speed-kit arm (vanilla arm has no user-scoped blocks "
      "cached, it fetches them with identity)");
  return 0;
}
