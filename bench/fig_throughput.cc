// E15 — Sharded-engine scaling: simulated requests/sec vs. threads.
//
// The sharded fleet's contract is "parallelism without consequences": the
// merged numbers are a pure function of (seed, shards) and never of the
// thread count. This harness measures the payoff side (wall-clock
// requests/sec as threads grow at a fixed shard count) and GATES both
// sides:
//   * determinism — every thread count must reproduce the single-threaded
//     run's fingerprint bit-for-bit, or the process exits 1;
//   * scaling — with a floor configured (--min-speedup or the
//     SPEEDKIT_E15_MIN_SPEEDUP env var; CI sets 2.0), the measured
//     speedup at --speedup-threads (default 4) must reach it, or the
//     process exits 1. The gate auto-skips when the process is allowed
//     fewer CPUs than the gated thread count (ThreadPool::AvailableCpus
//     respects the affinity mask), so a single-core builder still runs
//     the determinism gate without a vacuous scaling failure.
//
// Defaults are sized so per-point runtime is dominated by simulated
// traffic, not per-shard setup (catalog population, fleet construction):
// --shards 8 (cdn_edges raised to a multiple automatically), 256 clients,
// 90 simulated minutes. Override with --num-clients / --duration (minutes)
// — the TSan CI job shrinks the workload this way. The full spec is
// recorded in the JSON output so a stored BENCH_throughput.json is
// self-describing across PRs.
#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "bench/workload_runner.h"
#include "common/thread_pool.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

// --coherence: which protocol the stack runs (delta_atomic default).
coherence::CoherenceMode g_coherence = coherence::CoherenceMode::kDeltaAtomic;

struct ThroughputPoint {
  int threads = 1;
  double wall_seconds = 0;
  double requests_per_sec = 0;
  uint64_t fingerprint = 0;
  uint64_t requests = 0;
};

bench::RunSpec ThroughputSpec(int shards, int num_clients,
                              double duration_minutes) {
  bench::RunSpec spec = bench::DefaultRunSpec();
  spec.stack.shards = shards;
  // Give every shard a non-trivial slice: the default 4-edge / 25-client
  // stack would leave 8 shards mostly idle.
  if (spec.stack.cdn_edges % shards != 0 || spec.stack.cdn_edges < shards) {
    spec.stack.cdn_edges = 2 * shards;
  }
  spec.traffic.num_clients = static_cast<size_t>(num_clients);
  spec.traffic.duration = Duration::Minutes(duration_minutes);
  spec.stack.coherence.mode = g_coherence;
  return spec;
}

ThroughputPoint Measure(const bench::RunSpec& base, int threads) {
  bench::RunSpec spec = base;
  spec.run_threads = threads;
  auto t0 = std::chrono::steady_clock::now();
  bench::RunOutput out = bench::RunWorkload(spec);
  ThroughputPoint point;
  point.threads = threads;
  point.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  point.requests = out.traffic.proxies.requests;
  point.requests_per_sec =
      point.wall_seconds > 0
          ? static_cast<double>(point.requests) / point.wall_seconds
          : 0.0;
  point.fingerprint = bench::FingerprintRun(out);
  return point;
}

struct GateResult {
  bool ok = true;
  std::string status;  // "passed" / "failed" / "skipped: ..." / "off"
};

// The scaling gate: speedup at `gate_threads` must reach `floor`.
GateResult CheckScaling(const std::vector<ThroughputPoint>& points,
                        double floor, int gate_threads) {
  GateResult gate;
  if (floor <= 0) {
    gate.status = "off";
    return gate;
  }
  size_t cpus = ThreadPool::AvailableCpus();
  if (cpus < static_cast<size_t>(gate_threads)) {
    gate.status = "skipped: only " + std::to_string(cpus) +
                  " CPU(s) available to this process";
    return gate;
  }
  const ThroughputPoint* gated = nullptr;
  for (const ThroughputPoint& p : points) {
    if (p.threads == gate_threads) gated = &p;
  }
  if (gated == nullptr) {
    gate.status = "skipped: no " + std::to_string(gate_threads) +
                  "-thread point measured (raise --threads)";
    return gate;
  }
  double speedup = gated->requests_per_sec / points.front().requests_per_sec;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.2fx at %d threads vs floor %.2fx",
                speedup, gate_threads, floor);
  if (speedup >= floor) {
    gate.status = std::string("passed: ") + buf;
  } else {
    gate.ok = false;
    gate.status = std::string("failed: ") + buf;
  }
  return gate;
}

// Returns false when a gate failed (fingerprint divergence or a scaling
// floor miss).
bool Run(const bench::RunSpec& base, const std::vector<int>& thread_counts,
         double min_speedup, int gate_threads, const std::string& json_path) {
  bench::PrintSection(
      "requests/sec vs threads (shards=" +
      std::to_string(base.stack.shards) + ", " +
      std::to_string(base.stack.cdn_edges) + " edges, " +
      std::to_string(base.traffic.num_clients) + " clients, " +
      std::to_string(static_cast<int>(base.traffic.duration.seconds() / 60)) +
      " sim-minutes)");
  bench::Row("%8s %12s %14s %12s %18s", "threads", "wall_s", "req/sec",
             "speedup", "fingerprint");

  std::vector<ThroughputPoint> points;
  for (int threads : thread_counts) points.push_back(Measure(base, threads));

  bool invariant = true;
  const ThroughputPoint& first = points.front();
  bench::JsonValue rows = bench::JsonValue::Array();
  for (const ThroughputPoint& p : points) {
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016" PRIx64, p.fingerprint);
    bench::Row("%8d %12.2f %14.0f %11.2fx %18s", p.threads, p.wall_seconds,
               p.requests_per_sec, p.requests_per_sec / first.requests_per_sec,
               fp);
    rows.Push(bench::JsonRow(
        {{"threads", p.threads},
         {"wall_seconds", p.wall_seconds},
         {"requests", p.requests},
         {"requests_per_sec", p.requests_per_sec},
         {"speedup_vs_1_thread", p.requests_per_sec / first.requests_per_sec},
         {"fingerprint", std::string(fp)}}));
    if (p.fingerprint != first.fingerprint) invariant = false;
  }

  if (invariant) {
    bench::Note("determinism gate PASSED: all thread counts reproduced "
                "fingerprint of the 1-thread run bit-for-bit");
  } else {
    std::fprintf(stderr,
                 "FATAL: sharded run fingerprints diverged across thread "
                 "counts — the engine's determinism invariant is broken\n");
  }

  GateResult scaling = CheckScaling(points, min_speedup, gate_threads);
  if (scaling.status != "off") {
    if (scaling.ok) {
      bench::Note("scaling gate " + scaling.status);
    } else {
      std::fprintf(stderr, "FATAL: scaling gate %s\n", scaling.status.c_str());
    }
  }

  if (!json_path.empty()) {
    bench::JsonValue root = bench::JsonValue::Object();
    root.Set("bench", "throughput");
    // The workload spec, so stored trajectories are comparable across PRs.
    root.Set("shards", base.stack.shards);
    root.Set("cdn_edges", base.stack.cdn_edges);
    root.Set("num_clients", static_cast<uint64_t>(base.traffic.num_clients));
    root.Set("duration_minutes", base.traffic.duration.seconds() / 60.0);
    root.Set("writes_per_sec", base.traffic.writes_per_sec);
    root.Set("available_cpus",
             static_cast<uint64_t>(ThreadPool::AvailableCpus()));
    root.Set("invariant_ok", invariant);
    root.Set("min_speedup_required", min_speedup);
    root.Set("speedup_gate", scaling.status);
    root.Set("rows", std::move(rows));
    bench::WriteJsonFile(json_path, root);
  }
  return invariant && scaling.ok;
}

double EnvSpeedupFloor() {
  const char* env = std::getenv("SPEEDKIT_E15_MIN_SPEEDUP");
  return env == nullptr ? 0.0 : std::strtod(env, nullptr);
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  int shards = static_cast<int>(flags.GetInt("shards", 8));
  speedkit::g_coherence = speedkit::bench::CoherenceModeFromFlag(
      flags.GetString("coherence", ""));
  int max_threads = static_cast<int>(flags.GetInt("threads", 8));
  int num_clients = static_cast<int>(flags.GetInt("num-clients", 256));
  double duration_min = flags.GetDouble("duration", 90.0);
  // Scaling floor: flag wins, then the env var (how CI configures the
  // runner-class floor), 0 = determinism gate only.
  double min_speedup =
      flags.GetDouble("min-speedup", speedkit::EnvSpeedupFloor());
  int gate_threads = static_cast<int>(flags.GetInt("speedup-threads", 4));
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "throughput");

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  speedkit::bench::PrintHeader(
      "E15", "Sharded-engine scaling and determinism gate",
      "simulated requests/sec vs worker threads at a fixed shard count; "
      "every point must fingerprint identically, and speedup must clear "
      "the configured floor");
  speedkit::bench::RunSpec base =
      speedkit::ThroughputSpec(shards, num_clients, duration_min);
  bool ok = speedkit::Run(base, thread_counts, min_speedup, gate_threads,
                          json_path);
  speedkit::bench::Note(
      "expected shape: near-linear scaling until threads exceed shards or "
      "available CPUs; the numbers themselves never move");
  return ok ? 0 : 1;
}
