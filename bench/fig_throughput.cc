// E15 — Sharded-engine throughput: simulated requests/sec vs. threads.
//
// The sharded fleet's contract is "parallelism without consequences": the
// merged numbers are a pure function of (seed, shards) and never of the
// thread count. This harness measures the payoff side (wall-clock
// requests/sec as threads grow at a fixed shard count) and GATES the
// contract side — every thread count must reproduce the single-threaded
// run's fingerprint bit-for-bit, or the process exits 1 so CI cannot miss
// a determinism regression.
//
// Defaults are sized so the 8-thread point has real work to parallelize:
// --shards 8 (cdn_edges is raised to a multiple automatically), a larger
// client population and a longer simulated window than DefaultRunSpec.
#include <chrono>
#include <cinttypes>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "bench/workload_runner.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

struct ThroughputPoint {
  int threads = 1;
  double wall_seconds = 0;
  double requests_per_sec = 0;
  uint64_t fingerprint = 0;
  uint64_t requests = 0;
};

bench::RunSpec ThroughputSpec(int shards) {
  bench::RunSpec spec = bench::DefaultRunSpec();
  spec.stack.shards = shards;
  // Give every shard a non-trivial slice: the default 4-edge / 25-client
  // stack would leave 8 shards mostly idle.
  if (spec.stack.cdn_edges % shards != 0 || spec.stack.cdn_edges < shards) {
    spec.stack.cdn_edges = 2 * shards;
  }
  spec.traffic.num_clients = 64;
  spec.traffic.duration = Duration::Minutes(30);
  return spec;
}

ThroughputPoint Measure(const bench::RunSpec& base, int threads) {
  bench::RunSpec spec = base;
  spec.run_threads = threads;
  auto t0 = std::chrono::steady_clock::now();
  bench::RunOutput out = bench::RunWorkload(spec);
  ThroughputPoint point;
  point.threads = threads;
  point.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  point.requests = out.traffic.proxies.requests;
  point.requests_per_sec =
      point.wall_seconds > 0
          ? static_cast<double>(point.requests) / point.wall_seconds
          : 0.0;
  point.fingerprint = bench::FingerprintRun(out);
  return point;
}

// Returns false when any thread count diverged from the 1-thread run.
bool Run(int shards, const std::vector<int>& thread_counts,
         const std::string& json_path) {
  bench::RunSpec base = ThroughputSpec(shards);

  bench::PrintSection("requests/sec vs threads (shards=" +
                      std::to_string(shards) + ", " +
                      std::to_string(base.stack.cdn_edges) + " edges, " +
                      std::to_string(base.traffic.num_clients) + " clients)");
  bench::Row("%8s %12s %14s %12s %18s", "threads", "wall_s", "req/sec",
             "speedup", "fingerprint");

  std::vector<ThroughputPoint> points;
  for (int threads : thread_counts) points.push_back(Measure(base, threads));

  bool invariant = true;
  const ThroughputPoint& first = points.front();
  bench::JsonValue rows = bench::JsonValue::Array();
  for (const ThroughputPoint& p : points) {
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016" PRIx64, p.fingerprint);
    bench::Row("%8d %12.2f %14.0f %11.2fx %18s", p.threads, p.wall_seconds,
               p.requests_per_sec, p.requests_per_sec / first.requests_per_sec,
               fp);
    rows.Push(bench::JsonRow(
        {{"threads", p.threads},
         {"wall_seconds", p.wall_seconds},
         {"requests", p.requests},
         {"requests_per_sec", p.requests_per_sec},
         {"speedup_vs_1_thread", p.requests_per_sec / first.requests_per_sec},
         {"fingerprint", std::string(fp)}}));
    if (p.fingerprint != first.fingerprint) invariant = false;
  }

  if (invariant) {
    bench::Note("determinism gate PASSED: all thread counts reproduced "
                "fingerprint of the 1-thread run bit-for-bit");
  } else {
    std::fprintf(stderr,
                 "FATAL: sharded run fingerprints diverged across thread "
                 "counts — the engine's determinism invariant is broken\n");
  }

  if (!json_path.empty()) {
    bench::JsonValue root = bench::JsonValue::Object();
    root.Set("bench", "throughput");
    root.Set("shards", shards);
    root.Set("cdn_edges", base.stack.cdn_edges);
    root.Set("num_clients", static_cast<uint64_t>(base.traffic.num_clients));
    root.Set("invariant_ok", invariant);
    root.Set("rows", std::move(rows));
    bench::WriteJsonFile(json_path, root);
  }
  return invariant;
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  int shards = static_cast<int>(flags.GetInt("shards", 8));
  int max_threads = static_cast<int>(flags.GetInt("threads", 8));
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "throughput");

  std::vector<int> thread_counts;
  for (int t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  speedkit::bench::PrintHeader(
      "E15", "Sharded-engine throughput and determinism gate",
      "simulated requests/sec vs worker threads at a fixed shard count; "
      "every point must fingerprint identically");
  bool ok = speedkit::Run(shards, thread_counts, json_path);
  speedkit::bench::Note(
      "expected shape: near-linear scaling until threads exceed shards or "
      "physical cores; the numbers themselves never move");
  return ok ? 0 : 1;
}
