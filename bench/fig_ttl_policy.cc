// E3 — TTL policy: latency, hit ratio and coherence cost vs. how cache
// lifetimes are chosen.
//
// Reproduces the TTL-estimator evaluation shape (companion Monte-Carlo
// study): longer/estimated TTLs buy hits; without coherence they also buy
// staleness, and with the sketch the cost shows up as sketch entries and
// revalidations instead of stale reads.
//
// Monte-Carlo mode: every (workload, policy) cell runs --seeds independent
// trials fanned out over --threads workers; the merged table pools all
// seeds, and --json dumps per-cell across-seed distributions.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "bench/parallel_runner.h"
#include "bench/trace_support.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

// --coherence: which protocol the stack runs (delta_atomic default).
coherence::CoherenceMode g_coherence = coherence::CoherenceMode::kDeltaAtomic;

struct PolicyPoint {
  std::string name;
  core::TtlMode mode = core::TtlMode::kFixed;
  Duration fixed_ttl = Duration::Seconds(60);
  bool no_cache = false;
};

struct WorkloadPoint {
  std::string name;
  double read_skew;
  double writes_per_sec;
};

const std::vector<PolicyPoint>& Policies() {
  static const std::vector<PolicyPoint> kPolicies = {
      {"no-cache", core::TtlMode::kFixed, Duration::Zero(), true},
      {"fixed-30s", core::TtlMode::kFixed, Duration::Seconds(30), false},
      {"fixed-300s", core::TtlMode::kFixed, Duration::Seconds(300), false},
      {"fixed-3600s", core::TtlMode::kFixed, Duration::Seconds(3600), false},
      {"estimator", core::TtlMode::kEstimator, Duration::Zero(), false},
  };
  return kPolicies;
}

bench::RunSpec SpecFor(const WorkloadPoint& workload,
                       const PolicyPoint& policy) {
  bench::RunSpec spec = bench::DefaultRunSpec();
  spec.traffic.session.product_skew = workload.read_skew;
  spec.traffic.writes_per_sec = workload.writes_per_sec;
  if (policy.no_cache) {
    spec.stack.variant = core::SystemVariant::kNoCaching;
  } else {
    spec.stack.ttl_mode = policy.mode;
    spec.stack.fixed_ttl = policy.fixed_ttl;
    spec.stack.estimator.max_ttl = Duration::Seconds(3600);
  }
  return spec;
}

void Run(int num_seeds, int threads, int shards, const std::string& json_path,
         const std::string& trace_path) {
  const std::vector<WorkloadPoint> workloads = {
      {"moderate skew (0.8), 2 writes/s", 0.8, 2.0},
      {"high skew (0.99), 2 writes/s", 0.99, 2.0},
      {"moderate skew (0.8), write-heavy 8 writes/s", 0.8, 8.0},
  };

  // One flat sweep over every (workload, policy) cell keeps all --threads
  // workers busy across section boundaries.
  std::vector<bench::RunSpec> configs;
  for (const WorkloadPoint& workload : workloads) {
    for (const PolicyPoint& policy : Policies()) {
      configs.push_back(SpecFor(workload, policy));
    }
  }
  bench::ApplyCoherenceFlag(&configs, g_coherence);
  int sweep_threads =
      bench::ApplyShardAndThreadFlags(&configs, shards, threads, num_seeds);

  bench::SweepResult sweep = bench::RunSweep(configs, num_seeds, sweep_threads);

  bench::JsonValue root = bench::JsonValue::Object();
  root.Set("bench", "ttl_policy");
  root.Set("seeds", num_seeds);
  root.Set("threads", threads);
  root.Set("shards", shards);
  bench::JsonValue rows = bench::JsonValue::Array();

  size_t config_index = 0;
  for (const WorkloadPoint& workload : workloads) {
    bench::PrintSection(workload.name);
    bench::Row("%14s %10s %10s %17s %12s %12s %12s %12s", "policy", "p50_ms",
               "p99_ms", "hit_rate", "origin_reqs", "stale_rate", "reval_304",
               "sketch_sz");
    for (const PolicyPoint& policy : Policies()) {
      const std::vector<bench::RunOutput>& runs = sweep.outputs[config_index];
      bench::RunOutput out = bench::MergeRuns(runs);
      bench::SeedStats hit = bench::SeedStatsOf(runs, [](const auto& o) {
        return o.traffic.BrowserHitRatio() + o.traffic.EdgeHitRatio();
      });
      bench::SeedStats p99 = bench::SeedStatsOf(runs, [](const auto& o) {
        return o.traffic.api_latency_us.P99() / 1e3;
      });
      bench::Row("%14s %10.1f %10.1f %10.1f%%±%4.1f %12llu %11.4f%% %12llu "
                 "%12zu",
                 policy.name.c_str(), out.traffic.api_latency_us.P50() / 1e3,
                 out.traffic.api_latency_us.P99() / 1e3, hit.mean * 100,
                 hit.stddev * 100,
                 static_cast<unsigned long long>(out.origin_requests),
                 out.staleness.StaleFraction() * 100,
                 static_cast<unsigned long long>(
                     out.traffic.proxies.revalidations_304),
                 out.sketch_entries);

      bench::JsonValue row = bench::JsonRow(
          {{"workload", workload.name},
           {"read_skew", workload.read_skew},
           {"writes_per_sec", workload.writes_per_sec},
           {"policy", policy.name},
           {"p50_ms", out.traffic.api_latency_us.P50() / 1e3},
           {"p99_ms", out.traffic.api_latency_us.P99() / 1e3},
           {"origin_requests", out.origin_requests},
           {"stale_rate", out.staleness.StaleFraction()},
           {"revalidations_304", out.traffic.proxies.revalidations_304},
           {"sketch_entries", static_cast<uint64_t>(out.sketch_entries)}});
      row.Set("hit_rate", bench::JsonSeedStats(hit));
      row.Set("p99_ms_per_seed", bench::JsonSeedStats(p99));
      rows.Push(std::move(row));
      config_index++;
    }
  }

  bench::Note(bench::WallClockNote(sweep, num_seeds, threads));
  root.Set("rows", std::move(rows));
  root.Set("wall_seconds", sweep.wall_seconds);
  root.Set("cpu_seconds", sweep.cpu_seconds);
  root.Set("speedup", sweep.Speedup());
  if (!json_path.empty()) bench::WriteJsonFile(json_path, root);

  bench::MaybeTraceRun(configs[0], "ttl_policy", trace_path);
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  int seeds = static_cast<int>(flags.GetInt("seeds", 4));
  speedkit::g_coherence = speedkit::bench::CoherenceModeFromFlag(
      flags.GetString("coherence", ""));
  int threads = static_cast<int>(flags.GetInt("threads", 1));
  int shards = static_cast<int>(flags.GetInt("shards", 1));
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "ttl_policy");
  std::string trace_path = speedkit::bench::TracePathFromFlag(
      flags.GetString("trace", ""), "ttl_policy");

  speedkit::bench::PrintHeader(
      "E3", "TTL policy: latency & hit ratio vs cache-lifetime strategy",
      "the TTL estimator's role in the polyglot architecture (hits vs "
      "coherence load)");
  speedkit::Run(seeds, threads, shards, json_path, trace_path);
  speedkit::bench::Note(
      "expected shape: estimator ~matches the best fixed TTL on hits with "
      "fewer sketch entries/revalidations; no-cache pays full origin RTTs");
  return 0;
}
