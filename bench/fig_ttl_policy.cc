// E3 — TTL policy: latency, hit ratio and coherence cost vs. how cache
// lifetimes are chosen.
//
// Reproduces the TTL-estimator evaluation shape (companion Monte-Carlo
// study): longer/estimated TTLs buy hits; without coherence they also buy
// staleness, and with the sketch the cost shows up as sketch entries and
// revalidations instead of stale reads.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/workload_runner.h"

namespace speedkit {
namespace {

struct PolicyPoint {
  std::string name;
  core::TtlMode mode = core::TtlMode::kFixed;
  Duration fixed_ttl = Duration::Seconds(60);
  bool no_cache = false;
};

void RunPolicies(double read_skew, double writes_per_sec) {
  bench::Row("%14s %10s %10s %10s %12s %12s %12s %12s", "policy", "p50_ms",
             "p99_ms", "hit_rate", "origin_reqs", "stale_rate", "reval_304",
             "sketch_sz");
  std::vector<PolicyPoint> policies = {
      {"no-cache", core::TtlMode::kFixed, Duration::Zero(), true},
      {"fixed-30s", core::TtlMode::kFixed, Duration::Seconds(30), false},
      {"fixed-300s", core::TtlMode::kFixed, Duration::Seconds(300), false},
      {"fixed-3600s", core::TtlMode::kFixed, Duration::Seconds(3600), false},
      {"estimator", core::TtlMode::kEstimator, Duration::Zero(), false},
  };
  for (const PolicyPoint& policy : policies) {
    bench::RunSpec spec = bench::DefaultRunSpec();
    spec.traffic.session.product_skew = read_skew;
    spec.traffic.writes_per_sec = writes_per_sec;
    if (policy.no_cache) {
      spec.stack.variant = core::SystemVariant::kNoCaching;
    } else {
      spec.stack.ttl_mode = policy.mode;
      spec.stack.fixed_ttl = policy.fixed_ttl;
      spec.stack.estimator.max_ttl = Duration::Seconds(3600);
    }
    bench::RunOutput out = bench::RunWorkload(spec);
    double hit_rate =
        out.traffic.BrowserHitRatio() + out.traffic.EdgeHitRatio();
    bench::Row("%14s %10.1f %10.1f %9.1f%% %12llu %11.4f%% %12llu %12zu",
               policy.name.c_str(), out.traffic.api_latency_us.P50() / 1e3,
               out.traffic.api_latency_us.P99() / 1e3, hit_rate * 100,
               static_cast<unsigned long long>(out.origin_requests),
               out.staleness.StaleFraction() * 100,
               static_cast<unsigned long long>(
                   out.traffic.proxies.revalidations_304),
               out.sketch_entries);
  }
}

}  // namespace
}  // namespace speedkit

int main() {
  speedkit::bench::PrintHeader(
      "E3", "TTL policy: latency & hit ratio vs cache-lifetime strategy",
      "the TTL estimator's role in the polyglot architecture (hits vs "
      "coherence load)");
  speedkit::bench::PrintSection("moderate skew (0.8), 2 writes/s");
  speedkit::RunPolicies(0.8, 2.0);
  speedkit::bench::PrintSection("high skew (0.99), 2 writes/s");
  speedkit::RunPolicies(0.99, 2.0);
  speedkit::bench::PrintSection("moderate skew (0.8), write-heavy 8 writes/s");
  speedkit::RunPolicies(0.8, 8.0);
  speedkit::bench::Note(
      "expected shape: estimator ~matches the best fixed TTL on hits with "
      "fewer sketch entries/revalidations; no-cache pays full origin RTTs");
  return 0;
}
