// E14 — Fault injection & degraded mode: what breaks when the
// infrastructure does.
//
// Three stress axes, all driven by the deterministic fault schedule
// (sim/fault_schedule.h):
//
//   1. Purge-delivery loss. Dropped purges leave stale copies on edges —
//      but the sketch horizon comes from the ExpiryBook (every handed-out
//      TTL), not from purge acknowledgements, so Speed Kit's Δ-bound must
//      hold at ANY loss rate; degradation shows up as a rising stale-read
//      rate, never as a bound violation. The fixed-TTL baseline violates
//      the same bound with or without faults. CI gates on zero violations
//      at 0% loss.
//   2. Origin outage mid-run. Speed Kit keeps serving from browser/edge
//      copies (offline mode, stale-if-error); the fixed-TTL CDN only
//      survives as long as its edge TTLs do. An edge outage reroutes
//      pinned clients pass-through to the origin (fallback serves).
//   3. Flaky client-edge link. Timeouts burn the request budget, bounded
//      retries with exponential backoff absorb transient loss, and
//      persistent failure falls back to the origin path — availability
//      holds while p99 latency degrades measurably.
//
// Monte-Carlo mode: --seeds trials per config on --threads workers; the
// merged JSON is bit-identical for any thread count.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "bench/parallel_runner.h"
#include "bench/trace_support.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

// --coherence: which protocol the stack runs (delta_atomic default).
coherence::CoherenceMode g_coherence = coherence::CoherenceMode::kDeltaAtomic;

constexpr double kPurgeLoss[] = {0.0, 0.1, 0.3, 0.6};
constexpr double kLinkLoss[] = {0.0, 0.05, 0.2};
// Δ-bound slack for purge propagation (the pipeline's lognormal delivery
// delay tail), matching E2's "delta + purge propagation" wording.
constexpr double kBoundMarginS = 2.0;

// Traffic starts 5s into simulated time (RunWorkload settles population
// writes first); outage windows are placed relative to that.
sim::FaultWindow Window(Duration from, Duration to) {
  sim::FaultWindow w;
  w.start = SimTime::Origin() + Duration::Seconds(5) + from;
  w.end = SimTime::Origin() + Duration::Seconds(5) + to;
  return w;
}

bench::RunSpec BaseSpec(core::SystemVariant variant) {
  bench::RunSpec spec = bench::DefaultRunSpec();
  spec.stack.variant = variant;
  spec.stack.ttl_mode = core::TtlMode::kFixed;
  spec.stack.fixed_ttl = Duration::Seconds(120);
  spec.stack.coherence.delta = Duration::Seconds(30);
  spec.traffic.writes_per_sec = 3.0;
  spec.delta_bound_margin = Duration::Seconds(kBoundMarginS);
  return spec;
}

bench::RunSpec PurgeLossSpec(core::SystemVariant variant, double loss) {
  bench::RunSpec spec = BaseSpec(variant);
  spec.stack.faults.purge_loss_probability = loss;
  return spec;
}

bench::RunSpec OutageSpec(core::SystemVariant variant, bool edge_outage) {
  bench::RunSpec spec = BaseSpec(variant);
  sim::FaultWindow w = Window(Duration::Minutes(8), Duration::Minutes(12));
  if (edge_outage) {
    spec.stack.faults.edges = {{w}};  // edge 0 down for 4 of 20 minutes
  } else {
    spec.stack.faults.origin = {w};
  }
  return spec;
}

bench::RunSpec FlakyLinkSpec(double loss) {
  bench::RunSpec spec = BaseSpec(core::SystemVariant::kSpeedKit);
  spec.stack.faults.client_edge.loss_probability = loss;
  return spec;
}

double Availability(const bench::RunOutput& out) {
  const proxy::ProxyStats& p = out.traffic.proxies;
  if (p.requests == 0) return 0.0;
  return 1.0 - static_cast<double>(p.errors) / static_cast<double>(p.requests);
}

void Run(int num_seeds, int threads, int shards, const std::string& json_path,
         const std::string& trace_path) {
  // One flat sweep so workers stay busy across section boundaries.
  std::vector<bench::RunSpec> configs;
  std::vector<std::string> variants;  // parallel to the purge section
  for (double loss : kPurgeLoss) {
    configs.push_back(PurgeLossSpec(core::SystemVariant::kSpeedKit, loss));
  }
  const size_t baseline_off = configs.size();
  configs.push_back(PurgeLossSpec(core::SystemVariant::kFixedTtlCdn, 0.0));

  const size_t outage_off = configs.size();
  configs.push_back(OutageSpec(core::SystemVariant::kSpeedKit, false));
  configs.push_back(OutageSpec(core::SystemVariant::kFixedTtlCdn, false));
  configs.push_back(OutageSpec(core::SystemVariant::kSpeedKit, true));

  const size_t flaky_off = configs.size();
  for (double loss : kLinkLoss) configs.push_back(FlakyLinkSpec(loss));

  bench::ApplyCoherenceFlag(&configs, g_coherence);
  int sweep_threads =
      bench::ApplyShardAndThreadFlags(&configs, shards, threads, num_seeds);

  bench::SweepResult sweep = bench::RunSweep(configs, num_seeds, sweep_threads);

  bench::JsonValue root = bench::JsonValue::Object();
  root.Set("bench", "faults");
  root.Set("seeds", num_seeds);
  root.Set("threads", threads);
  root.Set("shards", shards);
  root.Set("bound_margin_s", kBoundMarginS);
  bench::JsonValue rows = bench::JsonValue::Array();

  bench::PrintSection(
      "purge-delivery loss: Delta-bound holds, stale-read rate degrades");
  bench::Row("%12s %10s %10s %12s %12s %12s %14s %12s", "variant",
             "purge_loss", "reads", "stale_rate", "max_stale_s", "violations",
             "purges_drop", "purges_sched");
  auto purge_row = [&](const std::string& variant, double loss,
                       const std::vector<bench::RunOutput>& runs) {
    bench::RunOutput out = bench::MergeRuns(runs);
    bench::SeedStats violations = bench::SeedStatsOf(runs, [](const auto& o) {
      return static_cast<double>(o.staleness.delta_violations);
    });
    bench::Row("%12s %10.2f %10llu %11.4f%% %12.2f %12llu %14llu %12llu",
               variant.c_str(), loss,
               static_cast<unsigned long long>(out.staleness.reads),
               out.staleness.StaleFraction() * 100,
               out.staleness.max_staleness.seconds(),
               static_cast<unsigned long long>(out.staleness.delta_violations),
               static_cast<unsigned long long>(out.pipeline.purges_dropped),
               static_cast<unsigned long long>(out.pipeline.purges_scheduled));
    bench::JsonValue row = bench::JsonRow(
        {{"section", "purge_loss"},
         {"variant", variant},
         {"purge_loss", loss},
         {"reads", out.staleness.reads},
         {"stale_rate", out.staleness.StaleFraction()},
         {"max_stale_s", out.staleness.max_staleness.seconds()},
         {"delta_violations", out.staleness.delta_violations},
         {"violation_rate", out.staleness.ViolationFraction()},
         {"excused_stale_reads", out.staleness.excused_stale_reads},
         {"purges_scheduled", out.pipeline.purges_scheduled},
         {"purges_dropped", out.pipeline.purges_dropped},
         {"purges_delayed", out.pipeline.purges_delayed}});
    row.Set("violations_per_seed", bench::JsonSeedStats(violations));
    rows.Push(std::move(row));
  };
  for (size_t i = 0; i < std::size(kPurgeLoss); ++i) {
    purge_row("speed_kit", kPurgeLoss[i], sweep.outputs[i]);
  }
  purge_row("fixed_ttl_cdn", 0.0, sweep.outputs[baseline_off]);
  bench::Note(
      "sketch horizons come from handed-out TTLs, not purge acks, so "
      "speed_kit violations stay 0 at every loss rate; the fixed-TTL "
      "baseline breaks the same bound with zero faults injected");

  bench::PrintSection("4-minute outage inside a 20-minute run");
  bench::Row("%14s %10s %10s %14s %10s %12s %12s %10s", "outage", "variant",
             "requests", "availability", "errors", "offline", "fallbacks",
             "timeouts");
  const char* outage_names[] = {"origin", "origin", "edge0"};
  const char* outage_variants[] = {"speed_kit", "fixed_ttl_cdn", "speed_kit"};
  for (size_t i = 0; i < 3; ++i) {
    const std::vector<bench::RunOutput>& runs = sweep.outputs[outage_off + i];
    bench::RunOutput out = bench::MergeRuns(runs);
    bench::SeedStats avail = bench::SeedStatsOf(runs, Availability);
    const proxy::ProxyStats& p = out.traffic.proxies;
    bench::Row("%14s %10s %10llu %13.2f%% %10llu %12llu %12llu %10llu",
               outage_names[i], outage_variants[i],
               static_cast<unsigned long long>(p.requests),
               Availability(out) * 100,
               static_cast<unsigned long long>(p.errors),
               static_cast<unsigned long long>(p.offline_serves),
               static_cast<unsigned long long>(p.fallback_serves),
               static_cast<unsigned long long>(p.timeouts));
    bench::JsonValue row = bench::JsonRow(
        {{"section", "outage"},
         {"outage", std::string(outage_names[i])},
         {"variant", std::string(outage_variants[i])},
         {"requests", p.requests},
         {"availability", Availability(out)},
         {"errors", p.errors},
         {"offline_serves", p.offline_serves},
         {"fallback_serves", p.fallback_serves},
         {"timeouts", p.timeouts},
         {"edge_down_rejects", out.edge_faults.down_rejects},
         {"excused_stale_reads", out.staleness.excused_stale_reads}});
    row.Set("availability_per_seed", bench::JsonSeedStats(avail));
    rows.Push(std::move(row));
  }
  bench::Note(
      "speed_kit rides out the origin outage on device/edge copies "
      "(offline serves are excused from the Delta bound: availability "
      "over freshness); an edge outage is absorbed by pass-through "
      "rerouting");

  bench::PrintSection("flaky client-edge link: retries, fallbacks, latency");
  bench::Row("%10s %10s %10s %10s %12s %14s %12s", "link_loss", "requests",
             "timeouts", "retries", "fallbacks", "availability", "p99_api_ms");
  for (size_t i = 0; i < std::size(kLinkLoss); ++i) {
    const std::vector<bench::RunOutput>& runs = sweep.outputs[flaky_off + i];
    bench::RunOutput out = bench::MergeRuns(runs);
    const proxy::ProxyStats& p = out.traffic.proxies;
    bench::Row("%10.2f %10llu %10llu %10llu %12llu %13.2f%% %12.1f",
               kLinkLoss[i], static_cast<unsigned long long>(p.requests),
               static_cast<unsigned long long>(p.timeouts),
               static_cast<unsigned long long>(p.retries),
               static_cast<unsigned long long>(p.fallback_serves),
               Availability(out) * 100, out.traffic.api_latency_us.P99() / 1e3);
    rows.Push(bench::JsonRow(
        {{"section", "flaky_link"},
         {"link_loss", kLinkLoss[i]},
         {"requests", p.requests},
         {"timeouts", p.timeouts},
         {"retries", p.retries},
         {"fallback_serves", p.fallback_serves},
         {"availability", Availability(out)},
         {"p99_api_ms", out.traffic.api_latency_us.P99() / 1e3},
         {"delta_violations", out.staleness.delta_violations}}));
  }
  bench::Note(
      "loss degrades tail latency (timeout + backoff burn) before it "
      "degrades availability (reroute to origin still serves)");

  bench::Note(bench::WallClockNote(sweep, num_seeds, threads));
  root.Set("rows", std::move(rows));
  root.Set("wall_seconds", sweep.wall_seconds);
  root.Set("cpu_seconds", sweep.cpu_seconds);
  root.Set("speedup", sweep.Speedup());
  if (!json_path.empty()) bench::WriteJsonFile(json_path, root);

  // Flaky-link config: its traces carry the richest degraded-path spans
  // (timeout waits, retry backoffs, reroutes) next to the happy paths.
  bench::MaybeTraceRun(FlakyLinkSpec(0.2), "faults", trace_path);
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  int seeds = static_cast<int>(flags.GetInt("seeds", 3));
  speedkit::g_coherence = speedkit::bench::CoherenceModeFromFlag(
      flags.GetString("coherence", ""));
  int threads = static_cast<int>(flags.GetInt("threads", 1));
  int shards = static_cast<int>(flags.GetInt("shards", 1));
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "faults");
  std::string trace_path = speedkit::bench::TracePathFromFlag(
      flags.GetString("trace", ""), "faults");

  speedkit::bench::PrintHeader(
      "E14", "Fault injection: purge loss, outages, flaky links",
      "degraded-mode behavior — the Delta bound survives purge loss, "
      "availability survives outages, retries absorb transient link loss");
  speedkit::Run(seeds, threads, shards, json_path, trace_path);
  return 0;
}
