// Minimal ordered JSON value tree + emitter for the experiment harnesses.
//
// Every fig_*/tbl_* binary accepts --json[=<path>] and, when set, writes a
// BENCH_<name>.json next to its text table so downstream tooling (plots,
// perf trajectories across PRs) can consume machine-readable metrics
// instead of scraping printf output. Keys keep insertion order so emitted
// files are deterministic and diffable.
#ifndef SPEEDKIT_BENCH_JSON_WRITER_H_
#define SPEEDKIT_BENCH_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace speedkit::bench {

class JsonValue {
 public:
  JsonValue() : rep_(nullptr) {}
  JsonValue(std::nullptr_t) : rep_(nullptr) {}          // NOLINT
  JsonValue(bool b) : rep_(b) {}                        // NOLINT
  JsonValue(int v) : rep_(static_cast<int64_t>(v)) {}   // NOLINT
  JsonValue(unsigned v) : rep_(static_cast<int64_t>(v)) {}  // NOLINT
  JsonValue(int64_t v) : rep_(v) {}                     // NOLINT
  JsonValue(uint64_t v) : rep_(static_cast<int64_t>(v)) {}  // NOLINT
  JsonValue(long long v) : rep_(static_cast<int64_t>(v)) {}  // NOLINT
  JsonValue(unsigned long long v) : rep_(static_cast<int64_t>(v)) {}  // NOLINT
  JsonValue(double v) : rep_(v) {}                      // NOLINT
  JsonValue(const char* s) : rep_(std::string(s)) {}    // NOLINT
  JsonValue(std::string s) : rep_(std::move(s)) {}      // NOLINT

  static JsonValue Object() {
    JsonValue v;
    v.rep_ = ObjectRep{};
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.rep_ = ArrayRep{};
    return v;
  }

  // Object field set — inserts or overwrites; keeps first-insertion order.
  JsonValue& Set(const std::string& key, JsonValue value) {
    auto& fields = std::get<ObjectRep>(rep_).fields;
    for (auto& [k, v] : fields) {
      if (k == key) {
        v = std::move(value);
        return *this;
      }
    }
    fields.emplace_back(key, std::move(value));
    return *this;
  }

  // Array append; returns a reference to the appended element.
  JsonValue& Push(JsonValue value) {
    auto& items = std::get<ArrayRep>(rep_).items;
    items.push_back(std::move(value));
    return items.back();
  }

  size_t size() const {
    if (auto* a = std::get_if<ArrayRep>(&rep_)) return a->items.size();
    if (auto* o = std::get_if<ObjectRep>(&rep_)) return o->fields.size();
    return 0;
  }

  std::string Dump(int indent = 2) const {
    std::string out;
    DumpTo(&out, indent, 0);
    return out;
  }

 private:
  struct ArrayRep {
    std::vector<JsonValue> items;
  };
  struct ObjectRep {
    std::vector<std::pair<std::string, JsonValue>> fields;
  };

  static void AppendEscaped(std::string* out, const std::string& s) {
    out->push_back('"');
    for (char c : s) {
      switch (c) {
        case '"': *out += "\\\""; break;
        case '\\': *out += "\\\\"; break;
        case '\n': *out += "\\n"; break;
        case '\r': *out += "\\r"; break;
        case '\t': *out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            *out += buf;
          } else {
            out->push_back(c);
          }
      }
    }
    out->push_back('"');
  }

  static void AppendNumber(std::string* out, double v) {
    if (!std::isfinite(v)) {
      *out += "null";  // JSON has no NaN/Inf
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    *out += buf;
  }

  void DumpTo(std::string* out, int indent, int depth) const {
    const std::string pad((depth + 1) * indent, ' ');
    const std::string closing_pad(depth * indent, ' ');
    if (std::holds_alternative<std::nullptr_t>(rep_)) {
      *out += "null";
    } else if (auto* b = std::get_if<bool>(&rep_)) {
      *out += *b ? "true" : "false";
    } else if (auto* i = std::get_if<int64_t>(&rep_)) {
      *out += std::to_string(*i);
    } else if (auto* d = std::get_if<double>(&rep_)) {
      AppendNumber(out, *d);
    } else if (auto* s = std::get_if<std::string>(&rep_)) {
      AppendEscaped(out, *s);
    } else if (auto* a = std::get_if<ArrayRep>(&rep_)) {
      if (a->items.empty()) {
        *out += "[]";
        return;
      }
      *out += "[\n";
      for (size_t i = 0; i < a->items.size(); ++i) {
        *out += pad;
        a->items[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < a->items.size()) *out += ",";
        *out += "\n";
      }
      *out += closing_pad + "]";
    } else if (auto* o = std::get_if<ObjectRep>(&rep_)) {
      if (o->fields.empty()) {
        *out += "{}";
        return;
      }
      *out += "{\n";
      for (size_t i = 0; i < o->fields.size(); ++i) {
        *out += pad;
        AppendEscaped(out, o->fields[i].first);
        *out += ": ";
        o->fields[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < o->fields.size()) *out += ",";
        *out += "\n";
      }
      *out += closing_pad + "}";
    }
  }

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, ArrayRep,
               ObjectRep>
      rep_;
};

// Builds an object from key/value pairs in one expression:
//   JsonRow({{"system", name}, {"p50_ms", p50}, {"hit_rate", 0.92}})
inline JsonValue JsonRow(
    std::initializer_list<std::pair<const char*, JsonValue>> fields) {
  JsonValue row = JsonValue::Object();
  for (const auto& [k, v] : fields) row.Set(k, v);
  return row;
}

// Writes `root` to `path` (trailing newline included). Returns false and
// prints a warning when the file cannot be written.
inline bool WriteJsonFile(const std::string& path, const JsonValue& root) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << root.Dump() << "\n";
  return out.good();
}

// Resolves the --json flag value for a harness named `name`: a bare
// `--json` picks the conventional BENCH_<name>.json, `--json=<path>`
// overrides, absent flag disables (empty string).
inline std::string JsonPathFromFlag(const std::string& flag_value,
                                    const std::string& name) {
  if (flag_value.empty()) return "";
  if (flag_value == "true") return "BENCH_" + name + ".json";
  return flag_value;
}

}  // namespace speedkit::bench

#endif  // SPEEDKIT_BENCH_JSON_WRITER_H_
