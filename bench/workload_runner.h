// Shared end-to-end run recipe for the traffic-driven experiments
// (E2/E3/E4/E8/E9): build a stack variant, populate the catalog, register
// category listings with origin + pipeline, run session traffic with a
// Poisson write process, and hand back everything the tables print.
//
// Sharded execution (E15): when spec.stack.shards > 1, RunWorkload builds
// a ShardedFleet instead of one stack — every shard replays the identical
// recipe over its slice of the client population on up to spec.run_threads
// threads — and merges the per-shard outputs in fixed shard order. The
// merged RunOutput is a pure function of (spec, shards): bit-identical for
// ANY run_threads (FingerprintRun is the check the tests and the E15
// harness gate on).
#ifndef SPEEDKIT_BENCH_WORKLOAD_RUNNER_H_
#define SPEEDKIT_BENCH_WORKLOAD_RUNNER_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/fleet.h"
#include "core/stack.h"
#include "core/traffic.h"

namespace speedkit::bench {

struct RunSpec {
  core::StackConfig stack;
  workload::CatalogConfig catalog;
  core::TrafficConfig traffic;
  uint64_t catalog_seed = 1;
  // Arms the staleness tracker's Δ-bound at (stack.delta + margin): any
  // non-excused read staler than that counts as a delta violation (E14).
  // Duration::Max() leaves the bound disarmed, as before this knob existed.
  Duration delta_bound_margin = Duration::Max();
  // Worker threads executing the shards of ONE run (only meaningful with
  // stack.shards > 1; never affects results, only wall-clock). Distinct
  // from the multi-seed parallelism of parallel_runner.h — see
  // SplitThreadBudget below for how harnesses divide a --threads budget.
  int run_threads = 1;
};

struct RunOutput {
  core::TrafficResult traffic;
  core::StalenessReport staleness;
  Histogram staleness_us;
  uint64_t origin_requests = 0;
  size_t sketch_entries = 0;
  uint64_t sketch_snapshot_bytes = 0;
  invalidation::PipelineStats pipeline;  // zero for pipeline-less variants
  cache::EdgeFaultStats edge_faults;     // degraded-mode accounting (E14)

  // Observability captures — non-null only when spec.stack.obs switched
  // them on AND the run was unsharded (a sharded run has one registry/sink
  // per shard; captures stay per-run artifacts, the merged numbers come
  // from the stats structs above). MergeRuns deliberately ignores them.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::InMemoryTraceSink> traces;
};

// Resolves the shared --coherence flag every harness accepts: the mode
// names are exactly CoherenceModeName's ("delta_atomic", "serializable",
// "fixed_ttl"); an empty value keeps the paper-faithful Δ-atomic default.
// An unknown name is a hard error — the run would otherwise silently
// measure the wrong protocol.
inline coherence::CoherenceMode CoherenceModeFromFlag(
    const std::string& text) {
  coherence::CoherenceMode mode = coherence::CoherenceMode::kDeltaAtomic;
  if (text.empty()) return mode;
  if (Status s = coherence::ParseCoherenceMode(text, &mode); !s.ok()) {
    std::fprintf(stderr, "--coherence: %s\n", s.ToString().c_str());
    std::exit(2);
  }
  return mode;
}

inline RunSpec DefaultRunSpec() {
  RunSpec spec;
  spec.catalog.num_products = 2000;
  spec.catalog.num_categories = 20;
  spec.traffic.num_clients = 25;
  spec.traffic.duration = Duration::Minutes(20);
  spec.traffic.writes_per_sec = 2.0;
  spec.traffic.write_skew = 0.8;
  return spec;
}

// How a harness's --threads budget is spent: multi-seed fan-out already
// saturates the budget when there are seeds to parallelize over, so in-run
// shard threads are only worth spinning up for a single-seed run —
// nesting both would oversubscribe every core. Returns {sweep_threads,
// run_threads}.
struct ThreadSplit {
  int sweep_threads = 1;
  int run_threads = 1;
};
inline ThreadSplit SplitThreadBudget(int threads, int num_seeds,
                                     size_t num_configs) {
  ThreadSplit split;
  if (num_seeds * static_cast<int>(num_configs) > 1) {
    split.sweep_threads = threads;
  } else {
    split.run_threads = threads;
  }
  return split;
}

// The per-stack recipe body: populate, register queries, settle, run
// traffic, snapshot stats. `catalog` is shared and read-only (Populate
// writes into the STACK's store, not the catalog). In a sharded fleet
// every shard executes this identically — each one holds the full store
// replica and write stream; only the client population is partitioned.
inline RunOutput RunOneStack(core::SpeedKitStack& stack,
                             const workload::Catalog& catalog,
                             const RunSpec& spec) {
  if (spec.delta_bound_margin != Duration::Max()) {
    stack.staleness().SetDeltaBound(spec.stack.coherence.delta +
                                   spec.delta_bound_margin);
  }
  catalog.Populate(&stack.store(), stack.clock().Now());
  for (int c = 0; c < catalog.num_categories(); ++c) {
    stack.origin().RegisterQuery(catalog.CategoryQuery(c));
    if (stack.pipeline() != nullptr) {
      stack.pipeline()->WatchQuery(catalog.CategoryQuery(c),
                                   catalog.CategoryUrl(c));
    }
  }
  // Settle population writes out of the sketch before traffic starts.
  stack.Advance(Duration::Seconds(5));

  core::TrafficSimulation sim(&stack, &catalog, spec.traffic);
  RunOutput out;
  out.traffic = sim.Run();
  out.staleness = stack.staleness().report();
  out.staleness_us = stack.staleness().staleness_us();
  out.origin_requests = stack.origin().stats().requests;
  if (stack.sketch() != nullptr) {
    out.sketch_entries = stack.sketch()->entries();
    out.sketch_snapshot_bytes =
        stack.sketch()->SerializedSnapshot(stack.clock().Now()).size();
  }
  if (stack.pipeline() != nullptr) {
    out.pipeline = stack.pipeline()->stats();
  }
  out.edge_faults = stack.cdn().TotalFaultStats();
  if (stack.metrics() != nullptr) {
    stack.CollectMetrics(&out.traffic.proxies);
    out.metrics = stack.metrics();
  }
  out.traces = stack.trace_sink();
  return out;
}

// Folds shard outputs (fixed, ascending shard order — determinism depends
// on it). Counters sum, histograms merge, gauges take the max; edge_faults
// sum correctly because shard views cover disjoint edge sets.
inline RunOutput MergeShardOutputs(std::vector<RunOutput> parts) {
  RunOutput merged = std::move(parts.front());
  for (size_t s = 1; s < parts.size(); ++s) {
    RunOutput& p = parts[s];
    merged.traffic.Merge(p.traffic);
    merged.staleness.Merge(p.staleness);
    merged.staleness_us.Merge(p.staleness_us);
    merged.origin_requests += p.origin_requests;
    merged.pipeline += p.pipeline;
    merged.edge_faults += p.edge_faults;
    merged.sketch_entries = std::max(merged.sketch_entries, p.sketch_entries);
    merged.sketch_snapshot_bytes =
        std::max(merged.sketch_snapshot_bytes, p.sketch_snapshot_bytes);
  }
  // Per-shard captures don't compose into one registry/sink; the merged
  // output carries numbers only.
  merged.metrics = nullptr;
  merged.traces = nullptr;
  return merged;
}

// One sharded run: shards execute concurrently on up to spec.run_threads
// workers, results land in a shard-indexed grid and merge in shard order.
inline RunOutput RunShardedWorkload(const RunSpec& spec) {
  workload::Catalog catalog(spec.catalog, Pcg32(spec.catalog_seed));
  core::ShardedFleet fleet(spec.stack);
  // Each shard writes its result into a cache-line-aligned slot of the
  // grid, so concurrent end-of-run stores never share a line; the merge
  // itself happens on the calling thread after the workers join.
  struct alignas(cache::kCacheLineBytes) ShardResult {
    RunOutput out;
  };
  std::vector<ShardResult> grid(static_cast<size_t>(fleet.shards()));
  core::ForEachShard(fleet.shards(), spec.run_threads, [&](int s) {
    grid[static_cast<size_t>(s)].out = RunOneStack(fleet.shard(s), catalog, spec);
  });
  std::vector<RunOutput> parts;
  parts.reserve(grid.size());
  for (ShardResult& slot : grid) parts.push_back(std::move(slot.out));
  return MergeShardOutputs(std::move(parts));
}

inline RunOutput RunWorkload(const RunSpec& spec) {
  if (spec.stack.shards > 1) return RunShardedWorkload(spec);
  core::SpeedKitStack stack(spec.stack);
  workload::Catalog catalog(spec.catalog, Pcg32(spec.catalog_seed));
  return RunOneStack(stack, catalog, spec);
}

// Structural fingerprint of a run's merged numbers: every load-bearing
// counter plus full-distribution histogram fingerprints. Two runs
// fingerprint equal iff they produced the same results — the invariance
// gate for "thread count never changes numbers" (tests/bench and E15).
inline uint64_t FingerprintRun(const RunOutput& out) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  const proxy::ProxyStats& p = out.traffic.proxies;
  mix(p.requests);
  mix(p.browser_hits);
  mix(p.edge_hits);
  mix(p.origin_fetches);
  mix(p.revalidations_304);
  mix(p.revalidations_200);
  mix(p.sketch_bypasses);
  mix(p.offline_serves);
  mix(p.errors);
  mix(p.sketch_refreshes);
  mix(p.sketch_bytes);
  mix(p.swr_serves);
  mix(p.bytes_from_browser_cache);
  mix(p.bytes_over_network);
  mix(p.timeouts);
  mix(p.retries);
  mix(p.fallback_serves);
  mix(p.background_revalidations);
  mix(p.background_304s);
  mix(p.background_200s);
  mix(p.background_errors);
  mix(p.background_bytes);
  mix(p.latency_browser_us.Fingerprint());
  mix(p.latency_edge_us.Fingerprint());
  mix(p.latency_origin_us.Fingerprint());
  mix(p.latency_offline_us.Fingerprint());
  mix(p.latency_error_us.Fingerprint());
  mix(p.latency_ok_us.Fingerprint());
  mix(p.latency_degraded_us.Fingerprint());
  mix(out.traffic.page_views);
  mix(out.traffic.writes_applied);
  mix(out.traffic.api_latency_us.Fingerprint());
  mix(out.traffic.all_latency_us.Fingerprint());
  mix(out.staleness.reads);
  mix(out.staleness.stale_reads);
  mix(out.staleness.clamped);
  mix(static_cast<uint64_t>(out.staleness.max_staleness.micros()));
  mix(out.staleness.delta_violations);
  mix(out.staleness.excused_stale_reads);
  mix(out.staleness_us.Fingerprint());
  mix(out.origin_requests);
  mix(out.pipeline.writes_seen);
  mix(out.pipeline.keys_invalidated);
  mix(out.pipeline.purges_scheduled);
  mix(out.pipeline.purges_effective);
  mix(out.pipeline.purges_dropped);
  mix(out.pipeline.purges_delayed);
  mix(out.edge_faults.down_rejects);
  mix(out.edge_faults.purges_dropped);
  mix(out.edge_faults.purges_delayed);
  mix(out.edge_faults.purge_delay_us.Fingerprint());
  mix(out.sketch_entries);
  mix(out.sketch_snapshot_bytes);
  return h;
}

}  // namespace speedkit::bench

#endif  // SPEEDKIT_BENCH_WORKLOAD_RUNNER_H_
