// Shared end-to-end run recipe for the traffic-driven experiments
// (E2/E3/E4/E8/E9): build a stack variant, populate the catalog, register
// category listings with origin + pipeline, run session traffic with a
// Poisson write process, and hand back everything the tables print.
#ifndef SPEEDKIT_BENCH_WORKLOAD_RUNNER_H_
#define SPEEDKIT_BENCH_WORKLOAD_RUNNER_H_

#include <memory>

#include "core/stack.h"
#include "core/traffic.h"

namespace speedkit::bench {

struct RunSpec {
  core::StackConfig stack;
  workload::CatalogConfig catalog;
  core::TrafficConfig traffic;
  uint64_t catalog_seed = 1;
  // Arms the staleness tracker's Δ-bound at (stack.delta + margin): any
  // non-excused read staler than that counts as a delta violation (E14).
  // Duration::Max() leaves the bound disarmed, as before this knob existed.
  Duration delta_bound_margin = Duration::Max();
};

struct RunOutput {
  core::TrafficResult traffic;
  core::StalenessReport staleness;
  Histogram staleness_us;
  uint64_t origin_requests = 0;
  size_t sketch_entries = 0;
  uint64_t sketch_snapshot_bytes = 0;
  invalidation::PipelineStats pipeline;  // zero for pipeline-less variants
  cache::EdgeFaultStats edge_faults;     // degraded-mode accounting (E14)

  // Observability captures — non-null only when spec.stack.obs switched
  // them on. Shared so they outlive the stack; MergeRuns deliberately
  // ignores them (trace/metric captures are per-run artifacts, the merged
  // numbers come from the stats structs above).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::InMemoryTraceSink> traces;
};

inline RunSpec DefaultRunSpec() {
  RunSpec spec;
  spec.catalog.num_products = 2000;
  spec.catalog.num_categories = 20;
  spec.traffic.num_clients = 25;
  spec.traffic.duration = Duration::Minutes(20);
  spec.traffic.writes_per_sec = 2.0;
  spec.traffic.write_skew = 0.8;
  return spec;
}

inline RunOutput RunWorkload(const RunSpec& spec) {
  core::SpeedKitStack stack(spec.stack);
  if (spec.delta_bound_margin != Duration::Max()) {
    stack.staleness().SetDeltaBound(spec.stack.delta + spec.delta_bound_margin);
  }
  workload::Catalog catalog(spec.catalog, Pcg32(spec.catalog_seed));
  catalog.Populate(&stack.store(), stack.clock().Now());
  for (int c = 0; c < catalog.num_categories(); ++c) {
    stack.origin().RegisterQuery(catalog.CategoryQuery(c));
    if (stack.pipeline() != nullptr) {
      stack.pipeline()->WatchQuery(catalog.CategoryQuery(c),
                                   catalog.CategoryUrl(c));
    }
  }
  // Settle population writes out of the sketch before traffic starts.
  stack.Advance(Duration::Seconds(5));

  core::TrafficSimulation sim(&stack, &catalog, spec.traffic);
  RunOutput out;
  out.traffic = sim.Run();
  out.staleness = stack.staleness().report();
  out.staleness_us = stack.staleness().staleness_us();
  out.origin_requests = stack.origin().stats().requests;
  if (stack.sketch() != nullptr) {
    out.sketch_entries = stack.sketch()->entries();
    out.sketch_snapshot_bytes =
        stack.sketch()->SerializedSnapshot(stack.clock().Now()).size();
  }
  if (stack.pipeline() != nullptr) {
    out.pipeline = stack.pipeline()->stats();
  }
  out.edge_faults = stack.cdn().TotalFaultStats();
  if (stack.metrics() != nullptr) {
    stack.CollectMetrics(&out.traffic.proxies);
    out.metrics = stack.metrics();
  }
  out.traces = stack.trace_sink();
  return out;
}

}  // namespace speedkit::bench

#endif  // SPEEDKIT_BENCH_WORKLOAD_RUNNER_H_
