// Parallel multi-seed experiment runner.
//
// The paper's evaluation numbers are distributions over repeated
// randomized trials, not single runs. RunSweep fans RunWorkload out over
// seeds × configs on a thread pool — each trial owns its whole
// single-threaded SpeedKitStack, so trials are embarrassingly parallel —
// and collects results into a [config][seed] grid in a fixed order, so the
// merged numbers are bit-identical regardless of thread count or
// completion order.
//
// Aggregation is two-level:
//   MergeRuns     pools one config's per-seed runs into a single RunOutput
//                 (histograms merged sample-by-sample, counters summed) —
//                 overall percentiles over all seeds' samples;
//   SeedStatsOf   the across-seed distribution of a scalar metric
//                 (mean/stddev/min/max/p50/p99 over the per-seed values) —
//                 run-to-run variance, the error bars on every figure.
#ifndef SPEEDKIT_BENCH_PARALLEL_RUNNER_H_
#define SPEEDKIT_BENCH_PARALLEL_RUNNER_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <string>
#include <vector>

#include "bench/json_writer.h"
#include "bench/workload_runner.h"
#include "common/thread_pool.h"

namespace speedkit::bench {

// Derives the trial spec for seed index `i` of a config. Seed index 0 is
// the base spec itself (a one-seed sweep reproduces the old single-run
// numbers); higher indices decorrelate stack, catalog and traffic RNG
// streams. Depends only on (base, i) — never on execution order.
inline RunSpec SpecForSeed(const RunSpec& base, int i) {
  RunSpec spec = base;
  uint64_t n = static_cast<uint64_t>(i);
  spec.stack.seed = base.stack.seed + n * 1000003ull;
  spec.catalog_seed = base.catalog_seed + n * 7919ull;
  spec.traffic.seed_salt = base.traffic.seed_salt + n * 131ull;
  return spec;
}

// Stamps the shared --coherence mode (see CoherenceModeFromFlag) into
// every sweep config.
inline void ApplyCoherenceFlag(std::vector<RunSpec>* configs,
                               coherence::CoherenceMode mode) {
  for (RunSpec& spec : *configs) spec.stack.coherence.mode = mode;
}

// Applies a harness's --shards/--threads flag pair to its sweep configs:
// stamps stack.shards into every config and splits the thread budget
// between multi-seed fan-out and in-run shard execution (see
// SplitThreadBudget — the two never nest, so cores are not
// oversubscribed). Returns the thread count to hand RunSweep.
inline int ApplyShardAndThreadFlags(std::vector<RunSpec>* configs, int shards,
                                    int threads, int num_seeds) {
  ThreadSplit split = SplitThreadBudget(threads, num_seeds, configs->size());
  for (RunSpec& spec : *configs) {
    spec.stack.shards = shards;
    spec.run_threads = split.run_threads;
  }
  return split.sweep_threads;
}

struct SweepResult {
  // outputs[config][seed], both dimensions in submission order.
  std::vector<std::vector<RunOutput>> outputs;
  double wall_seconds = 0;  // fan-out wall-clock
  double cpu_seconds = 0;   // summed per-trial thread CPU time

  // Parallel efficiency: ~num threads on idle multicore hardware, ~1 when
  // serial or on a single core. Built on per-thread CPU time, not per-trial
  // wall time — time a trial spends descheduled while other workers hold the
  // core does not count, so oversubscription can't fake a speedup.
  double Speedup() const {
    return wall_seconds > 0 ? cpu_seconds / wall_seconds : 0.0;
  }
};

// CPU time consumed by the calling thread, for the serial-equivalent cost
// accounting above. Falls back to wall time where thread clocks are missing.
inline double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  }
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Runs `num_seeds` trials of every config, `threads` at a time
// (threads <= 1 runs serially on the calling thread — same work, same
// numbers). Results land in a pre-sized grid indexed by (config, seed),
// so the fill order is deterministic no matter which trial finishes first.
inline SweepResult RunSweep(const std::vector<RunSpec>& configs,
                            int num_seeds, int threads) {
  using Clock = std::chrono::steady_clock;
  num_seeds = std::max(1, num_seeds);
  SweepResult result;
  result.outputs.resize(configs.size());
  for (auto& per_seed : result.outputs) per_seed.resize(num_seeds);
  std::vector<double> trial_seconds(configs.size() * num_seeds, 0.0);

  auto run_trial = [&](size_t flat) {
    size_t config_index = flat / static_cast<size_t>(num_seeds);
    int seed_index = static_cast<int>(flat % static_cast<size_t>(num_seeds));
    double cpu0 = ThreadCpuSeconds();
    result.outputs[config_index][seed_index] =
        RunWorkload(SpecForSeed(configs[config_index], seed_index));
    trial_seconds[flat] = ThreadCpuSeconds() - cpu0;
  };

  size_t total = configs.size() * static_cast<size_t>(num_seeds);
  auto start = Clock::now();
  if (threads <= 1) {
    for (size_t flat = 0; flat < total; ++flat) run_trial(flat);
  } else {
    ThreadPool pool(static_cast<size_t>(threads));
    ParallelFor(&pool, total, run_trial);
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (double s : trial_seconds) result.cpu_seconds += s;
  return result;
}

// Pools one config's per-seed runs into a single RunOutput. Counters sum;
// histograms merge; gauges (sketch entry count / snapshot size) take the
// max across seeds. Merge order is the given vector order — fixed by
// RunSweep — so the result is deterministic.
inline RunOutput MergeRuns(const std::vector<RunOutput>& runs) {
  RunOutput merged;
  for (const RunOutput& run : runs) {
    merged.traffic.Merge(run.traffic);
    merged.staleness.Merge(run.staleness);
    merged.staleness_us.Merge(run.staleness_us);
    merged.origin_requests += run.origin_requests;
    merged.pipeline += run.pipeline;
    merged.edge_faults += run.edge_faults;
    merged.sketch_entries = std::max(merged.sketch_entries, run.sketch_entries);
    merged.sketch_snapshot_bytes =
        std::max(merged.sketch_snapshot_bytes, run.sketch_snapshot_bytes);
  }
  return merged;
}

// Across-seed distribution of one scalar metric.
struct SeedStats {
  double mean = 0;
  double stddev = 0;  // population stddev over the seeds
  double min = 0;
  double max = 0;
  double p50 = 0;  // nearest-rank percentiles over the per-seed values
  double p99 = 0;
};

inline SeedStats SeedStatsOfValues(std::vector<double> values) {
  SeedStats stats;
  if (values.empty()) return stats;
  double sum = 0;
  for (double v : values) sum += v;
  stats.mean = sum / static_cast<double>(values.size());
  double var = 0;
  for (double v : values) var += (v - stats.mean) * (v - stats.mean);
  stats.stddev = std::sqrt(var / static_cast<double>(values.size()));
  std::sort(values.begin(), values.end());
  stats.min = values.front();
  stats.max = values.back();
  auto at = [&values](double q) {
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    rank = std::clamp<size_t>(rank, 1, values.size());
    return values[rank - 1];
  };
  stats.p50 = at(0.50);
  stats.p99 = at(0.99);
  return stats;
}

inline SeedStats SeedStatsOf(
    const std::vector<RunOutput>& runs,
    const std::function<double(const RunOutput&)>& metric) {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const RunOutput& run : runs) values.push_back(metric(run));
  return SeedStatsOfValues(std::move(values));
}

inline JsonValue JsonSeedStats(const SeedStats& stats) {
  return JsonRow({{"mean", stats.mean},
                  {"stddev", stats.stddev},
                  {"min", stats.min},
                  {"max", stats.max},
                  {"p50", stats.p50},
                  {"p99", stats.p99}});
}

// One-line wall-clock summary for the text table. The merged numbers are
// thread-count-invariant; only this note depends on the machine.
inline std::string WallClockNote(const SweepResult& sweep, int num_seeds,
                                 int threads) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%d seeds x %zu configs on %d thread(s): wall %.2fs, "
                "cpu %.2fs, speedup %.2fx",
                num_seeds, sweep.outputs.size(), threads, sweep.wall_seconds,
                sweep.cpu_seconds, sweep.Speedup());
  return buf;
}

}  // namespace speedkit::bench

#endif  // SPEEDKIT_BENCH_PARALLEL_RUNNER_H_
