// E13 — Warm-up dynamics: cache hit ratio and latency per minute after a
// cold start, Speed Kit vs. the fixed-TTL CDN.
//
// Reproduces the deployment-experience view: Speed Kit's aggressive
// (sketch-protected) TTLs let the hierarchy warm up and then *stay* warm
// under writes, while the conservative baseline keeps re-fetching.
#include <string>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "bench/trace_support.h"
#include "bench/workload_runner.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

// --shards/--threads: in-run sharded execution (results are invariant to
// the thread count; shards is a model parameter).
int g_shards = 1;
int g_run_threads = 1;
// --coherence: which protocol the stack runs (delta_atomic default).
coherence::CoherenceMode g_coherence = coherence::CoherenceMode::kDeltaAtomic;

bench::RunSpec TimelineSpec(core::SystemVariant variant) {
  bench::RunSpec spec = bench::DefaultRunSpec();
  spec.stack.shards = g_shards;
  spec.run_threads = g_run_threads;
  spec.stack.coherence.mode = g_coherence;
  spec.stack.variant = variant;
  spec.stack.fixed_ttl = Duration::Seconds(60);  // conservative baseline
  spec.traffic.duration = Duration::Minutes(30);
  spec.traffic.num_clients = 30;
  spec.traffic.writes_per_sec = 2.0;
  return spec;
}

core::TrafficResult RunTimeline(core::SystemVariant variant) {
  return bench::RunWorkload(TimelineSpec(variant)).traffic;
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  speedkit::g_shards = static_cast<int>(flags.GetInt("shards", 1));
  speedkit::g_coherence = speedkit::bench::CoherenceModeFromFlag(
      flags.GetString("coherence", ""));
  speedkit::g_run_threads = static_cast<int>(flags.GetInt("threads", 1));
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "warmup");
  std::string trace_path = speedkit::bench::TracePathFromFlag(
      flags.GetString("trace", ""), "warmup");

  speedkit::bench::PrintHeader(
      "E13", "Cache warm-up timeline (per-minute hit ratio & latency)",
      "deployment dynamics: how fast the hierarchy warms and whether it "
      "stays warm under writes");
  speedkit::core::TrafficResult sk =
      speedkit::RunTimeline(speedkit::core::SystemVariant::kSpeedKit);
  speedkit::core::TrafficResult cdn =
      speedkit::RunTimeline(speedkit::core::SystemVariant::kFixedTtlCdn);

  speedkit::bench::PrintSection(
      "per-minute: hit ratio / stale-read rate / mean latency — speed_kit "
      "vs fixed_ttl_cdn(60s)");
  speedkit::bench::Row("%8s %10s %10s %10s %10s %12s %12s", "minute",
                       "sk_hit", "cdn_hit", "sk_stale", "cdn_stale",
                       "sk_lat_ms", "cdn_lat_ms");
  speedkit::bench::JsonValue rows = speedkit::bench::JsonValue::Array();
  size_t minutes =
      std::max(sk.hit_ratio_timeline.num_buckets(),
               cdn.hit_ratio_timeline.num_buckets());
  for (size_t m = 0; m < minutes; ++m) {
    if (sk.hit_ratio_timeline.CountAt(m) == 0 &&
        cdn.hit_ratio_timeline.CountAt(m) == 0) {
      continue;
    }
    speedkit::bench::Row("%8zu %9.1f%% %9.1f%% %9.1f%% %9.1f%% %12.1f %12.1f",
                         m, sk.hit_ratio_timeline.MeanAt(m) * 100,
                         cdn.hit_ratio_timeline.MeanAt(m) * 100,
                         sk.stale_timeline.MeanAt(m) * 100,
                         cdn.stale_timeline.MeanAt(m) * 100,
                         sk.latency_ms_timeline.MeanAt(m),
                         cdn.latency_ms_timeline.MeanAt(m));
    rows.Push(speedkit::bench::JsonRow(
        {{"minute", static_cast<uint64_t>(m)},
         {"sk_hit_ratio", sk.hit_ratio_timeline.MeanAt(m)},
         {"cdn_hit_ratio", cdn.hit_ratio_timeline.MeanAt(m)},
         {"sk_stale_rate", sk.stale_timeline.MeanAt(m)},
         {"cdn_stale_rate", cdn.stale_timeline.MeanAt(m)},
         {"sk_latency_ms", sk.latency_ms_timeline.MeanAt(m)},
         {"cdn_latency_ms", cdn.latency_ms_timeline.MeanAt(m)}}));
  }
  if (!json_path.empty()) {
    speedkit::bench::JsonValue root = speedkit::bench::JsonValue::Object();
    root.Set("bench", "warmup");
    root.Set("rows", std::move(rows));
    speedkit::bench::WriteJsonFile(json_path, root);
  }
  speedkit::bench::Note(
      "the baseline's nominally-higher hit ratio is bought with stale "
      "serves (cdn_stale); every speed_kit hit is coherence-checked — "
      "its stale column stays ~0 at comparable latency");
  speedkit::bench::MaybeTraceRun(
      speedkit::TimelineSpec(speedkit::core::SystemVariant::kSpeedKit),
      "warmup", trace_path);
  return 0;
}
