// Process-memory probes for the memory-scaling benchmark (E16).
//
// Two complementary views:
//   - HeapBytesInUse(): live heap bytes per glibc's mallinfo2 — the
//     delta across a fleet construction is the fleet's heap footprint,
//     unaffected by pages the allocator has not returned to the OS;
//   - PeakRssBytes(): the process high-water mark (getrusage ru_maxrss),
//     the number an operator actually provisions for.
//
// Heap deltas are the gating quantity (deterministic up to allocator
// bookkeeping); peak RSS is reported for context only — it is monotone
// across sweep points in one process, so only the largest point's value
// is meaningful.
#ifndef SPEEDKIT_BENCH_MEM_PROBE_H_
#define SPEEDKIT_BENCH_MEM_PROBE_H_

#include <cstddef>
#include <cstdint>

#if defined(__GLIBC__)
#include <malloc.h>
#endif
#include <sys/resource.h>

namespace speedkit::bench {

inline uint64_t HeapBytesInUse() {
#if defined(__GLIBC__) && __GLIBC_PREREQ(2, 33)
  struct mallinfo2 mi = mallinfo2();
  return static_cast<uint64_t>(mi.uordblks) +
         static_cast<uint64_t>(mi.hblkhd);
#else
  return 0;  // probe unavailable; callers must skip heap-based gating
#endif
}

inline bool HeapProbeAvailable() {
#if defined(__GLIBC__) && __GLIBC_PREREQ(2, 33)
  return true;
#else
  return false;
#endif
}

inline uint64_t PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // ru_maxrss is in kilobytes on Linux.
  return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

}  // namespace speedkit::bench

#endif  // SPEEDKIT_BENCH_MEM_PROBE_H_
