// E9 — System comparison: Speed Kit vs. the designs it replaces.
//
// Reproduces the paper's "radically different approach" claim as a
// four-way comparison under identical traffic:
//   speed_kit          sketch coherence + estimated TTLs + CDN + browser
//   fixed_ttl_cdn      traditional CDN (the paper's strawman)
//   no_caching         correctness by construction, latency by punishment
//   pure_invalidation  purge-only coherence without browser caching
// The shape: only speed_kit gets low latency AND bounded staleness AND
// low origin load simultaneously.
//
// Monte-Carlo mode: every (write rate, system) cell runs --seeds
// independent trials fanned out over --threads workers; the table shows
// the seed-pooled percentiles with across-seed mean±stddev for the hit
// rate, and --json dumps the full distribution per cell.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "bench/parallel_runner.h"
#include "bench/trace_support.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

// --coherence: which protocol the stack runs (delta_atomic default).
coherence::CoherenceMode g_coherence = coherence::CoherenceMode::kDeltaAtomic;

constexpr core::SystemVariant kVariants[] = {
    core::SystemVariant::kSpeedKit, core::SystemVariant::kFixedTtlCdn,
    core::SystemVariant::kNoCaching, core::SystemVariant::kPureInvalidation};
constexpr double kWriteRates[] = {0.5, 2.0, 8.0};

double HitRate(const bench::RunOutput& out) {
  return out.traffic.BrowserHitRatio() + out.traffic.EdgeHitRatio();
}

void Run(int num_seeds, int threads, int shards, const std::string& json_path,
         const std::string& trace_path) {
  std::vector<bench::RunSpec> configs;
  for (double writes_per_sec : kWriteRates) {
    for (core::SystemVariant variant : kVariants) {
      bench::RunSpec spec = bench::DefaultRunSpec();
      spec.stack.variant = variant;
      spec.stack.fixed_ttl = Duration::Seconds(120);
      spec.traffic.writes_per_sec = writes_per_sec;
      configs.push_back(spec);
    }
  }
  bench::ApplyCoherenceFlag(&configs, g_coherence);
  int sweep_threads =
      bench::ApplyShardAndThreadFlags(&configs, shards, threads, num_seeds);

  bench::SweepResult sweep = bench::RunSweep(configs, num_seeds, sweep_threads);

  bench::JsonValue root = bench::JsonValue::Object();
  root.Set("bench", "baselines");
  root.Set("seeds", num_seeds);
  root.Set("threads", threads);
  root.Set("shards", shards);
  bench::JsonValue rows = bench::JsonValue::Array();

  size_t config_index = 0;
  for (double writes_per_sec : kWriteRates) {
    char section[64];
    std::snprintf(section, sizeof(section), "%.1f writes/s, %d seeds",
                  writes_per_sec, num_seeds);
    bench::PrintSection(section);
    bench::Row("%18s %10s %10s %17s %12s %14s %12s", "system", "p50_ms",
               "p99_ms", "hit_rate", "stale_rate", "max_stale_s",
               "origin_reqs");
    for (core::SystemVariant variant : kVariants) {
      const std::vector<bench::RunOutput>& runs = sweep.outputs[config_index];
      bench::RunOutput merged = bench::MergeRuns(runs);
      bench::SeedStats hit = bench::SeedStatsOf(runs, HitRate);
      bench::SeedStats p50 = bench::SeedStatsOf(runs, [](const auto& o) {
        return o.traffic.api_latency_us.P50() / 1e3;
      });
      bench::SeedStats p99 = bench::SeedStatsOf(runs, [](const auto& o) {
        return o.traffic.api_latency_us.P99() / 1e3;
      });
      bench::SeedStats stale = bench::SeedStatsOf(runs, [](const auto& o) {
        return o.staleness.StaleFraction();
      });
      std::string name(core::SystemVariantName(variant));
      bench::Row("%18s %10.1f %10.1f %10.1f%%±%4.1f %11.4f%% %14.2f %12llu",
                 name.c_str(), merged.traffic.api_latency_us.P50() / 1e3,
                 merged.traffic.api_latency_us.P99() / 1e3, hit.mean * 100,
                 hit.stddev * 100, merged.staleness.StaleFraction() * 100,
                 merged.staleness.max_staleness.seconds(),
                 static_cast<unsigned long long>(merged.origin_requests));

      bench::JsonValue row = bench::JsonRow(
          {{"writes_per_sec", writes_per_sec},
           {"system", name},
           {"p50_ms", merged.traffic.api_latency_us.P50() / 1e3},
           {"p99_ms", merged.traffic.api_latency_us.P99() / 1e3},
           {"stale_rate", merged.staleness.StaleFraction()},
           {"max_stale_s", merged.staleness.max_staleness.seconds()},
           {"origin_requests", merged.origin_requests},
           {"requests", merged.traffic.proxies.requests}});
      row.Set("hit_rate", bench::JsonSeedStats(hit));
      row.Set("p50_ms_per_seed", bench::JsonSeedStats(p50));
      row.Set("p99_ms_per_seed", bench::JsonSeedStats(p99));
      row.Set("stale_rate_per_seed", bench::JsonSeedStats(stale));
      rows.Push(std::move(row));
      config_index++;
    }
  }

  bench::Note(bench::WallClockNote(sweep, num_seeds, threads));
  root.Set("rows", std::move(rows));
  root.Set("wall_seconds", sweep.wall_seconds);
  root.Set("cpu_seconds", sweep.cpu_seconds);
  root.Set("speedup", sweep.Speedup());
  if (!json_path.empty()) bench::WriteJsonFile(json_path, root);

  // speed_kit at the lowest write rate: the canonical happy-path trace.
  bench::MaybeTraceRun(configs[0], "baselines", trace_path);
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  int seeds = static_cast<int>(flags.GetInt("seeds", 8));
  speedkit::g_coherence = speedkit::bench::CoherenceModeFromFlag(
      flags.GetString("coherence", ""));
  int threads = static_cast<int>(flags.GetInt("threads", 1));
  int shards = static_cast<int>(flags.GetInt("shards", 1));
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "baselines");
  std::string trace_path = speedkit::bench::TracePathFromFlag(
      flags.GetString("trace", ""), "baselines");

  speedkit::bench::PrintHeader(
      "E9", "Baseline comparison: latency, staleness, origin load",
      "the paper's positioning against traditional CDNs, no caching, and "
      "pure invalidation");
  speedkit::Run(seeds, threads, shards, json_path, trace_path);
  speedkit::bench::Note(
      "expected shape: speed_kit ~matches fixed_ttl_cdn latency with "
      "near-zero staleness; no_caching has zero staleness at ~10x latency; "
      "pure_invalidation bounds staleness but forfeits browser hits");
  return 0;
}
