// E9 — System comparison: Speed Kit vs. the designs it replaces.
//
// Reproduces the paper's "radically different approach" claim as a
// four-way comparison under identical traffic:
//   speed_kit          sketch coherence + estimated TTLs + CDN + browser
//   fixed_ttl_cdn      traditional CDN (the paper's strawman)
//   no_caching         correctness by construction, latency by punishment
//   pure_invalidation  purge-only coherence without browser caching
// The shape: only speed_kit gets low latency AND bounded staleness AND
// low origin load simultaneously.
#include "bench/bench_util.h"
#include "bench/workload_runner.h"

namespace speedkit {
namespace {

void Compare(double writes_per_sec) {
  bench::Row("%18s %10s %10s %12s %12s %14s %12s", "system", "p50_ms",
             "p99_ms", "hit_rate", "stale_rate", "max_stale_s",
             "origin_reqs");
  for (core::SystemVariant variant :
       {core::SystemVariant::kSpeedKit, core::SystemVariant::kFixedTtlCdn,
        core::SystemVariant::kNoCaching,
        core::SystemVariant::kPureInvalidation}) {
    bench::RunSpec spec = bench::DefaultRunSpec();
    spec.stack.variant = variant;
    spec.stack.fixed_ttl = Duration::Seconds(120);
    spec.traffic.writes_per_sec = writes_per_sec;
    bench::RunOutput out = bench::RunWorkload(spec);
    double hit_rate =
        out.traffic.BrowserHitRatio() + out.traffic.EdgeHitRatio();
    bench::Row("%18s %10.1f %10.1f %11.1f%% %11.4f%% %14.2f %12llu",
               std::string(core::SystemVariantName(variant)).c_str(),
               out.traffic.api_latency_us.P50() / 1e3,
               out.traffic.api_latency_us.P99() / 1e3, hit_rate * 100,
               out.staleness.StaleFraction() * 100,
               out.staleness.max_staleness.seconds(),
               static_cast<unsigned long long>(out.origin_requests));
  }
}

}  // namespace
}  // namespace speedkit

int main() {
  speedkit::bench::PrintHeader(
      "E9", "Baseline comparison: latency, staleness, origin load",
      "the paper's positioning against traditional CDNs, no caching, and "
      "pure invalidation");
  speedkit::bench::PrintSection("read-mostly (0.5 writes/s)");
  speedkit::Compare(0.5);
  speedkit::bench::PrintSection("moderate writes (2 writes/s)");
  speedkit::Compare(2.0);
  speedkit::bench::PrintSection("write-heavy (8 writes/s)");
  speedkit::Compare(8.0);
  speedkit::bench::Note(
      "expected shape: speed_kit ~matches fixed_ttl_cdn latency with "
      "near-zero staleness; no_caching has zero staleness at ~10x latency; "
      "pure_invalidation bounds staleness but forfeits browser hits");
  return 0;
}
