// E18 — Coherence modes head-to-head on the multi-key cart workload:
// Δ-atomic (Cache Sketch), serializable (version-validated read-only
// transactions) and fixed-TTL, all behind the same SpeedKit stack via
// --coherence / StackConfig::coherence.
//
// Each mode runs identical checkout traffic (K distinct product reads per
// transaction at one instant, Poisson writes underneath) and every
// committed transaction is audited against the version authority: did the
// reads observe a consistent snapshot? The table reports anomaly, abort
// and retry rates plus per-tier latency — the price each protocol pays
// for its guarantee.
//
// Self-gating (CI): exits 1 unless Δ-atomic and serializable commit with
// ZERO anomalies while fixed-TTL shows a nonzero anomaly baseline (if the
// baseline were zero the workload wouldn't be probing coherence at all).
#include <cstdint>
#include <string>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "core/cart_traffic.h"
#include "tools/flags.h"
#include "workload/catalog.h"

namespace speedkit {
namespace {

struct E18Params {
  size_t clients = 20;
  Duration duration = Duration::Minutes(10);
  size_t keys_per_txn = 4;
  double writes_per_sec = 4.0;
};

struct ModeOutcome {
  core::CartTrafficResult cart;
  core::StalenessReport staleness;
};

ModeOutcome RunMode(coherence::CoherenceMode mode, const E18Params& params) {
  core::StackConfig config;
  config.variant = core::SystemVariant::kSpeedKit;
  config.coherence.mode = mode;
  config.coherence.delta = Duration::Seconds(10);
  core::SpeedKitStack stack(config);

  workload::CatalogConfig catalog_config;
  catalog_config.num_products = 2000;
  catalog_config.num_categories = 20;
  workload::Catalog catalog(catalog_config, Pcg32(1));
  catalog.Populate(&stack.store(), stack.clock().Now());
  // Settle population writes out of the sketch before checkouts start.
  stack.Advance(Duration::Seconds(5));

  core::CartTrafficConfig traffic;
  traffic.num_clients = params.clients;
  traffic.duration = params.duration;
  traffic.keys_per_txn = params.keys_per_txn;
  traffic.writes_per_sec = params.writes_per_sec;

  ModeOutcome out;
  core::CartTrafficSimulation sim(&stack, &catalog, traffic);
  out.cart = sim.Run();
  out.staleness = stack.staleness().report();
  return out;
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  using namespace speedkit;
  tools::Flags flags(argc, argv);
  E18Params params;
  params.clients = static_cast<size_t>(flags.GetInt("clients", 20));
  params.duration = Duration::Minutes(flags.GetInt("duration", 10));
  params.keys_per_txn = static_cast<size_t>(flags.GetInt("keys", 4));
  params.writes_per_sec = flags.GetDouble("writes-per-sec", 4.0);
  std::string json_path =
      bench::JsonPathFromFlag(flags.GetString("json", ""), "coherence");

  bench::PrintHeader(
      "E18", "Pluggable coherence modes on the cart workload",
      "anomaly/abort/latency trade-off of delta_atomic vs serializable vs "
      "fixed_ttl behind one CoherenceProtocol interface");

  const coherence::CoherenceMode modes[] = {
      coherence::CoherenceMode::kDeltaAtomic,
      coherence::CoherenceMode::kSerializable,
      coherence::CoherenceMode::kFixedTtl,
  };

  bench::PrintSection("per-mode transaction outcomes");
  bench::Row("%14s %8s %8s %8s %9s %9s %10s %10s", "mode", "txns", "commit",
             "abort", "retries", "anomaly", "stale_rd", "p50_txn_ms");
  bench::JsonValue rows = bench::JsonValue::Array();
  ModeOutcome outcomes[3];
  for (int m = 0; m < 3; ++m) {
    outcomes[m] = RunMode(modes[m], params);
    const core::CartTrafficResult& c = outcomes[m].cart;
    const core::StalenessReport& s = outcomes[m].staleness;
    double retries_per_txn =
        c.txns_attempted == 0
            ? 0.0
            : static_cast<double>(c.txn_retries) /
                  static_cast<double>(c.txns_attempted);
    bench::Row("%14s %8llu %8llu %7.1f%% %9.3f %8.2f%% %9.2f%% %10.1f",
               std::string(CoherenceModeName(modes[m])).c_str(),
               static_cast<unsigned long long>(c.txns_attempted),
               static_cast<unsigned long long>(c.txns_committed),
               100.0 * c.AbortRate(), retries_per_txn,
               100.0 * c.AnomalyRate(), 100.0 * s.StaleFraction(),
               c.txn_latency_us.P50() / 1e3);
    const proxy::ProxyStats& p = c.proxies;
    rows.Push(bench::JsonRow(
        {{"section", "modes"},
         {"mode", std::string(CoherenceModeName(modes[m]))},
         {"txns_attempted", c.txns_attempted},
         {"txns_committed", c.txns_committed},
         {"txns_aborted", c.txns_aborted},
         {"txn_retries", c.txn_retries},
         {"anomalies", c.anomalies},
         {"anomaly_rate", c.AnomalyRate()},
         {"abort_rate", c.AbortRate()},
         {"stale_read_fraction", s.StaleFraction()},
         {"txn_validations", p.txn_validations},
         {"txn_validation_bytes", p.txn_validation_bytes},
         {"sketch_refreshes", p.sketch_refreshes},
         {"sketch_bytes", p.sketch_bytes},
         {"p50_txn_ms", c.txn_latency_us.P50() / 1e3},
         {"p99_txn_ms", c.txn_latency_us.P99() / 1e3},
         {"p50_browser_ms", p.latency_browser_us.P50() / 1e3},
         {"p50_edge_ms", p.latency_edge_us.P50() / 1e3},
         {"p50_origin_ms", p.latency_origin_us.P50() / 1e3},
         {"writes_applied", c.writes_applied}}));
  }
  bench::Note(
      "delta_atomic buys zero anomalies with sketch refresh bytes; "
      "serializable buys them with a validation RTT and occasional "
      "retries/aborts; fixed_ttl pays nothing and reads anomalies");

  if (!json_path.empty()) {
    bench::JsonValue root = bench::JsonValue::Object();
    root.Set("bench", "coherence");
    root.Set("rows", std::move(rows));
    bench::WriteJsonFile(json_path, root);
  }

  // The gate: both coherent modes must commit anomaly-free, and the
  // fixed-TTL baseline must actually exhibit anomalies (otherwise the
  // workload is too gentle to certify anything).
  const core::CartTrafficResult& delta = outcomes[0].cart;
  const core::CartTrafficResult& serializable = outcomes[1].cart;
  const core::CartTrafficResult& fixed = outcomes[2].cart;
  bool ok = true;
  if (delta.anomalies != 0) {
    std::fprintf(stderr, "E18 gate: delta_atomic committed %llu anomalies\n",
                 static_cast<unsigned long long>(delta.anomalies));
    ok = false;
  }
  if (serializable.anomalies != 0) {
    std::fprintf(stderr, "E18 gate: serializable committed %llu anomalies\n",
                 static_cast<unsigned long long>(serializable.anomalies));
    ok = false;
  }
  if (fixed.anomalies == 0) {
    std::fprintf(stderr,
                 "E18 gate: fixed_ttl showed no anomalies — workload no "
                 "longer probes coherence\n");
    ok = false;
  }
  if (delta.txns_committed == 0 || serializable.txns_committed == 0) {
    std::fprintf(stderr, "E18 gate: a coherent mode committed nothing\n");
    ok = false;
  }
  if (!ok) return 1;
  std::printf("\nE18 gate OK: 0 anomalies (delta_atomic, serializable), "
              "%llu anomalies (fixed_ttl baseline)\n",
              static_cast<unsigned long long>(fixed.anomalies));
  return 0;
}
