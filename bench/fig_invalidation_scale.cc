// E6 — Invalidation pipeline scalability: real-time query matching
// throughput vs. subscription count, partitioning and indexing, plus purge
// propagation latency.
//
// Reproduces the InvaliDB-style scalability story the paper's pipeline
// depends on: matching must stay fast as the number of watched query
// results grows, which is what partitioned, equality-indexed matching
// buys; the full-scan ablation shows the cliff it avoids.
#include <chrono>
#include <string>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "coherence/delta_atomic.h"
#include "common/histogram.h"
#include "common/random.h"
#include "invalidation/pipeline.h"
#include "invalidation/query_matcher.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

using Clock = std::chrono::steady_clock;

storage::Record MakeProduct(size_t id, int64_t category, double price) {
  storage::Record r;
  r.id = "p" + std::to_string(id);
  r.version = 1;
  r.fields["category"] = category;
  r.fields["price"] = price;
  return r;
}

// Registers `n` subscriptions: 90% category equalities (indexable), 10%
// narrow price bands (range predicates land on the scan list — no
// equality to index on). Bands are selective, like real watched queries
// ("deals between 40 and 45 euros"), so output size stays small and the
// measurement reflects probing cost.
void Populate(invalidation::QueryMatcher* matcher, size_t n,
              int64_t categories) {
  for (size_t i = 0; i < n; ++i) {
    invalidation::Query q;
    q.id = "q" + std::to_string(i);
    if (i % 10 != 0) {
      q.conditions.push_back({"category", invalidation::Op::kEq,
                              static_cast<int64_t>(i % categories)});
    } else {
      double lo = static_cast<double>(i % 195);
      q.conditions.push_back({"price", invalidation::Op::kGe, lo});
      q.conditions.push_back({"price", invalidation::Op::kLt, lo + 5.0});
    }
    matcher->Subscribe(std::move(q));
  }
}

double MeasureWritesPerSec(invalidation::QueryMatcher* matcher, int writes,
                           int64_t categories) {
  Pcg32 rng(7);
  auto start = Clock::now();
  size_t hits = 0;
  for (int i = 0; i < writes; ++i) {
    storage::Record before = MakeProduct(
        i, static_cast<int64_t>(rng.NextBounded(
               static_cast<uint32_t>(categories))),
        rng.Uniform(1, 200));
    storage::Record after = before;
    after.fields["price"] = rng.Uniform(1, 200);
    after.version = 2;
    hits += matcher->MatchWrite(&before, after).size();
  }
  double secs = std::chrono::duration<double>(Clock::now() - start).count();
  return writes / secs;
}

void ThroughputSweep(bench::JsonValue* rows) {
  bench::PrintSection(
      "matching throughput (writes/s) vs subscriptions; 200 categories");
  bench::Row("%14s %14s %14s %14s", "subscriptions", "indexed_p4",
             "indexed_p1", "fullscan_p4");
  constexpr int64_t kCategories = 200;
  for (size_t subs : {1000u, 10000u, 100000u, 300000u}) {
    int writes = subs >= 100000 ? 2000 : 20000;
    invalidation::QueryMatcher indexed4(4, true);
    Populate(&indexed4, subs, kCategories);
    invalidation::QueryMatcher indexed1(1, true);
    Populate(&indexed1, subs, kCategories);
    invalidation::QueryMatcher scan4(4, false);
    Populate(&scan4, subs, kCategories);
    int scan_writes = subs >= 100000 ? 50 : 500;
    double indexed_p4 = MeasureWritesPerSec(&indexed4, writes, kCategories);
    double indexed_p1 = MeasureWritesPerSec(&indexed1, writes, kCategories);
    double fullscan_p4 = MeasureWritesPerSec(&scan4, scan_writes, kCategories);
    bench::Row("%14zu %14.0f %14.0f %14.0f", subs, indexed_p4, indexed_p1,
               fullscan_p4);
    rows->Push(bench::JsonRow({{"section", "matching_throughput"},
                               {"subscriptions", static_cast<uint64_t>(subs)},
                               {"indexed_p4_writes_per_s", indexed_p4},
                               {"indexed_p1_writes_per_s", indexed_p1},
                               {"fullscan_p4_writes_per_s", fullscan_p4}}));
  }
  bench::Note("the index prunes equality subscriptions to ~n/200 probes; "
              "the residual cost is the un-indexable range subscriptions "
              "(10% here) — the load InvaliDB spreads across cluster "
              "partitions");
}

void PurgePropagation(bench::JsonValue* rows) {
  bench::PrintSection("purge propagation latency (write -> last edge clean)");
  bench::Row("%8s %14s %14s %14s", "edges", "p50_ms", "p99_ms", "max_ms");
  for (int edges : {2, 4, 8, 16, 32}) {
    sim::SimClock clock;
    sim::EventQueue events(&clock);
    cache::Cdn cdn(edges, 0);
    coherence::CoherenceConfig cc;
    cc.sketch_capacity = 10000;
    cc.sketch_fpr = 0.05;
    coherence::DeltaAtomicProtocol protocol(cc);
    invalidation::PipelineConfig config;  // 80ms median, lognormal 0.4
    invalidation::InvalidationPipeline pipeline(config, &clock, &events, &cdn,
                                                &protocol, Pcg32(3));
    for (int i = 0; i < 2000; ++i) {
      storage::Record r = MakeProduct(static_cast<size_t>(i), 1, 10);
      pipeline.OnWrite(nullptr, r);
      events.RunUntil(clock.Now() + Duration::Seconds(1));
    }
    const Histogram& h = pipeline.propagation_latency_us();
    bench::Row("%8d %14.1f %14.1f %14.1f", edges, h.P50() / 1e3, h.P99() / 1e3,
               h.max() / 1e3);
    rows->Push(bench::JsonRow({{"section", "purge_propagation"},
                               {"edges", edges},
                               {"p50_ms", h.P50() / 1e3},
                               {"p99_ms", h.P99() / 1e3},
                               {"max_ms", h.max() / 1e3}}));
  }
  bench::Note("latency is max over edges: grows ~logarithmically with edge "
              "count under lognormal per-edge jitter");
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "invalidation_scale");

  speedkit::bench::PrintHeader(
      "E6", "Invalidation pipeline scalability",
      "InvaliDB-style real-time query matching + CDN purge fan-out that "
      "the coherence protocol rides on");
  speedkit::bench::JsonValue rows = speedkit::bench::JsonValue::Array();
  speedkit::ThroughputSweep(&rows);
  speedkit::PurgePropagation(&rows);
  if (!json_path.empty()) {
    speedkit::bench::JsonValue root = speedkit::bench::JsonValue::Object();
    root.Set("bench", "invalidation_scale");
    root.Set("rows", std::move(rows));
    speedkit::bench::WriteJsonFile(json_path, root);
  }
  return 0;
}
