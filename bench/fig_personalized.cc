// E7 — Caching personalized content: how much of a personalized page can
// still be served from caches, as the user-scoped share and the segment
// count vary — and what GDPR mode costs.
//
// Reproduces the paper's personalization pillar: dynamic blocks let the
// cacheable share stay high even on "personalized" pages (segment blocks
// are shared within cohorts; user blocks join on-device). The legacy
// baseline fetches user content with identity and caches none of it.
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "core/stack.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

struct BlockRunResult {
  double cache_hit_share = 0;     // block fetches served from a cache
  double bytes_from_cache = 0;    // share of block bytes not re-downloaded
  Duration mean_latency = Duration::Zero();
  uint64_t pii_violations = 0;
};

// `user_share`: fraction of a page's 8 blocks that are user-scoped;
// the rest are segment-scoped.
BlockRunResult RunBlocks(double user_share, int segments, bool gdpr_mode,
                         int num_users) {
  core::StackConfig config;
  core::SpeedKitStack stack(config);

  personalization::PageTemplate tpl;
  tpl.url = "https://shop.example.com/pages/home";
  constexpr int kBlocks = 8;
  int user_blocks = static_cast<int>(user_share * kBlocks + 0.5);
  for (int i = 0; i < kBlocks; ++i) {
    personalization::BlockScope scope =
        i < user_blocks ? personalization::BlockScope::kUser
                        : personalization::BlockScope::kSegment;
    tpl.blocks.push_back(
        {"b" + std::to_string(i), scope, 2048});
  }
  personalization::Segmenter segmenter(segments);

  BlockRunResult result;
  uint64_t fetches = 0;
  uint64_t cache_hits = 0;
  int64_t total_latency_us = 0;
  std::vector<std::unique_ptr<personalization::PiiVault>> vaults;
  std::vector<std::unique_ptr<personalization::BoundaryAuditor>> auditors;

  for (int u = 0; u < num_users; ++u) {
    uint64_t user_id = 7000 + static_cast<uint64_t>(u);
    vaults.push_back(std::make_unique<personalization::PiiVault>(user_id));
    vaults.back()->Put("name", "User " + std::to_string(user_id));
    vaults.back()->Put("cart", std::to_string(u % 3) + " items");
    auditors.push_back(std::make_unique<personalization::BoundaryAuditor>());
    auditors.back()->RegisterVault(*vaults.back());
    proxy::ProxyConfig pc = stack.DefaultProxyConfig();
    pc.gdpr_mode = gdpr_mode;
    auto client = stack.MakeClient(pc, user_id, auditors.back().get());
    client->AttachVault(vaults.back().get());

    for (const auto& block : tpl.blocks) {
      proxy::BlockResult r = client->FetchBlock(tpl, block, segmenter);
      fetches++;
      total_latency_us += r.latency.micros();
      if (r.source == proxy::ServedFrom::kBrowserCache ||
          r.source == proxy::ServedFrom::kEdgeCache) {
        cache_hits++;
      }
    }
    result.pii_violations += auditors.back()->violations();
  }
  result.cache_hit_share =
      static_cast<double>(cache_hits) / static_cast<double>(fetches);
  result.mean_latency =
      Duration::Micros(total_latency_us / static_cast<int64_t>(fetches));
  return result;
}

void UserShareSweep(bench::JsonValue* rows) {
  bench::PrintSection(
      "cache hits on block fetches vs user-scoped share (64 segments, "
      "200 users, GDPR mode vs legacy)");
  bench::Row("%12s %14s %14s %14s %14s", "user_share", "gdpr_hits",
             "gdpr_lat_ms", "legacy_hits", "legacy_leaks");
  for (double share : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    BlockRunResult gdpr = RunBlocks(share, 64, true, 200);
    BlockRunResult legacy = RunBlocks(share, 64, false, 200);
    bench::Row("%11.0f%% %13.1f%% %14.2f %13.1f%% %14llu", share * 100,
               gdpr.cache_hit_share * 100, gdpr.mean_latency.millis(),
               legacy.cache_hit_share * 100,
               static_cast<unsigned long long>(legacy.pii_violations));
    rows->Push(bench::JsonRow({{"section", "user_share"},
                               {"user_share", share},
                               {"gdpr_hit_share", gdpr.cache_hit_share},
                               {"gdpr_latency_ms", gdpr.mean_latency.millis()},
                               {"legacy_hit_share", legacy.cache_hit_share},
                               {"legacy_pii_violations",
                                legacy.pii_violations}}));
  }
  bench::Note("GDPR mode keeps hit share high even at 100% user-scoped "
              "blocks (templates are shared); legacy hit share collapses "
              "and leaks identity on every user-block fetch");
}

void SegmentCountSweep(bench::JsonValue* rows) {
  bench::PrintSection(
      "segment blocks: cache hits vs cohort count (0% user share, "
      "200 users)");
  bench::Row("%10s %14s %16s", "segments", "hit_share", "identity_bits");
  for (int segments : {1, 4, 16, 64, 256, 1024}) {
    BlockRunResult r = RunBlocks(0.0, segments, true, 200);
    personalization::Segmenter seg(segments);
    bench::Row("%10d %13.1f%% %16.1f", segments, r.cache_hit_share * 100,
               seg.IdentityBits());
    rows->Push(bench::JsonRow({{"section", "segment_count"},
                               {"segments", segments},
                               {"hit_share", r.cache_hit_share},
                               {"identity_bits", seg.IdentityBits()}}));
  }
  bench::Note("more segments = more personalization but fewer shared "
              "fragments (hit share drops) and more identity bits: the "
              "privacy/performance dial");
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "personalized");

  speedkit::bench::PrintHeader(
      "E7", "Caching personalized content: dynamic blocks & GDPR mode",
      "the paper's personalization pillar (segment/user block split, "
      "on-device join, zero PII egress)");
  speedkit::bench::JsonValue rows = speedkit::bench::JsonValue::Array();
  speedkit::UserShareSweep(&rows);
  speedkit::SegmentCountSweep(&rows);
  if (!json_path.empty()) {
    speedkit::bench::JsonValue root = speedkit::bench::JsonValue::Object();
    root.Set("bench", "personalized");
    root.Set("rows", std::move(rows));
    speedkit::bench::WriteJsonFile(json_path, root);
  }
  return 0;
}
