// Shared output helpers for the experiment harnesses. Every fig_*/tbl_*
// binary prints aligned tables with a header block naming the experiment
// and the paper claim it reproduces, so bench_output.txt reads as a
// self-contained lab notebook.
#ifndef SPEEDKIT_BENCH_BENCH_UTIL_H_
#define SPEEDKIT_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace speedkit::bench {

inline void PrintHeader(const std::string& id, const std::string& title,
                        const std::string& reproduces) {
  std::printf("\n");
  std::printf("================================================================================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("reproduces: %s\n", reproduces.c_str());
  std::printf("================================================================================\n");
}

inline void PrintSection(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

// Prints one table row from printf-style args.
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::printf("\n");
}

inline void Note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

}  // namespace speedkit::bench

#endif  // SPEEDKIT_BENCH_BENCH_UTIL_H_
