// E8 — Protocol overhead: Cache Sketch maintenance traffic vs. Δ and
// write rate.
//
// Reproduces the protocol-overhead table: what keeping clients coherent
// costs in snapshot bytes per client per minute, how the snapshot's
// false-positive rate moves with write pressure, and how many extra
// revalidations false positives cause. The trade: small Δ = tight bound =
// more refresh traffic.
#include <string>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "bench/trace_support.h"
#include "bench/workload_runner.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

// --shards/--threads: in-run sharded execution for every RunWorkload this
// harness performs (results are invariant to the thread count; the shard
// count is a model parameter and must divide cdn_edges).
int g_shards = 1;
int g_run_threads = 1;
// --coherence: which protocol the stack runs (delta_atomic default).
coherence::CoherenceMode g_coherence = coherence::CoherenceMode::kDeltaAtomic;

bench::RunSpec BaseSpec() {
  bench::RunSpec spec = bench::DefaultRunSpec();
  spec.stack.shards = g_shards;
  spec.run_threads = g_run_threads;
  spec.stack.coherence.mode = g_coherence;
  return spec;
}


void DeltaTrafficSweep(bench::JsonValue* rows) {
  bench::PrintSection(
      "per-client sketch traffic vs delta (fixed 120s TTL, 2 writes/s)");
  bench::Row("%8s %12s %14s %16s %14s %12s", "delta_s", "refreshes",
             "snapshot_B", "bytes/client/min", "bypasses", "max_stale_s");
  for (int delta_s : {5, 10, 30, 60, 120}) {
    bench::RunSpec spec = BaseSpec();
    spec.stack.ttl_mode = core::TtlMode::kFixed;
    spec.stack.fixed_ttl = Duration::Seconds(120);
    spec.stack.coherence.delta = Duration::Seconds(delta_s);
    bench::RunOutput out = bench::RunWorkload(spec);
    double client_minutes = static_cast<double>(spec.traffic.num_clients) *
                            spec.traffic.duration.seconds() / 60.0;
    double bytes_per_client_min =
        static_cast<double>(out.traffic.proxies.sketch_bytes) / client_minutes;
    bench::Row("%8d %12llu %14llu %16.0f %14llu %14.2f", delta_s,
               static_cast<unsigned long long>(
                   out.traffic.proxies.sketch_refreshes),
               static_cast<unsigned long long>(out.sketch_snapshot_bytes),
               bytes_per_client_min,
               static_cast<unsigned long long>(
                   out.traffic.proxies.sketch_bypasses),
               out.staleness.max_staleness.seconds());
    rows->Push(bench::JsonRow(
        {{"section", "delta_traffic"},
         {"delta_s", delta_s},
         {"sketch_refreshes", out.traffic.proxies.sketch_refreshes},
         {"snapshot_bytes", static_cast<uint64_t>(out.sketch_snapshot_bytes)},
         {"bytes_per_client_min", bytes_per_client_min},
         {"sketch_bypasses", out.traffic.proxies.sketch_bypasses},
         {"max_stale_s", out.staleness.max_staleness.seconds()}}));
  }
}

void WriteRateSweep(bench::JsonValue* rows) {
  bench::PrintSection(
      "sketch load vs write rate (delta 30s, fixed 120s TTL)");
  bench::Row("%12s %14s %14s %14s %14s", "writes_per_s", "sketch_entries",
             "snapshot_B", "bypasses", "reval_304");
  for (double rate : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    bench::RunSpec spec = BaseSpec();
    spec.stack.ttl_mode = core::TtlMode::kFixed;
    spec.stack.fixed_ttl = Duration::Seconds(120);
    spec.stack.coherence.delta = Duration::Seconds(30);
    spec.traffic.writes_per_sec = rate;
    bench::RunOutput out = bench::RunWorkload(spec);
    bench::Row("%12.1f %14zu %14llu %14llu %14llu", rate, out.sketch_entries,
               static_cast<unsigned long long>(out.sketch_snapshot_bytes),
               static_cast<unsigned long long>(
                   out.traffic.proxies.sketch_bypasses),
               static_cast<unsigned long long>(
                   out.traffic.proxies.revalidations_304));
    rows->Push(bench::JsonRow(
        {{"section", "write_rate"},
         {"writes_per_sec", rate},
         {"sketch_entries", static_cast<uint64_t>(out.sketch_entries)},
         {"snapshot_bytes", static_cast<uint64_t>(out.sketch_snapshot_bytes)},
         {"sketch_bypasses", out.traffic.proxies.sketch_bypasses},
         {"revalidations_304", out.traffic.proxies.revalidations_304}}));
  }
  bench::Note("sketch population ~ write rate x TTL; snapshot stays compact "
              "(bits, not keys) — the protocol's scalability argument");
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  speedkit::g_shards = static_cast<int>(flags.GetInt("shards", 1));
  speedkit::g_coherence = speedkit::bench::CoherenceModeFromFlag(
      flags.GetString("coherence", ""));
  speedkit::g_run_threads = static_cast<int>(flags.GetInt("threads", 1));
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "sketch_traffic");
  std::string trace_path = speedkit::bench::TracePathFromFlag(
      flags.GetString("trace", ""), "sketch_traffic");

  speedkit::bench::PrintHeader(
      "E8", "Cache Sketch maintenance traffic",
      "protocol overhead table: coherence bytes per client vs delta and "
      "write pressure");
  speedkit::bench::JsonValue rows = speedkit::bench::JsonValue::Array();
  speedkit::DeltaTrafficSweep(&rows);
  speedkit::WriteRateSweep(&rows);
  if (!json_path.empty()) {
    speedkit::bench::JsonValue root = speedkit::bench::JsonValue::Object();
    root.Set("bench", "sketch_traffic");
    root.Set("rows", std::move(rows));
    speedkit::bench::WriteJsonFile(json_path, root);
  }
  // The delta=30s / fixed-120s-TTL cell both sweeps share.
  speedkit::bench::RunSpec trace_spec = speedkit::bench::DefaultRunSpec();
  trace_spec.stack.ttl_mode = speedkit::core::TtlMode::kFixed;
  trace_spec.stack.fixed_ttl = speedkit::Duration::Seconds(120);
  trace_spec.stack.coherence.delta = speedkit::Duration::Seconds(30);
  speedkit::bench::MaybeTraceRun(trace_spec, "sketch_traffic", trace_path);
  return 0;
}
