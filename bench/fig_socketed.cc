// E17 -- socketed edge vs. simulator prediction.
//
// Boots a real speedkit_edged instance on an ephemeral localhost port,
// drives it over genuine TCP with the closed-loop load generator, then
// replays the IDENTICAL per-worker request streams through a pure
// simulation of the same stack. The two runs share every knob: seed,
// catalog, Zipf popularity, per-worker Pcg32 forks, flight mode. The
// point of the figure is the paper's implicit claim that the simulator
// PREDICTS the socketed system: cache hit rate must agree within a few
// points, and the latency gap is exactly the modeled network (the sim
// charges rtt/xfer; localhost charges microseconds).
//
// Gates (env-overridable):
//   SPEEDKIT_E17_MAX_HIT_GAP   |socket - sim| hit-rate gap, default 0.05
//   zero transport errors / zero 5xx from the socket run
//   single-flight visibly collapsing (joins > 0 under kCoalesce)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "common/random.h"
#include "core/stack.h"
#include "http/url.h"
#include "net/edged_server.h"
#include "net/loadgen.h"
#include "proxy/client_pool.h"
#include "proxy/client_proxy.h"
#include "tools/flags.h"
#include "workload/catalog.h"
#include "workload/zipf.h"

namespace {

using speedkit::Duration;
using speedkit::Histogram;
using speedkit::Pcg32;

double EnvBudget(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::atof(raw);
}

struct SimReplay {
  uint64_t requests = 0;
  uint64_t origin_serves = 0;
  uint64_t flight_joins = 0;
  uint64_t origin_requests = 0;
  Histogram latency_us;

  double HitRate() const {
    if (requests == 0) return 0.0;
    return 1.0 -
           static_cast<double>(origin_serves) / static_cast<double>(requests);
  }
};

// Replays the loadgen's exact request streams inside the simulator: same
// catalog, same shared Zipf popularity, same per-worker Pcg32 forks, one
// sim client per worker. Workers interleave round-robin with a fixed
// inter-arrival so concurrent hot keys overlap origin flight windows the
// way the socket run's real concurrency does.
SimReplay ReplayInSim(const speedkit::core::StackConfig& stack_config,
                      const speedkit::net::LoadGenConfig& lg,
                      Duration warmup, Duration inter_arrival) {
  namespace workload = speedkit::workload;
  speedkit::core::SpeedKitStack stack(stack_config);
  workload::Catalog catalog(lg.catalog, stack.ForkRng(0xca7a10a));
  catalog.Populate(&stack.store(), stack.clock().Now());
  if (warmup > Duration::Zero()) stack.Advance(warmup);
  auto pool = stack.MakeClientPool(speedkit::proxy::ClientPoolConfig{});

  size_t hot = lg.hot_products;
  if (hot == 0 || hot > catalog.num_products()) hot = catalog.num_products();
  std::vector<speedkit::http::Url> urls;
  urls.reserve(hot);
  for (size_t rank = 0; rank < hot; ++rank) {
    urls.push_back(*speedkit::http::Url::Parse(catalog.ProductUrl(rank)));
  }
  workload::ZipfGenerator popularity(hot, lg.zipf_s);

  size_t workers = static_cast<size_t>(lg.workers);
  std::vector<Pcg32> rngs;
  std::vector<speedkit::proxy::ClientProxy*> clients;
  rngs.reserve(workers);
  clients.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    rngs.push_back(Pcg32(lg.seed).Fork(0x10ad0000 + w));
    clients.push_back(pool->MakeClient(stack.DefaultProxyConfig(), w));
  }

  SimReplay replay;
  for (uint64_t i = 0; i < lg.requests_per_worker; ++i) {
    for (size_t w = 0; w < workers; ++w) {
      stack.Advance(inter_arrival);
      const speedkit::http::Url& url = urls[popularity.Sample(rngs[w])];
      speedkit::proxy::FetchResult result = clients[w]->Fetch(url);
      replay.requests++;
      if (result.source == speedkit::proxy::ServedFrom::kOrigin) {
        replay.origin_serves++;
      }
      replay.latency_us.Add(result.latency.micros());
    }
  }
  replay.flight_joins = stack.cdn().flight_joins();
  replay.origin_requests = stack.origin().stats().requests;
  return replay;
}

}  // namespace

int main(int argc, char** argv) {
  namespace bench = speedkit::bench;
  namespace net = speedkit::net;
  speedkit::tools::Flags flags(argc, argv);

  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int workers = static_cast<int>(flags.GetInt("workers", 4));
  const uint64_t requests =
      static_cast<uint64_t>(flags.GetInt("requests", 2000));
  const size_t products =
      static_cast<size_t>(flags.GetInt("products", 2000));
  const size_t hot_products =
      static_cast<size_t>(flags.GetInt("hot-products", 500));
  const double zipf_s = flags.GetDouble("zipf", 0.95);
  const std::string json_path =
      bench::JsonPathFromFlag(flags.GetString("json", ""), "socketed");

  bench::PrintHeader(
      "E17", "socketed edge vs. simulator prediction",
      "the simulator as a predictor: the same stack served over real TCP "
      "sockets shows the same cache hit rate, and the latency gap is the "
      "modeled network");

  // --- socket run: real edged on an ephemeral port, real TCP clients ----
  net::EdgedConfig edged;
  edged.host = "127.0.0.1";
  edged.port = 0;
  edged.stack.seed = seed;
  edged.stack.origin_flight = speedkit::cache::OriginFlightMode::kCoalesce;
  edged.catalog.num_products = products;

  net::EdgedServer server(edged);
  if (!server.Start()) {
    std::fprintf(stderr, "FATAL: could not bind an ephemeral localhost port\n");
    return 1;
  }
  std::thread server_thread([&server] { server.Run(); });

  net::LoadGenConfig lg;
  lg.targets.push_back({edged.node_name, edged.host, server.port()});
  lg.workers = workers;
  lg.requests_per_worker = requests;
  lg.seed = seed;
  lg.zipf_s = zipf_s;
  lg.hot_products = hot_products;
  lg.catalog.num_products = products;

  net::LoadGenReport socket_report = net::RunLoadGen(lg);
  server.Stop();
  server_thread.join();

  const double socket_hit = socket_report.HitRate();
  const double throughput =
      socket_report.wall_seconds > 0
          ? static_cast<double>(socket_report.responses) /
                socket_report.wall_seconds
          : 0.0;
  uint64_t socket_joins = 0;
  uint64_t socket_origin_requests = server.stack().origin().stats().requests;
  socket_joins = server.stack().cdn().flight_joins();

  bench::PrintSection("socket run (localhost TCP)");
  bench::Row("  %-26s %llu", "requests",
             static_cast<unsigned long long>(socket_report.requests));
  bench::Row("  %-26s %llu", "responses",
             static_cast<unsigned long long>(socket_report.responses));
  bench::Row("  %-26s %llu", "transport errors",
             static_cast<unsigned long long>(socket_report.transport_errors));
  bench::Row("  %-26s %llu / %llu", "4xx / 5xx",
             static_cast<unsigned long long>(socket_report.errors_4xx),
             static_cast<unsigned long long>(socket_report.errors_5xx));
  for (const auto& [source, n] : socket_report.sources) {
    bench::Row("  served from %-14s %llu", source.c_str(),
               static_cast<unsigned long long>(n));
  }
  bench::Row("  %-26s %.4f", "hit rate", socket_hit);
  bench::Row("  %-26s %.0f req/s", "throughput", throughput);
  bench::Row("  %-26s %llu", "single-flight joins",
             static_cast<unsigned long long>(socket_joins));
  bench::Row("  %-26s %llu", "origin requests",
             static_cast<unsigned long long>(socket_origin_requests));
  bench::Row("  wall latency us            p50=%lld p90=%lld p99=%lld",
             static_cast<long long>(socket_report.wall_latency_us.P50()),
             static_cast<long long>(socket_report.wall_latency_us.P90()),
             static_cast<long long>(socket_report.wall_latency_us.P99()));
  bench::Row("  modeled latency us         p50=%lld p90=%lld p99=%lld",
             static_cast<long long>(socket_report.predicted_us.P50()),
             static_cast<long long>(socket_report.predicted_us.P90()),
             static_cast<long long>(socket_report.predicted_us.P99()));

  // --- sim replay: identical streams, pure simulation ------------------
  // Inter-arrival matches the socket run's measured per-worker pacing, so
  // flight windows overlap comparably. Floor at 1us.
  int64_t inter_us = 1;
  if (socket_report.responses > 0 && socket_report.wall_seconds > 0) {
    inter_us = static_cast<int64_t>(
        socket_report.wall_seconds * 1e6 * workers /
        static_cast<double>(socket_report.responses));
    if (inter_us < 1) inter_us = 1;
  }
  speedkit::core::StackConfig sim_config = edged.stack;
  SimReplay sim =
      ReplayInSim(sim_config, lg, edged.warmup, Duration::Micros(inter_us));
  const double sim_hit = sim.HitRate();

  bench::PrintSection("sim replay (same streams, pure simulation)");
  bench::Row("  %-26s %llu", "requests",
             static_cast<unsigned long long>(sim.requests));
  bench::Row("  %-26s %.4f", "hit rate", sim_hit);
  bench::Row("  %-26s %llu", "single-flight joins",
             static_cast<unsigned long long>(sim.flight_joins));
  bench::Row("  %-26s %llu", "origin requests",
             static_cast<unsigned long long>(sim.origin_requests));
  bench::Row("  sim latency us             p50=%lld p90=%lld p99=%lld",
             static_cast<long long>(sim.latency_us.P50()),
             static_cast<long long>(sim.latency_us.P90()),
             static_cast<long long>(sim.latency_us.P99()));

  // --- comparison + gates ----------------------------------------------
  const double hit_gap = std::fabs(socket_hit - sim_hit);
  const double max_gap = EnvBudget("SPEEDKIT_E17_MAX_HIT_GAP", 0.05);

  bench::PrintSection("socket vs. sim");
  bench::Row("  %-26s %.4f vs %.4f  (gap %.4f, budget %.4f)", "hit rate",
             socket_hit, sim_hit, hit_gap, max_gap);
  bench::Row("  %-26s %lld vs %lld us", "p50 latency",
             static_cast<long long>(socket_report.wall_latency_us.P50()),
             static_cast<long long>(sim.latency_us.P50()));

  bool ok = true;
  if (socket_report.transport_errors != 0 || socket_report.errors_5xx != 0) {
    std::fprintf(stderr,
                 "FATAL: socket run unhealthy: %llu transport errors, "
                 "%llu 5xx\n",
                 static_cast<unsigned long long>(
                     socket_report.transport_errors),
                 static_cast<unsigned long long>(socket_report.errors_5xx));
    ok = false;
  }
  if (hit_gap > max_gap) {
    std::fprintf(stderr,
                 "FATAL: socket/sim hit-rate gap %.4f exceeds budget %.4f "
                 "(socket %.4f, sim %.4f)\n",
                 hit_gap, max_gap, socket_hit, sim_hit);
    ok = false;
  }
  if (socket_joins == 0) {
    std::fprintf(stderr,
                 "FATAL: no single-flight joins observed under kCoalesce -- "
                 "concurrent origin fetches are not coalescing\n");
    ok = false;
  }

  if (!json_path.empty()) {
    bench::JsonValue root = bench::JsonValue::Object();
    root.Set("bench", "socketed");
    root.Set("seed", static_cast<int64_t>(seed));
    root.Set("workers", static_cast<int64_t>(workers));
    root.Set("requests_per_worker", static_cast<int64_t>(requests));
    root.Set("products", static_cast<int64_t>(products));
    root.Set("hot_products", static_cast<int64_t>(hot_products));
    root.Set("zipf_s", zipf_s);
    bench::JsonValue socket_row = bench::JsonValue::Object();
    socket_row.Set("responses",
                   static_cast<int64_t>(socket_report.responses));
    socket_row.Set("transport_errors",
                   static_cast<int64_t>(socket_report.transport_errors));
    socket_row.Set("errors_5xx",
                   static_cast<int64_t>(socket_report.errors_5xx));
    socket_row.Set("hit_rate", socket_hit);
    socket_row.Set("throughput_rps", throughput);
    socket_row.Set("flight_joins", static_cast<int64_t>(socket_joins));
    socket_row.Set("origin_requests",
                   static_cast<int64_t>(socket_origin_requests));
    socket_row.Set("wall_p50_us",
                   static_cast<int64_t>(socket_report.wall_latency_us.P50()));
    socket_row.Set("wall_p99_us",
                   static_cast<int64_t>(socket_report.wall_latency_us.P99()));
    socket_row.Set("predicted_p50_us",
                   static_cast<int64_t>(socket_report.predicted_us.P50()));
    root.Set("socket", std::move(socket_row));
    bench::JsonValue sim_row = bench::JsonValue::Object();
    sim_row.Set("requests", static_cast<int64_t>(sim.requests));
    sim_row.Set("hit_rate", sim_hit);
    sim_row.Set("flight_joins", static_cast<int64_t>(sim.flight_joins));
    sim_row.Set("origin_requests",
                static_cast<int64_t>(sim.origin_requests));
    sim_row.Set("p50_us", static_cast<int64_t>(sim.latency_us.P50()));
    sim_row.Set("p99_us", static_cast<int64_t>(sim.latency_us.P99()));
    root.Set("sim", std::move(sim_row));
    root.Set("hit_gap", hit_gap);
    root.Set("max_hit_gap", max_gap);
    root.Set("gate", ok ? std::string("ok") : std::string("FAIL"));
    bench::WriteJsonFile(json_path, root);
  }

  bench::Note(
      "expected shape: hit rates agree to within a few points (same code, "
      "same streams, only the substrate differs); wall p50 sits orders of "
      "magnitude under the modeled p50 because localhost replaces the "
      "simulated WAN; joins > 0 shows real concurrency riding the "
      "single-flight window");
  return ok ? 0 : 1;
}
