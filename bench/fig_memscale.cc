// E16 — Fleet memory scaling: bytes/client and req/sec vs. fleet size.
//
// The million-client question: what does ONE simulated Speed Kit client
// cost in resident memory once the fleet is large enough that per-client
// fixed costs dominate? This harness sweeps --clients (default
// 1e3/1e4/1e5; the full E16 figure adds 1e6) through the standard traffic
// recipe and reports, per point:
//   * wall-clock requests/sec (the scheduler + pool hot path);
//   * heap bytes/client right after fleet construction (the arena's
//     per-client floor) and after the run (with warm browser caches);
//   * peak process RSS, and the pool's spill accounting (clients frozen,
//     resident blob bytes).
//
// Gates:
//   * memory — with a budget configured (--max-bytes-per-client or the
//     SPEEDKIT_E16_MAX_BYTES_PER_CLIENT env var; CI sets one), the
//     largest point's after-run bytes/client must stay under it, or the
//     process exits 1. Smaller points are reported but not gated: fixed
//     stack costs (catalog, origin store, CDN) only amortize to noise at
//     scale. The gate auto-skips when the heap probe is unavailable
//     (non-glibc).
//   * spill neutrality — at the smallest point the run is repeated with
//     cold-client spill forced ON and forced OFF; both must produce the
//     same result fingerprint, or the process exits 1. Freeze/thaw round
//     trips are designed to be lossless; this gate keeps them that way.
#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "bench/mem_probe.h"
#include "bench/workload_runner.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

// --coherence: which protocol the stack runs (delta_atomic default).
coherence::CoherenceMode g_coherence = coherence::CoherenceMode::kDeltaAtomic;

struct MemPoint {
  size_t clients = 0;
  double wall_seconds = 0;
  double requests_per_sec = 0;
  uint64_t requests = 0;
  uint64_t fingerprint = 0;
  bool heap_probe_ok = false;
  double construct_bytes_per_client = 0;
  double after_run_bytes_per_client = 0;
  uint64_t peak_rss_bytes = 0;
  proxy::ClientPoolSpillStats spill;
};

bench::RunSpec MemScaleSpec(size_t clients, double duration_minutes,
                            proxy::SpillMode spill) {
  bench::RunSpec spec = bench::DefaultRunSpec();
  spec.traffic.num_clients = clients;
  spec.traffic.duration = Duration::Minutes(duration_minutes);
  spec.traffic.pool.spill = spill;
  spec.stack.coherence.mode = g_coherence;
  return spec;
}

// The RunOneStack recipe with memory probes between its phases: the probe
// placement is the only difference, so results (and fingerprints) match a
// plain RunWorkload of the same spec.
MemPoint Measure(const bench::RunSpec& spec) {
  MemPoint point;
  point.clients = spec.traffic.num_clients;
  point.heap_probe_ok = bench::HeapProbeAvailable();
  const uint64_t heap0 = bench::HeapBytesInUse();

  core::SpeedKitStack stack(spec.stack);
  workload::Catalog catalog(spec.catalog, Pcg32(spec.catalog_seed));
  catalog.Populate(&stack.store(), stack.clock().Now());
  for (int c = 0; c < catalog.num_categories(); ++c) {
    stack.origin().RegisterQuery(catalog.CategoryQuery(c));
    if (stack.pipeline() != nullptr) {
      stack.pipeline()->WatchQuery(catalog.CategoryQuery(c),
                                   catalog.CategoryUrl(c));
    }
  }
  stack.Advance(Duration::Seconds(5));

  core::TrafficSimulation sim(&stack, &catalog, spec.traffic);
  const uint64_t heap_built = bench::HeapBytesInUse();

  auto t0 = std::chrono::steady_clock::now();
  bench::RunOutput out;
  out.traffic = sim.Run();
  point.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const uint64_t heap_after = bench::HeapBytesInUse();

  out.staleness = stack.staleness().report();
  out.staleness_us = stack.staleness().staleness_us();
  out.origin_requests = stack.origin().stats().requests;
  if (stack.sketch() != nullptr) {
    out.sketch_entries = stack.sketch()->entries();
    out.sketch_snapshot_bytes =
        stack.sketch()->SerializedSnapshot(stack.clock().Now()).size();
  }
  if (stack.pipeline() != nullptr) out.pipeline = stack.pipeline()->stats();
  out.edge_faults = stack.cdn().TotalFaultStats();

  point.requests = out.traffic.proxies.requests;
  point.requests_per_sec =
      point.wall_seconds > 0
          ? static_cast<double>(point.requests) / point.wall_seconds
          : 0.0;
  point.fingerprint = bench::FingerprintRun(out);
  const double n = static_cast<double>(point.clients);
  point.construct_bytes_per_client =
      heap_built > heap0 ? static_cast<double>(heap_built - heap0) / n : 0.0;
  point.after_run_bytes_per_client =
      heap_after > heap0 ? static_cast<double>(heap_after - heap0) / n : 0.0;
  point.peak_rss_bytes = bench::PeakRssBytes();
  point.spill = sim.SpillStats();
  return point;
}

struct GateResult {
  bool ok = true;
  std::string status;  // "passed" / "failed" / "skipped: ..." / "off"
};

GateResult CheckBudget(const MemPoint& largest, double budget) {
  GateResult gate;
  if (budget <= 0) {
    gate.status = "off";
    return gate;
  }
  if (!largest.heap_probe_ok) {
    gate.status = "skipped: heap probe unavailable on this libc";
    return gate;
  }
  char buf[112];
  std::snprintf(buf, sizeof(buf),
                "%.0f bytes/client after run at %zu clients vs budget %.0f",
                largest.after_run_bytes_per_client, largest.clients, budget);
  if (largest.after_run_bytes_per_client <= budget) {
    gate.status = std::string("passed: ") + buf;
  } else {
    gate.ok = false;
    gate.status = std::string("failed: ") + buf;
  }
  return gate;
}

// Spill-neutrality: forced-on and forced-off runs of the same spec must
// fingerprint identically.
GateResult CheckSpillNeutral(size_t clients, double duration_minutes) {
  MemPoint on = Measure(MemScaleSpec(clients, duration_minutes,
                                     proxy::SpillMode::kOn));
  MemPoint off = Measure(MemScaleSpec(clients, duration_minutes,
                                      proxy::SpillMode::kOff));
  GateResult gate;
  char buf[112];
  std::snprintf(buf, sizeof(buf),
                "spill-on %016" PRIx64 " vs spill-off %016" PRIx64
                " at %zu clients (%" PRIu64 " freezes)",
                on.fingerprint, off.fingerprint, clients, on.spill.freezes);
  if (on.fingerprint == off.fingerprint) {
    gate.status = std::string("passed: ") + buf;
  } else {
    gate.ok = false;
    gate.status = std::string("failed: ") + buf;
  }
  return gate;
}

double EnvBytesBudget() {
  const char* env = std::getenv("SPEEDKIT_E16_MAX_BYTES_PER_CLIENT");
  return env == nullptr ? 0.0 : std::strtod(env, nullptr);
}

std::vector<size_t> ParseClientList(const std::string& text) {
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    long long v = std::atoll(text.substr(pos, comma - pos).c_str());
    if (v > 0) out.push_back(static_cast<size_t>(v));
    pos = comma + 1;
  }
  return out;
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  using namespace speedkit;
  tools::Flags flags(argc, argv);
  std::vector<size_t> client_counts =
      ParseClientList(flags.GetString("clients", "1000,10000,100000"));
  double duration_min = flags.GetDouble("duration", 2.0);
  speedkit::g_coherence = speedkit::bench::CoherenceModeFromFlag(
      flags.GetString("coherence", ""));
  double budget = flags.GetDouble("max-bytes-per-client", EnvBytesBudget());
  std::string json_path = bench::JsonPathFromFlag(
      flags.GetString("json", ""), "memscale");

  bench::PrintHeader(
      "E16", "Fleet memory scaling and bytes-per-client gate",
      "per-client memory cost of the pooled fleet as the population grows "
      "1e3 -> 1e6; the largest point must stay under the configured "
      "bytes/client budget, and cold-client spill must not change results");

  bench::PrintSection(
      "bytes/client vs fleet size (" +
      std::to_string(static_cast<int>(duration_min)) + " sim-minutes, spill " +
      "auto)");
  bench::Row("%10s %9s %11s %12s %12s %10s %9s %11s", "clients", "wall_s",
             "req/sec", "B/cl_built", "B/cl_run", "rss_mb", "frozen",
             "frozen_kb");

  std::vector<MemPoint> points;
  bench::JsonValue rows = bench::JsonValue::Array();
  for (size_t clients : client_counts) {
    MemPoint p = Measure(
        MemScaleSpec(clients, duration_min, proxy::SpillMode::kAuto));
    points.push_back(p);
    bench::Row("%10zu %9.2f %11.0f %12.0f %12.0f %10.1f %9zu %11.1f",
               p.clients, p.wall_seconds, p.requests_per_sec,
               p.construct_bytes_per_client, p.after_run_bytes_per_client,
               p.peak_rss_bytes / (1024.0 * 1024.0), p.spill.frozen_clients,
               p.spill.frozen_bytes / 1024.0);
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016" PRIx64, p.fingerprint);
    rows.Push(bench::JsonRow(
        {{"clients", static_cast<uint64_t>(p.clients)},
         {"wall_seconds", p.wall_seconds},
         {"requests", p.requests},
         {"requests_per_sec", p.requests_per_sec},
         {"construct_bytes_per_client", p.construct_bytes_per_client},
         {"after_run_bytes_per_client", p.after_run_bytes_per_client},
         {"peak_rss_bytes", p.peak_rss_bytes},
         {"spill_freezes", p.spill.freezes},
         {"spill_thaws", p.spill.thaws},
         {"frozen_clients", static_cast<uint64_t>(p.spill.frozen_clients)},
         {"frozen_bytes", static_cast<uint64_t>(p.spill.frozen_bytes)},
         {"fingerprint", std::string(fp)}}));
  }

  GateResult mem_gate = CheckBudget(points.back(), budget);
  if (mem_gate.status != "off") {
    if (mem_gate.ok) {
      bench::Note("memory gate " + mem_gate.status);
    } else {
      std::fprintf(stderr, "FATAL: memory gate %s\n", mem_gate.status.c_str());
    }
  }

  GateResult spill_gate =
      CheckSpillNeutral(client_counts.front(), duration_min);
  if (spill_gate.ok) {
    bench::Note("spill-neutrality gate " + spill_gate.status);
  } else {
    std::fprintf(stderr, "FATAL: spill-neutrality gate %s\n",
                 spill_gate.status.c_str());
  }

  if (!json_path.empty()) {
    bench::JsonValue root = bench::JsonValue::Object();
    root.Set("bench", "memscale");
    root.Set("duration_minutes", duration_min);
    root.Set("heap_probe_available", bench::HeapProbeAvailable());
    root.Set("max_bytes_per_client", budget);
    root.Set("memory_gate", mem_gate.status);
    root.Set("spill_gate", spill_gate.status);
    root.Set("rows", std::move(rows));
    bench::WriteJsonFile(json_path, root);
  }

  bench::Note(
      "expected shape: bytes/client falls as fixed stack costs amortize, "
      "then flattens at the true per-client footprint; req/sec stays flat "
      "(the timing wheel keeps scheduling O(1) as the fleet grows)");
  return mem_gate.ok && spill_gate.ok ? 0 : 1;
}
