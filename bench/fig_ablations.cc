// E12 — Ablations of the design choices DESIGN.md calls out:
//   A1  per-key TTL estimator vs one global fixed TTL (interaction with
//       sketch load and revalidation traffic)
//   A2  counting Bloom filter at the server vs rebuilding the snapshot
//       filter from the exact key set on every snapshot
//   A3  segment-scoped caching of personalized blocks vs treating every
//       personalized block as user-scoped
//   A4  stale-while-revalidate on vs off (latency of expired-entry hits)
//   A5  asset optimization on vs off (page weight & load time, mobile)
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "bench/trace_support.h"
#include "bench/workload_runner.h"
#include "core/stack.h"
#include "sketch/counting_bloom.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

// --shards/--threads: in-run sharded execution for every RunWorkload this
// harness performs (results are invariant to the thread count; the shard
// count is a model parameter and must divide cdn_edges).
int g_shards = 1;
int g_run_threads = 1;
// --coherence: which protocol the stack runs (delta_atomic default).
coherence::CoherenceMode g_coherence = coherence::CoherenceMode::kDeltaAtomic;

bench::RunSpec BaseSpec() {
  bench::RunSpec spec = bench::DefaultRunSpec();
  spec.stack.shards = g_shards;
  spec.run_threads = g_run_threads;
  spec.stack.coherence.mode = g_coherence;
  return spec;
}


using Clock = std::chrono::steady_clock;

void AblationTtlEstimator(bench::JsonValue* rows) {
  bench::PrintSection(
      "A1: estimator vs global fixed TTL (heterogeneous write rates)");
  bench::Row("%14s %10s %12s %14s %12s %12s", "ttl_policy", "hit_rate",
             "stale_rate", "sketch_entries", "reval_304", "p50_ms");
  for (const std::string& policy : {"estimator", "fixed-120s"}) {
    bench::RunSpec spec = BaseSpec();
    // Strong write skew: hot objects churn fast, tail barely changes —
    // exactly where one global TTL must be wrong for someone.
    spec.traffic.write_skew = 1.2;
    spec.traffic.writes_per_sec = 4.0;
    if (policy == "estimator") {
      spec.stack.ttl_mode = core::TtlMode::kEstimator;
      spec.stack.estimator.max_ttl = Duration::Seconds(3600);
    } else {
      spec.stack.ttl_mode = core::TtlMode::kFixed;
      spec.stack.fixed_ttl = Duration::Seconds(120);
    }
    bench::RunOutput out = bench::RunWorkload(spec);
    double hit_rate =
        out.traffic.BrowserHitRatio() + out.traffic.EdgeHitRatio();
    bench::Row("%14s %9.1f%% %11.4f%% %14zu %12llu %12.1f", policy.c_str(),
               hit_rate * 100, out.staleness.StaleFraction() * 100,
               out.sketch_entries,
               static_cast<unsigned long long>(
                   out.traffic.proxies.revalidations_304),
               out.traffic.api_latency_us.P50() / 1e3);
    rows->Push(bench::JsonRow(
        {{"section", "a1_ttl_estimator"},
         {"policy", policy},
         {"hit_rate", hit_rate},
         {"stale_rate", out.staleness.StaleFraction()},
         {"sketch_entries", static_cast<uint64_t>(out.sketch_entries)},
         {"revalidations_304", out.traffic.proxies.revalidations_304},
         {"p50_ms", out.traffic.api_latency_us.P50() / 1e3}}));
  }
  bench::Note("the estimator gives slow-changing tail objects long TTLs "
              "(more hits) while keeping hot objects short (fewer sketch "
              "entries per write)");
}

void AblationCountingFilter(bench::JsonValue* rows) {
  bench::PrintSection(
      "A2: snapshot cost — counting filter materialize vs rebuild from key "
      "set (20k tracked keys, 1% fpr sizing)");
  constexpr size_t kKeys = 20000;
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (size_t i = 0; i < kKeys; ++i) {
    keys.push_back("https://shop.example.com/api/records/p" +
                   std::to_string(i));
  }
  size_t bits = sketch::BloomFilter::OptimalBits(kKeys, 0.01);
  int k = sketch::BloomFilter::OptimalHashes(bits, kKeys);

  sketch::CountingBloomFilter cbf(bits, k);
  for (const auto& key : keys) cbf.Add(key);

  constexpr int kRounds = 200;
  auto t0 = Clock::now();
  size_t bits_set = 0;
  for (int r = 0; r < kRounds; ++r) {
    bits_set += cbf.Materialize().PopCount();
  }
  double materialize_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count() /
      kRounds;

  auto t1 = Clock::now();
  for (int r = 0; r < kRounds; ++r) {
    sketch::BloomFilter rebuilt(bits, k);
    for (const auto& key : keys) rebuilt.Add(key);
    bits_set += rebuilt.PopCount();
  }
  double rebuild_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t1).count() /
      kRounds;

  bench::Row("%24s %14s", "strategy", "us/snapshot");
  bench::Row("%24s %14.0f", "cbf materialize", materialize_us);
  bench::Row("%24s %14.0f", "rebuild from keys", rebuild_us);
  bench::Row("%24s %13.1fx", "speedup", rebuild_us / materialize_us);
  (void)bits_set;
  rows->Push(bench::JsonRow({{"section", "a2_counting_filter"},
                             {"materialize_us", materialize_us},
                             {"rebuild_us", rebuild_us},
                             {"speedup", rebuild_us / materialize_us}}));
  bench::Note("the CBF also supports incremental expiry; rebuilding would "
              "additionally require keeping all keys hot in memory");
}

void AblationSegmentCaching(bench::JsonValue* rows) {
  bench::PrintSection(
      "A3: segment-scoped caching on vs off (6 personalized blocks/page, "
      "32 cohorts, 300 users)");
  // Off = every personalized block is treated as user-scoped (but still
  // GDPR: template join on-device).
  for (bool segment_caching : {true, false}) {
    core::StackConfig config;
    core::SpeedKitStack stack(config);
    personalization::PageTemplate tpl;
    tpl.url = "https://shop.example.com/pages/home";
    for (int i = 0; i < 6; ++i) {
      tpl.blocks.push_back({"blk" + std::to_string(i),
                            segment_caching
                                ? personalization::BlockScope::kSegment
                                : personalization::BlockScope::kUser,
                            2048});
    }
    personalization::Segmenter segmenter(32);
    uint64_t hits = 0;
    uint64_t fetches = 0;
    int64_t latency_us = 0;
    for (int u = 0; u < 300; ++u) {
      personalization::PiiVault vault(9000 + static_cast<uint64_t>(u));
      auto client = stack.MakeClient(9000 + static_cast<uint64_t>(u));
      client->AttachVault(&vault);
      for (const auto& block : tpl.blocks) {
        proxy::BlockResult r = client->FetchBlock(tpl, block, segmenter);
        fetches++;
        latency_us += r.latency.micros();
        if (r.source == proxy::ServedFrom::kBrowserCache ||
            r.source == proxy::ServedFrom::kEdgeCache) {
          hits++;
        }
      }
    }
    double hit_share =
        static_cast<double>(hits) / static_cast<double>(fetches);
    double mean_latency_ms =
        static_cast<double>(latency_us) / static_cast<double>(fetches) / 1e3;
    bench::Row("segment_caching=%-5s  hit_share=%5.1f%%  mean_latency=%.2fms",
               segment_caching ? "on" : "off", hit_share * 100,
               mean_latency_ms);
    rows->Push(bench::JsonRow({{"section", "a3_segment_caching"},
                               {"segment_caching", segment_caching},
                               {"hit_share", hit_share},
                               {"mean_latency_ms", mean_latency_ms}}));
  }
  bench::Note("'off' (template join for everything) can even beat segment "
              "caching on pure delivery cost, because one template is "
              "shared by all cohorts — but it only works for content the "
              "device can assemble from its vault; segment scope exists "
              "for server-computed cohort content (recommendations, "
              "rankings) that has no client-side join");
}

void AblationSwr(bench::JsonValue* rows) {
  bench::PrintSection(
      "A4: stale-while-revalidate on vs off (fixed 60s TTLs, mostly-read)");
  bench::Row("%8s %10s %10s %12s %12s %12s", "swr", "mean_ms", "p99_ms",
             "swr_serves", "stale_rate", "max_stale_s");
  for (bool swr_on : {true, false}) {
    bench::RunSpec spec = BaseSpec();
    spec.stack.ttl_mode = core::TtlMode::kFixed;
    spec.stack.fixed_ttl = Duration::Seconds(60);
    spec.traffic.writes_per_sec = 1.0;
    proxy::ProxyConfig pc;  // speed-kit defaults
    pc.stale_while_revalidate = swr_on;
    spec.traffic.proxy_config = &pc;
    bench::RunOutput out = bench::RunWorkload(spec);
    bench::Row("%8s %10.1f %10.1f %12llu %11.4f%% %12.2f",
               swr_on ? "on" : "off",
               out.traffic.api_latency_us.Mean() / 1e3,
               out.traffic.api_latency_us.P99() / 1e3,
               static_cast<unsigned long long>(out.traffic.proxies.swr_serves),
               out.staleness.StaleFraction() * 100,
               out.staleness.max_staleness.seconds());
    rows->Push(bench::JsonRow(
        {{"section", "a4_swr"},
         {"swr", swr_on},
         {"mean_ms", out.traffic.api_latency_us.Mean() / 1e3},
         {"p99_ms", out.traffic.api_latency_us.P99() / 1e3},
         {"swr_serves", out.traffic.proxies.swr_serves},
         {"stale_rate", out.staleness.StaleFraction()},
         {"max_stale_s", out.staleness.max_staleness.seconds()}}));
  }
  bench::Note("every swr_serve is an expired-entry revalidation moved off "
              "the critical path (mean drops, tail unchanged) — and the "
              "staleness columns must not move: flagged keys never take "
              "the SWR path, and the ExpiryBook horizon covers the window");
}

void AblationAssetOptimization(bench::JsonValue* rows) {
  bench::PrintSection(
      "A5: asset optimization on vs off — cold image-heavy page, mobile "
      "downlink (~1.5 Mbit/s)");
  bench::Row("%10s %14s %16s %14s", "optimize", "page_bytes", "transfer_ms",
             "bytes_saved");
  uint64_t baseline_bytes = 0;
  for (bool optimize : {false, true}) {
    core::StackConfig config;
    config.network.client_edge =
        sim::LinkSpec{Duration::Millis(60), 0.0, 2.0e5};
    config.network.edge_origin =
        sim::LinkSpec{Duration::Millis(80), 0.0, 12.0e6};
    core::SpeedKitStack stack(config);
    proxy::ProxyConfig pc = stack.DefaultProxyConfig();
    pc.optimize_assets = optimize;
    auto client = stack.MakeClient(pc, 1);
    uint64_t bytes = 0;
    int64_t total_us = 0;
    // A product page's 24 images, fetched cold.
    for (int i = 0; i < 24; ++i) {
      proxy::FetchResult r = client->Fetch(
          "https://shop.example.com/assets/img-" + std::to_string(i));
      bytes += r.response.body.size();
      total_us += r.latency.micros();
    }
    if (!optimize) baseline_bytes = bytes;
    bench::Row("%10s %14llu %16.0f %14lld", optimize ? "on" : "off",
               static_cast<unsigned long long>(bytes), total_us / 1e3,
               static_cast<long long>(baseline_bytes - bytes));
    rows->Push(bench::JsonRow(
        {{"section", "a5_asset_optimization"},
         {"optimize", optimize},
         {"page_bytes", bytes},
         {"transfer_ms", total_us / 1e3},
         {"bytes_saved", static_cast<int64_t>(baseline_bytes - bytes)}}));
  }
  bench::Note("the optimization service's transcoded variants (~45% fewer "
              "bytes) cut both page weight and transfer time on the "
              "bandwidth-bound mobile link — E5's mobile rows show the "
              "end-to-end effect");
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  speedkit::g_shards = static_cast<int>(flags.GetInt("shards", 1));
  speedkit::g_coherence = speedkit::bench::CoherenceModeFromFlag(
      flags.GetString("coherence", ""));
  speedkit::g_run_threads = static_cast<int>(flags.GetInt("threads", 1));
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "ablations");
  std::string trace_path = speedkit::bench::TracePathFromFlag(
      flags.GetString("trace", ""), "ablations");

  speedkit::bench::PrintHeader(
      "E12",
      "Ablations: TTL estimator, counting filter, segment caching, SWR, "
      "asset optimization",
      "the design choices DESIGN.md calls out");
  speedkit::bench::JsonValue rows = speedkit::bench::JsonValue::Array();
  speedkit::AblationTtlEstimator(&rows);
  speedkit::AblationCountingFilter(&rows);
  speedkit::AblationSegmentCaching(&rows);
  speedkit::AblationSwr(&rows);
  speedkit::AblationAssetOptimization(&rows);
  if (!json_path.empty()) {
    speedkit::bench::JsonValue root = speedkit::bench::JsonValue::Object();
    root.Set("bench", "ablations");
    root.Set("rows", std::move(rows));
    speedkit::bench::WriteJsonFile(json_path, root);
  }
  // A1's estimator arm: the full speed_kit feature set under write skew.
  speedkit::bench::RunSpec trace_spec = speedkit::bench::DefaultRunSpec();
  trace_spec.traffic.write_skew = 1.2;
  trace_spec.traffic.writes_per_sec = 4.0;
  trace_spec.stack.estimator.max_ttl = speedkit::Duration::Seconds(3600);
  speedkit::bench::MaybeTraceRun(trace_spec, "ablations", trace_path);
  return 0;
}
