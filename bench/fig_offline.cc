// E11 — Offline mode: availability through origin outages.
//
// Reproduces the field-experience resilience claim: during origin
// downtime, the Speed Kit client keeps serving previously-seen content
// from the device (success rate stays high for returning visitors), while
// the vanilla site hard-fails every request whose cache copy expired.
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "core/stack.h"
#include "tools/flags.h"
#include "workload/session.h"

namespace speedkit {
namespace {

struct OutageResult {
  uint64_t requests = 0;
  uint64_t succeeded = 0;
  uint64_t offline_serves = 0;

  double SuccessRate() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(succeeded) / static_cast<double>(requests);
  }
};

// Browses for `warm` minutes, then the origin goes down and the same
// clients browse for `outage` minutes.
OutageResult RunOutage(bool speed_kit_on, Duration warm, Duration outage,
                       double revisit_share) {
  core::StackConfig config;
  config.seed = 5;
  // The outage is a fault-schedule window rather than a manual
  // set_available() toggle: browsing starts 5s in (after the population
  // settle below), so the origin is down for [5s+warm, 5s+warm+outage).
  sim::FaultWindow window;
  window.start = SimTime::Origin() + Duration::Seconds(5) + warm;
  window.end = window.start + outage;
  config.faults.origin = {window};
  core::SpeedKitStack stack(config);
  workload::CatalogConfig cconfig;
  cconfig.num_products = 500;
  workload::Catalog catalog(cconfig, Pcg32(1));
  catalog.Populate(&stack.store(), stack.clock().Now());
  for (int c = 0; c < catalog.num_categories(); ++c) {
    stack.origin().RegisterQuery(catalog.CategoryQuery(c));
  }
  stack.Advance(Duration::Seconds(5));

  proxy::ProxyConfig pc = stack.DefaultProxyConfig();
  if (!speed_kit_on) {
    pc.enabled = false;
    pc.use_cdn = false;
    pc.use_sketch = false;
    pc.offline_mode = false;
  }
  constexpr int kClients = 10;
  std::vector<std::unique_ptr<proxy::ClientProxy>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(stack.MakeClient(pc, 1 + static_cast<uint64_t>(i)));
  }
  workload::ZipfGenerator popularity(cconfig.num_products, 1.0);
  Pcg32 rng = stack.ForkRng(9);

  // Warm phase: clients browse popular products.
  SimTime warm_end = stack.clock().Now() + warm;
  while (stack.clock().Now() < warm_end) {
    for (auto& client : clients) {
      client->Fetch(catalog.ProductUrl(popularity.Sample(rng)));
    }
    stack.Advance(Duration::Seconds(5));
  }

  // Outage phase: the schedule window armed above has just taken the
  // origin down; a revisit_share of requests go to already-seen pages.
  OutageResult result;
  SimTime outage_end = stack.clock().Now() + outage;
  while (stack.clock().Now() < outage_end) {
    for (auto& client : clients) {
      size_t rank = rng.WithProbability(revisit_share)
                        ? popularity.Sample(rng)  // likely seen before
                        : 400 + rng.NextBounded(100);  // cold tail
      proxy::FetchResult r = client->Fetch(catalog.ProductUrl(rank));
      result.requests++;
      if (r.response.ok()) result.succeeded++;
      if (r.source == proxy::ServedFrom::kOfflineCache) {
        result.offline_serves++;
      }
    }
    stack.Advance(Duration::Seconds(5));
  }
  return result;
}

void OutageSweep(bench::JsonValue* rows) {
  bench::PrintSection(
      "request success rate during a 10-minute origin outage");
  bench::Row("%14s %14s %14s %14s %16s", "revisit_share", "vanilla_ok",
             "speedkit_ok", "offline_serves", "outage_requests");
  for (double revisit : {0.95, 0.8, 0.5, 0.2}) {
    OutageResult vanilla =
        RunOutage(false, Duration::Minutes(10), Duration::Minutes(10), revisit);
    OutageResult sk =
        RunOutage(true, Duration::Minutes(10), Duration::Minutes(10), revisit);
    bench::Row("%13.0f%% %13.1f%% %13.1f%% %14llu %16llu", revisit * 100,
               vanilla.SuccessRate() * 100, sk.SuccessRate() * 100,
               static_cast<unsigned long long>(sk.offline_serves),
               static_cast<unsigned long long>(sk.requests));
    rows->Push(bench::JsonRow({{"section", "outage"},
                               {"revisit_share", revisit},
                               {"vanilla_success_rate", vanilla.SuccessRate()},
                               {"speedkit_success_rate", sk.SuccessRate()},
                               {"offline_serves", sk.offline_serves},
                               {"outage_requests", sk.requests}}));
  }
  bench::Note("the vanilla arm only succeeds while its browser copies are "
              "still within TTL; speed kit serves anything ever seen");
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "offline");

  speedkit::bench::PrintHeader(
      "E11", "Offline mode: availability during origin outages",
      "field-experience resilience claim (service worker keeps the site "
      "usable)");
  speedkit::bench::JsonValue rows = speedkit::bench::JsonValue::Array();
  speedkit::OutageSweep(&rows);
  if (!json_path.empty()) {
    speedkit::bench::JsonValue root = speedkit::bench::JsonValue::Object();
    root.Set("bench", "offline");
    root.Set("rows", std::move(rows));
    speedkit::bench::WriteJsonFile(json_path, root);
  }
  return 0;
}
