// E10 — Micro-benchmarks (google-benchmark): the hot operations of the
// protocol, especially everything that runs on the user's device per
// intercepted request (the client proxy's overhead budget).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/lru_cache.h"
#include "common/flat_map.h"
#include "common/hash.h"
#include "http/cache_control.h"
#include "http/url.h"
#include "invalidation/query_matcher.h"
#include "sketch/blocked_bloom.h"
#include "sketch/bloom_filter.h"
#include "sketch/cache_sketch.h"
#include "sketch/client_sketch.h"
#include "sketch/counting_bloom.h"

namespace speedkit {
namespace {

std::string Key(size_t i) {
  return "https://shop.example.com/api/records/p" + std::to_string(i);
}

void BM_Murmur3_64(benchmark::State& state) {
  std::string key = Key(123456);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Murmur3_64(key));
  }
}
BENCHMARK(BM_Murmur3_64);

void BM_BloomAdd(benchmark::State& state) {
  sketch::BloomFilter filter(1 << 20, static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    filter.Add(Key(i++));
  }
}
BENCHMARK(BM_BloomAdd)->Arg(4)->Arg(7)->Arg(12);

void BM_BloomQuery(benchmark::State& state) {
  sketch::BloomFilter filter(1 << 20, static_cast<int>(state.range(0)));
  for (size_t i = 0; i < 100000; ++i) filter.Add(Key(i));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MightContain(Key(i++ % 200000)));
  }
}
BENCHMARK(BM_BloomQuery)->Arg(4)->Arg(7)->Arg(12);

void BM_ClientSketchCheck(benchmark::State& state) {
  // The per-request on-device cost: one membership check.
  sketch::CacheSketch server(10000, 0.05);
  SimTime now;
  for (size_t i = 0; i < 5000; ++i) {
    server.ReportInvalidation(Key(i), now + Duration::Seconds(60), now);
  }
  sketch::ClientSketch client(Duration::Seconds(30));
  (void)client.Update(server.SerializedSnapshot(now), now);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.MightBeStale(Key(i++ % 10000)));
  }
}
BENCHMARK(BM_ClientSketchCheck);

void BM_CountingBloomAddRemove(benchmark::State& state) {
  sketch::CountingBloomFilter cbf(1 << 18, 7);
  size_t i = 0;
  for (auto _ : state) {
    cbf.Add(Key(i));
    cbf.Remove(Key(i));
    ++i;
  }
}
BENCHMARK(BM_CountingBloomAddRemove);

void BM_SketchSnapshot(benchmark::State& state) {
  sketch::CacheSketch sketch(static_cast<size_t>(state.range(0)), 0.05);
  SimTime now;
  for (int64_t i = 0; i < state.range(0); ++i) {
    sketch.ReportInvalidation(Key(static_cast<size_t>(i)),
                              now + Duration::Seconds(3600), now);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.SerializedSnapshot(now));
  }
  state.SetLabel(std::to_string(sketch.FilterSizeBytes()) + "B filter");
}
BENCHMARK(BM_SketchSnapshot)->Arg(1000)->Arg(10000)->Arg(100000);

// LRU index probe with a string_view key — the transparent-lookup path
// every cache layer (browser, edge, fragment) takes per request.
void BM_LruGet(benchmark::State& state) {
  cache::LruCache<int> cache(0);
  std::vector<std::string> keys;
  keys.reserve(10000);
  for (size_t i = 0; i < 10000; ++i) {
    keys.push_back(Key(i));
    cache.Put(keys.back(), static_cast<int>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Get(std::string_view(keys[i++ % keys.size()])));
  }
}
BENCHMARK(BM_LruGet);

// Same probe but materializing a std::string per lookup — what every Get
// cost before the index accepted heterogeneous keys. The delta vs
// BM_LruGet is the per-request allocation this PR removed.
void BM_LruGetWithKeyCopy(benchmark::State& state) {
  cache::LruCache<int> cache(0);
  std::vector<std::string> keys;
  keys.reserve(10000);
  for (size_t i = 0; i < 10000; ++i) {
    keys.push_back(Key(i));
    cache.Put(keys.back(), static_cast<int>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    std::string copy(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(cache.Get(copy));
  }
}
BENCHMARK(BM_LruGetWithKeyCopy);

void BM_UrlParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        http::Url::Parse("https://shop.example.com/api/records/p42?ref=x"));
  }
}
BENCHMARK(BM_UrlParse);

void BM_CacheControlParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::CacheControl::Parse(
        "public, max-age=60, s-maxage=300, stale-while-revalidate=30"));
  }
}
BENCHMARK(BM_CacheControlParse);

// Scalar probe of the cache-line blocked filter: one memory access per
// probe vs k random lines for the plain BloomFilter above (same sizing as
// BM_BloomQuery for a direct comparison).
void BM_BlockedBloomProbeScalar(benchmark::State& state) {
  sketch::BlockedBloomFilter filter(1 << 20, static_cast<int>(state.range(0)));
  for (size_t i = 0; i < 100000; ++i) filter.Add(Key(i));
  std::vector<std::string> keys;
  keys.reserve(4096);
  for (size_t i = 0; i < 4096; ++i) keys.push_back(Key(i * 37));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MightContain(keys[i++ % keys.size()]));
  }
}
BENCHMARK(BM_BlockedBloomProbeScalar)->Arg(4)->Arg(7)->Arg(12);

// Batched probe: hash+prefetch pass then probe pass. items_processed makes
// the per-key rate comparable with the scalar probe's per-iteration time.
void BM_BlockedBloomProbeBatch(benchmark::State& state) {
  sketch::BlockedBloomFilter filter(1 << 20, 7);
  for (size_t i = 0; i < 100000; ++i) filter.Add(Key(i));
  const size_t batch = static_cast<size_t>(state.range(0));
  std::vector<std::string> keys;
  std::vector<std::string_view> views;
  keys.reserve(batch);
  for (size_t i = 0; i < batch; ++i) keys.push_back(Key(i * 37));
  views.assign(keys.begin(), keys.end());
  std::unique_ptr<bool[]> out(new bool[batch]);
  for (auto _ : state) {
    filter.MightContainBatch(views.data(), batch, out.get());
    benchmark::DoNotOptimize(out.get());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_BlockedBloomProbeBatch)->Arg(32)->Arg(256)->Arg(1024);

// The expiry-book container race: open-addressing FlatStringMap vs the
// node-based std::unordered_map it replaced. Upsert = the write path
// (ReportInvalidation), Find = the read path (horizon checks).
void BM_FlatMapUpsert(benchmark::State& state) {
  std::vector<std::string> keys;
  keys.reserve(10000);
  for (size_t i = 0; i < 10000; ++i) keys.push_back(Key(i));
  for (auto _ : state) {
    state.PauseTiming();
    FlatStringMap<int64_t> map;
    state.ResumeTiming();
    for (size_t i = 0; i < keys.size(); ++i) {
      map.Upsert(keys[i], static_cast<int64_t>(i));
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_FlatMapUpsert);

void BM_UnorderedMapUpsert(benchmark::State& state) {
  std::vector<std::string> keys;
  keys.reserve(10000);
  for (size_t i = 0; i < 10000; ++i) keys.push_back(Key(i));
  for (auto _ : state) {
    state.PauseTiming();
    std::unordered_map<std::string, int64_t> map;
    state.ResumeTiming();
    for (size_t i = 0; i < keys.size(); ++i) {
      map.emplace(keys[i], static_cast<int64_t>(i));
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_UnorderedMapUpsert);

void BM_FlatMapFind(benchmark::State& state) {
  FlatStringMap<int64_t> map;
  std::vector<std::string> keys;
  keys.reserve(10000);
  for (size_t i = 0; i < 10000; ++i) {
    keys.push_back(Key(i));
    map.Upsert(keys.back(), static_cast<int64_t>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    // Half the probes miss — the horizon check's common case.
    benchmark::DoNotOptimize(
        map.Find(std::string_view(keys[(i++ * 7) % keys.size()])));
    benchmark::DoNotOptimize(map.Find("https://shop.example.com/api/miss"));
  }
}
BENCHMARK(BM_FlatMapFind);

void BM_UnorderedMapFind(benchmark::State& state) {
  std::unordered_map<std::string, int64_t> map;
  std::vector<std::string> keys;
  keys.reserve(10000);
  for (size_t i = 0; i < 10000; ++i) {
    keys.push_back(Key(i));
    map.emplace(keys.back(), static_cast<int64_t>(i));
  }
  std::string miss = "https://shop.example.com/api/miss";
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[(i++ * 7) % keys.size()]));
    benchmark::DoNotOptimize(map.find(miss));
  }
}
BENCHMARK(BM_UnorderedMapFind);

void BM_MatcherWrite(benchmark::State& state) {
  invalidation::QueryMatcher matcher(4, /*use_index=*/state.range(1) != 0);
  for (int64_t i = 0; i < state.range(0); ++i) {
    invalidation::Query q;
    q.id = "q" + std::to_string(i);
    q.conditions.push_back(
        {"category", invalidation::Op::kEq, static_cast<int64_t>(i % 100)});
    (void)matcher.Subscribe(std::move(q));
  }
  storage::Record record;
  record.id = "p1";
  record.version = 1;
  record.fields["category"] = static_cast<int64_t>(42);
  record.fields["price"] = 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.MatchWrite(nullptr, record));
  }
}
BENCHMARK(BM_MatcherWrite)
    ->Args({10000, 1})
    ->Args({10000, 0})
    ->Args({100000, 1});

}  // namespace
}  // namespace speedkit

BENCHMARK_MAIN();
