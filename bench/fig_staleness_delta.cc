// E2 — Δ-atomicity: observed staleness vs. the sketch refresh interval Δ.
//
// Reproduces the paper's coherence claim ("custom cache coherence protocol
// to avoid data staleness and achieve Δ-atomicity"): with the sketch on,
// the maximum observed staleness must stay below Δ (+ purge propagation)
// for every Δ, while the stale-read *rate* stays near zero; with the
// sketch off the same stack degrades to TTL-bounded staleness.
//
// Monte-Carlo mode: the Δ-atomicity bound must hold for EVERY seed, not on
// average — so the table reports the max staleness over all --seeds trials
// (MergeRuns takes the across-seed max), fanned out over --threads workers.
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "bench/parallel_runner.h"
#include "bench/trace_support.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

// --coherence: which protocol the stack runs (delta_atomic default).
coherence::CoherenceMode g_coherence = coherence::CoherenceMode::kDeltaAtomic;

constexpr int kDeltas[] = {5, 10, 30, 60, 120};
constexpr int kBaselineTtls[] = {30, 120, 600};
constexpr double kWriteRates[] = {0.5, 2.0, 8.0};

bench::RunSpec DeltaSpec(int delta_s) {
  bench::RunSpec spec = bench::DefaultRunSpec();
  spec.stack.ttl_mode = core::TtlMode::kFixed;
  spec.stack.fixed_ttl = Duration::Seconds(120);
  spec.stack.coherence.delta = Duration::Seconds(delta_s);
  spec.traffic.writes_per_sec = 3.0;
  return spec;
}

bench::RunSpec BaselineSpec(int ttl_s) {
  bench::RunSpec spec = bench::DefaultRunSpec();
  spec.stack.variant = core::SystemVariant::kFixedTtlCdn;
  spec.stack.fixed_ttl = Duration::Seconds(ttl_s);
  spec.traffic.writes_per_sec = 3.0;
  return spec;
}

bench::RunSpec WriteRateSpec(double rate) {
  bench::RunSpec spec = bench::DefaultRunSpec();
  spec.stack.ttl_mode = core::TtlMode::kFixed;
  spec.stack.fixed_ttl = Duration::Seconds(120);
  spec.stack.coherence.delta = Duration::Seconds(30);
  spec.traffic.writes_per_sec = rate;
  return spec;
}

void Run(int num_seeds, int threads, int shards, const std::string& json_path,
         const std::string& trace_path) {
  // One flat sweep over all three sections so --threads workers stay busy
  // across section boundaries; sections index into the grid by offset.
  std::vector<bench::RunSpec> configs;
  for (int delta_s : kDeltas) configs.push_back(DeltaSpec(delta_s));
  const size_t baseline_off = configs.size();
  for (int ttl_s : kBaselineTtls) configs.push_back(BaselineSpec(ttl_s));
  const size_t rate_off = configs.size();
  for (double rate : kWriteRates) configs.push_back(WriteRateSpec(rate));

  bench::ApplyCoherenceFlag(&configs, g_coherence);
  int sweep_threads =
      bench::ApplyShardAndThreadFlags(&configs, shards, threads, num_seeds);

  bench::SweepResult sweep = bench::RunSweep(configs, num_seeds, sweep_threads);

  bench::JsonValue root = bench::JsonValue::Object();
  root.Set("bench", "staleness_delta");
  root.Set("seeds", num_seeds);
  root.Set("threads", threads);
  root.Set("shards", shards);
  bench::JsonValue rows = bench::JsonValue::Array();

  bench::PrintSection(
      "staleness vs delta (fixed 120s TTLs, 3 writes/s, 25 clients, 20min)");
  bench::Row("%8s %10s %12s %14s %14s %14s %12s", "delta_s", "reads",
             "stale_rate", "max_stale_s", "p99_stale_s", "bound_delta_s",
             "bypasses");
  for (size_t i = 0; i < std::size(kDeltas); ++i) {
    int delta_s = kDeltas[i];
    const std::vector<bench::RunOutput>& runs = sweep.outputs[i];
    bench::RunOutput out = bench::MergeRuns(runs);
    bench::SeedStats max_stale = bench::SeedStatsOf(runs, [](const auto& o) {
      return o.staleness.max_staleness.seconds();
    });
    bench::Row("%8d %10llu %11.4f%% %14.2f %14.2f %14d %12llu", delta_s,
               static_cast<unsigned long long>(out.staleness.reads),
               out.staleness.StaleFraction() * 100,
               out.staleness.max_staleness.seconds(),
               out.staleness_us.P99() / 1e6, delta_s,
               static_cast<unsigned long long>(
                   out.traffic.proxies.sketch_bypasses));
    bench::JsonValue row = bench::JsonRow(
        {{"section", "delta_sweep"},
         {"delta_s", delta_s},
         {"reads", out.staleness.reads},
         {"stale_rate", out.staleness.StaleFraction()},
         {"max_stale_s", out.staleness.max_staleness.seconds()},
         {"p99_stale_s", out.staleness_us.P99() / 1e6},
         {"sketch_bypasses", out.traffic.proxies.sketch_bypasses}});
    row.Set("max_stale_s_per_seed", bench::JsonSeedStats(max_stale));
    rows.Push(std::move(row));
  }
  bench::Note(
      "max_stale_s is the worst case over all seeds and must stay <= bound "
      "(delta + purge propagation)");

  bench::PrintSection("baseline: same stack, sketch disabled (fixed TTL only)");
  bench::Row("%10s %10s %12s %14s", "ttl_s", "reads", "stale_rate",
             "max_stale_s");
  for (size_t i = 0; i < std::size(kBaselineTtls); ++i) {
    int ttl_s = kBaselineTtls[i];
    bench::RunOutput out = bench::MergeRuns(sweep.outputs[baseline_off + i]);
    bench::Row("%10d %10llu %11.4f%% %14.2f", ttl_s,
               static_cast<unsigned long long>(out.staleness.reads),
               out.staleness.StaleFraction() * 100,
               out.staleness.max_staleness.seconds());
    rows.Push(bench::JsonRow(
        {{"section", "no_sketch_baseline"},
         {"ttl_s", ttl_s},
         {"reads", out.staleness.reads},
         {"stale_rate", out.staleness.StaleFraction()},
         {"max_stale_s", out.staleness.max_staleness.seconds()}}));
  }
  bench::Note("staleness grows with TTL when nothing invalidates caches");

  bench::PrintSection("delta=30s: robustness across write rates");
  bench::Row("%12s %10s %12s %14s %14s", "writes_per_s", "reads", "stale_rate",
             "max_stale_s", "sketch_entries");
  for (size_t i = 0; i < std::size(kWriteRates); ++i) {
    double rate = kWriteRates[i];
    bench::RunOutput out = bench::MergeRuns(sweep.outputs[rate_off + i]);
    bench::Row("%12.1f %10llu %11.4f%% %14.2f %14zu", rate,
               static_cast<unsigned long long>(out.staleness.reads),
               out.staleness.StaleFraction() * 100,
               out.staleness.max_staleness.seconds(), out.sketch_entries);
    rows.Push(bench::JsonRow(
        {{"section", "write_rate_sensitivity"},
         {"writes_per_sec", rate},
         {"reads", out.staleness.reads},
         {"stale_rate", out.staleness.StaleFraction()},
         {"max_stale_s", out.staleness.max_staleness.seconds()},
         {"sketch_entries", static_cast<uint64_t>(out.sketch_entries)}}));
  }

  bench::Note(bench::WallClockNote(sweep, num_seeds, threads));
  root.Set("rows", std::move(rows));
  root.Set("wall_seconds", sweep.wall_seconds);
  root.Set("cpu_seconds", sweep.cpu_seconds);
  root.Set("speedup", sweep.Speedup());
  if (!json_path.empty()) bench::WriteJsonFile(json_path, root);

  bench::MaybeTraceRun(configs[0], "staleness_delta", trace_path);
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  int seeds = static_cast<int>(flags.GetInt("seeds", 4));
  speedkit::g_coherence = speedkit::bench::CoherenceModeFromFlag(
      flags.GetString("coherence", ""));
  int threads = static_cast<int>(flags.GetInt("threads", 1));
  int shards = static_cast<int>(flags.GetInt("shards", 1));
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "staleness_delta");
  std::string trace_path = speedkit::bench::TracePathFromFlag(
      flags.GetString("trace", ""), "staleness_delta");

  speedkit::bench::PrintHeader(
      "E2", "Delta-atomicity: staleness bound vs sketch refresh interval",
      "the paper's central coherence claim (bounded staleness under "
      "expiration-based caching)");
  speedkit::Run(seeds, threads, shards, json_path, trace_path);
  return 0;
}
