// E2 — Δ-atomicity: observed staleness vs. the sketch refresh interval Δ.
//
// Reproduces the paper's coherence claim ("custom cache coherence protocol
// to avoid data staleness and achieve Δ-atomicity"): with the sketch on,
// the maximum observed staleness must stay below Δ (+ purge propagation)
// for every Δ, while the stale-read *rate* stays near zero; with the
// sketch off the same stack degrades to TTL-bounded staleness.
#include "bench/bench_util.h"
#include "bench/workload_runner.h"

namespace speedkit {
namespace {

void DeltaSweep() {
  bench::PrintSection(
      "staleness vs delta (fixed 120s TTLs, 3 writes/s, 25 clients, 20min)");
  bench::Row("%8s %10s %12s %14s %14s %14s %12s", "delta_s", "reads",
             "stale_rate", "max_stale_s", "p99_stale_s", "bound_delta_s",
             "bypasses");
  for (int delta_s : {5, 10, 30, 60, 120}) {
    bench::RunSpec spec = bench::DefaultRunSpec();
    spec.stack.ttl_mode = core::TtlMode::kFixed;
    spec.stack.fixed_ttl = Duration::Seconds(120);
    spec.stack.delta = Duration::Seconds(delta_s);
    spec.traffic.writes_per_sec = 3.0;
    bench::RunOutput out = bench::RunWorkload(spec);
    bench::Row("%8d %10llu %11.4f%% %14.2f %14.2f %14d %12llu", delta_s,
               static_cast<unsigned long long>(out.staleness.reads),
               out.staleness.StaleFraction() * 100,
               out.staleness.max_staleness.seconds(),
               out.staleness_us.P99() / 1e6, delta_s,
               static_cast<unsigned long long>(
                   out.traffic.proxies.sketch_bypasses));
  }
  bench::Note("max_stale_s must stay <= bound (delta + purge propagation)");
}

void NoSketchBaseline() {
  bench::PrintSection("baseline: same stack, sketch disabled (fixed TTL only)");
  bench::Row("%10s %10s %12s %14s", "ttl_s", "reads", "stale_rate",
             "max_stale_s");
  for (int ttl_s : {30, 120, 600}) {
    bench::RunSpec spec = bench::DefaultRunSpec();
    spec.stack.variant = core::SystemVariant::kFixedTtlCdn;
    spec.stack.fixed_ttl = Duration::Seconds(ttl_s);
    spec.traffic.writes_per_sec = 3.0;
    bench::RunOutput out = bench::RunWorkload(spec);
    bench::Row("%10d %10llu %11.4f%% %14.2f", ttl_s,
               static_cast<unsigned long long>(out.staleness.reads),
               out.staleness.StaleFraction() * 100,
               out.staleness.max_staleness.seconds());
  }
  bench::Note("staleness grows with TTL when nothing invalidates caches");
}

void WriteRateSensitivity() {
  bench::PrintSection("delta=30s: robustness across write rates");
  bench::Row("%12s %10s %12s %14s %14s", "writes_per_s", "reads",
             "stale_rate", "max_stale_s", "sketch_entries");
  for (double rate : {0.5, 2.0, 8.0}) {
    bench::RunSpec spec = bench::DefaultRunSpec();
    spec.stack.ttl_mode = core::TtlMode::kFixed;
    spec.stack.fixed_ttl = Duration::Seconds(120);
    spec.stack.delta = Duration::Seconds(30);
    spec.traffic.writes_per_sec = rate;
    bench::RunOutput out = bench::RunWorkload(spec);
    bench::Row("%12.1f %10llu %11.4f%% %14.2f %14zu", rate,
               static_cast<unsigned long long>(out.staleness.reads),
               out.staleness.StaleFraction() * 100,
               out.staleness.max_staleness.seconds(), out.sketch_entries);
  }
}

}  // namespace
}  // namespace speedkit

int main() {
  speedkit::bench::PrintHeader(
      "E2", "Delta-atomicity: staleness bound vs sketch refresh interval",
      "the paper's central coherence claim (bounded staleness under "
      "expiration-based caching)");
  speedkit::DeltaSweep();
  speedkit::NoSketchBaseline();
  speedkit::WriteRateSensitivity();
  return 0;
}
