// E4 — Requests served per layer (browser / CDN edge / origin) vs.
// popularity skew and CDN fan-out: the polyglot architecture's payoff.
//
// Reproduces the layered-hit-ratio view of the architecture: as skew
// grows, traffic collapses onto the hot head and the cache layers absorb
// it; more edges dilute per-edge hit rates (same traffic split more ways).
#include <string>

#include "bench/bench_util.h"
#include "bench/json_writer.h"
#include "bench/trace_support.h"
#include "bench/workload_runner.h"
#include "tools/flags.h"

namespace speedkit {
namespace {

// --shards/--threads: in-run sharded execution for every RunWorkload this
// harness performs (results are invariant to the thread count; the shard
// count is a model parameter and must divide cdn_edges).
int g_shards = 1;
int g_run_threads = 1;
// --coherence: which protocol the stack runs (delta_atomic default).
coherence::CoherenceMode g_coherence = coherence::CoherenceMode::kDeltaAtomic;

bench::RunSpec BaseSpec() {
  bench::RunSpec spec = bench::DefaultRunSpec();
  spec.stack.shards = g_shards;
  spec.run_threads = g_run_threads;
  spec.stack.coherence.mode = g_coherence;
  return spec;
}


void SkewSweep(bench::JsonValue* rows) {
  bench::PrintSection("share of requests per layer vs Zipf skew (4 edges)");
  bench::Row("%6s %10s %10s %10s %10s %12s", "skew", "browser", "edge",
             "origin", "reval304", "p50_ms");
  for (double skew : {0.5, 0.7, 0.9, 1.1, 1.3}) {
    bench::RunSpec spec = BaseSpec();
    spec.traffic.session.product_skew = skew;
    bench::RunOutput out = bench::RunWorkload(spec);
    const auto& p = out.traffic.proxies;
    double n = static_cast<double>(p.requests);
    bench::Row("%6.1f %9.1f%% %9.1f%% %9.1f%% %9.1f%% %12.1f", skew,
               100.0 * p.browser_hits / n, 100.0 * p.edge_hits / n,
               100.0 * p.origin_fetches / n,
               100.0 * p.revalidations_304 / n,
               out.traffic.all_latency_us.P50() / 1e3);
    rows->Push(bench::JsonRow(
        {{"section", "skew_sweep"},
         {"skew", skew},
         {"browser_share", p.browser_hits / n},
         {"edge_share", p.edge_hits / n},
         {"origin_share", p.origin_fetches / n},
         {"reval_304_share", p.revalidations_304 / n},
         {"p50_ms", out.traffic.all_latency_us.P50() / 1e3}}));
  }
}

void EdgeCountSweep(bench::JsonValue* rows) {
  bench::PrintSection("edge fan-out: per-layer shares vs number of edges");
  bench::Row("%6s %10s %10s %10s %12s", "edges", "browser", "edge", "origin",
             "p50_ms");
  for (int edges : {1, 2, 4, 8, 16}) {
    bench::RunSpec spec = BaseSpec();
    spec.stack.cdn_edges = edges;
    // Sweep points the requested shard count cannot partition (shards must
    // divide cdn_edges — Validate rejects, it does not clamp) run
    // unsharded rather than abort the whole sweep.
    if (edges % spec.stack.shards != 0) {
      spec.stack.shards = 1;
      spec.run_threads = 1;
    }
    spec.traffic.session.product_skew = 0.9;
    bench::RunOutput out = bench::RunWorkload(spec);
    const auto& p = out.traffic.proxies;
    double n = static_cast<double>(p.requests);
    bench::Row("%6d %9.1f%% %9.1f%% %9.1f%% %12.1f", edges,
               100.0 * p.browser_hits / n, 100.0 * p.edge_hits / n,
               100.0 * p.origin_fetches / n,
               out.traffic.all_latency_us.P50() / 1e3);
    rows->Push(bench::JsonRow(
        {{"section", "edge_count_sweep"},
         {"edges", edges},
         {"browser_share", p.browser_hits / n},
         {"edge_share", p.edge_hits / n},
         {"origin_share", p.origin_fetches / n},
         {"p50_ms", out.traffic.all_latency_us.P50() / 1e3}}));
  }
  bench::Note("more edges split the shared working set: edge share drops, "
              "origin share grows (classic CDN cache dilution)");
}

void CatalogSizeSweep(bench::JsonValue* rows) {
  bench::PrintSection("working-set pressure: shares vs catalog size");
  bench::Row("%10s %10s %10s %10s", "products", "browser", "edge", "origin");
  for (size_t products : {500u, 2000u, 10000u, 50000u}) {
    bench::RunSpec spec = BaseSpec();
    spec.catalog.num_products = products;
    spec.traffic.session.product_skew = 0.9;
    bench::RunOutput out = bench::RunWorkload(spec);
    const auto& p = out.traffic.proxies;
    double n = static_cast<double>(p.requests);
    bench::Row("%10zu %9.1f%% %9.1f%% %9.1f%%", products,
               100.0 * p.browser_hits / n, 100.0 * p.edge_hits / n,
               100.0 * p.origin_fetches / n);
    rows->Push(bench::JsonRow(
        {{"section", "catalog_size_sweep"},
         {"products", static_cast<uint64_t>(products)},
         {"browser_share", p.browser_hits / n},
         {"edge_share", p.edge_hits / n},
         {"origin_share", p.origin_fetches / n}}));
  }
}

}  // namespace
}  // namespace speedkit

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  speedkit::g_shards = static_cast<int>(flags.GetInt("shards", 1));
  speedkit::g_coherence = speedkit::bench::CoherenceModeFromFlag(
      flags.GetString("coherence", ""));
  speedkit::g_run_threads = static_cast<int>(flags.GetInt("threads", 1));
  std::string json_path = speedkit::bench::JsonPathFromFlag(
      flags.GetString("json", ""), "hit_layers");
  std::string trace_path = speedkit::bench::TracePathFromFlag(
      flags.GetString("trace", ""), "hit_layers");

  speedkit::bench::PrintHeader(
      "E4", "Requests served per cache layer",
      "the polyglot architecture's layered hit ratios (browser -> CDN -> "
      "origin)");
  speedkit::bench::JsonValue rows = speedkit::bench::JsonValue::Array();
  speedkit::SkewSweep(&rows);
  speedkit::EdgeCountSweep(&rows);
  speedkit::CatalogSizeSweep(&rows);
  if (!json_path.empty()) {
    speedkit::bench::JsonValue root = speedkit::bench::JsonValue::Object();
    root.Set("bench", "hit_layers");
    root.Set("rows", std::move(rows));
    speedkit::bench::WriteJsonFile(json_path, root);
  }
  speedkit::bench::RunSpec trace_spec = speedkit::bench::DefaultRunSpec();
  trace_spec.traffic.session.product_skew = 0.9;
  speedkit::bench::MaybeTraceRun(trace_spec, "hit_layers", trace_path);
  return 0;
}
