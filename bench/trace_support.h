// Shared --trace support for the fig_*/tbl_* harnesses.
//
// Every traffic-driven binary accepts --trace[=<path>]. When set, the
// harness re-runs its representative configuration (seed index 0 — the
// same trial the sweep runs) twice: once untraced and once with the full
// observability layer on. It then
//   1. asserts the two runs produced identical experiment metrics — the
//      obs layer's "never changes results" contract, checked on every
//      traced invocation, not just in CI;
//   2. prints the per-tier client-latency breakdown (the request.latency_us
//      histograms by serving tier and fault state);
//   3. writes the trace CSV that tools/trace_report renders, with
//      served_total in the metadata so the report can verify one
//      request-trace per served request.
// A mismatch in step 1 is a broken invariant, not a degraded result: the
// process dies with exit code 1 so CI and scripts cannot miss it.
#ifndef SPEEDKIT_BENCH_TRACE_SUPPORT_H_
#define SPEEDKIT_BENCH_TRACE_SUPPORT_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "bench/parallel_runner.h"
#include "bench/workload_runner.h"
#include "obs/export.h"

namespace speedkit::bench {

// Resolves the --trace flag value for a harness named `name`: a bare
// `--trace` picks the conventional TRACE_<name>.csv, `--trace=<path>`
// overrides, absent flag disables (empty string). Mirrors JsonPathFromFlag.
inline std::string TracePathFromFlag(const std::string& flag_value,
                                     const std::string& name) {
  if (flag_value.empty()) return "";
  if (flag_value == "true") return "TRACE_" + name + ".csv";
  return flag_value;
}

namespace trace_internal {

// Compares one scalar; prints the first divergence loudly.
inline bool CheckEqual(const char* what, uint64_t untraced, uint64_t traced,
                       bool* ok) {
  if (untraced == traced) return true;
  std::fprintf(stderr,
               "TRACE INVARIANT BROKEN: %s differs with tracing on "
               "(untraced=%llu traced=%llu)\n",
               what, static_cast<unsigned long long>(untraced),
               static_cast<unsigned long long>(traced));
  *ok = false;
  return false;
}

// The experiment-visible surface of a run: every counter a table or JSON
// row can print. Histograms are compared via count+sum+extremes, which
// pins the full sample multiset for our integer-valued latencies.
inline bool SameHistogram(const char* what, const Histogram& a,
                          const Histogram& b, bool* ok) {
  bool same = true;
  std::string base(what);
  same &= CheckEqual((base + ".count").c_str(), a.count(), b.count(), ok);
  same &= CheckEqual((base + ".sum").c_str(),
                     static_cast<uint64_t>(a.Sum()),
                     static_cast<uint64_t>(b.Sum()), ok);
  same &= CheckEqual((base + ".min").c_str(), static_cast<uint64_t>(a.min()),
                     static_cast<uint64_t>(b.min()), ok);
  same &= CheckEqual((base + ".max").c_str(), static_cast<uint64_t>(a.max()),
                     static_cast<uint64_t>(b.max()), ok);
  return same;
}

inline bool SameExperimentOutputs(const RunOutput& u, const RunOutput& t) {
  bool ok = true;
  const proxy::ProxyStats& a = u.traffic.proxies;
  const proxy::ProxyStats& b = t.traffic.proxies;
  CheckEqual("proxy.requests", a.requests, b.requests, &ok);
  CheckEqual("proxy.browser_hits", a.browser_hits, b.browser_hits, &ok);
  CheckEqual("proxy.swr_serves", a.swr_serves, b.swr_serves, &ok);
  CheckEqual("proxy.edge_hits", a.edge_hits, b.edge_hits, &ok);
  CheckEqual("proxy.origin_fetches", a.origin_fetches, b.origin_fetches, &ok);
  CheckEqual("proxy.offline_serves", a.offline_serves, b.offline_serves, &ok);
  CheckEqual("proxy.errors", a.errors, b.errors, &ok);
  CheckEqual("proxy.revalidations_304", a.revalidations_304,
             b.revalidations_304, &ok);
  CheckEqual("proxy.revalidations_200", a.revalidations_200,
             b.revalidations_200, &ok);
  CheckEqual("proxy.sketch_bypasses", a.sketch_bypasses, b.sketch_bypasses,
             &ok);
  CheckEqual("proxy.sketch_refreshes", a.sketch_refreshes, b.sketch_refreshes,
             &ok);
  CheckEqual("proxy.bytes_over_network", a.bytes_over_network,
             b.bytes_over_network, &ok);
  CheckEqual("proxy.timeouts", a.timeouts, b.timeouts, &ok);
  CheckEqual("proxy.retries", a.retries, b.retries, &ok);
  CheckEqual("proxy.fallback_serves", a.fallback_serves, b.fallback_serves,
             &ok);
  CheckEqual("proxy.background_revalidations", a.background_revalidations,
             b.background_revalidations, &ok);
  SameHistogram("api_latency_us", u.traffic.api_latency_us,
                t.traffic.api_latency_us, &ok);
  SameHistogram("all_latency_us", u.traffic.all_latency_us,
                t.traffic.all_latency_us, &ok);
  CheckEqual("staleness.reads", u.staleness.reads, t.staleness.reads, &ok);
  CheckEqual("staleness.stale_reads", u.staleness.stale_reads,
             t.staleness.stale_reads, &ok);
  CheckEqual("staleness.delta_violations", u.staleness.delta_violations,
             t.staleness.delta_violations, &ok);
  CheckEqual("staleness.max_us",
             static_cast<uint64_t>(u.staleness.max_staleness.micros()),
             static_cast<uint64_t>(t.staleness.max_staleness.micros()), &ok);
  CheckEqual("origin.requests", u.origin_requests, t.origin_requests, &ok);
  CheckEqual("pipeline.purges_scheduled", u.pipeline.purges_scheduled,
             t.pipeline.purges_scheduled, &ok);
  CheckEqual("pipeline.purges_effective", u.pipeline.purges_effective,
             t.pipeline.purges_effective, &ok);
  CheckEqual("edge.down_rejects", u.edge_faults.down_rejects,
             t.edge_faults.down_rejects, &ok);
  CheckEqual("sketch.entries", u.sketch_entries, t.sketch_entries, &ok);
  CheckEqual("sketch.snapshot_bytes", u.sketch_snapshot_bytes,
             t.sketch_snapshot_bytes, &ok);
  return ok;
}

inline void PrintTierRow(const char* tier, const Histogram& h) {
  if (h.count() == 0) return;
  Row("%10s %10llu %10.1f %10.1f %10.1f %10.1f", tier,
      static_cast<unsigned long long>(h.count()), h.P50() / 1e3, h.P90() / 1e3,
      h.P95() / 1e3, h.P99() / 1e3);
}

}  // namespace trace_internal

// Prints the per-tier latency breakdown of one run (ms). Works for any
// run — the tier histograms fill unconditionally — but harnesses call it
// from the --trace path where it sits next to the trace CSV it explains.
inline void PrintTierBreakdown(const proxy::ProxyStats& p) {
  PrintSection("per-tier client latency breakdown (ms)");
  Row("%10s %10s %10s %10s %10s %10s", "tier", "requests", "p50", "p90", "p95",
      "p99");
  trace_internal::PrintTierRow("browser", p.latency_browser_us);
  trace_internal::PrintTierRow("edge", p.latency_edge_us);
  trace_internal::PrintTierRow("origin", p.latency_origin_us);
  trace_internal::PrintTierRow("offline", p.latency_offline_us);
  trace_internal::PrintTierRow("error", p.latency_error_us);
  trace_internal::PrintTierRow("ok", p.latency_ok_us);
  trace_internal::PrintTierRow("degraded", p.latency_degraded_us);
}

// The --trace entry point: no-op when `trace_path` is empty, otherwise the
// re-run / verify / report / export sequence described in the file header.
// `base` should be the harness's representative configuration (typically
// its first sweep config); `bench_name` labels the CSV metadata.
inline void MaybeTraceRun(const RunSpec& base, const std::string& bench_name,
                          const std::string& trace_path) {
  if (trace_path.empty()) return;
  PrintSection("trace capture (--trace): " + trace_path);

  RunSpec spec = SpecForSeed(base, 0);
  // Tracing captures one canonical unsharded run: a sharded run keeps one
  // trace sink per shard and its merged output carries no captures, so
  // there would be nothing to export (the sharded engine's own invariant
  // — numbers never change with shards=1 vs the legacy stack — is gated
  // separately by fig_throughput and tests/bench).
  spec.stack.shards = 1;
  spec.run_threads = 1;
  RunOutput untraced = RunWorkload(spec);

  RunSpec traced_spec = spec;
  traced_spec.stack.obs.metrics = true;
  traced_spec.stack.obs.tracing = true;
  RunOutput traced = RunWorkload(traced_spec);

  if (!trace_internal::SameExperimentOutputs(untraced, traced)) {
    std::fprintf(stderr,
                 "FATAL: tracing changed experiment results for %s "
                 "(seed=%llu) — the observability layer must be inert\n",
                 bench_name.c_str(),
                 static_cast<unsigned long long>(spec.stack.seed));
    std::exit(1);
  }
  Note("traced run matches untraced run field-for-field (seed " +
       std::to_string(spec.stack.seed) + ")");

  PrintTierBreakdown(traced.traffic.proxies);

  const proxy::ProxyStats& p = traced.traffic.proxies;
  obs::MetaList meta = {
      {"bench", bench_name},
      {"seed", std::to_string(spec.stack.seed)},
      {"requests", std::to_string(p.requests)},
      {"served_total", std::to_string(p.ServedTotal())},
      {"trace_emitted", std::to_string(traced.traces->emitted())},
      {"trace_dropped", std::to_string(traced.traces->dropped())},
  };
  if (obs::WriteTraceCsv(trace_path, traced.traces->traces(), meta)) {
    Note("wrote " + std::to_string(traced.traces->traces().size()) +
         " traces to " + trace_path + " (render with tools/trace_report)");
  }
}

}  // namespace speedkit::bench

#endif  // SPEEDKIT_BENCH_TRACE_SUPPORT_H_
