// Socket quickstart: boot a real speedkit-edged node in-process, talk to
// it over genuine TCP with the HTTP/1.1 codec, and watch the same cache
// tiering the simulator models answer on the wire — browser-cache repeat
// hits, per-client isolation, and the admin endpoints.
//
//   cmake --build build && ./build/examples/socket_quickstart
//
// The operator view of everything shown here is docs/OPERATIONS.md.
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>

#include "common/random.h"
#include "net/edged_server.h"
#include "net/http_codec.h"
#include "net/tcp_listener.h"
#include "workload/catalog.h"

using namespace speedkit;

namespace {

// Sends one GET and blocks until the full response is parsed.
net::WireResponse Fetch(int fd, const std::string& target,
                        uint64_t client_id) {
  http::HeaderMap headers;
  headers.Set("Host", "shop.example.com");
  headers.Set("X-SpeedKit-Client", std::to_string(client_id));
  std::string wire =
      net::SerializeRequest(http::Method::kGet, target, headers);
  (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);

  net::WireResponse resp;
  std::string buf;
  while (true) {
    size_t consumed = 0;
    net::ParseStatus st = net::ParseResponse(buf, &resp, &consumed);
    if (st == net::ParseStatus::kOk) return resp;
    char chunk[16 * 1024];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      std::fprintf(stderr, "connection died mid-response\n");
      std::exit(1);
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
}

void Show(const char* label, const net::WireResponse& r) {
  std::printf("  %-34s -> %d, source=%s, modeled %s us\n", label,
              r.status_code,
              std::string(r.headers.Get("X-SpeedKit-Source").value_or("-"))
                  .c_str(),
              std::string(r.headers.Get("X-SpeedKit-Latency-Us").value_or("-"))
                  .c_str());
}

}  // namespace

int main() {
  std::printf("Speed Kit socket quickstart\n===========================\n\n");

  // 1. One edge node on an ephemeral localhost port. This is the exact
  //    server `tools/speedkit-edged` runs: an epoll loop in front of the
  //    simulator's SpeedKitStack, wall time mapped 1:1 onto sim time.
  net::EdgedConfig config;
  config.catalog.num_products = 100;
  config.stack.cdn_edges = 1;  // one edge, so both demo clients share it
  net::EdgedServer server(config);
  if (!server.Start()) {
    std::fprintf(stderr, "failed to bind\n");
    return 1;
  }
  std::thread loop([&] { server.Run(); });
  std::printf("node %s listening on 127.0.0.1:%u\n\n",
              server.config().node_name.c_str(), unsigned{server.port()});

  // 2. A real TCP connection (the codec is the one the loadgen uses).
  int fd = net::TcpConnect("127.0.0.1", server.port(), 2000);
  if (fd < 0) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);  // blocking I/O for the demo

  // 3. The catalog the server populated is reconstructible client-side:
  //    ProductUrl(rank) does not depend on the RNG, so any client knows
  //    the keyspace. Strip the scheme+host down to the request target.
  workload::Catalog catalog(config.catalog, Pcg32(1));
  std::string url = catalog.ProductUrl(0);
  std::string target = url.substr(url.find('/', std::string("https://").size()));

  // 4. Client 1's first fetch descends to the origin; the repeat is a
  //    browser-cache hit — the per-client proxy lives behind the socket.
  std::printf("client 1, cold and warm:\n");
  Show("first fetch", Fetch(fd, target, 1));
  Show("same client again", Fetch(fd, target, 1));

  // 5. Client 2 has no browser copy but shares the edge tier, so it is
  //    served from the edge cache the first fetch filled.
  std::printf("\nclient 2, sharing only the edge:\n");
  Show("different client", Fetch(fd, target, 2));

  // 6. Admin endpoints: liveness, ring topology, live wire metrics.
  std::printf("\nadmin surface:\n");
  Show("/healthz", Fetch(fd, "/healthz", 0));
  net::WireResponse ring = Fetch(fd, "/ringz", 0);
  std::printf("  /ringz body: %s", ring.body.c_str());
  net::WireResponse metrics = Fetch(fd, "/metricsz", 0);
  std::printf("  /metricsz is %zu bytes of JSON (net.*, proxy, cdn, origin)\n",
              metrics.body.size());

  // 7. Graceful shutdown: drain and close from another thread.
  ::close(fd);
  server.Stop();
  loop.join();
  std::printf("\nserver drained and stopped; next: run the standalone\n"
              "tools (speedkit-edged + speedkit-loadgen) per "
              "docs/OPERATIONS.md\n");
  return 0;
}
