// Invalidation pipeline walk-through: watch a single write ripple through
// real-time query matching, CDN purge fan-out and the Cache Sketch —
// the invalidation-based half of the polyglot architecture, narrated.
//
//   ./build/examples/invalidation_dashboard
#include <cstdio>

#include "core/stack.h"
#include "invalidation/pipeline.h"

using namespace speedkit;

namespace {

void SketchStatus(core::SpeedKitStack& stack, const char* when) {
  std::printf("[%8.3fs] sketch: %zu tracked key(s), snapshot %zu bytes %s\n",
              stack.clock().Now().seconds(), stack.sketch()->entries(),
              stack.sketch()->SerializedSnapshot(stack.clock().Now()).size(),
              when);
}

void EdgeStatus(core::SpeedKitStack& stack, const std::string& key) {
  std::printf("[%8.3fs] edges holding %s: ", stack.clock().Now().seconds(),
              key.c_str());
  for (int e = 0; e < stack.cdn().num_edges(); ++e) {
    bool held = stack.cdn().edge(e).Lookup(key, stack.clock().Now()).entry !=
                nullptr;
    std::printf("%d:%s ", e, held ? "yes" : "no ");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("invalidation pipeline dashboard\n");
  std::printf("===============================\n\n");

  core::StackConfig config;
  config.cdn_edges = 4;
  config.pipeline.purge_median_delay = Duration::Millis(80);
  core::SpeedKitStack stack(config);

  // Catalog of two shoes; a watched query caches "all products on sale".
  stack.store().Put("shoe-red",
                    {{"category", static_cast<int64_t>(1)},
                     {"price", 99.0},
                     {"on_sale", false}},
                    stack.clock().Now());
  stack.store().Put("shoe-blue",
                    {{"category", static_cast<int64_t>(1)},
                     {"price", 89.0},
                     {"on_sale", false}},
                    stack.clock().Now());
  invalidation::Query on_sale;
  on_sale.id = "on-sale";
  on_sale.conditions.push_back(
      {"on_sale", invalidation::Op::kEq, true});
  (void)stack.origin().RegisterQuery(on_sale);
  (void)stack.pipeline()->WatchQuery(on_sale,
                                     invalidation::QueryCacheKey("on-sale"));
  std::printf("watching query: %s\n", on_sale.ToString().c_str());
  stack.Advance(Duration::Seconds(5));

  // Seed every edge with the product page and the query result.
  std::string product_key = invalidation::RecordCacheKey("shoe-red");
  std::string query_key = invalidation::QueryCacheKey("on-sale");
  for (int e = 0; e < stack.cdn().num_edges(); ++e) {
    auto req = http::HttpRequest::Get(*http::Url::Parse(product_key));
    stack.cdn().edge(e).Store(product_key, stack.origin().Handle(req),
                              stack.clock().Now());
    auto qreq = http::HttpRequest::Get(*http::Url::Parse(query_key));
    stack.cdn().edge(e).Store(query_key, stack.origin().Handle(qreq),
                              stack.clock().Now());
  }
  std::printf("\nseeded all edges with the product page and the 'on-sale' "
              "listing\n");
  EdgeStatus(stack, product_key);
  SketchStatus(stack, "(quiescent)");

  // The write: shoe-red goes on sale. This changes (a) its record page and
  // (b) the on-sale query result (it enters the result set).
  std::printf("\n>>> WRITE: shoe-red goes on sale (price 79.0)\n\n");
  stack.store().Update("shoe-red", {{"price", 79.0}, {"on_sale", true}},
                       stack.clock().Now());

  SketchStatus(stack, "(write just landed: both keys tracked)");
  EdgeStatus(stack, product_key);
  std::printf("           ...purges are in flight (median 80 ms per edge)\n");
  stack.Advance(Duration::Millis(60));
  EdgeStatus(stack, product_key);
  stack.Advance(Duration::Millis(300));
  EdgeStatus(stack, product_key);
  EdgeStatus(stack, query_key);

  const invalidation::PipelineStats& ps = stack.pipeline()->stats();
  std::printf("\npipeline: %llu write(s) -> %llu key(s) invalidated -> "
              "%llu purges (%llu effective)\n",
              static_cast<unsigned long long>(ps.writes_seen),
              static_cast<unsigned long long>(ps.keys_invalidated),
              static_cast<unsigned long long>(ps.purges_scheduled),
              static_cast<unsigned long long>(ps.purges_effective));
  std::printf("purge propagation: %s\n",
              stack.pipeline()->propagation_latency_us().Summary().c_str());

  // The sketch entries expire once no cache anywhere can still hold a
  // stale copy.
  std::printf("\nfast-forward past the stale horizon...\n");
  stack.Advance(Duration::Minutes(15));
  SketchStatus(stack, "(horizon passed: keys released)");
  return 0;
}
