// A day at a simulated e-commerce storefront: 40 shoppers browse a 5000
// product catalog while prices churn underneath them. Prints the
// operations dashboard a Speed Kit deployment would show: per-layer hit
// rates, latency percentiles, coherence health, invalidation pipeline
// stats.
//
//   ./build/examples/ecommerce_storefront
#include <cstdio>

#include "core/stack.h"
#include "core/traffic.h"

using namespace speedkit;

int main() {
  std::printf("e-commerce storefront simulation\n");
  std::printf("================================\n\n");

  core::StackConfig config;
  config.cdn_edges = 4;
  config.coherence.delta = Duration::Seconds(30);
  core::SpeedKitStack stack(config);

  workload::CatalogConfig catalog_config;
  catalog_config.num_products = 5000;
  catalog_config.num_categories = 40;
  workload::Catalog catalog(catalog_config, Pcg32(2026));
  catalog.Populate(&stack.store(), stack.clock().Now());
  for (int c = 0; c < catalog.num_categories(); ++c) {
    (void)stack.origin().RegisterQuery(catalog.CategoryQuery(c));
    (void)stack.pipeline()->WatchQuery(catalog.CategoryQuery(c),
                                       catalog.CategoryUrl(c));
  }
  stack.Advance(Duration::Seconds(5));
  std::printf("catalog: %zu products in %d categories; watching %d listing "
              "queries\n\n",
              catalog.num_products(), catalog.num_categories(),
              catalog.num_categories());

  core::TrafficConfig traffic;
  traffic.num_clients = 40;
  traffic.duration = Duration::Minutes(30);
  traffic.writes_per_sec = 3.0;  // price/stock updates
  traffic.write_skew = 0.9;      // hot products churn most
  core::TrafficSimulation sim(&stack, &catalog, traffic);
  std::printf("running %zu shoppers for %.0f minutes with %.1f writes/s...\n",
              traffic.num_clients, traffic.duration.seconds() / 60,
              traffic.writes_per_sec);
  core::TrafficResult result = sim.Run();

  const proxy::ProxyStats& p = result.proxies;
  double n = static_cast<double>(p.requests);
  std::printf("\n-- delivery --\n");
  std::printf("page views            %llu\n",
              static_cast<unsigned long long>(result.page_views));
  std::printf("requests              %llu\n",
              static_cast<unsigned long long>(p.requests));
  std::printf("browser cache         %5.1f%%\n", 100 * p.browser_hits / n);
  std::printf("CDN edge              %5.1f%%\n", 100 * p.edge_hits / n);
  std::printf("revalidations (304)   %5.1f%%\n",
              100 * p.revalidations_304 / n);
  std::printf("origin                %5.1f%%\n", 100 * p.origin_fetches / n);
  std::printf("API latency           p50 %.1f ms / p90 %.1f ms / p99 %.1f ms\n",
              result.api_latency_us.P50() / 1e3,
              result.api_latency_us.P90() / 1e3,
              result.api_latency_us.P99() / 1e3);
  std::printf("bytes from caches     %.1f MB   over network %.1f MB\n",
              p.bytes_from_browser_cache / 1e6, p.bytes_over_network / 1e6);

  std::printf("\n-- coherence --\n");
  const core::StalenessReport& s = stack.staleness().report();
  std::printf("writes applied        %llu\n",
              static_cast<unsigned long long>(result.writes_applied));
  std::printf("tracked reads         %llu\n",
              static_cast<unsigned long long>(s.reads));
  std::printf("stale reads           %llu (%.3f%%)\n",
              static_cast<unsigned long long>(s.stale_reads),
              100 * s.StaleFraction());
  std::printf("max staleness         %.2f s (bound: delta=%.0f s + purge)\n",
              s.max_staleness.seconds(), config.coherence.delta.seconds());
  std::printf("sketch entries        %zu (snapshot %zu bytes)\n",
              stack.sketch()->entries(),
              stack.sketch()->SerializedSnapshot(stack.clock().Now()).size());
  std::printf("sketch refreshes      %llu (%.1f KB total)\n",
              static_cast<unsigned long long>(p.sketch_refreshes),
              p.sketch_bytes / 1e3);

  std::printf("\n-- invalidation pipeline --\n");
  const invalidation::PipelineStats& ps = stack.pipeline()->stats();
  std::printf("writes seen           %llu\n",
              static_cast<unsigned long long>(ps.writes_seen));
  std::printf("keys invalidated      %llu\n",
              static_cast<unsigned long long>(ps.keys_invalidated));
  std::printf("edge purges           %llu scheduled, %llu effective\n",
              static_cast<unsigned long long>(ps.purges_scheduled),
              static_cast<unsigned long long>(ps.purges_effective));
  std::printf("purge propagation     %s\n",
              stack.pipeline()->propagation_latency_us().Summary().c_str());
  return 0;
}
