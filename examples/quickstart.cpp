// Quickstart: assemble a Speed Kit deployment, fetch through the client
// proxy, watch the Cache Sketch keep a cached value coherent.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/stack.h"
#include "invalidation/pipeline.h"

using namespace speedkit;

namespace {

void Show(const char* label, const proxy::FetchResult& r) {
  std::printf("  %-34s -> %s, v%llu, %.1f ms%s%s\n", label,
              std::string(proxy::ServedFromName(r.source)).c_str(),
              static_cast<unsigned long long>(r.response.object_version),
              r.latency.millis(), r.revalidated ? ", revalidated" : "",
              r.sketch_bypass ? ", sketch bypass" : "");
}

}  // namespace

int main() {
  std::printf("Speed Kit quickstart\n====================\n\n");

  // 1. One fully wired deployment: origin store, TTL estimator, Cache
  //    Sketch, 4-edge CDN, invalidation pipeline, simulated WAN.
  core::StackConfig config;
  config.coherence.delta = Duration::Seconds(30);  // client sketch refresh interval
  core::SpeedKitStack stack(config);

  // 2. Put a product into the origin store.
  std::string url = invalidation::RecordCacheKey("sneaker-42");
  stack.store().Put("sneaker-42",
                    {{"price", 89.9}, {"stock", static_cast<int64_t>(3)}},
                    stack.clock().Now());
  stack.Advance(Duration::Seconds(1));  // let the insert's purge settle

  // 3. A browser with the Speed Kit service worker installed.
  auto client = stack.MakeClient(/*client_id=*/1);

  std::printf("cold fetch, then repeats:\n");
  Show("first fetch", client->Fetch(url));
  Show("second fetch", client->Fetch(url));
  stack.Advance(Duration::Seconds(10));
  Show("10 s later", client->Fetch(url));

  // 4. The price changes at the origin. The pipeline purges every CDN edge
  //    and parks the URL in the Cache Sketch until the last cached copy's
  //    TTL has run out.
  std::printf("\nprice drops to 79.9 at the origin...\n");
  stack.store().Update("sneaker-42", {{"price", 79.9}}, stack.clock().Now());
  std::printf("  sketch now tracks %zu potentially-stale key(s)\n",
              stack.sketch()->entries());

  // 5. Within delta, the client may briefly still see the old value (the
  //    bound); after its next sketch refresh it must revalidate.
  Show("immediately after the write", client->Fetch(url));
  stack.Advance(config.coherence.delta + Duration::Seconds(1));
  Show("after the next sketch refresh", client->Fetch(url));
  Show("and once more (cheap 304 path)", client->Fetch(url));

  std::printf("\nclient stats: %llu requests, %llu browser hits, "
              "%llu sketch bypasses, %llu sketch refreshes (%llu bytes)\n",
              static_cast<unsigned long long>(client->stats().requests),
              static_cast<unsigned long long>(client->stats().browser_hits),
              static_cast<unsigned long long>(client->stats().sketch_bypasses),
              static_cast<unsigned long long>(client->stats().sketch_refreshes),
              static_cast<unsigned long long>(client->stats().sketch_bytes));
  std::printf("\nno reader can observe the old price more than delta (+purge "
              "lag) after the write: delta-atomicity.\n");
  return 0;
}
