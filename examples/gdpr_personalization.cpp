// GDPR-compliant personalization, demonstrated: the same personalized page
// rendered through (a) Speed Kit's on-device join and (b) the legacy
// send-the-user-id approach, with a boundary auditor watching every byte
// that leaves the device.
//
//   ./build/examples/gdpr_personalization
#include <cstdio>

#include "core/stack.h"

using namespace speedkit;

namespace {

void RenderPage(core::SpeedKitStack& stack, bool gdpr_mode) {
  std::printf("\n=== %s ===\n",
              gdpr_mode ? "Speed Kit GDPR mode (on-device join)"
                        : "legacy personalization (identity sent upstream)");

  // The shopper's personal data lives in the on-device vault only.
  personalization::PiiVault vault(481516);
  vault.Put("name", "Grace Hopper");
  vault.Put("email", "grace@example.org");
  vault.Put("cart", "COBOL compiler, 1 nanosecond of wire");

  // The auditor knows every sensitive value and inspects outgoing traffic.
  personalization::BoundaryAuditor auditor;
  auditor.RegisterVault(vault);

  proxy::ProxyConfig pc = stack.DefaultProxyConfig();
  pc.gdpr_mode = gdpr_mode;
  auto client = stack.MakeClient(pc, vault.user_id(), &auditor);
  client->AttachVault(&vault);

  personalization::PageTemplate page;
  page.url = "https://shop.example.com/pages/home";
  page.blocks = {
      {"hero-banner", personalization::BlockScope::kStatic, 4096},
      {"recommendations", personalization::BlockScope::kSegment, 2048},
      {"greeting", personalization::BlockScope::kUser, 512},
      {"cart-preview", personalization::BlockScope::kUser, 1024},
  };
  personalization::Segmenter segmenter(32);
  std::printf("segment for this user: %s (reveals %.0f identity bits)\n",
              segmenter.SegmentFor(vault.user_id()).c_str(),
              segmenter.IdentityBits());

  for (const auto& block : page.blocks) {
    proxy::BlockResult r = client->FetchBlock(page, block, segmenter);
    std::string preview = r.content.substr(0, 58);
    std::printf("  %-16s [%s] %-10s %6.1f ms | %s\n", block.id.c_str(),
                std::string(personalization::BlockScopeName(block.scope)).c_str(),
                r.rendered_on_device
                    ? "on-device"
                    : std::string(proxy::ServedFromName(r.source)).c_str(),
                r.latency.millis(), preview.c_str());
  }

  std::printf("boundary audit: %llu requests inspected, %llu PII "
              "violations\n",
              static_cast<unsigned long long>(auditor.inspected()),
              static_cast<unsigned long long>(auditor.violations()));
  for (const auto& v : auditor.samples()) {
    std::printf("  LEAK: token \"%s\" in %s of %s\n", v.leaked_token.c_str(),
                v.location.c_str(), v.url.c_str());
  }
}

}  // namespace

int main() {
  std::printf("GDPR-compliant caching of personalized content\n");
  std::printf("==============================================\n");
  core::StackConfig config;
  core::SpeedKitStack stack(config);
  RenderPage(stack, /*gdpr_mode=*/true);
  RenderPage(stack, /*gdpr_mode=*/false);
  std::printf(
      "\ntakeaway: the GDPR path renders the same personalized page with "
      "zero identity egress —\nthe CDN only ever sees anonymous templates "
      "and cohort ids, so no data-processing agreement is needed.\n");
  return 0;
}
