// Offline mode: the origin goes down mid-session; the Speed Kit service
// worker keeps previously-visited pages usable from the device while a
// vanilla browser hard-fails.
//
//   ./build/examples/offline_mode
#include <cstdio>

#include "core/stack.h"
#include "workload/catalog.h"

using namespace speedkit;

namespace {

void Try(const char* who, proxy::ClientProxy& client, const std::string& url) {
  proxy::FetchResult r = client.Fetch(url);
  if (r.response.ok()) {
    std::printf("  %-8s %-46s OK   (%s, %.1f ms)\n", who, url.c_str(),
                std::string(proxy::ServedFromName(r.source)).c_str(),
                r.latency.millis());
  } else {
    std::printf("  %-8s %-46s FAIL (HTTP %d)\n", who, url.c_str(),
                r.response.status_code);
  }
}

}  // namespace

int main() {
  std::printf("offline mode demo\n=================\n\n");
  core::StackConfig config;
  core::SpeedKitStack stack(config);
  workload::CatalogConfig catalog_config;
  catalog_config.num_products = 100;
  workload::Catalog catalog(catalog_config, Pcg32(1));
  catalog.Populate(&stack.store(), stack.clock().Now());
  stack.Advance(Duration::Seconds(5));

  auto speedkit_client = stack.MakeClient(1);
  proxy::ProxyConfig vanilla_config = stack.DefaultProxyConfig();
  vanilla_config.enabled = false;
  vanilla_config.use_cdn = false;
  vanilla_config.use_sketch = false;
  vanilla_config.offline_mode = false;
  auto vanilla_client = stack.MakeClient(vanilla_config, 2);

  std::printf("both browsers visit three products while everything is up:\n");
  for (size_t rank : {3u, 7u, 11u}) {
    Try("speedkit", *speedkit_client, catalog.ProductUrl(rank));
    Try("vanilla", *vanilla_client, catalog.ProductUrl(rank));
  }

  std::printf("\n...90 minutes pass (all TTLs expire), then the origin goes "
              "DOWN...\n\n");
  stack.Advance(Duration::Minutes(90));
  stack.origin().set_available(false);

  std::printf("revisiting the same products during the outage:\n");
  for (size_t rank : {3u, 7u, 11u}) {
    Try("speedkit", *speedkit_client, catalog.ProductUrl(rank));
    Try("vanilla", *vanilla_client, catalog.ProductUrl(rank));
  }
  std::printf("\nand a page neither browser has seen:\n");
  Try("speedkit", *speedkit_client, catalog.ProductUrl(55));

  std::printf("\norigin comes back; normal operation resumes:\n");
  stack.origin().set_available(true);
  stack.Advance(Duration::Seconds(31));
  Try("speedkit", *speedkit_client, catalog.ProductUrl(3));

  std::printf("\nspeedkit client: %llu offline serves, %llu errors | "
              "vanilla client: %llu errors\n",
              static_cast<unsigned long long>(
                  speedkit_client->stats().offline_serves),
              static_cast<unsigned long long>(speedkit_client->stats().errors),
              static_cast<unsigned long long>(vanilla_client->stats().errors));
  return 0;
}
