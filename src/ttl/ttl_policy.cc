#include "ttl/ttl_policy.h"

#include <algorithm>
#include <cmath>

namespace speedkit::ttl {

EstimatedTtlPolicy::EstimatedTtlPolicy(EstimatorConfig config)
    : config_(config),
      ttl_factor_(-std::log(1.0 - std::clamp(config.invalidation_budget,
                                             0.01, 0.99))) {}

Duration EstimatedTtlPolicy::TtlFor(std::string_view key, SimTime now) {
  (void)now;
  stats_.estimates++;
  auto it = keys_.find(std::string(key));
  if (it == keys_.end() || it->second.ewma_gap_us <= 0) {
    stats_.cold_starts++;
    return config_.cold_start_ttl;
  }
  double ttl_us = ttl_factor_ * it->second.ewma_gap_us;
  ttl_us = std::clamp(ttl_us, static_cast<double>(config_.min_ttl.micros()),
                      static_cast<double>(config_.max_ttl.micros()));
  return Duration::Micros(static_cast<int64_t>(ttl_us));
}

void EstimatedTtlPolicy::ObserveWrite(std::string_view key, SimTime now) {
  auto [it, inserted] = keys_.emplace(std::string(key), KeyState{});
  KeyState& state = it->second;
  if (!inserted && state.writes > 0) {
    double gap = static_cast<double>((now - state.last_write).micros());
    if (gap > 0) {
      if (state.ewma_gap_us <= 0) {
        state.ewma_gap_us = gap;
      } else {
        state.ewma_gap_us =
            config_.alpha * gap + (1.0 - config_.alpha) * state.ewma_gap_us;
      }
    }
  }
  state.last_write = now;
  state.writes++;
  stats_.tracked_keys = keys_.size();
}

Duration EstimatedTtlPolicy::EstimatedGap(std::string_view key) const {
  auto it = keys_.find(std::string(key));
  if (it == keys_.end() || it->second.ewma_gap_us <= 0) {
    return Duration::Zero();
  }
  return Duration::Micros(static_cast<int64_t>(it->second.ewma_gap_us));
}

}  // namespace speedkit::ttl
