// TTL policies: how long the origin tells caches to keep each resource.
//
// The tension the Cache Sketch protocol resolves: a long TTL maximizes hits
// but loads the sketch (every write during the TTL adds the key and forces
// client revalidations); a short TTL keeps the sketch empty but forfeits
// hits. The estimator aims TTLs at each object's write behaviour so that
// with probability `invalidation_budget` the object is NOT written before
// the TTL runs out.
//
// Model (companion-paper style): per-key writes are treated as Poisson with
// rate λ estimated from an EWMA of inter-write gaps. P(write within t) =
// 1 - e^{-λt}, so the largest TTL whose invalidation probability stays
// within budget p is  t* = -ln(1 - p) / λ.
#ifndef SPEEDKIT_TTL_TTL_POLICY_H_
#define SPEEDKIT_TTL_TTL_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/sim_time.h"

namespace speedkit::ttl {

class TtlPolicy {
 public:
  virtual ~TtlPolicy() = default;

  // TTL to stamp on a response for `key` served at `now`.
  virtual Duration TtlFor(std::string_view key, SimTime now) = 0;

  // Feed of write observations (the estimator learns from these; fixed
  // policies ignore them).
  virtual void ObserveWrite(std::string_view key, SimTime now) = 0;
};

// Always the same TTL; the traditional-CDN baseline.
class FixedTtlPolicy : public TtlPolicy {
 public:
  explicit FixedTtlPolicy(Duration ttl) : ttl_(ttl) {}
  Duration TtlFor(std::string_view, SimTime) override { return ttl_; }
  void ObserveWrite(std::string_view, SimTime) override {}

 private:
  Duration ttl_;
};

// TTL zero: nothing is cacheable; the no-caching baseline.
class NoCachePolicy : public TtlPolicy {
 public:
  Duration TtlFor(std::string_view, SimTime) override {
    return Duration::Zero();
  }
  void ObserveWrite(std::string_view, SimTime) override {}
};

struct EstimatorConfig {
  // Target probability that the object is written before its TTL expires.
  // The default is deliberately optimistic: under sketch coherence a
  // too-long TTL costs a sketch entry and a revalidation, never a stale
  // read — so TTLs should err long (the paper's architectural argument).
  double invalidation_budget = 0.5;
  // EWMA smoothing for inter-write gaps (weight of the newest gap).
  double alpha = 0.2;
  // TTL bounds and the cold-start default used before 2 writes are seen.
  Duration min_ttl = Duration::Seconds(5);
  Duration max_ttl = Duration::Seconds(86400);
  Duration cold_start_ttl = Duration::Seconds(600);
};

struct EstimatorStats {
  uint64_t estimates = 0;
  uint64_t cold_starts = 0;
  size_t tracked_keys = 0;
};

class EstimatedTtlPolicy : public TtlPolicy {
 public:
  explicit EstimatedTtlPolicy(EstimatorConfig config = {});

  Duration TtlFor(std::string_view key, SimTime now) override;
  void ObserveWrite(std::string_view key, SimTime now) override;

  const EstimatorStats& stats() const { return stats_; }

  // Current mean inter-write estimate for a key; 0 when unknown.
  Duration EstimatedGap(std::string_view key) const;

 private:
  struct KeyState {
    SimTime last_write;
    double ewma_gap_us = 0;  // 0 until two writes seen
    uint32_t writes = 0;
  };

  EstimatorConfig config_;
  double ttl_factor_;  // -ln(1 - budget)
  std::unordered_map<std::string, KeyState> keys_;
  EstimatorStats stats_;
};

}  // namespace speedkit::ttl

#endif  // SPEEDKIT_TTL_TTL_POLICY_H_
