// Segmentation: mapping users to cacheable cohorts.
//
// Segment ids must be non-identifying — with S segments and U >> S users,
// a segment id narrows identity by log2(S) bits only; the policy exposes
// that anonymity measure so deployments can pick S against their k-anonymity
// target. The default policy hashes the user id into S buckets; custom
// attribute-based policies plug in via the functional constructor.
#ifndef SPEEDKIT_PERSONALIZATION_SEGMENTATION_H_
#define SPEEDKIT_PERSONALIZATION_SEGMENTATION_H_

#include <cstdint>
#include <functional>
#include <string>

namespace speedkit::personalization {

class Segmenter {
 public:
  // Hash-based assignment into `num_segments` cohorts.
  explicit Segmenter(int num_segments);

  // Custom assignment (e.g. by country or loyalty tier).
  Segmenter(int num_segments, std::function<std::string(uint64_t)> assign);

  std::string SegmentFor(uint64_t user_id) const { return assign_(user_id); }
  int num_segments() const { return num_segments_; }

  // Bits of identity a segment id reveals: log2(num_segments).
  double IdentityBits() const;

 private:
  int num_segments_;
  std::function<std::string(uint64_t)> assign_;
};

}  // namespace speedkit::personalization

#endif  // SPEEDKIT_PERSONALIZATION_SEGMENTATION_H_
