#include "personalization/dynamic_block.h"

#include <cassert>

namespace speedkit::personalization {

std::string_view BlockScopeName(BlockScope scope) {
  switch (scope) {
    case BlockScope::kStatic:
      return "static";
    case BlockScope::kSegment:
      return "segment";
    case BlockScope::kUser:
      return "user";
  }
  return "static";
}

size_t PageTemplate::CacheableBytes() const {
  size_t bytes = shell_bytes;
  for (const DynamicBlock& b : blocks) {
    if (b.scope != BlockScope::kUser) bytes += b.approx_bytes;
  }
  return bytes;
}

size_t PageTemplate::UserScopedBytes() const {
  size_t bytes = 0;
  for (const DynamicBlock& b : blocks) {
    if (b.scope == BlockScope::kUser) bytes += b.approx_bytes;
  }
  return bytes;
}

size_t PageTemplate::TotalBytes() const {
  return CacheableBytes() + UserScopedBytes();
}

std::string FragmentCacheKey(std::string_view page_url,
                             std::string_view block_id, BlockScope scope,
                             std::string_view segment_id) {
  assert(scope != BlockScope::kUser &&
         "user-scoped blocks must never get a shared cache key");
  std::string key(page_url);
  key += "#block=";
  key += block_id;
  if (scope == BlockScope::kSegment) {
    key += "&seg=";
    key += segment_id;
  }
  return key;
}

}  // namespace speedkit::personalization
