// GDPR machinery: the on-device PII vault and the network-boundary auditor.
//
// The paper's compliance claim is architectural: all personal data is
// handled *inside* the client proxy, so no processing agreement with the
// CDN is ever needed. We make that claim checkable. Every sensitive value
// lives in a per-user `PiiVault`; the `BoundaryAuditor` registers those
// values and inspects every request that leaves the device — URL, headers
// and body. A violation (a sensitive token crossing the boundary) is
// counted and sampled. The GDPR-mode proxy must produce zero violations on
// any workload; the legacy baseline demonstrably does not.
#ifndef SPEEDKIT_PERSONALIZATION_PII_H_
#define SPEEDKIT_PERSONALIZATION_PII_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/message.h"

namespace speedkit::personalization {

// Field names conventionally treated as personal data.
bool IsPiiFieldName(std::string_view field);

class PiiVault {
 public:
  explicit PiiVault(uint64_t user_id) : user_id_(user_id) {}

  uint64_t user_id() const { return user_id_; }

  void Put(std::string_view field, std::string_view value);
  std::optional<std::string_view> Get(std::string_view field) const;
  const std::map<std::string, std::string>& fields() const { return fields_; }

  // Renders a user-scoped block on-device by substituting {{field}}
  // placeholders in `fragment_template` from the vault. Unknown fields
  // render as empty — data never leaves; missing data never blocks.
  std::string RenderLocally(std::string_view fragment_template) const;

 private:
  uint64_t user_id_;
  std::map<std::string, std::string> fields_;
};

struct AuditViolation {
  std::string url;
  std::string leaked_token;
  std::string location;  // "url" | "header" | "body"
};

class BoundaryAuditor {
 public:
  // Registers a sensitive value to watch for. Values shorter than 3 chars
  // are ignored (they'd match everywhere and mean nothing).
  void RegisterSensitive(std::string_view value);

  // Registers everything in a vault, including the user id itself: a
  // stable user identifier crossing the boundary is what GDPR-mode
  // caching must avoid.
  void RegisterVault(const PiiVault& vault);

  // Inspects an outgoing request; returns true when clean. Violations are
  // recorded (first `kMaxSamples` kept verbatim).
  bool Inspect(const http::HttpRequest& request);

  uint64_t inspected() const { return inspected_; }
  uint64_t violations() const { return violations_; }
  const std::vector<AuditViolation>& samples() const { return samples_; }

 private:
  static constexpr size_t kMaxSamples = 16;

  void Record(const http::HttpRequest& request, std::string_view token,
              std::string_view location);

  std::vector<std::string> sensitive_;
  uint64_t inspected_ = 0;
  uint64_t violations_ = 0;
  std::vector<AuditViolation> samples_;
};

}  // namespace speedkit::personalization

#endif  // SPEEDKIT_PERSONALIZATION_PII_H_
