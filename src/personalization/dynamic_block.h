// Dynamic blocks: Speed Kit's decomposition of a personalized page.
//
// A page is a cacheable static shell plus blocks with one of three scopes:
//   kStatic   shared by everyone            -> cached like any asset
//   kSegment  shared by a user cohort       -> cached under a segment key
//             (cohorts, not identities: the segment id carries no PII)
//   kUser     specific to one person        -> never cached outside the
//             device; in GDPR mode rendered on-device from the PII vault
//
// This split is what lets Speed Kit cache "personalized" pages at all: the
// cacheable share of the page's bytes is the shell plus the static and
// segment blocks, and E7 measures exactly that as the user-scope share and
// segment count vary.
#ifndef SPEEDKIT_PERSONALIZATION_DYNAMIC_BLOCK_H_
#define SPEEDKIT_PERSONALIZATION_DYNAMIC_BLOCK_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace speedkit::personalization {

enum class BlockScope { kStatic, kSegment, kUser };

std::string_view BlockScopeName(BlockScope scope);

struct DynamicBlock {
  std::string id;
  BlockScope scope = BlockScope::kStatic;
  size_t approx_bytes = 2048;  // rendered size, drives transfer time
};

struct PageTemplate {
  std::string url;  // absolute URL of the page shell
  size_t shell_bytes = 30 * 1024;
  std::vector<DynamicBlock> blocks;

  size_t CacheableBytes() const;  // shell + static + segment blocks
  size_t UserScopedBytes() const;
  size_t TotalBytes() const;
};

// Cache key for a block fetch. Static blocks key on (page, block); segment
// blocks additionally on the segment id. User-scoped blocks have no shared
// cache key by construction — callers must not ask for one.
std::string FragmentCacheKey(std::string_view page_url,
                             std::string_view block_id, BlockScope scope,
                             std::string_view segment_id = {});

}  // namespace speedkit::personalization

#endif  // SPEEDKIT_PERSONALIZATION_DYNAMIC_BLOCK_H_
