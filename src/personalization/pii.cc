#include "personalization/pii.h"

#include <algorithm>

#include "common/strings.h"

namespace speedkit::personalization {

bool IsPiiFieldName(std::string_view field) {
  static constexpr std::string_view kPiiFields[] = {
      "name",    "first_name", "last_name", "email",   "phone",
      "address", "user_id",    "session",   "cart",    "order_history",
      "payment", "birthday",   "ip",        "location"};
  for (std::string_view f : kPiiFields) {
    if (EqualsIgnoreCase(field, f)) return true;
  }
  return false;
}

void PiiVault::Put(std::string_view field, std::string_view value) {
  fields_[std::string(field)] = std::string(value);
}

std::optional<std::string_view> PiiVault::Get(std::string_view field) const {
  auto it = fields_.find(std::string(field));
  if (it == fields_.end()) return std::nullopt;
  return std::string_view(it->second);
}

std::string PiiVault::RenderLocally(std::string_view fragment_template) const {
  std::string out;
  out.reserve(fragment_template.size());
  size_t pos = 0;
  while (pos < fragment_template.size()) {
    size_t open = fragment_template.find("{{", pos);
    if (open == std::string_view::npos) {
      out += fragment_template.substr(pos);
      break;
    }
    size_t close = fragment_template.find("}}", open + 2);
    if (close == std::string_view::npos) {
      out += fragment_template.substr(pos);
      break;
    }
    out += fragment_template.substr(pos, open - pos);
    std::string_view field =
        TrimWhitespace(fragment_template.substr(open + 2, close - open - 2));
    if (auto value = Get(field); value.has_value()) {
      out += *value;
    }
    pos = close + 2;
  }
  return out;
}

void BoundaryAuditor::RegisterSensitive(std::string_view value) {
  if (value.size() < 3) return;
  std::string v(value);
  if (std::find(sensitive_.begin(), sensitive_.end(), v) == sensitive_.end()) {
    sensitive_.push_back(std::move(v));
  }
}

void BoundaryAuditor::RegisterVault(const PiiVault& vault) {
  RegisterSensitive(std::to_string(vault.user_id()));
  for (const auto& [field, value] : vault.fields()) {
    RegisterSensitive(value);
  }
}

bool BoundaryAuditor::Inspect(const http::HttpRequest& request) {
  inspected_++;
  bool clean = true;
  std::string url = request.url.ToString();
  for (const std::string& token : sensitive_) {
    if (url.find(token) != std::string::npos) {
      Record(request, token, "url");
      clean = false;
    }
    for (const auto& [name, value] : request.headers) {
      if (value.find(token) != std::string::npos) {
        Record(request, token, "header");
        clean = false;
      }
    }
    if (request.body.find(token) != std::string::npos) {
      Record(request, token, "body");
      clean = false;
    }
  }
  return clean;
}

void BoundaryAuditor::Record(const http::HttpRequest& request,
                             std::string_view token,
                             std::string_view location) {
  violations_++;
  if (samples_.size() < kMaxSamples) {
    samples_.push_back(AuditViolation{request.url.ToString(),
                                      std::string(token),
                                      std::string(location)});
  }
}

}  // namespace speedkit::personalization
