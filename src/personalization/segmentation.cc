#include "personalization/segmentation.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace speedkit::personalization {

Segmenter::Segmenter(int num_segments)
    : num_segments_(std::max(1, num_segments)) {
  int n = num_segments_;
  assign_ = [n](uint64_t user_id) {
    return "seg-" + std::to_string(Mix64(user_id) % static_cast<uint64_t>(n));
  };
}

Segmenter::Segmenter(int num_segments,
                     std::function<std::string(uint64_t)> assign)
    : num_segments_(std::max(1, num_segments)), assign_(std::move(assign)) {}

double Segmenter::IdentityBits() const {
  return std::log2(static_cast<double>(num_segments_));
}

}  // namespace speedkit::personalization
