// MetricsRegistry — a flat, insertion-ordered collection of named counters,
// gauges and latency histograms.
//
// One registry describes one run of one stack. Components do not talk to it
// directly while the simulation runs (their existing stats structs stay the
// source of truth, so behavior cannot depend on whether metrics are on);
// instead SpeedKitStack::CollectMetrics() snapshots every component into the
// registry under the canonical names from metric_names.h. The exception is
// live histograms (e.g. network RTTs) which components feed through a plain
// `Histogram*` handed to them by the stack — recording into a histogram
// draws no randomness and takes no branch the simulation can observe.
//
// Labels: a metric family ("proxy.serves") fans out into one Metric per
// label string ("tier=edge"). Labels are a single pre-rendered
// `key=value[,key=value]` string — deterministic, allocation-cheap, and
// trivially diffable in exported files. The empty label string is the
// family total (or the only series, for unlabeled metrics).
#ifndef SPEEDKIT_OBS_METRICS_H_
#define SPEEDKIT_OBS_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"

namespace speedkit::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

std::string_view MetricKindName(MetricKind kind);

struct Metric {
  std::string name;    // from metric_names.h
  std::string labels;  // "key=value[,key=value]", "" = family total
  MetricKind kind = MetricKind::kCounter;

  uint64_t counter = 0;  // kCounter: monotone event count
  int64_t gauge = 0;     // kGauge: last observed level
  Histogram histogram;   // kHistogram: fixed log-bucketed distribution
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create accessors. Pointers are stable for the registry's
  // lifetime (metrics are heap-allocated behind the index), so live
  // instruments can hold them across the whole run. Asking for an existing
  // name with a different kind is a programming error and dies loudly.
  uint64_t* Counter(std::string_view name, std::string_view labels = "");
  int64_t* Gauge(std::string_view name, std::string_view labels = "");
  Histogram* Histo(std::string_view name, std::string_view labels = "");

  // Lookup without creation; nullptr when absent.
  const Metric* Find(std::string_view name, std::string_view labels = "") const;

  // All metrics in first-registration order (deterministic export order).
  const std::vector<std::unique_ptr<Metric>>& metrics() const {
    return metrics_;
  }

  // Cross-run accumulation for the multi-seed harness: counters sum,
  // gauges take the max (they are high-water levels here), histograms
  // merge. Metrics absent on one side are adopted as-is.
  void MergeFrom(const MetricsRegistry& other);

 private:
  Metric* FindOrCreate(std::string_view name, std::string_view labels,
                       MetricKind kind);

  std::vector<std::unique_ptr<Metric>> metrics_;
  std::unordered_map<std::string, size_t> index_;  // "name{labels}" -> slot
};

}  // namespace speedkit::obs

#endif  // SPEEDKIT_OBS_METRICS_H_
