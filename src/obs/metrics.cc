#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>

namespace speedkit::obs {

namespace {

std::string SlotKey(std::string_view name, std::string_view labels) {
  std::string key;
  key.reserve(name.size() + labels.size() + 2);
  key.append(name);
  key.push_back('{');
  key.append(labels);
  key.push_back('}');
  return key;
}

}  // namespace

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

Metric* MetricsRegistry::FindOrCreate(std::string_view name,
                                      std::string_view labels,
                                      MetricKind kind) {
  const std::string key = SlotKey(name, labels);
  if (auto it = index_.find(key); it != index_.end()) {
    Metric* m = metrics_[it->second].get();
    if (m->kind != kind) {
      std::fprintf(stderr,
                   "MetricsRegistry: %s registered as %s, requested as %s\n",
                   key.c_str(), std::string(MetricKindName(m->kind)).c_str(),
                   std::string(MetricKindName(kind)).c_str());
      std::abort();
    }
    return m;
  }
  auto metric = std::make_unique<Metric>();
  metric->name = std::string(name);
  metric->labels = std::string(labels);
  metric->kind = kind;
  Metric* raw = metric.get();
  index_.emplace(key, metrics_.size());
  metrics_.push_back(std::move(metric));
  return raw;
}

uint64_t* MetricsRegistry::Counter(std::string_view name,
                                   std::string_view labels) {
  return &FindOrCreate(name, labels, MetricKind::kCounter)->counter;
}

int64_t* MetricsRegistry::Gauge(std::string_view name,
                                std::string_view labels) {
  return &FindOrCreate(name, labels, MetricKind::kGauge)->gauge;
}

Histogram* MetricsRegistry::Histo(std::string_view name,
                                  std::string_view labels) {
  return &FindOrCreate(name, labels, MetricKind::kHistogram)->histogram;
}

const Metric* MetricsRegistry::Find(std::string_view name,
                                    std::string_view labels) const {
  auto it = index_.find(SlotKey(name, labels));
  return it == index_.end() ? nullptr : metrics_[it->second].get();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& theirs : other.metrics_) {
    Metric* mine = FindOrCreate(theirs->name, theirs->labels, theirs->kind);
    switch (theirs->kind) {
      case MetricKind::kCounter:
        mine->counter += theirs->counter;
        break;
      case MetricKind::kGauge:
        if (theirs->gauge > mine->gauge) mine->gauge = theirs->gauge;
        break;
      case MetricKind::kHistogram:
        mine->histogram.Merge(theirs->histogram);
        break;
    }
  }
}

}  // namespace speedkit::obs
