// Canonical metric names — the single source of truth for everything the
// observability layer emits.
//
// Every name registered into a MetricsRegistry MUST come from this file,
// and every name in this file MUST be documented in docs/METRICS.md
// (name, kind, unit, labels, owning component, when it moves). CI enforces
// both directions with tools/check_metrics_docs.py, which parses the quoted
// string literals below — so keep one constant per line and nothing else
// quoted in this header.
//
// Naming convention: `<component>.<what>[_<unit>]`, lowercase, dots between
// component and measure, underscores inside a measure. Breakdown dimensions
// (cache tier, fault state, link, route, ...) are labels on the same name,
// never name suffixes, so a reader can aggregate across a family by name.
#ifndef SPEEDKIT_OBS_METRIC_NAMES_H_
#define SPEEDKIT_OBS_METRIC_NAMES_H_

#include <string_view>

namespace speedkit::obs {

// -- proxy (ClientProxy request path; snapshot of ProxyStats) --------------
inline constexpr std::string_view kProxyRequests = "proxy.requests";
inline constexpr std::string_view kProxyServes = "proxy.serves";
inline constexpr std::string_view kProxyRevalidations = "proxy.revalidations";
inline constexpr std::string_view kProxySketchBypasses = "proxy.sketch_bypasses";
inline constexpr std::string_view kProxySketchRefreshes = "proxy.sketch_refreshes";
inline constexpr std::string_view kProxySketchBytes = "proxy.sketch_bytes";
inline constexpr std::string_view kProxyBytes = "proxy.bytes";
inline constexpr std::string_view kProxyTimeouts = "proxy.timeouts";
inline constexpr std::string_view kProxyRetries = "proxy.retries";
inline constexpr std::string_view kProxyFallbackServes = "proxy.fallback_serves";
inline constexpr std::string_view kProxyBackgroundRevalidations =
    "proxy.background_revalidations";
inline constexpr std::string_view kProxyBackgroundResponses =
    "proxy.background_responses";
inline constexpr std::string_view kProxyBackgroundBytes = "proxy.background_bytes";
inline constexpr std::string_view kRequestLatencyUs = "request.latency_us";

// -- HTTP caches (browser cache + CDN edges; snapshot of HttpCacheStats) ---
inline constexpr std::string_view kCacheLookups = "cache.lookups";
inline constexpr std::string_view kCacheStores = "cache.stores";
inline constexpr std::string_view kCacheStoreRejects = "cache.store_rejects";
inline constexpr std::string_view kCacheRefreshes = "cache.refreshes";
inline constexpr std::string_view kCachePurges = "cache.purges";

// -- CDN edge fault handling (snapshot of EdgeFaultStats) ------------------
inline constexpr std::string_view kEdgeDownRejects = "edge.down_rejects";
inline constexpr std::string_view kEdgePurgesDropped = "edge.purges_dropped";
inline constexpr std::string_view kEdgePurgesDelayed = "edge.purges_delayed";
inline constexpr std::string_view kEdgePurgeDelayUs = "edge.purge_delay_us";

// -- invalidation pipeline (snapshot of PipelineStats) ---------------------
inline constexpr std::string_view kPipelineWritesSeen = "pipeline.writes_seen";
inline constexpr std::string_view kPipelineKeysInvalidated =
    "pipeline.keys_invalidated";
inline constexpr std::string_view kPipelinePurges = "pipeline.purges";
inline constexpr std::string_view kPipelinePropagationLatencyUs =
    "pipeline.propagation_latency_us";

// -- origin server (snapshot of OriginStats) -------------------------------
inline constexpr std::string_view kOriginRequests = "origin.requests";
inline constexpr std::string_view kOriginNotModified = "origin.not_modified";
inline constexpr std::string_view kOriginRejectedUnavailable =
    "origin.rejected_unavailable";
inline constexpr std::string_view kOriginRenderCache = "origin.render_cache";
inline constexpr std::string_view kOriginRenderTimeUs = "origin.render_time_us";
inline constexpr std::string_view kOriginRenderTimeSavedUs =
    "origin.render_time_saved_us";

// -- staleness tracker (snapshot of StalenessReport) -----------------------
inline constexpr std::string_view kStalenessReads = "staleness.reads";
inline constexpr std::string_view kStalenessStaleReads = "staleness.stale_reads";
inline constexpr std::string_view kStalenessClamped = "staleness.clamped";
inline constexpr std::string_view kStalenessDeltaViolations =
    "staleness.delta_violations";
inline constexpr std::string_view kStalenessExcusedStaleReads =
    "staleness.excused_stale_reads";
inline constexpr std::string_view kStalenessMaxUs = "staleness.max_us";
inline constexpr std::string_view kStalenessUs = "staleness.staleness_us";

// -- server cache sketch ---------------------------------------------------
inline constexpr std::string_view kSketchEntries = "sketch.entries";
inline constexpr std::string_view kSketchSnapshotBytes = "sketch.snapshot_bytes";

// -- WAN model (recorded live while the simulation runs) -------------------
inline constexpr std::string_view kNetworkRttUs = "network.rtt_us";

// -- the tracing layer itself ----------------------------------------------
inline constexpr std::string_view kTraceEmitted = "trace.emitted";
inline constexpr std::string_view kTraceDropped = "trace.dropped";

}  // namespace speedkit::obs

#endif  // SPEEDKIT_OBS_METRIC_NAMES_H_
