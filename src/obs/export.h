// Exporters: MetricsRegistry and trace collections -> the same ordered
// JSON used by every bench binary (bench/json_writer.h), plus a flat CSV
// trace format that tools/trace_report consumes.
//
// Trace CSV layout (one file per run):
//   - `# key=value` metadata header lines (run name, seed, served_total —
//     whatever the producer wants downstream checks to see);
//   - one `kind` row per trace carrying url/tier/status/degraded and the
//     end-to-end latency, followed by one `span` row per span with offsets
//     relative to the trace start. Fields with commas/quotes/newlines are
//     RFC-4180 quoted.
#ifndef SPEEDKIT_OBS_EXPORT_H_
#define SPEEDKIT_OBS_EXPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "bench/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace speedkit::obs {

using MetaList = std::vector<std::pair<std::string, std::string>>;

// One JSON object per metric, in registration order. Counters/gauges carry
// `value`; histograms carry {count, min, max, mean, p50, p95, p99}.
bench::JsonValue MetricsToJson(const MetricsRegistry& registry);

// Full trace tree as JSON (id/kind/url/tier/status/degraded/latency/spans).
bench::JsonValue TracesToJson(const std::vector<RequestTrace>& traces);

// Writes `{meta..., metrics: [...]}` to `path`. Returns false on IO error.
bool WriteMetricsJson(const std::string& path, const MetricsRegistry& registry,
                      const MetaList& meta = {});

// name,labels,kind,count,value,mean,p50,p95,p99,max — one row per metric.
bool WriteMetricsCsv(const std::string& path, const MetricsRegistry& registry);

// The trace CSV described above.
bool WriteTraceCsv(const std::string& path,
                   const std::vector<RequestTrace>& traces,
                   const MetaList& meta = {});

}  // namespace speedkit::obs

#endif  // SPEEDKIT_OBS_EXPORT_H_
