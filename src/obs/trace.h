// Request tracing — one RequestTrace per page request (and per purge
// fan-out), made of Spans that attribute the request's latency to the
// layers it crossed: proxy overhead, browser cache, CDN edge, WAN links,
// origin render, retry backoff.
//
// The simulator computes latencies arithmetically (time only advances
// between events), so spans carry explicit offsets and durations relative
// to the trace start rather than wall-clock timestamps: the proxy already
// knows exactly how long each leg took, and the trace just writes those
// numbers down. Tracing therefore NEVER samples the clock, draws
// randomness, or branches on simulation state — a traced run is
// bit-for-bit identical to an untraced one (tests/obs/trace_test.cc and
// the CI gate both enforce this).
//
// Cost when disabled: a default-constructed Tracer has a null sink, and
// every TraceBuilder call starts with a single `active()` branch — no
// allocation, no string copies. NoopTraceSink exists for callers that want
// a non-null sink that still discards everything; compile-time checks
// below pin down that it carries no state beyond the vtable.
#ifndef SPEEDKIT_OBS_TRACE_H_
#define SPEEDKIT_OBS_TRACE_H_

#include <concepts>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sim_time.h"

namespace speedkit::obs {

// Trace kinds.
inline constexpr std::string_view kTraceKindRequest = "request";
inline constexpr std::string_view kTraceKindPurge = "purge";

// Span/serve tier names shared by traces, per-tier histograms and docs.
inline constexpr std::string_view kTierProxy = "proxy";
inline constexpr std::string_view kTierBrowser = "browser";
inline constexpr std::string_view kTierEdge = "edge";
inline constexpr std::string_view kTierNetwork = "network";
inline constexpr std::string_view kTierOrigin = "origin";
inline constexpr std::string_view kTierOffline = "offline";
inline constexpr std::string_view kTierError = "error";
inline constexpr std::string_view kTierPurge = "purge";

struct Span {
  int parent = -1;     // index of the parent span in the trace, -1 = root
  std::string name;    // what happened: "net.client_edge", "origin.render"
  std::string tier;    // which layer paid for it: proxy|browser|edge|network|origin|purge
  int64_t start_us = 0;     // offset from the trace start
  int64_t duration_us = 0;

  friend bool operator==(const Span&, const Span&) = default;
};

struct RequestTrace {
  uint64_t id = 0;
  std::string kind;        // kTraceKindRequest | kTraceKindPurge
  std::string url;         // request URL, or the purged cache key
  std::string tier;        // final serve tier (requests) / kTierPurge
  int status = 0;          // HTTP status of the delivered response
  bool degraded = false;   // a fault-handling path fired on the way
  int64_t start_us = 0;    // simulated time the request began
  int64_t latency_us = 0;  // end-to-end latency (= sum of the critical path)
  std::vector<Span> spans;

  friend bool operator==(const RequestTrace&, const RequestTrace&) = default;
};

// Where finished traces go.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(RequestTrace&& trace) = 0;
  virtual uint64_t emitted() const = 0;
  virtual uint64_t dropped() const = 0;
};

// Keeps up to `max_traces` traces in memory (0 = unbounded); overflow is
// counted, never silently lost.
class InMemoryTraceSink final : public TraceSink {
 public:
  explicit InMemoryTraceSink(size_t max_traces = 0)
      : max_traces_(max_traces) {}

  void Emit(RequestTrace&& trace) override {
    ++emitted_;
    if (max_traces_ != 0 && traces_.size() >= max_traces_) {
      ++dropped_;
      return;
    }
    traces_.push_back(std::move(trace));
  }

  uint64_t emitted() const override { return emitted_; }
  uint64_t dropped() const override { return dropped_; }
  const std::vector<RequestTrace>& traces() const { return traces_; }

 private:
  size_t max_traces_;
  std::vector<RequestTrace> traces_;
  uint64_t emitted_ = 0;
  uint64_t dropped_ = 0;
};

// Discards everything. For callers that need a non-null sink on a path
// where tracing is off; the preferred "off" is a null sink in Tracer.
class NoopTraceSink final : public TraceSink {
 public:
  void Emit(RequestTrace&&) override {}
  uint64_t emitted() const override { return 0; }
  uint64_t dropped() const override { return 0; }
};

// Compile-time checks on the disabled path: the sink interface is what the
// recorder expects, and the no-op sink carries no state beyond the vtable
// pointer — it cannot buffer, count, or leak anything.
template <typename S>
concept TraceSinkLike = std::derived_from<S, TraceSink> &&
    requires(S s, RequestTrace t) {
      { s.Emit(std::move(t)) } -> std::same_as<void>;
      { std::as_const(s).emitted() } -> std::convertible_to<uint64_t>;
      { std::as_const(s).dropped() } -> std::convertible_to<uint64_t>;
    };
static_assert(TraceSinkLike<InMemoryTraceSink>);
static_assert(TraceSinkLike<NoopTraceSink>);
static_assert(sizeof(NoopTraceSink) == sizeof(TraceSink),
              "NoopTraceSink must be stateless: disabled tracing may not "
              "accumulate anything");

// Hands out trace ids and forwards finished traces. Default-constructed =
// disabled; components keep a Tracer by value and never null-check a sink
// themselves.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TraceSink* sink) : sink_(sink) {}

  bool enabled() const { return sink_ != nullptr; }
  uint64_t NextId() { return next_id_++; }
  void Emit(RequestTrace&& trace) {
    if (sink_ != nullptr) sink_->Emit(std::move(trace));
  }

 private:
  TraceSink* sink_ = nullptr;
  uint64_t next_id_ = 0;
};

// Per-request scratch: the proxy (or pipeline) Begin()s it when a request
// enters, adds spans as legs complete, and Finish()es it with the final
// tier/status. Inactive (tracing off) every method is one branch deep.
class TraceBuilder {
 public:
  TraceBuilder() = default;

  void Begin(Tracer* tracer, std::string_view kind, std::string_view url,
             SimTime start) {
    if (tracer == nullptr || !tracer->enabled()) {
      tracer_ = nullptr;
      return;
    }
    tracer_ = tracer;
    trace_ = RequestTrace{};
    trace_.id = tracer->NextId();
    trace_.kind = std::string(kind);
    trace_.url = std::string(url);
    trace_.start_us = start.micros();
    cursor_us_ = 0;
  }

  bool active() const { return tracer_ != nullptr; }

  // Appends a span covering [cursor, cursor + duration) and advances the
  // cursor — legs on the critical path are laid end to end. Returns the
  // span's index (-1 when inactive) for use as a later span's parent.
  int AddSpan(std::string_view name, std::string_view tier,
              Duration duration, int parent = -1) {
    if (!active()) return -1;
    const int index = AddSpanAt(name, tier, Duration::Micros(cursor_us_),
                                duration, parent);
    cursor_us_ += duration.micros();
    return index;
  }

  // Appends a span at an explicit offset without moving the cursor (for
  // overlapping work, e.g. purge deliveries fanning out in parallel).
  int AddSpanAt(std::string_view name, std::string_view tier,
                Duration start_offset, Duration duration, int parent = -1) {
    if (!active()) return -1;
    Span span;
    span.parent = parent;
    span.name = std::string(name);
    span.tier = std::string(tier);
    span.start_us = start_offset.micros();
    span.duration_us = duration.micros();
    trace_.spans.push_back(std::move(span));
    return static_cast<int>(trace_.spans.size()) - 1;
  }

  void Finish(std::string_view tier, int status, bool degraded,
              Duration latency) {
    if (!active()) return;
    trace_.tier = std::string(tier);
    trace_.status = status;
    trace_.degraded = degraded;
    trace_.latency_us = latency.micros();
    tracer_->Emit(std::move(trace_));
    tracer_ = nullptr;
  }

  // Drops the trace without emitting (e.g. a nested call took over).
  void Abandon() { tracer_ = nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  RequestTrace trace_;
  int64_t cursor_us_ = 0;
};

}  // namespace speedkit::obs

#endif  // SPEEDKIT_OBS_TRACE_H_
