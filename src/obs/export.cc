#include "obs/export.h"

#include <cstdio>
#include <fstream>

namespace speedkit::obs {

namespace {

bench::JsonValue HistogramToJson(const Histogram& h) {
  return bench::JsonRow({
      {"count", h.count()},
      {"min", h.min()},
      {"max", h.max()},
      {"mean", h.Mean()},
      {"p50", h.P50()},
      {"p95", h.P95()},
      {"p99", h.P99()},
  });
}

// RFC-4180 quoting, applied only when needed so the common case stays
// grep-able.
std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

bench::JsonValue MetricsToJson(const MetricsRegistry& registry) {
  bench::JsonValue out = bench::JsonValue::Array();
  for (const auto& m : registry.metrics()) {
    bench::JsonValue row = bench::JsonRow({
        {"name", m->name},
        {"labels", m->labels},
        {"kind", std::string(MetricKindName(m->kind))},
    });
    switch (m->kind) {
      case MetricKind::kCounter:
        row.Set("value", m->counter);
        break;
      case MetricKind::kGauge:
        row.Set("value", m->gauge);
        break;
      case MetricKind::kHistogram:
        row.Set("histogram", HistogramToJson(m->histogram));
        break;
    }
    out.Push(std::move(row));
  }
  return out;
}

bench::JsonValue TracesToJson(const std::vector<RequestTrace>& traces) {
  bench::JsonValue out = bench::JsonValue::Array();
  for (const RequestTrace& t : traces) {
    bench::JsonValue spans = bench::JsonValue::Array();
    for (const Span& s : t.spans) {
      spans.Push(bench::JsonRow({
          {"parent", s.parent},
          {"name", s.name},
          {"tier", s.tier},
          {"start_us", s.start_us},
          {"duration_us", s.duration_us},
      }));
    }
    bench::JsonValue row = bench::JsonRow({
        {"id", t.id},
        {"kind", t.kind},
        {"url", t.url},
        {"tier", t.tier},
        {"status", t.status},
        {"degraded", t.degraded},
        {"start_us", t.start_us},
        {"latency_us", t.latency_us},
    });
    row.Set("spans", std::move(spans));
    out.Push(std::move(row));
  }
  return out;
}

bool WriteMetricsJson(const std::string& path, const MetricsRegistry& registry,
                      const MetaList& meta) {
  bench::JsonValue root = bench::JsonValue::Object();
  for (const auto& [key, value] : meta) root.Set(key, value);
  root.Set("metrics", MetricsToJson(registry));
  return bench::WriteJsonFile(path, root);
}

bool WriteMetricsCsv(const std::string& path,
                     const MetricsRegistry& registry) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << "name,labels,kind,count,value,mean,p50,p95,p99,max\n";
  for (const auto& m : registry.metrics()) {
    out << CsvField(m->name) << ',' << CsvField(m->labels) << ','
        << MetricKindName(m->kind) << ',';
    switch (m->kind) {
      case MetricKind::kCounter:
        out << m->counter << ',' << m->counter << ",,,,,\n";
        break;
      case MetricKind::kGauge:
        out << 1 << ',' << m->gauge << ",,,,,\n";
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = m->histogram;
        out << h.count() << ',' << h.Sum() << ',' << h.Mean() << ','
            << h.P50() << ',' << h.P95() << ',' << h.P99() << ',' << h.max()
            << "\n";
        break;
      }
    }
  }
  return out.good();
}

bool WriteTraceCsv(const std::string& path,
                   const std::vector<RequestTrace>& traces,
                   const MetaList& meta) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  for (const auto& [key, value] : meta) {
    out << "# " << key << "=" << value << "\n";
  }
  out << "row,trace_id,kind,span,parent,name,tier,start_us,duration_us,"
         "url,status,degraded\n";
  for (const RequestTrace& t : traces) {
    out << "trace," << t.id << ',' << CsvField(t.kind) << ",-1,-1,"
        << CsvField(t.kind) << ',' << CsvField(t.tier) << ',' << t.start_us
        << ',' << t.latency_us << ',' << CsvField(t.url) << ',' << t.status
        << ',' << (t.degraded ? 1 : 0) << "\n";
    for (size_t i = 0; i < t.spans.size(); ++i) {
      const Span& s = t.spans[i];
      out << "span," << t.id << ',' << CsvField(t.kind) << ',' << i << ','
          << s.parent << ',' << CsvField(s.name) << ',' << CsvField(s.tier)
          << ',' << s.start_us << ',' << s.duration_us << ",,,\n";
    }
  }
  return out.good();
}

}  // namespace speedkit::obs
