// Observability switches, carried by core::StackConfig::obs.
//
// Both default OFF: a stack without observability allocates no registry and
// no sink, and components see a disabled Tracer (null sink — one branch per
// would-be span). Turning either on must never change simulation results;
// tests/obs/trace_test.cc runs the same seed both ways and compares.
#ifndef SPEEDKIT_OBS_OBS_CONFIG_H_
#define SPEEDKIT_OBS_OBS_CONFIG_H_

#include <cstddef>

namespace speedkit::obs {

struct ObsConfig {
  // Snapshot component stats into a MetricsRegistry at collection points
  // (SpeedKitStack::CollectMetrics) and record live network RTT histograms.
  bool metrics = false;
  // Record per-request span trees into an in-memory sink.
  bool tracing = false;
  // Cap on retained traces (0 = unbounded); overflow counts as dropped.
  size_t max_traces = 0;
};

}  // namespace speedkit::obs

#endif  // SPEEDKIT_OBS_OBS_CONFIG_H_
