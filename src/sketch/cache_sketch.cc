#include "sketch/cache_sketch.h"

#include <algorithm>

namespace speedkit::sketch {

CacheSketch::CacheSketch(size_t expected_entries, double target_fpr)
    : num_cells_(BloomFilter::OptimalBits(expected_entries, target_fpr)),
      filter_(num_cells_,
              BloomFilter::OptimalHashes(num_cells_, expected_entries)) {
  num_cells_ = filter_.cells();  // after rounding
}

void CacheSketch::ReportInvalidation(std::string_view key, SimTime stale_until,
                                     SimTime now) {
  stats_.reports++;
  if (stale_until <= now) return;
  auto [it, inserted] = horizon_.emplace(std::string(key), stale_until);
  if (inserted) {
    filter_.Add(key);
    published_dirty_ = true;
    stats_.inserts++;
    stats_.current_entries = horizon_.size();
    expiry_.push(HeapItem{stale_until, it->first});
  } else if (stale_until > it->second) {
    it->second = stale_until;
    stats_.extensions++;
    // Lazy: the heap keeps the old deadline; expiry re-checks the map and
    // re-pushes if the horizon moved.
    expiry_.push(HeapItem{stale_until, it->first});
  }
}

void CacheSketch::ExpireUntil(SimTime now) {
  while (!expiry_.empty() && expiry_.top().at <= now) {
    HeapItem item = expiry_.top();
    expiry_.pop();
    auto it = horizon_.find(item.key);
    if (it == horizon_.end()) continue;  // already expired via another entry
    if (it->second > now) continue;      // horizon was extended; later entry covers it
    filter_.Remove(item.key);
    horizon_.erase(it);
    published_dirty_ = true;
    stats_.expirations++;
  }
  stats_.current_entries = horizon_.size();
}

bool CacheSketch::Contains(std::string_view key) const {
  return horizon_.find(std::string(key)) != horizon_.end();
}

BloomFilter CacheSketch::Snapshot(SimTime now) {
  ExpireUntil(now);
  stats_.snapshots++;
  return filter_.Materialize();
}

BloomFilter CacheSketch::CompactSnapshot(SimTime now, double target_fpr) {
  ExpireUntil(now);
  stats_.snapshots++;
  BloomFilter compact =
      BloomFilter::ForCapacity(std::max<size_t>(1, horizon_.size()),
                               target_fpr);
  for (const auto& [key, until] : horizon_) {
    compact.Add(key);
  }
  return compact;
}

std::string CacheSketch::SerializedSnapshot(SimTime now) {
  return *PublishedSnapshot(now);
}

std::shared_ptr<const std::string> CacheSketch::PublishedSnapshot(SimTime now) {
  ExpireUntil(now);
  stats_.snapshots++;
  if (published_ == nullptr || published_dirty_) Republish();
  return published_;
}

CacheSketch::Publication CacheSketch::PublishedFilter(SimTime now) {
  ExpireUntil(now);
  stats_.snapshots++;
  if (published_ == nullptr || published_dirty_) Republish();
  return Publication{published_filter_, published_->size()};
}

void CacheSketch::Republish() {
  BloomFilter compact =
      BloomFilter::ForCapacity(std::max<size_t>(1, horizon_.size()), 0.02);
  for (const auto& [key, until] : horizon_) {
    compact.Add(key);
  }
  // A compact snapshot is always far under the 48-bit header limit, so
  // Serialize cannot fail here.
  published_ = std::make_shared<const std::string>(compact.Serialize().value());
  // The filter handed to clients is the one the bytes describe: a client
  // holding the shared object behaves bit-for-bit like one that
  // deserialized the string itself.
  published_filter_ = std::make_shared<const BloomFilter>(std::move(compact));
  published_dirty_ = false;
  stats_.serializations++;
}

}  // namespace speedkit::sketch
