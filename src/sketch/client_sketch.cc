#include "sketch/client_sketch.h"

#include <utility>

namespace speedkit::sketch {

bool ClientSketch::NeedsRefresh(SimTime now) const {
  if (!has_snapshot_) return true;
  return now - fetched_at_ >= refresh_interval_;
}

Status ClientSketch::Update(std::string_view serialized, SimTime now) {
  auto filter = BloomFilter::Deserialize(serialized);
  if (!filter.ok()) return filter.status();
  Install(std::make_shared<const BloomFilter>(std::move(filter).value()),
          serialized.size(), now);
  return Status::Ok();
}

void ClientSketch::Install(std::shared_ptr<const BloomFilter> filter,
                           size_t wire_bytes, SimTime now) {
  filter_ = std::move(filter);
  has_snapshot_ = true;
  fetched_at_ = now;
  stats_.refreshes++;
  stats_.bytes_fetched += wire_bytes;
}

bool ClientSketch::MightBeStale(std::string_view key) {
  stats_.checks++;
  if (!has_snapshot_) {
    stats_.positives++;
    return true;
  }
  bool positive = filter_->MightContain(key);
  if (positive) stats_.positives++;
  return positive;
}

}  // namespace speedkit::sketch
