// Cache-line blocked Bloom filter (Putze, Sanders & Singler 2007) — the
// hot-path variant of the sketch membership check.
//
// A plain Bloom filter touches k random cache lines per probe; at device
// scale (one check per intercepted request across the whole client fleet)
// those dependent misses dominate the check. Here every key hashes to ONE
// 512-bit block (one cache line) and all k probe bits land inside it, so a
// probe costs exactly one memory access. Probe bits come from
// Kirsch-Mitzenmacher double hashing over the same single Murmur3 pass the
// plain filter uses: bit_i = h2 + i * (h1 | 1) (mod 512), with h1 picking
// the block — the odd multiplier makes the in-block stride a permutation
// of the 512 positions.
//
// MightContainBatch amortizes further: a hash+prefetch pass issues the
// block loads for the whole batch, then a probe pass finds the lines in
// cache — turning serial dependent misses into overlapped ones.
//
// The trade: confining k bits to one line skews per-block load, costing
// roughly 1.5-3x the false-positive rate of a plain filter at equal bits
// (bounded by tests against BloomFilter at the same sizing). Wire format
// is byte-compatible — the same [bits][k][words] layout written through
// BloomFilter::AppendSnapshotHeader — so a blocked filter can ship
// anywhere a plain snapshot does.
#ifndef SPEEDKIT_SKETCH_BLOCKED_BLOOM_H_
#define SPEEDKIT_SKETCH_BLOCKED_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace speedkit::sketch {

class BlockedBloomFilter {
 public:
  // 512 bits = one x86/ARM cache line = 8 words.
  static constexpr size_t kBlockBits = 512;
  static constexpr size_t kBlockWords = kBlockBits / 64;

  // `bits` is rounded up to a whole block (minimum one); `num_hashes` is
  // clamped to [1, 16] like BloomFilter.
  BlockedBloomFilter(size_t bits, int num_hashes);
  BlockedBloomFilter() : BlockedBloomFilter(kBlockBits, 1) {}

  // Sizes for n elements at target fpr using the plain-Bloom optimum
  // (callers wanting parity with a specific BloomFilter should pass that
  // filter's bits() and num_hashes() to the constructor instead).
  static BlockedBloomFilter ForCapacity(size_t n, double fpr);

  void Add(std::string_view key);
  bool MightContain(std::string_view key) const;

  // Batched probe: out[i] = MightContain(keys[i]). One pass hashes every
  // key and prefetches its block, a second pass tests the (now cached)
  // lines. Equivalent to the scalar probe bit-for-bit.
  void MightContainBatch(const std::string_view* keys, size_t n,
                         bool* out) const;

  void Clear();

  size_t bits() const { return num_bits_; }
  int num_hashes() const { return num_hashes_; }
  size_t num_blocks() const { return num_bits_ / kBlockBits; }
  size_t SizeBytes() const { return words_.size() * 8; }
  size_t PopCount() const;

  // Expected false-positive rate from the fill factor, like
  // BloomFilter::EstimatedFpr (the blocking skew makes this a slight
  // underestimate).
  double EstimatedFpr() const;

  // Same wire format as BloomFilter (via AppendSnapshotHeader), so blocked
  // snapshots interoperate with every existing reader; a blocked filter's
  // bit count is additionally a multiple of kBlockBits, which Deserialize
  // checks.
  Result<std::string> Serialize() const;
  static Result<BlockedBloomFilter> Deserialize(std::string_view data);

  friend bool operator==(const BlockedBloomFilter& a,
                         const BlockedBloomFilter& b) {
    return a.num_bits_ == b.num_bits_ && a.num_hashes_ == b.num_hashes_ &&
           a.words_ == b.words_;
  }

 private:
  size_t num_bits_;
  int num_hashes_;
  std::vector<uint64_t> words_;
};

}  // namespace speedkit::sketch

#endif  // SPEEDKIT_SKETCH_BLOCKED_BLOOM_H_
