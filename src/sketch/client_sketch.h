// The client's view of the Cache Sketch.
//
// The client proxy holds one of these and refreshes it from the server at
// most every Δ (`refresh_interval`). Between refreshes, `MightBeStale` is
// answered from the last snapshot; the snapshot's age is exactly the
// staleness bound the protocol guarantees. A client that has never fetched
// a snapshot answers "might be stale" for everything — conservative, never
// wrong.
#ifndef SPEEDKIT_SKETCH_CLIENT_SKETCH_H_
#define SPEEDKIT_SKETCH_CLIENT_SKETCH_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/sim_time.h"
#include "common/status.h"
#include "sketch/bloom_filter.h"

namespace speedkit::coherence {
class SketchPublication;
}  // namespace speedkit::coherence

namespace speedkit::sketch {

struct ClientSketchStats {
  uint64_t refreshes = 0;
  uint64_t bytes_fetched = 0;
  uint64_t checks = 0;
  uint64_t positives = 0;  // "might be stale" answers
};

class ClientSketch {
 public:
  explicit ClientSketch(Duration refresh_interval)
      : refresh_interval_(refresh_interval) {}

  // True when the snapshot is older than Δ (or absent) and should be
  // re-fetched before the next cache read.
  bool NeedsRefresh(SimTime now) const;

  // Installs a snapshot received from the server (wire form).
  Status Update(std::string_view serialized, SimTime now);

  // Membership check against the last snapshot. `true` means the cached
  // copy must be revalidated; `false` means it is safe to serve (up to the
  // snapshot's age in staleness).
  bool MightBeStale(std::string_view key);

  bool HasSnapshot() const { return has_snapshot_; }
  SimTime fetched_at() const { return fetched_at_; }
  Duration refresh_interval() const { return refresh_interval_; }
  Duration Age(SimTime now) const {
    return has_snapshot_ ? now - fetched_at_ : Duration::Max();
  }

  const ClientSketchStats& stats() const { return stats_; }

 private:
  // Fleet-shared installs flow through the coherence tier's publication
  // handle only: it is the one caller that can guarantee the filter is
  // the published immutable view with its matching wire size.
  friend class speedkit::coherence::SketchPublication;

  // Installs a pre-deserialized snapshot shared across the whole fleet.
  // `wire_bytes` is what the serialized form would have cost, so transfer
  // accounting matches Update exactly.
  void Install(std::shared_ptr<const BloomFilter> filter, size_t wire_bytes,
               SimTime now);

  Duration refresh_interval_;
  // Shared and immutable: a million clients refreshed inside the same Δ
  // window all point at one filter object.
  std::shared_ptr<const BloomFilter> filter_;
  bool has_snapshot_ = false;
  SimTime fetched_at_;
  ClientSketchStats stats_;
};

}  // namespace speedkit::sketch

#endif  // SPEEDKIT_SKETCH_CLIENT_SKETCH_H_
