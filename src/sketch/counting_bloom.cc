#include "sketch/counting_bloom.h"

#include <algorithm>

#include "common/hash.h"

namespace speedkit::sketch {

CountingBloomFilter::CountingBloomFilter(size_t cells, int num_hashes) {
  // Cell count mirrors BloomFilter's bit rounding so Materialize() maps
  // counter i to bit i with identical hash positions.
  num_cells_ = std::max<size_t>(64, (cells + 63) / 64 * 64);
  num_hashes_ = std::clamp(num_hashes, 1, 16);
  nibbles_.assign((num_cells_ + 1) / 2, 0);
}

uint8_t CountingBloomFilter::Get(size_t i) const {
  uint8_t byte = nibbles_[i >> 1];
  return (i & 1) ? (byte >> 4) : (byte & 0x0f);
}

void CountingBloomFilter::Set(size_t i, uint8_t v) {
  uint8_t& byte = nibbles_[i >> 1];
  if (i & 1) {
    byte = static_cast<uint8_t>((byte & 0x0f) | (v << 4));
  } else {
    byte = static_cast<uint8_t>((byte & 0xf0) | (v & 0x0f));
  }
}

void CountingBloomFilter::Add(std::string_view key) {
  Hash128 h = Murmur3_128(key);
  for (int i = 0; i < num_hashes_; ++i) {
    size_t cell = (h.h1 + static_cast<uint64_t>(i) * h.h2) % num_cells_;
    uint8_t c = Get(cell);
    if (c == 15) continue;  // saturated: sticky
    if (c == 14) ++saturated_;
    Set(cell, static_cast<uint8_t>(c + 1));
  }
}

void CountingBloomFilter::Remove(std::string_view key) {
  Hash128 h = Murmur3_128(key);
  for (int i = 0; i < num_hashes_; ++i) {
    size_t cell = (h.h1 + static_cast<uint64_t>(i) * h.h2) % num_cells_;
    uint8_t c = Get(cell);
    if (c == 15) continue;  // saturated: sticky forever
    if (c == 0) {
      // Erroneously empty: this remove was never matched by an add (or a
      // saturated counter absorbed the add). Other keys hashing here may
      // now report false negatives upstream — count it so the corruption
      // is observable instead of silent.
      ++underflows_;
      continue;
    }
    Set(cell, static_cast<uint8_t>(c - 1));
  }
}

bool CountingBloomFilter::MightContain(std::string_view key) const {
  Hash128 h = Murmur3_128(key);
  for (int i = 0; i < num_hashes_; ++i) {
    size_t cell = (h.h1 + static_cast<uint64_t>(i) * h.h2) % num_cells_;
    if (Get(cell) == 0) return false;
  }
  return true;
}

void CountingBloomFilter::Clear() {
  std::fill(nibbles_.begin(), nibbles_.end(), 0);
  saturated_ = 0;
  underflows_ = 0;
}

BloomFilter CountingBloomFilter::Materialize() const {
  BloomFilter filter(num_cells_, num_hashes_);
  // Reconstruct bit-by-bit; BloomFilter has no bulk setter by design (its
  // invariant is "bits only come from Add or Deserialize"), so we go
  // through the serialized form — with the header written by the shared
  // helper, so this writer can never drift from BloomFilter::Serialize
  // again (it used to truncate the cell count at 2^32).
  std::string bytes;
  bytes.reserve(8 + num_cells_ / 8);
  if (!BloomFilter::AppendSnapshotHeader(&bytes, num_cells_, num_hashes_)) {
    return filter;  // >= 2^48 cells: unrepresentable, like Serialize()
  }
  auto put_le = [&bytes](uint64_t v, int n) {
    for (int i = 0; i < n; ++i) bytes.push_back(static_cast<char>(v >> (8 * i)));
  };
  uint64_t word = 0;
  for (size_t i = 0; i < num_cells_; ++i) {
    if (Get(i) != 0) word |= (1ULL << (i & 63));
    if ((i & 63) == 63) {
      put_le(word, 8);
      word = 0;
    }
  }
  auto result = BloomFilter::Deserialize(bytes);
  // Serialization above is well-formed by construction.
  return result.ok() ? std::move(result).value() : filter;
}

}  // namespace speedkit::sketch
