// Counting Bloom filter — the server-side representation of the Cache
// Sketch.
//
// The server must *remove* keys when their residual cache lifetime expires,
// which a plain Bloom filter cannot do; 4-bit saturating counters (Fan et
// al., "Summary Cache", 1998) support deletion at 4x the memory. Counters
// that saturate at 15 are never decremented again (they stay "stuck") —
// this trades a tiny permanent false-positive floor for never producing a
// false NEGATIVE, which is the failure mode that would break Δ-atomicity.
#ifndef SPEEDKIT_SKETCH_COUNTING_BLOOM_H_
#define SPEEDKIT_SKETCH_COUNTING_BLOOM_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "sketch/bloom_filter.h"

namespace speedkit::sketch {

class CountingBloomFilter {
 public:
  CountingBloomFilter(size_t cells, int num_hashes);

  void Add(std::string_view key);
  // Decrements the key's counters. Callers must only remove keys they
  // previously added (the sketch tracks exact membership alongside);
  // removing an absent key would corrupt other keys' counters.
  void Remove(std::string_view key);

  bool MightContain(std::string_view key) const;
  void Clear();

  size_t cells() const { return num_cells_; }
  int num_hashes() const { return num_hashes_; }

  // Number of counters that ever saturated (diagnostic: a high count means
  // the filter is undersized for the workload).
  size_t saturated_cells() const { return saturated_; }

  // Number of Remove() decrements that found an already-zero counter — a
  // remove that was never matched by an add. Any non-zero value means the
  // caller broke the contract above and membership answers for colliding
  // keys may already be corrupted; the sketch lifecycle tests assert this
  // stays 0.
  size_t underflows() const { return underflows_; }

  // Collapses counters to bits: the client-facing snapshot.
  BloomFilter Materialize() const;

 private:
  uint8_t Get(size_t i) const;
  void Set(size_t i, uint8_t v);

  size_t num_cells_;
  int num_hashes_;
  size_t saturated_ = 0;
  size_t underflows_ = 0;
  std::vector<uint8_t> nibbles_;  // two 4-bit counters per byte
};

}  // namespace speedkit::sketch

#endif  // SPEEDKIT_SKETCH_COUNTING_BLOOM_H_
