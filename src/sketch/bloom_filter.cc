#include "sketch/bloom_filter.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/hash.h"

namespace speedkit::sketch {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}  // namespace

BloomFilter::BloomFilter(size_t bits, int num_hashes) {
  num_bits_ = std::max<size_t>(64, (bits + 63) / 64 * 64);
  num_hashes_ = std::clamp(num_hashes, 1, 16);
  words_.assign(num_bits_ / 64, 0);
}

size_t BloomFilter::OptimalBits(size_t n, double fpr) {
  if (n == 0) return 64;
  fpr = std::clamp(fpr, 1e-10, 0.5);
  double m = -static_cast<double>(n) * std::log(fpr) / (kLn2 * kLn2);
  return static_cast<size_t>(std::ceil(m));
}

int BloomFilter::OptimalHashes(size_t bits, size_t n) {
  if (n == 0) return 1;
  double k = static_cast<double>(bits) / static_cast<double>(n) * kLn2;
  return std::clamp(static_cast<int>(std::lround(k)), 1, 16);
}

BloomFilter BloomFilter::ForCapacity(size_t n, double fpr) {
  size_t bits = OptimalBits(n, fpr);
  return BloomFilter(bits, OptimalHashes(bits, n));
}

void BloomFilter::Add(std::string_view key) {
  Hash128 h = Murmur3_128(key);
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h.h1 + static_cast<uint64_t>(i) * h.h2) % num_bits_;
    words_[bit >> 6] |= (1ULL << (bit & 63));
  }
}

bool BloomFilter::MightContain(std::string_view key) const {
  Hash128 h = Murmur3_128(key);
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h.h1 + static_cast<uint64_t>(i) * h.h2) % num_bits_;
    if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::Clear() { std::fill(words_.begin(), words_.end(), 0); }

size_t BloomFilter::PopCount() const {
  size_t count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

double BloomFilter::EstimatedFpr() const {
  double fill = static_cast<double>(PopCount()) / static_cast<double>(num_bits_);
  return std::pow(fill, num_hashes_);
}

bool BloomFilter::AppendSnapshotHeader(std::string* out, size_t bits, int k) {
  // A bit count >= 2^48 cannot be represented in the header; no realistic
  // filter gets there (2^48 bits = 32 TiB of words), but truncating would
  // silently corrupt the snapshot, so refuse loudly instead.
  if (bits >= (1ull << 48)) return false;
  auto put_le = [out](uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out->push_back(static_cast<char>(v >> (8 * i)));
    }
  };
  put_le(bits, 4);
  put_le(static_cast<uint64_t>(k), 2);
  // High 16 bits of the 48-bit bit count. Filters under 2^32 bits write 0
  // here, byte-identical to the old format's reserved field.
  put_le(static_cast<uint64_t>(bits) >> 32, 2);
  return true;
}

Result<std::string> BloomFilter::Serialize() const {
  std::string out;
  out.reserve(8 + words_.size() * 8);
  if (!AppendSnapshotHeader(&out, num_bits_, num_hashes_)) {
    return Status::OutOfRange("bloom filter bit count exceeds 48-bit header");
  }
  auto put_le = [&out](uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
  };
  for (uint64_t w : words_) put_le(w, 8);
  return out;
}

Result<BloomFilter> BloomFilter::Deserialize(std::string_view data) {
  if (data.size() < 8) return Status::Corruption("bloom snapshot too short");
  auto get_le = [&data](size_t off, int bytes) {
    uint64_t v = 0;
    for (int i = bytes - 1; i >= 0; --i) {
      v = (v << 8) | static_cast<uint8_t>(data[off + i]);
    }
    return v;
  };
  size_t bits = get_le(0, 4) | (get_le(6, 2) << 32);
  int k = static_cast<int>(get_le(4, 2));
  if (bits == 0 || bits % 64 != 0 || k < 1 || k > 16) {
    return Status::Corruption("bloom snapshot header invalid");
  }
  size_t words = bits / 64;
  if (data.size() != 8 + words * 8) {
    return Status::Corruption("bloom snapshot body size mismatch");
  }
  BloomFilter filter(bits, k);
  for (size_t i = 0; i < words; ++i) {
    filter.words_[i] = get_le(8 + i * 8, 8);
  }
  return filter;
}

}  // namespace speedkit::sketch
