#include "sketch/blocked_bloom.h"

#include <algorithm>
#include <bit>

#include "common/hash.h"
#include "sketch/bloom_filter.h"

namespace speedkit::sketch {

namespace {

// Block index and in-block probe parameters for one key. Block selection
// uses h1 (mod #blocks); probe bits stride through the block from h2 with
// an odd step derived from h1 so the two uses of h1 stay decorrelated
// enough in practice (the mod and the shift read different bit ranges).
struct Probe {
  size_t block;
  uint64_t start;
  uint64_t step;
};

inline Probe ProbeFor(std::string_view key, size_t num_blocks) {
  Hash128 h = Murmur3_128(key);
  return Probe{static_cast<size_t>(h.h1 % num_blocks), h.h2,
               (h.h1 >> 32) | 1};
}

}  // namespace

BlockedBloomFilter::BlockedBloomFilter(size_t bits, int num_hashes) {
  num_bits_ = std::max(kBlockBits, (bits + kBlockBits - 1) / kBlockBits *
                                       kBlockBits);
  num_hashes_ = std::clamp(num_hashes, 1, 16);
  words_.assign(num_bits_ / 64, 0);
}

BlockedBloomFilter BlockedBloomFilter::ForCapacity(size_t n, double fpr) {
  size_t bits = BloomFilter::OptimalBits(n, fpr);
  return BlockedBloomFilter(bits, BloomFilter::OptimalHashes(bits, n));
}

void BlockedBloomFilter::Add(std::string_view key) {
  Probe p = ProbeFor(key, num_blocks());
  uint64_t* block = &words_[p.block * kBlockWords];
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (p.start + static_cast<uint64_t>(i) * p.step) % kBlockBits;
    block[bit >> 6] |= (1ULL << (bit & 63));
  }
}

bool BlockedBloomFilter::MightContain(std::string_view key) const {
  Probe p = ProbeFor(key, num_blocks());
  const uint64_t* block = &words_[p.block * kBlockWords];
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (p.start + static_cast<uint64_t>(i) * p.step) % kBlockBits;
    if ((block[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void BlockedBloomFilter::MightContainBatch(const std::string_view* keys,
                                           size_t n, bool* out) const {
  // Lane width bounds the probe-state buffer so it stays in registers/L1;
  // larger batches are processed in chunks.
  constexpr size_t kLane = 32;
  Probe probes[kLane];
  const size_t blocks = num_blocks();
  for (size_t base = 0; base < n; base += kLane) {
    size_t lane = std::min(kLane, n - base);
    for (size_t j = 0; j < lane; ++j) {
      probes[j] = ProbeFor(keys[base + j], blocks);
#if defined(__GNUC__) || defined(__clang__)
      __builtin_prefetch(&words_[probes[j].block * kBlockWords], /*rw=*/0,
                         /*locality=*/1);
#endif
    }
    for (size_t j = 0; j < lane; ++j) {
      const Probe& p = probes[j];
      const uint64_t* block = &words_[p.block * kBlockWords];
      bool hit = true;
      for (int i = 0; i < num_hashes_; ++i) {
        uint64_t bit =
            (p.start + static_cast<uint64_t>(i) * p.step) % kBlockBits;
        if ((block[bit >> 6] & (1ULL << (bit & 63))) == 0) {
          hit = false;
          break;
        }
      }
      out[base + j] = hit;
    }
  }
}

void BlockedBloomFilter::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
}

size_t BlockedBloomFilter::PopCount() const {
  size_t count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

double BlockedBloomFilter::EstimatedFpr() const {
  double fill =
      static_cast<double>(PopCount()) / static_cast<double>(num_bits_);
  double fpr = 1.0;
  for (int i = 0; i < num_hashes_; ++i) fpr *= fill;
  return fpr;
}

Result<std::string> BlockedBloomFilter::Serialize() const {
  std::string out;
  out.reserve(8 + words_.size() * 8);
  if (!BloomFilter::AppendSnapshotHeader(&out, num_bits_, num_hashes_)) {
    return Status::OutOfRange("blocked bloom bit count exceeds 48-bit header");
  }
  for (uint64_t w : words_) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(w >> (8 * i)));
  }
  return out;
}

Result<BlockedBloomFilter> BlockedBloomFilter::Deserialize(
    std::string_view data) {
  // Reuse the plain reader for header validation and word decoding, then
  // impose the blocked layout's extra constraint.
  Result<BloomFilter> plain = BloomFilter::Deserialize(data);
  if (!plain.ok()) return plain.status();
  if (plain->bits() % kBlockBits != 0) {
    return Status::Corruption("blocked bloom bit count not block-aligned");
  }
  BlockedBloomFilter filter(plain->bits(), plain->num_hashes());
  // Byte-identical wire layout: re-decode the words directly.
  for (size_t i = 0; i < filter.words_.size(); ++i) {
    uint64_t w = 0;
    for (int b = 7; b >= 0; --b) {
      w = (w << 8) | static_cast<uint8_t>(data[8 + i * 8 + b]);
    }
    filter.words_[i] = w;
  }
  return filter;
}

}  // namespace speedkit::sketch
