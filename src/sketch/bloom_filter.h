// Plain Bloom filter — the wire format of the Cache Sketch.
//
// The server materializes its counting filter into one of these and ships it
// to clients every Δ seconds; the client consults it before serving any
// cached response. Hash positions come from Kirsch-Mitzenmacher double
// hashing over a single Murmur3 pass: g_i(x) = h1 + i*h2 (mod m), which is
// provably as good as k independent hashes and an order of magnitude
// cheaper — this matters because the check runs on the user's device for
// every intercepted request.
#ifndef SPEEDKIT_SKETCH_BLOOM_FILTER_H_
#define SPEEDKIT_SKETCH_BLOOM_FILTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace speedkit::sketch {

class BloomFilter {
 public:
  // `bits` is rounded up to a multiple of 64; `num_hashes` is clamped to
  // [1, 16]. An empty filter (bits==0) reports nothing as contained.
  BloomFilter(size_t bits, int num_hashes);
  BloomFilter() : BloomFilter(64, 1) {}

  // Sizing math (Bloom 1970): for n elements at target false-positive rate
  // p, the optimal bit count is m = -n ln p / (ln 2)^2 and the optimal hash
  // count is k = (m/n) ln 2.
  static size_t OptimalBits(size_t n, double fpr);
  static int OptimalHashes(size_t bits, size_t n);
  static BloomFilter ForCapacity(size_t n, double fpr);

  void Add(std::string_view key);
  bool MightContain(std::string_view key) const;
  void Clear();

  size_t bits() const { return num_bits_; }
  int num_hashes() const { return num_hashes_; }
  size_t SizeBytes() const { return words_.size() * 8; }

  // Number of set bits.
  size_t PopCount() const;

  // Expected false-positive rate from the current fill factor:
  // (set_bits / m)^k — tighter than the classic (1-e^{-kn/m})^k when the
  // actual bit pattern is known.
  double EstimatedFpr() const;

  // Wire format: [u32 bits_lo][u16 k][u16 bits_hi][words little-endian];
  // the bit count is 48 bits (bits_hi was a zero "reserved" field before,
  // so snapshots from filters under 2^32 bits are byte-identical to the
  // old format). Returns OutOfRange for a filter whose bit count cannot
  // be represented (>= 2^48) — matching Deserialize's error surface; the
  // empty-string sentinel this used to return was indistinguishable from
  // a (corrupt) zero-byte snapshot at the call site.
  Result<std::string> Serialize() const;
  static Result<BloomFilter> Deserialize(std::string_view data);

  // Appends the snapshot header for a filter of `bits` bits and `k`
  // hashes to `out`. The single writer of the wire-format header — shared
  // with CountingBloomFilter::Materialize so the two serializers cannot
  // drift (Materialize once kept the pre-widening header and silently
  // truncated cell counts at 2^32). Returns false (appending nothing)
  // when `bits` does not fit the 48-bit header field.
  static bool AppendSnapshotHeader(std::string* out, size_t bits, int k);

  friend bool operator==(const BloomFilter& a, const BloomFilter& b) {
    return a.num_bits_ == b.num_bits_ && a.num_hashes_ == b.num_hashes_ &&
           a.words_ == b.words_;
  }

 private:
  size_t num_bits_;
  int num_hashes_;
  std::vector<uint64_t> words_;
};

}  // namespace speedkit::sketch

#endif  // SPEEDKIT_SKETCH_BLOOM_FILTER_H_
