// The server-side Cache Sketch — the heart of Speed Kit's cache coherence
// protocol.
//
// Invariant: at any time, the sketch contains (at least) every cache key for
// which some expiration-based cache anywhere (browser or CDN edge) may still
// hold a stale copy. A key enters the sketch when its object is written
// while previously-served copies are still within their TTL; it leaves when
// the last such copy's TTL has run out (`stale_until`). Clients that check a
// fresh-enough snapshot before serving from cache therefore never read a
// value staler than the snapshot age — this is what bounds staleness to Δ.
//
// Implementation: exact membership and expiry live in a hash map + lazy
// min-heap; the counting Bloom filter mirrors membership so that a compact
// `BloomFilter` snapshot can be materialized in O(m) without touching the
// map. False positives only cause unnecessary revalidations, never stale
// reads.
#ifndef SPEEDKIT_SKETCH_CACHE_SKETCH_H_
#define SPEEDKIT_SKETCH_CACHE_SKETCH_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "sketch/bloom_filter.h"
#include "sketch/counting_bloom.h"

namespace speedkit::coherence {
class SketchPublication;
}  // namespace speedkit::coherence

namespace speedkit::sketch {

struct CacheSketchStats {
  uint64_t reports = 0;       // ReportInvalidation calls
  uint64_t inserts = 0;       // distinct keys added
  uint64_t extensions = 0;    // stale_until pushed out for tracked keys
  uint64_t expirations = 0;   // keys removed on expiry
  uint64_t snapshots = 0;
  uint64_t serializations = 0;  // published snapshots actually re-encoded
  size_t current_entries = 0;
};

class CacheSketch {
 public:
  // Sizes the counting filter for `expected_entries` simultaneously-tracked
  // keys at the given snapshot false-positive rate.
  CacheSketch(size_t expected_entries, double target_fpr);

  // Records that `key` was invalidated while cached copies may live until
  // `stale_until`. Extends the horizon if the key is already tracked.
  // Reports with `stale_until <= now` are dropped (nothing can be stale).
  void ReportInvalidation(std::string_view key, SimTime stale_until,
                          SimTime now);

  // Removes keys whose stale horizon has passed.
  void ExpireUntil(SimTime now);

  // True if the sketch currently tracks `key` exactly (not via the filter).
  bool Contains(std::string_view key) const;

  // Expires, then materializes the client-facing Bloom snapshot from the
  // counting filter (O(filter size), independent of entry count).
  BloomFilter Snapshot(SimTime now);

  // Expires, then builds a snapshot re-hashed from the exact key set and
  // sized for the *current* number of tracked entries at `target_fpr` —
  // the form that actually travels to clients, since its size scales with
  // the stale set (typically a few hundred bytes) instead of the sketch's
  // provisioned capacity. Costs O(entries x k) per snapshot; E12/A2
  // quantifies the trade against Snapshot().
  BloomFilter CompactSnapshot(SimTime now, double target_fpr = 0.02);

  // Serialized compact snapshot (what actually travels to clients).
  std::string SerializedSnapshot(SimTime now);

  // A published snapshot as an immutable in-memory filter, plus the size
  // the serialized form would occupy on the wire. Simulated clients
  // install this shared filter directly instead of each deserializing a
  // private BloomFilter copy from the published string — at a million
  // clients that is the difference between one filter and a million.
  struct Publication {
    std::shared_ptr<const BloomFilter> filter;
    size_t wire_bytes = 0;
  };

  const CacheSketchStats& stats() const { return stats_; }
  // The backing counting filter — exposed so tests can assert lifecycle
  // invariants (e.g. the add/remove discipline never underflows a counter).
  const CountingBloomFilter& filter() const { return filter_; }
  size_t entries() const { return horizon_.size(); }
  size_t FilterSizeBytes() const { return num_cells_ / 8; }  // as bits

 private:
  // The publication surface is owned by coherence::SketchPublication —
  // the one handle through which snapshots leave the sketch (the origin's
  // /sketch route and every client refresh go through it). Direct callers
  // use SerializedSnapshot; the shared-view forms below are memoized and
  // deliberately not public API.
  friend class speedkit::coherence::SketchPublication;

  // The published form of the serialized compact snapshot: an immutable
  // string behind a shared_ptr, re-encoded only when the tracked key set
  // changed since the last publication (insert or expiry — horizon
  // extensions don't alter the bit pattern, which is a pure function of
  // the key set and its size). Every client refresh hits this, so the
  // memo turns O(entries x k) per refresh into O(1) between mutations;
  // the sharded engine additionally relies on the shared_ptr being
  // immutable once handed out. Bytes are identical to re-serializing
  // from scratch — CompactSnapshot's bit pattern is insertion-order
  // insensitive — so published and fresh snapshots are interchangeable.
  std::shared_ptr<const std::string> PublishedSnapshot(SimTime now);

  // The same publication as the shared filter view; the filter's bit
  // pattern is identical to Deserialize(PublishedSnapshot), and the memo
  // invalidates with it.
  Publication PublishedFilter(SimTime now);

  struct HeapItem {
    SimTime at;
    std::string key;
  };
  struct Later {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      return a.at > b.at;
    }
  };

  size_t num_cells_;
  CountingBloomFilter filter_;
  std::unordered_map<std::string, SimTime> horizon_;  // key -> stale_until
  std::priority_queue<HeapItem, std::vector<HeapItem>, Later> expiry_;
  CacheSketchStats stats_;
  void Republish();

  // Publication memo: valid while the key set is unchanged. The string and
  // filter forms are two views of the same snapshot and refresh together.
  std::shared_ptr<const std::string> published_;
  std::shared_ptr<const BloomFilter> published_filter_;
  bool published_dirty_ = true;
};

}  // namespace speedkit::sketch

#endif  // SPEEDKIT_SKETCH_CACHE_SKETCH_H_
