#include "core/stack.h"

#include <cstdio>
#include <cstdlib>

#include "obs/metric_names.h"

namespace speedkit::core {

std::string_view SystemVariantName(SystemVariant variant) {
  switch (variant) {
    case SystemVariant::kSpeedKit:
      return "speed_kit";
    case SystemVariant::kFixedTtlCdn:
      return "fixed_ttl_cdn";
    case SystemVariant::kNoCaching:
      return "no_caching";
    case SystemVariant::kPureInvalidation:
      return "pure_invalidation";
  }
  return "unknown";
}

Status StackConfig::Validate() const {
  // Real errors at the call site beat silent clamping: a config that used
  // to be "fixed up" (edge count forced to 1, FPR squeezed into range)
  // produced runs that quietly measured something other than what was
  // asked for.
  if (cdn_edges < 1) {
    return Status::InvalidArgument("cdn_edges must be >= 1");
  }
  if (shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (cdn_edges % shards != 0) {
    return Status::InvalidArgument(
        "shards must divide cdn_edges (every shard owns the same number of "
        "edges)");
  }
  if (Status s = coherence.Validate(
          /*sketch_variant=*/variant == SystemVariant::kSpeedKit);
      !s.ok()) {
    return s;
  }
  return Status::Ok();
}

SpeedKitStack::SpeedKitStack(const StackConfig& config)
    : SpeedKitStack(config, nullptr, 0) {}

SpeedKitStack::SpeedKitStack(const StackConfig& config,
                             std::shared_ptr<cache::ShardedEdgeMap> edge_map,
                             int shard)
    : config_(config),
      shard_(shard),
      // Per-shard stream: golden-ratio stride on the stream id keeps the
      // shards' PCG sequences disjoint; shard 0 reproduces the legacy
      // single-domain stream exactly.
      rng_(config.seed,
           (config.seed ^ 0x5eed0001ULL) +
               static_cast<uint64_t>(shard) * 0x9e3779b97f4a7c15ULL),
      events_(&clock_),
      faults_(config.faults),
      network_(config.network, rng_.Fork(1)) {
  if (Status valid = config_.Validate(); !valid.ok()) {
    std::fprintf(stderr, "SpeedKitStack: invalid StackConfig: %s\n",
                 valid.ToString().c_str());
    std::abort();
  }
  if (shard_ < 0 || shard_ >= config_.shards) {
    std::fprintf(stderr, "SpeedKitStack: shard %d out of range [0, %d)\n",
                 shard_, config_.shards);
    std::abort();
  }
  network_.SetFaultSchedule(&faults_);
  // TTL policy by variant/mode.
  switch (config_.variant) {
    case SystemVariant::kNoCaching:
      ttl_policy_ = std::make_unique<ttl::NoCachePolicy>();
      break;
    case SystemVariant::kPureInvalidation:
      // Purge-only coherence wants TTLs long enough to never expire within
      // a run; staleness is bounded by purge propagation alone.
      ttl_policy_ =
          std::make_unique<ttl::FixedTtlPolicy>(Duration::Seconds(7 * 86400));
      break;
    case SystemVariant::kFixedTtlCdn:
      ttl_policy_ = std::make_unique<ttl::FixedTtlPolicy>(config_.fixed_ttl);
      break;
    case SystemVariant::kSpeedKit:
      if (config_.ttl_mode == TtlMode::kFixed) {
        ttl_policy_ = std::make_unique<ttl::FixedTtlPolicy>(config_.fixed_ttl);
      } else {
        ttl_policy_ =
            std::make_unique<ttl::EstimatedTtlPolicy>(config_.estimator);
      }
      break;
  }

  // The coherence tier. Baselines (non-sketch variants) always get the
  // fixed-TTL protocol regardless of the configured mode — their coherence
  // story is the TTL policy itself, and mode() stays truthful for them.
  protocol_ = coherence::MakeCoherenceProtocol(
      config_.coherence,
      /*sketch_variant=*/config_.variant == SystemVariant::kSpeedKit);
  if (edge_map == nullptr) {
    // Single-domain stack: private full-view tier. config.shards > 1 only
    // takes effect through ShardedFleet, which passes the shared map.
    cdn_ = std::make_unique<cache::Cdn>(config_.cdn_edges,
                                        config_.edge_capacity_bytes);
  } else {
    cdn_ = std::make_unique<cache::Cdn>(std::move(edge_map), shard_,
                                        config_.shards);
  }
  origin_ = std::make_unique<origin::OriginServer>(
      config_.origin, &clock_, &store_, ttl_policy_.get(),
      &protocol_->publication());

  if (UsesPipeline()) {
    pipeline_ = std::make_unique<invalidation::InvalidationPipeline>(
        config_.pipeline, &clock_, &events_, cdn_.get(), protocol_.get(),
        rng_.Fork(2));
    // The origin records every handed-out freshness deadline; the pipeline
    // must consult that same book to size sketch horizons correctly.
    pipeline_->UseExpiryBook(&origin_->expiry_book());
    pipeline_->SetFaultSchedule(&faults_);
    pipeline_->AttachTo(&store_);
  }

  // Observability. Allocated only when switched on, so the default stack
  // pays nothing. The network histograms are live (filled as RTTs are
  // drawn); everything else is snapshotted via CollectMetrics().
  if (config_.obs.metrics) {
    metrics_ = std::make_shared<obs::MetricsRegistry>();
    network_.SetRttHistograms(
        metrics_->Histo(obs::kNetworkRttUs, "link=client_edge"),
        metrics_->Histo(obs::kNetworkRttUs, "link=client_origin"),
        metrics_->Histo(obs::kNetworkRttUs, "link=edge_origin"));
  }
  if (config_.obs.tracing) {
    trace_sink_ = std::make_shared<obs::InMemoryTraceSink>(config_.obs.max_traces);
    tracer_ = std::make_unique<obs::Tracer>(trace_sink_.get());
    if (pipeline_ != nullptr) pipeline_->SetTracer(tracer_.get());
  }

  // Mirror outage windows into clock events so that components consult
  // plain availability flags instead of each re-deriving window coverage.
  // Windows per node must be disjoint (documented in fault_schedule.h):
  // each one toggles down at `start` and back up at `end`.
  for (const sim::FaultWindow& w : config_.faults.origin) {
    events_.At(w.start, [this] { origin_->set_available(false); });
    events_.At(w.end, [this] { origin_->set_available(true); });
  }
  // Edge fault schedules are keyed by PHYSICAL edge index (shard-agnostic
  // config); each shard mirrors only the windows of edges it owns, in its
  // local index space.
  for (size_t e = 0; e < config_.faults.edges.size(); ++e) {
    int local = cdn_->LocalIndexOf(static_cast<int>(e));
    if (local < 0) continue;  // out of range, or another shard's edge
    for (const sim::FaultWindow& w : config_.faults.edges[e]) {
      events_.At(w.start, [this, local] { cdn_->SetEdgeDown(local, true); });
      events_.At(w.end, [this, local] { cdn_->SetEdgeDown(local, false); });
    }
  }

  // Cross-shard purge mailboxes drain at every Δ coherence boundary — the
  // same interval that bounds client staleness bounds how long a purge
  // posted by another shard can sit unapplied, so batching remote purges
  // at the boundary adds no new staleness class. Single-domain stacks
  // (shards == 1) have no cross-shard traffic and skip the drain events
  // entirely, keeping the legacy event stream byte-identical.
  if (config_.shards > 1) {
    ScheduleMailboxDrain();
  }

  // Version instrumentation: date every record version and every
  // materialized-query result version. The protocol's staleness tracker is
  // both the anomaly-measurement ledger and (for serializable mode) the
  // validation authority.
  store_.AddWriteListener([this](const storage::Record* /*before*/,
                                 const storage::Record& after) {
    protocol_->OnVersion(invalidation::RecordCacheKey(after.id),
                         after.version, clock_.Now());
  });
  origin_->SetQueryVersionListener(
      [this](const std::string& cache_key, uint64_t version) {
        protocol_->OnVersion(cache_key, version, clock_.Now());
      });
}

void SpeedKitStack::ScheduleMailboxDrain() {
  // A drain with an empty mailbox is a strict no-op on results, so the
  // recurring event never perturbs runs that post nothing — the engine's
  // (seed, shards) purity survives with the events in place.
  events_.After(protocol_->BoundaryInterval(), [this] {
    cdn_->DrainRemotePurges(clock_.Now());
    protocol_->OnBoundary(clock_.Now());
    ScheduleMailboxDrain();
  });
}

proxy::ProxyConfig SpeedKitStack::DefaultProxyConfig() const {
  proxy::ProxyConfig pc;
  pc.sketch_refresh_interval = config_.coherence.delta;
  pc.txn_max_retries = config_.coherence.max_txn_retries;
  pc.origin_flight = config_.origin_flight;
  switch (config_.variant) {
    case SystemVariant::kSpeedKit:
      // Sketch consultation and SWR admission are the protocol's call:
      // serializable and fixed-TTL modes run the SpeedKit stack without
      // the sketch fast path and without SWR (which could serve a version
      // the validation RTT then has to retry away).
      pc.use_sketch =
          protocol_->mode() == coherence::CoherenceMode::kDeltaAtomic;
      pc.stale_while_revalidate = protocol_->AdmitStaleWhileRevalidate();
      break;
    case SystemVariant::kFixedTtlCdn:
      pc.use_sketch = false;
      pc.gdpr_mode = false;
      pc.offline_mode = false;
      // Without the sketch, SWR would stretch staleness beyond the TTL.
      pc.stale_while_revalidate = false;
      pc.optimize_assets = false;  // no service worker, no rewriting
      pc.device_overhead = Duration::Zero();
      break;
    case SystemVariant::kNoCaching:
      pc.enabled = false;
      pc.use_cdn = false;
      pc.use_sketch = false;
      pc.gdpr_mode = false;
      pc.offline_mode = false;
      pc.stale_while_revalidate = false;
      pc.optimize_assets = false;
      pc.browser_cache_bytes = 1;  // admits nothing
      pc.device_overhead = Duration::Zero();
      break;
    case SystemVariant::kPureInvalidation:
      pc.use_sketch = false;
      pc.gdpr_mode = false;
      pc.offline_mode = false;
      pc.stale_while_revalidate = false;
      pc.optimize_assets = false;
      pc.browser_cache_bytes = 1;  // purges cannot reach the device
      pc.device_overhead = Duration::Zero();
      break;
  }
  return pc;
}

std::unique_ptr<proxy::ClientProxy> SpeedKitStack::MakeClient(
    uint64_t client_id, personalization::BoundaryAuditor* auditor) {
  return MakeClient(DefaultProxyConfig(), client_id, auditor);
}

std::unique_ptr<proxy::ClientProxy> SpeedKitStack::MakeClient(
    const proxy::ProxyConfig& proxy_config, uint64_t client_id,
    personalization::BoundaryAuditor* auditor) {
  return std::make_unique<proxy::ClientProxy>(proxy_config, client_id,
                                              ClientDeps(auditor));
}

proxy::ProxyDeps SpeedKitStack::ClientDeps(
    personalization::BoundaryAuditor* auditor) {
  proxy::ProxyDeps deps;
  deps.clock = &clock_;
  deps.network = &network_;
  deps.cdn = cdn_.get();
  deps.origin = origin_.get();
  deps.coherence = protocol_.get();
  deps.auditor = auditor;
  deps.tracer = tracer_.get();
  return deps;
}

std::unique_ptr<proxy::ClientPool> SpeedKitStack::MakeClientPool(
    const proxy::ClientPoolConfig& pool_config,
    personalization::BoundaryAuditor* auditor) {
  return std::make_unique<proxy::ClientPool>(pool_config, ClientDeps(auditor));
}

}  // namespace speedkit::core
