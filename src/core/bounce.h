// Bounce model: the paper's opening sentence — "users leave when page
// loads take too long" — turned into a measurable quantity.
//
// P(bounce | load time) follows a logistic curve around a tolerance point,
// calibrated to the industry folklore the paper leans on (~32% of visitors
// abandon between 1 s and 3 s): ~6% at 1 s, ~50% at the 3 s tolerance,
// saturating toward 1 for very slow pages. The A/B harness integrates this
// over each arm's load-time distribution to turn latency percentiles into
// an expected bounce rate — the business metric the field deployments were
// judged on.
#ifndef SPEEDKIT_CORE_BOUNCE_H_
#define SPEEDKIT_CORE_BOUNCE_H_

#include "common/sim_time.h"

namespace speedkit::core {

class BounceModel {
 public:
  // `tolerance`: load time at which half the visitors bounce.
  // `steepness`: logistic slope per second beyond tolerance.
  explicit BounceModel(Duration tolerance = Duration::Seconds(3),
                       double steepness = 1.4)
      : tolerance_(tolerance), steepness_(steepness) {}

  // Probability that a visitor abandons a page that took `load_time`.
  double BounceProbability(Duration load_time) const;

  Duration tolerance() const { return tolerance_; }

 private:
  Duration tolerance_;
  double steepness_;
};

}  // namespace speedkit::core

#endif  // SPEEDKIT_CORE_BOUNCE_H_
