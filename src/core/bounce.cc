#include "core/bounce.h"

#include <cmath>

namespace speedkit::core {

double BounceModel::BounceProbability(Duration load_time) const {
  double dt = load_time.seconds() - tolerance_.seconds();
  return 1.0 / (1.0 + std::exp(-steepness_ * dt));
}

}  // namespace speedkit::core
