// ShardedFleet: the deterministic sharded execution engine.
//
// Partitions a simulated deployment into `StackConfig::shards` coherence
// domains. Each shard is a full SpeedKitStack replica — own clock, event
// queue, forked PCG stream, origin, sketch, pipeline — over its slice of
// ONE shared physical edge tier (cache/sharded_edge_map.h). Clients
// partition by the edge their id hashes to (edge e belongs to shard
// e % shards), so a shard simulates exactly the clients its edges serve
// and never touches another shard's state.
//
// The invariant that makes this an *engine* and not just a partition:
// because shards share nothing mutable (edge slots are ownership-disjoint,
// striped locks fence the discipline for TSan) and every shard's RNG
// stream is derived from (seed, shard) alone, the merged result of a run
// is a pure function of (seed, shards) — bit-identical whether the shards
// execute on 1 thread or 16, in any interleaving. Thread count buys
// wall-clock speed, never different numbers; bench/fig_throughput.cc gates
// this with a fingerprint self-check.
//
// What sharding changes (and shards=1 does not): cross-shard coupling is
// cut — each shard has its own origin/store replica and write stream, so
// `shards` is a MODEL parameter like cdn_edges, not a tuning knob. Results
// at shards=1 reproduce the classic single-domain stack exactly.
#ifndef SPEEDKIT_CORE_FLEET_H_
#define SPEEDKIT_CORE_FLEET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/sharded_edge_map.h"
#include "common/thread_pool.h"
#include "core/stack.h"

namespace speedkit::core {

// The shard owning `client_id` under a (cdn_edges, shards) partition:
// the client pins to physical edge Mix64(id) % cdn_edges, and edge e
// belongs to shard e % shards. Standalone so drivers can partition client
// populations without a fleet in hand.
int ShardOfClient(uint64_t client_id, int cdn_edges, int shards);

class ShardedFleet {
 public:
  // Builds the shared edge tier plus config.shards stack replicas.
  // Aborts on invalid config (see StackConfig::Validate).
  explicit ShardedFleet(const StackConfig& config);

  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;

  int shards() const { return static_cast<int>(stacks_.size()); }
  SpeedKitStack& shard(int i) { return *stacks_[static_cast<size_t>(i)]; }
  const std::shared_ptr<cache::ShardedEdgeMap>& edge_map() const {
    return edge_map_;
  }

 private:
  std::shared_ptr<cache::ShardedEdgeMap> edge_map_;
  std::vector<std::unique_ptr<SpeedKitStack>> stacks_;
};

// Runs fn(shard) for every shard index on up to `threads` workers
// (threads <= 1 runs serially on the calling thread — byte-identical work
// either way; that IS the engine's contract). `fn` must confine itself to
// its shard's state.
void ForEachShard(int shards, int threads, const std::function<void(int)>& fn);

}  // namespace speedkit::core

#endif  // SPEEDKIT_CORE_FLEET_H_
