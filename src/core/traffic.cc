#include "core/traffic.h"

#include <string>

namespace speedkit::core {

void TrafficResult::Merge(const TrafficResult& other) {
  api_latency_us.Merge(other.api_latency_us);
  all_latency_us.Merge(other.all_latency_us);
  page_views += other.page_views;
  writes_applied += other.writes_applied;
  proxies += other.proxies;
  hit_ratio_timeline.Merge(other.hit_ratio_timeline);
  latency_ms_timeline.Merge(other.latency_ms_timeline);
  stale_timeline.Merge(other.stale_timeline);
}

double TrafficResult::BrowserHitRatio() const {
  return proxies.requests == 0
             ? 0.0
             : static_cast<double>(proxies.browser_hits +
                                   proxies.swr_serves +
                                   proxies.offline_serves) /
                   static_cast<double>(proxies.requests);
}

double TrafficResult::EdgeHitRatio() const {
  return proxies.requests == 0
             ? 0.0
             : static_cast<double>(proxies.edge_hits) /
                   static_cast<double>(proxies.requests);
}

double TrafficResult::OriginRatio() const {
  return proxies.requests == 0
             ? 0.0
             : static_cast<double>(proxies.origin_fetches) /
                   static_cast<double>(proxies.requests);
}

TrafficSimulation::TrafficSimulation(SpeedKitStack* stack,
                                     const workload::Catalog* catalog,
                                     const TrafficConfig& config)
    : stack_(stack),
      catalog_(catalog),
      config_(config),
      end_(stack->clock().Now() + config.duration),
      popularity_(catalog->num_products(), config.session.product_skew),
      pool_(stack->MakeClientPool(config.pool)),
      writes_(catalog->num_products(), config.writes_per_sec,
              config.write_skew, stack->ForkRng(1000 + config.seed_salt)),
      rng_(stack->ForkRng(2000 + config.seed_salt)) {
  proxy::ProxyConfig pc = config_.proxy_config != nullptr
                              ? *config_.proxy_config
                              : stack_->DefaultProxyConfig();
  clients_.reserve(config_.num_clients);
  session_gens_.reserve(config_.num_clients);
  for (size_t i = 0; i < config_.num_clients; ++i) {
    // In a sharded fleet each shard simulates only the clients whose edge
    // it owns; salts stay keyed by the GLOBAL client index so a client's
    // session stream is a function of (shard stream, id), not of how many
    // clients happen to share its shard.
    uint64_t client_id = i + 1;
    if (!stack_->OwnsClient(client_id)) continue;
    clients_.push_back(pool_->MakeClient(pc, client_id));
    session_gens_.emplace_back(catalog_, config_.session, &popularity_,
                               stack_->ForkRng(3000 + i));
  }
}

TrafficResult TrafficSimulation::Run() {
  SimTime start = stack_->clock().Now();
  // Stagger session starts across the first minute so clients don't
  // thunder in lock-step.
  for (size_t i = 0; i < clients_.size(); ++i) {
    ScheduleSession(i, start + Duration::Seconds(rng_.Uniform(0.0, 60.0)));
  }
  ScheduleNextWrite(start);
  // Cold-client spill sweeps (no-ops unless the pool enables spill for
  // this fleet size). Scheduled last so the relative order of all real
  // traffic events is untouched.
  if (pool_->spill_enabled()) {
    ScheduleSpillSweep(start + config_.pool.spill_sweep_interval);
  }
  stack_->AdvanceTo(end_);

  // Every pooled client recorded into the shared sink; one add replaces
  // the old per-client summation (bit-identical: counter increments are
  // unchanged and integer-valued histogram sums are exact).
  result_.proxies += pool_->stats();
  return result_;
}

void TrafficSimulation::ScheduleSession(size_t client_index, SimTime at) {
  if (at >= end_) return;
  stack_->events().At(at, [this, client_index]() {
    std::vector<workload::PageView> pages =
        session_gens_[client_index].NextSession();
    SimTime t = stack_->clock().Now();
    for (const workload::PageView& view : pages) {
      t = t + view.think_time_before;
      if (t >= end_) return;
      workload::PageView view_copy = view;
      stack_->events().At(t, [this, client_index, view_copy]() {
        ExecutePageView(client_index, view_copy);
      });
    }
    // Next session after the last page view plus an idle gap.
    Duration gap = Duration::Seconds(
        rng_.Exponential(1.0 / config_.mean_session_gap.seconds()));
    ScheduleSession(client_index, t + gap);
  });
}

void TrafficSimulation::ScheduleSpillSweep(SimTime at) {
  if (at >= end_) return;
  stack_->events().At(at, [this, at]() {
    pool_->SpillIdle(stack_->clock().Now());
    ScheduleSpillSweep(at + config_.pool.spill_sweep_interval);
  });
}

void TrafficSimulation::ScheduleNextWrite(SimTime from) {
  workload::WriteEvent ev = writes_.Next(from);
  if (ev.at >= end_) return;
  stack_->events().At(ev.at, [this, ev]() {
    Pcg32 wrng = stack_->ForkRng(0x77);
    stack_->store().Update(catalog_->ProductId(ev.object_rank),
                           catalog_->PriceUpdate(ev.object_rank, wrng),
                           stack_->clock().Now());
    result_.writes_applied++;
    ScheduleNextWrite(stack_->clock().Now());
  });
}

void TrafficSimulation::ExecutePageView(size_t client_index,
                                        const workload::PageView& view) {
  proxy::ClientProxy& client = *clients_[client_index];
  std::string url;
  bool track_staleness = false;
  switch (view.type) {
    case workload::PageType::kHome:
      url = "https://shop.example.com/pages/home";
      break;
    case workload::PageType::kCategory:
      url = catalog_->CategoryUrl(view.category);
      track_staleness = true;
      break;
    case workload::PageType::kProduct:
      url = catalog_->ProductUrl(view.product_rank);
      track_staleness = true;
      break;
    case workload::PageType::kCart:
      return;  // handled on-device; no network traffic
  }
  proxy::FetchResult r = client.Fetch(url);
  result_.page_views++;
  result_.all_latency_us.Add(r.latency.micros());
  bool cache_hit = r.source == proxy::ServedFrom::kBrowserCache ||
                   r.source == proxy::ServedFrom::kEdgeCache ||
                   r.source == proxy::ServedFrom::kOfflineCache;
  result_.hit_ratio_timeline.Add(stack_->clock().Now(), cache_hit ? 1.0 : 0.0);
  result_.latency_ms_timeline.Add(stack_->clock().Now(), r.latency.millis());
  if (track_staleness) {
    result_.api_latency_us.Add(r.latency.micros());
    if (r.response.ok() && r.response.object_version > 0) {
      // Offline serves are the availability-over-freshness trade the
      // proxy makes deliberately; they must not count as Δ-violations.
      bool excused = r.source == proxy::ServedFrom::kOfflineCache;
      Duration staleness = stack_->staleness().RecordRead(
          url, r.response.object_version, stack_->clock().Now(), excused);
      result_.stale_timeline.Add(stack_->clock().Now(),
                                 staleness > Duration::Zero() ? 1.0 : 0.0);
    }
  }
}

}  // namespace speedkit::core
