// SpeedKitStack: one fully-wired deployment — clock, network, origin store,
// TTL policy, Cache Sketch, CDN, invalidation pipeline, staleness tracker —
// plus a factory for client proxies.
//
// `SystemVariant` selects the paper's system or one of the baselines it is
// evaluated against (E9):
//   kSpeedKit          sketch coherence + estimated TTLs + CDN + browser
//   kFixedTtlCdn       traditional CDN: fixed TTLs, no invalidation at all —
//                      stale until expiry (the paper's "fixed caching times")
//   kNoCaching         every request goes to the origin
//   kPureInvalidation  long TTLs + purge-only coherence, no browser caching
//                      (browser copies cannot be purged, so a purge-only
//                      design must not create them)
#ifndef SPEEDKIT_CORE_STACK_H_
#define SPEEDKIT_CORE_STACK_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "cache/cdn.h"
#include "cache/sharded_edge_map.h"
#include "coherence/coherence_config.h"
#include "coherence/protocol.h"
#include "common/random.h"
#include "common/status.h"
#include "core/staleness.h"
#include "invalidation/pipeline.h"
#include "obs/metrics.h"
#include "obs/obs_config.h"
#include "obs/trace.h"
#include "origin/origin_server.h"
#include "proxy/client_pool.h"
#include "proxy/client_proxy.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/fault_schedule.h"
#include "sim/network.h"
#include "sketch/cache_sketch.h"
#include "storage/object_store.h"
#include "ttl/ttl_policy.h"

namespace speedkit::core {

enum class SystemVariant {
  kSpeedKit,
  kFixedTtlCdn,
  kNoCaching,
  kPureInvalidation,
};

std::string_view SystemVariantName(SystemVariant variant);

enum class TtlMode { kEstimator, kFixed };

struct StackConfig {
  SystemVariant variant = SystemVariant::kSpeedKit;
  uint64_t seed = 42;

  // Infrastructure.
  int cdn_edges = 4;
  size_t edge_capacity_bytes = 0;  // 0 = unbounded
  // Coherence domains for the sharded fleet engine (core/fleet.h). Clients
  // partition by the edge they route to (edge e belongs to shard
  // e % shards), each shard gets a full stack replica over its slice of a
  // shared edge tier, and merged results are a pure function of
  // (seed, shards) — identical for ANY thread count executing the shards.
  // Must divide cdn_edges. A directly-constructed SpeedKitStack is always
  // one full-view domain; shards > 1 takes effect through ShardedFleet /
  // the workload runners.
  int shards = 1;
  sim::NetworkConfig network;
  origin::OriginConfig origin;
  // Concurrent-miss semantics at the edge while an origin fetch for the
  // same key is in flight (see cache::OriginFlightMode). kInstant — the
  // legacy instantaneous-store model — is the default, keeping every
  // pre-existing fingerprint bit-identical; kHerd models the in-flight
  // window honestly (arrivals stampede to the origin); kCoalesce adds
  // single-flight collapsing, the mechanism speedkit_edged runs over real
  // wall-clock windows.
  cache::OriginFlightMode origin_flight = cache::OriginFlightMode::kInstant;

  // Coherence tier: which CoherenceProtocol runs (Δ-atomic sketch,
  // serializable read-validation, or plain fixed-TTL) and its knobs —
  // sketch sizing, Δ, transaction retry budget. Only consulted for the
  // kSpeedKit variant; baselines always get the fixed-TTL protocol.
  coherence::CoherenceConfig coherence;
  invalidation::PipelineConfig pipeline;

  // TTLs (only consulted for variants that cache).
  TtlMode ttl_mode = TtlMode::kEstimator;
  Duration fixed_ttl = Duration::Seconds(60);
  ttl::EstimatorConfig estimator;

  // Fault injection (E14). Link loss and purge loss/delay are applied
  // probabilistically from the components' own RNG streams; origin and
  // edge outage windows become clock events at construction. An empty
  // schedule reproduces a no-schedule run bit-for-bit.
  sim::FaultScheduleConfig faults;

  // Observability (off by default; turning it on never changes results —
  // see docs/METRICS.md and docs/ARCHITECTURE.md).
  obs::ObsConfig obs;

  // Structural sanity of the configuration. The stack constructor calls
  // this and refuses to build on error — a bad value is a real error at
  // the call site, not something to silently clamp into range. Checks:
  // cdn_edges >= 1, shards >= 1, shards divides cdn_edges, plus
  // CoherenceConfig::Validate (sketch_fpr in (0, 0.5], sketch_capacity > 0
  // for sketch variants, delta > 0, max_txn_retries >= 0).
  Status Validate() const;
};

class SpeedKitStack {
 public:
  // A single-domain (full-view) stack. Aborts if config.Validate() fails.
  explicit SpeedKitStack(const StackConfig& config);

  // One shard of a fleet: views only the edges owned by `shard` out of
  // config.shards domains of the shared physical tier, and derives a
  // per-shard RNG stream from (config.seed, shard) so shard streams never
  // collide. Shard 0 of 1 over a fresh map is bit-identical to the plain
  // constructor.
  SpeedKitStack(const StackConfig& config,
                std::shared_ptr<cache::ShardedEdgeMap> edge_map, int shard);

  SpeedKitStack(const SpeedKitStack&) = delete;
  SpeedKitStack& operator=(const SpeedKitStack&) = delete;

  // Proxy settings implied by the variant; callers may tweak before
  // MakeClient.
  proxy::ProxyConfig DefaultProxyConfig() const;

  std::unique_ptr<proxy::ClientProxy> MakeClient(
      uint64_t client_id, personalization::BoundaryAuditor* auditor = nullptr);
  std::unique_ptr<proxy::ClientProxy> MakeClient(
      const proxy::ProxyConfig& proxy_config, uint64_t client_id,
      personalization::BoundaryAuditor* auditor = nullptr);

  // The dependency set MakeClient hands every proxy — for callers that
  // construct clients themselves (a proxy::ClientPool fills in its own
  // stats sink on top). A client built from ClientDeps() is identical to
  // one from MakeClient with the same config.
  proxy::ProxyDeps ClientDeps(
      personalization::BoundaryAuditor* auditor = nullptr);

  // An arena-backed fleet wired against this stack (see
  // proxy/client_pool.h): pooled allocation, shared stats sink and
  // optional cold-client spill — the constructor for drivers that create
  // clients by the thousand.
  std::unique_ptr<proxy::ClientPool> MakeClientPool(
      const proxy::ClientPoolConfig& pool_config,
      personalization::BoundaryAuditor* auditor = nullptr);

  // Advances simulated time, running due events (CDN purges etc.).
  void AdvanceTo(SimTime t) { events_.RunUntil(t); }
  void Advance(Duration d) { AdvanceTo(clock_.Now() + d); }

  const StackConfig& config() const { return config_; }
  // Which coherence domain this stack is (0 for a full-view stack).
  int shard() const { return shard_; }
  // Whether this stack's shard owns `client_id` (always true for a
  // full-view stack). Drivers must only MakeClient for owned clients.
  bool OwnsClient(uint64_t client_id) const { return cdn_->OwnsClient(client_id); }
  sim::SimClock& clock() { return clock_; }
  sim::EventQueue& events() { return events_; }
  sim::Network& network() { return network_; }
  storage::ObjectStore& store() { return store_; }
  origin::OriginServer& origin() { return *origin_; }
  cache::Cdn& cdn() { return *cdn_; }
  // The coherence tier — never null; baselines run the fixed-TTL protocol.
  coherence::CoherenceProtocol& coherence_protocol() { return *protocol_; }
  // Null for protocols without sketch coherence.
  sketch::CacheSketch* sketch() { return protocol_->sketch(); }
  // Null for variants without an invalidation pipeline.
  invalidation::InvalidationPipeline* pipeline() { return pipeline_.get(); }
  ttl::TtlPolicy& ttl_policy() { return *ttl_policy_; }
  StalenessTracker& staleness() { return protocol_->staleness(); }
  const sim::FaultSchedule& faults() { return faults_; }

  // Forks a deterministic child RNG for drivers.
  Pcg32 ForkRng(uint64_t salt) { return rng_.Fork(salt); }

  // -- observability ---------------------------------------------------
  // Null unless config.obs.metrics / config.obs.tracing are on. Shared
  // pointers so harness outputs (RunOutput) can outlive the stack.
  const std::shared_ptr<obs::MetricsRegistry>& metrics() const {
    return metrics_;
  }
  const std::shared_ptr<obs::InMemoryTraceSink>& trace_sink() const {
    return trace_sink_;
  }
  obs::Tracer* tracer() { return tracer_.get(); }

  // Snapshots every component's stats into the registry under the names
  // in obs/metric_names.h. `merged_proxies` carries the proxy counters
  // (the stack does not own its clients); pass null to skip the proxy
  // family. No-op without config.obs.metrics. Implemented in
  // stack_metrics.cc — the one file that knows every stats struct.
  void CollectMetrics(const proxy::ProxyStats* merged_proxies);

 private:
  // Self-rescheduling Δ-boundary event applying cross-shard purge notes
  // (sharded stacks only; see stack.cc).
  void ScheduleMailboxDrain();

  bool UsesPipeline() const {
    return config_.variant == SystemVariant::kSpeedKit ||
           config_.variant == SystemVariant::kPureInvalidation;
  }

  StackConfig config_;
  int shard_ = 0;
  Pcg32 rng_;
  sim::SimClock clock_;
  sim::EventQueue events_;
  sim::FaultSchedule faults_;
  sim::Network network_;
  storage::ObjectStore store_;
  std::unique_ptr<ttl::TtlPolicy> ttl_policy_;
  std::unique_ptr<coherence::CoherenceProtocol> protocol_;
  std::unique_ptr<cache::Cdn> cdn_;
  std::unique_ptr<origin::OriginServer> origin_;
  std::unique_ptr<invalidation::InvalidationPipeline> pipeline_;

  // Observability (null when off). The tracer is heap-allocated so the
  // pointer handed to proxies/pipeline stays stable.
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::shared_ptr<obs::InMemoryTraceSink> trace_sink_;
  std::unique_ptr<obs::Tracer> tracer_;
};

}  // namespace speedkit::core

#endif  // SPEEDKIT_CORE_STACK_H_
