// Page-load model: turns per-resource fetch latencies into a page load
// time the way a browser does.
//
// The shell (HTML) is fetched first — its latency is the TTFB and gates
// everything else. Sub-resources (assets, API calls, dynamic blocks) then
// download over `max_connections` parallel connections; each resource is
// greedily assigned to the connection that frees up earliest (list
// scheduling), and the page is loaded when the last connection drains.
// This reproduces the two load-time regimes that matter for the paper's
// A/B numbers: latency-bound pages (few large resources) and
// connection-bound pages (many small ones).
#ifndef SPEEDKIT_CORE_PAGE_LOAD_H_
#define SPEEDKIT_CORE_PAGE_LOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "personalization/dynamic_block.h"
#include "personalization/segmentation.h"
#include "proxy/client_proxy.h"
#include "workload/catalog.h"

namespace speedkit::core {

struct PageSpec {
  std::string shell_url;
  std::vector<std::string> resource_urls;  // assets + API calls
  // Optional personalized part; fetched like the other sub-resources.
  const personalization::PageTemplate* page_template = nullptr;
  const personalization::Segmenter* segmenter = nullptr;
};

struct PageLoadResult {
  Duration ttfb = Duration::Zero();       // shell latency
  Duration load_time = Duration::Zero();  // full page
  int resources = 0;
  int served_from_cache = 0;  // browser or edge
  int errors = 0;
  uint64_t object_version = 0;  // of the primary API resource, if any
};

class PageLoader {
 public:
  explicit PageLoader(int max_connections = 6)
      : max_connections_(max_connections) {}

  PageLoadResult Load(proxy::ClientProxy& client, const PageSpec& spec);

 private:
  int max_connections_;
};

// Page builders shared by examples and benches: shell + site-wide shared
// assets + per-entity resources.
PageSpec MakeHomePage(int shared_assets);
PageSpec MakeCategoryPage(const workload::Catalog& catalog, int category,
                          int shared_assets, int thumbnails);
PageSpec MakeProductPage(const workload::Catalog& catalog, size_t rank,
                         int shared_assets, int images);

}  // namespace speedkit::core

#endif  // SPEEDKIT_CORE_PAGE_LOAD_H_
