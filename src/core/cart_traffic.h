// Multi-key shopping-cart traffic: the workload behind E18 (coherence
// modes head-to-head).
//
// Each client periodically runs a read-only checkout transaction over K
// distinct catalog products (cart lines + their current prices) while the
// usual Poisson write process mutates the catalog underneath. Every
// committed transaction is audited against the stack's version authority:
// did the K reads observe a consistent snapshot — i.e. do the read
// versions' validity intervals share a common instant? A committed
// transaction that fails that check is an *anomaly*; the per-mode anomaly,
// abort and retry rates are what fig_coherence tabulates and the CI gate
// pins (zero anomalies under Δ-atomic and serializable, a nonzero baseline
// under fixed TTL).
//
// Determinism mirrors TrafficSimulation: all randomness forks off the
// stack's seed with salts keyed by the GLOBAL client index, so a client's
// transaction stream is a function of (seed, id) — never of shard count,
// sharding layout, or thread count.
#ifndef SPEEDKIT_CORE_CART_TRAFFIC_H_
#define SPEEDKIT_CORE_CART_TRAFFIC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "core/stack.h"
#include "proxy/client_proxy.h"
#include "workload/catalog.h"
#include "workload/write_process.h"
#include "workload/zipf.h"

namespace speedkit::core {

struct CartTrafficConfig {
  size_t num_clients = 20;
  Duration duration = Duration::Minutes(10);
  // Distinct products per checkout transaction.
  size_t keys_per_txn = 4;
  // Mean think time between a client's transactions (exponential).
  Duration mean_txn_gap = Duration::Seconds(20);
  double product_skew = 0.9;
  double writes_per_sec = 2.0;
  double write_skew = 0.8;
  uint64_t seed_salt = 0;
  // Overrides the stack's variant-derived proxy settings when set.
  const proxy::ProxyConfig* proxy_config = nullptr;
  proxy::ClientPoolConfig pool;
};

struct CartTrafficResult {
  uint64_t txns_attempted = 0;
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;
  uint64_t txn_retries = 0;
  // Committed transactions whose read versions admit no common instant.
  uint64_t anomalies = 0;
  // Snapshot checks where a version-ring bound had rotated out (the check
  // clamps toward "consistent", so anomalies can only be under-counted).
  uint64_t anomaly_checks_clamped = 0;
  uint64_t writes_applied = 0;
  Histogram txn_latency_us;
  proxy::ProxyStats proxies;  // summed over all clients

  double AnomalyRate() const {
    return txns_committed == 0 ? 0.0
                               : static_cast<double>(anomalies) /
                                     static_cast<double>(txns_committed);
  }
  double AbortRate() const {
    return txns_attempted == 0 ? 0.0
                               : static_cast<double>(txns_aborted) /
                                     static_cast<double>(txns_attempted);
  }

  // Accumulates another run's results (counters summed, histograms
  // merged); merge order must be fixed for determinism.
  void Merge(const CartTrafficResult& other);
};

class CartTrafficSimulation {
 public:
  CartTrafficSimulation(SpeedKitStack* stack,
                        const workload::Catalog* catalog,
                        const CartTrafficConfig& config);

  // Runs the configured duration; returns aggregated results. Staleness
  // numbers live in stack->staleness().
  CartTrafficResult Run();

 private:
  void ScheduleTxn(size_t client_index, SimTime at);
  void ScheduleNextWrite(SimTime from);
  void ExecuteTxn(size_t client_index);

  SpeedKitStack* stack_;
  const workload::Catalog* catalog_;
  CartTrafficConfig config_;
  SimTime end_;

  workload::ZipfGenerator popularity_;
  std::unique_ptr<proxy::ClientPool> pool_;
  std::vector<proxy::ClientProxy*> clients_;
  // Per owned client, indexed in lockstep with clients_; seeded by the
  // GLOBAL client index.
  std::vector<Pcg32> txn_rngs_;
  workload::WriteProcess writes_;
  Pcg32 rng_;
  CartTrafficResult result_;
};

}  // namespace speedkit::core

#endif  // SPEEDKIT_CORE_CART_TRAFFIC_H_
