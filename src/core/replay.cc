#include "core/replay.h"

#include "common/hash.h"
#include "workload/session.h"
#include "workload/write_process.h"

namespace speedkit::core {

uint64_t ReplayResult::Fingerprint() const {
  uint64_t h = Mix64(fetches);
  h ^= Mix64(writes + 0x9e37);
  h ^= Mix64(errors + 0x79b9);
  h ^= Mix64(static_cast<uint64_t>(latency_us.Sum()));
  h ^= Mix64(proxies.browser_hits);
  h ^= Mix64(proxies.edge_hits + 1);
  h ^= Mix64(proxies.origin_fetches + 2);
  h ^= Mix64(proxies.sketch_bypasses + 3);
  return h;
}

TraceReplayer::TraceReplayer(SpeedKitStack* stack,
                             const proxy::ProxyConfig* proxy_config)
    : stack_(stack),
      proxy_config_(proxy_config != nullptr ? *proxy_config
                                            : stack->DefaultProxyConfig()) {}

proxy::ClientProxy& TraceReplayer::ClientFor(uint64_t client_id) {
  auto it = clients_.find(client_id);
  if (it == clients_.end()) {
    it = clients_
             .emplace(client_id, stack_->MakeClient(proxy_config_, client_id))
             .first;
  }
  return *it->second;
}

ReplayResult TraceReplayer::Replay(const workload::Trace& trace) {
  ReplayResult result;
  SimTime last = stack_->clock().Now();
  for (const workload::TraceEvent& ev : trace.events()) {
    // Pointer into the trace's storage: stable for the whole replay (the
    // loop reference itself dies each iteration).
    const workload::TraceEvent* event = &ev;
    stack_->events().At(event->at, [this, &result, event]() {
      if (event->kind == workload::TraceEvent::Kind::kFetch) {
        proxy::FetchResult r = ClientFor(event->client_id).Fetch(event->url);
        result.fetches++;
        result.latency_us.Add(r.latency.micros());
        if (!r.response.ok()) {
          result.errors++;
        } else if (r.response.object_version > 0) {
          // Re-parse for the canonical cache key; a trace loaded from disk
          // can carry malformed URLs, so never dereference unchecked.
          auto url = http::Url::Parse(event->url);
          if (url.ok()) {
            stack_->staleness().RecordRead(
                url->CacheKey(), r.response.object_version,
                stack_->clock().Now(),
                /*excused=*/r.source == proxy::ServedFrom::kOfflineCache);
          } else {
            result.errors++;
          }
        }
      } else {
        stack_->store().Update(event->record_id, event->fields,
                               stack_->clock().Now());
        result.writes++;
      }
    });
    if (ev.at > last) last = ev.at;
  }
  stack_->AdvanceTo(last + Duration::Seconds(1));  // drain trailing purges

  for (const auto& [id, client] : clients_) {
    result.proxies += client->stats();
  }
  return result;
}

workload::Trace SynthesizeTrace(const workload::Catalog& catalog,
                                size_t num_clients, Duration duration,
                                double writes_per_sec, uint64_t seed) {
  workload::Trace trace;
  Pcg32 rng(seed);
  SimTime end = SimTime::Origin() + duration;

  // Browsing: one session stream per client.
  for (size_t c = 0; c < num_clients; ++c) {
    workload::SessionGenerator sessions(&catalog, workload::SessionConfig{},
                                        rng.Fork(100 + c));
    Pcg32 gaps = rng.Fork(200 + c);
    SimTime t = SimTime::Origin() + Duration::Seconds(gaps.Uniform(0, 30));
    while (t < end) {
      for (const workload::PageView& view : sessions.NextSession()) {
        t = t + view.think_time_before;
        if (t >= end) break;
        switch (view.type) {
          case workload::PageType::kHome:
            trace.AddFetch(t, c + 1, "https://shop.example.com/pages/home");
            break;
          case workload::PageType::kCategory:
            trace.AddFetch(t, c + 1, catalog.CategoryUrl(view.category));
            break;
          case workload::PageType::kProduct:
            trace.AddFetch(t, c + 1, catalog.ProductUrl(view.product_rank));
            break;
          case workload::PageType::kCart:
            break;
        }
      }
      t = t + Duration::Seconds(gaps.Exponential(1.0 / 45.0));
    }
  }

  // Writes: Poisson price updates.
  workload::WriteProcess writes(catalog.num_products(), writes_per_sec, 0.8,
                                rng.Fork(999));
  Pcg32 update_rng = rng.Fork(998);
  SimTime t = SimTime::Origin();
  while (true) {
    workload::WriteEvent ev = writes.Next(t);
    if (ev.at >= end) break;
    t = ev.at;
    trace.AddWrite(t, catalog.ProductId(ev.object_rank),
                   catalog.PriceUpdate(ev.object_rank, update_rng));
  }

  trace.SortByTime();
  return trace;
}

}  // namespace speedkit::core
