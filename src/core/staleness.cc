#include "core/staleness.h"

#include <algorithm>

namespace speedkit::core {

void StalenessTracker::RecordWrite(std::string_view key, uint64_t version,
                                   SimTime now) {
  KeyHistory& history = keys_[std::string(key)];
  if (version <= history.head_version) return;  // out-of-order: ignore
  history.head_version = version;
  history.writes.emplace_back(version, now);
  while (history.writes.size() > ring_capacity_) history.writes.pop_front();
}

Duration StalenessTracker::RecordRead(std::string_view key, uint64_t version,
                                      SimTime now, bool excused) {
  report_.reads++;
  auto it = keys_.find(std::string(key));
  if (it == keys_.end()) return Duration::Zero();  // key never written
  const KeyHistory& history = it->second;
  if (version >= history.head_version) return Duration::Zero();

  report_.stale_reads++;
  // The read value died when version+1 was written: find the first dated
  // write with version > served version.
  auto overwrite = std::find_if(
      history.writes.begin(), history.writes.end(),
      [version](const auto& w) { return w.first > version; });
  Duration staleness;
  if (overwrite != history.writes.end()) {
    staleness = now - overwrite->second;
    if (overwrite == history.writes.begin() &&
        history.writes.front().first > version + 1) {
      // The true overwrite rotated out; this is a lower bound.
      report_.clamped++;
    }
  } else {
    // All dated writes are <= version yet head > version: the overwrite
    // rotated out entirely. Clamp to the newest known write.
    staleness = history.writes.empty() ? Duration::Zero()
                                       : now - history.writes.back().second;
    report_.clamped++;
  }
  if (staleness > report_.max_staleness) report_.max_staleness = staleness;
  if (excused) {
    report_.excused_stale_reads++;
  } else if (staleness > delta_bound_) {
    report_.delta_violations++;
  }
  staleness_us_.Add(staleness.micros());
  return staleness;
}

}  // namespace speedkit::core
