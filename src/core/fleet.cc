#include "core/fleet.h"

#include <algorithm>

#include "common/hash.h"

namespace speedkit::core {

int ShardOfClient(uint64_t client_id, int cdn_edges, int shards) {
  int physical =
      static_cast<int>(Mix64(client_id) % static_cast<uint64_t>(cdn_edges));
  return physical % shards;
}

ShardedFleet::ShardedFleet(const StackConfig& config)
    : edge_map_(std::make_shared<cache::ShardedEdgeMap>(
          config.cdn_edges, config.edge_capacity_bytes)) {
  stacks_.reserve(static_cast<size_t>(std::max(1, config.shards)));
  for (int s = 0; s < config.shards; ++s) {
    stacks_.push_back(std::make_unique<SpeedKitStack>(config, edge_map_, s));
  }
}

void ForEachShard(int shards, int threads,
                  const std::function<void(int)>& fn) {
  auto run = [&fn](size_t s) { fn(static_cast<int>(s)); };
  if (threads <= 1 || shards <= 1) {
    ParallelFor(nullptr, static_cast<size_t>(shards), run);
    return;
  }
  ThreadPool pool(static_cast<size_t>(std::min(threads, shards)));
  ParallelFor(&pool, static_cast<size_t>(shards), run);
}

}  // namespace speedkit::core
