#include "core/page_load.h"

#include <algorithm>

#include "common/strings.h"

namespace speedkit::core {

namespace {
constexpr char kHost[] = "https://shop.example.com";

bool CountsAsCacheHit(proxy::ServedFrom source) {
  return source == proxy::ServedFrom::kBrowserCache ||
         source == proxy::ServedFrom::kEdgeCache ||
         source == proxy::ServedFrom::kOfflineCache;
}
}  // namespace

PageLoadResult PageLoader::Load(proxy::ClientProxy& client,
                                const PageSpec& spec) {
  PageLoadResult result;

  proxy::FetchResult shell = client.Fetch(spec.shell_url);
  result.ttfb = shell.latency;
  result.resources = 1;
  if (CountsAsCacheHit(shell.source)) result.served_from_cache++;
  if (!shell.response.ok()) result.errors++;

  // Gather sub-resource latencies.
  std::vector<Duration> latencies;
  latencies.reserve(spec.resource_urls.size() + 8);
  for (const std::string& url : spec.resource_urls) {
    proxy::FetchResult r = client.Fetch(url);
    result.resources++;
    if (CountsAsCacheHit(r.source)) result.served_from_cache++;
    if (!r.response.ok()) {
      result.errors++;
    } else if (r.response.object_version > 0 &&
               result.object_version == 0 &&
               url.find("/api/") != std::string::npos) {
      result.object_version = r.response.object_version;
    }
    latencies.push_back(r.latency);
  }
  if (spec.page_template != nullptr && spec.segmenter != nullptr) {
    for (const auto& block : spec.page_template->blocks) {
      proxy::BlockResult b =
          client.FetchBlock(*spec.page_template, block, *spec.segmenter);
      result.resources++;
      if (CountsAsCacheHit(b.source)) result.served_from_cache++;
      latencies.push_back(b.latency);
    }
  }

  // List-schedule onto max_connections_ parallel connections.
  std::vector<Duration> connection_free(
      static_cast<size_t>(std::max(1, max_connections_)), Duration::Zero());
  for (Duration lat : latencies) {
    auto earliest =
        std::min_element(connection_free.begin(), connection_free.end());
    *earliest += lat;
  }
  Duration parallel_tail =
      *std::max_element(connection_free.begin(), connection_free.end());
  result.load_time = result.ttfb + parallel_tail;
  return result;
}

PageSpec MakeHomePage(int shared_assets) {
  PageSpec spec;
  spec.shell_url = std::string(kHost) + "/pages/home";
  for (int i = 0; i < shared_assets; ++i) {
    spec.resource_urls.push_back(StrFormat("%s/assets/site-%d", kHost, i));
  }
  return spec;
}

PageSpec MakeCategoryPage(const workload::Catalog& catalog, int category,
                          int shared_assets, int thumbnails) {
  PageSpec spec;
  spec.shell_url =
      StrFormat("%s/pages/category-%d", kHost, category);
  for (int i = 0; i < shared_assets; ++i) {
    spec.resource_urls.push_back(StrFormat("%s/assets/site-%d", kHost, i));
  }
  spec.resource_urls.push_back(catalog.CategoryUrl(category));
  for (int i = 0; i < thumbnails; ++i) {
    spec.resource_urls.push_back(
        StrFormat("%s/assets/thumb-cat%d-%d", kHost, category, i));
  }
  return spec;
}

PageSpec MakeProductPage(const workload::Catalog& catalog, size_t rank,
                         int shared_assets, int images) {
  PageSpec spec;
  // Per-product HTML: each detail page is its own cacheable document.
  spec.shell_url = StrFormat("%s/pages/product-%zu", kHost, rank);
  for (int i = 0; i < shared_assets; ++i) {
    spec.resource_urls.push_back(StrFormat("%s/assets/site-%d", kHost, i));
  }
  spec.resource_urls.push_back(catalog.ProductUrl(rank));
  spec.resource_urls.push_back(
      catalog.CategoryUrl(catalog.CategoryOf(rank)));  // breadcrumb listing
  for (int i = 0; i < images; ++i) {
    spec.resource_urls.push_back(StrFormat("%s/assets/img-p%zu-%d", kHost,
                                           rank, i));
  }
  return spec;
}

}  // namespace speedkit::core
