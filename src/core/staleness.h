// Forwarding header: the staleness tracker moved into the coherence tier
// (src/coherence/staleness.h), where it doubles as the serializable
// protocol's version authority. The core:: aliases keep the long tail of
// harnesses, tools and tests compiling unchanged.
#ifndef SPEEDKIT_CORE_STALENESS_H_
#define SPEEDKIT_CORE_STALENESS_H_

#include "coherence/staleness.h"

namespace speedkit::core {

using StalenessReport = coherence::StalenessReport;
using StalenessTracker = coherence::StalenessTracker;

}  // namespace speedkit::core

#endif  // SPEEDKIT_CORE_STALENESS_H_
