// SpeedKitStack::CollectMetrics — snapshots every component's stats struct
// into the observability registry under the canonical names from
// obs/metric_names.h. Lives in its own file because it is the one place
// that must know every stats struct in the system; stack.cc stays wiring.
//
// Snapshot semantics: counters and gauges are assigned (idempotent),
// histograms are merged — call once, at the end of a run. The network RTT
// histograms are the exception: they are live (wired in the constructor)
// and never touched here.
#include "core/stack.h"

#include "obs/metric_names.h"

namespace speedkit::core {

namespace {

void SnapshotProxy(obs::MetricsRegistry* reg, const proxy::ProxyStats& s) {
  auto set = [reg](std::string_view name, std::string_view labels,
                   uint64_t value) { *reg->Counter(name, labels) = value; };
  set(obs::kProxyRequests, "", s.requests);
  set(obs::kProxyServes, "tier=browser", s.browser_hits);
  set(obs::kProxyServes, "tier=swr", s.swr_serves);
  set(obs::kProxyServes, "tier=edge", s.edge_hits);
  set(obs::kProxyServes, "tier=origin", s.origin_fetches);
  set(obs::kProxyServes, "tier=offline", s.offline_serves);
  set(obs::kProxyServes, "tier=error", s.errors);
  set(obs::kProxyRevalidations, "result=304", s.revalidations_304);
  set(obs::kProxyRevalidations, "result=200", s.revalidations_200);
  set(obs::kProxySketchBypasses, "", s.sketch_bypasses);
  set(obs::kProxySketchRefreshes, "", s.sketch_refreshes);
  set(obs::kProxySketchBytes, "", s.sketch_bytes);
  set(obs::kProxyBytes, "source=browser_cache", s.bytes_from_browser_cache);
  set(obs::kProxyBytes, "source=network", s.bytes_over_network);
  set(obs::kProxyTimeouts, "", s.timeouts);
  set(obs::kProxyRetries, "", s.retries);
  set(obs::kProxyFallbackServes, "", s.fallback_serves);
  set(obs::kProxyBackgroundRevalidations, "", s.background_revalidations);
  set(obs::kProxyBackgroundResponses, "result=304", s.background_304s);
  set(obs::kProxyBackgroundResponses, "result=200", s.background_200s);
  set(obs::kProxyBackgroundResponses, "result=error", s.background_errors);
  set(obs::kProxyBackgroundBytes, "", s.background_bytes);

  // Client-observed latency: one series per serving tier (SWR serves land
  // under tier=browser, matching ProxyStats::LatencyFor) and one per fault
  // state. Each request is in exactly one tier series and one fault series.
  auto merge = [reg](std::string_view labels, const Histogram& h) {
    reg->Histo(obs::kRequestLatencyUs, labels)->Merge(h);
  };
  merge("tier=browser", s.latency_browser_us);
  merge("tier=edge", s.latency_edge_us);
  merge("tier=origin", s.latency_origin_us);
  merge("tier=offline", s.latency_offline_us);
  merge("tier=error", s.latency_error_us);
  merge("fault=ok", s.latency_ok_us);
  merge("fault=degraded", s.latency_degraded_us);
}

void SnapshotCache(obs::MetricsRegistry* reg, std::string_view cache_label,
                   const cache::HttpCacheStats& s) {
  std::string prefix(cache_label);
  auto set = [reg, &prefix](std::string_view name, std::string_view suffix,
                            uint64_t value) {
    std::string labels = suffix.empty() ? prefix : prefix + "," +
                                                       std::string(suffix);
    *reg->Counter(name, labels) = value;
  };
  set(obs::kCacheLookups, "result=fresh_hit", s.fresh_hits);
  set(obs::kCacheLookups, "result=stale_hit", s.stale_hits);
  set(obs::kCacheLookups, "result=miss", s.misses);
  set(obs::kCacheStores, "", s.stores);
  set(obs::kCacheStoreRejects, "", s.store_rejects);
  set(obs::kCacheRefreshes, "", s.refreshes);
  set(obs::kCachePurges, "", s.purges);
}

}  // namespace

void SpeedKitStack::CollectMetrics(const proxy::ProxyStats* merged_proxies) {
  if (metrics_ == nullptr) return;
  obs::MetricsRegistry* reg = metrics_.get();

  if (merged_proxies != nullptr) SnapshotProxy(reg, *merged_proxies);

  // CDN edges, aggregated across all edges of this stack. (Browser caches
  // live inside the clients the stack does not own; their effect shows up
  // in proxy.serves{tier=browser} and proxy.bytes{source=browser_cache}.)
  SnapshotCache(reg, "cache=edge", cdn_->TotalStats());
  const cache::EdgeFaultStats edge_faults = cdn_->TotalFaultStats();
  *reg->Counter(obs::kEdgeDownRejects) = edge_faults.down_rejects;
  *reg->Counter(obs::kEdgePurgesDropped) = edge_faults.purges_dropped;
  *reg->Counter(obs::kEdgePurgesDelayed) = edge_faults.purges_delayed;
  reg->Histo(obs::kEdgePurgeDelayUs)->Merge(edge_faults.purge_delay_us);

  if (pipeline_ != nullptr) {
    const invalidation::PipelineStats& p = pipeline_->stats();
    *reg->Counter(obs::kPipelineWritesSeen) = p.writes_seen;
    *reg->Counter(obs::kPipelineKeysInvalidated) = p.keys_invalidated;
    *reg->Counter(obs::kPipelinePurges, "result=scheduled") =
        p.purges_scheduled;
    *reg->Counter(obs::kPipelinePurges, "result=effective") =
        p.purges_effective;
    *reg->Counter(obs::kPipelinePurges, "result=dropped") = p.purges_dropped;
    *reg->Counter(obs::kPipelinePurges, "result=delayed") = p.purges_delayed;
    reg->Histo(obs::kPipelinePropagationLatencyUs)
        ->Merge(pipeline_->propagation_latency_us());
  }

  const origin::OriginStats& o = origin_->stats();
  *reg->Counter(obs::kOriginRequests) = o.requests;
  *reg->Counter(obs::kOriginRequests, "route=record") = o.record_requests;
  *reg->Counter(obs::kOriginRequests, "route=query") = o.query_requests;
  *reg->Counter(obs::kOriginRequests, "route=fragment") = o.fragment_requests;
  *reg->Counter(obs::kOriginRequests, "route=asset") = o.asset_requests;
  *reg->Counter(obs::kOriginRequests, "route=sketch") = o.sketch_requests;
  *reg->Counter(obs::kOriginNotModified) = o.not_modified;
  *reg->Counter(obs::kOriginRejectedUnavailable) = o.rejected_unavailable;
  *reg->Counter(obs::kOriginRenderCache, "result=hit") = o.render_cache_hits;
  *reg->Counter(obs::kOriginRenderCache, "result=miss") =
      o.render_cache_misses;
  *reg->Counter(obs::kOriginRenderTimeUs) =
      static_cast<uint64_t>(o.render_time_us);
  *reg->Counter(obs::kOriginRenderTimeSavedUs) =
      static_cast<uint64_t>(o.render_time_saved_us);

  const StalenessReport& sr = protocol_->staleness().report();
  *reg->Counter(obs::kStalenessReads) = sr.reads;
  *reg->Counter(obs::kStalenessStaleReads) = sr.stale_reads;
  *reg->Counter(obs::kStalenessClamped) = sr.clamped;
  *reg->Counter(obs::kStalenessDeltaViolations) = sr.delta_violations;
  *reg->Counter(obs::kStalenessExcusedStaleReads) = sr.excused_stale_reads;
  *reg->Gauge(obs::kStalenessMaxUs) = sr.max_staleness.micros();
  reg->Histo(obs::kStalenessUs)->Merge(protocol_->staleness().staleness_us());

  if (sketch::CacheSketch* sk = protocol_->sketch(); sk != nullptr) {
    *reg->Gauge(obs::kSketchEntries) = static_cast<int64_t>(sk->entries());
    *reg->Gauge(obs::kSketchSnapshotBytes) =
        static_cast<int64_t>(sk->SerializedSnapshot(clock_.Now()).size());
  }

  if (trace_sink_ != nullptr) {
    *reg->Counter(obs::kTraceEmitted) = trace_sink_->emitted();
    *reg->Counter(obs::kTraceDropped) = trace_sink_->dropped();
  }
}

}  // namespace speedkit::core
