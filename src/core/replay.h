// Trace replay: drive a recorded workload (workload/trace.h) through a
// stack, creating clients on demand. Replaying one trace against several
// stack variants is the apples-to-apples comparison mode — every variant
// sees byte-identical request and write sequences.
#ifndef SPEEDKIT_CORE_REPLAY_H_
#define SPEEDKIT_CORE_REPLAY_H_

#include <cstdint>
#include <map>
#include <memory>

#include "common/histogram.h"
#include "core/stack.h"
#include "proxy/client_proxy.h"
#include "workload/catalog.h"
#include "workload/trace.h"

namespace speedkit::core {

struct ReplayResult {
  uint64_t fetches = 0;
  uint64_t writes = 0;
  uint64_t errors = 0;
  Histogram latency_us;
  proxy::ProxyStats proxies;  // summed over replayed clients

  // For determinism comparisons: a cheap structural fingerprint.
  uint64_t Fingerprint() const;
};

class TraceReplayer {
 public:
  // `proxy_config` null = the stack's variant default.
  explicit TraceReplayer(SpeedKitStack* stack,
                         const proxy::ProxyConfig* proxy_config = nullptr);

  // Schedules every trace event on the stack's queue and runs to the end.
  // Reads are staleness-tracked when the response carries a version.
  ReplayResult Replay(const workload::Trace& trace);

 private:
  proxy::ClientProxy& ClientFor(uint64_t client_id);

  SpeedKitStack* stack_;
  proxy::ProxyConfig proxy_config_;
  std::map<uint64_t, std::unique_ptr<proxy::ClientProxy>> clients_;
};

// Synthesizes a session-shaped trace from the catalog (the "record" side
// of record/replay when no production log is available).
workload::Trace SynthesizeTrace(const workload::Catalog& catalog,
                                size_t num_clients, Duration duration,
                                double writes_per_sec, uint64_t seed);

}  // namespace speedkit::core

#endif  // SPEEDKIT_CORE_REPLAY_H_
