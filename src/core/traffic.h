// Session-driven traffic simulation: a population of clients browsing the
// catalog while a Poisson write process mutates it underneath them.
//
// This is the workhorse behind E2 (staleness vs. Δ), E3 (TTL policies),
// E4 (hits per layer) and E9 (baselines): each experiment builds a stack
// variant, runs identical traffic through it (same seeds), and reads the
// aggregated result. One page view issues one primary API fetch (record or
// query result); full page loads with assets are modelled separately by
// PageLoader.
#ifndef SPEEDKIT_CORE_TRAFFIC_H_
#define SPEEDKIT_CORE_TRAFFIC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/time_series.h"
#include "core/stack.h"
#include "proxy/client_proxy.h"
#include "workload/catalog.h"
#include "workload/session.h"
#include "workload/write_process.h"

namespace speedkit::core {

struct TrafficConfig {
  size_t num_clients = 50;
  Duration duration = Duration::Minutes(30);
  workload::SessionConfig session;
  Duration mean_session_gap = Duration::Seconds(45);
  double writes_per_sec = 2.0;
  double write_skew = 0.8;
  uint64_t seed_salt = 0;
  // Overrides the stack's variant-derived proxy settings when set.
  const proxy::ProxyConfig* proxy_config = nullptr;
  // Fleet memory policy: arena pool + idle-cache spill (kAuto turns spill
  // on only for large fleets, so small experiments are byte-for-byte
  // unaffected). Spill is behavior-neutral either way — freeze/thaw round
  // trips are lossless and draw no randomness.
  proxy::ClientPoolConfig pool;
};

struct TrafficResult {
  // Latency of primary API fetches (the paper's dynamic content).
  Histogram api_latency_us;
  // Latency of every fetch including shells.
  Histogram all_latency_us;
  uint64_t page_views = 0;
  uint64_t writes_applied = 0;
  proxy::ProxyStats proxies;  // summed over all clients

  // Per-minute timelines: warm-up dynamics of the cache hierarchy.
  TimeSeries hit_ratio_timeline{Duration::Minutes(1)};   // 1 = any cache hit
  TimeSeries latency_ms_timeline{Duration::Minutes(1)};  // per-fetch ms
  TimeSeries stale_timeline{Duration::Minutes(1)};       // 1 = stale read

  double BrowserHitRatio() const;
  double EdgeHitRatio() const;
  double OriginRatio() const;

  // Accumulates another run's results into this one (histograms merged,
  // counters summed, timelines added bucket-wise). Used by the multi-seed
  // experiment harness; merge order must be fixed for determinism.
  void Merge(const TrafficResult& other);
};

class TrafficSimulation {
 public:
  TrafficSimulation(SpeedKitStack* stack, const workload::Catalog* catalog,
                    const TrafficConfig& config);

  // Runs the configured duration; returns aggregated results. Staleness
  // numbers live in stack->staleness().
  TrafficResult Run();

  // Spill accounting for the run (zeros when spill never engaged).
  proxy::ClientPoolSpillStats SpillStats() const { return pool_->SpillStats(); }

 private:
  void ScheduleSession(size_t client_index, SimTime at);
  void ScheduleNextWrite(SimTime from);
  void ScheduleSpillSweep(SimTime at);
  void ExecutePageView(size_t client_index, const workload::PageView& view);

  SpeedKitStack* stack_;
  const workload::Catalog* catalog_;
  TrafficConfig config_;
  SimTime end_;

  // One immutable popularity CDF for the whole fleet (O(catalog) doubles
  // once, not per client).
  workload::ZipfGenerator popularity_;
  // Clients live in the pool's arena and record into its shared stats
  // sink; clients_ holds the owned subset in creation order, indexed in
  // lockstep with session_gens_.
  std::unique_ptr<proxy::ClientPool> pool_;
  std::vector<proxy::ClientProxy*> clients_;
  std::vector<workload::SessionGenerator> session_gens_;
  workload::WriteProcess writes_;
  Pcg32 rng_;
  TrafficResult result_;
};

}  // namespace speedkit::core

#endif  // SPEEDKIT_CORE_TRAFFIC_H_
