#include "core/cart_traffic.h"

#include <algorithm>
#include <string>

namespace speedkit::core {

void CartTrafficResult::Merge(const CartTrafficResult& other) {
  txns_attempted += other.txns_attempted;
  txns_committed += other.txns_committed;
  txns_aborted += other.txns_aborted;
  txn_retries += other.txn_retries;
  anomalies += other.anomalies;
  anomaly_checks_clamped += other.anomaly_checks_clamped;
  writes_applied += other.writes_applied;
  txn_latency_us.Merge(other.txn_latency_us);
  proxies += other.proxies;
}

CartTrafficSimulation::CartTrafficSimulation(SpeedKitStack* stack,
                                             const workload::Catalog* catalog,
                                             const CartTrafficConfig& config)
    : stack_(stack),
      catalog_(catalog),
      config_(config),
      end_(stack->clock().Now() + config.duration),
      popularity_(catalog->num_products(), config.product_skew),
      pool_(stack->MakeClientPool(config.pool)),
      writes_(catalog->num_products(), config.writes_per_sec,
              config.write_skew, stack->ForkRng(1000 + config.seed_salt)),
      rng_(stack->ForkRng(2000 + config.seed_salt)) {
  proxy::ProxyConfig pc = config_.proxy_config != nullptr
                              ? *config_.proxy_config
                              : stack_->DefaultProxyConfig();
  clients_.reserve(config_.num_clients);
  txn_rngs_.reserve(config_.num_clients);
  for (size_t i = 0; i < config_.num_clients; ++i) {
    // Sharded fleets simulate only the clients their edge owns; salts stay
    // keyed by the GLOBAL client index so a client's transaction stream is
    // a function of (shard stream, id), not of shard population.
    uint64_t client_id = i + 1;
    if (!stack_->OwnsClient(client_id)) continue;
    clients_.push_back(pool_->MakeClient(pc, client_id));
    txn_rngs_.push_back(stack_->ForkRng(4000 + i));
  }
}

CartTrafficResult CartTrafficSimulation::Run() {
  SimTime start = stack_->clock().Now();
  // Stagger first checkouts across the first gap so clients don't thunder
  // in lock-step.
  for (size_t i = 0; i < clients_.size(); ++i) {
    ScheduleTxn(i, start + Duration::Seconds(rng_.Uniform(
                              0.0, config_.mean_txn_gap.seconds())));
  }
  ScheduleNextWrite(start);
  stack_->AdvanceTo(end_);
  result_.proxies += pool_->stats();
  return result_;
}

void CartTrafficSimulation::ScheduleTxn(size_t client_index, SimTime at) {
  if (at >= end_) return;
  stack_->events().At(at, [this, client_index]() {
    ExecuteTxn(client_index);
    Duration gap = Duration::Seconds(
        rng_.Exponential(1.0 / config_.mean_txn_gap.seconds()));
    ScheduleTxn(client_index, stack_->clock().Now() + gap);
  });
}

void CartTrafficSimulation::ScheduleNextWrite(SimTime from) {
  workload::WriteEvent ev = writes_.Next(from);
  if (ev.at >= end_) return;
  stack_->events().At(ev.at, [this, ev]() {
    Pcg32 wrng = stack_->ForkRng(0x77);
    stack_->store().Update(catalog_->ProductId(ev.object_rank),
                           catalog_->PriceUpdate(ev.object_rank, wrng),
                           stack_->clock().Now());
    result_.writes_applied++;
    ScheduleNextWrite(stack_->clock().Now());
  });
}

void CartTrafficSimulation::ExecuteTxn(size_t client_index) {
  Pcg32& rng = txn_rngs_[client_index];
  // K distinct Zipf picks: the cart's lines. Rejection over the popularity
  // CDF, with a linear fallback so tiny catalogs still terminate.
  std::vector<size_t> ranks;
  size_t want = std::min(config_.keys_per_txn, catalog_->num_products());
  for (size_t attempt = 0; ranks.size() < want && attempt < 16 * want;
       ++attempt) {
    size_t rank = popularity_.Sample(rng);
    if (std::find(ranks.begin(), ranks.end(), rank) == ranks.end()) {
      ranks.push_back(rank);
    }
  }
  for (size_t rank = 0; ranks.size() < want; ++rank) {
    if (std::find(ranks.begin(), ranks.end(), rank) == ranks.end()) {
      ranks.push_back(rank);
    }
  }
  std::vector<std::string> urls;
  urls.reserve(ranks.size());
  for (size_t rank : ranks) urls.push_back(catalog_->ProductUrl(rank));

  proxy::ClientProxy& client = *clients_[client_index];
  proxy::TxnResult txn = client.FetchTxn(urls);
  result_.txns_attempted++;
  result_.txn_retries += static_cast<uint64_t>(txn.retries);
  if (txn.aborted) {
    result_.txns_aborted++;
    return;
  }
  result_.txns_committed++;
  result_.txn_latency_us.Add(txn.latency.micros());

  // Audit the committed read set against the version authority. Reads are
  // also dated individually so the staleness instrument (E2's numbers)
  // covers cart traffic too.
  std::vector<coherence::ReadVersion> reads;
  reads.reserve(txn.reads.size());
  SimTime now = stack_->clock().Now();
  for (size_t i = 0; i < txn.reads.size(); ++i) {
    const proxy::FetchResult& r = txn.reads[i];
    if (!r.response.ok() || r.response.object_version == 0) continue;
    stack_->staleness().RecordRead(urls[i], r.response.object_version, now);
    reads.push_back({urls[i], r.response.object_version});
  }
  coherence::SnapshotCheck check = stack_->staleness().CheckSnapshot(reads);
  if (!check.consistent) result_.anomalies++;
  if (check.clamped) result_.anomaly_checks_clamped++;
}

}  // namespace speedkit::core
