// Workload traces: a recorded, replayable sequence of fetches and writes.
//
// The paper's evaluation is grounded in production traffic we cannot ship;
// traces are the bridge — any workload (synthetic or converted from real
// logs) serializes to a line-oriented text format and replays
// deterministically against any stack variant, so competing configurations
// are compared on *identical* request sequences.
//
// Format (tab-separated, one event per line):
//   F <at_us> <client_id> <url>
//   W <at_us> <record_id> <field>=<typed-value> ...
// typed-value: i:<int> | d:<double> | b:0|1 | s:<escaped string>
#ifndef SPEEDKIT_WORKLOAD_TRACE_H_
#define SPEEDKIT_WORKLOAD_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "storage/record.h"

namespace speedkit::workload {

struct TraceEvent {
  enum class Kind { kFetch, kWrite };
  Kind kind = Kind::kFetch;
  SimTime at;
  // kFetch:
  uint64_t client_id = 0;
  std::string url;
  // kWrite:
  std::string record_id;
  std::map<std::string, storage::FieldValue> fields;
};

class Trace {
 public:
  void AddFetch(SimTime at, uint64_t client_id, std::string url);
  void AddWrite(SimTime at, std::string record_id,
                std::map<std::string, storage::FieldValue> fields);

  // Events sorted by time (stable for ties).
  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  // Sorts by timestamp; call after out-of-order construction.
  void SortByTime();

  std::string Serialize() const;
  static Result<Trace> Deserialize(std::string_view text);

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace speedkit::workload

#endif  // SPEEDKIT_WORKLOAD_TRACE_H_
