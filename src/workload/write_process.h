// Poisson write traffic against the catalog — the stand-in for the paper's
// production update streams (price changes, stock updates, CMS edits).
//
// Global write arrivals are Poisson with rate `writes_per_sec`; each write
// picks its target object from a Zipf distribution (hot objects are also
// written more, the adversarial case for caching: popular AND volatile).
// An independent write-skew exponent lets experiments decouple read and
// write popularity.
#ifndef SPEEDKIT_WORKLOAD_WRITE_PROCESS_H_
#define SPEEDKIT_WORKLOAD_WRITE_PROCESS_H_

#include <cstddef>

#include "common/random.h"
#include "common/sim_time.h"
#include "workload/zipf.h"

namespace speedkit::workload {

struct WriteEvent {
  SimTime at;
  size_t object_rank;
};

class WriteProcess {
 public:
  WriteProcess(size_t num_objects, double writes_per_sec, double write_skew,
               Pcg32 rng);

  // The next write at-or-after `from`.
  WriteEvent Next(SimTime from);

  double writes_per_sec() const { return writes_per_sec_; }

 private:
  double writes_per_sec_;
  ZipfGenerator popularity_;
  Pcg32 rng_;
};

}  // namespace speedkit::workload

#endif  // SPEEDKIT_WORKLOAD_WRITE_PROCESS_H_
