#include "workload/write_process.h"

namespace speedkit::workload {

WriteProcess::WriteProcess(size_t num_objects, double writes_per_sec,
                           double write_skew, Pcg32 rng)
    : writes_per_sec_(writes_per_sec),
      popularity_(num_objects, write_skew),
      rng_(rng) {}

WriteEvent WriteProcess::Next(SimTime from) {
  if (writes_per_sec_ <= 0) {
    return WriteEvent{SimTime::Max(), 0};
  }
  Duration gap = Duration::Seconds(rng_.Exponential(writes_per_sec_));
  return WriteEvent{from + gap, popularity_.Sample(rng_)};
}

}  // namespace speedkit::workload
