#include "workload/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace speedkit::workload {

namespace {

std::string EscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 't':
          out.push_back('\t');
          break;
        case 'n':
          out.push_back('\n');
          break;
        default:
          out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string EncodeValue(const storage::FieldValue& v) {
  switch (v.index()) {
    case 0:
      return "i:" + std::to_string(std::get<int64_t>(v));
    case 1:
      return "d:" + StrFormat("%.17g", std::get<double>(v));
    case 2:
      return "s:" + EscapeString(std::get<std::string>(v));
    case 3:
      return std::string("b:") + (std::get<bool>(v) ? "1" : "0");
  }
  return "s:";
}

Result<storage::FieldValue> DecodeValue(std::string_view encoded) {
  if (encoded.size() < 2 || encoded[1] != ':') {
    return Status::Corruption("bad field value: " + std::string(encoded));
  }
  std::string_view payload = encoded.substr(2);
  switch (encoded[0]) {
    case 'i': {
      auto n = ParseInt64(payload);
      if (!n.has_value()) {
        // Allow negatives: ParseInt64 is unsigned-only by design.
        if (!payload.empty() && payload[0] == '-') {
          auto m = ParseInt64(payload.substr(1));
          if (m.has_value()) return storage::FieldValue(-*m);
        }
        return Status::Corruption("bad int: " + std::string(payload));
      }
      return storage::FieldValue(*n);
    }
    case 'd': {
      char* end = nullptr;
      std::string buf(payload);
      double d = std::strtod(buf.c_str(), &end);
      if (end == buf.c_str()) {
        return Status::Corruption("bad double: " + buf);
      }
      return storage::FieldValue(d);
    }
    case 's':
      return storage::FieldValue(UnescapeString(payload));
    case 'b':
      return storage::FieldValue(payload == "1");
  }
  return Status::Corruption("unknown value tag: " + std::string(encoded));
}

}  // namespace

void Trace::AddFetch(SimTime at, uint64_t client_id, std::string url) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kFetch;
  ev.at = at;
  ev.client_id = client_id;
  ev.url = std::move(url);
  events_.push_back(std::move(ev));
}

void Trace::AddWrite(SimTime at, std::string record_id,
                     std::map<std::string, storage::FieldValue> fields) {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kWrite;
  ev.at = at;
  ev.record_id = std::move(record_id);
  ev.fields = std::move(fields);
  events_.push_back(std::move(ev));
}

void Trace::SortByTime() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
}

std::string Trace::Serialize() const {
  std::string out;
  for (const TraceEvent& ev : events_) {
    if (ev.kind == TraceEvent::Kind::kFetch) {
      out += StrFormat("F\t%lld\t%llu\t", static_cast<long long>(ev.at.micros()),
                       static_cast<unsigned long long>(ev.client_id));
      out += EscapeString(ev.url);
    } else {
      out += StrFormat("W\t%lld\t", static_cast<long long>(ev.at.micros()));
      out += EscapeString(ev.record_id);
      for (const auto& [name, value] : ev.fields) {
        out += "\t" + EscapeString(name) + "=" + EncodeValue(value);
      }
    }
    out += "\n";
  }
  return out;
}

Result<Trace> Trace::Deserialize(std::string_view text) {
  Trace trace;
  for (std::string_view line : SplitView(text, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string_view> parts;
    size_t start = 0;
    while (true) {
      size_t pos = line.find('\t', start);
      if (pos == std::string_view::npos) {
        parts.push_back(line.substr(start));
        break;
      }
      parts.push_back(line.substr(start, pos - start));
      start = pos + 1;
    }
    if (parts.size() < 3) {
      return Status::Corruption("short trace line: " + std::string(line));
    }
    auto at_us = ParseInt64(parts[1]);
    if (!at_us.has_value()) {
      return Status::Corruption("bad timestamp: " + std::string(parts[1]));
    }
    SimTime at = SimTime::FromMicros(*at_us);
    if (parts[0] == "F") {
      if (parts.size() != 4) {
        return Status::Corruption("bad fetch line: " + std::string(line));
      }
      auto client = ParseInt64(parts[2]);
      if (!client.has_value()) {
        return Status::Corruption("bad client id: " + std::string(parts[2]));
      }
      trace.AddFetch(at, static_cast<uint64_t>(*client),
                     UnescapeString(parts[3]));
    } else if (parts[0] == "W") {
      std::map<std::string, storage::FieldValue> fields;
      for (size_t i = 3; i < parts.size(); ++i) {
        size_t eq = parts[i].find('=');
        if (eq == std::string_view::npos) {
          return Status::Corruption("bad field: " + std::string(parts[i]));
        }
        auto value = DecodeValue(parts[i].substr(eq + 1));
        if (!value.ok()) return value.status();
        fields[UnescapeString(parts[i].substr(0, eq))] =
            std::move(value).value();
      }
      trace.AddWrite(at, UnescapeString(parts[2]), std::move(fields));
    } else {
      return Status::Corruption("unknown trace event kind: " +
                                std::string(parts[0]));
    }
  }
  return trace;
}

}  // namespace speedkit::workload
