#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

namespace speedkit::workload {

ZipfGenerator::ZipfGenerator(size_t n, double s) : s_(s) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double total = 0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s_);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfGenerator::Sample(Pcg32& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfGenerator::Pmf(size_t rank) const {
  if (rank >= cdf_.size()) return 0.0;
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace speedkit::workload
