#include "workload/catalog.h"

#include "invalidation/pipeline.h"

namespace speedkit::workload {

Catalog::Catalog(const CatalogConfig& config, Pcg32 rng) : config_(config) {
  categories_.reserve(config_.num_products);
  base_price_.reserve(config_.num_products);
  for (size_t i = 0; i < config_.num_products; ++i) {
    categories_.push_back(
        static_cast<int>(rng.NextBounded(config_.num_categories)));
    base_price_.push_back(rng.Uniform(config_.min_price, config_.max_price));
  }
}

std::string Catalog::ProductId(size_t rank) const {
  return "p" + std::to_string(rank);
}

std::string Catalog::ProductUrl(size_t rank) const {
  return invalidation::RecordCacheKey(ProductId(rank));
}

int Catalog::CategoryOf(size_t rank) const {
  return categories_[rank % categories_.size()];
}

std::string Catalog::CategoryQueryId(int category) const {
  return "cat-" + std::to_string(category);
}

std::string Catalog::CategoryUrl(int category) const {
  return invalidation::QueryCacheKey(CategoryQueryId(category));
}

invalidation::Query Catalog::CategoryQuery(int category) const {
  invalidation::Query q;
  q.id = CategoryQueryId(category);
  q.conditions.push_back(invalidation::Condition{
      "category", invalidation::Op::kEq, static_cast<int64_t>(category)});
  return q;
}

void Catalog::Populate(storage::ObjectStore* store, SimTime now) const {
  for (size_t i = 0; i < config_.num_products; ++i) {
    store->Put(ProductId(i), InitialFields(i), now);
  }
}

std::map<std::string, storage::FieldValue> Catalog::InitialFields(
    size_t rank) const {
  return {
      {"category", static_cast<int64_t>(CategoryOf(rank))},
      {"price", base_price_[rank % base_price_.size()]},
      {"stock", static_cast<int64_t>(100)},
      {"on_sale", false},
      {"title", "Product " + std::to_string(rank)},
  };
}

std::map<std::string, storage::FieldValue> Catalog::PriceUpdate(
    size_t rank, Pcg32& rng) const {
  double base = base_price_[rank % base_price_.size()];
  double price = base * rng.Uniform(0.8, 1.2);
  return {
      {"price", price},
      {"on_sale", price < base},
      {"stock", static_cast<int64_t>(rng.NextBounded(200))},
  };
}

}  // namespace speedkit::workload
