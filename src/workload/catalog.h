// Synthetic e-commerce catalog — the data the simulated shop serves.
//
// Products carry the fields the invalidation pipeline's query predicates
// range over (category, price, stock, on_sale). URLs follow the same key
// convention the origin and pipeline share, so a price update on product
// p42 invalidates both its detail page and the "category == 7" listing
// that contains it.
#ifndef SPEEDKIT_WORKLOAD_CATALOG_H_
#define SPEEDKIT_WORKLOAD_CATALOG_H_

#include <cstddef>
#include <map>
#include <string>

#include "common/random.h"
#include "common/sim_time.h"
#include "invalidation/predicate.h"
#include "storage/object_store.h"

namespace speedkit::workload {

struct CatalogConfig {
  size_t num_products = 10000;
  int num_categories = 50;
  double min_price = 5.0;
  double max_price = 500.0;
};

class Catalog {
 public:
  Catalog(const CatalogConfig& config, Pcg32 rng);

  size_t num_products() const { return config_.num_products; }
  int num_categories() const { return config_.num_categories; }

  std::string ProductId(size_t rank) const;
  // Cache key / URL of the product detail resource (matches
  // invalidation::RecordCacheKey).
  std::string ProductUrl(size_t rank) const;

  int CategoryOf(size_t rank) const;
  std::string CategoryQueryId(int category) const;
  std::string CategoryUrl(int category) const;

  // The listing query for a category: category == c.
  invalidation::Query CategoryQuery(int category) const;

  // Inserts all products into `store`.
  void Populate(storage::ObjectStore* store, SimTime now) const;

  // Field images for writes.
  std::map<std::string, storage::FieldValue> InitialFields(size_t rank) const;
  std::map<std::string, storage::FieldValue> PriceUpdate(size_t rank,
                                                         Pcg32& rng) const;

 private:
  CatalogConfig config_;
  std::vector<int> categories_;    // rank -> category
  std::vector<double> base_price_;  // rank -> launch price
};

}  // namespace speedkit::workload

#endif  // SPEEDKIT_WORKLOAD_CATALOG_H_
