// Zipfian popularity sampling.
//
// Web object popularity is classically Zipf-like (Breslau et al. 1999);
// every Speed Kit experiment that sweeps "skew" sweeps the exponent here.
// Sampling is inverse-CDF over a precomputed table: O(n) setup, O(log n)
// per sample, exact distribution (no YCSB-style approximation error).
#ifndef SPEEDKIT_WORKLOAD_ZIPF_H_
#define SPEEDKIT_WORKLOAD_ZIPF_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace speedkit::workload {

class ZipfGenerator {
 public:
  // Ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^s. s == 0 is
  // uniform.
  ZipfGenerator(size_t n, double s);

  size_t Sample(Pcg32& rng) const;

  // Probability mass of a given rank.
  double Pmf(size_t rank) const;

  size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;
};

}  // namespace speedkit::workload

#endif  // SPEEDKIT_WORKLOAD_ZIPF_H_
