// E-commerce browsing sessions — the shape of the paper's field traffic.
//
// A session is a first-order Markov walk over page types (home -> category
// -> product -> ... -> cart) with exponential think times and Zipfian
// product choice. Session structure matters for caching results because it
// concentrates repeat views (back-navigation, related products) inside a
// short window — exactly where browser caches shine.
#ifndef SPEEDKIT_WORKLOAD_SESSION_H_
#define SPEEDKIT_WORKLOAD_SESSION_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/sim_time.h"
#include "workload/catalog.h"
#include "workload/zipf.h"

namespace speedkit::workload {

enum class PageType { kHome, kCategory, kProduct, kCart };

struct PageView {
  PageType type = PageType::kHome;
  size_t product_rank = 0;  // for kProduct
  int category = 0;         // for kCategory (and the product's category)
  Duration think_time_before = Duration::Zero();
};

struct SessionConfig {
  double product_skew = 0.9;       // Zipf exponent for product choice
  Duration mean_think_time = Duration::Seconds(8);
  int max_pages = 30;              // hard stop against unbounded walks
  double continue_probability = 0.75;
};

class SessionGenerator {
 public:
  // Builds and owns a private popularity CDF — fine for one-off use, but
  // the table is O(catalog) doubles; fleets must not pay it per client.
  SessionGenerator(const Catalog* catalog, const SessionConfig& config,
                   Pcg32 rng);

  // Shares one immutable CDF across all generators of a run (the fleet
  // path: a million clients, one 16 KB table). `popularity` must outlive
  // the generator and be built with config.product_skew — sampling draws
  // are identical to the owning constructor's, so runs fingerprint the
  // same either way.
  SessionGenerator(const Catalog* catalog, const SessionConfig& config,
                   const ZipfGenerator* popularity, Pcg32 rng);

  // One full session for one (anonymous) visitor.
  std::vector<PageView> NextSession();

 private:
  PageView NextPage(const PageView& current);

  const Catalog* catalog_;
  SessionConfig config_;
  std::unique_ptr<const ZipfGenerator> owned_popularity_;  // null when shared
  const ZipfGenerator* product_popularity_;
  Pcg32 rng_;
};

}  // namespace speedkit::workload

#endif  // SPEEDKIT_WORKLOAD_SESSION_H_
