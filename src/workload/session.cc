#include "workload/session.h"

namespace speedkit::workload {

SessionGenerator::SessionGenerator(const Catalog* catalog,
                                   const SessionConfig& config, Pcg32 rng)
    : catalog_(catalog),
      config_(config),
      owned_popularity_(std::make_unique<ZipfGenerator>(
          catalog->num_products(), config.product_skew)),
      product_popularity_(owned_popularity_.get()),
      rng_(rng) {}

SessionGenerator::SessionGenerator(const Catalog* catalog,
                                   const SessionConfig& config,
                                   const ZipfGenerator* popularity, Pcg32 rng)
    : catalog_(catalog),
      config_(config),
      product_popularity_(popularity),
      rng_(rng) {}

std::vector<PageView> SessionGenerator::NextSession() {
  std::vector<PageView> pages;
  PageView current;
  // Sessions open on the homepage (70%) or deep-link to a product (30%),
  // mirroring direct vs. search/ad entry.
  if (rng_.WithProbability(0.7)) {
    current.type = PageType::kHome;
  } else {
    current.type = PageType::kProduct;
    current.product_rank = product_popularity_->Sample(rng_);
    current.category = catalog_->CategoryOf(current.product_rank);
  }
  current.think_time_before = Duration::Zero();
  pages.push_back(current);

  while (static_cast<int>(pages.size()) < config_.max_pages &&
         rng_.WithProbability(config_.continue_probability)) {
    PageView next = NextPage(pages.back());
    next.think_time_before = Duration::Seconds(
        rng_.Exponential(1.0 / config_.mean_think_time.seconds()));
    pages.push_back(next);
    if (next.type == PageType::kCart) break;  // checkout ends the session
  }
  return pages;
}

PageView SessionGenerator::NextPage(const PageView& current) {
  PageView next;
  double u = rng_.NextDouble();
  switch (current.type) {
    case PageType::kHome:
      if (u < 0.7) {
        next.type = PageType::kCategory;
        next.category =
            static_cast<int>(rng_.NextBounded(catalog_->num_categories()));
      } else {
        next.type = PageType::kProduct;
        next.product_rank = product_popularity_->Sample(rng_);
        next.category = catalog_->CategoryOf(next.product_rank);
      }
      break;
    case PageType::kCategory:
      if (u < 0.75) {
        // Pick within the current category: resample until the category
        // matches (bounded tries keep determinism cheap).
        next.type = PageType::kProduct;
        next.product_rank = product_popularity_->Sample(rng_);
        for (int tries = 0;
             tries < 8 && catalog_->CategoryOf(next.product_rank) != current.category;
             ++tries) {
          next.product_rank = product_popularity_->Sample(rng_);
        }
        next.category = catalog_->CategoryOf(next.product_rank);
      } else {
        next.type = PageType::kCategory;
        next.category =
            static_cast<int>(rng_.NextBounded(catalog_->num_categories()));
      }
      break;
    case PageType::kProduct:
      if (u < 0.45) {
        next.type = PageType::kProduct;  // related product
        next.product_rank = product_popularity_->Sample(rng_);
        next.category = catalog_->CategoryOf(next.product_rank);
      } else if (u < 0.75) {
        next.type = PageType::kCategory;  // back to the listing
        next.category = current.category;
      } else {
        next.type = PageType::kCart;
      }
      break;
    case PageType::kCart:
      next.type = PageType::kHome;
      break;
  }
  return next;
}

}  // namespace speedkit::workload
