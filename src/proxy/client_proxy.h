// The Speed Kit client proxy — the Service Worker analogue.
//
// Intercepts every request the (simulated) page makes and implements the
// paper's request flow:
//
//   1. refresh the Cache Sketch snapshot if it is older than Δ (blocking,
//      so the staleness bound below holds unconditionally);
//   2. look up the browser cache; a fresh hit is served ONLY if the sketch
//      does not flag the key — a flagged key forces a revalidation that
//      bypasses every shared cache on the way to the origin;
//   3. otherwise fetch through the client's CDN edge (fresh edge hits are
//      served from the edge; stale edge entries revalidate at the origin
//      with their validator);
//   4. if the origin is down and offline mode is on, serve the most recent
//      browser copy even if expired (availability over freshness).
//
// Degraded-mode decision order (fault injection, E14): every network hop
// is subject to timeouts with bounded exponential-backoff retries; when
// the edge path stays unreachable the request reroutes to pass-through
// against the original site; when the upstream fails during an edge
// revalidation the stale edge copy is served (stale-if-error); when the
// origin itself is unreachable the offline cache is the last resort.
//
// Δ-atomicity: a value written at time W can only be served from a cache
// after W if the client's snapshot predates W; snapshots are at most Δ old
// at check time, so no read observes data overwritten more than
// Δ + (purge propagation) ago.
//
// GDPR: user-scoped blocks are joined on-device (template + PII vault);
// every request that leaves the device first passes the BoundaryAuditor.
#ifndef SPEEDKIT_PROXY_CLIENT_PROXY_H_
#define SPEEDKIT_PROXY_CLIENT_PROXY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cdn.h"
#include "cache/http_cache.h"
#include "coherence/protocol.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/sim_time.h"
#include "obs/trace.h"
#include "http/message.h"
#include "origin/origin_server.h"
#include "personalization/dynamic_block.h"
#include "personalization/pii.h"
#include "personalization/segmentation.h"
#include "sim/clock.h"
#include "sim/network.h"
#include "sketch/client_sketch.h"

namespace speedkit::proxy {

enum class ServedFrom {
  kBrowserCache,
  kEdgeCache,
  kOrigin,
  kOfflineCache,  // stale browser copy served during an origin outage
  kError,
};

std::string_view ServedFromName(ServedFrom source);

struct FetchResult {
  http::HttpResponse response;
  Duration latency = Duration::Zero();
  ServedFrom source = ServedFrom::kError;
  bool revalidated = false;    // a conditional round trip happened
  bool sketch_bypass = false;  // the sketch forced this to the network
};

struct BlockResult {
  std::string content;
  Duration latency = Duration::Zero();
  ServedFrom source = ServedFrom::kError;
  bool rendered_on_device = false;  // GDPR-mode local join happened
};

// One multi-key read-only transaction (FetchTxn). All reads issue at the
// same sim instant; what "consistent" means depends on the stack's
// coherence mode — Δ-atomic forces a snapshot refresh at the txn instant,
// serializable validates read versions against the origin and retries
// mismatches, fixed-TTL does neither (its anomaly rate is the baseline).
struct TxnResult {
  std::vector<FetchResult> reads;
  Duration latency = Duration::Zero();
  int retries = 0;      // validation rounds that re-fetched at least one key
  bool aborted = false; // serializable only: retry budget exhausted
};

struct ProxyConfig {
  bool enabled = true;      // false: vanilla browser (cache + origin only)
  bool use_cdn = true;
  bool use_sketch = true;
  bool gdpr_mode = true;    // user blocks via on-device join
  bool offline_mode = true;
  // Serve TTL-expired (but sketch-clean) copies instantly and revalidate
  // in the background. Safe: a genuinely changed key is flagged by the
  // sketch and never takes this path.
  bool stale_while_revalidate = true;
  // Rewrite /assets/ requests to the optimized variant (skopt=1): fewer
  // bytes per asset via the acceleration service's transcoding.
  bool optimize_assets = true;
  Duration sketch_refresh_interval = Duration::Seconds(30);  // Δ
  // Serializable mode: validation rounds a transaction may retry before
  // aborting (0 = validate once, never re-fetch).
  int txn_max_retries = 2;
  size_t browser_cache_bytes = 50u * 1024 * 1024;
  // Service-worker interception cost per request on the device.
  Duration device_overhead = Duration::Micros(300);
  // On-device template-join cost for a user-scoped block.
  Duration render_overhead = Duration::Millis(1);

  // Degraded-mode handling (the paper's "reroute or fall back" rule).
  // A request attempt that the network does not deliver costs a timeout,
  // then up to `max_retries` retries with exponential backoff + jitter;
  // when the accelerated edge path stays unreachable the proxy falls back
  // to pass-through against the original site, and when the origin itself
  // is unreachable, to the offline cache.
  Duration request_timeout = Duration::Seconds(2);
  int max_retries = 2;
  Duration retry_backoff = Duration::Millis(200);  // doubles per retry
  double retry_jitter = 0.5;  // uniform extra fraction of the backoff

  // How concurrent misses behave while an origin fetch for the same key is
  // already in flight at the client's edge (see cache::OriginFlightMode).
  // kInstant (the legacy instantaneous-store model) is the default and
  // keeps every pre-existing run bit-identical; kHerd exposes thundering
  // herds; kCoalesce collapses them single-flight style.
  cache::OriginFlightMode origin_flight = cache::OriginFlightMode::kInstant;
};

// Per-client request accounting. Every request the page makes lands in
// exactly one serve-source bucket, so the reconciliation invariant
//
//   browser_hits + swr_serves + edge_hits + origin_fetches
//     + offline_serves + errors == requests
//
// holds at all times (see ServedTotal()). Traffic caused by background
// SWR revalidations is tracked in the background_* fields only — it has
// no matching `requests` increment by design.
struct ProxyStats {
  uint64_t requests = 0;
  uint64_t browser_hits = 0;
  uint64_t edge_hits = 0;      // served via the edge (fresh hit or 304)
  uint64_t origin_fetches = 0;
  uint64_t revalidations_304 = 0;
  uint64_t revalidations_200 = 0;
  uint64_t sketch_bypasses = 0;
  uint64_t offline_serves = 0;
  uint64_t errors = 0;
  uint64_t sketch_refreshes = 0;
  uint64_t sketch_bytes = 0;
  uint64_t swr_serves = 0;  // stale served while revalidating in background
  uint64_t bytes_from_browser_cache = 0;
  uint64_t bytes_over_network = 0;

  // Degraded-mode accounting. Like sketch_bypasses these annotate requests
  // that still land in exactly one serve bucket above, so ServedTotal()
  // keeps reconciling: a timed-out request that eventually got through is
  // an edge_hit/origin_fetch, a rerouted one an origin_fetch/offline/error.
  uint64_t timeouts = 0;         // attempts the network never delivered
  uint64_t retries = 0;          // re-attempts after a timeout
  uint64_t fallback_serves = 0;  // served via a degraded path: pass-through
                                 // reroute, stale-if-error at the edge, or
                                 // an offline copy after a failed reroute

  // Background (stale-while-revalidate) traffic, off the request path.
  uint64_t background_revalidations = 0;  // revalidations launched
  uint64_t background_304s = 0;           // ... answered with a 304
  uint64_t background_200s = 0;           // ... answered with a full body
  uint64_t background_errors = 0;         // ... failed (origin down etc.)
  uint64_t background_bytes = 0;          // wire bytes of background traffic

  // Multi-key read-only transactions (FetchTxn). Each member read is an
  // ordinary request and lands in the serve buckets above; these count
  // whole transactions. Validation rounds are serializable-mode only.
  uint64_t txn_begins = 0;
  uint64_t txn_commits = 0;
  uint64_t txn_aborts = 0;            // retry budget exhausted (or origin down)
  uint64_t txn_retries = 0;           // rounds that re-fetched stale reads
  uint64_t txn_validations = 0;       // validation RTTs issued
  uint64_t txn_validation_bytes = 0;  // wire bytes of validation traffic

  // Client-observed latency distributions (us), filled unconditionally so
  // every harness gets a per-tier breakdown whether or not the obs layer
  // is on. Each request lands in exactly ONE tier histogram — keyed by its
  // serve bucket, with SWR serves under `browser` (that is the cache that
  // answered) — and in exactly one of ok/degraded: `degraded` means some
  // fault-handling path (timeout, retry, reroute, stale-if-error, offline)
  // fired on the way, whatever tier finally served. Recording draws no
  // randomness, so the histograms cannot perturb seeded runs.
  Histogram latency_browser_us;
  Histogram latency_edge_us;
  Histogram latency_origin_us;
  Histogram latency_offline_us;
  Histogram latency_error_us;
  Histogram latency_ok_us;
  Histogram latency_degraded_us;
  // End-to-end transaction latency (us): reads + any snapshot refresh,
  // validation RTTs and retry re-fetches.
  Histogram latency_txn_us;

  // The tier histogram for `source` (see above; never null).
  Histogram* LatencyFor(ServedFrom source) {
    switch (source) {
      case ServedFrom::kBrowserCache: return &latency_browser_us;
      case ServedFrom::kEdgeCache: return &latency_edge_us;
      case ServedFrom::kOrigin: return &latency_origin_us;
      case ServedFrom::kOfflineCache: return &latency_offline_us;
      case ServedFrom::kError: return &latency_error_us;
    }
    return &latency_error_us;
  }

  // Sum of the per-source serve counts; equals `requests` when the
  // accounting reconciles.
  uint64_t ServedTotal() const {
    return browser_hits + swr_serves + edge_hits + origin_fetches +
           offline_serves + errors;
  }

  // Field-wise accumulation — the single place that knows every counter
  // AND histogram, used by traffic aggregation, trace replay and the
  // multi-seed merge (dropping a field here silently corrupts every
  // aggregated table, so new stats must be added to both lists).
  ProxyStats& operator+=(const ProxyStats& other) {
    requests += other.requests;
    browser_hits += other.browser_hits;
    edge_hits += other.edge_hits;
    origin_fetches += other.origin_fetches;
    revalidations_304 += other.revalidations_304;
    revalidations_200 += other.revalidations_200;
    sketch_bypasses += other.sketch_bypasses;
    offline_serves += other.offline_serves;
    errors += other.errors;
    sketch_refreshes += other.sketch_refreshes;
    sketch_bytes += other.sketch_bytes;
    swr_serves += other.swr_serves;
    bytes_from_browser_cache += other.bytes_from_browser_cache;
    bytes_over_network += other.bytes_over_network;
    timeouts += other.timeouts;
    retries += other.retries;
    fallback_serves += other.fallback_serves;
    background_revalidations += other.background_revalidations;
    background_304s += other.background_304s;
    background_200s += other.background_200s;
    background_errors += other.background_errors;
    background_bytes += other.background_bytes;
    txn_begins += other.txn_begins;
    txn_commits += other.txn_commits;
    txn_aborts += other.txn_aborts;
    txn_retries += other.txn_retries;
    txn_validations += other.txn_validations;
    txn_validation_bytes += other.txn_validation_bytes;
    latency_browser_us.Merge(other.latency_browser_us);
    latency_edge_us.Merge(other.latency_edge_us);
    latency_origin_us.Merge(other.latency_origin_us);
    latency_offline_us.Merge(other.latency_offline_us);
    latency_error_us.Merge(other.latency_error_us);
    latency_ok_us.Merge(other.latency_ok_us);
    latency_degraded_us.Merge(other.latency_degraded_us);
    latency_txn_us.Merge(other.latency_txn_us);
    return *this;
  }
};

// Everything a proxy needs from the surrounding stack, by name. The stack
// (or a test fixture) fills one of these once and hands it to every client
// it creates — adding a dependency grows this struct instead of every
// constructor call site. `clock`, `network` and `origin` are required;
// `cdn` may be null when use_cdn is false; `auditor` and `tracer` are
// optional observers. None are owned.
struct ProxyDeps {
  sim::SimClock* clock = nullptr;
  sim::Network* network = nullptr;
  cache::Cdn* cdn = nullptr;
  origin::OriginServer* origin = nullptr;
  // The stack's coherence tier. May be null (tests without coherence):
  // the client then has no sketch and FetchTxn behaves as fixed-TTL.
  coherence::CoherenceProtocol* coherence = nullptr;
  personalization::BoundaryAuditor* auditor = nullptr;
  obs::Tracer* tracer = nullptr;
  // Optional shared accounting sink. When set, the client records into it
  // directly instead of allocating its own ProxyStats (~600 B + lazy
  // histograms per client) — the fleet-scale mode, where only the
  // aggregate is ever read. Counter increments are identical either way,
  // and integer-valued histogram sums are exact, so an aggregated sink is
  // bit-identical to summing per-client stats afterwards. Must outlive
  // the client; per-client stats() is meaningless in sink mode.
  ProxyStats* stats_sink = nullptr;
};

class ClientProxy {
 public:
  ClientProxy(const ProxyConfig& config, uint64_t client_id,
              const ProxyDeps& deps);

  // Fetches one resource through the full decision flow (including the
  // asset-optimization rewrite).
  FetchResult Fetch(const http::Url& url);
  FetchResult Fetch(std::string_view url_text);

  // A multi-key read-only transaction: fetches every URL at the current
  // sim instant and applies the coherence mode's consistency mechanism —
  // Δ-atomic refreshes the sketch snapshot first (reads then cut one
  // consistent Δ-boundary picture), serializable validates read versions
  // against the origin and re-fetches mismatches (bypassing shared caches)
  // up to txn_max_retries rounds before aborting, fixed-TTL just reads.
  // Each member read counts as a normal request in ProxyStats.
  TxnResult FetchTxn(const std::vector<std::string>& urls);

  // Fetches/renders one dynamic block of a page for the attached user.
  BlockResult FetchBlock(const personalization::PageTemplate& page,
                         const personalization::DynamicBlock& block,
                         const personalization::Segmenter& segmenter);

  // Attaches the device's PII vault (required for user-scoped blocks).
  void AttachVault(const personalization::PiiVault* vault) { vault_ = vault; }

  // Attaches the stack's tracer (not owned; may be null = tracing off).
  // Emits one RequestTrace per foreground request — span count therefore
  // equals ServedTotal(). Tracing records only durations the proxy already
  // computed, so it cannot change behavior (enforced by tests/obs).
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Thaws a spilled cache on access: callers always see a live HttpCache.
  cache::HttpCache& browser_cache() {
    EnsureThawed();
    return browser_cache_;
  }
  // This client's sketch view, owned by its coherence handle; null when
  // the coherence mode keeps no client sketch (serializable, fixed-TTL,
  // or no protocol wired at all).
  sketch::ClientSketch* client_sketch() {
    return coherence_client_ != nullptr ? coherence_client_->client_sketch()
                                        : nullptr;
  }
  // In sink mode (ProxyDeps::stats_sink set) this is the shared aggregate,
  // not this client's own traffic.
  const ProxyStats& stats() const { return *stats_; }
  uint64_t client_id() const { return client_id_; }
  const ProxyConfig& config() const { return config_; }

  // Cold-client spill: serializes the browser cache into a compact blob
  // and releases the live structure (entries, LRU list, hash table). The
  // next request — or any browser_cache() access — rehydrates it
  // losslessly (contents, recency order, stats). A no-op when already
  // frozen or the cache is empty (an empty live cache is cheaper than a
  // blob). Safe at any quiescent point: the proxy touches the cache only
  // synchronously inside Fetch/FetchBlock, never from scheduled events.
  void FreezeBrowserCache();
  bool browser_cache_frozen() const { return browser_cache_frozen_; }
  // Size of the frozen blob (0 while live) — what a spilled client keeps
  // resident instead of the full cache structure.
  size_t frozen_bytes() const { return frozen_browser_cache_.size(); }
  // Simulated time of this client's last foreground activity; idle-spill
  // sweeps compare against it.
  SimTime last_active() const { return last_active_; }
  uint64_t freeze_count() const { return freezes_; }
  uint64_t thaw_count() const { return thaws_; }

 private:
  // Observability wrapper around one foreground request: begins the trace,
  // resets the degraded flag, runs the decision flow, then records the
  // outcome (tier/fault histograms + trace finish) exactly once.
  FetchResult FetchResolved(const http::Url& url);

  // The decision flow proper, after any URL rewriting.
  FetchResult FetchDecide(const http::Url& url);

  // Adds a span to the current request's trace; no-op while tracing is
  // off or a background revalidation is in flight (its legs must not
  // pollute the foreground request's tree).
  void TraceSpan(std::string_view name, std::string_view tier,
                 Duration duration) {
    if (!background_fetch_) trace_.AddSpan(name, tier, duration);
  }

  // Marks the current foreground request as degraded (a fault-handling
  // path fired). Background traffic never flips the flag.
  void NoteFaultOnRequest() {
    if (!background_fetch_) request_degraded_ = true;
  }

  // Final per-request accounting: one tier histogram + ok/degraded split
  // + trace finish. The single funnel every foreground request exits by.
  void RecordRequestOutcome(const FetchResult& result);

  // One network fetch (request already carries any validator). When
  // `bypass_shared` is set, edge caches are passed through, not consulted.
  // Dispatches to the edge path when it is reachable, else reroutes to
  // the direct-origin path (degraded-mode fallback).
  FetchResult FetchOverNetwork(const http::HttpRequest& request,
                               const std::string& key, bool bypass_shared);

  // The accelerated path through the client's CDN edge. `burned` carries
  // latency already spent on failed attempts (timeouts, backoff).
  FetchResult FetchViaEdge(const http::HttpRequest& request,
                           const std::string& key, bool bypass_shared,
                           int edge_index, Duration burned);

  // Pass-through against the original site (no CDN).
  FetchResult FetchDirect(const http::HttpRequest& request,
                          const std::string& key, Duration burned);

  // Tries to get one request across `link`: a timeout costs
  // request_timeout, each retry adds exponential backoff with jitter.
  // Failed-attempt time accumulates into `latency`; the successful
  // attempt's own RTT is charged by the caller as usual. Returns false
  // when all attempts fail.
  bool DeliverWithRetries(sim::Link link, Duration* latency);

  // Handles the client-side outcome of a network response: 304 -> refresh
  // and serve the stored body; 200 -> store and serve; else error.
  FetchResult FinishClientResponse(const http::HttpRequest& request,
                                   const std::string& key,
                                   const http::HttpResponse& resp,
                                   ServedFrom source, Duration latency);

  // Origin unreachable: serve a (possibly stale) browser copy if allowed.
  FetchResult OfflineFallback(const http::HttpRequest& request,
                              const std::string& key,
                              Duration attempt_latency);

  FetchResult ServeFromEntry(const cache::CacheEntry& entry,
                             ServedFrom source, Duration latency);

  // Refreshes the sketch snapshot if due; returns the added latency.
  // `txn_begin` asks the coherence handle's transaction-grade freshness
  // check (Δ-atomic: any nonzero snapshot age is "due", so the reads cut
  // one boundary picture) instead of the per-request Δ check.
  Duration MaybeRefreshSketchLatency(bool txn_begin);

  // Serializable validation loop (see FetchTxn). Returns false when the
  // transaction must abort; accumulates validation + re-fetch latency
  // onto `txn`.
  bool ValidateTxn(const std::vector<std::string>& urls, TxnResult* txn);

  // One retry re-fetch of a stale transaction read: a full foreground
  // request (counted, traced) that bypasses every shared cache so it
  // cannot re-read the same stale copy.
  FetchResult TxnRefetch(const http::Url& url, const std::string& key);

  void Audit(const http::HttpRequest& request);

  // Rehydrates a frozen browser cache before any use of browser_cache_.
  void EnsureThawed();
  // Stamps foreground activity (thaw + last_active_) on request entry.
  void Touch();

  ProxyConfig config_;
  uint64_t client_id_;
  sim::SimClock* clock_;
  sim::Network* network_;
  cache::Cdn* cdn_;
  origin::OriginServer* origin_;
  personalization::BoundaryAuditor* auditor_;
  const personalization::PiiVault* vault_ = nullptr;

  cache::HttpCache browser_cache_;
  // The stack's coherence tier (may be null) and this client's per-client
  // handle into it (sketch view, refresh decisions; null iff coherence_
  // is null).
  coherence::CoherenceProtocol* coherence_;
  std::unique_ptr<coherence::ClientCoherence> coherence_client_;
  // Drives retry-backoff jitter only. Seeded from the client id — not the
  // stack's stream — so attaching fault handling does not perturb any
  // pre-existing draw sequence (network latencies, traffic).
  Pcg32 rng_;
  // Allocated only when no shared sink was provided; stats_ then points at
  // it. In sink mode the client carries just the pointer.
  std::unique_ptr<ProxyStats> own_stats_;
  ProxyStats* stats_;

  // Cold-client spill state (see FreezeBrowserCache).
  std::string frozen_browser_cache_;
  bool browser_cache_frozen_ = false;
  SimTime last_active_;
  uint64_t freezes_ = 0;
  uint64_t thaws_ = 0;
  // True while an SWR background revalidation is in flight: its network
  // outcome must land in the background_* counters, not the per-request
  // serve buckets.
  bool background_fetch_ = false;

  // Observability (null tracer = off; span calls are then one branch).
  obs::Tracer* tracer_ = nullptr;
  obs::TraceBuilder trace_;
  // A fault-handling path fired during the current foreground request.
  bool request_degraded_ = false;
};

}  // namespace speedkit::proxy

#endif  // SPEEDKIT_PROXY_CLIENT_PROXY_H_
