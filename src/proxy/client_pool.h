// Arena-backed fleet of client proxies with shared accounting and
// cold-client spill.
//
// At fleet scale (E16 sweeps to a million clients) the per-client costs
// that are invisible at n=100 dominate everything: one heap allocation
// per proxy, one ProxyStats (counters + seven histograms) per proxy that
// is only ever read as a sum, and a fully materialized browser cache per
// proxy even when the client has been idle for minutes. A ClientPool owns
// all three problems:
//
//   - proxies live in a ChunkedPool arena — one allocation per 256
//     clients, stable addresses, index order = creation order;
//   - every proxy records into the pool's single ProxyStats sink
//     (ProxyDeps::stats_sink), so per-client stats storage drops to a
//     pointer; the aggregate is bit-identical to summing per-client stats
//     because counter increments are unchanged and integer-valued
//     histogram sums are exact;
//   - SpillIdle() freezes the browser caches of clients idle longer than
//     the configured threshold into compact blobs; the next request
//     thaws losslessly (see ClientProxy::FreezeBrowserCache).
//
// Spill is kAuto by default: off for small fleets (below
// spill_auto_threshold nothing is gained) and on for large ones. The
// driver decides *when* to sweep (it owns the event loop); the pool only
// provides the sweep primitive.
#ifndef SPEEDKIT_PROXY_CLIENT_POOL_H_
#define SPEEDKIT_PROXY_CLIENT_POOL_H_

#include <cstddef>
#include <cstdint>

#include "common/chunked_pool.h"
#include "common/sim_time.h"
#include "proxy/client_proxy.h"

namespace speedkit::proxy {

enum class SpillMode {
  kOff,
  kAuto,  // on once the fleet reaches spill_auto_threshold clients
  kOn,
};

struct ClientPoolConfig {
  SpillMode spill = SpillMode::kAuto;
  size_t spill_auto_threshold = 4096;
  // A client whose last foreground request is older than this is a spill
  // candidate.
  Duration spill_idle_threshold = Duration::Seconds(60);
  // Suggested cadence for SpillIdle sweeps (the driver schedules them).
  Duration spill_sweep_interval = Duration::Seconds(30);
};

// Point-in-time spill accounting, computed over the fleet.
struct ClientPoolSpillStats {
  uint64_t sweeps = 0;        // SpillIdle calls
  uint64_t freezes = 0;       // cumulative cache freezes
  uint64_t thaws = 0;         // cumulative rehydrations
  size_t frozen_clients = 0;  // currently spilled
  size_t frozen_bytes = 0;    // resident blob bytes of spilled clients
};

class ClientPool {
 public:
  // `deps` is the stack-level dependency set; the pool overrides its
  // stats_sink with the pool's own aggregate. Copies of `deps` are taken
  // per client, so the referenced services must outlive the pool.
  ClientPool(const ClientPoolConfig& config, const ProxyDeps& deps);

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  // Creates one client in the arena. Stable address for the pool's
  // lifetime.
  ClientProxy* MakeClient(const ProxyConfig& config, uint64_t client_id);

  size_t size() const { return clients_.size(); }
  ClientProxy* at(size_t i) { return clients_.at(i); }
  const ClientProxy* at(size_t i) const { return clients_.at(i); }

  // The fleet-wide aggregate every pooled client records into.
  const ProxyStats& stats() const { return sink_; }

  bool spill_enabled() const {
    switch (config_.spill) {
      case SpillMode::kOff: return false;
      case SpillMode::kOn: return true;
      case SpillMode::kAuto:
        return clients_.size() >= config_.spill_auto_threshold;
    }
    return false;
  }

  // Freezes the browser cache of every thawed client idle since before
  // `now - spill_idle_threshold`. Returns how many were newly frozen.
  // No-op (returns 0) when spill is disabled. Deterministic: iterates in
  // creation order and draws no randomness.
  size_t SpillIdle(SimTime now);

  ClientPoolSpillStats SpillStats() const;

  const ClientPoolConfig& config() const { return config_; }

 private:
  ClientPoolConfig config_;
  ProxyDeps deps_;
  ProxyStats sink_;
  ChunkedPool<ClientProxy> clients_;
  uint64_t sweeps_ = 0;
};

}  // namespace speedkit::proxy

#endif  // SPEEDKIT_PROXY_CLIENT_POOL_H_
