#include "proxy/client_pool.h"

namespace speedkit::proxy {

ClientPool::ClientPool(const ClientPoolConfig& config, const ProxyDeps& deps)
    : config_(config), deps_(deps) {
  deps_.stats_sink = &sink_;
}

ClientProxy* ClientPool::MakeClient(const ProxyConfig& config,
                                    uint64_t client_id) {
  return clients_.Emplace(config, client_id, deps_);
}

size_t ClientPool::SpillIdle(SimTime now) {
  ++sweeps_;
  if (!spill_enabled()) return 0;
  size_t frozen = 0;
  clients_.ForEach([&](ClientProxy& client) {
    if (client.browser_cache_frozen()) return;
    if (now - client.last_active() < config_.spill_idle_threshold) return;
    uint64_t before = client.freeze_count();
    client.FreezeBrowserCache();
    // FreezeBrowserCache declines pristine caches; only count real spills.
    frozen += client.freeze_count() - before;
  });
  return frozen;
}

ClientPoolSpillStats ClientPool::SpillStats() const {
  ClientPoolSpillStats out;
  out.sweeps = sweeps_;
  clients_.ForEach([&](const ClientProxy& client) {
    out.freezes += client.freeze_count();
    out.thaws += client.thaw_count();
    if (client.browser_cache_frozen()) {
      ++out.frozen_clients;
      out.frozen_bytes += client.frozen_bytes();
    }
  });
  return out;
}

}  // namespace speedkit::proxy
