#include "proxy/client_proxy.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "common/strings.h"

namespace speedkit::proxy {

namespace {
// Approximate wire size of a 304 (status line + validator headers).
constexpr size_t kNotModifiedWireBytes = 256;
// Serializable-mode validation RTT: a version-vector check is a small
// request (fixed envelope + one key/version pair per read).
constexpr size_t kTxnValidateBaseBytes = 128;
constexpr size_t kTxnValidatePerKeyBytes = 40;
}  // namespace

std::string_view ServedFromName(ServedFrom source) {
  switch (source) {
    case ServedFrom::kBrowserCache:
      return "browser";
    case ServedFrom::kEdgeCache:
      return "edge";
    case ServedFrom::kOrigin:
      return "origin";
    case ServedFrom::kOfflineCache:
      return "offline";
    case ServedFrom::kError:
      return "error";
  }
  return "error";
}

ClientProxy::ClientProxy(const ProxyConfig& config, uint64_t client_id,
                         const ProxyDeps& deps)
    : config_(config),
      client_id_(client_id),
      clock_(deps.clock),
      network_(deps.network),
      cdn_(deps.cdn),
      origin_(deps.origin),
      auditor_(deps.auditor),
      browser_cache_(/*shared=*/false, config.browser_cache_bytes),
      coherence_(deps.coherence),
      coherence_client_(deps.coherence != nullptr
                            ? deps.coherence->NewClient(
                                  config.sketch_refresh_interval)
                            : nullptr),
      rng_(Mix64(client_id ^ 0xba0c0ffeeULL), client_id * 2 + 1),
      own_stats_(deps.stats_sink ? nullptr : new ProxyStats()),
      stats_(deps.stats_sink ? deps.stats_sink : own_stats_.get()),
      last_active_(deps.clock->Now()),
      tracer_(deps.tracer) {}

FetchResult ClientProxy::Fetch(std::string_view url_text) {
  auto url = http::Url::Parse(url_text);
  if (!url.ok()) {
    // A malformed URL is still a request the page made — count it, or the
    // serve-source buckets stop reconciling with `requests`. It also gets
    // a (zero-latency) trace and error-tier histogram entry, so the span
    // count keeps matching ServedTotal().
    stats_->requests++;
    stats_->errors++;
    if (!background_fetch_) {
      trace_.Begin(tracer_, obs::kTraceKindRequest, url_text, clock_->Now());
      request_degraded_ = false;
    }
    FetchResult result;
    result.response.status_code = 400;
    result.source = ServedFrom::kError;
    RecordRequestOutcome(result);
    return result;
  }
  return Fetch(*url);
}

FetchResult ClientProxy::Fetch(const http::Url& url) {
  // Asset optimization: the service worker reroutes asset requests to the
  // optimized variant. The variant is its own cache key everywhere.
  if (config_.enabled && config_.optimize_assets &&
      StartsWith(url.path(), "/assets/") &&
      url.query().find("skopt=") == std::string::npos) {
    std::string rewritten = url.CacheKey();
    rewritten += url.query().empty() ? "?skopt=1" : "&skopt=1";
    auto optimized = http::Url::Parse(rewritten);
    if (optimized.ok()) return FetchResolved(*optimized);
  }
  return FetchResolved(url);
}

FetchResult ClientProxy::FetchResolved(const http::Url& url) {
  Touch();
  if (!background_fetch_) {
    trace_.Begin(tracer_, obs::kTraceKindRequest, url.CacheKey(),
                 clock_->Now());
    request_degraded_ = false;
  }
  FetchResult result = FetchDecide(url);
  RecordRequestOutcome(result);
  return result;
}

void ClientProxy::RecordRequestOutcome(const FetchResult& result) {
  if (background_fetch_) return;
  const int64_t us = result.latency.micros();
  stats_->LatencyFor(result.source)->Add(us);
  (request_degraded_ ? stats_->latency_degraded_us : stats_->latency_ok_us)
      .Add(us);
  trace_.Finish(ServedFromName(result.source), result.response.status_code,
                request_degraded_, result.latency);
}

FetchResult ClientProxy::FetchDecide(const http::Url& url) {
  stats_->requests++;
  SimTime now = clock_->Now();
  std::string key = url.CacheKey();
  Duration overhead =
      config_.enabled ? config_.device_overhead : Duration::Zero();

  bool use_sketch =
      config_.enabled && config_.use_sketch && coherence_client_ != nullptr;
  Duration refresh_latency = use_sketch
                                 ? MaybeRefreshSketchLatency(/*txn_begin=*/false)
                                 : Duration::Zero();

  // One coherence verdict drives the whole flow: a flagged key must bypass
  // every expiration-based cache between the device and the origin.
  bool flagged = use_sketch && coherence_client_->MustRevalidate(key);

  // Trace attribution for the legs every path shares. A sketch refresh
  // only serializes with cache serves (network fetches overlap it); the
  // span records where the time went either way.
  if (overhead > Duration::Zero()) {
    TraceSpan("proxy.overhead", obs::kTierProxy, overhead);
  }
  if (refresh_latency > Duration::Zero()) {
    TraceSpan("sketch.refresh", obs::kTierProxy, refresh_latency);
  }

  http::HttpRequest request = http::HttpRequest::Get(url);
  cache::LookupResult lookup = browser_cache_.Lookup(key, request.headers, now);

  if (lookup.outcome == cache::LookupOutcome::kFreshHit && !flagged) {
    // Serving from the browser cache is gated on the sketch check, so a
    // due refresh is on the critical path here.
    stats_->browser_hits++;
    TraceSpan("browser.hit", obs::kTierBrowser, Duration::Zero());
    return ServeFromEntry(*lookup.entry, ServedFrom::kBrowserCache,
                          overhead + refresh_latency);
  }

  if (lookup.outcome == cache::LookupOutcome::kStaleHit && !flagged &&
      config_.enabled && config_.stale_while_revalidate &&
      lookup.entry->WithinSwrWindow(now)) {
    // Sketch-clean + within the SWR window: the copy is merely
    // TTL-expired, not invalidated. Serve it instantly and revalidate in
    // the background (the revalidation's latency is off the critical
    // path; its cache updates happen now).
    stats_->swr_serves++;
    TraceSpan("browser.swr_serve", obs::kTierBrowser, Duration::Zero());
    FetchResult served = ServeFromEntry(*lookup.entry,
                                        ServedFrom::kBrowserCache,
                                        overhead + refresh_latency);
    http::HttpRequest reval = http::HttpRequest::Get(url);
    std::string etag = lookup.entry->response.ETag();
    if (!etag.empty()) reval.headers.Set("If-None-Match", etag);
    stats_->background_revalidations++;
    background_fetch_ = true;
    (void)FetchOverNetwork(reval, key, /*bypass_shared=*/false);
    background_fetch_ = false;
    return served;
  }

  // Attach our validator when we hold any copy (fresh-but-flagged or
  // stale): the origin can then answer with a cheap 304.
  if (lookup.entry != nullptr) {
    std::string etag = lookup.entry->response.ETag();
    if (!etag.empty()) request.headers.Set("If-None-Match", etag);
  }

  FetchResult result = FetchOverNetwork(request, key, flagged);
  if (flagged) {
    // The bypass decision needed the fresh snapshot, so refresh and fetch
    // serialize.
    result.latency += overhead + refresh_latency;
    result.sketch_bypass = true;
    stats_->sketch_bypasses++;
  } else {
    // Un-flagged network fetches overlap the snapshot refresh: the request
    // is sent optimistically and the sketch arrives while it is in flight
    // (it is only consulted again at serve time).
    result.latency =
        overhead + std::max(refresh_latency, result.latency);
  }
  return result;
}

Duration ClientProxy::MaybeRefreshSketchLatency(bool txn_begin) {
  SimTime now = clock_->Now();
  bool due = txn_begin ? coherence_client_->NeedsTxnRefresh(now)
                       : coherence_client_->NeedsRefresh(now);
  if (!due) return Duration::Zero();
  if (!origin_->available()) return Duration::Zero();  // keep the old snapshot
  if (!network_->Delivered(sim::Link::kClientEdge, now)) {
    // The refresh request never got through: keep the old snapshot and
    // charge one timeout. Degraded mode — the Δ guarantee rests on the
    // next successful refresh; no retry loop here because the refresh is
    // re-attempted by the very next request anyway.
    stats_->timeouts++;
    NoteFaultOnRequest();
    TraceSpan("timeout.wait", obs::kTierNetwork, config_.request_timeout);
    return config_.request_timeout;
  }
  // The published filter is shared across every client of the fleet; the
  // wire-byte count still reflects the serialized form so transfer
  // accounting is unchanged.
  size_t wire_bytes = coherence_client_->InstallRefresh(now);
  stats_->sketch_refreshes++;
  stats_->sketch_bytes += wire_bytes;
  // The sketch service answers from the edge tier.
  return network_->RequestTime(sim::Link::kClientEdge, wire_bytes, now);
}

TxnResult ClientProxy::FetchTxn(const std::vector<std::string>& urls) {
  stats_->txn_begins++;
  TxnResult txn;
  coherence::CoherenceMode mode = coherence_ != nullptr
                                      ? coherence_->mode()
                                      : coherence::CoherenceMode::kFixedTtl;

  // Δ-atomic: force a snapshot taken at the transaction's own instant so
  // every member read consults one boundary picture. The refresh gates
  // all of the reads' cache serves, so it serializes with them.
  Duration setup = Duration::Zero();
  if (mode == coherence::CoherenceMode::kDeltaAtomic && config_.enabled &&
      config_.use_sketch && coherence_client_ != nullptr) {
    setup = MaybeRefreshSketchLatency(/*txn_begin=*/true);
  }

  // All reads issue at the same sim instant; the read span is the slowest
  // member (the page fires them in parallel).
  Duration read_span = Duration::Zero();
  txn.reads.reserve(urls.size());
  for (const std::string& url : urls) {
    FetchResult r = Fetch(url);
    read_span = std::max(read_span, r.latency);
    txn.reads.push_back(std::move(r));
  }
  txn.latency = setup + read_span;

  if (mode == coherence::CoherenceMode::kSerializable) {
    if (!ValidateTxn(urls, &txn)) txn.aborted = true;
  }
  if (txn.aborted) {
    stats_->txn_aborts++;
  } else {
    stats_->txn_commits++;
  }
  stats_->latency_txn_us.Add(txn.latency.micros());
  return txn;
}

bool ClientProxy::ValidateTxn(const std::vector<std::string>& urls,
                              TxnResult* txn) {
  // The version vector of successful reads. Failed reads carry no version
  // to validate — and returned nothing, so they cannot break snapshot
  // consistency either.
  std::vector<coherence::ReadVersion> reads;
  std::vector<size_t> read_index;  // reads[s] came from txn->reads[read_index[s]]
  for (size_t i = 0; i < urls.size(); ++i) {
    const FetchResult& r = txn->reads[i];
    if (!r.response.ok()) continue;
    auto url = http::Url::Parse(urls[i]);
    if (!url.ok()) continue;
    reads.push_back({url->CacheKey(), r.response.object_version});
    read_index.push_back(i);
  }
  if (reads.empty()) return true;

  for (int round = 0;; ++round) {
    // One validation RTT: the vector of (key, version) pairs travels to
    // the origin, which answers against its head versions.
    stats_->txn_validations++;
    size_t wire =
        kTxnValidateBaseBytes + kTxnValidatePerKeyBytes * reads.size();
    stats_->txn_validation_bytes += wire;
    Duration vlat = Duration::Zero();
    if (!origin_->available() ||
        !DeliverWithRetries(sim::Link::kClientOrigin, &vlat)) {
      // No authority to validate against — the commit cannot be certified.
      txn->latency += vlat;
      return false;
    }
    vlat +=
        network_->RequestTime(sim::Link::kClientOrigin, wire, clock_->Now());
    txn->latency += vlat;

    std::vector<size_t> stale = coherence_->StaleReadIndexes(reads);
    if (stale.empty()) return true;
    if (round >= config_.txn_max_retries) return false;
    stats_->txn_retries++;
    txn->retries++;

    // Re-fetch the mismatched members, bypassing every shared cache so a
    // retry cannot re-read the same stale copy. One round's re-fetches
    // issue together and cost the slowest member.
    Duration refetch_span = Duration::Zero();
    for (size_t s : stale) {
      size_t i = read_index[s];
      auto url = http::Url::Parse(urls[i]);
      if (!url.ok()) continue;
      FetchResult r = TxnRefetch(*url, reads[s].key);
      refetch_span = std::max(refetch_span, r.latency);
      if (r.response.ok()) reads[s].version = r.response.object_version;
      txn->reads[i] = std::move(r);
    }
    txn->latency += refetch_span;
  }
}

FetchResult ClientProxy::TxnRefetch(const http::Url& url,
                                    const std::string& key) {
  Touch();
  // A full foreground request: counted, traced, and funneled through
  // RecordRequestOutcome like any other, so the serve buckets (and the
  // trace count) keep reconciling with `requests`.
  if (!background_fetch_) {
    trace_.Begin(tracer_, obs::kTraceKindRequest, key, clock_->Now());
    request_degraded_ = false;
  }
  stats_->requests++;
  http::HttpRequest request = http::HttpRequest::Get(url);
  FetchResult result = FetchOverNetwork(request, key, /*bypass_shared=*/true);
  result.latency +=
      config_.enabled ? config_.device_overhead : Duration::Zero();
  RecordRequestOutcome(result);
  return result;
}

bool ClientProxy::DeliverWithRetries(sim::Link link, Duration* latency) {
  SimTime now = clock_->Now();
  if (network_->Delivered(link, now)) return true;
  stats_->timeouts++;
  NoteFaultOnRequest();
  TraceSpan("timeout.wait", obs::kTierNetwork, config_.request_timeout);
  *latency += config_.request_timeout;
  for (int attempt = 0; attempt < config_.max_retries; ++attempt) {
    stats_->retries++;
    // Exponential backoff with jitter; the jitter draw comes from the
    // proxy's own RNG stream and only happens on this (fault-only) path,
    // so faultless runs keep their exact draw sequences.
    Duration backoff =
        config_.retry_backoff * static_cast<double>(1 << attempt);
    if (config_.retry_jitter > 0) {
      backoff = backoff * (1.0 + config_.retry_jitter * rng_.NextDouble());
    }
    TraceSpan("retry.backoff", obs::kTierProxy, backoff);
    *latency += backoff;
    if (network_->Delivered(link, now)) return true;
    stats_->timeouts++;
    TraceSpan("timeout.wait", obs::kTierNetwork, config_.request_timeout);
    *latency += config_.request_timeout;
  }
  return false;
}

FetchResult ClientProxy::FetchOverNetwork(const http::HttpRequest& request,
                                          const std::string& key,
                                          bool bypass_shared) {
  Audit(request);

  bool via_edge = config_.enabled && config_.use_cdn && cdn_ != nullptr;
  if (!via_edge) return FetchDirect(request, key, Duration::Zero());

  // Degraded-mode decision, step 1: is the accelerated edge path
  // reachable at all? An edge outage or a dead client<->edge link reroutes
  // the request to pass-through against the original site (the paper's
  // fallback rule), carrying the time burned on the failed attempts.
  int edge_index = cdn_->RouteFor(client_id_);
  Duration burned = Duration::Zero();
  bool edge_reachable = cdn_->EdgeAvailable(edge_index);
  if (!edge_reachable) {
    cdn_->NoteEdgeReject(edge_index);
    NoteFaultOnRequest();
    TraceSpan("edge.down_reject", obs::kTierEdge, Duration::Zero());
  } else if (!DeliverWithRetries(sim::Link::kClientEdge, &burned)) {
    edge_reachable = false;
  }
  if (!edge_reachable) {
    FetchResult result = FetchDirect(request, key, burned);
    if (result.source != ServedFrom::kError) stats_->fallback_serves++;
    return result;
  }
  return FetchViaEdge(request, key, bypass_shared, edge_index, burned);
}

FetchResult ClientProxy::FetchDirect(const http::HttpRequest& request,
                                     const std::string& key, Duration burned) {
  if (!DeliverWithRetries(sim::Link::kClientOrigin, &burned)) {
    return OfflineFallback(request, key, burned);
  }
  SimTime now = clock_->Now();
  http::HttpResponse resp = origin_->Handle(request);
  if (resp.status_code == 503) {
    Duration rtt = network_->SampleRtt(sim::Link::kClientOrigin, now);
    TraceSpan("net.client_origin", obs::kTierNetwork, rtt);
    return OfflineFallback(request, key, burned + rtt);
  }
  size_t down = resp.IsNotModified() ? kNotModifiedWireBytes : resp.WireSize();
  // RTT draws are hoisted into locals (here and everywhere a span needs a
  // leg's duration) — each call site keeps its position and count, so the
  // network's RNG stream advances exactly as before tracing existed.
  Duration rtt = network_->SampleRtt(sim::Link::kClientOrigin, now);
  Duration xfer = network_->TransferTime(sim::Link::kClientOrigin, down);
  TraceSpan("net.client_origin", obs::kTierNetwork, rtt + xfer);
  TraceSpan("origin.render", obs::kTierOrigin, resp.server_time);
  Duration lat = burned + rtt + xfer + resp.server_time;
  return FinishClientResponse(request, key, resp, ServedFrom::kOrigin, lat);
}

FetchResult ClientProxy::FetchViaEdge(const http::HttpRequest& request,
                                      const std::string& key,
                                      bool bypass_shared, int edge_index,
                                      Duration burned) {
  SimTime now = clock_->Now();
  // Lock-free owned access: this client's edge is owned by this proxy's
  // shard (clients pin to edges, edges to shards), so the whole edge-cache
  // interaction below runs unsynchronized; debug builds assert the
  // ownership discipline inside cdn_->edge().
  cache::HttpCache& edge = cdn_->edge(edge_index);
  // Origin-flight window (kHerd/kCoalesce; kInstant skips in one branch):
  // while the leader's origin fetch for this key is still in transit, its
  // stored response is not yet visible at a real edge. kCoalesce joins the
  // flight — pay the remaining window and serve the leader's response;
  // kHerd stampedes to the origin like an edge without request collapsing.
  // Sketch-flagged requests (bypass_shared) never coalesce: sharing a
  // leader's response would reintroduce the staleness the flag exists to
  // prevent.
  bool herd_to_origin = false;
  Duration flight_wait = Duration::Zero();
  if (!bypass_shared &&
      config_.origin_flight != cache::OriginFlightMode::kInstant) {
    std::optional<SimTime> ready = cdn_->OpenFlightReadyAt(edge_index, key, now);
    if (ready.has_value()) {
      if (config_.origin_flight == cache::OriginFlightMode::kCoalesce) {
        flight_wait = *ready - now;
      } else {
        herd_to_origin = true;
        cdn_->NoteHerdFetch();
      }
    }
  }
  if (!bypass_shared && !herd_to_origin) {
    cache::LookupResult el = edge.Lookup(key, request.headers, now);
    if (el.outcome == cache::LookupOutcome::kFreshHit) {
      if (flight_wait > Duration::Zero()) {
        // Joined the open flight: the response is logically still on the
        // wire from the origin; the join waits out the remainder.
        cdn_->NoteFlightJoin();
        TraceSpan("edge.flight_join", obs::kTierEdge, flight_wait);
        burned += flight_wait;
      }
      // A matching client validator gets a cache-minted 304. Its
      // generated_at is the entry's original render time so the browser
      // inherits the remaining freshness, never more.
      auto inm = request.headers.Get("If-None-Match");
      if (inm.has_value() && *inm == el.entry->response.ETag()) {
        http::HttpResponse edge_304 = http::MakeNotModified(
            *inm, el.entry->response.GetCacheControl(),
            el.entry->response.object_version,
            el.entry->response.generated_at);
        Duration rt = network_->RequestTime(sim::Link::kClientEdge,
                                            kNotModifiedWireBytes, now);
        TraceSpan("edge.hit_304", obs::kTierEdge, Duration::Zero());
        TraceSpan("net.client_edge", obs::kTierNetwork, rt);
        return FinishClientResponse(request, key, edge_304,
                                    ServedFrom::kEdgeCache, burned + rt);
      }
      Duration rt = network_->RequestTime(sim::Link::kClientEdge,
                                          el.entry->response.WireSize(), now);
      TraceSpan("edge.hit", obs::kTierEdge, Duration::Zero());
      TraceSpan("net.client_edge", obs::kTierNetwork, rt);
      return FinishClientResponse(request, key, el.entry->response,
                                  ServedFrom::kEdgeCache, burned + rt);
    }
    if (el.outcome == cache::LookupOutcome::kStaleHit) {
      // The edge revalidates with ITS validator; the client still gets a
      // full body from the edge either way.
      http::HttpRequest forwarded = request;
      std::string edge_etag = el.entry->response.ETag();
      if (!edge_etag.empty()) {
        forwarded.headers.Set("If-None-Match", edge_etag);
      }
      if (!DeliverWithRetries(sim::Link::kEdgeOrigin, &burned)) {
        // Degraded mode, step 2: the upstream is unreachable but the edge
        // still holds a copy — serve it stale (stale-if-error) rather than
        // fail. Safe for sketch-clean keys: they are merely TTL-expired;
        // a genuinely invalidated key is flagged and never takes this
        // branch (it bypasses the edge entirely).
        stats_->fallback_serves++;
        NoteFaultOnRequest();
        Duration rt = network_->RequestTime(sim::Link::kClientEdge,
                                            el.entry->response.WireSize(), now);
        TraceSpan("edge.stale_if_error", obs::kTierEdge, Duration::Zero());
        TraceSpan("net.client_edge", obs::kTierNetwork, rt);
        return FinishClientResponse(request, key, el.entry->response,
                                    ServedFrom::kEdgeCache, burned + rt);
      }
      http::HttpResponse oresp = origin_->Handle(forwarded);
      if (oresp.status_code == 503) {
        // Draw order matters: the compiled pre-obs code evaluated the
        // edge->origin leg's RTT first, so the hoisted draws keep that
        // order to leave the RNG stream byte-identical.
        Duration rtt_eo = network_->SampleRtt(sim::Link::kEdgeOrigin, now);
        Duration rtt_ce = network_->SampleRtt(sim::Link::kClientEdge, now);
        TraceSpan("net.client_edge", obs::kTierNetwork, rtt_ce);
        TraceSpan("net.edge_origin", obs::kTierNetwork, rtt_eo);
        return OfflineFallback(request, key, burned + rtt_ce + rtt_eo);
      }
      if (oresp.IsNotModified()) {
        edge.Refresh(key, request.headers, oresp, now);
        cache::LookupResult refreshed = edge.Lookup(key, request.headers, now);
        if (refreshed.entry != nullptr) {
          Duration rtt_eo = network_->SampleRtt(sim::Link::kEdgeOrigin, now);
          Duration rtt_ce = network_->SampleRtt(sim::Link::kClientEdge, now);
          Duration xfer_eo = network_->TransferTime(sim::Link::kEdgeOrigin,
                                                    kNotModifiedWireBytes);
          Duration upstream = burned + rtt_ce + rtt_eo + xfer_eo +
                              oresp.server_time;
          TraceSpan("edge.revalidate", obs::kTierEdge, Duration::Zero());
          TraceSpan("net.edge_origin", obs::kTierNetwork, rtt_eo + xfer_eo);
          TraceSpan("origin.render", obs::kTierOrigin, oresp.server_time);
          // If the client's validator also matches, forward the origin's
          // 304 instead of re-sending the body.
          auto inm = request.headers.Get("If-None-Match");
          if (inm.has_value() && *inm == oresp.ETag()) {
            Duration xfer_ce = network_->TransferTime(
                sim::Link::kClientEdge, kNotModifiedWireBytes);
            TraceSpan("net.client_edge", obs::kTierNetwork, rtt_ce + xfer_ce);
            return FinishClientResponse(request, key, oresp,
                                        ServedFrom::kEdgeCache,
                                        upstream + xfer_ce);
          }
          Duration xfer_ce = network_->TransferTime(
              sim::Link::kClientEdge, refreshed.entry->response.WireSize());
          TraceSpan("net.client_edge", obs::kTierNetwork, rtt_ce + xfer_ce);
          return FinishClientResponse(request, key,
                                      refreshed.entry->response,
                                      ServedFrom::kEdgeCache,
                                      upstream + xfer_ce);
        }
        // Entry evicted under us; fall through to a plain origin fetch.
      } else {
        edge.Store(key, request.headers, oresp, now);
        // Draw order matters: the compiled pre-obs code evaluated the
        // edge->origin leg's RTT first, so the hoisted draws keep that
        // order to leave the RNG stream byte-identical.
        Duration rtt_eo = network_->SampleRtt(sim::Link::kEdgeOrigin, now);
        Duration rtt_ce = network_->SampleRtt(sim::Link::kClientEdge, now);
        Duration xfer_eo =
            network_->TransferTime(sim::Link::kEdgeOrigin, oresp.WireSize());
        Duration xfer_ce =
            network_->TransferTime(sim::Link::kClientEdge, oresp.WireSize());
        TraceSpan("edge.revalidate", obs::kTierEdge, Duration::Zero());
        TraceSpan("net.edge_origin", obs::kTierNetwork, rtt_eo + xfer_eo);
        TraceSpan("origin.render", obs::kTierOrigin, oresp.server_time);
        TraceSpan("net.client_edge", obs::kTierNetwork, rtt_ce + xfer_ce);
        Duration lat =
            burned + rtt_ce + rtt_eo + xfer_eo + xfer_ce + oresp.server_time;
        return FinishClientResponse(request, key, oresp, ServedFrom::kOrigin,
                                    lat);
      }
    }
  }

  // Pass-through: edge miss, or a sketch-flagged request that must reach
  // the origin. The client's own validator travels with the request; the
  // edge is refreshed on the way back so later clients benefit.
  if (!DeliverWithRetries(sim::Link::kEdgeOrigin, &burned)) {
    // Nothing servable at the edge (miss, or a flagged key that must not
    // be served from a shared cache): last resort is the offline cache.
    Duration rtt_ce = network_->SampleRtt(sim::Link::kClientEdge, now);
    TraceSpan("net.client_edge", obs::kTierNetwork, rtt_ce);
    return OfflineFallback(request, key, burned + rtt_ce);
  }
  http::HttpResponse oresp = origin_->Handle(request);
  if (oresp.status_code == 503) {
    Duration rtt_ce = network_->SampleRtt(sim::Link::kClientEdge, now);
    Duration rtt_eo = network_->SampleRtt(sim::Link::kEdgeOrigin, now);
    TraceSpan("net.client_edge", obs::kTierNetwork, rtt_ce);
    TraceSpan("net.edge_origin", obs::kTierNetwork, rtt_eo);
    return OfflineFallback(request, key, burned + rtt_ce + rtt_eo);
  }
  size_t down =
      oresp.IsNotModified() ? kNotModifiedWireBytes : oresp.WireSize();
  Duration rtt_eo = network_->SampleRtt(sim::Link::kEdgeOrigin, now);
  Duration rtt_ce = network_->SampleRtt(sim::Link::kClientEdge, now);
  Duration xfer_eo = network_->TransferTime(sim::Link::kEdgeOrigin, down);
  Duration xfer_ce = network_->TransferTime(sim::Link::kClientEdge, down);
  TraceSpan(bypass_shared ? "edge.bypass" : "edge.miss", obs::kTierEdge,
            Duration::Zero());
  TraceSpan("net.edge_origin", obs::kTierNetwork, rtt_eo + xfer_eo);
  TraceSpan("origin.render", obs::kTierOrigin, oresp.server_time);
  TraceSpan("net.client_edge", obs::kTierNetwork, rtt_ce + xfer_ce);
  Duration lat =
      burned + rtt_ce + rtt_eo + xfer_eo + xfer_ce + oresp.server_time;
  if (oresp.IsNotModified()) {
    edge.Refresh(key, request.headers, oresp, now);
  } else {
    if (!bypass_shared &&
        config_.origin_flight != cache::OriginFlightMode::kInstant) {
      // This fetch leads a flight: the stored response becomes visible to
      // other clients only once the origin round trip completes. A no-op
      // for herd fetches inside an already-open window.
      cdn_->BeginFlight(edge_index, key, now,
                        now + rtt_eo + xfer_eo + oresp.server_time);
    }
    edge.Store(key, request.headers, oresp, now);
  }
  return FinishClientResponse(request, key, oresp, ServedFrom::kOrigin, lat);
}

FetchResult ClientProxy::FinishClientResponse(const http::HttpRequest& request,
                                              const std::string& key,
                                              const http::HttpResponse& resp,
                                              ServedFrom source,
                                              Duration latency) {
  SimTime now = clock_->Now();
  if (background_fetch_) {
    // Background revalidation: update caches exactly as a foreground
    // response would, but keep the traffic out of the per-request serve
    // buckets — there is no `requests` increment to reconcile against.
    FetchResult result;
    result.latency = latency;
    result.response = resp;
    if (resp.IsNotModified()) {
      stats_->background_304s++;
      stats_->background_bytes += kNotModifiedWireBytes;
      browser_cache_.Refresh(key, request.headers, resp, now);
      result.source = source;
      result.revalidated = true;
    } else if (resp.ok()) {
      stats_->background_200s++;
      stats_->background_bytes += resp.WireSize();
      browser_cache_.Store(key, request.headers, resp, now);
      result.source = source;
    } else {
      stats_->background_errors++;
    }
    return result;
  }
  if (resp.IsNotModified()) {
    stats_->revalidations_304++;
    stats_->bytes_over_network += kNotModifiedWireBytes;
    browser_cache_.Refresh(key, request.headers, resp, now);
    cache::LookupResult refreshed =
        browser_cache_.Lookup(key, request.headers, now);
    if (refreshed.entry != nullptr) {
      // The 304 round trip is what served this request: attribute it to
      // the tier that answered so serve counts reconcile with `requests`.
      if (source == ServedFrom::kEdgeCache) {
        stats_->edge_hits++;
      } else {
        stats_->origin_fetches++;
      }
      FetchResult result = ServeFromEntry(*refreshed.entry, source, latency);
      result.revalidated = true;
      return result;
    }
    // The entry vanished (eviction) between validation and serve; a real
    // SW would re-issue unconditionally. Model that as an error: it is
    // rare enough not to warrant a second hop here.
    stats_->errors++;
    FetchResult result;
    result.response.status_code = 504;
    result.latency = latency;
    return result;
  }
  if (!resp.ok()) {
    stats_->errors++;
    FetchResult result;
    result.response = resp;
    result.latency = latency;
    return result;
  }
  if (request.IsConditional()) stats_->revalidations_200++;
  if (source == ServedFrom::kEdgeCache) {
    stats_->edge_hits++;
  } else {
    stats_->origin_fetches++;
  }
  stats_->bytes_over_network += resp.WireSize();
  browser_cache_.Store(key, request.headers, resp, now);
  FetchResult result;
  result.response = resp;
  result.latency = latency;
  result.source = source;
  return result;
}

FetchResult ClientProxy::OfflineFallback(const http::HttpRequest& request,
                                         const std::string& key,
                                         Duration attempt_latency) {
  SimTime now = clock_->Now();
  if (background_fetch_) {
    // A failed background revalidation: the foreground request was already
    // served from the stale copy, so there is nothing to fall back to.
    stats_->background_errors++;
    FetchResult result;
    result.response = http::MakeServiceUnavailable();
    result.latency = attempt_latency;
    return result;
  }
  NoteFaultOnRequest();
  if (config_.enabled && config_.offline_mode) {
    cache::LookupResult lookup =
        browser_cache_.Lookup(key, request.headers, now);
    if (lookup.entry != nullptr) {
      stats_->offline_serves++;
      TraceSpan("offline.serve", obs::kTierOffline, Duration::Zero());
      return ServeFromEntry(*lookup.entry, ServedFrom::kOfflineCache,
                            attempt_latency);
    }
  }
  stats_->errors++;
  FetchResult result;
  result.response = http::MakeServiceUnavailable();
  result.latency = attempt_latency;
  return result;
}

FetchResult ClientProxy::ServeFromEntry(const cache::CacheEntry& entry,
                                        ServedFrom source, Duration latency) {
  stats_->bytes_from_browser_cache += entry.response.body.size();
  FetchResult result;
  result.response = entry.response;
  result.latency = latency;
  result.source = source;
  return result;
}

BlockResult ClientProxy::FetchBlock(
    const personalization::PageTemplate& page,
    const personalization::DynamicBlock& block,
    const personalization::Segmenter& segmenter) {
  std::string base = "https://" + std::string("shop.example.com") +
                     "/api/fragments/" + block.id +
                     "?page=" + StrFormat("%016llx",
                                          static_cast<unsigned long long>(
                                              Fnv1a_64(page.url)));
  uint64_t user_id = vault_ != nullptr ? vault_->user_id() : client_id_;

  BlockResult out;
  switch (block.scope) {
    case personalization::BlockScope::kStatic: {
      FetchResult r = Fetch(base);
      out.content = r.response.body;
      out.latency = r.latency;
      out.source = r.source;
      return out;
    }
    case personalization::BlockScope::kSegment: {
      FetchResult r = Fetch(base + "&seg=" + segmenter.SegmentFor(user_id));
      out.content = r.response.body;
      out.latency = r.latency;
      out.source = r.source;
      return out;
    }
    case personalization::BlockScope::kUser: {
      if (config_.enabled && config_.gdpr_mode) {
        // GDPR path: cacheable anonymous template + on-device join.
        FetchResult r = Fetch(base + "&tpl=1");
        out.content = vault_ != nullptr
                          ? vault_->RenderLocally(r.response.body)
                          : r.response.body;
        out.latency = r.latency + config_.render_overhead;
        out.source = r.source;
        out.rendered_on_device = true;
        return out;
      }
      // Legacy path: identity crosses the boundary, nothing cacheable.
      FetchResult r = Fetch(base + "&user=" + std::to_string(user_id));
      out.content = r.response.body;
      out.latency = r.latency;
      out.source = r.source;
      return out;
    }
  }
  return out;
}

void ClientProxy::Audit(const http::HttpRequest& request) {
  if (auditor_ != nullptr) auditor_->Inspect(request);
}

void ClientProxy::Touch() {
  last_active_ = clock_->Now();
  EnsureThawed();
}

void ClientProxy::EnsureThawed() {
  if (!browser_cache_frozen_) return;
  // Thaw rebuilds contents, recency order and stats exactly; a corrupt
  // blob (impossible barring memory corruption — we wrote it) degrades to
  // an empty cache rather than crashing the fleet.
  browser_cache_.Thaw(frozen_browser_cache_);
  std::string().swap(frozen_browser_cache_);
  browser_cache_frozen_ = false;
  ++thaws_;
}

void ClientProxy::FreezeBrowserCache() {
  if (browser_cache_frozen_) return;
  // An empty live cache is already smaller than any blob — but only if it
  // has no history to preserve: stats and eviction counters survive a
  // freeze only via the blob, so a used-but-currently-empty cache still
  // takes the serialize path.
  const cache::HttpCacheStats& s = browser_cache_.stats();
  if (browser_cache_.size() == 0 && s.stores == 0 && s.misses == 0 &&
      s.store_rejects == 0 && s.purges == 0) {
    return;
  }
  frozen_browser_cache_ = browser_cache_.Freeze();
  // Replace (not Clear) the live structure so its hash-bucket arrays and
  // list nodes are actually returned to the allocator.
  browser_cache_ = cache::HttpCache(/*shared=*/false,
                                    config_.browser_cache_bytes);
  browser_cache_frozen_ = true;
  ++freezes_;
}

}  // namespace speedkit::proxy
