// The origin: renders HTTP responses from the object store and stamps them
// with TTLs from the configured policy.
//
// Routes (all under one host, matching the key conventions in
// invalidation/pipeline.h):
//   /api/records/<id>                 record detail (ETag "v<version>")
//   /api/queries/<query-id>           materialized query result listing
//   /api/fragments/<block>?seg=<s>    segment-scoped dynamic block
//   /api/fragments/<block>?tpl=1      anonymous template of a user block
//                                     (cacheable; placeholders only)
//   /api/fragments/<block>?user=<id>  legacy personalized block — rendered
//                                     with PII, Cache-Control: private,
//                                     no-store (the non-GDPR baseline)
//   /assets/<name>                    immutable static asset
//   /pages/<name>                     page shell
//   /sketch                           current Cache Sketch snapshot
//
// Query results are materialized incrementally from the store's write feed
// (before/after membership deltas), so listing requests are O(result), not
// O(catalog). Every cacheable response is recorded in the ExpiryBook — the
// sketch's source of stale horizons. Conditional requests (If-None-Match)
// yield 304 with refreshed freshness.
#ifndef SPEEDKIT_ORIGIN_ORIGIN_SERVER_H_
#define SPEEDKIT_ORIGIN_ORIGIN_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/lru_cache.h"
#include "coherence/sketch_publication.h"
#include "common/sim_time.h"
#include "http/message.h"
#include "invalidation/expiry_book.h"
#include "invalidation/predicate.h"
#include "sim/clock.h"
#include "storage/object_store.h"
#include "ttl/ttl_policy.h"

namespace speedkit::origin {

struct OriginConfig {
  std::string host = "shop.example.com";
  size_t asset_bytes = 40 * 1024;
  size_t shell_bytes = 30 * 1024;
  size_t fragment_bytes = 2 * 1024;
  // Fixed freshness for immutable assets and shells.
  Duration asset_ttl = Duration::Seconds(86400);
  Duration shell_ttl = Duration::Seconds(300);

  // stale-while-revalidate window as a fraction of each response's TTL
  // (0 disables). Safe under sketch coherence: a written key is flagged,
  // so SWR only ever re-serves content that is merely TTL-expired, not
  // actually changed. The ExpiryBook horizon covers TTL + SWR.
  double swr_fraction = 0.5;

  // Byte size of an optimized asset variant relative to the original
  // (Speed Kit's image/asset optimization service); served for requests
  // carrying skopt=1.
  double optimized_asset_factor = 0.55;

  // Server-side processing costs (DB access + templating) charged per
  // request via HttpResponse::server_time — the quantity the server-side
  // render cache saves.
  Duration record_render_time = Duration::Millis(8);
  Duration query_render_time = Duration::Millis(25);
  Duration fragment_render_time = Duration::Millis(5);
  Duration asset_render_time = Duration::Millis(1);
  Duration shell_render_time = Duration::Millis(15);
  // Serving a cached render / validating a 304.
  Duration render_cache_hit_time = Duration::Micros(500);

  // The polyglot architecture's server cache tier (Redis-style rendered
  // responses keyed by content version, so it can never serve stale).
  // 0 disables.
  size_t render_cache_entries = 100000;
};

struct OriginStats {
  uint64_t requests = 0;
  uint64_t not_modified = 0;  // 304s served
  uint64_t record_requests = 0;
  uint64_t query_requests = 0;
  uint64_t fragment_requests = 0;
  uint64_t asset_requests = 0;
  uint64_t sketch_requests = 0;
  uint64_t rejected_unavailable = 0;
  uint64_t render_cache_hits = 0;
  uint64_t render_cache_misses = 0;
  // Total processing time spent (and avoided) rendering.
  int64_t render_time_us = 0;
  int64_t render_time_saved_us = 0;
};

class OriginServer {
 public:
  // `publication` may be null (baselines without coherence); when set it is
  // the coherence tier's sketch-publication handle and backs the /sketch
  // route. `ttl_policy` is owned by the caller and must outlive the server.
  OriginServer(const OriginConfig& config, sim::SimClock* clock,
               storage::ObjectStore* store, ttl::TtlPolicy* ttl_policy,
               coherence::SketchPublication* publication);

  // Registers a query whose result is exposed at /api/queries/<query.id>.
  Status RegisterQuery(invalidation::Query query);

  // Observes every materialized-result version bump (cache key, new
  // version). The staleness tracker hangs off this to date query-result
  // versions the same way it dates record versions.
  using QueryVersionListener =
      std::function<void(const std::string& cache_key, uint64_t version)>;
  void SetQueryVersionListener(QueryVersionListener listener) {
    query_version_listener_ = std::move(listener);
  }

  // Serves one request on the simulated clock.
  http::HttpResponse Handle(const http::HttpRequest& request);

  // Fault injection: while unavailable, every request returns 503.
  void set_available(bool available) { available_ = available; }
  bool available() const { return available_; }

  invalidation::ExpiryBook& expiry_book() { return expiry_book_; }
  const OriginStats& stats() const { return stats_; }

 private:
  struct MaterializedQuery {
    invalidation::Query query;
    // All predicate-matching records, ascending by (sort value, id); for
    // unordered queries the sort value is a constant and id order rules.
    std::vector<std::pair<storage::FieldValue, std::string>> members;
    // The currently visible slice (ordering direction + limit applied).
    std::vector<std::string> visible;
    uint64_t result_version = 1;

    storage::FieldValue SortValueOf(const storage::Record& record) const;
    void Insert(const storage::Record& record);
    bool EraseById(const std::string& id);
    std::vector<std::string> ComputeVisible() const;
  };

  void OnWrite(const storage::Record* before, const storage::Record& after);

  http::HttpResponse ServeRecord(const http::HttpRequest& request,
                                 std::string_view id);
  http::HttpResponse ServeQuery(const http::HttpRequest& request,
                                std::string_view query_id);
  http::HttpResponse ServeFragment(const http::HttpRequest& request,
                                   std::string_view block_id);
  http::HttpResponse ServeAsset(const http::HttpRequest& request,
                                std::string_view name);
  http::HttpResponse ServeShell(const http::HttpRequest& request,
                                std::string_view name);
  http::HttpResponse ServeSketch();

  // Applies TTL policy + ETag + expiry-book accounting, honouring
  // If-None-Match. `body_version` feeds both the ETag and staleness checks.
  http::HttpResponse Finish(const http::HttpRequest& request,
                            std::string body, uint64_t body_version,
                            Duration ttl, bool shared_cacheable);

  // Charges server processing time onto the response: full render cost on
  // a render-cache miss, the cache-hit cost when this (key, version) was
  // rendered before, validation cost for 304s.
  void ChargeServerTime(const http::HttpRequest& request,
                        Duration render_time, http::HttpResponse* resp);

  OriginConfig config_;
  sim::SimClock* clock_;
  storage::ObjectStore* store_;
  ttl::TtlPolicy* ttl_policy_;
  coherence::SketchPublication* publication_;
  bool available_ = true;

  std::unordered_map<std::string, MaterializedQuery> queries_;
  invalidation::ExpiryBook expiry_book_;
  QueryVersionListener query_version_listener_;
  // Render cache: cache key -> last rendered content version. Version-
  // keyed, so it can never serve a stale render.
  cache::LruCache<uint64_t> render_cache_;
  OriginStats stats_;
};

}  // namespace speedkit::origin

#endif  // SPEEDKIT_ORIGIN_ORIGIN_SERVER_H_
