#include "origin/origin_server.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "invalidation/pipeline.h"

namespace speedkit::origin {

namespace {

// Deterministic filler so synthetic bodies hit their target transfer size.
std::string FillBody(std::string prefix, size_t target_bytes) {
  if (prefix.size() < target_bytes) {
    prefix.append(target_bytes - prefix.size(), 'x');
  }
  return prefix;
}

// Extracts "name=value" from a query string; empty when absent.
std::string_view QueryParam(std::string_view query, std::string_view name) {
  for (std::string_view pair : SplitView(query, '&')) {
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    if (EqualsIgnoreCase(pair.substr(0, eq), name)) {
      return pair.substr(eq + 1);
    }
  }
  return {};
}

std::string VersionETag(uint64_t version) {
  return "\"v" + std::to_string(version) + "\"";
}

}  // namespace

OriginServer::OriginServer(const OriginConfig& config, sim::SimClock* clock,
                           storage::ObjectStore* store,
                           ttl::TtlPolicy* ttl_policy,
                           coherence::SketchPublication* publication)
    : config_(config),
      clock_(clock),
      store_(store),
      ttl_policy_(ttl_policy),
      publication_(publication),
      render_cache_(config.render_cache_entries) {
  store_->AddWriteListener(
      [this](const storage::Record* before, const storage::Record& after) {
        OnWrite(before, after);
      });
}

storage::FieldValue OriginServer::MaterializedQuery::SortValueOf(
    const storage::Record& record) const {
  if (!query.IsOrdered()) return storage::FieldValue(static_cast<int64_t>(0));
  const storage::FieldValue* value = record.GetField(query.order_by);
  // Records missing the sort field sort first (SQL NULLS FIRST).
  if (value == nullptr) return storage::FieldValue(INT64_MIN);
  return *value;
}

void OriginServer::MaterializedQuery::Insert(const storage::Record& record) {
  std::pair<storage::FieldValue, std::string> entry{SortValueOf(record),
                                                    record.id};
  auto less = [](const auto& a, const auto& b) {
    if (invalidation::TotalOrderLess(a.first, b.first)) return true;
    if (invalidation::TotalOrderLess(b.first, a.first)) return false;
    return a.second < b.second;
  };
  members.insert(std::lower_bound(members.begin(), members.end(), entry, less),
                 std::move(entry));
}

bool OriginServer::MaterializedQuery::EraseById(const std::string& id) {
  for (auto it = members.begin(); it != members.end(); ++it) {
    if (it->second == id) {
      members.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<std::string> OriginServer::MaterializedQuery::ComputeVisible()
    const {
  std::vector<std::string> out;
  size_t n = members.size();
  size_t take = query.limit == 0 ? n : std::min(query.limit, n);
  out.reserve(take);
  if (query.descending) {
    for (size_t i = 0; i < take; ++i) out.push_back(members[n - 1 - i].second);
  } else {
    for (size_t i = 0; i < take; ++i) out.push_back(members[i].second);
  }
  return out;
}

Status OriginServer::RegisterQuery(invalidation::Query query) {
  if (queries_.count(query.id) != 0) {
    return Status::AlreadyExists("query registered: " + query.id);
  }
  MaterializedQuery mq;
  mq.query = query;
  store_->Scan([&mq](const storage::Record& record) {
    if (mq.query.Matches(record)) mq.Insert(record);
  });
  mq.visible = mq.ComputeVisible();
  queries_.emplace(query.id, std::move(mq));
  return Status::Ok();
}

void OriginServer::OnWrite(const storage::Record* before,
                           const storage::Record& after) {
  SimTime now = clock_->Now();
  ttl_policy_->ObserveWrite(invalidation::RecordCacheKey(after.id), now);
  for (auto& [id, mq] : queries_) {
    bool was_member = mq.EraseById(after.id);
    bool is_member = mq.query.Matches(after);
    if (!was_member && !is_member) continue;
    if (is_member) mq.Insert(after);

    // The rendered result changed iff the visible slice changed, or the
    // written record sits inside the (old or new) slice — an in-place
    // field change of a visible member changes the body even when the
    // slice's id sequence is identical.
    std::vector<std::string> new_visible = mq.ComputeVisible();
    auto contains = [&](const std::vector<std::string>& ids) {
      return std::find(ids.begin(), ids.end(), after.id) != ids.end();
    };
    bool changed = new_visible != mq.visible || contains(mq.visible) ||
                   contains(new_visible);
    mq.visible = std::move(new_visible);
    if (!changed) continue;

    mq.result_version++;
    ttl_policy_->ObserveWrite(invalidation::QueryCacheKey(id), now);
    if (query_version_listener_) {
      query_version_listener_(invalidation::QueryCacheKey(id),
                              mq.result_version);
    }
  }
}

http::HttpResponse OriginServer::Handle(const http::HttpRequest& request) {
  stats_.requests++;
  if (!available_) {
    stats_.rejected_unavailable++;
    return http::MakeServiceUnavailable();
  }
  const std::string& path = request.url.path();
  if (StartsWith(path, "/api/records/")) {
    stats_.record_requests++;
    http::HttpResponse resp =
        ServeRecord(request, std::string_view(path).substr(13));
    ChargeServerTime(request, config_.record_render_time, &resp);
    return resp;
  }
  if (StartsWith(path, "/api/queries/")) {
    stats_.query_requests++;
    http::HttpResponse resp =
        ServeQuery(request, std::string_view(path).substr(13));
    ChargeServerTime(request, config_.query_render_time, &resp);
    return resp;
  }
  if (StartsWith(path, "/api/fragments/")) {
    stats_.fragment_requests++;
    http::HttpResponse resp =
        ServeFragment(request, std::string_view(path).substr(15));
    ChargeServerTime(request, config_.fragment_render_time, &resp);
    return resp;
  }
  if (StartsWith(path, "/assets/")) {
    stats_.asset_requests++;
    http::HttpResponse resp =
        ServeAsset(request, std::string_view(path).substr(8));
    ChargeServerTime(request, config_.asset_render_time, &resp);
    return resp;
  }
  if (StartsWith(path, "/pages/")) {
    stats_.asset_requests++;
    http::HttpResponse resp =
        ServeShell(request, std::string_view(path).substr(7));
    ChargeServerTime(request, config_.shell_render_time, &resp);
    return resp;
  }
  if (path == "/sketch") {
    stats_.sketch_requests++;
    return ServeSketch();
  }
  return http::MakeNotFound();
}

void OriginServer::ChargeServerTime(const http::HttpRequest& request,
                                    Duration render_time,
                                    http::HttpResponse* resp) {
  if (!resp->ok() && !resp->IsNotModified()) return;
  if (resp->IsNotModified()) {
    // Validation needs the current version, not a render.
    resp->server_time = config_.render_cache_hit_time;
    return;
  }
  if (config_.render_cache_entries == 0) {
    resp->server_time = render_time;
    stats_.render_cache_misses++;
    stats_.render_time_us += render_time.micros();
    return;
  }
  std::string key = request.url.CacheKey();
  uint64_t* cached_version = render_cache_.Get(key);
  if (cached_version != nullptr && *cached_version == resp->object_version) {
    stats_.render_cache_hits++;
    stats_.render_time_saved_us +=
        (render_time - config_.render_cache_hit_time).micros();
    resp->server_time = config_.render_cache_hit_time;
    return;
  }
  stats_.render_cache_misses++;
  stats_.render_time_us += render_time.micros();
  render_cache_.Put(key, resp->object_version);
  resp->server_time = render_time;
}

http::HttpResponse OriginServer::ServeRecord(const http::HttpRequest& request,
                                             std::string_view id) {
  const storage::Record* record = store_->Peek(id);
  if (record == nullptr) return http::MakeNotFound();
  Duration ttl = ttl_policy_->TtlFor(request.url.CacheKey(), clock_->Now());
  return Finish(request, record->Render(), record->version, ttl,
                /*shared_cacheable=*/true);
}

http::HttpResponse OriginServer::ServeQuery(const http::HttpRequest& request,
                                            std::string_view query_id) {
  auto it = queries_.find(std::string(query_id));
  if (it == queries_.end()) return http::MakeNotFound();
  const MaterializedQuery& mq = it->second;
  std::string body = "{\"query\":\"" + mq.query.id + "\",\"results\":[";
  bool first = true;
  for (const std::string& member : mq.visible) {
    if (!first) body += ",";
    first = false;
    const storage::Record* record = store_->Peek(member);
    if (record != nullptr) body += record->Render();
  }
  body += "]}";
  Duration ttl = ttl_policy_->TtlFor(request.url.CacheKey(), clock_->Now());
  return Finish(request, std::move(body), mq.result_version, ttl,
                /*shared_cacheable=*/true);
}

http::HttpResponse OriginServer::ServeFragment(const http::HttpRequest& request,
                                               std::string_view block_id) {
  const std::string& query = request.url.query();
  std::string_view user = QueryParam(query, "user");
  if (!user.empty()) {
    // Legacy personalization: rendered per user, carries identity, never
    // cacheable anywhere. This is the baseline GDPR mode replaces.
    std::string body = FillBody(
        StrFormat("<div class=\"%s\">Hello user %s! Recommendations: ...",
                  std::string(block_id).c_str(), std::string(user).c_str()),
        config_.fragment_bytes);
    http::HttpResponse resp;
    resp.status_code = 200;
    resp.body = std::move(body);
    http::CacheControl cc;
    cc.is_private = true;
    cc.no_store = true;
    resp.SetCacheControl(cc);
    resp.object_version = 1;
    resp.generated_at = clock_->Now();
    return resp;
  }

  std::string prefix;
  if (QueryParam(query, "tpl") == "1") {
    // Anonymous template of a user-scoped block: placeholders only, fully
    // cacheable. The client proxy joins it with vault data on-device.
    prefix = StrFormat(
        "<div class=\"%s\">Hello {{name}}! Your cart: {{cart}}. "
        "Recommendations for {{segment}}: ...",
        std::string(block_id).c_str());
  } else {
    std::string_view seg = QueryParam(query, "seg");
    prefix = StrFormat("<div class=\"%s\" data-segment=\"%s\">...",
                       std::string(block_id).c_str(),
                       std::string(seg).c_str());
  }
  Duration ttl = ttl_policy_->TtlFor(request.url.CacheKey(), clock_->Now());
  return Finish(request, FillBody(std::move(prefix), config_.fragment_bytes),
                /*body_version=*/1, ttl, /*shared_cacheable=*/true);
}

http::HttpResponse OriginServer::ServeAsset(const http::HttpRequest& request,
                                            std::string_view name) {
  // skopt=1 requests the optimized variant (transcoded/minified by the
  // acceleration service): same content, fewer bytes.
  size_t bytes = config_.asset_bytes;
  std::string prefix = "asset:" + std::string(name) + ";";
  if (QueryParam(request.url.query(), "skopt") == "1") {
    bytes = static_cast<size_t>(static_cast<double>(bytes) *
                                config_.optimized_asset_factor);
    prefix = "asset-optimized:" + std::string(name) + ";";
  }
  return Finish(request, FillBody(std::move(prefix), bytes),
                /*body_version=*/1, config_.asset_ttl,
                /*shared_cacheable=*/true);
}

http::HttpResponse OriginServer::ServeShell(const http::HttpRequest& request,
                                            std::string_view name) {
  std::string body =
      FillBody("<html><!-- shell:" + std::string(name) + " -->",
               config_.shell_bytes);
  // HTML is dynamic content: its cacheability is exactly what the TTL
  // policy (and with it the deployed system variant) decides. A site
  // without coherence ships no-cache HTML; Speed Kit's estimator makes the
  // shell cacheable because the sketch bounds its staleness. The
  // configured shell_ttl caps the policy's answer.
  Duration ttl = std::min(
      ttl_policy_->TtlFor(request.url.CacheKey(), clock_->Now()),
      config_.shell_ttl);
  return Finish(request, std::move(body), /*body_version=*/1, ttl,
                /*shared_cacheable=*/true);
}

http::HttpResponse OriginServer::ServeSketch() {
  http::HttpResponse resp;
  resp.status_code = 200;
  // Sketchless origins still serve the route: a publication over a null
  // sketch yields the constant empty filter's bytes.
  static coherence::SketchPublication empty_publication(nullptr);
  coherence::SketchPublication* pub =
      publication_ != nullptr ? publication_ : &empty_publication;
  resp.body = *pub->Serialized(clock_->Now());
  http::CacheControl cc;
  cc.no_store = true;  // snapshots must never be cached
  resp.SetCacheControl(cc);
  resp.generated_at = clock_->Now();
  return resp;
}

http::HttpResponse OriginServer::Finish(const http::HttpRequest& request,
                                        std::string body,
                                        uint64_t body_version, Duration ttl,
                                        bool shared_cacheable) {
  SimTime now = clock_->Now();
  http::CacheControl cc;
  cc.is_public = shared_cacheable;
  Duration swr = Duration::Zero();
  if (ttl > Duration::Zero()) {
    cc.max_age = ttl;
    if (config_.swr_fraction > 0) {
      swr = ttl * config_.swr_fraction;
      cc.stale_while_revalidate = swr;
    }
  } else {
    cc.no_cache = true;  // storable, but must be revalidated before use
    cc.max_age = Duration::Zero();
  }
  std::string etag = VersionETag(body_version);

  if (ttl > Duration::Zero()) {
    // The stale horizon must cover the SWR window too: a client may
    // legitimately re-serve this copy that long.
    expiry_book_.RecordServed(request.url.CacheKey(), now + ttl + swr);
  }

  if (auto inm = request.headers.Get("If-None-Match");
      inm.has_value() && *inm == etag) {
    stats_.not_modified++;
    return http::MakeNotModified(etag, cc, body_version, now);
  }

  http::HttpResponse resp =
      http::MakeOkResponse(std::move(body), cc, body_version, now);
  resp.SetETag(etag);
  return resp;
}

}  // namespace speedkit::origin
