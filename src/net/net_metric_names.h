// Canonical metric names for the socketed edge mode (src/net + the edged
// front end). Split from obs/metric_names.h so the simulation-only build
// surface is untouched by networking, but governed by the same contract:
// every name here MUST be documented in docs/METRICS.md, and CI enforces
// both directions via tools/check_metrics_docs.py (which parses the quoted
// literals in BOTH headers — keep one constant per line, nothing else
// quoted).
#ifndef SPEEDKIT_NET_NET_METRIC_NAMES_H_
#define SPEEDKIT_NET_NET_METRIC_NAMES_H_

#include <string_view>

namespace speedkit::net {

// -- connection lifecycle (EdgedServer / EventLoop) ------------------------
inline constexpr std::string_view kNetAccepts = "net.accepts";
inline constexpr std::string_view kNetOpenConnections = "net.open_connections";
inline constexpr std::string_view kNetIdleTimeouts = "net.idle_timeouts";
inline constexpr std::string_view kNetProtocolErrors = "net.protocol_errors";

// -- request path ----------------------------------------------------------
inline constexpr std::string_view kNetRequests = "net.requests";
inline constexpr std::string_view kNetResponses = "net.responses";
inline constexpr std::string_view kNetBytesIn = "net.bytes_in";
inline constexpr std::string_view kNetBytesOut = "net.bytes_out";
inline constexpr std::string_view kNetHandleUs = "net.handle_us";

// -- ring routing + origin coalescing --------------------------------------
inline constexpr std::string_view kNetRingMisroutes = "net.ring_misroutes";
inline constexpr std::string_view kNetFlightLeaders = "net.flight_leaders";
inline constexpr std::string_view kNetFlightJoins = "net.flight_joins";

}  // namespace speedkit::net

#endif  // SPEEDKIT_NET_NET_METRIC_NAMES_H_
