#include "net/loadgen.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/random.h"
#include "common/strings.h"
#include "http/url.h"
#include "net/hash_ring.h"
#include "net/http_codec.h"
#include "net/tcp_listener.h"
#include "workload/zipf.h"

namespace speedkit::net {

namespace {

// Blocking socket with a receive deadline: the loadgen's closed loop has
// nothing useful to do while a response is in flight.
void MakeBlocking(int fd, int recv_timeout_ms) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  struct timeval tv;
  tv.tv_sec = recv_timeout_ms / 1000;
  tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

// One request key, pre-resolved: what the worker loop needs per send.
struct RequestPlan {
  std::string target;  // origin-form
  std::string host;
  size_t target_index;  // which LoadGenTarget serves this key
};

struct WorkerState {
  LoadGenReport report;
  std::vector<int> fds;  // one keep-alive connection per target, lazy
};

}  // namespace

double LoadGenReport::HitRate() const {
  if (responses == 0) return 0.0;
  uint64_t origin = 0;
  if (auto it = sources.find("origin"); it != sources.end()) {
    origin = it->second;
  }
  return 1.0 - static_cast<double>(origin) / static_cast<double>(responses);
}

LoadGenReport RunLoadGen(const LoadGenConfig& config) {
  // Resolve every hot product once: URL parse + ring routing are identical
  // across workers, so hoisting them keeps the closed loop send/recv-bound.
  workload::Catalog catalog(config.catalog, Pcg32(config.seed));
  HashRing ring(config.ring_replicas);
  std::unordered_map<std::string, size_t> target_of;
  for (size_t i = 0; i < config.targets.size(); ++i) {
    ring.AddNode(config.targets[i].node_name);
    target_of[config.targets[i].node_name] = i;
  }
  size_t hot = config.hot_products;
  if (hot == 0 || hot > catalog.num_products()) hot = catalog.num_products();
  std::vector<RequestPlan> plans;
  plans.reserve(hot);
  for (size_t rank = 0; rank < hot; ++rank) {
    auto url = http::Url::Parse(catalog.ProductUrl(rank));
    RequestPlan plan;
    plan.host = url->host();
    plan.target = url->path();
    if (!url->query().empty()) plan.target += "?" + url->query();
    plan.target_index = target_of.at(std::string(ring.NodeFor(url->CacheKey())));
    plans.push_back(std::move(plan));
  }
  workload::ZipfGenerator popularity(hot, config.zipf_s);

  auto run_start = std::chrono::steady_clock::now();
  std::vector<WorkerState> workers(static_cast<size_t>(config.workers));
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (size_t w = 0; w < workers.size(); ++w) {
    threads.emplace_back([&, w] {
      WorkerState& state = workers[w];
      LoadGenReport& rep = state.report;
      state.fds.assign(config.targets.size(), -1);
      Pcg32 rng = Pcg32(config.seed).Fork(0x10ad0000 + w);
      std::string buf;

      for (uint64_t i = 0; i < config.requests_per_worker; ++i) {
        const RequestPlan& plan = plans[popularity.Sample(rng)];
        int& fd = state.fds[plan.target_index];
        if (fd < 0) {
          const LoadGenTarget& t = config.targets[plan.target_index];
          fd = TcpConnect(t.host, t.port, config.connect_timeout_ms);
          if (fd < 0) {
            rep.requests++;
            rep.transport_errors++;
            continue;
          }
          MakeBlocking(fd, config.response_timeout_ms);
        }

        http::HeaderMap headers;
        headers.Set("Host", plan.host);
        headers.Set("X-SpeedKit-Client", std::to_string(w));
        std::string wire =
            SerializeRequest(http::Method::kGet, plan.target, headers);

        rep.requests++;
        auto t0 = std::chrono::steady_clock::now();
        if (!SendAll(fd, wire)) {
          rep.transport_errors++;
          ::close(fd);
          fd = -1;
          continue;
        }
        rep.bytes_out += wire.size();

        WireResponse resp;
        bool got = false;
        buf.clear();
        while (true) {
          size_t consumed = 0;
          ParseStatus st = ParseResponse(buf, &resp, &consumed);
          if (st == ParseStatus::kOk) {
            got = true;
            break;
          }
          if (st == ParseStatus::kError) break;
          char chunk[16 * 1024];
          ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
          if (n <= 0) break;  // timeout, reset, or EOF mid-response
          buf.append(chunk, static_cast<size_t>(n));
        }
        if (!got) {
          rep.transport_errors++;
          ::close(fd);
          fd = -1;
          continue;
        }

        auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0);
        rep.responses++;
        rep.bytes_in += buf.size();
        rep.wall_latency_us.Add(elapsed.count());
        if (resp.status_code >= 500) {
          rep.errors_5xx++;
        } else if (resp.status_code >= 400) {
          rep.errors_4xx++;
        } else if (resp.status_code != 200) {
          rep.errors_2xx_other++;
        }
        if (auto src = resp.headers.Get("X-SpeedKit-Source")) {
          rep.sources[std::string(*src)]++;
        }
        if (auto lat = resp.headers.Get("X-SpeedKit-Latency-Us")) {
          if (auto us = ParseInt64(*lat)) rep.predicted_us.Add(*us);
        }
        if (!resp.keep_alive) {
          ::close(fd);
          fd = -1;
        }
      }
      for (int& fd : state.fds) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LoadGenReport total;
  for (const WorkerState& state : workers) {
    const LoadGenReport& r = state.report;
    total.requests += r.requests;
    total.responses += r.responses;
    total.errors_2xx_other += r.errors_2xx_other;
    total.errors_4xx += r.errors_4xx;
    total.errors_5xx += r.errors_5xx;
    total.transport_errors += r.transport_errors;
    total.bytes_in += r.bytes_in;
    total.bytes_out += r.bytes_out;
    for (const auto& [name, n] : r.sources) total.sources[name] += n;
    total.wall_latency_us.Merge(r.wall_latency_us);
    total.predicted_us.Merge(r.predicted_us);
  }
  total.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - run_start)
          .count();
  return total;
}

}  // namespace speedkit::net
