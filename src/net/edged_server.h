// speedkit_edged — the real-socket edge front end.
//
// One EdgedServer is one edge node: an epoll event loop accepting plain
// HTTP/1.1 over TCP, whose request path runs the *same* SpeedKitStack /
// ClientProxy / HttpCache / CacheSketch code the simulator drives — no
// forked cache logic, only a different substrate. Wall-clock time maps
// 1:1 onto the embedded stack's simulated clock (the stack is advanced to
// `sim_start + wall_elapsed` before each request), so TTL expiry, sketch
// refresh intervals and origin-flight windows all play out in real time.
//
// Multiple instances form an edge tier through a consistent-hash ring
// (net/hash_ring.h): clients route keys to nodes themselves, like
// memcached clients; an instance can optionally reject keys the ring
// assigns elsewhere with 421 Misdirected Request. Concurrent requests for
// a key whose origin fetch is still in flight coalesce single-flight
// style when the embedded stack runs OriginFlightMode::kCoalesce — the
// wall-time mapping turns the sim's flight window into a real one.
//
// Request protocol (see docs/OPERATIONS.md for the operator view):
//   * client identity: X-SpeedKit-Client: <uint64> (default 0) selects the
//     per-client proxy — browser cache, sketch snapshot and PII stay per
//     client, exactly as in the simulation;
//   * the absolute cache URL is https://<Host header><target> — the edge
//     fronts the canonical origin, whose keys are https-scheme;
//   * responses carry X-SpeedKit-Source (which tier served) and
//     X-SpeedKit-Latency-Us (the latency the simulation model predicts
//     for this serve — what fig_socketed compares wall latency against).
// Admin endpoints: /healthz, /ringz, /metricsz (flat JSON of the net.*
// metrics plus proxy/CDN/origin counters).
#ifndef SPEEDKIT_NET_EDGED_SERVER_H_
#define SPEEDKIT_NET_EDGED_SERVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/stack.h"
#include "net/connection.h"
#include "net/event_loop.h"
#include "net/hash_ring.h"
#include "net/http_codec.h"
#include "net/tcp_listener.h"
#include "obs/metrics.h"
#include "proxy/client_pool.h"
#include "workload/catalog.h"

namespace speedkit::net {

struct EdgedConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read back via port() after Start()

  // Ring topology: this node's name and the full member list (order
  // matters only for display; placement is name-hashed). An empty list
  // means a solo node. `reject_misrouted` returns 421 for keys the ring
  // assigns to another member; off, they are served anyway (useful while
  // a topology change propagates) and only counted.
  std::string node_name = "edge-0";
  std::vector<std::string> ring_nodes;
  int ring_replicas = 200;
  bool reject_misrouted = false;

  int idle_timeout_ms = 30000;  // connections idle longer are closed

  // The embedded stack. Callers pick the variant/seed/network exactly as
  // for a simulation; kCoalesce is the natural flight mode here (the
  // tools default to it) since the socket tier has real in-flight windows.
  core::StackConfig stack;

  // Seed the origin's object store with a synthetic catalog so the edge
  // has content to serve out of the box (off for harnesses that populate
  // their own).
  bool populate_catalog = true;
  workload::CatalogConfig catalog;

  // Sim-time advance applied once at construction, after the catalog is
  // populated. A just-populated stack is in a cold-start transient: the
  // TTL estimator has no samples and the published Cache Sketch still
  // flags every catalog key, so requests arriving in the first sim
  // moments bypass every cache. Warming past the transient makes the
  // first socket request behave like a steady-state one.
  Duration warmup = Duration::Seconds(1);
};

class EdgedServer {
 public:
  explicit EdgedServer(const EdgedConfig& config);
  ~EdgedServer();
  EdgedServer(const EdgedServer&) = delete;
  EdgedServer& operator=(const EdgedServer&) = delete;

  // Binds and starts accepting; false on bind failure. Also pins the
  // wall->sim time origin, so call it just before Run().
  bool Start();

  // Blocks dispatching until Stop(). Run from a dedicated thread for
  // in-process harnesses (fig_socketed, tests).
  void Run();

  // Thread-safe graceful shutdown: stop accepting, flush and close every
  // connection, then return from Run().
  void Stop();

  // Async-signal-safe shutdown for SIGINT/SIGTERM handlers: just breaks
  // the loop out of Run() (a flag store and an eventfd write — no locks);
  // connections close with the process.
  void Interrupt();

  uint16_t port() const { return listener_.port(); }
  const EdgedConfig& config() const { return config_; }

  // Introspection for in-process harnesses. Only safe to read while the
  // loop is not running (before Start or after Run returns).
  core::SpeedKitStack& stack() { return *stack_; }
  const proxy::ProxyStats& proxy_stats() const { return pool_->stats(); }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  void OnAccept(int fd);
  void OnData(Connection* conn);
  void OnConnectionClosed(Connection* conn);
  void ArmIdleSweep();

  // Advances the embedded stack to the sim instant corresponding to the
  // current wall clock.
  void SyncSimClock();

  WireResponse Handle(const WireRequest& req);
  WireResponse HandleCached(const WireRequest& req);
  std::string MetricsJson();
  proxy::ClientProxy* ClientFor(uint64_t client_id);

  EdgedConfig config_;
  EventLoop loop_;
  TcpListener listener_;
  HashRing ring_;

  std::unique_ptr<core::SpeedKitStack> stack_;
  std::unique_ptr<proxy::ClientPool> pool_;
  std::unordered_map<uint64_t, proxy::ClientProxy*> clients_;

  std::chrono::steady_clock::time_point wall_start_;
  SimTime sim_start_;

  // Keyed by pointer, not fd: by the time on_close fires the fd is gone.
  std::unordered_map<Connection*, std::unique_ptr<Connection>> conns_;
  EventLoop::TimerId idle_timer_ = EventLoop::kInvalidTimer;

  // net.* instruments (stable pointers into the registry).
  obs::MetricsRegistry metrics_;
  uint64_t* accepts_;
  int64_t* open_conns_;
  uint64_t* idle_timeouts_;
  uint64_t* protocol_errors_;
  uint64_t* requests_;
  uint64_t* responses_;
  uint64_t* bytes_in_;
  uint64_t* bytes_out_;
  Histogram* handle_us_;
  uint64_t* ring_misroutes_;
  uint64_t* flight_leaders_;
  uint64_t* flight_joins_;
};

}  // namespace speedkit::net

#endif  // SPEEDKIT_NET_EDGED_SERVER_H_
