#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cstdio>
#include <utility>

namespace speedkit::net {

namespace {

uint32_t ToEpoll(uint32_t events) {
  uint32_t e = 0;
  if (events & EventLoop::kReadable) e |= EPOLLIN;
  if (events & EventLoop::kWritable) e |= EPOLLOUT;
  return e;
}

uint32_t FromEpoll(uint32_t e) {
  uint32_t events = 0;
  if (e & (EPOLLIN | EPOLLPRI)) events |= EventLoop::kReadable;
  if (e & EPOLLOUT) events |= EventLoop::kWritable;
  if (e & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) events |= EventLoop::kClosed;
  return events;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    struct epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::Wake() {
  uint64_t one = 1;
  // A full eventfd counter still wakes the loop; ignore short writes.
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Stop() {
  stop_ = true;  // benign race: worst case the loop runs one extra batch
  Wake();
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  Wake();
}

void EventLoop::AddFd(int fd, uint32_t events, FdCallback cb) {
  struct epoll_event ev = {};
  ev.events = ToEpoll(events);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0) {
    fds_[fd] = std::move(cb);
  }
}

void EventLoop::ModifyFd(int fd, uint32_t events) {
  struct epoll_event ev = {};
  ev.events = ToEpoll(events);
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::RemoveFd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  fds_.erase(fd);
}

EventLoop::TimerId EventLoop::AddTimer(std::chrono::microseconds delay,
                                       std::function<void()> fn) {
  TimerId id = next_timer_id_++;
  timer_fns_[id] = std::move(fn);
  timer_heap_.push(
      TimerEntry{std::chrono::steady_clock::now() + delay, id});
  return id;
}

bool EventLoop::CancelTimer(TimerId id) {
  return timer_fns_.erase(id) > 0;  // heap entry expires silently
}

int EventLoop::NextTimeoutMs(std::chrono::milliseconds cap) const {
  if (timer_fns_.empty()) {
    return cap.count() < 0 ? -1 : static_cast<int>(cap.count());
  }
  // The heap top may be cancelled, but waking early for it is harmless —
  // the loop just recomputes. Only live timers matter for correctness.
  auto now = std::chrono::steady_clock::now();
  auto until = timer_heap_.empty()
                   ? std::chrono::milliseconds(0)
                   : std::chrono::duration_cast<std::chrono::milliseconds>(
                         timer_heap_.top().deadline - now) +
                         std::chrono::milliseconds(1);
  if (until.count() < 0) until = std::chrono::milliseconds(0);
  if (cap.count() >= 0 && until > cap) until = cap;
  return static_cast<int>(until.count());
}

void EventLoop::FireDueTimers() {
  auto now = std::chrono::steady_clock::now();
  while (!timer_heap_.empty() && timer_heap_.top().deadline <= now) {
    TimerId id = timer_heap_.top().id;
    timer_heap_.pop();
    auto it = timer_fns_.find(id);
    if (it == timer_fns_.end()) continue;  // cancelled
    std::function<void()> fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();
  }
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::RunOnce(std::chrono::milliseconds wait) {
  struct epoll_event events[64];
  int n = ::epoll_wait(epoll_fd_, events, 64, NextTimeoutMs(wait));
  for (int i = 0; i < n; ++i) {
    int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      uint64_t drained;
      (void)!::read(wake_fd_, &drained, sizeof(drained));
      continue;
    }
    // Look up at dispatch time: an earlier callback in this batch may have
    // removed this fd, in which case its events are stale.
    auto it = fds_.find(fd);
    if (it == fds_.end()) continue;
    // Copy: the callback may RemoveFd(fd) (invalidating `it`) or close the
    // connection that owns the callback itself.
    FdCallback cb = it->second;
    cb(FromEpoll(events[i].events));
  }
  FireDueTimers();
  DrainPosted();
}

void EventLoop::Run() {
  running_ = true;
  stop_ = false;
  while (!stop_) {
    RunOnce(std::chrono::milliseconds(-1));
  }
  running_ = false;
}

}  // namespace speedkit::net
