// Single-flight coalescing of duplicate in-flight work.
//
// When a cold or just-purged hot key is requested by many clients at once,
// a naive edge forwards every miss to the origin — the thundering herd the
// paper's CDN tier avoids by request collapsing. These primitives give the
// socketed stack (and anything else with duplicate expensive calls) that
// collapse:
//
//   * SingleFlight<V> — thread-safe, blocking. The first caller of
//     Do(key, fn) becomes the flight's leader and runs fn; concurrent
//     callers with the same key block until the leader finishes and share
//     its value (Outcome::shared = true). One fn execution per flight, N
//     results — asserted by tests/net/single_flight_test.cc with real
//     threads.
//
//   * AsyncSingleFlight<V> — the event-loop variant. Loop-affine (no
//     locks; one thread), callback-based: Begin() either makes the caller
//     the leader (who must later Complete(key, value)) or queues the
//     caller's callback onto the existing flight. speedkit_edged uses this
//     to hold concurrent requests for a key whose origin fetch is still
//     outstanding, releasing them all when the response lands.
//
// The simulator adopts the same mechanism deterministically through
// StackConfig::origin_flight (see cache/cdn.h FlightTable) — one concept,
// three execution substrates.
#ifndef SPEEDKIT_NET_SINGLE_FLIGHT_H_
#define SPEEDKIT_NET_SINGLE_FLIGHT_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace speedkit::net {

template <typename V>
class SingleFlight {
 public:
  struct Outcome {
    V value{};
    // True when this caller joined another caller's flight instead of
    // executing fn itself.
    bool shared = false;
  };

  // Runs fn under single-flight semantics for `key`. Exactly one of the
  // concurrent callers for a key executes fn; the rest block and receive
  // the leader's value. Sequential callers (no overlap) each run their own
  // flight — this coalesces concurrency, it is not a memoization cache.
  Outcome Do(const std::string& key, const std::function<V()>& fn) {
    std::shared_ptr<Call> call;
    {
      std::unique_lock<std::mutex> lock(mu_);
      auto it = calls_.find(key);
      if (it != calls_.end()) {
        call = it->second;
        ++joins_;
        call->cv.wait(lock, [&call] { return call->done; });
        return Outcome{call->value, true};
      }
      call = std::make_shared<Call>();
      calls_.emplace(key, call);
      ++flights_;
    }
    V value = fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      call->value = value;
      call->done = true;
      calls_.erase(key);
    }
    call->cv.notify_all();
    return Outcome{std::move(value), false};
  }

  // Flights led / calls absorbed into another caller's flight.
  uint64_t flights() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flights_;
  }
  uint64_t joins() const {
    std::lock_guard<std::mutex> lock(mu_);
    return joins_;
  }

 private:
  struct Call {
    std::condition_variable cv;
    bool done = false;
    V value{};
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Call>, StringHash,
                     std::equal_to<>>
      calls_;
  uint64_t flights_ = 0;
  uint64_t joins_ = 0;
};

// Event-loop single flight: callbacks instead of blocking. NOT thread-safe
// by design — it lives on one event loop, where blocking would stall every
// connection. The leader is responsible for eventually calling Complete
// (or Abandon on failure) exactly once.
template <typename V>
class AsyncSingleFlight {
 public:
  using Callback = std::function<void(const V&)>;
  enum class Role { kLeader, kJoined };

  // Leader: no flight for `key` existed; `on_ready` is NOT retained (the
  // leader produces the value and already has it when it completes).
  // Joined: `on_ready` will fire from Complete, in Begin order.
  Role Begin(const std::string& key, Callback on_ready) {
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      it->second.push_back(std::move(on_ready));
      ++joins_;
      return Role::kJoined;
    }
    flights_.emplace(key, std::vector<Callback>());
    ++leaders_;
    return Role::kLeader;
  }

  // Ends the flight, invoking every joined callback with `value`. Returns
  // how many fired. Callbacks are moved out first, so a callback that
  // re-Begins the same key starts a fresh flight instead of corrupting the
  // finished one.
  size_t Complete(const std::string& key, const V& value) {
    auto it = flights_.find(key);
    if (it == flights_.end()) return 0;
    std::vector<Callback> waiters = std::move(it->second);
    flights_.erase(it);
    for (Callback& cb : waiters) cb(value);
    return waiters.size();
  }

  // Drops the flight without a value (leader failed); returns the waiters
  // abandoned. Callers that need failure fan-out should Complete with a
  // sentinel value instead.
  size_t Abandon(const std::string& key) {
    auto it = flights_.find(key);
    if (it == flights_.end()) return 0;
    size_t n = it->second.size();
    flights_.erase(it);
    return n;
  }

  bool Active(const std::string& key) const {
    return flights_.find(key) != flights_.end();
  }
  size_t active() const { return flights_.size(); }
  uint64_t leaders() const { return leaders_; }
  uint64_t joins() const { return joins_; }

 private:
  std::unordered_map<std::string, std::vector<Callback>, StringHash,
                     std::equal_to<>>
      flights_;
  uint64_t leaders_ = 0;
  uint64_t joins_ = 0;
};

}  // namespace speedkit::net

#endif  // SPEEDKIT_NET_SINGLE_FLIGHT_H_
