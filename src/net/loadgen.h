// speedkit_loadgen — closed-loop TCP load generator for the edged tier.
//
// N workers, each a closed loop over its own keep-alive connections: draw
// a product rank from the shared Zipf popularity (the same
// workload::ZipfGenerator every simulation experiment sweeps), route the
// key through the SAME consistent-hash ring the edge tier runs (client-
// side routing, like a memcached client), send one HTTP/1.1 GET, block
// for the response, record wall latency and the X-SpeedKit-* annotations,
// repeat. Each worker is one client identity (one browser cache + sketch
// on the edge side), so hit patterns match a fleet of real devices.
//
// Deterministic request STREAMS (per-worker Pcg32 forked from the seed);
// the interleaving across workers is real concurrency and intentionally
// not deterministic — that is the thing the socketed mode adds over the
// simulator.
#ifndef SPEEDKIT_NET_LOADGEN_H_
#define SPEEDKIT_NET_LOADGEN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "workload/catalog.h"

namespace speedkit::net {

struct LoadGenTarget {
  std::string node_name;  // ring identity — must match the edged instance
  std::string host;       // TCP address, e.g. "127.0.0.1"
  uint16_t port = 0;
};

struct LoadGenConfig {
  std::vector<LoadGenTarget> targets;  // the edge ring, one entry per node
  int ring_replicas = 200;             // must match the edged instances
  int workers = 4;                     // closed-loop clients (threads)
  uint64_t requests_per_worker = 1000;
  uint64_t seed = 42;
  double zipf_s = 0.95;
  size_t hot_products = 500;  // Zipf ranks drawn from the first N products
  workload::CatalogConfig catalog;  // must match the edged instances
  int connect_timeout_ms = 2000;
  int response_timeout_ms = 5000;
};

struct LoadGenReport {
  uint64_t requests = 0;
  uint64_t responses = 0;
  uint64_t errors_2xx_other = 0;  // non-200 2xx/3xx (unexpected but not 5xx)
  uint64_t errors_4xx = 0;
  uint64_t errors_5xx = 0;
  uint64_t transport_errors = 0;  // connect/send/recv/parse failures
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  // Serve-tier split from X-SpeedKit-Source (browser_cache, edge_cache,
  // origin, ...). Ordered map for deterministic report output.
  std::map<std::string, uint64_t> sources;
  Histogram wall_latency_us;  // measured around each request/response
  Histogram predicted_us;     // X-SpeedKit-Latency-Us (the sim's model)
  double wall_seconds = 0;    // whole-run wall time

  // Cache hit rate as the experiments define it: served without an origin
  // round trip.
  double HitRate() const;
};

// Runs the configured load and blocks until every worker finishes.
LoadGenReport RunLoadGen(const LoadGenConfig& config);

}  // namespace speedkit::net

#endif  // SPEEDKIT_NET_LOADGEN_H_
