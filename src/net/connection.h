// Buffered, loop-affine TCP connection.
//
// Owns a nonblocking fd. Reads are drained into an input buffer and handed
// to on_data (which consumes parsed frames via Consume); writes go through
// Send, which flushes opportunistically and falls back to an output buffer
// plus EPOLLOUT when the socket backpressures. Close() is graceful — the
// output buffer drains first — CloseNow() is not.
//
// Lifetime: the owner (EdgedServer) keeps connections in a map keyed by fd
// and destroys one only from its on_close callback, which fires via
// EventLoop::Post — never from inside a Connection method — so callbacks
// can safely Close() the connection they are running on.
#ifndef SPEEDKIT_NET_CONNECTION_H_
#define SPEEDKIT_NET_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace speedkit::net {

class EventLoop;

class Connection {
 public:
  using DataCallback = std::function<void(Connection*)>;
  using CloseCallback = std::function<void(Connection*)>;

  Connection(EventLoop* loop, int fd);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void set_on_data(DataCallback cb) { on_data_ = std::move(cb); }
  void set_on_close(CloseCallback cb) { on_close_ = std::move(cb); }

  // Registers with the loop; call after the callbacks are set.
  void Start();

  // Unconsumed received bytes. on_data parses frames from the front and
  // acknowledges them with Consume(n); partial frames stay buffered.
  std::string_view input() const { return input_; }
  void Consume(size_t n);

  // Queues data for the peer (flushes inline when the socket allows).
  void Send(std::string_view data);

  // Graceful: closes once the output buffer drains. CloseNow drops it.
  void Close();
  void CloseNow();

  bool closed() const { return closed_; }
  int fd() const { return fd_; }
  uint64_t bytes_in() const { return bytes_in_; }
  uint64_t bytes_out() const { return bytes_out_; }

  // Last socket activity (read or successful write) — the idle-sweep input.
  std::chrono::steady_clock::time_point last_activity() const {
    return last_activity_;
  }

 private:
  void HandleEvent(uint32_t events);
  void ReadReady();
  void FlushWrites();
  void UpdateInterest();

  EventLoop* loop_;
  int fd_;
  bool closed_ = false;
  bool close_after_flush_ = false;
  bool want_write_ = false;

  std::string input_;
  std::string output_;
  uint64_t bytes_in_ = 0;
  uint64_t bytes_out_ = 0;
  std::chrono::steady_clock::time_point last_activity_;

  DataCallback on_data_;
  CloseCallback on_close_;
};

}  // namespace speedkit::net

#endif  // SPEEDKIT_NET_CONNECTION_H_
