// Minimal HTTP/1.1 wire codec for the socketed edge mode.
//
// Covers exactly what speedkit_edged and speedkit_loadgen exchange:
// origin-form request targets, headers, Content-Length bodies, keep-alive
// and pipelining. Deliberately out of scope (a request using them is a
// protocol error, never silently mis-framed): chunked transfer coding,
// multiline header folding, HTTP/0.9/2+. Parsing is incremental — feed the
// connection's read buffer, get kNeedMore until a full message is present,
// then the number of bytes to consume, so pipelined messages parse in a
// loop without copying the buffer.
#ifndef SPEEDKIT_NET_HTTP_CODEC_H_
#define SPEEDKIT_NET_HTTP_CODEC_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "http/message.h"

namespace speedkit::net {

enum class ParseStatus {
  kNeedMore,  // buffer holds a prefix of a valid message
  kOk,        // one full message parsed; *consumed bytes belong to it
  kError,     // malformed or over a hard limit; close the connection
};

// Hard limits: a peer that exceeds them is broken or hostile.
inline constexpr size_t kMaxHeaderBytes = 16 * 1024;
inline constexpr size_t kMaxBodyBytes = 8 * 1024 * 1024;

struct WireRequest {
  http::Method method = http::Method::kGet;
  std::string target;  // origin-form: "/path?query" exactly as sent
  http::HeaderMap headers;
  std::string body;
  bool keep_alive = true;  // Connection header applied to the HTTP version
};

struct WireResponse {
  int status_code = 0;
  http::HeaderMap headers;
  std::string body;
  bool keep_alive = true;
};

// Parses one request/response from the front of `data`. On kOk, *consumed
// is the exact frame length (parse the rest of the buffer by slicing).
ParseStatus ParseRequest(std::string_view data, WireRequest* out,
                         size_t* consumed);
ParseStatus ParseResponse(std::string_view data, WireResponse* out,
                          size_t* consumed);

// Serializes a request in origin form ("GET /x HTTP/1.1"). A Host header
// must already be in `headers` (edged rebuilds the absolute URL from it).
std::string SerializeRequest(http::Method method, std::string_view target,
                             const http::HeaderMap& headers,
                             std::string_view body = {});

// Serializes a response; Content-Length and Connection are emitted from
// the arguments, never taken from `headers`.
std::string SerializeResponse(int status_code, const http::HeaderMap& headers,
                              std::string_view body, bool keep_alive);

// "OK", "Not Found", ... ("Unknown" for codes without a phrase here).
std::string_view StatusText(int code);

}  // namespace speedkit::net

#endif  // SPEEDKIT_NET_HTTP_CODEC_H_
