// Nonblocking TCP accept socket bound to an EventLoop.
#ifndef SPEEDKIT_NET_TCP_LISTENER_H_
#define SPEEDKIT_NET_TCP_LISTENER_H_

#include <cstdint>
#include <functional>
#include <string>

namespace speedkit::net {

class EventLoop;

class TcpListener {
 public:
  // Receives an accepted, nonblocking, TCP_NODELAY connection fd. The
  // callback owns the fd (typically it wraps it in a Connection).
  using AcceptCallback = std::function<void(int fd)>;

  explicit TcpListener(EventLoop* loop) : loop_(loop) {}
  ~TcpListener() { Close(); }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  void set_on_accept(AcceptCallback cb) { on_accept_ = std::move(cb); }

  // Binds host:port and starts accepting (port 0 picks an ephemeral port —
  // read it back from port()). Returns false on any socket-layer failure.
  bool Listen(const std::string& host, uint16_t port);

  void Close();

  bool listening() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }

 private:
  void HandleReadable();

  EventLoop* loop_;
  AcceptCallback on_accept_;
  int fd_ = -1;
  uint16_t port_ = 0;
};

// Client-side helper: nonblocking connect to host:port, returns the fd
// (>= 0) once the connection is established or -1 on failure. Blocks up to
// `timeout_ms` — used by the load generator's setup phase and tests, not
// on the event loop.
int TcpConnect(const std::string& host, uint16_t port, int timeout_ms);

}  // namespace speedkit::net

#endif  // SPEEDKIT_NET_TCP_LISTENER_H_
