// Consistent-hash ring with murmur-hashed virtual nodes — the key→edge
// placement function of the socketed deployment.
//
// Each physical node is mapped onto `replicas` points of a 64-bit hash
// circle (one Murmur3 hash per "name#i" vnode label); a key is owned by
// the first vnode clockwise from the key's own hash. Virtual nodes smooth
// the load split (at 200 vnodes the max/mean edge load stays within ~1.25
// of uniform, asserted by tests/net/hash_ring_test.cc), and adding or
// removing one node only moves the keys that hashed into the arcs its
// vnodes owned — no global reshuffle, which is what makes the edge ring
// elastically resizable without mass cache invalidation.
//
// Placement is a pure function of (node names, replicas): the same ring
// built in the loadgen's router, in `speedkit_edged --ring`, and in a test
// places every key identically (Murmur3_64 is platform-stable). Lookup is
// O(log vnodes) over a sorted array; mutation rebuilds the array — rings
// mutate on topology changes, not per request.
#ifndef SPEEDKIT_NET_HASH_RING_H_
#define SPEEDKIT_NET_HASH_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace speedkit::net {

class HashRing {
 public:
  // Every node added later defaults to `replicas` virtual nodes.
  explicit HashRing(int replicas = 200);

  // Adds `name` with the default (or an explicit) vnode count. Adding an
  // existing name is a no-op (a node's weight is fixed at add time).
  void AddNode(std::string_view name);
  void AddNode(std::string_view name, int replicas);

  // Removes `name` and its vnodes; false if it was never added.
  bool RemoveNode(std::string_view name);

  // The node owning `key`, or "" on an empty ring.
  std::string_view NodeFor(std::string_view key) const;

  // The first `n` DISTINCT nodes clockwise from the key's hash — the
  // replica set for schemes that store a key on more than one edge.
  // Returns fewer when the ring holds fewer than `n` nodes.
  std::vector<std::string_view> NodesFor(std::string_view key, size_t n) const;

  bool empty() const { return points_.size() == 0; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_vnodes() const { return points_.size(); }
  int default_replicas() const { return default_replicas_; }
  // Node names in add order (stable iteration for deterministic reports).
  const std::vector<std::string>& nodes() const { return node_names_; }

 private:
  struct Node {
    std::string name;
    int replicas = 0;
  };
  struct Point {
    uint64_t hash = 0;
    uint32_t node = 0;  // index into nodes_
  };

  void Rebuild();
  const Point* OwnerPoint(uint64_t hash) const;

  int default_replicas_;
  std::vector<Node> nodes_;             // add order; removed nodes erased
  std::vector<std::string> node_names_; // mirrors nodes_ (cheap accessor)
  std::vector<Point> points_;           // sorted by hash
};

}  // namespace speedkit::net

#endif  // SPEEDKIT_NET_HASH_RING_H_
