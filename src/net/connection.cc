#include "net/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "net/event_loop.h"

namespace speedkit::net {

Connection::Connection(EventLoop* loop, int fd)
    : loop_(loop), fd_(fd), last_activity_(std::chrono::steady_clock::now()) {}

Connection::~Connection() { CloseNow(); }

void Connection::Start() {
  loop_->AddFd(fd_, EventLoop::kReadable,
               [this](uint32_t events) { HandleEvent(events); });
}

void Connection::HandleEvent(uint32_t events) {
  if (events & EventLoop::kClosed) {
    CloseNow();
    return;
  }
  if (events & EventLoop::kWritable) FlushWrites();
  if (closed_) return;
  if (events & EventLoop::kReadable) ReadReady();
}

void Connection::ReadReady() {
  char buf[16 * 1024];
  bool got_data = false;
  while (true) {
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      input_.append(buf, static_cast<size_t>(n));
      bytes_in_ += static_cast<uint64_t>(n);
      got_data = true;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // n == 0 (peer closed) or a hard error. Deliver what we have first:
    // a peer may legally send a request and shut down its write side.
    if (got_data && on_data_) on_data_(this);
    CloseNow();
    return;
  }
  if (got_data) {
    last_activity_ = std::chrono::steady_clock::now();
    if (on_data_) on_data_(this);
  }
}

void Connection::Consume(size_t n) {
  input_.erase(0, n);
}

void Connection::Send(std::string_view data) {
  if (closed_ || close_after_flush_) return;
  output_.append(data);
  FlushWrites();
}

void Connection::FlushWrites() {
  while (!output_.empty()) {
    ssize_t n = ::send(fd_, output_.data(), output_.size(), MSG_NOSIGNAL);
    if (n > 0) {
      output_.erase(0, static_cast<size_t>(n));
      bytes_out_ += static_cast<uint64_t>(n);
      last_activity_ = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseNow();  // peer reset mid-write
    return;
  }
  if (output_.empty() && close_after_flush_) {
    CloseNow();
    return;
  }
  UpdateInterest();
}

void Connection::UpdateInterest() {
  bool want = !output_.empty();
  if (want == want_write_) return;
  want_write_ = want;
  loop_->ModifyFd(fd_, EventLoop::kReadable |
                           (want ? EventLoop::kWritable : 0u));
}

void Connection::Close() {
  if (closed_) return;
  if (output_.empty()) {
    CloseNow();
  } else {
    close_after_flush_ = true;
  }
}

void Connection::CloseNow() {
  if (closed_) return;
  closed_ = true;
  loop_->RemoveFd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (on_close_) {
    // Deferred via Post so the owner may destroy this connection without
    // pulling the rug from under the method that triggered the close.
    CloseCallback cb = std::move(on_close_);
    Connection* self = this;
    loop_->Post([cb = std::move(cb), self] { cb(self); });
  }
}

}  // namespace speedkit::net
