// Single-threaded epoll event loop — the reactor under speedkit_edged.
//
// One loop drives every listener, connection, and timer of an edged
// instance; everything it dispatches runs on the thread inside Run(). The
// only thread-safe entry points are Stop() and Post() (both wake the loop
// through an eventfd); all other methods must be called from loop context.
// This single-threaded discipline is what lets the request path share the
// simulator's SpeedKitStack without adding locks to it.
#ifndef SPEEDKIT_NET_EVENT_LOOP_H_
#define SPEEDKIT_NET_EVENT_LOOP_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

namespace speedkit::net {

class EventLoop {
 public:
  // Bitmask passed to the fd callback: which readiness edges fired.
  // (Values mirror EPOLLIN/EPOLLOUT so the implementation is a passthrough,
  // but headers stay free of <sys/epoll.h>.)
  static constexpr uint32_t kReadable = 0x1;
  static constexpr uint32_t kWritable = 0x4;
  static constexpr uint32_t kClosed = 0x10;  // peer hangup or fd error

  using FdCallback = std::function<void(uint32_t events)>;
  using TimerId = uint64_t;
  static constexpr TimerId kInvalidTimer = 0;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Dispatches events until Stop(). Re-runnable after a Stop.
  void Run();

  // Runs at most one dispatch batch: waits up to `wait` for readiness,
  // then fires due timers and posted tasks. Lets tests and in-process
  // harnesses interleave loop progress with their own logic.
  void RunOnce(std::chrono::milliseconds wait);

  // Thread-safe. Makes Run() return after the current batch.
  void Stop();

  // Thread-safe. Queues fn to run on the loop thread, then wakes it.
  void Post(std::function<void()> fn);

  // Registers fd for the given event mask (kReadable|kWritable). The loop
  // does NOT own the fd; unregister with RemoveFd before closing it.
  void AddFd(int fd, uint32_t events, FdCallback cb);
  void ModifyFd(int fd, uint32_t events);
  void RemoveFd(int fd);

  // One-shot timer. Cancel is lazy (heap entries expire unnoticed), so
  // cancelled timers cost nothing but a skipped pop.
  TimerId AddTimer(std::chrono::microseconds delay, std::function<void()> fn);
  bool CancelTimer(TimerId id);

  bool running() const { return running_; }
  size_t num_fds() const { return fds_.size(); }
  size_t num_timers() const { return timer_fns_.size(); }

 private:
  struct TimerEntry {
    std::chrono::steady_clock::time_point deadline;
    TimerId id;
    bool operator>(const TimerEntry& o) const {
      return deadline != o.deadline ? deadline > o.deadline : id > o.id;
    }
  };

  void Wake();
  int NextTimeoutMs(std::chrono::milliseconds cap) const;
  void FireDueTimers();
  void DrainPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool running_ = false;
  bool stop_ = false;

  std::unordered_map<int, FdCallback> fds_;

  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timer_heap_;
  std::unordered_map<TimerId, std::function<void()>> timer_fns_;
  TimerId next_timer_id_ = 1;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace speedkit::net

#endif  // SPEEDKIT_NET_EVENT_LOOP_H_
