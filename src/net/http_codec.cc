#include "net/http_codec.h"

#include <optional>

#include "common/strings.h"

namespace speedkit::net {

namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeaderEnd = "\r\n\r\n";

std::optional<http::Method> ParseMethod(std::string_view token) {
  if (token == "GET") return http::Method::kGet;
  if (token == "HEAD") return http::Method::kHead;
  if (token == "POST") return http::Method::kPost;
  if (token == "PUT") return http::Method::kPut;
  if (token == "PATCH") return http::Method::kPatch;
  if (token == "DELETE") return http::Method::kDelete;
  return std::nullopt;
}

// Parses the header block (everything between the start line and the blank
// line) into `headers`. Returns false on a malformed field line.
bool ParseHeaderLines(std::string_view block, http::HeaderMap* headers) {
  while (!block.empty()) {
    size_t eol = block.find(kCrlf);
    if (eol == std::string_view::npos) return false;
    std::string_view line = block.substr(0, eol);
    block.remove_prefix(eol + kCrlf.size());
    if (line.empty()) continue;
    // Obsolete line folding (leading whitespace) is rejected, per RFC 7230.
    if (line.front() == ' ' || line.front() == '\t') return false;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    std::string_view name = line.substr(0, colon);
    if (TrimWhitespace(name) != name) {
      return false;  // "Name :" — whitespace around the name is invalid
    }
    headers->Add(name, TrimWhitespace(line.substr(colon + 1)));
  }
  return true;
}

// Connection semantics given the HTTP minor version (1.0 default close,
// 1.1 default keep-alive).
bool KeepAlive(const http::HeaderMap& headers, int version_minor) {
  auto conn = headers.Get("Connection");
  if (conn.has_value()) {
    if (EqualsIgnoreCase(*conn, "close")) return false;
    if (EqualsIgnoreCase(*conn, "keep-alive")) return true;
  }
  return version_minor >= 1;
}

// Shared framing: locate the header block, parse headers, size the body.
// On success sets every out-param and returns kOk with *consumed set.
struct Frame {
  std::string_view start_line;
  std::string_view header_block;
  std::string_view body;
  size_t consumed = 0;
};

ParseStatus SplitFrame(std::string_view data, const http::HeaderMap& headers,
                       size_t header_end, Frame* frame) {
  size_t body_len = 0;
  auto cl = headers.Get("Content-Length");
  if (cl.has_value()) {
    auto parsed = ParseInt64(*cl);
    if (!parsed.has_value() || *parsed < 0 ||
        static_cast<size_t>(*parsed) > kMaxBodyBytes) {
      return ParseStatus::kError;
    }
    body_len = static_cast<size_t>(*parsed);
  }
  if (headers.Has("Transfer-Encoding")) return ParseStatus::kError;
  size_t total = header_end + kHeaderEnd.size() + body_len;
  if (data.size() < total) return ParseStatus::kNeedMore;
  frame->body = data.substr(header_end + kHeaderEnd.size(), body_len);
  frame->consumed = total;
  return ParseStatus::kOk;
}

// Finds the blank line; kNeedMore/kError per the header-size limit.
ParseStatus FindHeaderEnd(std::string_view data, size_t* header_end) {
  size_t end = data.find(kHeaderEnd);
  if (end == std::string_view::npos) {
    return data.size() > kMaxHeaderBytes ? ParseStatus::kError
                                         : ParseStatus::kNeedMore;
  }
  if (end > kMaxHeaderBytes) return ParseStatus::kError;
  *header_end = end;
  return ParseStatus::kOk;
}

}  // namespace

ParseStatus ParseRequest(std::string_view data, WireRequest* out,
                         size_t* consumed) {
  size_t header_end = 0;
  ParseStatus st = FindHeaderEnd(data, &header_end);
  if (st != ParseStatus::kOk) return st;

  std::string_view head = data.substr(0, header_end);
  size_t line_end = head.find(kCrlf);
  // Field lines span (start line, blank line]; slicing through the first
  // CRLF of the terminator leaves every line — the last included — with
  // its own CRLF, which is what ParseHeaderLines consumes.
  std::string_view start = line_end == std::string_view::npos
                               ? head
                               : head.substr(0, line_end);
  std::string_view header_block =
      line_end == std::string_view::npos
          ? std::string_view{}
          : data.substr(line_end + kCrlf.size(),
                        header_end + kCrlf.size() - line_end - kCrlf.size());

  // "METHOD SP target SP HTTP/1.x"
  size_t sp1 = start.find(' ');
  size_t sp2 = start.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return ParseStatus::kError;
  auto method = ParseMethod(start.substr(0, sp1));
  std::string_view target = start.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = start.substr(sp2 + 1);
  if (!method.has_value() || target.empty() || target.front() != '/') {
    return ParseStatus::kError;
  }
  int version_minor;
  if (version == "HTTP/1.1") {
    version_minor = 1;
  } else if (version == "HTTP/1.0") {
    version_minor = 0;
  } else {
    return ParseStatus::kError;
  }

  WireRequest req;
  req.method = *method;
  req.target = std::string(target);
  if (!ParseHeaderLines(header_block, &req.headers)) {
    return ParseStatus::kError;
  }

  Frame frame;
  st = SplitFrame(data, req.headers, header_end, &frame);
  if (st != ParseStatus::kOk) return st;
  req.body = std::string(frame.body);
  req.keep_alive = KeepAlive(req.headers, version_minor);
  *out = std::move(req);
  *consumed = frame.consumed;
  return ParseStatus::kOk;
}

ParseStatus ParseResponse(std::string_view data, WireResponse* out,
                          size_t* consumed) {
  size_t header_end = 0;
  ParseStatus st = FindHeaderEnd(data, &header_end);
  if (st != ParseStatus::kOk) return st;

  std::string_view head = data.substr(0, header_end);
  size_t line_end = head.find(kCrlf);
  std::string_view start = line_end == std::string_view::npos
                               ? head
                               : head.substr(0, line_end);
  std::string_view header_block =
      line_end == std::string_view::npos
          ? std::string_view{}
          : data.substr(line_end + kCrlf.size(),
                        header_end + kCrlf.size() - line_end - kCrlf.size());

  // "HTTP/1.x SP code SP reason" (reason may be empty or contain spaces).
  int version_minor;
  if (StartsWith(start, "HTTP/1.1 ")) {
    version_minor = 1;
  } else if (StartsWith(start, "HTTP/1.0 ")) {
    version_minor = 0;
  } else {
    return ParseStatus::kError;
  }
  std::string_view rest = start.substr(9);
  size_t sp = rest.find(' ');
  std::string_view code_text =
      sp == std::string_view::npos ? rest : rest.substr(0, sp);
  auto code = ParseInt64(code_text);
  if (!code.has_value() || *code < 100 || *code > 599) {
    return ParseStatus::kError;
  }

  WireResponse resp;
  resp.status_code = static_cast<int>(*code);
  if (!ParseHeaderLines(header_block, &resp.headers)) {
    return ParseStatus::kError;
  }

  Frame frame;
  st = SplitFrame(data, resp.headers, header_end, &frame);
  if (st != ParseStatus::kOk) return st;
  resp.body = std::string(frame.body);
  resp.keep_alive = KeepAlive(resp.headers, version_minor);
  *out = std::move(resp);
  *consumed = frame.consumed;
  return ParseStatus::kOk;
}

std::string SerializeRequest(http::Method method, std::string_view target,
                             const http::HeaderMap& headers,
                             std::string_view body) {
  std::string out;
  out.reserve(64 + headers.WireSize() + body.size());
  out.append(http::MethodName(method));
  out.push_back(' ');
  out.append(target);
  out.append(" HTTP/1.1\r\n");
  for (const auto& [name, value] : headers) {
    out.append(name).append(": ").append(value).append(kCrlf);
  }
  if (!body.empty()) {
    out.append("Content-Length: ")
        .append(std::to_string(body.size()))
        .append(kCrlf);
  }
  out.append(kCrlf);
  out.append(body);
  return out;
}

std::string SerializeResponse(int status_code, const http::HeaderMap& headers,
                              std::string_view body, bool keep_alive) {
  std::string out;
  out.reserve(64 + headers.WireSize() + body.size());
  out.append("HTTP/1.1 ");
  out.append(std::to_string(status_code));
  out.push_back(' ');
  out.append(StatusText(status_code));
  out.append(kCrlf);
  for (const auto& [name, value] : headers) {
    if (EqualsIgnoreCase(name, "Content-Length") ||
        EqualsIgnoreCase(name, "Connection")) {
      continue;
    }
    out.append(name).append(": ").append(value).append(kCrlf);
  }
  out.append("Content-Length: ")
      .append(std::to_string(body.size()))
      .append(kCrlf);
  out.append(keep_alive ? "Connection: keep-alive\r\n"
                        : "Connection: close\r\n");
  out.append(kCrlf);
  out.append(body);
  return out;
}

std::string_view StatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 204: return "No Content";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 421: return "Misdirected Request";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

}  // namespace speedkit::net
