#include "net/edged_server.h"

#include <chrono>
#include <utility>

#include "common/strings.h"
#include "net/net_metric_names.h"
#include "proxy/client_proxy.h"

namespace speedkit::net {

namespace {

WireResponse PlainResponse(int status, std::string body) {
  WireResponse resp;
  resp.status_code = status;
  resp.headers.Set("Content-Type", "text/plain");
  resp.body = std::move(body);
  return resp;
}

WireResponse JsonResponse(std::string body) {
  WireResponse resp;
  resp.status_code = 200;
  resp.headers.Set("Content-Type", "application/json");
  resp.body = std::move(body);
  return resp;
}

void AppendJsonField(std::string* out, std::string_view name, uint64_t value,
                     bool* first) {
  if (!*first) out->append(",");
  *first = false;
  out->append("\"").append(name).append("\":").append(std::to_string(value));
}

}  // namespace

EdgedServer::EdgedServer(const EdgedConfig& config)
    : config_(config),
      listener_(&loop_),
      ring_(config.ring_replicas),
      stack_(std::make_unique<core::SpeedKitStack>(config.stack)) {
  if (config_.ring_nodes.empty()) {
    ring_.AddNode(config_.node_name);
  } else {
    for (const std::string& n : config_.ring_nodes) ring_.AddNode(n);
  }
  if (config_.populate_catalog) {
    workload::Catalog catalog(config_.catalog, stack_->ForkRng(0xca7a10a));
    catalog.Populate(&stack_->store(), stack_->clock().Now());
  }
  if (config_.warmup > Duration::Zero()) stack_->Advance(config_.warmup);
  pool_ = stack_->MakeClientPool(proxy::ClientPoolConfig{});

  accepts_ = metrics_.Counter(kNetAccepts);
  open_conns_ = metrics_.Gauge(kNetOpenConnections);
  idle_timeouts_ = metrics_.Counter(kNetIdleTimeouts);
  protocol_errors_ = metrics_.Counter(kNetProtocolErrors);
  requests_ = metrics_.Counter(kNetRequests);
  responses_ = metrics_.Counter(kNetResponses);
  bytes_in_ = metrics_.Counter(kNetBytesIn);
  bytes_out_ = metrics_.Counter(kNetBytesOut);
  handle_us_ = metrics_.Histo(kNetHandleUs);
  ring_misroutes_ = metrics_.Counter(kNetRingMisroutes);
  flight_leaders_ = metrics_.Counter(kNetFlightLeaders);
  flight_joins_ = metrics_.Counter(kNetFlightJoins);
}

EdgedServer::~EdgedServer() = default;

bool EdgedServer::Start() {
  listener_.set_on_accept([this](int fd) { OnAccept(fd); });
  if (!listener_.Listen(config_.host, config_.port)) return false;
  wall_start_ = std::chrono::steady_clock::now();
  sim_start_ = stack_->clock().Now();
  ArmIdleSweep();
  return true;
}

void EdgedServer::Run() { loop_.Run(); }

void EdgedServer::Interrupt() { loop_.Stop(); }

void EdgedServer::Stop() {
  loop_.Post([this] {
    listener_.Close();
    for (auto& [ptr, conn] : conns_) conn->Close();
    loop_.Stop();
  });
}

void EdgedServer::SyncSimClock() {
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - wall_start_);
  stack_->AdvanceTo(sim_start_ + Duration::Micros(elapsed.count()));
}

void EdgedServer::OnAccept(int fd) {
  (*accepts_)++;
  auto conn = std::make_unique<Connection>(&loop_, fd);
  Connection* raw = conn.get();
  raw->set_on_data([this](Connection* c) { OnData(c); });
  raw->set_on_close([this](Connection* c) { OnConnectionClosed(c); });
  conns_.emplace(raw, std::move(conn));
  *open_conns_ = static_cast<int64_t>(conns_.size());
  raw->Start();
}

void EdgedServer::OnConnectionClosed(Connection* conn) {
  conns_.erase(conn);
  *open_conns_ = static_cast<int64_t>(conns_.size());
}

void EdgedServer::ArmIdleSweep() {
  int interval_ms = config_.idle_timeout_ms / 2;
  if (interval_ms < 1) interval_ms = 1;
  idle_timer_ = loop_.AddTimer(
      std::chrono::microseconds(int64_t{interval_ms} * 1000), [this] {
        auto cutoff = std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(config_.idle_timeout_ms);
        for (auto& [ptr, conn] : conns_) {
          if (!conn->closed() && conn->last_activity() < cutoff) {
            (*idle_timeouts_)++;
            conn->Close();
          }
        }
        ArmIdleSweep();
      });
}

void EdgedServer::OnData(Connection* conn) {
  // Parse as many pipelined requests as the buffer holds.
  while (!conn->closed()) {
    WireRequest req;
    size_t consumed = 0;
    ParseStatus st = ParseRequest(conn->input(), &req, &consumed);
    if (st == ParseStatus::kNeedMore) break;
    if (st == ParseStatus::kError) {
      (*protocol_errors_)++;
      conn->Send(SerializeResponse(400, http::HeaderMap{},
                                   "malformed request\n", false));
      conn->Close();
      break;
    }
    conn->Consume(consumed);
    *bytes_in_ += consumed;

    auto t0 = std::chrono::steady_clock::now();
    WireResponse resp = Handle(req);
    handle_us_->Add(std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count());

    resp.keep_alive = resp.keep_alive && req.keep_alive;
    std::string wire = SerializeResponse(resp.status_code, resp.headers,
                                         resp.body, resp.keep_alive);
    *bytes_out_ += wire.size();
    (*responses_)++;
    conn->Send(wire);
    if (!resp.keep_alive) {
      conn->Close();
      break;
    }
  }
}

WireResponse EdgedServer::Handle(const WireRequest& req) {
  (*requests_)++;
  if (req.target == "/healthz") return PlainResponse(200, "ok\n");
  if (req.target == "/ringz") {
    std::string body = "{\"node\":\"" + config_.node_name + "\",\"nodes\":[";
    bool first = true;
    for (std::string_view n : ring_.nodes()) {
      if (!first) body.append(",");
      first = false;
      body.append("\"").append(n).append("\"");
    }
    body.append("],\"replicas\":")
        .append(std::to_string(ring_.default_replicas()))
        .append(",\"vnodes\":")
        .append(std::to_string(ring_.num_vnodes()))
        .append("}\n");
    return JsonResponse(std::move(body));
  }
  if (req.target == "/metricsz") return JsonResponse(MetricsJson());
  if (req.method != http::Method::kGet) {
    return PlainResponse(405, "only GET is served here\n");
  }
  return HandleCached(req);
}

WireResponse EdgedServer::HandleCached(const WireRequest& req) {
  auto host = req.headers.Get("Host");
  if (!host.has_value() || host->empty()) {
    return PlainResponse(400, "Host header required\n");
  }
  uint64_t client_id = 0;
  if (auto cid = req.headers.Get("X-SpeedKit-Client"); cid.has_value()) {
    auto parsed = ParseInt64(*cid);
    if (!parsed.has_value() || *parsed < 0) {
      return PlainResponse(400, "bad X-SpeedKit-Client\n");
    }
    client_id = static_cast<uint64_t>(*parsed);
  }
  // The edge fronts the canonical (TLS) origin: cache identity lives in
  // https-scheme URLs even though this hop is plain TCP.
  auto url = http::Url::Parse("https://" + std::string(*host) + req.target);
  if (!url.ok()) return PlainResponse(400, "unparseable request URL\n");

  if (ring_.num_nodes() > 1) {
    std::string_view owner = ring_.NodeFor(url->CacheKey());
    if (owner != config_.node_name) {
      (*ring_misroutes_)++;
      if (config_.reject_misrouted) {
        WireResponse resp =
            PlainResponse(421, "key belongs to another ring member\n");
        resp.headers.Set("X-SpeedKit-Owner", owner);
        return resp;
      }
    }
  }

  SyncSimClock();
  uint64_t flights_before = stack_->cdn().flights_started();
  uint64_t joins_before = stack_->cdn().flight_joins();

  proxy::FetchResult result = ClientFor(client_id)->Fetch(*url);

  *flight_leaders_ += stack_->cdn().flights_started() - flights_before;
  *flight_joins_ += stack_->cdn().flight_joins() - joins_before;

  WireResponse resp;
  resp.status_code = result.response.status_code;
  resp.headers = result.response.headers;
  resp.body = result.response.body;
  resp.headers.Set("X-SpeedKit-Source",
                   proxy::ServedFromName(result.source));
  resp.headers.Set("X-SpeedKit-Latency-Us",
                   std::to_string(result.latency.micros()));
  return resp;
}

proxy::ClientProxy* EdgedServer::ClientFor(uint64_t client_id) {
  auto it = clients_.find(client_id);
  if (it != clients_.end()) return it->second;
  proxy::ClientProxy* client =
      pool_->MakeClient(stack_->DefaultProxyConfig(), client_id);
  clients_.emplace(client_id, client);
  return client;
}

std::string EdgedServer::MetricsJson() {
  std::string out = "{\"net\":{";
  bool first = true;
  for (const auto& m : metrics_.metrics()) {
    switch (m->kind) {
      case obs::MetricKind::kCounter:
        AppendJsonField(&out, m->name, m->counter, &first);
        break;
      case obs::MetricKind::kGauge:
        AppendJsonField(&out, m->name,
                        static_cast<uint64_t>(m->gauge < 0 ? 0 : m->gauge),
                        &first);
        break;
      case obs::MetricKind::kHistogram:
        if (!first) out.append(",");
        first = false;
        out.append("\"").append(m->name).append("\":{\"count\":")
            .append(std::to_string(m->histogram.count()))
            .append(",\"p50\":")
            .append(std::to_string(m->histogram.P50()))
            .append(",\"p99\":")
            .append(std::to_string(m->histogram.P99()))
            .append("}");
        break;
    }
  }
  const proxy::ProxyStats& ps = pool_->stats();
  out.append("},\"proxy\":{");
  first = true;
  AppendJsonField(&out, "requests", ps.requests, &first);
  AppendJsonField(&out, "browser_hits", ps.browser_hits, &first);
  AppendJsonField(&out, "swr_serves", ps.swr_serves, &first);
  AppendJsonField(&out, "edge_hits", ps.edge_hits, &first);
  AppendJsonField(&out, "origin_fetches", ps.origin_fetches, &first);
  AppendJsonField(&out, "offline_serves", ps.offline_serves, &first);
  AppendJsonField(&out, "errors", ps.errors, &first);
  const cache::Cdn& cdn = stack_->cdn();
  out.append("},\"cdn\":{");
  first = true;
  AppendJsonField(&out, "flights_started", cdn.flights_started(), &first);
  AppendJsonField(&out, "flight_joins", cdn.flight_joins(), &first);
  AppendJsonField(&out, "herd_fetches", cdn.herd_fetches(), &first);
  out.append("},\"origin\":{");
  first = true;
  AppendJsonField(&out, "requests", stack_->origin().stats().requests, &first);
  AppendJsonField(&out, "not_modified", stack_->origin().stats().not_modified,
                  &first);
  out.append("}}\n");
  return out;
}

}  // namespace speedkit::net
