#include "net/hash_ring.h"

#include <algorithm>

#include "common/hash.h"

namespace speedkit::net {

namespace {
// Fixed hash seed: ring placement must agree across every process that
// builds the same topology (router, edged, tests).
constexpr uint64_t kRingSeed = 0x5feedc0de;
}  // namespace

HashRing::HashRing(int replicas)
    : default_replicas_(replicas < 1 ? 1 : replicas) {}

void HashRing::AddNode(std::string_view name) {
  AddNode(name, default_replicas_);
}

void HashRing::AddNode(std::string_view name, int replicas) {
  for (const Node& n : nodes_) {
    if (n.name == name) return;
  }
  nodes_.push_back(Node{std::string(name), replicas < 1 ? 1 : replicas});
  node_names_.emplace_back(name);
  Rebuild();
}

bool HashRing::RemoveNode(std::string_view name) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) {
      nodes_.erase(nodes_.begin() + static_cast<ptrdiff_t>(i));
      node_names_.erase(node_names_.begin() + static_cast<ptrdiff_t>(i));
      Rebuild();
      return true;
    }
  }
  return false;
}

void HashRing::Rebuild() {
  points_.clear();
  size_t total = 0;
  for (const Node& n : nodes_) total += static_cast<size_t>(n.replicas);
  points_.reserve(total);
  for (uint32_t ni = 0; ni < nodes_.size(); ++ni) {
    const Node& n = nodes_[ni];
    std::string label;
    label.reserve(n.name.size() + 12);
    for (int r = 0; r < n.replicas; ++r) {
      label.assign(n.name);
      label.push_back('#');
      label.append(std::to_string(r));
      points_.push_back(Point{Murmur3_64(label, kRingSeed), ni});
    }
  }
  // Ties (two vnode labels hashing identically) are broken by node index so
  // the winner does not depend on sort implementation details.
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
  });
}

const HashRing::Point* HashRing::OwnerPoint(uint64_t hash) const {
  if (points_.empty()) return nullptr;
  // First vnode clockwise (>= the key's hash), wrapping to the start.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const Point& p, uint64_t h) { return p.hash < h; });
  if (it == points_.end()) it = points_.begin();
  return &*it;
}

std::string_view HashRing::NodeFor(std::string_view key) const {
  const Point* p = OwnerPoint(Murmur3_64(key, kRingSeed));
  if (p == nullptr) return {};
  return nodes_[p->node].name;
}

std::vector<std::string_view> HashRing::NodesFor(std::string_view key,
                                                 size_t n) const {
  std::vector<std::string_view> out;
  if (points_.empty() || n == 0) return out;
  const size_t want = std::min(n, nodes_.size());
  out.reserve(want);
  const uint64_t h = Murmur3_64(key, kRingSeed);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, uint64_t hh) { return p.hash < hh; });
  size_t start = it == points_.end()
                     ? 0
                     : static_cast<size_t>(it - points_.begin());
  for (size_t step = 0; step < points_.size() && out.size() < want; ++step) {
    const Point& p = points_[(start + step) % points_.size()];
    std::string_view name = nodes_[p.node].name;
    bool seen = false;
    for (std::string_view got : out) {
      if (got == name) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(name);
  }
  return out;
}

}  // namespace speedkit::net
