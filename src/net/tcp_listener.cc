#include "net/tcp_listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/event_loop.h"

namespace speedkit::net {

namespace {

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  // Numeric IPv4 only — edged topologies are written as explicit addresses
  // ("127.0.0.1", pod IPs), so no resolver dependency.
  return ::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

bool TcpListener::Listen(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return false;
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) return false;

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    ::close(fd);
    return false;
  }

  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return false;
  }
  port_ = ntohs(bound.sin_port);
  fd_ = fd;
  loop_->AddFd(fd_, EventLoop::kReadable,
               [this](uint32_t) { HandleReadable(); });
  return true;
}

void TcpListener::HandleReadable() {
  // Drain the accept queue: with edge-triggered-like batching under load,
  // one readiness event can cover many pending connections.
  while (true) {
    int fd = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient accept error
    }
    SetNoDelay(fd);
    if (on_accept_) {
      on_accept_(fd);
    } else {
      ::close(fd);
    }
  }
}

void TcpListener::Close() {
  if (fd_ < 0) return;
  loop_->RemoveFd(fd_);
  ::close(fd_);
  fd_ = -1;
}

int TcpConnect(const std::string& host, uint16_t port, int timeout_ms) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr)) return -1;
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, timeout_ms) == 1 ? 0 : -1;
    if (rc == 0) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) rc = -1;
    }
  }
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  SetNoDelay(fd);
  return fd;
}

}  // namespace speedkit::net
