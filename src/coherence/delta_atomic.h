// The paper-faithful default: Cache Sketch Δ-atomicity.
//
// Server side, the protocol owns the counting-Bloom CacheSketch; the
// invalidation pipeline reports every invalidated key with its stale
// horizon, and the publication memo hands every client one shared
// immutable snapshot per Δ window. Client side, a snapshot older than Δ
// is re-fetched before the next cache read, and flagged keys bypass every
// shared cache on the way to the origin — bounding read staleness to
// Δ + purge propagation.
#ifndef SPEEDKIT_COHERENCE_DELTA_ATOMIC_H_
#define SPEEDKIT_COHERENCE_DELTA_ATOMIC_H_

#include <memory>
#include <string_view>

#include "coherence/protocol.h"

namespace speedkit::coherence {

class DeltaAtomicProtocol : public CoherenceProtocol {
 public:
  explicit DeltaAtomicProtocol(const CoherenceConfig& config);

  // Safe under the sketch: a genuinely changed key is flagged and never
  // takes the SWR path, so SWR only re-serves merely-TTL-expired content.
  bool AdmitStaleWhileRevalidate() const override { return true; }
  bool WantsInvalidations() const override { return true; }
  void OnInvalidation(std::string_view key, SimTime stale_until,
                      SimTime now) override;
  std::unique_ptr<ClientCoherence> NewClient(
      Duration refresh_interval) override;
};

class DeltaAtomicClient : public ClientCoherence {
 public:
  DeltaAtomicClient(SketchPublication* publication, Duration refresh_interval)
      : publication_(publication), sketch_(refresh_interval) {}

  bool NeedsRefresh(SimTime now) const override {
    return sketch_.NeedsRefresh(now);
  }
  // A transaction's reads all happen at one instant; only a snapshot
  // taken at that same instant proves none of them is stale. Any age > 0
  // (or no snapshot at all) forces a refresh.
  bool NeedsTxnRefresh(SimTime now) const override {
    return !sketch_.HasSnapshot() || sketch_.Age(now) > Duration::Zero();
  }
  size_t InstallRefresh(SimTime now) override {
    return publication_->InstallInto(&sketch_, now);
  }
  bool MustRevalidate(std::string_view key) override {
    return sketch_.MightBeStale(key);
  }
  sketch::ClientSketch* client_sketch() override { return &sketch_; }

 private:
  SketchPublication* publication_;
  sketch::ClientSketch sketch_;
};

}  // namespace speedkit::coherence

#endif  // SPEEDKIT_COHERENCE_DELTA_ATOMIC_H_
