#include "coherence/protocol.h"

#include "coherence/delta_atomic.h"
#include "coherence/fixed_ttl.h"
#include "coherence/serializable.h"

namespace speedkit::coherence {

std::unique_ptr<ClientCoherence> CoherenceProtocol::NewClient(
    Duration /*refresh_interval*/) {
  return std::make_unique<ClientCoherence>();
}

std::unique_ptr<CoherenceProtocol> MakeCoherenceProtocol(
    const CoherenceConfig& config, bool sketch_variant) {
  if (!sketch_variant) {
    // Baselines hard-wire their coherence (fixed TTLs, purge-only, none):
    // the protocol object degrades to staleness bookkeeping plus an empty
    // publication. Normalize the mode so mode() tells the truth.
    CoherenceConfig normalized = config;
    normalized.mode = CoherenceMode::kFixedTtl;
    return std::make_unique<FixedTtlProtocol>(normalized);
  }
  switch (config.mode) {
    case CoherenceMode::kDeltaAtomic:
      return std::make_unique<DeltaAtomicProtocol>(config);
    case CoherenceMode::kSerializable:
      return std::make_unique<SerializableProtocol>(config);
    case CoherenceMode::kFixedTtl:
      return std::make_unique<FixedTtlProtocol>(config);
  }
  return std::make_unique<DeltaAtomicProtocol>(config);
}

}  // namespace speedkit::coherence
