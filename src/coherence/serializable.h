// Version-vector serializable reads (after Eyal, Birman & van Renesse:
// edge caches can offer serializable read-only transactions cheaply).
//
// Reads serve from whatever cache tier answers first — no sketch, no
// per-read freshness check. At commit, the client sends its read version
// vector on one validation round trip; the protocol compares every read
// against the staleness tracker's head version (the tracker dates every
// write, making it the version authority the origin would consult).
// Mismatched keys are re-fetched bypassing all shared caches and the
// vector re-validated, up to the configured retry budget; a vector that
// never converges aborts the transaction. A committed transaction's reads
// all matched head versions at one instant — a consistent snapshot.
#ifndef SPEEDKIT_COHERENCE_SERIALIZABLE_H_
#define SPEEDKIT_COHERENCE_SERIALIZABLE_H_

#include <vector>

#include "coherence/protocol.h"

namespace speedkit::coherence {

class SerializableProtocol : public CoherenceProtocol {
 public:
  explicit SerializableProtocol(const CoherenceConfig& config)
      : CoherenceProtocol(config, nullptr) {}

  // No sketch to flag changed keys: serving expired copies while
  // revalidating later would push anomalies into the commit check's blind
  // spot between serve and validation.
  bool AdmitStaleWhileRevalidate() const override { return false; }

  std::vector<size_t> StaleReadIndexes(
      const std::vector<ReadVersion>& reads) const override;
};

}  // namespace speedkit::coherence

#endif  // SPEEDKIT_COHERENCE_SERIALIZABLE_H_
