#include "coherence/coherence_config.h"

namespace speedkit::coherence {

std::string_view CoherenceModeName(CoherenceMode mode) {
  switch (mode) {
    case CoherenceMode::kDeltaAtomic:
      return "delta_atomic";
    case CoherenceMode::kSerializable:
      return "serializable";
    case CoherenceMode::kFixedTtl:
      return "fixed_ttl";
  }
  return "unknown";
}

Status ParseCoherenceMode(std::string_view text, CoherenceMode* out) {
  if (text == "delta_atomic") {
    *out = CoherenceMode::kDeltaAtomic;
    return Status::Ok();
  }
  if (text == "serializable") {
    *out = CoherenceMode::kSerializable;
    return Status::Ok();
  }
  if (text == "fixed_ttl") {
    *out = CoherenceMode::kFixedTtl;
    return Status::Ok();
  }
  return Status::InvalidArgument(
      "unknown coherence mode (expected delta_atomic, serializable or "
      "fixed_ttl)");
}

Status CoherenceConfig::Validate(bool sketch_variant) const {
  if (!(sketch_fpr > 0.0) || sketch_fpr > 0.5) {
    return Status::InvalidArgument("sketch_fpr must be in (0, 0.5]");
  }
  if (sketch_variant && mode == CoherenceMode::kDeltaAtomic &&
      sketch_capacity == 0) {
    return Status::InvalidArgument(
        "sketch_capacity must be > 0 for sketch-coherent variants");
  }
  if (delta <= Duration::Zero()) {
    return Status::InvalidArgument("delta (sketch refresh interval) must be "
                                   "positive");
  }
  if (max_txn_retries < 0) {
    return Status::InvalidArgument("max_txn_retries must be >= 0");
  }
  return Status::Ok();
}

}  // namespace speedkit::coherence
