// The one publication surface of the server-side Cache Sketch.
//
// Everything that used to leave the sketch through ad-hoc entry points —
// `CacheSketch::PublishedSnapshot`/`PublishedFilter` for the memoized
// snapshot views, `OriginServer::SketchSnapshot`/`SketchFilter` for the
// null-sketch fallbacks, `ClientSketch::Install` for the fleet-shared
// filter install — now flows through this handle, owned by the coherence
// protocol object. The origin's /sketch route serializes through it and
// clients refresh through it; the sketch's memoization (one re-encode per
// key-set mutation, shared immutable views) is unchanged underneath.
//
// A handle over a null sketch publishes a constant empty filter — the
// behavior baselines without sketch coherence always had.
#ifndef SPEEDKIT_COHERENCE_SKETCH_PUBLICATION_H_
#define SPEEDKIT_COHERENCE_SKETCH_PUBLICATION_H_

#include <memory>
#include <string>

#include "common/sim_time.h"
#include "sketch/cache_sketch.h"
#include "sketch/client_sketch.h"

namespace speedkit::coherence {

class SketchPublication {
 public:
  // `sketch` may be null (no sketch coherence): the publication is then a
  // constant empty filter, built once per process. Not owned.
  explicit SketchPublication(sketch::CacheSketch* sketch) : sketch_(sketch) {}

  // Serialized snapshot bytes (what the /sketch route returns), published
  // as an immutable shared string: between sketch mutations every caller
  // receives the same memoized buffer instead of a fresh serialization.
  std::shared_ptr<const std::string> Serialized(SimTime now);

  // Installs the fleet-shared published filter into `client` and returns
  // the wire bytes the serialized form would have cost, so transfer
  // accounting matches a byte-level refresh exactly. At a million clients
  // this is the difference between one filter object and a million.
  size_t InstallInto(sketch::ClientSketch* client, SimTime now);

  sketch::CacheSketch* sketch() { return sketch_; }

 private:
  sketch::CacheSketch* sketch_;
};

}  // namespace speedkit::coherence

#endif  // SPEEDKIT_COHERENCE_SKETCH_PUBLICATION_H_
