// The pluggable coherence tier: one interface, three protocols.
//
// A CoherenceProtocol owns everything a deployment needs to bound (or
// decline to bound) staleness: the server-side Cache Sketch (Δ-atomic mode
// only), its publication surface, and the staleness tracker that dates
// every version and audits every read. The stack holds exactly one
// protocol object, selected by StackConfig::coherence, and the hooks fire
// from fixed points:
//
//   OnVersion       every dated write (object-store feed + materialized
//                   query bumps) — stack.cc write listeners
//   OnInvalidation  per invalidated key with its stale horizon — the
//                   invalidation pipeline's sketch report point (gated on
//                   WantsInvalidations so non-sketch modes skip the
//                   horizon computation entirely)
//   OnBoundary      every Δ coherence boundary, right after the sharded
//                   purge-mailbox drain — stack.cc's recurring drain event
//   NewClient       one ClientCoherence per client proxy: the per-device
//                   half (snapshot freshness, revalidation verdicts)
//   StaleReadIndexes  serializable commit validation (version vector
//                   against the tracker's head versions)
//
// The Δ-atomic implementation is a pure re-homing of the pre-existing
// sketch wiring: a default-mode stack is bit-identical to the hard-wired
// version (pinned by tests/coherence/coherence_invariance_test.cc).
#ifndef SPEEDKIT_COHERENCE_PROTOCOL_H_
#define SPEEDKIT_COHERENCE_PROTOCOL_H_

#include <memory>
#include <string_view>
#include <vector>

#include "coherence/coherence_config.h"
#include "coherence/sketch_publication.h"
#include "coherence/staleness.h"
#include "common/sim_time.h"
#include "sketch/cache_sketch.h"
#include "sketch/client_sketch.h"

namespace speedkit::coherence {

// The per-client half of a coherence protocol. The base class is the
// no-op protocol client (fixed-TTL, serializable): nothing to refresh,
// nothing to revalidate. Δ-atomic overrides everything with the client
// sketch.
class ClientCoherence {
 public:
  virtual ~ClientCoherence() = default;

  // True when the client's coherence state is due a (blocking) refresh
  // before the next cache read.
  virtual bool NeedsRefresh(SimTime /*now*/) const { return false; }

  // Refresh decision at a multi-key transaction's begin: Δ-atomic demands
  // a snapshot taken at the transaction's own instant (any older snapshot
  // admits reads from before a write inside its age), which is stricter
  // than the per-read Δ cadence.
  virtual bool NeedsTxnRefresh(SimTime /*now*/) const { return false; }

  // Performs the due refresh against the protocol's publication; returns
  // the wire bytes transferred (the caller charges network time).
  virtual size_t InstallRefresh(SimTime /*now*/) { return 0; }

  // Read-freshness decision: must a cached copy of `key` be revalidated
  // at the origin (bypassing every shared cache)?
  virtual bool MustRevalidate(std::string_view /*key*/) { return false; }

  // The underlying client sketch when this protocol has one (Δ-atomic
  // only; null otherwise). For stats and tests.
  virtual sketch::ClientSketch* client_sketch() { return nullptr; }
};

class CoherenceProtocol {
 public:
  virtual ~CoherenceProtocol() = default;

  CoherenceProtocol(const CoherenceProtocol&) = delete;
  CoherenceProtocol& operator=(const CoherenceProtocol&) = delete;

  CoherenceMode mode() const { return config_.mode; }

  // Admission check: may a TTL-expired (but protocol-clean) copy be
  // served instantly while revalidating in the background? Only Δ-atomic
  // can afford this — its sketch flags genuinely changed keys, so SWR
  // re-serves only content that merely expired. Without that signal SWR
  // would stretch staleness unboundedly.
  virtual bool AdmitStaleWhileRevalidate() const = 0;

  // Whether the invalidation pipeline should compute stale horizons and
  // report invalidated keys here. Only Δ-atomic wants them; gating here
  // lets other modes skip the per-key ExpiryBook lookup entirely.
  virtual bool WantsInvalidations() const { return false; }

  // Per-key invalidation hook: `key` was written while cached copies may
  // live until `stale_until`.
  virtual void OnInvalidation(std::string_view /*key*/,
                              SimTime /*stale_until*/, SimTime /*now*/) {}

  // Every dated version: record writes and materialized query bumps.
  void OnVersion(std::string_view key, uint64_t version, SimTime now) {
    staleness_.RecordWrite(key, version, now);
  }

  // Δ coherence boundary callback, fired right after the sharded
  // purge-mailbox drain. No current protocol keeps per-boundary state;
  // the hook exists so one can.
  virtual void OnBoundary(SimTime /*now*/) {}

  // The boundary cadence (drives the purge-mailbox drain events).
  Duration BoundaryInterval() const { return config_.delta; }

  // One per client proxy. `refresh_interval` is the proxy's configured Δ
  // (normally config().delta; proxy tests override it).
  virtual std::unique_ptr<ClientCoherence> NewClient(Duration refresh_interval);

  // Serializable commit check: indexes into `reads` whose version no
  // longer matches the version authority's head. Empty means the read set
  // is a consistent snapshot and the transaction may commit.
  virtual std::vector<size_t> StaleReadIndexes(
      const std::vector<ReadVersion>& /*reads*/) const {
    return {};
  }

  const CoherenceConfig& config() const { return config_; }
  StalenessTracker& staleness() { return staleness_; }
  const StalenessTracker& staleness() const { return staleness_; }
  SketchPublication& publication() { return publication_; }
  // Null except in Δ-atomic mode.
  sketch::CacheSketch* sketch() { return sketch_.get(); }

 protected:
  CoherenceProtocol(const CoherenceConfig& config,
                    std::unique_ptr<sketch::CacheSketch> sketch)
      : config_(config),
        sketch_(std::move(sketch)),
        publication_(sketch_.get()) {}

  CoherenceConfig config_;
  std::unique_ptr<sketch::CacheSketch> sketch_;
  SketchPublication publication_;
  StalenessTracker staleness_;
};

// Builds the protocol selected by `config`. `sketch_variant` is false for
// baseline system variants that hard-wire their own coherence (fixed-TTL
// CDN, no caching, purge-only): they always get the fixed-TTL protocol
// object — staleness bookkeeping plus an empty publication, exactly the
// null-sketch behavior they had before the tier existed — with the
// config's mode normalized to kFixedTtl so mode() never misreports.
std::unique_ptr<CoherenceProtocol> MakeCoherenceProtocol(
    const CoherenceConfig& config, bool sketch_variant);

}  // namespace speedkit::coherence

#endif  // SPEEDKIT_COHERENCE_PROTOCOL_H_
