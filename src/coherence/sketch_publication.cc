#include "coherence/sketch_publication.h"

namespace speedkit::coherence {

namespace {

// Null-sketch fallbacks, built once per process: a 64-bit empty filter is
// always representable, so Serialize cannot fail.
const std::shared_ptr<const std::string>& EmptySerialized() {
  static const std::shared_ptr<const std::string> kEmpty =
      std::make_shared<const std::string>(
          sketch::BloomFilter(64, 1).Serialize().value());
  return kEmpty;
}

const sketch::CacheSketch::Publication& EmptyPublication() {
  static const sketch::CacheSketch::Publication kEmpty = [] {
    sketch::BloomFilter empty(64, 1);
    size_t wire = empty.Serialize().value().size();
    return sketch::CacheSketch::Publication{
        std::make_shared<const sketch::BloomFilter>(std::move(empty)), wire};
  }();
  return kEmpty;
}

}  // namespace

std::shared_ptr<const std::string> SketchPublication::Serialized(SimTime now) {
  if (sketch_ == nullptr) return EmptySerialized();
  return sketch_->PublishedSnapshot(now);
}

size_t SketchPublication::InstallInto(sketch::ClientSketch* client,
                                      SimTime now) {
  sketch::CacheSketch::Publication pub =
      sketch_ == nullptr ? EmptyPublication() : sketch_->PublishedFilter(now);
  client->Install(pub.filter, pub.wire_bytes, now);
  return pub.wire_bytes;
}

}  // namespace speedkit::coherence
