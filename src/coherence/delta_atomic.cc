#include "coherence/delta_atomic.h"

namespace speedkit::coherence {

DeltaAtomicProtocol::DeltaAtomicProtocol(const CoherenceConfig& config)
    : CoherenceProtocol(config,
                        std::make_unique<sketch::CacheSketch>(
                            config.sketch_capacity, config.sketch_fpr)) {}

void DeltaAtomicProtocol::OnInvalidation(std::string_view key,
                                         SimTime stale_until, SimTime now) {
  sketch_->ReportInvalidation(key, stale_until, now);
}

std::unique_ptr<ClientCoherence> DeltaAtomicProtocol::NewClient(
    Duration refresh_interval) {
  return std::make_unique<DeltaAtomicClient>(&publication_, refresh_interval);
}

}  // namespace speedkit::coherence
