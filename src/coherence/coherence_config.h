// Typed configuration for the pluggable coherence tier.
//
// One struct collects every knob that used to live loose on StackConfig
// (sketch capacity/FPR, Δ) plus the mode selector and the serializable
// mode's retry budget. Validation returns real errors — a bad value is a
// bug at the call site, never something to silently clamp.
#ifndef SPEEDKIT_COHERENCE_COHERENCE_CONFIG_H_
#define SPEEDKIT_COHERENCE_COHERENCE_CONFIG_H_

#include <cstddef>
#include <string_view>

#include "common/sim_time.h"
#include "common/status.h"

namespace speedkit::coherence {

// The three client-visible coherence protocols a stack can run. The mode
// governs how clients decide whether a cached copy is safe to serve; the
// server-side invalidation pipeline remains a property of the system
// variant (baselines hard-wire their own coherence and ignore the mode).
enum class CoherenceMode {
  // Paper-faithful Cache Sketch: clients refresh a Bloom snapshot of
  // possibly-stale keys every Δ and bypass all shared caches for flagged
  // keys. Staleness is bounded by Δ + purge propagation.
  kDeltaAtomic,
  // Version-validated multi-key read-only transactions: reads serve from
  // caches optimistically, then one validation round trip compares the
  // read version vector against the authority; mismatched keys re-fetch
  // bypassing shared caches, and the transaction aborts after the retry
  // budget. Committed transactions see a consistent snapshot.
  kSerializable,
  // Plain expiration: no sketch, no validation — the lower baseline.
  kFixedTtl,
};

// Stable names used by --coherence flags and JSON output:
// "delta_atomic", "serializable", "fixed_ttl".
std::string_view CoherenceModeName(CoherenceMode mode);

// Parses a mode name (as printed by CoherenceModeName). On success writes
// `*out`; unknown names return InvalidArgument listing the valid set.
Status ParseCoherenceMode(std::string_view text, CoherenceMode* out);

struct CoherenceConfig {
  CoherenceMode mode = CoherenceMode::kDeltaAtomic;

  // Cache Sketch sizing (Δ-atomic mode on sketch-coherent variants only).
  size_t sketch_capacity = 100000;
  double sketch_fpr = 0.05;

  // The coherence boundary interval: client sketch refresh cadence in
  // Δ-atomic mode, and the cross-shard purge-mailbox drain cadence in
  // every mode.
  Duration delta = Duration::Seconds(30);

  // Serializable mode: validation rounds that may re-fetch mismatched
  // keys before the transaction aborts.
  int max_txn_retries = 2;

  // Structural sanity. `sketch_variant` is true when the enclosing system
  // variant actually runs sketch coherence (SpeedKit) — baselines don't
  // need a sketch capacity. Checks: sketch_fpr in (0, 0.5],
  // sketch_capacity > 0 (Δ-atomic on sketch variants), delta > 0,
  // max_txn_retries >= 0.
  Status Validate(bool sketch_variant) const;
};

}  // namespace speedkit::coherence

#endif  // SPEEDKIT_COHERENCE_COHERENCE_CONFIG_H_
