#include "coherence/staleness.h"

#include <algorithm>

namespace speedkit::coherence {

void StalenessTracker::RecordWrite(std::string_view key, uint64_t version,
                                   SimTime now) {
  KeyHistory& history = keys_[std::string(key)];
  if (version <= history.head_version) return;  // out-of-order: ignore
  history.head_version = version;
  history.writes.emplace_back(version, now);
  while (history.writes.size() > ring_capacity_) history.writes.pop_front();
}

Duration StalenessTracker::RecordRead(std::string_view key, uint64_t version,
                                      SimTime now, bool excused) {
  report_.reads++;
  auto it = keys_.find(std::string(key));
  if (it == keys_.end()) return Duration::Zero();  // key never written
  const KeyHistory& history = it->second;
  if (version >= history.head_version) return Duration::Zero();

  report_.stale_reads++;
  // The read value died when version+1 was written: find the first dated
  // write with version > served version.
  auto overwrite = std::find_if(
      history.writes.begin(), history.writes.end(),
      [version](const auto& w) { return w.first > version; });
  Duration staleness;
  if (overwrite != history.writes.end()) {
    staleness = now - overwrite->second;
    if (overwrite == history.writes.begin() &&
        history.writes.front().first > version + 1) {
      // The true overwrite rotated out; this is a lower bound.
      report_.clamped++;
    }
  } else {
    // All dated writes are <= version yet head > version: the overwrite
    // rotated out entirely. Clamp to the newest known write.
    staleness = history.writes.empty() ? Duration::Zero()
                                       : now - history.writes.back().second;
    report_.clamped++;
  }
  if (staleness > report_.max_staleness) report_.max_staleness = staleness;
  if (excused) {
    report_.excused_stale_reads++;
  } else if (staleness > delta_bound_) {
    report_.delta_violations++;
  }
  staleness_us_.Add(staleness.micros());
  return staleness;
}

std::optional<uint64_t> StalenessTracker::CurrentVersion(
    std::string_view key) const {
  auto it = keys_.find(std::string(key));
  if (it == keys_.end()) return std::nullopt;
  return it->second.head_version;
}

SnapshotCheck StalenessTracker::CheckSnapshot(
    const std::vector<ReadVersion>& reads) const {
  SnapshotCheck out;
  bool have_birth = false;
  bool have_death = false;
  SimTime max_birth;
  SimTime min_death;
  for (const ReadVersion& read : reads) {
    auto it = keys_.find(read.key);
    if (it == keys_.end()) continue;  // never written: constrains nothing
    const KeyHistory& history = it->second;

    // Birth: when the read version was written. Version 0 predates all
    // tracked writes (served before the first write) — open from -inf.
    auto born = std::find_if(
        history.writes.begin(), history.writes.end(),
        [&read](const auto& w) { return w.first == read.version; });
    if (born != history.writes.end()) {
      if (!have_birth || born->second > max_birth) max_birth = born->second;
      have_birth = true;
    } else if (read.version > 0) {
      out.clamped = true;  // write time rotated out: treat as -inf
    }

    // Death: when the next version was written; a head read never dies.
    if (read.version >= history.head_version) continue;
    auto overwrite = std::find_if(
        history.writes.begin(), history.writes.end(),
        [&read](const auto& w) { return w.first > read.version; });
    if (overwrite == history.writes.end()) {
      out.clamped = true;  // overwrite rotated out entirely: treat as +inf
      continue;
    }
    if (overwrite == history.writes.begin() &&
        overwrite->first > read.version + 1) {
      out.clamped = true;  // true overwrite may have rotated out
    }
    if (!have_death || overwrite->second < min_death) {
      min_death = overwrite->second;
    }
    have_death = true;
  }
  // Intervals are [birth, death): a common instant exists iff the latest
  // birth strictly precedes the earliest death. Missing bounds are
  // infinitely generous.
  if (have_birth && have_death) out.consistent = max_birth < min_death;
  return out;
}

}  // namespace speedkit::coherence
