// Staleness measurement — the instrument behind the Δ-atomicity claim,
// and the version authority behind serializable read validation.
//
// Every write is dated per (cache key, version); every read reports the
// version it served. A read of version v at time t is *stale* if a newer
// version existed at t; its staleness is t minus the time v was overwritten
// (the moment the read value stopped being current). Δ-atomicity holds for
// a run iff max staleness <= Δ + purge propagation; E2 sweeps Δ and checks
// exactly this number.
//
// For multi-key transactions the same per-key version rings answer two
// more questions: what is the current (head) version of a key, and did a
// set of reads observe a consistent snapshot — i.e. do the validity
// intervals of the read versions share a common instant (E18).
//
// Version write times are kept in bounded per-key rings; if a version has
// already rotated out, the staleness is *underestimated* by clamping to the
// oldest known write — the tracker reports how often that happened so the
// bound is never silently weakened. Snapshot checks clamp the same way,
// toward "consistent".
#ifndef SPEEDKIT_COHERENCE_STALENESS_H_
#define SPEEDKIT_COHERENCE_STALENESS_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/sim_time.h"

namespace speedkit::coherence {

struct StalenessReport {
  uint64_t reads = 0;
  uint64_t stale_reads = 0;
  uint64_t clamped = 0;  // staleness underestimated (ring overflow)
  Duration max_staleness = Duration::Zero();
  // Δ-bound accounting (fault injection, E14): a read staler than the
  // armed bound is a violation — unless it was excused, i.e. the caller
  // knowingly traded freshness for availability (offline serves during an
  // outage). Excused stale reads are tallied separately so availability
  // wins are visible without masking coherence regressions.
  uint64_t delta_violations = 0;
  uint64_t excused_stale_reads = 0;

  double StaleFraction() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(stale_reads) /
                            static_cast<double>(reads);
  }

  double ViolationFraction() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(delta_violations) /
                            static_cast<double>(reads);
  }

  // Accumulates another run's report (counters summed, bound max'd) for
  // the multi-seed harness.
  void Merge(const StalenessReport& other) {
    reads += other.reads;
    stale_reads += other.stale_reads;
    clamped += other.clamped;
    if (other.max_staleness > max_staleness) {
      max_staleness = other.max_staleness;
    }
    delta_violations += other.delta_violations;
    excused_stale_reads += other.excused_stale_reads;
  }
};

// One read of a multi-key transaction: the cache key and the version the
// serving tier handed back.
struct ReadVersion {
  std::string key;
  uint64_t version = 0;
};

// Verdict of a snapshot-consistency check. `clamped` flags checks where
// some interval bound had rotated out of the version ring — the missing
// bound is taken as infinitely generous, so clamping can only under-count
// anomalies (mirroring the staleness clamp above).
struct SnapshotCheck {
  bool consistent = true;
  bool clamped = false;
};

class StalenessTracker {
 public:
  // `ring_capacity`: how many recent versions are dated per key.
  explicit StalenessTracker(size_t ring_capacity = 64)
      : ring_capacity_(ring_capacity) {}

  // Dates `version` of `key` at `now`. Must be called for every write,
  // in version order per key.
  void RecordWrite(std::string_view key, uint64_t version, SimTime now);

  // Reports a read that served `version` of `key` at `now`. Returns the
  // read's staleness (zero if current). `excused` marks reads where the
  // serving layer deliberately chose availability over freshness (offline
  // mode): they count as stale but never as Δ-violations.
  Duration RecordRead(std::string_view key, uint64_t version, SimTime now,
                      bool excused = false);

  // Head (most recently written) version of `key`; nullopt when the key
  // was never written. The serializable protocol validates read vectors
  // against exactly this.
  std::optional<uint64_t> CurrentVersion(std::string_view key) const;

  // Did `reads` observe a consistent snapshot? Each read version v of a
  // key is valid over [written_at(v), written_at(first version > v)); the
  // set is consistent iff those intervals share a common instant
  // (max birth < min death). Keys the tracker never saw written are valid
  // forever and constrain nothing; bounds that rotated out of the ring
  // are taken as infinitely generous and flagged via `clamped`.
  SnapshotCheck CheckSnapshot(const std::vector<ReadVersion>& reads) const;

  // Arms Δ-bound checking: any non-excused read staler than `bound`
  // increments delta_violations. Duration::Max() (the default) disables
  // the check. Callers set this to Δ + a purge-propagation allowance.
  void SetDeltaBound(Duration bound) { delta_bound_ = bound; }
  Duration delta_bound() const { return delta_bound_; }

  const StalenessReport& report() const { return report_; }
  // Staleness of stale reads only, microseconds.
  const Histogram& staleness_us() const { return staleness_us_; }

 private:
  struct KeyHistory {
    uint64_t head_version = 0;
    // (version, written_at) of recent writes, ascending version.
    std::deque<std::pair<uint64_t, SimTime>> writes;
  };

  size_t ring_capacity_;
  Duration delta_bound_ = Duration::Max();
  std::unordered_map<std::string, KeyHistory> keys_;
  StalenessReport report_;
  Histogram staleness_us_;
};

}  // namespace speedkit::coherence

#endif  // SPEEDKIT_COHERENCE_STALENESS_H_
