// Plain fixed-TTL coherence — the lower baseline, and the degenerate
// protocol object baselines without any client-side coherence run.
//
// Caches serve until expiry; nothing warns a client that a key changed.
// The protocol object still carries the staleness tracker (so anomaly and
// staleness accounting keep working — that is the whole point of running
// this baseline) and an empty publication (so the /sketch route and any
// refresh path degrade to the constant empty filter).
#ifndef SPEEDKIT_COHERENCE_FIXED_TTL_H_
#define SPEEDKIT_COHERENCE_FIXED_TTL_H_

#include "coherence/protocol.h"

namespace speedkit::coherence {

class FixedTtlProtocol : public CoherenceProtocol {
 public:
  explicit FixedTtlProtocol(const CoherenceConfig& config)
      : CoherenceProtocol(config, nullptr) {}

  // Without a change signal, SWR would stretch staleness past the TTL.
  bool AdmitStaleWhileRevalidate() const override { return false; }
};

}  // namespace speedkit::coherence

#endif  // SPEEDKIT_COHERENCE_FIXED_TTL_H_
