#include "coherence/serializable.h"

namespace speedkit::coherence {

std::vector<size_t> SerializableProtocol::StaleReadIndexes(
    const std::vector<ReadVersion>& reads) const {
  std::vector<size_t> stale;
  for (size_t i = 0; i < reads.size(); ++i) {
    auto head = staleness_.CurrentVersion(reads[i].key);
    // A key the authority never saw written cannot mismatch; version 0
    // reads of written keys predate the first write and always mismatch.
    if (head.has_value() && *head != reads[i].version) stale.push_back(i);
  }
  return stale;
}

}  // namespace speedkit::coherence
