// Case-insensitive HTTP header map (RFC 7230 field names are
// case-insensitive). Preserves insertion order for deterministic output;
// lookups are linear, which is faster than hashing for the <20 headers a
// real message carries.
#ifndef SPEEDKIT_HTTP_HEADERS_H_
#define SPEEDKIT_HTTP_HEADERS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace speedkit::http {

class HeaderMap {
 public:
  // Replaces any existing value(s) for `name`.
  void Set(std::string_view name, std::string_view value);

  // Appends without replacing (e.g. multiple Set-Cookie).
  void Add(std::string_view name, std::string_view value);

  // First value for `name`, if present.
  std::optional<std::string_view> Get(std::string_view name) const;

  // All values for `name`, in insertion order.
  std::vector<std::string_view> GetAll(std::string_view name) const;

  bool Has(std::string_view name) const { return Get(name).has_value(); }
  void Remove(std::string_view name);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // Iteration over (name, value) pairs in insertion order.
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  // Approximate wire size in bytes ("name: value\r\n" per entry).
  size_t WireSize() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

// Parses a response's Vary field value into normalized request-header
// names: lowercased, trimmed, sorted, deduplicated — a canonical form, so
// caches build identical variant keys for "Accept, X-Segment" and
// "x-segment,accept". A "*" anywhere yields exactly {"*"} (RFC 9110: the
// response varies on unknowable inputs and is effectively uncacheable).
std::vector<std::string> ParseVaryNames(std::string_view vary_value);

}  // namespace speedkit::http

#endif  // SPEEDKIT_HTTP_HEADERS_H_
