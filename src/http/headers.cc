#include "http/headers.h"

#include <algorithm>

#include "common/strings.h"

namespace speedkit::http {

void HeaderMap::Set(std::string_view name, std::string_view value) {
  Remove(name);
  entries_.emplace_back(std::string(name), std::string(value));
}

void HeaderMap::Add(std::string_view name, std::string_view value) {
  entries_.emplace_back(std::string(name), std::string(value));
}

std::optional<std::string_view> HeaderMap::Get(std::string_view name) const {
  for (const auto& [k, v] : entries_) {
    if (EqualsIgnoreCase(k, name)) return std::string_view(v);
  }
  return std::nullopt;
}

std::vector<std::string_view> HeaderMap::GetAll(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& [k, v] : entries_) {
    if (EqualsIgnoreCase(k, name)) out.emplace_back(v);
  }
  return out;
}

void HeaderMap::Remove(std::string_view name) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [name](const auto& e) {
                                  return EqualsIgnoreCase(e.first, name);
                                }),
                 entries_.end());
}

size_t HeaderMap::WireSize() const {
  size_t bytes = 0;
  for (const auto& [k, v] : entries_) bytes += k.size() + v.size() + 4;
  return bytes;
}

std::vector<std::string> ParseVaryNames(std::string_view vary_value) {
  std::vector<std::string> names;
  for (std::string_view piece : SplitView(vary_value, ',')) {
    std::string_view name = TrimWhitespace(piece);
    if (name.empty()) continue;
    if (name == "*") return {"*"};
    names.push_back(AsciiLower(name));
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace speedkit::http
