// HTTP request/response model.
//
// This is the message vocabulary every layer of the stack speaks: the client
// proxy, the browser cache, the CDN edges and the origin. Two fields exist
// purely as simulation instrumentation and would not appear on a real wire:
// `object_version` (logical version of the backing record, used by the
// staleness tracker to verify Δ-atomicity) and `generated_at` (origin
// render time on the simulated clock, used to compute Age).
#ifndef SPEEDKIT_HTTP_MESSAGE_H_
#define SPEEDKIT_HTTP_MESSAGE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "http/cache_control.h"
#include "http/headers.h"
#include "http/url.h"

namespace speedkit::http {

enum class Method { kGet, kHead, kPost, kPut, kPatch, kDelete };

std::string_view MethodName(Method m);

// GET and HEAD are the only cacheable methods (RFC 7231 §4.2.3).
bool IsCacheableMethod(Method m);

struct HttpRequest {
  Method method = Method::kGet;
  Url url;
  HeaderMap headers;
  std::string body;

  static HttpRequest Get(const Url& url) {
    return HttpRequest{Method::kGet, url, {}, {}};
  }

  // True when the request carries an If-None-Match validator.
  bool IsConditional() const { return headers.Has("If-None-Match"); }
};

struct HttpResponse {
  int status_code = 200;
  HeaderMap headers;
  std::string body;

  // --- simulation instrumentation (not wire data) ---
  // Logical version of the record this response was rendered from.
  uint64_t object_version = 0;
  // Origin render time; lets caches compute Age without wall clocks.
  SimTime generated_at;
  // Server-side processing cost for producing this response (DB access,
  // templating, or a render-cache hit); charged onto request latency by
  // whoever called the origin.
  Duration server_time = Duration::Zero();

  bool ok() const { return status_code >= 200 && status_code < 300; }
  bool IsNotModified() const { return status_code == 304; }

  CacheControl GetCacheControl() const;
  void SetCacheControl(const CacheControl& cc);

  std::string ETag() const;
  void SetETag(std::string_view etag);

  // Approximate wire size (status line + headers + body) used by the
  // bandwidth model and the bytes-from-cache accounting.
  size_t WireSize() const;
};

// Builds a 200 response with the given body and caching policy.
HttpResponse MakeOkResponse(std::string body, const CacheControl& cc,
                            uint64_t object_version, SimTime generated_at);

// Builds a 304 Not Modified carrying only the validator; freshness headers
// are replayed so caches can extend the stored entry's lifetime.
HttpResponse MakeNotModified(std::string_view etag, const CacheControl& cc,
                             uint64_t object_version, SimTime generated_at);

HttpResponse MakeNotFound();
HttpResponse MakeServiceUnavailable();

}  // namespace speedkit::http

#endif  // SPEEDKIT_HTTP_MESSAGE_H_
