// RFC 7234 Cache-Control parsing and formatting — the vocabulary both the
// expiration-based caches (browser, CDN) and the origin's TTL decisions
// speak. Unknown directives are ignored per spec; malformed numeric values
// invalidate only the directive they belong to.
#ifndef SPEEDKIT_HTTP_CACHE_CONTROL_H_
#define SPEEDKIT_HTTP_CACHE_CONTROL_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/sim_time.h"

namespace speedkit::http {

struct CacheControl {
  bool no_store = false;
  bool no_cache = false;       // may store, must revalidate before use
  bool must_revalidate = false;  // once stale, must revalidate
  bool is_public = false;
  bool is_private = false;     // shared caches (CDN) must not store
  bool immutable = false;
  std::optional<Duration> max_age;
  std::optional<Duration> s_maxage;  // overrides max-age for shared caches
  std::optional<Duration> stale_while_revalidate;

  // Parses a Cache-Control header value, e.g.
  // "public, max-age=60, s-maxage=300, stale-while-revalidate=30".
  static CacheControl Parse(std::string_view value);

  // Serializes back to a header value (canonical directive order).
  std::string ToString() const;

  // Freshness lifetime as seen by a private (browser) cache.
  std::optional<Duration> FreshnessForPrivateCache() const;
  // Freshness lifetime as seen by a shared (CDN) cache; s-maxage wins.
  std::optional<Duration> FreshnessForSharedCache() const;

  // True if a cache of the given kind may store the response at all.
  bool Storable(bool shared_cache) const;
};

}  // namespace speedkit::http

#endif  // SPEEDKIT_HTTP_CACHE_CONTROL_H_
