#include "http/cache_control.h"

#include "common/strings.h"

namespace speedkit::http {

namespace {

std::optional<Duration> ParseSeconds(std::string_view v) {
  auto n = ParseInt64(v);
  if (!n.has_value()) return std::nullopt;
  return Duration::Seconds(static_cast<double>(*n));
}

}  // namespace

CacheControl CacheControl::Parse(std::string_view value) {
  CacheControl cc;
  for (std::string_view token : SplitView(value, ',')) {
    if (token.empty()) continue;
    std::string_view name = token;
    std::string_view arg;
    size_t eq = token.find('=');
    if (eq != std::string_view::npos) {
      name = TrimWhitespace(token.substr(0, eq));
      arg = TrimWhitespace(token.substr(eq + 1));
      // Quoted form: max-age="60".
      if (arg.size() >= 2 && arg.front() == '"' && arg.back() == '"') {
        arg = arg.substr(1, arg.size() - 2);
      }
    }
    if (EqualsIgnoreCase(name, "no-store")) {
      cc.no_store = true;
    } else if (EqualsIgnoreCase(name, "no-cache")) {
      cc.no_cache = true;
    } else if (EqualsIgnoreCase(name, "must-revalidate")) {
      cc.must_revalidate = true;
    } else if (EqualsIgnoreCase(name, "public")) {
      cc.is_public = true;
    } else if (EqualsIgnoreCase(name, "private")) {
      cc.is_private = true;
    } else if (EqualsIgnoreCase(name, "immutable")) {
      cc.immutable = true;
    } else if (EqualsIgnoreCase(name, "max-age")) {
      cc.max_age = ParseSeconds(arg);
    } else if (EqualsIgnoreCase(name, "s-maxage")) {
      cc.s_maxage = ParseSeconds(arg);
    } else if (EqualsIgnoreCase(name, "stale-while-revalidate")) {
      cc.stale_while_revalidate = ParseSeconds(arg);
    }
    // Unknown directives: ignored per RFC 7234 §5.2.3.
  }
  return cc;
}

std::string CacheControl::ToString() const {
  std::string out;
  auto append = [&out](std::string_view directive) {
    if (!out.empty()) out += ", ";
    out += directive;
  };
  if (is_public) append("public");
  if (is_private) append("private");
  if (no_store) append("no-store");
  if (no_cache) append("no-cache");
  if (must_revalidate) append("must-revalidate");
  if (immutable) append("immutable");
  if (max_age.has_value()) {
    append(StrFormat("max-age=%lld",
                     static_cast<long long>(max_age->micros() / 1000000)));
  }
  if (s_maxage.has_value()) {
    append(StrFormat("s-maxage=%lld",
                     static_cast<long long>(s_maxage->micros() / 1000000)));
  }
  if (stale_while_revalidate.has_value()) {
    append(StrFormat(
        "stale-while-revalidate=%lld",
        static_cast<long long>(stale_while_revalidate->micros() / 1000000)));
  }
  return out;
}

std::optional<Duration> CacheControl::FreshnessForPrivateCache() const {
  return max_age;
}

std::optional<Duration> CacheControl::FreshnessForSharedCache() const {
  if (s_maxage.has_value()) return s_maxage;
  return max_age;
}

bool CacheControl::Storable(bool shared_cache) const {
  if (no_store) return false;
  if (shared_cache && is_private) return false;
  return true;
}

}  // namespace speedkit::http
