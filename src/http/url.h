// Minimal URL model covering what Web caching needs: scheme, host, port,
// path, query. Fragments are parsed but excluded from the cache key
// (RFC 7234: the effective request URI never includes the fragment).
#ifndef SPEEDKIT_HTTP_URL_H_
#define SPEEDKIT_HTTP_URL_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace speedkit::http {

class Url {
 public:
  Url() = default;

  // Parses an absolute URL, e.g. "https://shop.example.com/p/42?ref=a#top".
  // Accepted schemes: http, https. Relative references are rejected; the
  // client proxy always operates on absolute request URLs.
  static Result<Url> Parse(std::string_view input);

  const std::string& scheme() const { return scheme_; }
  const std::string& host() const { return host_; }
  // 0 means "default for scheme" (80 / 443).
  uint16_t port() const { return port_; }
  uint16_t EffectivePort() const;
  const std::string& path() const { return path_; }
  const std::string& query() const { return query_; }
  const std::string& fragment() const { return fragment_; }

  // Canonical form used as the cache key across every cache layer:
  // lowercase scheme+host, explicit path ("/" if empty), query included,
  // default port elided, fragment dropped.
  std::string CacheKey() const;

  // Full textual form (incl. fragment).
  std::string ToString() const;

  friend bool operator==(const Url& a, const Url& b) {
    return a.CacheKey() == b.CacheKey();
  }

 private:
  std::string scheme_;
  std::string host_;
  uint16_t port_ = 0;
  std::string path_ = "/";
  std::string query_;
  std::string fragment_;
};

}  // namespace speedkit::http

#endif  // SPEEDKIT_HTTP_URL_H_
