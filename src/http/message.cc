#include "http/message.h"

namespace speedkit::http {

std::string_view MethodName(Method m) {
  switch (m) {
    case Method::kGet:
      return "GET";
    case Method::kHead:
      return "HEAD";
    case Method::kPost:
      return "POST";
    case Method::kPut:
      return "PUT";
    case Method::kPatch:
      return "PATCH";
    case Method::kDelete:
      return "DELETE";
  }
  return "GET";
}

bool IsCacheableMethod(Method m) {
  return m == Method::kGet || m == Method::kHead;
}

CacheControl HttpResponse::GetCacheControl() const {
  auto value = headers.Get("Cache-Control");
  return value.has_value() ? CacheControl::Parse(*value) : CacheControl{};
}

void HttpResponse::SetCacheControl(const CacheControl& cc) {
  headers.Set("Cache-Control", cc.ToString());
}

std::string HttpResponse::ETag() const {
  auto value = headers.Get("ETag");
  return value.has_value() ? std::string(*value) : std::string();
}

void HttpResponse::SetETag(std::string_view etag) {
  headers.Set("ETag", etag);
}

size_t HttpResponse::WireSize() const {
  return 17 /* status line */ + headers.WireSize() + body.size();
}

HttpResponse MakeOkResponse(std::string body, const CacheControl& cc,
                            uint64_t object_version, SimTime generated_at) {
  HttpResponse resp;
  resp.status_code = 200;
  resp.body = std::move(body);
  resp.SetCacheControl(cc);
  resp.object_version = object_version;
  resp.generated_at = generated_at;
  return resp;
}

HttpResponse MakeNotModified(std::string_view etag, const CacheControl& cc,
                             uint64_t object_version, SimTime generated_at) {
  HttpResponse resp;
  resp.status_code = 304;
  resp.SetETag(etag);
  resp.SetCacheControl(cc);
  resp.object_version = object_version;
  resp.generated_at = generated_at;
  return resp;
}

HttpResponse MakeNotFound() {
  HttpResponse resp;
  resp.status_code = 404;
  resp.body = "not found";
  return resp;
}

HttpResponse MakeServiceUnavailable() {
  HttpResponse resp;
  resp.status_code = 503;
  resp.body = "service unavailable";
  return resp;
}

}  // namespace speedkit::http
