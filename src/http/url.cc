#include "http/url.h"

#include "common/strings.h"

namespace speedkit::http {

Result<Url> Url::Parse(std::string_view input) {
  Url url;
  size_t scheme_end = input.find("://");
  if (scheme_end == std::string_view::npos) {
    return Status::InvalidArgument("url has no scheme: " + std::string(input));
  }
  url.scheme_ = AsciiLower(input.substr(0, scheme_end));
  if (url.scheme_ != "http" && url.scheme_ != "https") {
    return Status::InvalidArgument("unsupported scheme: " + url.scheme_);
  }
  std::string_view rest = input.substr(scheme_end + 3);

  size_t authority_end = rest.find_first_of("/?#");
  std::string_view authority = rest.substr(0, authority_end);
  if (authority.empty()) {
    return Status::InvalidArgument("url has empty host: " + std::string(input));
  }
  size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    auto port = ParseInt64(authority.substr(colon + 1));
    if (!port.has_value() || *port == 0 || *port > 65535) {
      return Status::InvalidArgument("bad port in url: " + std::string(input));
    }
    url.port_ = static_cast<uint16_t>(*port);
    authority = authority.substr(0, colon);
  }
  if (authority.empty()) {
    return Status::InvalidArgument("url has empty host: " + std::string(input));
  }
  url.host_ = AsciiLower(authority);

  if (authority_end == std::string_view::npos) return url;
  rest = rest.substr(authority_end);

  size_t frag = rest.find('#');
  if (frag != std::string_view::npos) {
    url.fragment_ = std::string(rest.substr(frag + 1));
    rest = rest.substr(0, frag);
  }
  size_t q = rest.find('?');
  if (q != std::string_view::npos) {
    url.query_ = std::string(rest.substr(q + 1));
    rest = rest.substr(0, q);
  }
  url.path_ = rest.empty() ? "/" : std::string(rest);
  return url;
}

uint16_t Url::EffectivePort() const {
  if (port_ != 0) return port_;
  return scheme_ == "https" ? 443 : 80;
}

std::string Url::CacheKey() const {
  std::string key = scheme_ + "://" + host_;
  uint16_t default_port = scheme_ == "https" ? 443 : 80;
  if (port_ != 0 && port_ != default_port) {
    key += ":" + std::to_string(port_);
  }
  key += path_;
  if (!query_.empty()) key += "?" + query_;
  return key;
}

std::string Url::ToString() const {
  std::string s = CacheKey();
  if (!fragment_.empty()) s += "#" + fragment_;
  return s;
}

}  // namespace speedkit::http
