// Small string utilities shared across modules (header parsing, URL
// handling, report formatting). No locale dependence: ASCII-only semantics,
// which is what HTTP header grammar requires.
#ifndef SPEEDKIT_COMMON_STRINGS_H_
#define SPEEDKIT_COMMON_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace speedkit {

// ASCII lowercase copy.
std::string AsciiLower(std::string_view s);

// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Strips ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

// Splits on `sep`, trimming each piece; empty pieces are kept so that
// callers can detect malformed inputs like "a,,b".
std::vector<std::string_view> SplitView(std::string_view s, char sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Strict non-negative integer parse; rejects empty, sign, overflow, trailing
// garbage. HTTP directive values (max-age=...) must parse this strictly.
std::optional<int64_t> ParseInt64(std::string_view s);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace speedkit

#endif  // SPEEDKIT_COMMON_STRINGS_H_
