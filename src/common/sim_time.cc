#include "common/sim_time.h"

#include <cstdio>

namespace speedkit {

std::string Duration::ToString() const {
  char buf[32];
  if (us_ % 1000000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds", static_cast<long long>(us_ / 1000000));
  } else if (us_ % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(us_ / 1000));
  } else if (us_ > 1000000 || us_ < -1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", us_ / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us_));
  }
  return buf;
}

}  // namespace speedkit
