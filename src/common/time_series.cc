#include "common/time_series.h"

namespace speedkit {

void TimeSeries::Add(SimTime at, double value) {
  if (at < SimTime::Origin() || bucket_width_ <= Duration::Zero()) return;
  size_t index =
      static_cast<size_t>(at.micros() / bucket_width_.micros());
  if (index >= buckets_.size()) buckets_.resize(index + 1);
  buckets_[index].count++;
  buckets_[index].sum += value;
}

void TimeSeries::Merge(const TimeSeries& other) {
  if (other.bucket_width_ != bucket_width_) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size());
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i].count += other.buckets_[i].count;
    buckets_[i].sum += other.buckets_[i].sum;
  }
}

double TimeSeries::MeanAt(size_t i) const {
  if (i >= buckets_.size() || buckets_[i].count == 0) return 0.0;
  return buckets_[i].sum / static_cast<double>(buckets_[i].count);
}

uint64_t TimeSeries::CountAt(size_t i) const {
  return i < buckets_.size() ? buckets_[i].count : 0;
}

double TimeSeries::SumAt(size_t i) const {
  return i < buckets_.size() ? buckets_[i].sum : 0.0;
}

}  // namespace speedkit
