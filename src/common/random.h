// Deterministic pseudo-randomness for simulations.
//
// All stochastic behaviour in speedkit flows from a seeded Pcg32 so that
// every simulation run is reproducible bit-for-bit. Pcg32 is the PCG-XSH-RR
// generator (O'Neill 2014): 64-bit state, 32-bit output, excellent
// statistical quality at a fraction of the cost of std::mt19937.
#ifndef SPEEDKIT_COMMON_RANDOM_H_
#define SPEEDKIT_COMMON_RANDOM_H_

#include <cstdint>

namespace speedkit {

class Pcg32 {
 public:
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL);

  // Uniform 32-bit value.
  uint32_t Next();

  // Uniform in [0, bound). Uses Lemire's nearly-divisionless method.
  uint32_t NextBounded(uint32_t bound);

  // Uniform 64-bit value (two draws).
  uint64_t Next64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Exponential with the given rate (mean 1/rate). rate must be > 0.
  double Exponential(double rate);

  // Standard normal via Box-Muller (one value per call, no caching so that
  // the draw count stays predictable for reproducibility audits).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Lognormal such that exp(Normal(mu, sigma)); used by latency models.
  double LogNormal(double mu, double sigma);

  // Bernoulli trial.
  bool OneIn(uint32_t n) { return n != 0 && NextBounded(n) == 0; }
  bool WithProbability(double p) { return NextDouble() < p; }

  // Forks an independent generator: same seed lineage, distinct stream.
  // Use to give each simulated component its own deterministic source.
  Pcg32 Fork(uint64_t salt);

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace speedkit

#endif  // SPEEDKIT_COMMON_RANDOM_H_
