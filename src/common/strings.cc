#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace speedkit {

namespace {
inline char ToLowerAscii(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
inline bool IsSpaceAscii(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}
}  // namespace

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = ToLowerAscii(c);
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (ToLowerAscii(a[i]) != ToLowerAscii(b[i])) return false;
  }
  return true;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsSpaceAscii(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsSpaceAscii(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> SplitView(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(TrimWhitespace(s.substr(start)));
      break;
    }
    out.push_back(TrimWhitespace(s.substr(start, pos - start)));
    start = pos + 1;
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  if (s.empty() || s.size() > 19) return std::nullopt;
  int64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  return value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace speedkit
