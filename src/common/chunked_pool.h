// Chunk-allocated object arena with stable addresses.
//
// The fleet's per-client state (client proxies, driver bookkeeping) used
// to be a million tiny unique_ptr heap objects — one allocation each, no
// locality, and a pointer-chasing destructor storm at teardown. A
// ChunkedPool constructs objects in place inside large chunks: one
// allocation per kChunkSize objects, contiguous layout for iteration in
// index order (which is also construction order — determinism-relevant
// when iteration has side effects), and O(chunks) teardown. Objects are
// never moved (addresses are stable for the pool's lifetime) and never
// individually freed — this is an arena, not a free-list allocator; the
// fleet's population only grows within a run.
#ifndef SPEEDKIT_COMMON_CHUNKED_POOL_H_
#define SPEEDKIT_COMMON_CHUNKED_POOL_H_

#include <cstddef>
#include <new>
#include <utility>
#include <vector>

namespace speedkit {

template <typename T, size_t kChunkSize = 256>
class ChunkedPool {
 public:
  ChunkedPool() = default;
  ChunkedPool(const ChunkedPool&) = delete;
  ChunkedPool& operator=(const ChunkedPool&) = delete;

  ~ChunkedPool() {
    for (size_t i = 0; i < size_; ++i) at(i)->~T();
    for (T* chunk : chunks_) {
      ::operator delete(chunk, std::align_val_t{alignof(T)});
    }
  }

  template <typename... Args>
  T* Emplace(Args&&... args) {
    if (size_ == chunks_.size() * kChunkSize) {
      chunks_.push_back(static_cast<T*>(::operator new(
          sizeof(T) * kChunkSize, std::align_val_t{alignof(T)})));
    }
    T* slot = chunks_[size_ / kChunkSize] + (size_ % kChunkSize);
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return slot;
  }

  T* at(size_t i) { return chunks_[i / kChunkSize] + (i % kChunkSize); }
  const T* at(size_t i) const {
    return chunks_[i / kChunkSize] + (i % kChunkSize);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Visits objects in construction (index) order.
  template <typename Fn>
  void ForEach(Fn fn) {
    for (size_t i = 0; i < size_; ++i) fn(*at(i));
  }
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t i = 0; i < size_; ++i) fn(*at(i));
  }

 private:
  std::vector<T*> chunks_;
  size_t size_ = 0;
};

}  // namespace speedkit

#endif  // SPEEDKIT_COMMON_CHUNKED_POOL_H_
