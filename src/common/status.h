// Status: RocksDB-style error handling for library code that must not throw.
//
// Every fallible operation in speedkit returns either a `Status` or a
// `Result<T>` (see result.h). A `Status` is cheap to copy in the OK case
// (no allocation) and carries a code plus a human-readable message otherwise.
#ifndef SPEEDKIT_COMMON_STATUS_H_
#define SPEEDKIT_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>

namespace speedkit {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,
  kCorruption,
  kPermissionDenied,
  kResourceExhausted,
  kInternal,
};

// Returns a stable, lowercase name for `code`, e.g. "not_found".
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  // Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status NotFound(std::string_view msg);
  static Status InvalidArgument(std::string_view msg);
  static Status AlreadyExists(std::string_view msg);
  static Status OutOfRange(std::string_view msg);
  static Status FailedPrecondition(std::string_view msg);
  static Status Unavailable(std::string_view msg);
  static Status Corruption(std::string_view msg);
  static Status PermissionDenied(std::string_view msg);
  static Status ResourceExhausted(std::string_view msg);
  static Status Internal(std::string_view msg);

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  // "ok" or "<code_name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; keeps the common path allocation-free.
  std::unique_ptr<Rep> rep_;
};

}  // namespace speedkit

#endif  // SPEEDKIT_COMMON_STATUS_H_
