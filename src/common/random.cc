#include "common/random.h"

#include <cmath>

namespace speedkit {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  Next();
  state_ += seed;
  Next();
}

uint32_t Pcg32::Next() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31));
}

uint32_t Pcg32::NextBounded(uint32_t bound) {
  if (bound <= 1) return 0;
  uint64_t m = static_cast<uint64_t>(Next()) * bound;
  uint32_t l = static_cast<uint32_t>(m);
  if (l < bound) {
    uint32_t t = (~bound + 1u) % bound;  // == 2^32 mod bound
    while (l < t) {
      m = static_cast<uint64_t>(Next()) * bound;
      l = static_cast<uint32_t>(m);
    }
  }
  return static_cast<uint32_t>(m >> 32);
}

uint64_t Pcg32::Next64() {
  return (static_cast<uint64_t>(Next()) << 32) | Next();
}

double Pcg32::NextDouble() {
  // 53 random bits -> [0, 1).
  return (Next64() >> 11) * (1.0 / 9007199254740992.0);
}

double Pcg32::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Pcg32::Exponential(double rate) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Pcg32::Normal(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Pcg32::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

Pcg32 Pcg32::Fork(uint64_t salt) {
  // Derive a child seed/stream from this generator's own output plus the
  // caller-supplied salt; advancing the parent keeps siblings independent.
  uint64_t seed = Next64() ^ (salt * 0x9e3779b97f4a7c15ULL);
  uint64_t stream = Next64() + salt;
  return Pcg32(seed, stream);
}

}  // namespace speedkit
