// Open-addressing hash map keyed by std::string — the hot-path container
// behind the origin's expiry book.
//
// Layout: one contiguous slot array (power-of-two capacity), linear
// probing, Murmur3 hashes cached per slot so rehash and probe compares
// never touch key bytes unless the hashes already match. Erase leaves a
// tombstone; a rehash (triggered at 7/8 combined load of live entries and
// tombstones) drops tombstones and restores probe-sequence health. Probes
// accept string_view, so lookups never materialize a temporary
// std::string — same heterogeneous-lookup guarantee the cache tiers get
// from StringHash, without the node allocations of std::unordered_map.
#ifndef SPEEDKIT_COMMON_FLAT_MAP_H_
#define SPEEDKIT_COMMON_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace speedkit {

template <typename V>
class FlatStringMap {
 public:
  FlatStringMap() { slots_.resize(kMinCapacity); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return slots_.size(); }

  // Pointer to the value for `key`, or null. Stable only until the next
  // insertion (a rehash moves slots).
  V* Find(std::string_view key) {
    size_t i = FindSlot(key, Murmur3_64(key));
    return i != kNotFound && slots_[i].state == State::kFull
               ? &slots_[i].value
               : nullptr;
  }
  const V* Find(std::string_view key) const {
    return const_cast<FlatStringMap*>(this)->Find(key);
  }

  // Inserts (key, value) if absent; returns {pointer to the stored value,
  // whether an insert happened}. An existing entry is left untouched.
  std::pair<V*, bool> Upsert(std::string_view key, V value) {
    MaybeGrow();
    uint64_t hash = Murmur3_64(key);
    size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    size_t first_tombstone = kNotFound;
    while (true) {
      Slot& slot = slots_[i];
      if (slot.state == State::kEmpty) {
        size_t target = first_tombstone != kNotFound ? first_tombstone : i;
        Place(target, key, hash, std::move(value));
        return {&slots_[target].value, true};
      }
      if (slot.state == State::kTombstone) {
        if (first_tombstone == kNotFound) first_tombstone = i;
      } else if (slot.hash == hash && slot.key == key) {
        return {&slot.value, false};
      }
      i = (i + 1) & mask;
    }
  }

  // Removes `key`; returns true if it was present.
  bool Erase(std::string_view key) {
    size_t i = FindSlot(key, Murmur3_64(key));
    if (i == kNotFound || slots_[i].state != State::kFull) return false;
    slots_[i].state = State::kTombstone;
    slots_[i].key.clear();
    slots_[i].key.shrink_to_fit();
    slots_[i].value = V{};
    --size_;
    ++tombstones_;
    return true;
  }

  // Removes every entry for which pred(key, value) is true; returns how
  // many were dropped. Iteration order is the slot order — callers must
  // not depend on it.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (Slot& slot : slots_) {
      if (slot.state != State::kFull) continue;
      if (!pred(static_cast<const std::string&>(slot.key), slot.value)) {
        continue;
      }
      slot.state = State::kTombstone;
      slot.key.clear();
      slot.key.shrink_to_fit();
      slot.value = V{};
      --size_;
      ++tombstones_;
      ++erased;
    }
    return erased;
  }

  // Visits every (key, value); same ordering caveat as EraseIf.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (const Slot& slot : slots_) {
      if (slot.state == State::kFull) fn(slot.key, slot.value);
    }
  }

  void Clear() {
    slots_.assign(kMinCapacity, Slot{});
    size_ = 0;
    tombstones_ = 0;
  }

 private:
  enum class State : uint8_t { kEmpty = 0, kTombstone, kFull };

  struct Slot {
    std::string key;
    V value{};
    uint64_t hash = 0;
    State state = State::kEmpty;
  };

  static constexpr size_t kMinCapacity = 16;
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  // Slot index holding `key`, or kNotFound. Linear probe over the full
  // cluster: tombstones are skipped, an empty slot terminates.
  size_t FindSlot(std::string_view key, uint64_t hash) const {
    size_t mask = slots_.size() - 1;
    size_t i = hash & mask;
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.state == State::kEmpty) return kNotFound;
      if (slot.state == State::kFull && slot.hash == hash && slot.key == key) {
        return i;
      }
      i = (i + 1) & mask;
    }
  }

  void Place(size_t i, std::string_view key, uint64_t hash, V value) {
    Slot& slot = slots_[i];
    if (slot.state == State::kTombstone) --tombstones_;
    slot.key.assign(key.data(), key.size());
    slot.value = std::move(value);
    slot.hash = hash;
    slot.state = State::kFull;
    ++size_;
  }

  // Grows (or compacts tombstones in place at the same capacity) when
  // live + dead slots pass 7/8 of capacity — linear probing degrades
  // sharply past that point.
  void MaybeGrow() {
    if ((size_ + tombstones_ + 1) * 8 < slots_.size() * 7) return;
    // Double only when genuinely full of live entries; a tombstone-heavy
    // table rehashes at the same size.
    size_t new_capacity =
        (size_ + 1) * 8 >= slots_.size() * 7 ? slots_.size() * 2
                                             : slots_.size();
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    size_ = 0;
    tombstones_ = 0;
    for (Slot& slot : old) {
      if (slot.state != State::kFull) continue;
      size_t mask = slots_.size() - 1;
      size_t i = slot.hash & mask;
      while (slots_[i].state == State::kFull) i = (i + 1) & mask;
      slots_[i] = std::move(slot);
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace speedkit

#endif  // SPEEDKIT_COMMON_FLAT_MAP_H_
