// Log-bucketed histogram for latency/size distributions.
//
// Values are assigned to exponentially growing buckets (HdrHistogram-style:
// within each power-of-two range, `kSubBuckets` linear sub-buckets), giving
// ~1.5% relative error on percentile queries over a [1, 2^62] value range at
// a fixed, small memory footprint. Used by every experiment harness to
// report P50/P90/P99 without storing raw samples.
#ifndef SPEEDKIT_COMMON_HISTOGRAM_H_
#define SPEEDKIT_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace speedkit {

class Histogram {
 public:
  // The bucket array (~15 KB) is allocated on first Add/Merge, not at
  // construction: fleet simulations hold seven histograms per stats block,
  // and a histogram that never sees a sample must cost nothing at
  // million-client populations.
  Histogram() = default;

  void Add(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ ? min_ : 0; }
  int64_t max() const { return max_; }
  double Mean() const;
  double Sum() const { return sum_; }

  // Value at quantile q in [0,1]; returns the representative (upper bound)
  // value of the bucket containing the q-th sample. 0 when empty.
  int64_t ValueAtQuantile(double q) const;

  int64_t P50() const { return ValueAtQuantile(0.50); }
  int64_t P90() const { return ValueAtQuantile(0.90); }
  int64_t P95() const { return ValueAtQuantile(0.95); }
  int64_t P99() const { return ValueAtQuantile(0.99); }

  // One-line summary: "count=N mean=M p50=.. p90=.. p99=.. max=..".
  std::string Summary() const;

  // Structural fingerprint over every bucket count plus count/min/max and
  // the sum's bit pattern: two histograms fingerprint equal iff they hold
  // the identical distribution. This is what the sharded engine's
  // thread-invariance gate compares — stronger than comparing a few
  // percentiles, cheaper than exposing the bucket array.
  uint64_t Fingerprint() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static int BucketFor(int64_t value);
  static int64_t BucketUpperBound(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace speedkit

#endif  // SPEEDKIT_COMMON_HISTOGRAM_H_
