// Fixed-interval time series: per-bucket count/sum of a metric over
// simulated time. Powers the warm-up and timeline figures (hit ratio per
// minute, latency per minute) without storing raw samples.
#ifndef SPEEDKIT_COMMON_TIME_SERIES_H_
#define SPEEDKIT_COMMON_TIME_SERIES_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"

namespace speedkit {

class TimeSeries {
 public:
  explicit TimeSeries(Duration bucket_width = Duration::Minutes(1))
      : bucket_width_(bucket_width) {}

  // Records one observation at simulated time `at`.
  void Add(SimTime at, double value);

  // Adds `other`'s buckets into this series, extending as needed. Both
  // series must use the same bucket width (other is ignored otherwise —
  // merging differently-binned timelines has no meaning).
  void Merge(const TimeSeries& other);

  size_t num_buckets() const { return buckets_.size(); }
  Duration bucket_width() const { return bucket_width_; }

  // Mean of observations in bucket `i`; 0 when empty.
  double MeanAt(size_t i) const;
  uint64_t CountAt(size_t i) const;
  double SumAt(size_t i) const;

  // Start time of bucket `i`.
  SimTime BucketStart(size_t i) const {
    return SimTime::Origin() + bucket_width_ * static_cast<double>(i);
  }

 private:
  struct Bucket {
    uint64_t count = 0;
    double sum = 0;
  };

  Duration bucket_width_;
  std::vector<Bucket> buckets_;
};

}  // namespace speedkit

#endif  // SPEEDKIT_COMMON_TIME_SERIES_H_
