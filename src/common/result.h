// Result<T>: value-or-Status, the speedkit analogue of absl::StatusOr.
//
//   Result<int> r = Parse(s);
//   if (!r.ok()) return r.status();
//   Use(r.value());
#ifndef SPEEDKIT_COMMON_RESULT_H_
#define SPEEDKIT_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace speedkit {

template <typename T>
class Result {
 public:
  // Implicit construction from a value or a non-OK status keeps call sites
  // terse: `return 42;` / `return Status::NotFound("k");`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "Result<T> must not be built from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace speedkit

#endif  // SPEEDKIT_COMMON_RESULT_H_
