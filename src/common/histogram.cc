#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace speedkit {

namespace {
// 59 octaves of 32 sub-buckets plus the exact low range covers [0, 2^63).
constexpr int kNumBuckets = 60 * 32;
}  // namespace

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  if (value < kSubBuckets) return static_cast<int>(value);
  int msb = 63 - std::countl_zero(static_cast<uint64_t>(value));
  int shift = msb - kSubBucketBits;
  int sub = static_cast<int>((value >> shift) - kSubBuckets);
  int idx = (shift + 1) * kSubBuckets + sub;
  return std::min(idx, kNumBuckets - 1);
}

int64_t Histogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) return index;
  int shift = index / kSubBuckets - 1;
  int sub = index % kSubBuckets;
  return (static_cast<int64_t>(kSubBuckets + sub + 1) << shift) - 1;
}

void Histogram::Add(int64_t value) {
  if (value < 0) value = 0;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  buckets_[BucketFor(value)]++;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += static_cast<double>(value);
  count_++;
}

void Histogram::Merge(const Histogram& other) {
  if (!other.buckets_.empty()) {
    if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
    for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::Reset() {
  // Drop the array entirely: a reset histogram is as cheap as a fresh one.
  buckets_ = std::vector<uint64_t>();
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

uint64_t Histogram::Fingerprint() const {
  // FNV-1a over the raw words. Sum is hashed via its bit pattern: merged
  // doubles added in a fixed order are bit-identical, which is exactly the
  // determinism contract the fingerprint exists to check.
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  // A never-touched histogram has no bucket array; hash it as the all-zero
  // array so lazy allocation is invisible to stored fingerprints.
  for (int i = 0; i < kNumBuckets; ++i) {
    mix(i < static_cast<int>(buckets_.size()) ? buckets_[i] : 0);
  }
  mix(count_);
  mix(static_cast<uint64_t>(min_));
  mix(static_cast<uint64_t>(max_));
  mix(std::bit_cast<uint64_t>(sum_));
  return h;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%lld p90=%lld p99=%lld max=%lld",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<long long>(P50()), static_cast<long long>(P90()),
                static_cast<long long>(P99()), static_cast<long long>(max_));
  return buf;
}

}  // namespace speedkit
