// Non-cryptographic hashing used across speedkit.
//
// MurmurHash3 (x64, 128-bit finalizer reduced to 64 bits) feeds the Bloom
// filters in src/sketch via Kirsch-Mitzenmacher double hashing; FNV-1a is a
// cheap fallback for small keys (header names, segment ids).
#ifndef SPEEDKIT_COMMON_HASH_H_
#define SPEEDKIT_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace speedkit {

// 64-bit MurmurHash3 of `data` with `seed`. Stable across platforms
// (little-endian reads are emulated byte-wise).
uint64_t Murmur3_64(const void* data, size_t len, uint64_t seed);

inline uint64_t Murmur3_64(std::string_view s, uint64_t seed = 0) {
  return Murmur3_64(s.data(), s.size(), seed);
}

// Two independent 64-bit hashes from one pass, for double hashing:
//   g_i(x) = h1(x) + i * h2(x)   (Kirsch & Mitzenmacher 2006)
struct Hash128 {
  uint64_t h1;
  uint64_t h2;
};
Hash128 Murmur3_128(const void* data, size_t len, uint64_t seed);

inline Hash128 Murmur3_128(std::string_view s, uint64_t seed = 0) {
  return Murmur3_128(s.data(), s.size(), seed);
}

// FNV-1a, 64-bit.
uint64_t Fnv1a_64(std::string_view s);

// SplitMix64 finalizer; good for hashing already-numeric keys.
uint64_t Mix64(uint64_t x);

// Transparent string hasher for unordered containers keyed by std::string:
// together with std::equal_to<> it enables heterogeneous lookup, so a
// string_view probe does not materialize a temporary std::string (the
// hottest path in every cache tier does one lookup per request).
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return static_cast<size_t>(Murmur3_64(s));
  }
};

}  // namespace speedkit

#endif  // SPEEDKIT_COMMON_HASH_H_
