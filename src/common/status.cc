#include "common/status.h"

namespace speedkit {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kPermissionDenied:
      return "permission_denied";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

Status Status::NotFound(std::string_view msg) {
  return Status(StatusCode::kNotFound, std::string(msg));
}
Status Status::InvalidArgument(std::string_view msg) {
  return Status(StatusCode::kInvalidArgument, std::string(msg));
}
Status Status::AlreadyExists(std::string_view msg) {
  return Status(StatusCode::kAlreadyExists, std::string(msg));
}
Status Status::OutOfRange(std::string_view msg) {
  return Status(StatusCode::kOutOfRange, std::string(msg));
}
Status Status::FailedPrecondition(std::string_view msg) {
  return Status(StatusCode::kFailedPrecondition, std::string(msg));
}
Status Status::Unavailable(std::string_view msg) {
  return Status(StatusCode::kUnavailable, std::string(msg));
}
Status Status::Corruption(std::string_view msg) {
  return Status(StatusCode::kCorruption, std::string(msg));
}
Status Status::PermissionDenied(std::string_view msg) {
  return Status(StatusCode::kPermissionDenied, std::string(msg));
}
Status Status::ResourceExhausted(std::string_view msg) {
  return Status(StatusCode::kResourceExhausted, std::string(msg));
}
Status Status::Internal(std::string_view msg) {
  return Status(StatusCode::kInternal, std::string(msg));
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace speedkit
