// A move-only `void()` callable with caller-chosen inline capture storage.
//
// std::function's small-buffer optimization tops out at two words on the
// common ABIs, so almost every simulation event (capturing a this-pointer,
// a client index and a page view) costs a heap allocation just to exist.
// InlineFn<N> stores captures up to N bytes in place — the event scheduler
// sizes N so the hot traffic lambdas always fit — and falls back to the
// heap only for oversized callables, preserving correctness for arbitrary
// captures instead of imposing a hard size limit.
#ifndef SPEEDKIT_COMMON_INLINE_FUNCTION_H_
#define SPEEDKIT_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace speedkit {

template <size_t kInlineBytes = 64>
class InlineFn {
 public:
  InlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every scheduling call site.
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      // Oversized/overaligned capture: one heap cell, still move-only.
      ::new (static_cast<void*>(storage_))
          std::unique_ptr<Fn>(std::make_unique<Fn>(std::forward<F>(f)));
      ops_ = &BoxedOps<Fn>::kOps;
    }
  }

  InlineFn(InlineFn&& other) noexcept { MoveFrom(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(unsigned char*);
    void (*move)(unsigned char* dst, unsigned char* src);  // src destroyed
    void (*destroy)(unsigned char*);
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(unsigned char* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); }
    static void Move(unsigned char* dst, unsigned char* src) {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (static_cast<void*>(dst)) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(unsigned char* s) {
      std::launder(reinterpret_cast<Fn*>(s))->~Fn();
    }
    static constexpr Ops kOps{&Invoke, &Move, &Destroy};
  };

  template <typename Fn>
  struct BoxedOps {
    using Box = std::unique_ptr<Fn>;
    static void Invoke(unsigned char* s) {
      (**std::launder(reinterpret_cast<Box*>(s)))();
    }
    static void Move(unsigned char* dst, unsigned char* src) {
      Box* from = std::launder(reinterpret_cast<Box*>(src));
      ::new (static_cast<void*>(dst)) Box(std::move(*from));
      from->~Box();
    }
    static void Destroy(unsigned char* s) {
      std::launder(reinterpret_cast<Box*>(s))->~Box();
    }
    static constexpr Ops kOps{&Invoke, &Move, &Destroy};
  };

  void MoveFrom(InlineFn& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace speedkit

#endif  // SPEEDKIT_COMMON_INLINE_FUNCTION_H_
