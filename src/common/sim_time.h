// Simulated-time primitives.
//
// All speedkit simulations run on a logical clock measured in microseconds
// since the start of the run. Using strong typedefs (instead of raw int64)
// keeps milliseconds/seconds confusion out of the protocol code, where TTLs
// (seconds), RTTs (milliseconds) and the clock (microseconds) all meet.
#ifndef SPEEDKIT_COMMON_SIM_TIME_H_
#define SPEEDKIT_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace speedkit {

// A span of simulated time, microsecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Micros(int64_t us) { return Duration(us); }
  static constexpr Duration Millis(int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e6));
  }
  static constexpr Duration Minutes(double m) { return Seconds(m * 60.0); }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() { return Duration(INT64_MAX); }

  constexpr int64_t micros() const { return us_; }
  constexpr double millis() const { return us_ / 1e3; }
  constexpr double seconds() const { return us_ / 1e6; }

  constexpr Duration operator+(Duration d) const { return Duration(us_ + d.us_); }
  constexpr Duration operator-(Duration d) const { return Duration(us_ - d.us_); }
  constexpr Duration operator*(double f) const {
    return Duration(static_cast<int64_t>(us_ * f));
  }
  Duration& operator+=(Duration d) {
    us_ += d.us_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  std::string ToString() const;  // "1.5s", "20ms", "7us"

 private:
  constexpr explicit Duration(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

// A point in simulated time.
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime FromMicros(int64_t us) { return SimTime(us); }
  static constexpr SimTime Origin() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t micros() const { return us_; }
  constexpr double seconds() const { return us_ / 1e6; }

  constexpr SimTime operator+(Duration d) const {
    return SimTime(us_ + d.micros());
  }
  constexpr Duration operator-(SimTime t) const {
    return Duration::Micros(us_ - t.us_);
  }
  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  constexpr explicit SimTime(int64_t us) : us_(us) {}
  int64_t us_ = 0;
};

}  // namespace speedkit

#endif  // SPEEDKIT_COMMON_SIM_TIME_H_
