// Fixed-size thread pool with a single shared FIFO queue (no work
// stealing: experiment trials are coarse-grained and embarrassingly
// parallel, so a mutex-protected deque is contention-free in practice).
//
// Used by the bench harnesses to fan Monte-Carlo trials (seeds × configs)
// out across cores; each trial owns its whole single-threaded stack, so
// the only synchronization is the queue itself.
#ifndef SPEEDKIT_COMMON_THREAD_POOL_H_
#define SPEEDKIT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace speedkit {

class ThreadPool {
 public:
  // `num_threads` is clamped to at least 1. A pool of 1 still runs tasks
  // on its worker thread (callers wanting strictly-serial execution on the
  // calling thread should not go through a pool).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  // Enqueues one task. Safe from any thread, including from inside a task.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  // CPUs this process may actually run on. hardware_concurrency() reports
  // the machine's core count and ignores the CPU affinity mask, so inside
  // a container/cgroup-pinned CI runner it overcounts — on Linux this is
  // clamped by sched_getaffinity (CPU_COUNT), elsewhere it falls back to
  // hardware_concurrency. Never returns 0.
  static size_t AvailableCpus();

  // A sensible default for CPU-bound fan-out on this machine: the number
  // of CPUs the process is allowed to use, so benches never oversubscribe
  // a masked runner (which would skew speedup numbers).
  static size_t DefaultThreads() { return AvailableCpus(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // popped but not yet finished
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

// Runs fn(0) .. fn(n-1) across the pool and waits for all of them.
// When `pool` is null, runs serially on the calling thread — the serial
// and pooled paths execute the identical per-index work.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace speedkit

#endif  // SPEEDKIT_COMMON_THREAD_POOL_H_
