#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

#ifdef __linux__
#include <sched.h>
#endif

namespace speedkit {

size_t ThreadPool::AvailableCpus() {
  unsigned hw = std::thread::hardware_concurrency();
  size_t n = hw == 0 ? 1 : hw;
#ifdef __linux__
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    int allowed = CPU_COUNT(&mask);
    if (allowed > 0) n = std::min(n, static_cast<size_t>(allowed));
  }
#endif
  return n;
}

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this]() { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      in_flight_++;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      in_flight_--;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([&fn, i]() { fn(i); });
  }
  pool->Wait();
}

}  // namespace speedkit
