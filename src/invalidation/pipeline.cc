#include "invalidation/pipeline.h"

#include <algorithm>

namespace speedkit::invalidation {

std::string RecordCacheKey(std::string_view record_id) {
  return "https://shop.example.com/api/records/" + std::string(record_id);
}

std::string QueryCacheKey(std::string_view query_id) {
  return "https://shop.example.com/api/queries/" + std::string(query_id);
}

InvalidationPipeline::InvalidationPipeline(const PipelineConfig& config,
                                           sim::SimClock* clock,
                                           sim::EventQueue* events,
                                           cache::Cdn* cdn,
                                           coherence::CoherenceProtocol* coherence,
                                           Pcg32 rng)
    : config_(config),
      clock_(clock),
      events_(events),
      cdn_(cdn),
      coherence_(coherence),
      rng_(rng),
      record_key_mapper_([](const storage::Record& r) {
        return std::vector<std::string>{RecordCacheKey(r.id)};
      }),
      matcher_(config.matcher_partitions, config.matcher_use_index) {}

void InvalidationPipeline::AttachTo(storage::ObjectStore* store) {
  store->AddWriteListener(
      [this](const storage::Record* before, const storage::Record& after) {
        OnWrite(before, after);
      });
}

Status InvalidationPipeline::WatchQuery(Query query, std::string cache_key) {
  std::string id = query.id;
  Status s = matcher_.Subscribe(std::move(query));
  if (!s.ok()) return s;
  query_cache_keys_[id] = std::move(cache_key);
  return Status::Ok();
}

Status InvalidationPipeline::UnwatchQuery(std::string_view query_id) {
  Status s = matcher_.Unsubscribe(query_id);
  if (s.ok()) query_cache_keys_.erase(std::string(query_id));
  return s;
}

void InvalidationPipeline::OnWrite(const storage::Record* before,
                                   const storage::Record& after) {
  stats_.writes_seen++;
  std::vector<std::string> keys = record_key_mapper_(after);
  for (const std::string& query_id : matcher_.MatchWrite(before, after)) {
    auto it = query_cache_keys_.find(query_id);
    if (it != query_cache_keys_.end()) keys.push_back(it->second);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (const std::string& key : keys) InvalidateKey(key);
}

void InvalidationPipeline::InvalidateKey(const std::string& key) {
  stats_.keys_invalidated++;
  SimTime now = clock_->Now();

  // One `purge`-kind trace per invalidated key; deliveries fan out in
  // parallel so spans share offset 0. Recording happens strictly after
  // every RNG draw for an edge, so tracing cannot perturb the stream.
  obs::TraceBuilder trace;
  trace.Begin(tracer_, obs::kTraceKindPurge, key, now);
  bool faulted = false;

  // Purge fan-out: each edge cleans up after its own propagation delay.
  // The key stays in the sketch until the *later* of (a) the last
  // outstanding client copy's TTL and (b) purge completion, because an
  // unpurged edge can re-serve the stale copy to a fresh client.
  SimTime last_purge = now;
  if (cdn_ != nullptr) {
    // A probability of 0 must not touch the RNG: an attached-but-quiet
    // fault schedule reproduces the faultless run bit-for-bit.
    auto chance = [this](double p) { return p > 0 && rng_.WithProbability(p); };
    for (int i = 0; i < cdn_->num_edges(); ++i) {
      stats_.purges_scheduled++;
      if (faults_ != nullptr && chance(faults_->purge_loss_probability())) {
        // Delivery lost in flight. The edge keeps its stale copy until the
        // copy's own TTL runs out — which the sketch horizon covers via
        // the ExpiryBook, so Δ-atomicity survives (at the cost of longer
        // forced revalidation).
        stats_.purges_dropped++;
        cdn_->NotePurgeDropped(i);
        faulted = true;
        if (trace.active()) {
          trace.AddSpanAt("purge.dropped." + std::to_string(i),
                          obs::kTierEdge, Duration::Zero(), Duration::Zero());
        }
        continue;
      }
      double jitter = config_.purge_log_sigma > 0
                          ? rng_.LogNormal(0.0, config_.purge_log_sigma)
                          : 1.0;
      Duration delay = Duration::Micros(static_cast<int64_t>(
          config_.purge_median_delay.micros() * jitter));
      if (faults_ != nullptr && chance(faults_->purge_delay_probability())) {
        delay = delay * faults_->purge_delay_factor();
        stats_.purges_delayed++;
        cdn_->NotePurgeDelayed(i);
        faulted = true;
      }
      cdn_->NotePurgeScheduled(i, delay);
      if (trace.active()) {
        trace.AddSpanAt("purge.deliver." + std::to_string(i), obs::kTierEdge,
                        Duration::Zero(), delay);
      }
      SimTime at = now + delay;
      last_purge = std::max(last_purge, at);
      int edge = i;
      std::string key_copy = key;
      events_->At(at, [this, edge, key_copy]() {
        if (cdn_->PurgeEdge(edge, key_copy)) stats_.purges_effective++;
      });
    }
    propagation_latency_us_.Add((last_purge - now).micros());
  }
  trace.Finish(obs::kTierPurge, /*status=*/0, faulted, last_purge - now);

  if (coherence_ != nullptr && coherence_->WantsInvalidations()) {
    SimTime stale_until =
        std::max(expiry_book_->LatestExpiry(key, now), last_purge);
    coherence_->OnInvalidation(key, stale_until, now);
  }
}

}  // namespace speedkit::invalidation
