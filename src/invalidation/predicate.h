// Query predicates over record fields.
//
// A `Query` is a conjunction of field conditions — the subscription language
// of the real-time matcher. Speed Kit caches query *results* (category
// listings, search pages) in addition to single records; a write invalidates
// a cached query result iff it changes the query's result set, i.e. the
// record's membership flips or the record matches both before and after
// (its representation inside the result changed).
#ifndef SPEEDKIT_INVALIDATION_PREDICATE_H_
#define SPEEDKIT_INVALIDATION_PREDICATE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/record.h"

namespace speedkit::invalidation {

enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

std::string_view OpName(Op op);

struct Condition {
  std::string field;
  Op op = Op::kEq;
  storage::FieldValue value;

  bool Matches(const storage::Record& record) const;
  std::string ToString() const;
};

struct Query {
  std::string id;  // doubles as the cache-key suffix of the cached result
  std::vector<Condition> conditions;  // AND-combined; empty matches all

  // Optional ordering and top-k limiting ("cheapest 10 in category 3").
  // The origin materializes the exact slice; the matcher treats any write
  // touching a predicate-matching record as potentially affecting the
  // result (it cannot know the k-th boundary), which is conservative:
  // spurious purges, never missed invalidations.
  std::string order_by;     // empty = unordered
  bool descending = false;  // only meaningful with order_by
  size_t limit = 0;         // 0 = unlimited

  bool IsOrdered() const { return !order_by.empty(); }

  bool Matches(const storage::Record& record) const;

  // Did the write (before -> after) possibly change this query's result?
  // Covers enter, leave, in-place change of a matching record, and delete.
  bool AffectedBy(const storage::Record* before,
                  const storage::Record& after) const;

  std::string ToString() const;
};

// Total order over field values for result sorting: numeric comparison
// where meaningful, otherwise (type index, textual form). Ties broken by
// the caller (typically record id).
bool TotalOrderLess(const storage::FieldValue& a,
                    const storage::FieldValue& b);

}  // namespace speedkit::invalidation

#endif  // SPEEDKIT_INVALIDATION_PREDICATE_H_
