#include "invalidation/expiry_book.h"

#include <string>

namespace speedkit::invalidation {

void ExpiryBook::RecordServed(std::string_view key, SimTime fresh_until) {
  auto [deadline, inserted] = deadlines_.Upsert(key, fresh_until);
  if (!inserted && fresh_until > *deadline) *deadline = fresh_until;
}

SimTime ExpiryBook::LatestExpiry(std::string_view key, SimTime now) const {
  const SimTime* deadline = deadlines_.Find(key);
  if (deadline == nullptr || *deadline <= now) return now;
  return *deadline;
}

void ExpiryBook::CompactUntil(SimTime now) {
  deadlines_.EraseIf(
      [now](const std::string& /*key*/, SimTime deadline) {
        return deadline <= now;
      });
}

}  // namespace speedkit::invalidation
