#include "invalidation/expiry_book.h"

namespace speedkit::invalidation {

void ExpiryBook::RecordServed(std::string_view key, SimTime fresh_until) {
  auto [it, inserted] = deadlines_.emplace(std::string(key), fresh_until);
  if (!inserted && fresh_until > it->second) it->second = fresh_until;
}

SimTime ExpiryBook::LatestExpiry(std::string_view key, SimTime now) const {
  auto it = deadlines_.find(std::string(key));
  if (it == deadlines_.end() || it->second <= now) return now;
  return it->second;
}

void ExpiryBook::CompactUntil(SimTime now) {
  for (auto it = deadlines_.begin(); it != deadlines_.end();) {
    if (it->second <= now) {
      it = deadlines_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace speedkit::invalidation
