#include "invalidation/query_matcher.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strings.h"

namespace speedkit::invalidation {

namespace {

// Index key for an equality condition: "field\0stringified-value".
std::string EqIndexKey(std::string_view field, const storage::FieldValue& v) {
  std::string key(field);
  key.push_back('\0');
  key += storage::FieldValueToString(v);
  return key;
}

// The first equality condition usable for indexing, or nullptr.
const Condition* IndexableCondition(const Query& q) {
  for (const Condition& c : q.conditions) {
    if (c.op == Op::kEq) return &c;
  }
  return nullptr;
}

}  // namespace

QueryMatcher::QueryMatcher(int partitions, bool use_index)
    : use_index_(use_index),
      partitions_(static_cast<size_t>(std::max(1, partitions))) {}

QueryMatcher::Partition& QueryMatcher::PartitionFor(std::string_view query_id) {
  return partitions_[Fnv1a_64(query_id) % partitions_.size()];
}

Status QueryMatcher::Subscribe(Query query) {
  Partition& p = PartitionFor(query.id);
  if (p.by_id.count(query.id) != 0) {
    return Status::AlreadyExists("subscription exists: " + query.id);
  }
  size_t slot;
  if (!p.free_slots.empty()) {
    slot = *p.free_slots.begin();
    p.free_slots.erase(p.free_slots.begin());
    p.queries[slot] = query;
  } else {
    slot = p.queries.size();
    p.queries.push_back(query);
  }
  p.by_id[query.id] = slot;
  const Condition* eq = use_index_ ? IndexableCondition(query) : nullptr;
  if (eq != nullptr) {
    p.eq_index[EqIndexKey(eq->field, eq->value)].push_back(slot);
  } else {
    p.scan_list.push_back(slot);
  }
  ++count_;
  return Status::Ok();
}

Status QueryMatcher::Unsubscribe(std::string_view query_id) {
  Partition& p = PartitionFor(query_id);
  auto it = p.by_id.find(std::string(query_id));
  if (it == p.by_id.end()) {
    return Status::NotFound("no subscription: " + std::string(query_id));
  }
  size_t slot = it->second;
  const Query& q = p.queries[slot];
  auto erase_slot = [slot](std::vector<size_t>& v) {
    v.erase(std::remove(v.begin(), v.end(), slot), v.end());
  };
  const Condition* eq = use_index_ ? IndexableCondition(q) : nullptr;
  if (eq != nullptr) {
    auto bucket = p.eq_index.find(EqIndexKey(eq->field, eq->value));
    if (bucket != p.eq_index.end()) {
      erase_slot(bucket->second);
      if (bucket->second.empty()) p.eq_index.erase(bucket);
    }
  } else {
    erase_slot(p.scan_list);
  }
  p.by_id.erase(it);
  p.free_slots.insert(slot);
  p.queries[slot] = Query{};
  --count_;
  return Status::Ok();
}

std::vector<std::string> QueryMatcher::MatchWrite(
    const storage::Record* before, const storage::Record& after) {
  stats_.writes_matched++;
  std::vector<std::string> affected;
  for (Partition& p : partitions_) {
    MatchInPartition(p, before, after, &affected);
  }
  stats_.hits += affected.size();
  return affected;
}

void QueryMatcher::MatchInPartition(Partition& p,
                                    const storage::Record* before,
                                    const storage::Record& after,
                                    std::vector<std::string>* out) {
  std::unordered_set<size_t> seen;
  if (use_index_ && !p.eq_index.empty()) {
    // Probe buckets keyed by every (field, value) the record exposes in
    // either image — a subscription can only newly (mis)match if one of its
    // equality conditions agrees with a before- or after-image value.
    auto probe_record = [&](const storage::Record& r) {
      for (const auto& [field, value] : r.fields) {
        auto bucket = p.eq_index.find(EqIndexKey(field, value));
        if (bucket != p.eq_index.end()) {
          ProbeCandidates(p, bucket->second, before, after, &seen, out);
        }
      }
    };
    if (before != nullptr) probe_record(*before);
    probe_record(after);
  }
  ProbeCandidates(p, p.scan_list, before, after, &seen, out);
}

void QueryMatcher::ProbeCandidates(Partition& p,
                                   const std::vector<size_t>& candidates,
                                   const storage::Record* before,
                                   const storage::Record& after,
                                   std::unordered_set<size_t>* seen,
                                   std::vector<std::string>* out) {
  for (size_t slot : candidates) {
    if (!seen->insert(slot).second) continue;
    stats_.candidates_probed++;
    const Query& q = p.queries[slot];
    if (q.AffectedBy(before, after)) out->push_back(q.id);
  }
}

}  // namespace speedkit::invalidation
