// The invalidation pipeline — the invalidation-based half of the polyglot
// architecture.
//
// Subscribed to the origin store's write feed, a write triggers, for every
// affected cache key (the record's own URLs plus every cached query result
// whose result set the write changes):
//
//   1. CDN purge fan-out: one purge per edge, each landing after a sampled
//      propagation delay (real purge APIs are asynchronous and jittery);
//   2. a Cache Sketch report with the key's stale horizon from the
//      ExpiryBook — the sketch keeps warning clients until the last
//      outstanding copy's TTL has run out.
//
// Purge-propagation latency (write time -> last edge clean) is recorded
// per key into a histogram; E6 sweeps it against load.
#ifndef SPEEDKIT_INVALIDATION_PIPELINE_H_
#define SPEEDKIT_INVALIDATION_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cdn.h"
#include "coherence/protocol.h"
#include "common/histogram.h"
#include "common/random.h"
#include "invalidation/expiry_book.h"
#include "obs/trace.h"
#include "invalidation/query_matcher.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/fault_schedule.h"
#include "storage/object_store.h"

namespace speedkit::invalidation {

struct PipelineConfig {
  // Median one-way purge propagation to an edge; jitter is lognormal.
  Duration purge_median_delay = Duration::Millis(80);
  double purge_log_sigma = 0.4;
  int matcher_partitions = 4;
  bool matcher_use_index = true;
};

struct PipelineStats {
  uint64_t writes_seen = 0;
  uint64_t keys_invalidated = 0;
  uint64_t purges_scheduled = 0;
  uint64_t purges_effective = 0;  // an edge actually held the key
  uint64_t purges_dropped = 0;    // delivery lost before reaching the edge
  uint64_t purges_delayed = 0;    // delivery took the schedule's slow path

  PipelineStats& operator+=(const PipelineStats& other) {
    writes_seen += other.writes_seen;
    keys_invalidated += other.keys_invalidated;
    purges_scheduled += other.purges_scheduled;
    purges_effective += other.purges_effective;
    purges_dropped += other.purges_dropped;
    purges_delayed += other.purges_delayed;
    return *this;
  }
};

// Maps a written record to the cache keys that render it (detail page,
// API resource, ...). Defaults to a single "/api/records/<id>" style key.
using RecordKeyMapper =
    std::function<std::vector<std::string>(const storage::Record&)>;

class InvalidationPipeline {
 public:
  InvalidationPipeline(const PipelineConfig& config, sim::SimClock* clock,
                       sim::EventQueue* events, cache::Cdn* cdn,
                       coherence::CoherenceProtocol* coherence, Pcg32 rng);

  // Registers this pipeline on the store's write feed. Call once.
  void AttachTo(storage::ObjectStore* store);

  void SetRecordKeyMapper(RecordKeyMapper mapper) {
    record_key_mapper_ = std::move(mapper);
  }

  // Watches a query whose cached result lives under `cache_key`.
  Status WatchQuery(Query query, std::string cache_key);
  Status UnwatchQuery(std::string_view query_id);

  // Direct entry point (also used by tests without a store).
  void OnWrite(const storage::Record* before, const storage::Record& after);

  // Points the pipeline at an externally-owned ExpiryBook — typically the
  // origin server's, which is the component that actually observes what
  // freshness deadlines were handed out. Without this, the pipeline only
  // knows purge-propagation horizons and sketch entries would expire while
  // client copies are still live, breaking the Δ-atomicity bound.
  void UseExpiryBook(ExpiryBook* book) { expiry_book_ = book; }

  // Attaches the stack's fault schedule (not owned; may be nullptr).
  // Purge deliveries are then subject to loss and slow-path delay; the
  // sketch horizon still covers unpurged copies because it takes the
  // ExpiryBook's latest handed-out deadline — this is the mechanism E14
  // stresses. A schedule with zero purge probabilities draws no RNG.
  void SetFaultSchedule(const sim::FaultSchedule* faults) { faults_ = faults; }

  // Attaches the stack's tracer (not owned; may be null = off). Each
  // invalidated key then emits one `purge`-kind trace whose spans are the
  // per-edge deliveries (offset 0, duration = propagation delay; dropped
  // deliveries get a zero-length marker span).
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

  ExpiryBook& expiry_book() { return *expiry_book_; }
  QueryMatcher& matcher() { return matcher_; }
  const PipelineStats& stats() const { return stats_; }
  const Histogram& propagation_latency_us() const {
    return propagation_latency_us_;
  }

 private:
  void InvalidateKey(const std::string& key);

  PipelineConfig config_;
  sim::SimClock* clock_;
  sim::EventQueue* events_;
  cache::Cdn* cdn_;
  coherence::CoherenceProtocol* coherence_;
  Pcg32 rng_;
  const sim::FaultSchedule* faults_ = nullptr;
  obs::Tracer* tracer_ = nullptr;

  RecordKeyMapper record_key_mapper_;
  QueryMatcher matcher_;
  std::unordered_map<std::string, std::string> query_cache_keys_;
  ExpiryBook own_expiry_book_;
  ExpiryBook* expiry_book_ = &own_expiry_book_;

  PipelineStats stats_;
  Histogram propagation_latency_us_;
};

// Default key convention shared with the origin server.
std::string RecordCacheKey(std::string_view record_id);
std::string QueryCacheKey(std::string_view query_id);

}  // namespace speedkit::invalidation

#endif  // SPEEDKIT_INVALIDATION_PIPELINE_H_
