// Tracks, per cache key, the latest freshness deadline of any copy the
// origin has handed out.
//
// This is the quantity the Cache Sketch needs on invalidation: when a write
// hits key K, stale copies of K can survive in expiration-based caches until
// `LatestExpiry(K)` — so K must sit in the sketch exactly that long. The
// origin records every served (or 304-refreshed) response here.
//
// Backed by FlatStringMap: the book is touched once per origin response
// (RecordServed) and once per write (LatestExpiry), making it one of the
// hottest maps in the stack — the open-addressing layout probes one cache
// line per lookup instead of chasing unordered_map buckets, and the
// string_view interface never allocates on the read path.
#ifndef SPEEDKIT_INVALIDATION_EXPIRY_BOOK_H_
#define SPEEDKIT_INVALIDATION_EXPIRY_BOOK_H_

#include <string_view>

#include "common/flat_map.h"
#include "common/sim_time.h"

namespace speedkit::invalidation {

class ExpiryBook {
 public:
  // Notes that a copy of `key` fresh until `fresh_until` is now in the wild.
  void RecordServed(std::string_view key, SimTime fresh_until);

  // Latest deadline among copies served so far; `now` (nothing outstanding)
  // when the key was never served or all copies have expired.
  SimTime LatestExpiry(std::string_view key, SimTime now) const;

  // Drops entries whose deadline passed (periodic housekeeping).
  void CompactUntil(SimTime now);

  size_t size() const { return deadlines_.size(); }

 private:
  FlatStringMap<SimTime> deadlines_;
};

}  // namespace speedkit::invalidation

#endif  // SPEEDKIT_INVALIDATION_EXPIRY_BOOK_H_
