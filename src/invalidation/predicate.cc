#include "invalidation/predicate.h"

namespace speedkit::invalidation {

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kEq:
      return "==";
    case Op::kNe:
      return "!=";
    case Op::kLt:
      return "<";
    case Op::kLe:
      return "<=";
    case Op::kGt:
      return ">";
    case Op::kGe:
      return ">=";
    case Op::kContains:
      return "contains";
  }
  return "?";
}

bool Condition::Matches(const storage::Record& record) const {
  const storage::FieldValue* field_value = record.GetField(field);
  if (field_value == nullptr) return false;

  if (op == Op::kContains) {
    if (!std::holds_alternative<std::string>(*field_value) ||
        !std::holds_alternative<std::string>(value)) {
      return false;
    }
    return std::get<std::string>(*field_value)
               .find(std::get<std::string>(value)) != std::string::npos;
  }

  auto cmp = storage::CompareFields(*field_value, value);
  if (!cmp.has_value()) {
    // Incomparable types: only != can be said to hold.
    return op == Op::kNe;
  }
  switch (op) {
    case Op::kEq:
      return *cmp == 0;
    case Op::kNe:
      return *cmp != 0;
    case Op::kLt:
      return *cmp < 0;
    case Op::kLe:
      return *cmp <= 0;
    case Op::kGt:
      return *cmp > 0;
    case Op::kGe:
      return *cmp >= 0;
    case Op::kContains:
      return false;  // handled above
  }
  return false;
}

std::string Condition::ToString() const {
  std::string out = field;
  out += " ";
  out += OpName(op);
  out += " ";
  out += storage::FieldValueToString(value);
  return out;
}

bool Query::Matches(const storage::Record& record) const {
  if (record.deleted) return false;
  for (const Condition& condition : conditions) {
    if (!condition.Matches(record)) return false;
  }
  return true;
}

bool Query::AffectedBy(const storage::Record* before,
                       const storage::Record& after) const {
  bool matched_before = before != nullptr && Matches(*before);
  bool matches_after = Matches(after);
  // enter | leave | in-place update of a member.
  return matched_before || matches_after;
}

std::string Query::ToString() const {
  std::string out = "query(" + id + "):";
  if (conditions.empty()) {
    out += " *";
  } else {
    for (size_t i = 0; i < conditions.size(); ++i) {
      out += (i == 0 ? " " : " AND ");
      out += conditions[i].ToString();
    }
  }
  if (IsOrdered()) {
    out += " ORDER BY " + order_by + (descending ? " DESC" : " ASC");
  }
  if (limit > 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

bool TotalOrderLess(const storage::FieldValue& a,
                    const storage::FieldValue& b) {
  auto cmp = storage::CompareFields(a, b);
  if (cmp.has_value()) return *cmp < 0;
  if (a.index() != b.index()) return a.index() < b.index();
  return storage::FieldValueToString(a) < storage::FieldValueToString(b);
}

}  // namespace speedkit::invalidation
