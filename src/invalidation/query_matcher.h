// Real-time query matcher — the in-process stand-in for InvaliDB.
//
// Subscriptions (cached query results that must be invalidated when their
// result set changes) are spread over `partitions` buckets by query-id
// hash, mirroring InvaliDB's cluster sharding; per-write work is the sum of
// partition costs, and the simulated matching latency is the max (they run
// in parallel in the real system).
//
// Within a partition, subscriptions whose predicate contains an equality
// condition on a field are indexed under (field, value): a write only
// probes the buckets for its before/after field values plus the residual
// scan list. For e-commerce predicates (category == X) this removes ~all
// non-candidates — the effect E6 measures, and disabling it is the
// full-scan ablation.
#ifndef SPEEDKIT_INVALIDATION_QUERY_MATCHER_H_
#define SPEEDKIT_INVALIDATION_QUERY_MATCHER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "invalidation/predicate.h"

namespace speedkit::invalidation {

struct MatcherStats {
  uint64_t writes_matched = 0;
  uint64_t candidates_probed = 0;  // predicate evaluations performed
  uint64_t hits = 0;               // affected subscriptions found
};

class QueryMatcher {
 public:
  explicit QueryMatcher(int partitions = 1, bool use_index = true);

  // Registers a cached query result to watch. Fails on duplicate id.
  Status Subscribe(Query query);
  Status Unsubscribe(std::string_view query_id);
  size_t subscription_count() const { return count_; }

  // Returns the ids of all subscriptions affected by the write.
  std::vector<std::string> MatchWrite(const storage::Record* before,
                                      const storage::Record& after);

  const MatcherStats& stats() const { return stats_; }
  int partitions() const { return static_cast<int>(partitions_.size()); }

 private:
  struct Partition {
    // (field\0value) -> subscription indices with that equality condition.
    std::unordered_map<std::string, std::vector<size_t>> eq_index;
    std::vector<size_t> scan_list;  // subscriptions without usable equality
    std::vector<Query> queries;     // slot-stable storage
    std::unordered_map<std::string, size_t> by_id;
    std::unordered_set<size_t> free_slots;
  };

  Partition& PartitionFor(std::string_view query_id);
  void MatchInPartition(Partition& p, const storage::Record* before,
                        const storage::Record& after,
                        std::vector<std::string>* out);
  void ProbeCandidates(Partition& p, const std::vector<size_t>& candidates,
                       const storage::Record* before,
                       const storage::Record& after,
                       std::unordered_set<size_t>* seen,
                       std::vector<std::string>* out);

  bool use_index_;
  std::vector<Partition> partitions_;
  size_t count_ = 0;
  MatcherStats stats_;
};

}  // namespace speedkit::invalidation

#endif  // SPEEDKIT_INVALIDATION_QUERY_MATCHER_H_
