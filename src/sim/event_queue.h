// Discrete-event scheduler.
//
// A hierarchical timing wheel of (fire time, sequence, callback) — see
// sim/timing_wheel.h. The sequence number breaks ties in insertion order so
// that runs are deterministic even when many events share a timestamp
// (common with zero-delay local hops); the wheel fires in exactly the same
// (time, sequence) total order the earlier binary heap produced, at O(1)
// per schedule/fire and without a heap allocation per event.
#ifndef SPEEDKIT_SIM_EVENT_QUEUE_H_
#define SPEEDKIT_SIM_EVENT_QUEUE_H_

#include <cstdint>

#include "common/sim_time.h"
#include "sim/clock.h"
#include "sim/timing_wheel.h"

namespace speedkit::sim {

class EventQueue {
 public:
  explicit EventQueue(SimClock* clock)
      : clock_(clock), wheel_(clock->Now()) {}

  // Schedules `fn` to run at absolute time `at` (clamped to now if in the
  // past, so callers can schedule "immediately").
  void At(SimTime at, EventFn fn);

  // Schedules `fn` to run `delay` from now.
  void After(Duration delay, EventFn fn);

  // Runs events in time order until the queue is empty or `until` is
  // reached. The clock is advanced to each event's fire time. When `until`
  // is finite the clock then advances to `until` even if the queue drained
  // early; when `until` is SimTime::Max() (the RunAll case) the clock stays
  // at the last event's fire time — there is no meaningful "end" to advance
  // to in a drain. Returns the number of events run.
  size_t RunUntil(SimTime until);

  // Drains everything. The clock ends at the last event's fire time.
  size_t RunAll() { return RunUntil(SimTime::Max()); }

  bool empty() const { return wheel_.empty(); }
  size_t pending() const { return wheel_.size(); }

  // Scheduler internals (cascade counts, overflow traffic) for tests and
  // observability.
  const TimingWheelStats& wheel_stats() const { return wheel_.stats(); }

 private:
  SimClock* clock_;
  uint64_t next_seq_ = 0;
  TimingWheel wheel_;
};

}  // namespace speedkit::sim

#endif  // SPEEDKIT_SIM_EVENT_QUEUE_H_
