// Discrete-event scheduler.
//
// A min-heap of (fire time, sequence, callback). The sequence number breaks
// ties in insertion order so that runs are deterministic even when many
// events share a timestamp (common with zero-delay local hops).
#ifndef SPEEDKIT_SIM_EVENT_QUEUE_H_
#define SPEEDKIT_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.h"
#include "sim/clock.h"

namespace speedkit::sim {

class EventQueue {
 public:
  explicit EventQueue(SimClock* clock) : clock_(clock) {}

  // Schedules `fn` to run at absolute time `at` (clamped to now if in the
  // past, so callers can schedule "immediately").
  void At(SimTime at, std::function<void()> fn);

  // Schedules `fn` to run `delay` from now.
  void After(Duration delay, std::function<void()> fn);

  // Runs events in time order until the queue is empty or `until` is
  // reached. The clock is advanced to each event's fire time; finally to
  // `until` if the queue drained early. Returns the number of events run.
  size_t RunUntil(SimTime until);

  // Drains everything.
  size_t RunAll() { return RunUntil(SimTime::Max()); }

  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimClock* clock_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace speedkit::sim

#endif  // SPEEDKIT_SIM_EVENT_QUEUE_H_
