#include "sim/timing_wheel.h"

#include <algorithm>
#include <cassert>

namespace speedkit::sim {
namespace {

constexpr uint64_t kSlotMask = TimingWheel::kSlots - 1;

// Index of the highest byte where two times differ; the caller guarantees
// diff != 0. This is the level whose slot granularity first separates the
// two times, i.e. where an event must live so that advancing the lower
// levels never skips it.
inline int HighestByte(uint64_t diff) {
  int msb = 63 - __builtin_clzll(diff);
  return msb >> 3;
}

inline int SlotAt(uint64_t t, int level) {
  return static_cast<int>((t >> (TimingWheel::kSlotBits * level)) & kSlotMask);
}

}  // namespace

TimingWheel::TimingWheel(SimTime origin)
    : current_(static_cast<uint64_t>(origin.micros())) {}

TimingWheel::~TimingWheel() = default;

TimingWheel::Node* TimingWheel::AllocNode() {
  if (free_ == nullptr) {
    chunks_.push_back(std::make_unique<Node[]>(kChunkNodes));
    Node* chunk = chunks_.back().get();
    for (size_t i = 0; i < kChunkNodes; ++i) {
      chunk[i].next = free_;
      free_ = &chunk[i];
    }
  }
  Node* node = free_;
  free_ = node->next;
  node->next = nullptr;
  return node;
}

void TimingWheel::RecycleNode(Node* node) {
  // The callback was moved out (or never set); make the cell inert before
  // it rejoins the free list so no capture outlives its event.
  node->fn = EventFn();
  node->next = free_;
  free_ = node;
}

void TimingWheel::Append(int level, int slot, Node* node) {
  Slot& s = slots_[level][slot];
  if (s.head == nullptr) {
    s.head = s.tail = node;
    SetBit(level, slot);
  } else {
    s.tail->next = node;
    s.tail = node;
  }
  node->next = nullptr;
}

void TimingWheel::Place(Node* node) {
  assert(node->at >= current_);
  uint64_t diff = node->at ^ current_;
  if ((diff >> kHorizonBits) != 0) {
    overflow_.push(node);
    ++stats_.overflow_scheduled;
    return;
  }
  int level = diff == 0 ? 0 : HighestByte(diff);
  Append(level, SlotAt(node->at, level), node);
}

void TimingWheel::Schedule(SimTime at, uint64_t seq, EventFn fn) {
  uint64_t at_us = static_cast<uint64_t>(at.micros());
  if (at_us < current_) at_us = current_;  // never schedule into the past
  Node* node = AllocNode();
  node->at = at_us;
  node->seq = seq;
  node->fn = std::move(fn);
  Place(node);
  ++size_;
  ++stats_.scheduled;
}

int TimingWheel::NextOccupied(int level, int from) const {
  if (from >= kSlots) return -1;
  const uint64_t* words = occupied_[level];
  int word = from >> 6;
  uint64_t masked = words[word] & (~0ull << (from & 63));
  while (true) {
    if (masked != 0) return (word << 6) + __builtin_ctzll(masked);
    if (++word >= kSlots / 64) return -1;
    masked = words[word];
  }
}

void TimingWheel::Cascade(int level, int slot) {
  Slot& s = slots_[level][slot];
  Node* node = s.head;
  s.head = s.tail = nullptr;
  ClearBit(level, slot);
  // Redistribute in list order: same-time events keep their relative
  // (FIFO == seq) order in the finer slot they land in.
  while (node != nullptr) {
    Node* next = node->next;
    Place(node);
    ++stats_.cascaded;
    node = next;
  }
}

void TimingWheel::DrainOverflow() {
  // Pull every overflow event whose time now shares the wheel's top-level
  // block back into the wheel. The heap pops in (at, seq) order and
  // Append is FIFO, so drained same-time events line up in seq order —
  // and because this runs at every horizon crossing, a drained event is
  // always appended before any same-time event scheduled afterwards.
  while (!overflow_.empty() &&
         (overflow_.top()->at >> kHorizonBits) == (current_ >> kHorizonBits)) {
    Node* node = overflow_.top();
    overflow_.pop();
    assert(node->at >= current_);
    Place(node);
    ++stats_.overflow_drained;
  }
}

void TimingWheel::AdvanceTo(uint64_t t) {
  assert(t >= current_);
  uint64_t diff = t ^ current_;
  if (diff == 0) return;
  bool horizon_crossed = (diff >> kHorizonBits) != 0;
  int top = std::min(HighestByte(diff), kLevels - 1);
  current_ = t;
  // Entering a new block at each changed level invalidates that level's
  // slot meanings below it; only the arrival slot can be occupied (all
  // earlier slots in the new block are in the past or were verified
  // empty by the caller), so cascading it down is sufficient.
  for (int level = top; level >= 1; --level) {
    int slot = SlotAt(t, level);
    if (slots_[level][slot].head != nullptr) Cascade(level, slot);
  }
  if (horizon_crossed) DrainOverflow();
}

bool TimingWheel::NextDueTime(SimTime limit_t, SimTime* at) {
  if (size_ == 0) return false;
  uint64_t limit = static_cast<uint64_t>(limit_t.micros());
  while (true) {
    // Level 0 holds the wheel's current 256 us window at exact times; the
    // first occupied slot from the cursor onward is the global minimum.
    int slot0 = NextOccupied(0, static_cast<int>(current_ & kSlotMask));
    if (slot0 >= 0) {
      uint64_t t = (current_ & ~kSlotMask) + static_cast<uint64_t>(slot0);
      if (t > limit) {
        AdvanceTo(limit);
        return false;
      }
      AdvanceTo(t);
      *at = SimTime::FromMicros(static_cast<int64_t>(t));
      return true;
    }
    // Nothing this window: jump to the next occupied coarse slot. Cursor
    // slots at levels >= 1 are always empty (cascaded on block entry), so
    // the scan starts strictly after the cursor.
    bool jumped = false;
    for (int level = 1; level < kLevels && !jumped; ++level) {
      int cursor = SlotAt(current_, level);
      int slot = NextOccupied(level, cursor + 1);
      if (slot < 0) continue;
      uint64_t span = 1ull << (kSlotBits * level);
      uint64_t window_base = current_ & ~(span * kSlots - 1);
      uint64_t block_start = window_base + span * static_cast<uint64_t>(slot);
      if (block_start > limit) {
        AdvanceTo(limit);
        return false;
      }
      // Arriving at the block cascades its contents into finer levels;
      // loop back to the level-0 scan.
      AdvanceTo(block_start);
      jumped = true;
    }
    if (jumped) continue;
    // Whole wheel empty: the remaining events are past the horizon.
    assert(!overflow_.empty());
    uint64_t t = overflow_.top()->at;
    if (t > limit) {
      AdvanceTo(limit);
      return false;
    }
    AdvanceTo(t);  // crosses the horizon, draining overflow into the wheel
  }
}

void TimingWheel::FireNext() {
  Slot& s = slots_[0][static_cast<int>(current_ & kSlotMask)];
  Node* node = s.head;
  assert(node != nullptr && node->at == current_);
  s.head = node->next;
  if (s.head == nullptr) {
    s.tail = nullptr;
    ClearBit(0, static_cast<int>(current_ & kSlotMask));
  }
  --size_;
  ++stats_.fired;
  EventFn fn = std::move(node->fn);
  RecycleNode(node);
  fn();  // may schedule; new same-time events append behind this slot's tail
}

}  // namespace speedkit::sim
