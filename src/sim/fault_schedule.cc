#include "sim/fault_schedule.h"

#include <utility>

namespace speedkit::sim {
namespace {

bool AnyDown(const std::vector<FaultWindow>& windows, SimTime now) {
  for (const FaultWindow& w : windows) {
    if (w.down && w.Covers(now)) return true;
  }
  return false;
}

}  // namespace

bool FaultScheduleConfig::Empty() const {
  if (purge_loss_probability > 0 || purge_delay_probability > 0) return false;
  if (client_edge.loss_probability > 0 || !client_edge.windows.empty() ||
      client_origin.loss_probability > 0 || !client_origin.windows.empty() ||
      edge_origin.loss_probability > 0 || !edge_origin.windows.empty()) {
    return false;
  }
  if (!origin.empty()) return false;
  for (const auto& per_edge : edges) {
    if (!per_edge.empty()) return false;
  }
  return true;
}

FaultSchedule::FaultSchedule(FaultScheduleConfig config)
    : config_(std::move(config)) {}

const LinkFaults& FaultSchedule::FaultsFor(Link link) const {
  switch (link) {
    case Link::kClientEdge:
      return config_.client_edge;
    case Link::kClientOrigin:
      return config_.client_origin;
    case Link::kEdgeOrigin:
      return config_.edge_origin;
  }
  return config_.client_origin;
}

bool FaultSchedule::LinkDown(Link link, SimTime now) const {
  return AnyDown(FaultsFor(link).windows, now);
}

double FaultSchedule::LatencyMultiplier(Link link, SimTime now) const {
  double factor = 1.0;
  for (const FaultWindow& w : FaultsFor(link).windows) {
    if (!w.down && w.Covers(now)) factor *= w.latency_multiplier;
  }
  return factor;
}

double FaultSchedule::LossProbability(Link link) const {
  return FaultsFor(link).loss_probability;
}

bool FaultSchedule::OriginDown(SimTime now) const {
  return AnyDown(config_.origin, now);
}

bool FaultSchedule::EdgeDown(int edge, SimTime now) const {
  if (edge < 0 || static_cast<size_t>(edge) >= config_.edges.size()) {
    return false;
  }
  return AnyDown(config_.edges[edge], now);
}

}  // namespace speedkit::sim
