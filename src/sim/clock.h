// The simulated clock every component reads.
//
// Components never call wall-clock APIs; they hold a `const SimClock*` (or a
// `Clock*` when they drive it) so that a whole simulation — TTL expiry,
// sketch refresh intervals, Δ-atomicity windows — advances deterministically.
#ifndef SPEEDKIT_SIM_CLOCK_H_
#define SPEEDKIT_SIM_CLOCK_H_

#include "common/sim_time.h"

namespace speedkit::sim {

class SimClock {
 public:
  SimClock() = default;

  SimTime Now() const { return now_; }

  // Moves time forward. Moving backwards is a programming error and is
  // ignored, so a component that races the driver cannot corrupt the clock.
  void AdvanceTo(SimTime t) {
    if (t > now_) now_ = t;
  }
  void Advance(Duration d) { now_ = now_ + d; }

 private:
  SimTime now_;
};

}  // namespace speedkit::sim

#endif  // SPEEDKIT_SIM_CLOCK_H_
