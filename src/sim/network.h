// Network latency and transfer-time model — the substitute for the paper's
// production WAN (see DESIGN.md, substitutions table).
//
// Each link samples its round-trip time from a lognormal distribution
// (heavy right tail, matching measured WAN RTTs) parameterized by its median
// and log-sigma; payload transfer adds bytes/bandwidth. Defaults model a
// client near a CDN edge but far from the origin, which is the regime where
// Speed Kit's edge caching pays off:
//   client <-> edge    median 20 ms
//   client <-> origin  median 100 ms
//   edge   <-> origin  median 80 ms
#ifndef SPEEDKIT_SIM_NETWORK_H_
#define SPEEDKIT_SIM_NETWORK_H_

#include <cstddef>

#include "common/histogram.h"
#include "common/random.h"
#include "common/sim_time.h"

namespace speedkit::sim {

enum class Link {
  kClientEdge,
  kClientOrigin,
  kEdgeOrigin,
};

// One link's parameters.
struct LinkSpec {
  Duration median_rtt = Duration::Millis(50);
  double log_sigma = 0.25;  // sigma of ln(rtt); 0 disables jitter
  double bandwidth_bytes_per_sec = 4.0e6;  // ~32 Mbit/s
};

struct NetworkConfig {
  LinkSpec client_edge{Duration::Millis(20), 0.25, 8.0e6};
  LinkSpec client_origin{Duration::Millis(100), 0.30, 4.0e6};
  LinkSpec edge_origin{Duration::Millis(80), 0.20, 12.0e6};

  // A network where all latencies collapse to zero; unit tests use it to
  // isolate protocol logic from timing.
  static NetworkConfig Instant();
};

class FaultSchedule;

class Network {
 public:
  Network(const NetworkConfig& config, Pcg32 rng);

  // Attaches a fault schedule (not owned; may be nullptr). Without one —
  // or with an all-zero schedule — every API below behaves exactly as
  // before faults existed, including the RNG draw sequence.
  void SetFaultSchedule(const FaultSchedule* faults) { faults_ = faults; }

  // Live observability hook: when set, every RTT this network hands out on
  // a link is recorded (us, after any fault stretch) into that link's
  // histogram — the `network.rtt_us` metric. Not owned; null disables.
  // Recording draws no randomness and cannot affect simulation results.
  void SetRttHistograms(Histogram* client_edge, Histogram* client_origin,
                        Histogram* edge_origin) {
    rtt_hist_[0] = client_edge;
    rtt_hist_[1] = client_origin;
    rtt_hist_[2] = edge_origin;
  }

  // Samples one round trip on `link`.
  Duration SampleRtt(Link link);

  // Fault-aware variant: the sample is stretched by any latency-spike
  // window covering `now`.
  Duration SampleRtt(Link link, SimTime now);

  // Whether a request sent over `link` at `now` gets through. False when
  // a down window covers `now` or a per-request loss draw fires; the
  // caller (the proxy) turns false into timeout + retry + fallback. Draws
  // the RNG only when the link is actually lossy, so lossless runs keep
  // their latency sample sequence.
  bool Delivered(Link link, SimTime now);

  // Time to move `bytes` across `link` once the connection exists.
  Duration TransferTime(Link link, size_t bytes) const;

  // Full request cost: one RTT plus response transfer.
  Duration RequestTime(Link link, size_t response_bytes);
  Duration RequestTime(Link link, size_t response_bytes, SimTime now);

  const LinkSpec& spec(Link link) const;

 private:
  Duration SampleRaw(Link link);
  void RecordRtt(Link link, Duration rtt) {
    Histogram* h = rtt_hist_[static_cast<size_t>(link)];
    if (h != nullptr) h->Add(rtt.micros());
  }

  NetworkConfig config_;
  Pcg32 rng_;
  const FaultSchedule* faults_ = nullptr;
  Histogram* rtt_hist_[3] = {nullptr, nullptr, nullptr};
};

}  // namespace speedkit::sim

#endif  // SPEEDKIT_SIM_NETWORK_H_
