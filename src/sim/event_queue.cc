#include "sim/event_queue.h"

#include <utility>

namespace speedkit::sim {

void EventQueue::At(SimTime at, std::function<void()> fn) {
  if (at < clock_->Now()) at = clock_->Now();
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

void EventQueue::After(Duration delay, std::function<void()> fn) {
  At(clock_->Now() + delay, std::move(fn));
}

size_t EventQueue::RunUntil(SimTime until) {
  size_t ran = 0;
  while (!heap_.empty() && heap_.top().at <= until) {
    // Copy out before pop: the callback may schedule new events and
    // invalidate the heap top.
    Event ev = heap_.top();
    heap_.pop();
    clock_->AdvanceTo(ev.at);
    ev.fn();
    ++ran;
  }
  if (until != SimTime::Max()) clock_->AdvanceTo(until);
  return ran;
}

}  // namespace speedkit::sim
