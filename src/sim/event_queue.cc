#include "sim/event_queue.h"

#include <utility>

namespace speedkit::sim {

void EventQueue::At(SimTime at, EventFn fn) {
  if (at < clock_->Now()) at = clock_->Now();
  wheel_.Schedule(at, next_seq_++, std::move(fn));
}

void EventQueue::After(Duration delay, EventFn fn) {
  At(clock_->Now() + delay, std::move(fn));
}

size_t EventQueue::RunUntil(SimTime until) {
  // Pending events always lie at or after the clock, so a target in the
  // past can fire nothing (and the clock never moves backwards).
  if (until < clock_->Now()) return 0;
  size_t ran = 0;
  SimTime at;
  while (wheel_.NextDueTime(until, &at)) {
    clock_->AdvanceTo(at);
    wheel_.FireNext();
    ++ran;
  }
  if (until != SimTime::Max()) clock_->AdvanceTo(until);
  return ran;
}

}  // namespace speedkit::sim
