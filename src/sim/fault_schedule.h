// Deterministic fault injection for the simulated infrastructure.
//
// A FaultSchedule describes *when* and *how badly* things break: per-link
// down windows, latency-spike windows, packet-loss probabilities, origin
// and edge-node outage windows, and purge-delivery loss/delay for the
// invalidation pipeline. The schedule itself is pure data — every
// probabilistic decision (loss draws, delay draws) is taken by the
// component that owns the relevant seeded PRNG stream, so faulty runs stay
// bit-reproducible and an all-zero schedule is byte-for-byte identical to
// no schedule at all (no extra RNG draws).
//
// Windows on the same node/link must not overlap: SpeedKitStack turns each
// window into a pair of clock events (down at `start`, back up at `end`),
// so overlapping windows would fight over the same toggle.
#ifndef SPEEDKIT_SIM_FAULT_SCHEDULE_H_
#define SPEEDKIT_SIM_FAULT_SCHEDULE_H_

#include <vector>

#include "common/sim_time.h"
#include "sim/network.h"

namespace speedkit::sim {

// One contiguous fault interval, [start, end). `down` windows make the
// link/node unreachable; otherwise the window is a latency spike that
// multiplies sampled RTTs by `latency_multiplier`.
struct FaultWindow {
  SimTime start = SimTime::Origin();
  SimTime end = SimTime::Origin();
  bool down = true;
  double latency_multiplier = 1.0;

  bool Covers(SimTime t) const { return start <= t && t < end; }
};

// Faults on one WAN link.
struct LinkFaults {
  // Per-request probability that the request never gets through (times
  // out after proxy-side retries). 0 = lossless, and guarantees no RNG
  // draw, so a lossless schedule does not perturb latency sampling.
  double loss_probability = 0.0;
  std::vector<FaultWindow> windows;
};

struct FaultScheduleConfig {
  LinkFaults client_edge;
  LinkFaults client_origin;
  LinkFaults edge_origin;

  // Origin-server outage windows (the E11/E14 "origin down" scenario).
  std::vector<FaultWindow> origin;

  // Per-edge outage windows; index = edge number. Entries beyond the
  // CDN's edge count are ignored.
  std::vector<std::vector<FaultWindow>> edges;

  // Invalidation-pipeline degradation: each scheduled per-edge purge
  // delivery is independently dropped with `purge_loss_probability`;
  // surviving deliveries are stretched by `purge_delay_factor` with
  // `purge_delay_probability`. Probability 0 means no RNG draw.
  double purge_loss_probability = 0.0;
  double purge_delay_probability = 0.0;
  double purge_delay_factor = 10.0;

  bool Empty() const;
};

// Read-only view over a FaultScheduleConfig answering "is X degraded at
// time t?" queries. Owned by SpeedKitStack and shared by Network (link
// faults), InvalidationPipeline (purge faults) and the stack's own outage
// events (origin/edge windows).
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(FaultScheduleConfig config);

  const FaultScheduleConfig& config() const { return config_; }

  // Link queries.
  bool LinkDown(Link link, SimTime now) const;
  double LatencyMultiplier(Link link, SimTime now) const;
  double LossProbability(Link link) const;

  // Node queries (the stack additionally mirrors these windows into clock
  // events so components without a clock reference see the outage too).
  bool OriginDown(SimTime now) const;
  bool EdgeDown(int edge, SimTime now) const;

  double purge_loss_probability() const {
    return config_.purge_loss_probability;
  }
  double purge_delay_probability() const {
    return config_.purge_delay_probability;
  }
  double purge_delay_factor() const { return config_.purge_delay_factor; }

 private:
  const LinkFaults& FaultsFor(Link link) const;

  FaultScheduleConfig config_;
};

}  // namespace speedkit::sim

#endif  // SPEEDKIT_SIM_FAULT_SCHEDULE_H_
