// Hierarchical timing wheel: the event scheduler's O(1) engine.
//
// The discrete-event queue used to be a binary heap of std::function cells:
// O(log n) per schedule/fire and one heap allocation per event — the two
// costs that dominate simulated time at million-client populations. The
// wheel replaces both:
//
//   * five levels of 256 slots at 1 us, 256 us, ~65 ms, ~16.8 s and ~1.2 h
//     per tick cover ~12.7 days of future at microsecond exactness;
//   * scheduling appends to an intrusive slot list (O(1), no allocation —
//     nodes come from a chunked free-list pool and callbacks live inline in
//     the node, see common/inline_function.h);
//   * firing pops the earliest occupied slot, found by bitmap scans that
//     jump straight over empty regions instead of ticking through them;
//   * events beyond the 12.7-day horizon overflow into a small binary heap
//     (the old representation) and are pulled back into the wheel when the
//     horizon reaches them — correctness never depends on the span.
//
// Determinism contract: events fire in exactly (fire time, sequence) order,
// the same total order the heap produced. Within a 1 us slot the list is
// FIFO and sequences are assigned monotonically at schedule time, so FIFO
// equals sequence order; cascades redistribute coarse slots in list order,
// which preserves the relative order of same-time events; the overflow heap
// orders by (time, seq) and drains eagerly whenever the horizon moves, so
// an overflow event can never be appended behind a same-time event that was
// scheduled later. Every existing experiment fingerprint is therefore
// bit-identical to the heap scheduler's.
#ifndef SPEEDKIT_SIM_TIMING_WHEEL_H_
#define SPEEDKIT_SIM_TIMING_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "common/inline_function.h"
#include "common/sim_time.h"

namespace speedkit::sim {

// Event callbacks: 64 inline bytes fits every hot scheduling site (the
// traffic driver's page-view lambdas are the largest at ~48 bytes); larger
// captures degrade to one heap cell instead of failing.
using EventFn = InlineFn<64>;

struct TimingWheelStats {
  uint64_t scheduled = 0;        // total Schedule() calls
  uint64_t fired = 0;            // total PopNext() calls
  uint64_t cascaded = 0;         // nodes redistributed from a coarse slot
  uint64_t overflow_scheduled = 0;  // events past the horizon at schedule
  uint64_t overflow_drained = 0;    // ... later pulled back into the wheel
};

class TimingWheel {
 public:
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;         // 256
  static constexpr int kLevels = 5;                     // 2^40 us ~ 12.7 d
  static constexpr uint64_t kHorizonBits = kSlotBits * kLevels;

  // `origin` anchors the wheel's clock; events are scheduled at absolute
  // times >= the wheel's current position (earlier times clamp to it).
  explicit TimingWheel(SimTime origin = SimTime::Origin());
  ~TimingWheel();

  TimingWheel(const TimingWheel&) = delete;
  TimingWheel& operator=(const TimingWheel&) = delete;

  // O(1): appends to the target slot's FIFO list (or the overflow heap).
  // `seq` must be strictly increasing across calls — it is the total-order
  // tie-break for same-time events.
  void Schedule(SimTime at, uint64_t seq, EventFn fn);

  // Advances the wheel to the earlier of `limit` and the next event.
  // Returns true with `*at` set when an event is due at or before `limit`;
  // returns false — with the wheel advanced to `limit` iff `limit` is
  // finite — when nothing is due. Never advances past the next event.
  bool NextDueTime(SimTime limit, SimTime* at);

  // Pops and runs the next event (valid immediately after NextDueTime
  // returned true; the event fires at the wheel's current time). The
  // callback may schedule new events, including at the current time — they
  // join the tail of the current slot and fire in this same batch.
  void FireNext();

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  SimTime current() const { return SimTime::FromMicros(static_cast<int64_t>(current_)); }
  const TimingWheelStats& stats() const { return stats_; }

 private:
  struct Node {
    uint64_t at = 0;
    uint64_t seq = 0;
    Node* next = nullptr;
    EventFn fn;
  };
  struct Slot {
    Node* head = nullptr;
    Node* tail = nullptr;
  };
  struct OverflowLater {
    bool operator()(const Node* a, const Node* b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  Node* AllocNode();
  void RecycleNode(Node* node);

  // Places `node` (at >= current_) into the level/slot derived from the
  // highest byte where its time differs from the wheel position, or the
  // overflow heap when past the horizon.
  void Place(Node* node);
  void Append(int level, int slot, Node* node);

  // Moves the wheel to `t` (>= current_), redistributing the arrival slot
  // of every level whose cursor block changed, top level first. Callers
  // guarantee no event lies in (current_, t).
  void AdvanceTo(uint64_t t);
  void Cascade(int level, int slot);
  void DrainOverflow();

  // First occupied slot index >= `from` at `level`, or -1.
  int NextOccupied(int level, int from) const;

  void SetBit(int level, int slot) {
    occupied_[level][slot >> 6] |= 1ull << (slot & 63);
  }
  void ClearBit(int level, int slot) {
    occupied_[level][slot >> 6] &= ~(1ull << (slot & 63));
  }

  uint64_t current_;  // absolute microseconds
  size_t size_ = 0;   // pending events, overflow included

  Slot slots_[kLevels][kSlots];
  uint64_t occupied_[kLevels][kSlots / 64] = {};

  std::priority_queue<Node*, std::vector<Node*>, OverflowLater> overflow_;

  // Chunked node pool: stable addresses, one allocation per 256 events of
  // peak concurrency, recycled through an intrusive free list.
  static constexpr size_t kChunkNodes = 256;
  std::vector<std::unique_ptr<Node[]>> chunks_;
  Node* free_ = nullptr;

  TimingWheelStats stats_;
};

}  // namespace speedkit::sim

#endif  // SPEEDKIT_SIM_TIMING_WHEEL_H_
