#include "sim/network.h"

#include <cmath>

#include "sim/fault_schedule.h"

namespace speedkit::sim {

NetworkConfig NetworkConfig::Instant() {
  NetworkConfig config;
  // Bandwidth 0 disables transfer-time modelling entirely.
  config.client_edge = LinkSpec{Duration::Zero(), 0.0, 0.0};
  config.client_origin = LinkSpec{Duration::Zero(), 0.0, 0.0};
  config.edge_origin = LinkSpec{Duration::Zero(), 0.0, 0.0};
  return config;
}

Network::Network(const NetworkConfig& config, Pcg32 rng)
    : config_(config), rng_(rng) {}

const LinkSpec& Network::spec(Link link) const {
  switch (link) {
    case Link::kClientEdge:
      return config_.client_edge;
    case Link::kClientOrigin:
      return config_.client_origin;
    case Link::kEdgeOrigin:
      return config_.edge_origin;
  }
  return config_.client_origin;
}

Duration Network::SampleRaw(Link link) {
  const LinkSpec& s = spec(link);
  if (s.median_rtt == Duration::Zero()) return Duration::Zero();
  if (s.log_sigma <= 0.0) return s.median_rtt;
  // Lognormal with median m: m * exp(N(0, sigma)).
  double factor = rng_.LogNormal(0.0, s.log_sigma);
  return Duration::Micros(
      static_cast<int64_t>(s.median_rtt.micros() * factor));
}

Duration Network::SampleRtt(Link link) {
  Duration rtt = SampleRaw(link);
  RecordRtt(link, rtt);
  return rtt;
}

Duration Network::SampleRtt(Link link, SimTime now) {
  Duration rtt = SampleRaw(link);
  if (faults_ != nullptr) {
    double factor = faults_->LatencyMultiplier(link, now);
    if (factor != 1.0) rtt = rtt * factor;
  }
  RecordRtt(link, rtt);
  return rtt;
}

bool Network::Delivered(Link link, SimTime now) {
  if (faults_ == nullptr) return true;
  if (faults_->LinkDown(link, now)) return false;
  double loss = faults_->LossProbability(link);
  // No draw on lossless links: an attached-but-quiet schedule must not
  // change any downstream latency sample.
  if (loss <= 0.0) return true;
  return !rng_.WithProbability(loss);
}

Duration Network::TransferTime(Link link, size_t bytes) const {
  const LinkSpec& s = spec(link);
  if (s.bandwidth_bytes_per_sec <= 0.0) return Duration::Zero();
  return Duration::Seconds(static_cast<double>(bytes) /
                           s.bandwidth_bytes_per_sec);
}

Duration Network::RequestTime(Link link, size_t response_bytes) {
  return SampleRtt(link) + TransferTime(link, response_bytes);
}

Duration Network::RequestTime(Link link, size_t response_bytes, SimTime now) {
  return SampleRtt(link, now) + TransferTime(link, response_bytes);
}

}  // namespace speedkit::sim
