#include "storage/object_store.h"

namespace speedkit::storage {

uint64_t ObjectStore::Put(std::string_view id,
                          std::map<std::string, FieldValue> fields,
                          SimTime now) {
  stats_.puts++;
  auto it = records_.find(std::string(id));
  if (it == records_.end()) {
    Record record;
    record.id = std::string(id);
    record.fields = std::move(fields);
    record.version = 1;
    record.updated_at = now;
    auto [inserted, _] = records_.emplace(record.id, std::move(record));
    Notify(nullptr, inserted->second);
    return 1;
  }
  Record before = it->second;
  it->second.fields = std::move(fields);
  it->second.version++;
  it->second.updated_at = now;
  it->second.deleted = false;
  Notify(&before, it->second);
  return it->second.version;
}

uint64_t ObjectStore::Update(std::string_view id,
                             const std::map<std::string, FieldValue>& fields,
                             SimTime now) {
  auto it = records_.find(std::string(id));
  if (it == records_.end()) {
    return Put(id, fields, now);
  }
  stats_.puts++;
  Record before = it->second;
  for (const auto& [name, value] : fields) {
    it->second.fields[name] = value;
  }
  it->second.version++;
  it->second.updated_at = now;
  Notify(&before, it->second);
  return it->second.version;
}

Result<Record> ObjectStore::Get(std::string_view id) {
  stats_.gets++;
  auto it = records_.find(std::string(id));
  if (it == records_.end() || it->second.deleted) {
    stats_.misses++;
    return Status::NotFound("no record: " + std::string(id));
  }
  return it->second;
}

const Record* ObjectStore::Peek(std::string_view id) const {
  auto it = records_.find(std::string(id));
  if (it == records_.end() || it->second.deleted) return nullptr;
  return &it->second;
}

uint64_t ObjectStore::VersionOf(std::string_view id) const {
  auto it = records_.find(std::string(id));
  return it == records_.end() ? 0 : it->second.version;
}

Status ObjectStore::Delete(std::string_view id, SimTime now) {
  auto it = records_.find(std::string(id));
  if (it == records_.end() || it->second.deleted) {
    return Status::NotFound("no record: " + std::string(id));
  }
  stats_.deletes++;
  Record before = it->second;
  it->second.deleted = true;
  it->second.version++;
  it->second.updated_at = now;
  Notify(&before, it->second);
  return Status::Ok();
}

void ObjectStore::Scan(const std::function<void(const Record&)>& fn) const {
  for (const auto& [id, record] : records_) {
    if (!record.deleted) fn(record);
  }
}

void ObjectStore::Notify(const Record* before, const Record& after) {
  for (const auto& listener : listeners_) listener(before, after);
}

}  // namespace speedkit::storage
