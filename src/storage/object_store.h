// Versioned key-value object store backing the origin.
//
// Every successful write bumps the record's version and notifies registered
// write listeners with the before- and after-images — the hook the
// invalidation pipeline uses to drive real-time query matching, CDN purges
// and Cache Sketch inserts. Single-threaded by design: the discrete-event
// simulation serializes all accesses on the logical clock.
#ifndef SPEEDKIT_STORAGE_OBJECT_STORE_H_
#define SPEEDKIT_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "storage/record.h"

namespace speedkit::storage {

// before == nullptr on insert; after.deleted == true on delete.
using WriteListener =
    std::function<void(const Record* before, const Record& after)>;

struct StoreStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  uint64_t misses = 0;
};

class ObjectStore {
 public:
  ObjectStore() = default;
  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  // Upserts: replaces the field set, bumps the version, fires listeners.
  // Returns the new version.
  uint64_t Put(std::string_view id, std::map<std::string, FieldValue> fields,
               SimTime now);

  // Partial update: merges `fields` into the existing record (insert if
  // absent), bumps the version, fires listeners.
  uint64_t Update(std::string_view id,
                  const std::map<std::string, FieldValue>& fields, SimTime now);

  Result<Record> Get(std::string_view id);
  const Record* Peek(std::string_view id) const;

  // Head version for staleness accounting; 0 when unknown.
  uint64_t VersionOf(std::string_view id) const;

  Status Delete(std::string_view id, SimTime now);

  void AddWriteListener(WriteListener listener) {
    listeners_.push_back(std::move(listener));
  }

  // Full scan in unspecified order (query matching over small catalogs).
  void Scan(const std::function<void(const Record&)>& fn) const;

  size_t size() const { return records_.size(); }
  const StoreStats& stats() const { return stats_; }

 private:
  void Notify(const Record* before, const Record& after);

  std::unordered_map<std::string, Record> records_;
  std::vector<WriteListener> listeners_;
  StoreStats stats_;
};

}  // namespace speedkit::storage

#endif  // SPEEDKIT_STORAGE_OBJECT_STORE_H_
