#include "storage/record.h"

#include "common/strings.h"

namespace speedkit::storage {

std::string FieldValueToString(const FieldValue& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v));
    case 1:
      return StrFormat("%.6g", std::get<double>(v));
    case 2:
      return "\"" + std::get<std::string>(v) + "\"";
    case 3:
      return std::get<bool>(v) ? "true" : "false";
  }
  return "null";
}

std::optional<int> CompareFields(const FieldValue& a, const FieldValue& b) {
  // Numeric cross-type comparison (int vs double) is meaningful; everything
  // else requires matching alternatives.
  auto as_double = [](const FieldValue& v) -> std::optional<double> {
    if (std::holds_alternative<int64_t>(v)) {
      return static_cast<double>(std::get<int64_t>(v));
    }
    if (std::holds_alternative<double>(v)) return std::get<double>(v);
    return std::nullopt;
  };
  auto da = as_double(a);
  auto db = as_double(b);
  if (da.has_value() && db.has_value()) {
    if (*da < *db) return -1;
    if (*da > *db) return 1;
    return 0;
  }
  if (a.index() != b.index()) return std::nullopt;
  if (std::holds_alternative<std::string>(a)) {
    return std::get<std::string>(a).compare(std::get<std::string>(b));
  }
  if (std::holds_alternative<bool>(a)) {
    return static_cast<int>(std::get<bool>(a)) -
           static_cast<int>(std::get<bool>(b));
  }
  return std::nullopt;
}

std::string Record::Render() const {
  std::string out = "{\"id\":\"" + id + "\",\"version\":" +
                    std::to_string(version);
  for (const auto& [name, value] : fields) {
    out += ",\"" + name + "\":" + FieldValueToString(value);
  }
  out += "}";
  return out;
}

}  // namespace speedkit::storage
