// Field-structured, versioned records — the origin's data model.
//
// Records carry typed fields so the invalidation pipeline can evaluate
// query predicates (price < 100, category == "shoes") against the before-
// and after-images of a write, exactly what InvaliDB-style real-time query
// matching needs. Versions are monotonic per record; response staleness is
// measured by comparing served `object_version` against the store's head.
#ifndef SPEEDKIT_STORAGE_RECORD_H_
#define SPEEDKIT_STORAGE_RECORD_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "common/sim_time.h"

namespace speedkit::storage {

using FieldValue = std::variant<int64_t, double, std::string, bool>;

std::string FieldValueToString(const FieldValue& v);

// Numeric comparison helper: returns nullopt when the two values are not
// comparable (e.g. string vs. int), three-way result otherwise.
std::optional<int> CompareFields(const FieldValue& a, const FieldValue& b);

struct Record {
  std::string id;
  // Ordered map: deterministic render output for a given record state.
  std::map<std::string, FieldValue> fields;
  uint64_t version = 0;
  SimTime updated_at;
  bool deleted = false;

  const FieldValue* GetField(std::string_view name) const {
    auto it = fields.find(std::string(name));
    return it == fields.end() ? nullptr : &it->second;
  }

  // Deterministic JSON-ish rendering; doubles as the response body.
  std::string Render() const;
};

}  // namespace speedkit::storage

#endif  // SPEEDKIT_STORAGE_RECORD_H_
