// Byte-level writer/reader for the browser-cache freeze format.
//
// Cold clients in million-client fleets spill their browser caches to one
// flat byte string (see HttpCache::Freeze) instead of holding a live
// LruCache heap graph — hash map, recency list, header vectors — per idle
// client. The encoding is a plain little-endian struct dump: no varints,
// no compression, because freeze/thaw sits on the simulation's client
// wake-up path and predictable O(bytes) memcpy speed matters more than
// the last 20% of density.
#ifndef SPEEDKIT_CACHE_FREEZE_CODEC_H_
#define SPEEDKIT_CACHE_FREEZE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace speedkit::cache {

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  std::string Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  void Raw(const void* p, size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string out_;
};

// Bounds-checked reader: a short or corrupt blob flips `ok()` and every
// subsequent read returns zero/empty instead of running off the buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t U8() {
    if (!Ensure(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() { return ReadScalar<uint32_t>(); }
  uint64_t U64() { return ReadScalar<uint64_t>(); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  std::string_view Str() {
    uint32_t n = U32();
    if (!Ensure(n)) return {};
    std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  T ReadScalar() {
    if (!Ensure(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  bool Ensure(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace speedkit::cache

#endif  // SPEEDKIT_CACHE_FREEZE_CODEC_H_
