#include "cache/http_cache.h"

namespace speedkit::cache {

HttpCache::HttpCache(bool shared, size_t capacity_bytes)
    : shared_(shared),
      entries_(capacity_bytes, [](const CacheEntry& e) {
        return e.response.WireSize() + 64;  // entry bookkeeping overhead
      }) {}

LookupResult HttpCache::Lookup(std::string_view key, SimTime now) {
  CacheEntry* entry = entries_.Get(key);
  if (entry == nullptr) {
    stats_.misses++;
    return LookupResult{LookupOutcome::kMiss, nullptr};
  }
  if (entry->IsFresh(now)) {
    stats_.fresh_hits++;
    return LookupResult{LookupOutcome::kFreshHit, entry};
  }
  stats_.stale_hits++;
  return LookupResult{LookupOutcome::kStaleHit, entry};
}

bool HttpCache::Store(std::string_view key, const http::HttpResponse& response,
                      SimTime now) {
  if (!response.ok() || response.body.empty()) return false;
  http::CacheControl cc = response.GetCacheControl();
  if (!cc.Storable(shared_)) {
    stats_.store_rejects++;
    return false;
  }
  CacheEntry entry;
  entry.response = response;
  entry.stored_at = now;
  auto freshness =
      shared_ ? cc.FreshnessForSharedCache() : cc.FreshnessForPrivateCache();
  entry.ttl = freshness.value_or(Duration::Zero());
  entry.swr = cc.stale_while_revalidate.value_or(Duration::Zero());
  entry.requires_revalidation = cc.no_cache;
  entries_.Put(key, std::move(entry));
  stats_.stores++;
  return true;
}

void HttpCache::Refresh(std::string_view key,
                        const http::HttpResponse& not_modified, SimTime now) {
  CacheEntry* entry = entries_.Get(key);
  if (entry == nullptr) return;
  http::CacheControl cc = not_modified.GetCacheControl();
  auto freshness =
      shared_ ? cc.FreshnessForSharedCache() : cc.FreshnessForPrivateCache();
  entry->ttl = freshness.value_or(Duration::Zero());
  entry->swr = cc.stale_while_revalidate.value_or(Duration::Zero());
  // The validator confirmed the representation: freshness restarts from
  // the 304's render time. An origin-minted 304 carries generated_at ==
  // revalidation time; a cache-minted 304 (edge answering a matching
  // client validator) carries its entry's original render time, which
  // propagates Age correctly instead of silently extending freshness.
  entry->response.generated_at = not_modified.generated_at;
  entry->response.object_version = not_modified.object_version;
  entry->stored_at = now;
  entry->requires_revalidation = false;
  stats_.refreshes++;
}

bool HttpCache::Purge(std::string_view key) {
  bool removed = entries_.Erase(key);
  if (removed) stats_.purges++;
  return removed;
}

void HttpCache::Clear() { entries_.Clear(); }

}  // namespace speedkit::cache
