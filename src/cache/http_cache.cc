#include "cache/http_cache.h"

#include <algorithm>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cache/freeze_codec.h"
#include "common/strings.h"
#include "http/headers.h"

namespace speedkit::cache {

namespace {
// Separators for the variant discriminator; neither occurs in URLs or
// header values, so variant keys cannot collide with primary keys.
constexpr char kVariantSep = '\x1f';
constexpr char kFieldSep = '\x1e';
}  // namespace

HttpCache::HttpCache(bool shared, size_t capacity_bytes)
    : shared_(shared),
      entries_(capacity_bytes, [](const CacheEntry& e) {
        return e.response.WireSize() + 64;  // entry bookkeeping overhead
      }) {}

std::string HttpCache::StorageKey(
    std::string_view key, const http::HeaderMap& request_headers) const {
  auto it = vary_names_.find(key);
  if (it == vary_names_.end()) return std::string(key);
  std::string storage_key(key);
  storage_key += kVariantSep;
  for (const std::string& name : it->second) {
    storage_key += name;
    storage_key += '=';
    auto value = request_headers.Get(name);
    if (value.has_value()) storage_key += *value;
    storage_key += kFieldSep;
  }
  return storage_key;
}

LookupResult HttpCache::LookupStored(std::string_view storage_key,
                                     SimTime now) {
  CacheEntry* entry = entries_.Get(storage_key);
  if (entry == nullptr) {
    stats_.misses++;
    return LookupResult{LookupOutcome::kMiss, nullptr};
  }
  if (entry->IsFresh(now)) {
    stats_.fresh_hits++;
    return LookupResult{LookupOutcome::kFreshHit, entry};
  }
  stats_.stale_hits++;
  return LookupResult{LookupOutcome::kStaleHit, entry};
}

LookupResult HttpCache::Lookup(std::string_view key, SimTime now) {
  // Headerless fast path: skip the variant map only in spirit — a varying
  // resource looked up without headers resolves to the all-absent variant.
  static const http::HeaderMap kNoHeaders;
  return Lookup(key, kNoHeaders, now);
}

LookupResult HttpCache::Lookup(std::string_view key,
                               const http::HeaderMap& request_headers,
                               SimTime now) {
  return LookupStored(StorageKey(key, request_headers), now);
}

bool HttpCache::Store(std::string_view key, const http::HttpResponse& response,
                      SimTime now) {
  static const http::HeaderMap kNoHeaders;
  return Store(key, kNoHeaders, response, now);
}

bool HttpCache::Store(std::string_view key,
                      const http::HeaderMap& request_headers,
                      const http::HttpResponse& response, SimTime now) {
  if (!response.ok() || response.body.empty()) return false;
  http::CacheControl cc = response.GetCacheControl();
  if (!cc.Storable(shared_)) {
    stats_.store_rejects++;
    return false;
  }

  std::string storage_key(key);
  auto vary_value = response.headers.Get("Vary");
  if (vary_value.has_value()) {
    std::vector<std::string> names = http::ParseVaryNames(*vary_value);
    if (!names.empty() && names.front() == "*") {
      // Vary: * — the response depends on inputs no cache can see.
      stats_.store_rejects++;
      return false;
    }
    if (!names.empty()) {
      // First varying store for this key displaces any plain entry (it
      // predates the resource starting to vary).
      auto it = vary_names_.find(key);
      if (it == vary_names_.end()) {
        entries_.Erase(key);
        vary_names_.emplace(std::string(key), names);
      } else if (it->second != names) {
        // The Vary set itself changed: old variant keys are unreachable
        // under the new set, drop them before they rot in the budget.
        std::string prefix = std::string(key) + kVariantSep;
        entries_.EraseIf([&prefix](const std::string& k, const CacheEntry&) {
          return StartsWith(k, prefix);
        });
        it->second = names;
      }
      storage_key = StorageKey(key, request_headers);
    }
  } else if (vary_names_.find(key) != vary_names_.end()) {
    // The resource stopped varying: retire the variant entries and the
    // mapping, then store plainly.
    std::string prefix = std::string(key) + kVariantSep;
    entries_.EraseIf([&prefix](const std::string& k, const CacheEntry&) {
      return StartsWith(k, prefix);
    });
    vary_names_.erase(vary_names_.find(key));
  }

  CacheEntry entry;
  entry.response = response;
  entry.stored_at = now;
  auto freshness =
      shared_ ? cc.FreshnessForSharedCache() : cc.FreshnessForPrivateCache();
  entry.ttl = freshness.value_or(Duration::Zero());
  entry.swr = cc.stale_while_revalidate.value_or(Duration::Zero());
  entry.requires_revalidation = cc.no_cache;
  if (entries_.Put(storage_key, std::move(entry)) ==
      PutOutcome::kRejectedOversized) {
    // Larger than the whole cache budget: dropped (and any stale resident
    // evicted). Surface it — a silent "stored" here inflates hit-rate
    // expectations for exactly the responses that can never hit.
    stats_.store_rejects++;
    return false;
  }
  stats_.stores++;
  return true;
}

void HttpCache::Refresh(std::string_view key,
                        const http::HttpResponse& not_modified, SimTime now) {
  static const http::HeaderMap kNoHeaders;
  Refresh(key, kNoHeaders, not_modified, now);
}

void HttpCache::Refresh(std::string_view key,
                        const http::HeaderMap& request_headers,
                        const http::HttpResponse& not_modified, SimTime now) {
  CacheEntry* entry = entries_.Get(StorageKey(key, request_headers));
  if (entry == nullptr) return;
  http::CacheControl cc = not_modified.GetCacheControl();
  auto freshness =
      shared_ ? cc.FreshnessForSharedCache() : cc.FreshnessForPrivateCache();
  entry->ttl = freshness.value_or(Duration::Zero());
  entry->swr = cc.stale_while_revalidate.value_or(Duration::Zero());
  // The validator confirmed the representation: freshness restarts from
  // the 304's render time. An origin-minted 304 carries generated_at ==
  // revalidation time; a cache-minted 304 (edge answering a matching
  // client validator) carries its entry's original render time, which
  // propagates Age correctly instead of silently extending freshness.
  entry->response.generated_at = not_modified.generated_at;
  entry->response.object_version = not_modified.object_version;
  entry->stored_at = now;
  entry->requires_revalidation = false;
  stats_.refreshes++;
}

bool HttpCache::Purge(std::string_view key) {
  bool removed = entries_.Erase(key);
  auto it = vary_names_.find(key);
  if (it != vary_names_.end()) {
    // A purge hits the resource, i.e. every variant of it.
    std::string prefix = std::string(key) + kVariantSep;
    removed |= entries_.EraseIf([&prefix](const std::string& k,
                                          const CacheEntry&) {
                 return StartsWith(k, prefix);
               }) > 0;
    vary_names_.erase(it);
  }
  if (removed) stats_.purges++;
  return removed;
}

void HttpCache::Clear() {
  entries_.Clear();
  vary_names_.clear();
}

namespace {
constexpr uint32_t kFreezeMagic = 0x534b4643;  // "SKFC": SpeedKit FreezeCache
}  // namespace

std::string HttpCache::Freeze() const {
  ByteWriter w;
  w.U32(kFreezeMagic);
  w.U8(shared_ ? 1 : 0);
  w.U64(entries_.capacity_bytes());
  w.U64(stats_.fresh_hits);
  w.U64(stats_.stale_hits);
  w.U64(stats_.misses);
  w.U64(stats_.stores);
  w.U64(stats_.store_rejects);
  w.U64(stats_.refreshes);
  w.U64(stats_.purges);
  w.U64(entries_.evictions());
  w.U64(entries_.oversized_rejections());
  // Most fleets never see a Vary response, so the variant-name section is
  // presence-gated rather than written as an empty count: spilled blobs
  // for never-varying clients carry one byte here, not a dangling section.
  // Mappings whose variant entries were all evicted are dead weight and
  // are dropped the same way — a no-longer-varying client spills the one
  // presence byte, not its Vary history. Live mappings are written in
  // sorted key order so equal cache contents freeze to identical bytes.
  std::unordered_set<std::string_view> live_primaries;
  entries_.ForEachLruToMru(
      [&live_primaries](const std::string& key, const CacheEntry&) {
        size_t sep = key.find(kVariantSep);
        if (sep != std::string::npos) {
          live_primaries.insert(std::string_view(key).substr(0, sep));
        }
      });
  std::vector<const std::pair<const std::string,
                              std::vector<std::string>>*> live;
  live.reserve(vary_names_.size());
  for (const auto& mapping : vary_names_) {
    if (live_primaries.count(mapping.first) != 0) live.push_back(&mapping);
  }
  std::sort(live.begin(), live.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  w.U8(live.empty() ? 0 : 1);
  if (!live.empty()) {
    w.U32(static_cast<uint32_t>(live.size()));
    for (const auto* mapping : live) {
      w.Str(mapping->first);
      w.U32(static_cast<uint32_t>(mapping->second.size()));
      for (const std::string& name : mapping->second) w.Str(name);
    }
  }
  w.U32(static_cast<uint32_t>(entries_.size()));
  // Least- to most-recently-used: replaying Put in this order rebuilds the
  // exact recency chain, so post-thaw eviction order is unchanged.
  entries_.ForEachLruToMru([&w](const std::string& key,
                                const CacheEntry& e) {
    w.Str(key);
    w.I64(e.stored_at.micros());
    w.I64(e.ttl.micros());
    w.I64(e.swr.micros());
    w.U8(e.requires_revalidation ? 1 : 0);
    const http::HttpResponse& r = e.response;
    w.U32(static_cast<uint32_t>(r.status_code));
    w.U64(r.object_version);
    w.I64(r.generated_at.micros());
    w.I64(r.server_time.micros());
    w.Str(r.body);
    w.U32(static_cast<uint32_t>(r.headers.size()));
    for (const auto& [name, value] : r.headers) {
      w.Str(name);
      w.Str(value);
    }
  });
  return w.Take();
}

bool HttpCache::Thaw(std::string_view blob) {
  Clear();
  ByteReader r(blob);
  if (r.U32() != kFreezeMagic || r.U8() != (shared_ ? 1 : 0) ||
      r.U64() != entries_.capacity_bytes()) {
    return false;
  }
  HttpCacheStats stats;
  stats.fresh_hits = r.U64();
  stats.stale_hits = r.U64();
  stats.misses = r.U64();
  stats.stores = r.U64();
  stats.store_rejects = r.U64();
  stats.refreshes = r.U64();
  stats.purges = r.U64();
  uint64_t evictions = r.U64();
  uint64_t oversized = r.U64();
  uint32_t vary_count = r.U8() != 0 ? r.U32() : 0;
  for (uint32_t i = 0; i < vary_count && r.ok(); ++i) {
    std::string key(r.Str());
    uint32_t name_count = r.U32();
    std::vector<std::string> names;
    names.reserve(name_count);
    for (uint32_t j = 0; j < name_count && r.ok(); ++j) {
      names.emplace_back(r.Str());
    }
    vary_names_.emplace(std::move(key), std::move(names));
  }
  uint32_t entry_count = r.U32();
  for (uint32_t i = 0; i < entry_count && r.ok(); ++i) {
    std::string key(r.Str());
    CacheEntry e;
    e.stored_at = SimTime::FromMicros(r.I64());
    e.ttl = Duration::Micros(r.I64());
    e.swr = Duration::Micros(r.I64());
    e.requires_revalidation = r.U8() != 0;
    e.response.status_code = static_cast<int>(r.U32());
    e.response.object_version = r.U64();
    e.response.generated_at = SimTime::FromMicros(r.I64());
    e.response.server_time = Duration::Micros(r.I64());
    e.response.body = std::string(r.Str());
    uint32_t header_count = r.U32();
    for (uint32_t j = 0; j < header_count && r.ok(); ++j) {
      std::string_view name = r.Str();
      std::string_view value = r.Str();
      e.response.headers.Add(name, value);
    }
    if (r.ok()) entries_.Put(key, std::move(e));
  }
  if (!r.ok() || !r.AtEnd()) {
    Clear();
    return false;
  }
  stats_ = stats;
  entries_.RestoreCounters(evictions, oversized);
  return true;
}

}  // namespace speedkit::cache
