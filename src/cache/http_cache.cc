#include "cache/http_cache.h"

#include <utility>

#include "common/strings.h"
#include "http/headers.h"

namespace speedkit::cache {

namespace {
// Separators for the variant discriminator; neither occurs in URLs or
// header values, so variant keys cannot collide with primary keys.
constexpr char kVariantSep = '\x1f';
constexpr char kFieldSep = '\x1e';
}  // namespace

HttpCache::HttpCache(bool shared, size_t capacity_bytes)
    : shared_(shared),
      entries_(capacity_bytes, [](const CacheEntry& e) {
        return e.response.WireSize() + 64;  // entry bookkeeping overhead
      }) {}

std::string HttpCache::StorageKey(
    std::string_view key, const http::HeaderMap& request_headers) const {
  auto it = vary_names_.find(key);
  if (it == vary_names_.end()) return std::string(key);
  std::string storage_key(key);
  storage_key += kVariantSep;
  for (const std::string& name : it->second) {
    storage_key += name;
    storage_key += '=';
    auto value = request_headers.Get(name);
    if (value.has_value()) storage_key += *value;
    storage_key += kFieldSep;
  }
  return storage_key;
}

LookupResult HttpCache::LookupStored(std::string_view storage_key,
                                     SimTime now) {
  CacheEntry* entry = entries_.Get(storage_key);
  if (entry == nullptr) {
    stats_.misses++;
    return LookupResult{LookupOutcome::kMiss, nullptr};
  }
  if (entry->IsFresh(now)) {
    stats_.fresh_hits++;
    return LookupResult{LookupOutcome::kFreshHit, entry};
  }
  stats_.stale_hits++;
  return LookupResult{LookupOutcome::kStaleHit, entry};
}

LookupResult HttpCache::Lookup(std::string_view key, SimTime now) {
  // Headerless fast path: skip the variant map only in spirit — a varying
  // resource looked up without headers resolves to the all-absent variant.
  static const http::HeaderMap kNoHeaders;
  return Lookup(key, kNoHeaders, now);
}

LookupResult HttpCache::Lookup(std::string_view key,
                               const http::HeaderMap& request_headers,
                               SimTime now) {
  return LookupStored(StorageKey(key, request_headers), now);
}

bool HttpCache::Store(std::string_view key, const http::HttpResponse& response,
                      SimTime now) {
  static const http::HeaderMap kNoHeaders;
  return Store(key, kNoHeaders, response, now);
}

bool HttpCache::Store(std::string_view key,
                      const http::HeaderMap& request_headers,
                      const http::HttpResponse& response, SimTime now) {
  if (!response.ok() || response.body.empty()) return false;
  http::CacheControl cc = response.GetCacheControl();
  if (!cc.Storable(shared_)) {
    stats_.store_rejects++;
    return false;
  }

  std::string storage_key(key);
  auto vary_value = response.headers.Get("Vary");
  if (vary_value.has_value()) {
    std::vector<std::string> names = http::ParseVaryNames(*vary_value);
    if (!names.empty() && names.front() == "*") {
      // Vary: * — the response depends on inputs no cache can see.
      stats_.store_rejects++;
      return false;
    }
    if (!names.empty()) {
      // First varying store for this key displaces any plain entry (it
      // predates the resource starting to vary).
      auto it = vary_names_.find(key);
      if (it == vary_names_.end()) {
        entries_.Erase(key);
        vary_names_.emplace(std::string(key), names);
      } else if (it->second != names) {
        // The Vary set itself changed: old variant keys are unreachable
        // under the new set, drop them before they rot in the budget.
        std::string prefix = std::string(key) + kVariantSep;
        entries_.EraseIf([&prefix](const std::string& k, const CacheEntry&) {
          return StartsWith(k, prefix);
        });
        it->second = names;
      }
      storage_key = StorageKey(key, request_headers);
    }
  } else if (vary_names_.find(key) != vary_names_.end()) {
    // The resource stopped varying: retire the variant entries and the
    // mapping, then store plainly.
    std::string prefix = std::string(key) + kVariantSep;
    entries_.EraseIf([&prefix](const std::string& k, const CacheEntry&) {
      return StartsWith(k, prefix);
    });
    vary_names_.erase(vary_names_.find(key));
  }

  CacheEntry entry;
  entry.response = response;
  entry.stored_at = now;
  auto freshness =
      shared_ ? cc.FreshnessForSharedCache() : cc.FreshnessForPrivateCache();
  entry.ttl = freshness.value_or(Duration::Zero());
  entry.swr = cc.stale_while_revalidate.value_or(Duration::Zero());
  entry.requires_revalidation = cc.no_cache;
  entries_.Put(storage_key, std::move(entry));
  stats_.stores++;
  return true;
}

void HttpCache::Refresh(std::string_view key,
                        const http::HttpResponse& not_modified, SimTime now) {
  static const http::HeaderMap kNoHeaders;
  Refresh(key, kNoHeaders, not_modified, now);
}

void HttpCache::Refresh(std::string_view key,
                        const http::HeaderMap& request_headers,
                        const http::HttpResponse& not_modified, SimTime now) {
  CacheEntry* entry = entries_.Get(StorageKey(key, request_headers));
  if (entry == nullptr) return;
  http::CacheControl cc = not_modified.GetCacheControl();
  auto freshness =
      shared_ ? cc.FreshnessForSharedCache() : cc.FreshnessForPrivateCache();
  entry->ttl = freshness.value_or(Duration::Zero());
  entry->swr = cc.stale_while_revalidate.value_or(Duration::Zero());
  // The validator confirmed the representation: freshness restarts from
  // the 304's render time. An origin-minted 304 carries generated_at ==
  // revalidation time; a cache-minted 304 (edge answering a matching
  // client validator) carries its entry's original render time, which
  // propagates Age correctly instead of silently extending freshness.
  entry->response.generated_at = not_modified.generated_at;
  entry->response.object_version = not_modified.object_version;
  entry->stored_at = now;
  entry->requires_revalidation = false;
  stats_.refreshes++;
}

bool HttpCache::Purge(std::string_view key) {
  bool removed = entries_.Erase(key);
  auto it = vary_names_.find(key);
  if (it != vary_names_.end()) {
    // A purge hits the resource, i.e. every variant of it.
    std::string prefix = std::string(key) + kVariantSep;
    removed |= entries_.EraseIf([&prefix](const std::string& k,
                                          const CacheEntry&) {
                 return StartsWith(k, prefix);
               }) > 0;
    vary_names_.erase(it);
  }
  if (removed) stats_.purges++;
  return removed;
}

void HttpCache::Clear() {
  entries_.Clear();
  vary_names_.clear();
}

}  // namespace speedkit::cache
