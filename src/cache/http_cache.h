// HTTP-semantics cache layer, instantiated as the browser cache (private)
// and each CDN edge (shared).
//
// Freshness is computed against the response's origin render time
// (`generated_at`), which models correct Age propagation across layers: a
// response that sat 40 s at a CDN edge has only `ttl - 40s` of freshness
// left when the browser stores it. Stale entries are retained for
// conditional revalidation (If-None-Match -> 304 extends their life).
#ifndef SPEEDKIT_CACHE_HTTP_CACHE_H_
#define SPEEDKIT_CACHE_HTTP_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/lru_cache.h"
#include "common/hash.h"
#include "common/sim_time.h"
#include "http/message.h"

namespace speedkit::cache {

struct CacheEntry {
  http::HttpResponse response;
  SimTime stored_at;
  Duration ttl = Duration::Zero();  // freshness lifetime from generated_at
  Duration swr = Duration::Zero();  // stale-while-revalidate window
  bool requires_revalidation = false;  // no-cache: usable only after 304

  SimTime FreshUntil() const { return response.generated_at + ttl; }
  bool IsFresh(SimTime now) const {
    return !requires_revalidation && now < FreshUntil();
  }
  // Expired, but still inside the stale-while-revalidate window: may be
  // served while a background revalidation runs (RFC 5861). Only safe to
  // use when something else bounds staleness — for Speed Kit, the sketch.
  bool WithinSwrWindow(SimTime now) const {
    return !requires_revalidation && now < FreshUntil() + swr;
  }
};

enum class LookupOutcome {
  kFreshHit,   // entry returned, safe to serve under expiration rules
  kStaleHit,   // entry present but expired; candidate for revalidation
  kMiss,
};

struct LookupResult {
  LookupOutcome outcome = LookupOutcome::kMiss;
  const CacheEntry* entry = nullptr;  // valid for hits until next mutation
};

struct HttpCacheStats {
  uint64_t fresh_hits = 0;
  uint64_t stale_hits = 0;
  uint64_t misses = 0;
  uint64_t stores = 0;
  uint64_t store_rejects = 0;  // no-store / private-at-shared / Vary: *
  uint64_t refreshes = 0;      // 304-driven lifetime extensions
  uint64_t purges = 0;
};

class HttpCache {
 public:
  // `shared` selects which Cache-Control directives apply (s-maxage,
  // private). `capacity_bytes` 0 = unbounded.
  HttpCache(bool shared, size_t capacity_bytes);

  // Vary-aware lookup: when the stored response carried `Vary`, the named
  // request headers become a secondary cache key, so two variants (e.g.
  // segments) can never cross-serve. The header-less overload is for
  // resources known not to vary (and legacy callers).
  LookupResult Lookup(std::string_view key, SimTime now);
  LookupResult Lookup(std::string_view key,
                      const http::HeaderMap& request_headers, SimTime now);

  // Stores `response` if its Cache-Control permits storage in this cache
  // class. Returns true if stored. Responses without explicit freshness get
  // TTL zero (stored for revalidation only). A response with `Vary` is
  // stored under the variant key derived from `request_headers`;
  // `Vary: *` is uncacheable (counted as a store reject).
  bool Store(std::string_view key, const http::HttpResponse& response,
             SimTime now);
  bool Store(std::string_view key, const http::HeaderMap& request_headers,
             const http::HttpResponse& response, SimTime now);

  // Applies a 304: extends the stored entry's freshness using the new
  // Cache-Control and render time. No-op if the entry vanished.
  void Refresh(std::string_view key, const http::HttpResponse& not_modified,
               SimTime now);
  void Refresh(std::string_view key, const http::HeaderMap& request_headers,
               const http::HttpResponse& not_modified, SimTime now);

  // Invalidation-based removal (CDN purge API). Purging a varying key
  // removes every stored variant.
  bool Purge(std::string_view key);
  void Clear();

  // Cold-client spill: serializes the full cache state — entries in
  // recency order, Vary mappings, stats, eviction history — into one flat
  // byte string, and reconstructs it exactly. A freeze/thaw round trip is
  // behavior-neutral: every subsequent lookup, store and eviction decision
  // is identical to the never-frozen cache, so fleet results cannot depend
  // on which clients went cold. Thaw replaces this cache's contents; it
  // returns false (leaving the cache cleared) on a corrupt or truncated
  // blob.
  std::string Freeze() const;
  bool Thaw(std::string_view blob);

  bool shared() const { return shared_; }
  size_t size() const { return entries_.size(); }
  size_t used_bytes() const { return entries_.used_bytes(); }
  uint64_t evictions() const { return entries_.evictions(); }
  const HttpCacheStats& stats() const { return stats_; }

 private:
  // The internal storage key: the primary key, plus a discriminator built
  // from the Vary'd request-header values when the resource varies.
  std::string StorageKey(std::string_view key,
                         const http::HeaderMap& request_headers) const;
  LookupResult LookupStored(std::string_view storage_key, SimTime now);

  bool shared_;
  LruCache<CacheEntry> entries_;
  // Primary key -> normalized Vary header names of the stored response(s).
  std::unordered_map<std::string, std::vector<std::string>, StringHash,
                     std::equal_to<>>
      vary_names_;
  HttpCacheStats stats_;
};

}  // namespace speedkit::cache

#endif  // SPEEDKIT_CACHE_HTTP_CACHE_H_
