// Cross-shard purge mailboxes for the sharded fleet engine.
//
// Edge slot ownership is shard-private (edge e belongs to shard e % shards
// by construction), so the request path never locks. The one kind of
// traffic that genuinely crosses the partition — a purge aimed at an edge
// another shard owns — is carried here instead of by locking the remote
// slot inline: the sender posts a PurgeNote into the owning shard's
// mailbox, and the owner drains its mailbox in a batch at its next
// coherence boundary (the sketch refresh interval Δ — the same boundary
// that already bounds client staleness, so deferring remote purges to it
// adds no new staleness class; see Eyal et al., "Cache Serializability",
// for the argument that edge tiers scale when cross-node coordination is
// batched at consistency boundaries instead of taken per operation).
//
// Topology: a shards×shards grid of bounded single-producer/single-consumer
// rings — lane (from, to) is written only by shard `from` and read only by
// shard `to`, so posting and draining are lock-free atomic cursor moves.
// The only mutex in the tier guards a lane's unbounded overflow spill,
// taken when a burst outruns the ring (and by the drain that empties it) —
// i.e. a mutex exists exactly where cross-shard traffic is real and bursty,
// never on the request path.
//
// Determinism: Drain applies notes in ascending producer-shard order, FIFO
// within a producer (the overflow diversion flag below preserves FIFO even
// across a ring-full episode). Posts made while shards are quiescent —
// before a run, or at a barrier — are therefore applied in an order that is
// a pure function of the posts themselves, which is what keeps fleet
// results a pure function of (seed, shards) at any thread count.
#ifndef SPEEDKIT_CACHE_PURGE_MAILBOX_H_
#define SPEEDKIT_CACHE_PURGE_MAILBOX_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"

namespace speedkit::cache {

inline constexpr size_t kCacheLineBytes = 64;

// One cross-shard purge: remove `key` from the physical edge `edge`,
// posted at `posted_at` on the sender's clock (recorded for accounting;
// the purge takes effect when the owner drains).
struct PurgeNote {
  int edge = 0;
  SimTime posted_at;
  std::string key;
};

// Bounded lock-free SPSC ring of PurgeNotes. Exactly one producer thread
// may call TryPush and one consumer thread TryPop; the cursors are padded
// to their own cache lines so the producer and consumer never false-share.
class SpscPurgeRing {
 public:
  explicit SpscPurgeRing(size_t capacity = kDefaultCapacity)
      : buf_(RoundUpPow2(capacity)), mask_(buf_.size() - 1) {}

  // Producer side. Moves from `note` ONLY on success; a full ring returns
  // false and leaves the note intact for the caller to spill elsewhere.
  bool TryPush(PurgeNote& note) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= buf_.size()) return false;
    buf_[tail & mask_] = std::move(note);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }
  bool TryPush(PurgeNote&& note) {
    PurgeNote local = std::move(note);
    return TryPush(local);
  }

  // Consumer side. False when empty.
  bool TryPop(PurgeNote* out) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    *out = std::move(buf_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  size_t SizeApprox() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }
  size_t capacity() const { return buf_.size(); }

  static constexpr size_t kDefaultCapacity = 1024;

 private:
  static size_t RoundUpPow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<PurgeNote> buf_;
  size_t mask_;
  alignas(kCacheLineBytes) std::atomic<uint64_t> head_{0};  // consumer cursor
  alignas(kCacheLineBytes) std::atomic<uint64_t> tail_{0};  // producer cursor
};

// shards × shards mailbox grid. Lane (from, to) carries the purges shard
// `from` addresses to edges shard `to` owns.
class PurgeMailboxGrid {
 public:
  explicit PurgeMailboxGrid(int shards, size_t ring_capacity =
                                            SpscPurgeRing::kDefaultCapacity)
      : shards_(shards) {
    assert(shards >= 1);
    lanes_.reserve(static_cast<size_t>(shards) * static_cast<size_t>(shards));
    for (int i = 0; i < shards * shards; ++i) {
      lanes_.push_back(std::make_unique<Lane>(ring_capacity));
    }
  }

  int shards() const { return shards_; }

  // Called by shard `from` (its thread only — SPSC). Never blocks on the
  // fast path; a full ring diverts to the lane's mutexed overflow spill,
  // and KEEPS diverting until the consumer empties the spill, so per-
  // producer FIFO order survives the episode.
  void Post(int from, int to, PurgeNote note) {
    Lane& l = lane(from, to);
    if (!l.diverted.load(std::memory_order_acquire)) {
      if (l.ring.TryPush(note)) return;
      l.diverted.store(true, std::memory_order_release);
    }
    std::lock_guard<std::mutex> lock(l.overflow_mu);
    // A drain may have completed while we waited for this mutex (it swaps
    // the spill out, then clears the flag). Appending now would strand the
    // note — drains only read the spill when the flag is set — so retry
    // the ring instead: that drain emptied it, and we are this lane's only
    // producer, so the push cannot lose a race for the space.
    if (!l.diverted.load(std::memory_order_acquire) && l.overflow.empty() &&
        l.ring.TryPush(note)) {
      return;
    }
    l.diverted.store(true, std::memory_order_release);
    l.overflow.push_back(std::move(note));
  }

  // Called by shard `to` (its thread only) at a coherence boundary. Applies
  // every pending note in deterministic order: ascending producer shard,
  // FIFO within each producer. Returns the number of notes applied.
  size_t Drain(int to, const std::function<void(const PurgeNote&)>& apply) {
    size_t n = 0;
    for (int from = 0; from < shards_; ++from) {
      Lane& l = lane(from, to);
      PurgeNote note;
      while (l.ring.TryPop(&note)) {
        apply(note);
        ++n;
      }
      if (l.diverted.load(std::memory_order_acquire)) {
        std::vector<PurgeNote> spilled;
        {
          std::lock_guard<std::mutex> lock(l.overflow_mu);
          spilled.swap(l.overflow);
          // Clearing under the mutex orders the flag after the swap: a
          // producer that sees diverted==false afterwards starts a fresh
          // ring epoch strictly younger than everything just spilled.
          l.diverted.store(false, std::memory_order_release);
        }
        for (PurgeNote& s : spilled) {
          apply(s);
          ++n;
        }
      }
    }
    return n;
  }

  // Upper-bound estimate of notes pending for `to` (racy by nature; exact
  // when producers are quiescent).
  size_t PendingApprox(int to) const {
    size_t n = 0;
    for (int from = 0; from < shards_; ++from) {
      const Lane& l = lane(from, to);
      n += l.ring.SizeApprox();
      if (l.diverted.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(l.overflow_mu);
        n += l.overflow.size();
      }
    }
    return n;
  }

 private:
  // Each lane on its own heap allocation (and the ring's cursors on their
  // own lines) so no two shards' cross-shard traffic false-shares.
  struct Lane {
    explicit Lane(size_t ring_capacity) : ring(ring_capacity) {}
    SpscPurgeRing ring;
    std::atomic<bool> diverted{false};
    mutable std::mutex overflow_mu;
    std::vector<PurgeNote> overflow;
  };

  Lane& lane(int from, int to) {
    return *lanes_[static_cast<size_t>(to) * static_cast<size_t>(shards_) +
                   static_cast<size_t>(from)];
  }
  const Lane& lane(int from, int to) const {
    return *lanes_[static_cast<size_t>(to) * static_cast<size_t>(shards_) +
                   static_cast<size_t>(from)];
  }

  int shards_;
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace speedkit::cache

#endif  // SPEEDKIT_CACHE_PURGE_MAILBOX_H_
