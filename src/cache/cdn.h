// Multi-edge CDN substrate — a (possibly partial) view over the physical
// edge tier.
//
// N shared HTTP caches ("edges"); each client is pinned to one edge by a
// stable hash of its client id, mirroring anycast routing to the nearest
// POP. Purges fan out to every edge — the invalidation pipeline schedules
// the fan-out with per-edge propagation delays, so the CDN itself exposes
// synchronous per-edge purge.
//
// Two construction modes:
//  * `Cdn(num_edges, capacity)` builds a private ShardedEdgeMap and views
//    all of it — the classic single-domain stack.
//  * `Cdn(map, shard, shards)` views only the edges owned by `shard`
//    (physical edge e belongs to shard e % shards) of a map shared with
//    the other shards of a fleet. Edge indices exposed by this class are
//    LOCAL (dense 0..num_edges()-1 over owned edges); the translation to
//    physical slots is internal, and LocalIndexOf() converts a physical
//    index from shard-agnostic config (fault schedules) into the local
//    space.
#ifndef SPEEDKIT_CACHE_CDN_H_
#define SPEEDKIT_CACHE_CDN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "cache/http_cache.h"
#include "cache/sharded_edge_map.h"
#include "common/sim_time.h"

namespace speedkit::cache {

class Cdn {
 public:
  // Full view over a private map. `num_edges` must be >= 1 (the stack
  // validates its config before constructing one); `edge_capacity_bytes`
  // 0 = unbounded per edge.
  Cdn(int num_edges, size_t edge_capacity_bytes);

  // Shard view: edges owned by `shard` out of `shards` coherence domains
  // over a shared physical map. Requires 0 <= shard < shards and
  // map->num_edges() divisible by shards (so every shard views the same
  // number of edges).
  Cdn(std::shared_ptr<ShardedEdgeMap> map, int shard, int shards);

  // Owned (local) edge count.
  int num_edges() const { return static_cast<int>(owned_.size()); }
  // Size of the whole physical tier (== num_edges() for a full view).
  int physical_edges() const { return map_->num_edges(); }

  // The LOCAL index of the edge serving `client_id` (stable hash routing
  // over the PHYSICAL tier). Only meaningful when OwnsClient(client_id).
  int RouteFor(uint64_t client_id) const;

  // Whether this view's shard owns the edge `client_id` routes to — the
  // client-to-shard partition function of the fleet engine.
  bool OwnsClient(uint64_t client_id) const;

  // Local index for a physical edge index, or -1 if another shard owns it.
  int LocalIndexOf(int physical) const {
    if (physical < 0 || physical >= map_->num_edges()) return -1;
    return physical % shards_ == shard_ ? physical / shards_ : -1;
  }

  HttpCache& edge(int i) { return slot(i).cache; }
  const HttpCache& edge(int i) const { return slot(i).cache; }

  // Striped lock for one owned edge; the proxy holds it across a request's
  // edge-cache access, the purge paths take it per delivery. Under the
  // fleet's ownership discipline it is uncontended — it fences the
  // shard-disjointness invariant rather than serializing real sharing.
  std::unique_lock<std::mutex> LockEdge(int i) {
    return std::unique_lock<std::mutex>(slot(i).mu);
  }

  // Edge-node outage toggles, driven by the stack's fault schedule. A
  // down edge serves nothing and loses purges delivered to it; its cache
  // contents survive the outage (a POP reboot, not a wipe).
  void SetEdgeDown(int i, bool down) {
    std::lock_guard<std::mutex> lock(slot(i).mu);
    slot(i).down = down;
  }
  bool EdgeAvailable(int i) const { return !slot(i).down; }

  // Fault accounting. Only the owning shard's thread writes these, so the
  // increments are not locked; cross-shard aggregation happens after the
  // shard threads join.
  //
  // Called by the proxy when a request found its edge down.
  void NoteEdgeReject(int i) { slot(i).fault_stats.down_rejects++; }
  // Called by the invalidation pipeline when a purge is faulted.
  void NotePurgeDropped(int i) { slot(i).fault_stats.purges_dropped++; }
  void NotePurgeDelayed(int i) { slot(i).fault_stats.purges_delayed++; }
  // Called by the pipeline for every purge delivery it schedules, with the
  // delivery's final propagation delay (slow-path stretch included).
  void NotePurgeScheduled(int i, Duration delay) {
    slot(i).fault_stats.purge_delay_us.Add(delay.micros());
  }

  // Purges `key` from one edge; returns true if the edge held it. A purge
  // arriving while the edge is down is lost — the real CDN API would
  // retry; we count it instead so E14 can report delivery loss.
  bool PurgeEdge(int i, std::string_view key) {
    ShardedEdgeMap::EdgeSlot& s = slot(i);
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.down) {
      s.fault_stats.purges_dropped++;
      return false;
    }
    return s.cache.Purge(key);
  }

  // Immediate purge on every OWNED edge (used by baselines without a
  // propagation model). Returns how many held the key.
  int PurgeAll(std::string_view key);

  // Aggregated stats across owned edges.
  HttpCacheStats TotalStats() const;
  const EdgeFaultStats& edge_fault_stats(int i) const {
    return slot(i).fault_stats;
  }
  EdgeFaultStats TotalFaultStats() const;

 private:
  ShardedEdgeMap::EdgeSlot& slot(int local) {
    return map_->slot(owned_[static_cast<size_t>(local)]);
  }
  const ShardedEdgeMap::EdgeSlot& slot(int local) const {
    return map_->slot(owned_[static_cast<size_t>(local)]);
  }

  std::shared_ptr<ShardedEdgeMap> map_;
  int shard_ = 0;
  int shards_ = 1;
  // owned_[local] = physical index; dense and sorted, so iteration order
  // over local indices is deterministic.
  std::vector<int> owned_;
};

}  // namespace speedkit::cache

#endif  // SPEEDKIT_CACHE_CDN_H_
