// Multi-edge CDN substrate.
//
// N shared HTTP caches ("edges"); each client is pinned to one edge by a
// stable hash of its client id, mirroring anycast routing to the nearest
// POP. Purges fan out to every edge — the invalidation pipeline schedules
// the fan-out with per-edge propagation delays, so the CDN itself exposes
// synchronous per-edge purge.
#ifndef SPEEDKIT_CACHE_CDN_H_
#define SPEEDKIT_CACHE_CDN_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "cache/http_cache.h"
#include "common/histogram.h"
#include "common/sim_time.h"

namespace speedkit::cache {

// Per-edge degraded-operation accounting (fault injection, E14).
struct EdgeFaultStats {
  uint64_t down_rejects = 0;    // requests that found the edge down
  uint64_t purges_dropped = 0;  // purge deliveries lost (edge down / faulted)
  uint64_t purges_delayed = 0;  // purge deliveries on the slow path
  // Propagation delay (us) of every purge delivery scheduled to this edge
  // — slow-path deliveries included, in-flight losses not (they never get
  // a delay). Feeds the `edge.purge_delay_us` metric.
  Histogram purge_delay_us;

  EdgeFaultStats& operator+=(const EdgeFaultStats& other) {
    down_rejects += other.down_rejects;
    purges_dropped += other.purges_dropped;
    purges_delayed += other.purges_delayed;
    purge_delay_us.Merge(other.purge_delay_us);
    return *this;
  }
};

class Cdn {
 public:
  // `edge_capacity_bytes` 0 = unbounded per edge.
  Cdn(int num_edges, size_t edge_capacity_bytes);

  int num_edges() const { return static_cast<int>(edges_.size()); }

  // The edge serving `client_id` (stable hash routing).
  int RouteFor(uint64_t client_id) const;

  HttpCache& edge(int i) { return *edges_[i]; }
  const HttpCache& edge(int i) const { return *edges_[i]; }

  // Edge-node outage toggles, driven by the stack's fault schedule. A
  // down edge serves nothing and loses purges delivered to it; its cache
  // contents survive the outage (a POP reboot, not a wipe).
  void SetEdgeDown(int i, bool down) { down_[static_cast<size_t>(i)] = down; }
  bool EdgeAvailable(int i) const { return !down_[static_cast<size_t>(i)]; }

  // Called by the proxy when a request found its edge down.
  void NoteEdgeReject(int i) { fault_stats_[static_cast<size_t>(i)].down_rejects++; }
  // Called by the invalidation pipeline when a purge is faulted.
  void NotePurgeDropped(int i) {
    fault_stats_[static_cast<size_t>(i)].purges_dropped++;
  }
  void NotePurgeDelayed(int i) {
    fault_stats_[static_cast<size_t>(i)].purges_delayed++;
  }
  // Called by the pipeline for every purge delivery it schedules, with the
  // delivery's final propagation delay (slow-path stretch included).
  void NotePurgeScheduled(int i, Duration delay) {
    fault_stats_[static_cast<size_t>(i)].purge_delay_us.Add(delay.micros());
  }

  // Purges `key` from one edge; returns true if the edge held it. A purge
  // arriving while the edge is down is lost — the real CDN API would
  // retry; we count it instead so E14 can report delivery loss.
  bool PurgeEdge(int i, std::string_view key) {
    if (down_[static_cast<size_t>(i)]) {
      NotePurgeDropped(i);
      return false;
    }
    return edges_[i]->Purge(key);
  }

  // Immediate purge everywhere (used by baselines without a propagation
  // model). Returns how many edges held the key.
  int PurgeAll(std::string_view key);

  // Aggregated stats across edges.
  HttpCacheStats TotalStats() const;
  const EdgeFaultStats& edge_fault_stats(int i) const {
    return fault_stats_[static_cast<size_t>(i)];
  }
  EdgeFaultStats TotalFaultStats() const;

 private:
  std::vector<std::unique_ptr<HttpCache>> edges_;
  std::vector<bool> down_;
  std::vector<EdgeFaultStats> fault_stats_;
};

}  // namespace speedkit::cache

#endif  // SPEEDKIT_CACHE_CDN_H_
