// Multi-edge CDN substrate — a (possibly partial) view over the physical
// edge tier.
//
// N shared HTTP caches ("edges"); each client is pinned to one edge by a
// stable hash of its client id, mirroring anycast routing to the nearest
// POP. Purges fan out to every edge — the invalidation pipeline schedules
// the fan-out with per-edge propagation delays, so the CDN itself exposes
// synchronous per-edge purge.
//
// Two construction modes:
//  * `Cdn(num_edges, capacity)` builds a private ShardedEdgeMap and views
//    all of it — the classic single-domain stack.
//  * `Cdn(map, shard, shards)` views only the edges owned by `shard`
//    (physical edge e belongs to shard e % shards) of a map shared with
//    the other shards of a fleet. Edge indices exposed by this class are
//    LOCAL (dense 0..num_edges()-1 over owned edges); the translation to
//    physical slots is internal, and LocalIndexOf() converts a physical
//    index from shard-agnostic config (fault schedules) into the local
//    space.
//
// Concurrency model: edge ownership is shard-private, so every owned-edge
// accessor here is LOCK-FREE — the only thread that may call it is the
// owning shard's, a discipline debug builds assert on each access
// (ShardedEdgeMap::owned_slot). Per-edge fault counters/histograms live in
// a cache-line-aligned accumulator inside this view (one per shard), never
// in the shared map, and are merged only after the shard threads join.
// Purges aimed at edges another shard owns go through the SPSC mailbox
// grid (PostRemotePurge) and take effect when the owner drains at its next
// coherence boundary (DrainRemotePurges) — cross-shard coordination is
// batched at consistency boundaries, never taken per operation.
#ifndef SPEEDKIT_CACHE_CDN_H_
#define SPEEDKIT_CACHE_CDN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/http_cache.h"
#include "cache/purge_mailbox.h"
#include "cache/sharded_edge_map.h"
#include "common/hash.h"
#include "common/sim_time.h"

namespace speedkit::cache {

// How the edge tier treats concurrent misses for the same key while an
// origin fetch is already in flight (the sim-side adoption of
// net/single_flight.h — one concept, two execution substrates).
//
//   kInstant   Legacy model: an origin response is visible at the edge at
//              fetch-START sim time, so a concurrent miss never exists and
//              thundering herds are structurally invisible. Default —
//              every pre-existing fingerprint stays bit-identical.
//   kHerd      Realistic window, no collapsing: the leader's response
//              becomes visible only at fetch COMPLETION (start + origin
//              round trip); arrivals inside the window each go to the
//              origin themselves. The honest baseline a real edge without
//              request collapsing would show.
//   kCoalesce  Window + single-flight: arrivals inside the window join the
//              leader's flight, paying the remaining window plus their own
//              client<->edge leg, and the origin sees ONE fetch.
enum class OriginFlightMode { kInstant, kHerd, kCoalesce };

std::string_view OriginFlightModeName(OriginFlightMode mode);

class Cdn {
 public:
  // Full view over a private map. `num_edges` must be >= 1 (the stack
  // validates its config before constructing one); `edge_capacity_bytes`
  // 0 = unbounded per edge.
  Cdn(int num_edges, size_t edge_capacity_bytes);

  // Shard view: edges owned by `shard` out of `shards` coherence domains
  // over a shared physical map. Requires 0 <= shard < shards and
  // map->num_edges() divisible by shards (so every shard views the same
  // number of edges).
  Cdn(std::shared_ptr<ShardedEdgeMap> map, int shard, int shards);

  // Owned (local) edge count.
  int num_edges() const { return static_cast<int>(owned_.size()); }
  // Size of the whole physical tier (== num_edges() for a full view).
  int physical_edges() const { return map_->num_edges(); }

  // The LOCAL index of the edge serving `client_id` (stable hash routing
  // over the PHYSICAL tier). Only meaningful when OwnsClient(client_id).
  int RouteFor(uint64_t client_id) const;

  // Whether this view's shard owns the edge `client_id` routes to — the
  // client-to-shard partition function of the fleet engine.
  bool OwnsClient(uint64_t client_id) const;

  // Local index for a physical edge index, or -1 if another shard owns it.
  int LocalIndexOf(int physical) const {
    if (physical < 0 || physical >= map_->num_edges()) return -1;
    return physical % shards_ == shard_ ? physical / shards_ : -1;
  }
  // Physical index of an owned local edge.
  int PhysicalIndexOf(int local) const {
    return owned_[static_cast<size_t>(local)];
  }

  // Lock-free owned access: only the owning shard's thread may touch an
  // edge, which debug builds assert per access.
  HttpCache& edge(int i) { return slot(i).cache; }
  const HttpCache& edge(int i) const { return slot(i).cache; }

  // Edge-node outage toggles, driven by the stack's fault schedule (each
  // shard mirrors only its own edges' windows into its own event queue, so
  // the flag is owner-written and owner-read). A down edge serves nothing
  // and loses purges delivered to it; its cache contents survive the
  // outage (a POP reboot, not a wipe).
  void SetEdgeDown(int i, bool down) { slot(i).down = down; }
  bool EdgeAvailable(int i) const { return !slot(i).down; }

  // Fault accounting: increments go to this view's shard-local aligned
  // accumulator, never into the shared map — no cross-shard cache-line
  // traffic; aggregation happens after the shard threads join.
  //
  // Called by the proxy when a request found its edge down.
  void NoteEdgeReject(int i) { fault_acc(i).down_rejects++; }
  // Called by the invalidation pipeline when a purge is faulted.
  void NotePurgeDropped(int i) { fault_acc(i).purges_dropped++; }
  void NotePurgeDelayed(int i) { fault_acc(i).purges_delayed++; }
  // Called by the pipeline for every purge delivery it schedules, with the
  // delivery's final propagation delay (slow-path stretch included).
  void NotePurgeScheduled(int i, Duration delay) {
    fault_acc(i).purge_delay_us.Add(delay.micros());
  }

  // Purges `key` from one OWNED edge; returns true if the edge held it. A
  // purge arriving while the edge is down is lost — the real CDN API would
  // retry; we count it instead so E14 can report delivery loss.
  bool PurgeEdge(int i, std::string_view key) {
    ShardedEdgeMap::EdgeSlot& s = slot(i);
    if (s.down) {
      fault_acc(i).purges_dropped++;
      return false;
    }
    return s.cache.Purge(key);
  }

  // Immediate purge on every OWNED edge (used by baselines without a
  // propagation model). Returns how many held the key.
  int PurgeAll(std::string_view key);

  // -- cross-shard purges (the mailbox path) ---------------------------
  // Posts a purge for ANY physical edge: the note lands in the owning
  // shard's SPSC mailbox and takes effect when that shard drains at its
  // next coherence boundary. Callable for owned edges too (self lane) —
  // useful for drivers that don't want to resolve ownership.
  void PostRemotePurge(int physical, std::string key, SimTime now);

  // Drains every purge note addressed to this shard, applying each to its
  // owned slot (a down edge loses the purge, counted as dropped). Called
  // by the stack at each Δ coherence boundary; deterministic order —
  // ascending producer shard, FIFO within one. Returns notes applied.
  size_t DrainRemotePurges(SimTime now);

  // Mailbox-path accounting (shard-local, like the fault stats).
  uint64_t remote_purges_posted() const { return faults_->posted; }
  uint64_t remote_purges_drained() const { return faults_->drained; }
  uint64_t remote_purges_effective() const { return faults_->effective; }

  // -- origin flight windows (single-flight coalescing) -----------------
  // Registers an origin fetch for `key` at owned edge `i`, completing at
  // `ready_at`. No-op while an unexpired flight for the key is already
  // open (herd fetches inside the window never extend it; after expiry the
  // next miss leads a fresh flight). Shard-local like the edge itself.
  void BeginFlight(int i, const std::string& key, SimTime now,
                   SimTime ready_at);

  // Completion time of the open flight for `key` at edge `i`, or nullopt
  // when none is in progress at `now`. Expired entries are reaped lazily
  // on access (and wholesale once the table grows past a threshold).
  std::optional<SimTime> OpenFlightReadyAt(int i, const std::string& key,
                                           SimTime now);

  // Called by the proxy for each arrival inside an open window: a join
  // (kCoalesce — served the leader's response) or a herd fetch (kHerd —
  // went to the origin anyway).
  void NoteFlightJoin() { faults_->flight_joins++; }
  void NoteHerdFetch() { faults_->herd_fetches++; }

  uint64_t flights_started() const { return faults_->flights_started; }
  uint64_t flight_joins() const { return faults_->flight_joins; }
  uint64_t herd_fetches() const { return faults_->herd_fetches; }

  // Aggregated stats across owned edges.
  HttpCacheStats TotalStats() const;
  const EdgeFaultStats& edge_fault_stats(int i) const {
    return faults_->per_edge[static_cast<size_t>(i)];
  }
  EdgeFaultStats TotalFaultStats() const;

 private:
  // This shard's fault/mailbox counters, on their own cache lines: the
  // struct head is 64-aligned via aligned new, so two shards' accumulators
  // never share a line the way slot-resident counters used to.
  struct alignas(kCacheLineBytes) ShardLocalStats {
    std::vector<EdgeFaultStats> per_edge;  // local index
    uint64_t posted = 0;
    uint64_t drained = 0;
    uint64_t effective = 0;
    // Origin flight-window accounting (modes kHerd/kCoalesce only).
    uint64_t flights_started = 0;
    uint64_t flight_joins = 0;
    uint64_t herd_fetches = 0;
  };

  ShardedEdgeMap::EdgeSlot& slot(int local) {
    return map_->owned_slot(owned_[static_cast<size_t>(local)], shard_);
  }
  const ShardedEdgeMap::EdgeSlot& slot(int local) const {
    return map_->owned_slot(owned_[static_cast<size_t>(local)], shard_);
  }
  EdgeFaultStats& fault_acc(int local) {
    return faults_->per_edge[static_cast<size_t>(local)];
  }

  std::shared_ptr<ShardedEdgeMap> map_;
  int shard_ = 0;
  int shards_ = 1;
  // owned_[local] = physical index; dense and sorted, so iteration order
  // over local indices is deterministic.
  std::vector<int> owned_;
  std::unique_ptr<ShardLocalStats> faults_;
  // Per-owned-edge open flights: key -> completion time. Shard-private
  // like the slot itself; sized lazily on first BeginFlight so kInstant
  // stacks carry no allocation. Expired entries are reaped lazily.
  std::vector<std::unordered_map<std::string, SimTime, StringHash,
                                 std::equal_to<>>>
      flights_;
};

}  // namespace speedkit::cache

#endif  // SPEEDKIT_CACHE_CDN_H_
