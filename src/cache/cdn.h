// Multi-edge CDN substrate.
//
// N shared HTTP caches ("edges"); each client is pinned to one edge by a
// stable hash of its client id, mirroring anycast routing to the nearest
// POP. Purges fan out to every edge — the invalidation pipeline schedules
// the fan-out with per-edge propagation delays, so the CDN itself exposes
// synchronous per-edge purge.
#ifndef SPEEDKIT_CACHE_CDN_H_
#define SPEEDKIT_CACHE_CDN_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "cache/http_cache.h"

namespace speedkit::cache {

class Cdn {
 public:
  // `edge_capacity_bytes` 0 = unbounded per edge.
  Cdn(int num_edges, size_t edge_capacity_bytes);

  int num_edges() const { return static_cast<int>(edges_.size()); }

  // The edge serving `client_id` (stable hash routing).
  int RouteFor(uint64_t client_id) const;

  HttpCache& edge(int i) { return *edges_[i]; }
  const HttpCache& edge(int i) const { return *edges_[i]; }

  // Purges `key` from one edge; returns true if the edge held it.
  bool PurgeEdge(int i, std::string_view key) {
    return edges_[i]->Purge(key);
  }

  // Immediate purge everywhere (used by baselines without a propagation
  // model). Returns how many edges held the key.
  int PurgeAll(std::string_view key);

  // Aggregated stats across edges.
  HttpCacheStats TotalStats() const;

 private:
  std::vector<std::unique_ptr<HttpCache>> edges_;
};

}  // namespace speedkit::cache

#endif  // SPEEDKIT_CACHE_CDN_H_
