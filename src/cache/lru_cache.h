// Byte-budgeted LRU map, string-keyed.
//
// The eviction unit is whole entries; the budget is the sum of a
// caller-supplied size function over resident values (so an HTTP cache can
// charge body bytes while a fragment cache charges rendered-fragment
// bytes). Recency is a doubly-linked list threaded through the hash map —
// O(1) touch, insert, evict.
#ifndef SPEEDKIT_CACHE_LRU_CACHE_H_
#define SPEEDKIT_CACHE_LRU_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/hash.h"

namespace speedkit::cache {

// Result of LruCache::Put. An oversized value (larger than the whole
// budget) is never admitted — and because storing is also an invalidation
// signal (the caller has a newer version than whatever is resident), the
// old resident entry is evicted rather than left to serve stale data.
enum class PutOutcome {
  kAdmitted,
  kRejectedOversized,  // value dropped; any resident entry evicted
};

template <typename Value>
class LruCache {
 public:
  using SizeFn = std::function<size_t(const Value&)>;

  // `capacity_bytes` of 0 means unbounded (useful in protocol unit tests).
  explicit LruCache(size_t capacity_bytes,
                    SizeFn size_fn = [](const Value&) { return size_t{1}; })
      : capacity_bytes_(capacity_bytes), size_fn_(std::move(size_fn)) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;
  // Movable (list iterators survive a list move, so index_ stays valid) —
  // lets owners swap in a fresh cache to actually release bucket/node
  // memory, which Clear() does not.
  LruCache(LruCache&&) = default;
  LruCache& operator=(LruCache&&) = default;

  // Returns the resident value and marks it most-recently-used.
  // Heterogeneous index lookup: the string_view key is hashed and compared
  // in place, no temporary std::string per probe.
  Value* Get(std::string_view key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->value;
  }

  // Lookup without touching recency (metrics probes).
  const Value* Peek(std::string_view key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->value;
  }

  // Inserts or replaces; evicts LRU entries until within budget. An entry
  // larger than the whole budget is not admitted (see PutOutcome) — the
  // caller decides whether a rejection needs surfacing (an HTTP cache
  // counts it as a store reject so hit-rate accounting stays truthful).
  PutOutcome Put(std::string_view key, Value value) {
    size_t value_bytes = size_fn_(value);
    if (capacity_bytes_ != 0 && value_bytes > capacity_bytes_) {
      if (Erase(key)) ++evictions_;  // capacity pushed out the resident
      ++oversized_rejections_;
      return PutOutcome::kRejectedOversized;
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
      used_bytes_ -= size_fn_(it->second->value);
      it->second->value = std::move(value);
      used_bytes_ += value_bytes;
      order_.splice(order_.begin(), order_, it->second);
    } else {
      order_.push_front(Node{std::string(key), std::move(value)});
      index_[order_.front().key] = order_.begin();
      used_bytes_ += value_bytes;
    }
    EvictToBudget();
    return PutOutcome::kAdmitted;
  }

  bool Erase(std::string_view key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    used_bytes_ -= size_fn_(it->second->value);
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void Clear() {
    order_.clear();
    index_.clear();
    used_bytes_ = 0;
  }

  // Removes entries matching `pred`; returns how many were removed.
  size_t EraseIf(const std::function<bool(const std::string&, const Value&)>& pred) {
    size_t removed = 0;
    for (auto it = order_.begin(); it != order_.end();) {
      if (pred(it->key, it->value)) {
        used_bytes_ -= size_fn_(it->value);
        index_.erase(it->key);
        it = order_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  // Visits entries from least- to most-recently-used. Re-inserting in
  // visit order via Put reconstructs the exact recency chain — the
  // browser-cache freeze/thaw codec depends on this.
  template <typename Fn>  // Fn(const std::string& key, const Value&)
  void ForEachLruToMru(Fn fn) const {
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      fn(it->key, it->value);
    }
  }

  size_t size() const { return index_.size(); }
  size_t used_bytes() const { return used_bytes_; }
  size_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t oversized_rejections() const { return oversized_rejections_; }

  // Thaw-codec hook: a rehydrated cache must report the eviction history
  // of the cache it was frozen from, not a fresh zero.
  void RestoreCounters(uint64_t evictions, uint64_t oversized_rejections) {
    evictions_ = evictions;
    oversized_rejections_ = oversized_rejections;
  }

 private:
  struct Node {
    std::string key;
    Value value;
  };

  void EvictToBudget() {
    if (capacity_bytes_ == 0) return;
    while (used_bytes_ > capacity_bytes_ && !order_.empty()) {
      Node& victim = order_.back();
      used_bytes_ -= size_fn_(victim.value);
      index_.erase(victim.key);
      order_.pop_back();
      ++evictions_;
    }
  }

  size_t capacity_bytes_;
  SizeFn size_fn_;
  std::list<Node> order_;  // front = most recent
  std::unordered_map<std::string, typename std::list<Node>::iterator,
                     StringHash, std::equal_to<>>
      index_;
  size_t used_bytes_ = 0;
  uint64_t evictions_ = 0;
  uint64_t oversized_rejections_ = 0;
};

}  // namespace speedkit::cache

#endif  // SPEEDKIT_CACHE_LRU_CACHE_H_
