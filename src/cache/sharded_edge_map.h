// The physical CDN edge tier, shared across fleet shards.
//
// One slot per edge POP: the HTTP cache and the outage flag. The sharded
// execution engine builds ONE of these and hands every shard stack a `Cdn`
// view onto it; edge e is owned by shard (e % shards), and because clients
// pin to edges by stable hash, a shard only ever touches its own slots on
// the request path. Ownership is shard-PRIVATE: owned access takes no lock
// (there is nothing to serialize — accesses are disjoint by construction),
// and debug builds assert the discipline on every owned-path access via
// `owned_slot()`. Each slot is cache-line aligned so adjacent slots —
// which belong to DIFFERENT shards under the e % shards interleaving —
// never false-share a line.
//
// The one real cross-shard flow, purges aimed at another shard's edges,
// rides the SPSC mailbox grid (cache/purge_mailbox.h) and is drained in
// batches at coherence boundaries instead of locking remote slots inline.
#ifndef SPEEDKIT_CACHE_SHARDED_EDGE_MAP_H_
#define SPEEDKIT_CACHE_SHARDED_EDGE_MAP_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "cache/http_cache.h"
#include "cache/purge_mailbox.h"
#include "common/histogram.h"
#include "common/sim_time.h"

namespace speedkit::cache {

// Per-edge degraded-operation accounting (fault injection, E14). Lives in
// the owning shard's Cdn view (cache-line-aligned, shard-local — never in
// the shared map), merged across shards only after the shard threads join.
struct EdgeFaultStats {
  uint64_t down_rejects = 0;    // requests that found the edge down
  uint64_t purges_dropped = 0;  // purge deliveries lost (edge down / faulted)
  uint64_t purges_delayed = 0;  // purge deliveries on the slow path
  // Propagation delay (us) of every purge delivery scheduled to this edge
  // — slow-path deliveries included, in-flight losses not (they never get
  // a delay). Feeds the `edge.purge_delay_us` metric.
  Histogram purge_delay_us;

  EdgeFaultStats& operator+=(const EdgeFaultStats& other) {
    down_rejects += other.down_rejects;
    purges_dropped += other.purges_dropped;
    purges_delayed += other.purges_delayed;
    purge_delay_us.Merge(other.purge_delay_us);
    return *this;
  }
};

class ShardedEdgeMap {
 public:
  // Cache-line aligned so a slot never straddles a line with its neighbor
  // (owned by a different shard). No mutex: owned access is lock-free; the
  // ownership discipline is asserted in debug builds, and cross-shard
  // purge traffic goes through the mailbox grid instead of this slot.
  struct alignas(kCacheLineBytes) EdgeSlot {
    explicit EdgeSlot(size_t capacity_bytes)
        : cache(/*shared=*/true, capacity_bytes) {}

    HttpCache cache;
    // Outage flag, toggled and read only by the owning shard (fault
    // windows are mirrored per shard in the shard's own event queue).
    bool down = false;
  };

  // `edge_capacity_bytes` 0 = unbounded per edge.
  ShardedEdgeMap(int num_edges, size_t edge_capacity_bytes) {
    slots_.reserve(static_cast<size_t>(num_edges));
    for (int i = 0; i < num_edges; ++i) {
      slots_.push_back(std::make_unique<EdgeSlot>(edge_capacity_bytes));
    }
  }

  int num_edges() const { return static_cast<int>(slots_.size()); }

  // Undiscriminated access — construction, post-join aggregation, tests.
  // Request paths go through owned_slot() so debug builds can catch a
  // cross-shard access.
  EdgeSlot& slot(int physical) { return *slots_[static_cast<size_t>(physical)]; }
  const EdgeSlot& slot(int physical) const {
    return *slots_[static_cast<size_t>(physical)];
  }

  // Declares the ownership partition (edge e belongs to shard e % shards)
  // and sizes the mailbox grid. Idempotent; every view of one map must
  // declare the same partition. Called by Cdn construction before any
  // shard thread starts, so the plain int needs no synchronization.
  void BindOwnership(int shards) {
    assert(shards >= 1);
    assert((owner_shards_ == 1 || owner_shards_ == shards) &&
           "conflicting ownership partitions over one edge map");
    owner_shards_ = shards;
    if (mail_ == nullptr || mail_->shards() != shards) {
      mail_ = std::make_unique<PurgeMailboxGrid>(shards);
    }
  }
  int ownership_shards() const { return owner_shards_; }
  int OwnerOf(int physical) const { return physical % owner_shards_; }

  // Owned access: the lock-free request path. In debug builds, aborts when
  // `shard` is not the owner of `physical` under the bound partition —
  // the runtime fence that replaced the per-slot striped locks.
  EdgeSlot& owned_slot(int physical, int shard) {
    assert(OwnerOf(physical) == shard &&
           "cross-shard edge access: slot is owned by another shard");
    (void)shard;
    return *slots_[static_cast<size_t>(physical)];
  }
  const EdgeSlot& owned_slot(int physical, int shard) const {
    assert(OwnerOf(physical) == shard &&
           "cross-shard edge access: slot is owned by another shard");
    (void)shard;
    return *slots_[static_cast<size_t>(physical)];
  }

  // The cross-shard purge mailboxes (created by BindOwnership; a fresh map
  // starts with the trivial single-owner grid).
  PurgeMailboxGrid& mailboxes() {
    if (mail_ == nullptr) mail_ = std::make_unique<PurgeMailboxGrid>(1);
    return *mail_;
  }

 private:
  // unique_ptr slots: slot addresses must stay stable while shards hold
  // references, and aligned new gives each alignas(64) slot its own lines.
  std::vector<std::unique_ptr<EdgeSlot>> slots_;
  int owner_shards_ = 1;
  std::unique_ptr<PurgeMailboxGrid> mail_;
};

}  // namespace speedkit::cache

#endif  // SPEEDKIT_CACHE_SHARDED_EDGE_MAP_H_
