// The physical CDN edge tier, shared across fleet shards.
//
// One slot per edge POP: the HTTP cache, the outage flag, the fault
// accounting, and a striped lock. The sharded execution engine builds ONE
// of these and hands every shard stack a `Cdn` view onto it; edge e is
// owned by shard (e % shards), and because clients pin to edges by stable
// hash, a shard only ever touches its own edges — the locks are a
// runtime fence for that ownership discipline (and what TSan observes),
// not a serialization point: disjoint ownership is what makes merged
// results independent of thread interleaving.
#ifndef SPEEDKIT_CACHE_SHARDED_EDGE_MAP_H_
#define SPEEDKIT_CACHE_SHARDED_EDGE_MAP_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cache/http_cache.h"
#include "common/histogram.h"
#include "common/sim_time.h"

namespace speedkit::cache {

// Per-edge degraded-operation accounting (fault injection, E14).
struct EdgeFaultStats {
  uint64_t down_rejects = 0;    // requests that found the edge down
  uint64_t purges_dropped = 0;  // purge deliveries lost (edge down / faulted)
  uint64_t purges_delayed = 0;  // purge deliveries on the slow path
  // Propagation delay (us) of every purge delivery scheduled to this edge
  // — slow-path deliveries included, in-flight losses not (they never get
  // a delay). Feeds the `edge.purge_delay_us` metric.
  Histogram purge_delay_us;

  EdgeFaultStats& operator+=(const EdgeFaultStats& other) {
    down_rejects += other.down_rejects;
    purges_dropped += other.purges_dropped;
    purges_delayed += other.purges_delayed;
    purge_delay_us.Merge(other.purge_delay_us);
    return *this;
  }
};

class ShardedEdgeMap {
 public:
  struct EdgeSlot {
    explicit EdgeSlot(size_t capacity_bytes)
        : cache(/*shared=*/true, capacity_bytes) {}

    HttpCache cache;
    bool down = false;
    EdgeFaultStats fault_stats;
    // Striped lock for this edge's slot. Held by the owning shard around
    // every request-path and purge-path access.
    std::mutex mu;
  };

  // `edge_capacity_bytes` 0 = unbounded per edge.
  ShardedEdgeMap(int num_edges, size_t edge_capacity_bytes) {
    slots_.reserve(static_cast<size_t>(num_edges));
    for (int i = 0; i < num_edges; ++i) {
      slots_.push_back(std::make_unique<EdgeSlot>(edge_capacity_bytes));
    }
  }

  int num_edges() const { return static_cast<int>(slots_.size()); }
  EdgeSlot& slot(int physical) { return *slots_[static_cast<size_t>(physical)]; }
  const EdgeSlot& slot(int physical) const {
    return *slots_[static_cast<size_t>(physical)];
  }

 private:
  // unique_ptr slots: a mutex is neither movable nor copyable, and slot
  // addresses must stay stable while shards hold references.
  std::vector<std::unique_ptr<EdgeSlot>> slots_;
};

}  // namespace speedkit::cache

#endif  // SPEEDKIT_CACHE_SHARDED_EDGE_MAP_H_
