#include "cache/cdn.h"

#include <cassert>
#include <iterator>
#include <utility>

#include "common/hash.h"

namespace speedkit::cache {

std::string_view OriginFlightModeName(OriginFlightMode mode) {
  switch (mode) {
    case OriginFlightMode::kInstant: return "instant";
    case OriginFlightMode::kHerd: return "herd";
    case OriginFlightMode::kCoalesce: return "coalesce";
  }
  return "unknown";
}

Cdn::Cdn(int num_edges, size_t edge_capacity_bytes)
    : map_(std::make_shared<ShardedEdgeMap>(num_edges, edge_capacity_bytes)),
      faults_(std::make_unique<ShardLocalStats>()) {
  assert(num_edges >= 1 && "Cdn requires at least one edge");
  map_->BindOwnership(1);
  owned_.reserve(static_cast<size_t>(num_edges));
  for (int i = 0; i < num_edges; ++i) owned_.push_back(i);
  faults_->per_edge.resize(owned_.size());
}

Cdn::Cdn(std::shared_ptr<ShardedEdgeMap> map, int shard, int shards)
    : map_(std::move(map)),
      shard_(shard),
      shards_(shards),
      faults_(std::make_unique<ShardLocalStats>()) {
  assert(shards >= 1 && shard >= 0 && shard < shards);
  assert(map_->num_edges() % shards == 0 &&
         "edge count must divide evenly across shards");
  map_->BindOwnership(shards);
  owned_.reserve(static_cast<size_t>(map_->num_edges() / shards));
  for (int e = shard; e < map_->num_edges(); e += shards) owned_.push_back(e);
  faults_->per_edge.resize(owned_.size());
}

int Cdn::RouteFor(uint64_t client_id) const {
  // Route over the PHYSICAL tier so the client->edge pinning is identical
  // at every shard count, then translate to this view's local space.
  int physical =
      static_cast<int>(Mix64(client_id) % static_cast<uint64_t>(map_->num_edges()));
  return physical / shards_;
}

bool Cdn::OwnsClient(uint64_t client_id) const {
  int physical =
      static_cast<int>(Mix64(client_id) % static_cast<uint64_t>(map_->num_edges()));
  return physical % shards_ == shard_;
}

int Cdn::PurgeAll(std::string_view key) {
  int purged = 0;
  for (int i = 0; i < num_edges(); ++i) {
    if (slot(i).cache.Purge(key)) ++purged;
  }
  return purged;
}

void Cdn::PostRemotePurge(int physical, std::string key, SimTime now) {
  assert(physical >= 0 && physical < map_->num_edges());
  faults_->posted++;
  map_->mailboxes().Post(shard_, map_->OwnerOf(physical),
                         PurgeNote{physical, now, std::move(key)});
}

size_t Cdn::DrainRemotePurges(SimTime /*now*/) {
  return map_->mailboxes().Drain(shard_, [this](const PurgeNote& note) {
    int local = LocalIndexOf(note.edge);
    assert(local >= 0 && "mailbox delivered a note for an unowned edge");
    faults_->drained++;
    if (PurgeEdge(local, note.key)) faults_->effective++;
  });
}

void Cdn::BeginFlight(int i, const std::string& key, SimTime now,
                      SimTime ready_at) {
  if (flights_.empty()) flights_.resize(owned_.size());
  auto& table = flights_[static_cast<size_t>(i)];
  // Keys whose flights landed but were never looked up again would pin the
  // table forever; sweep them wholesale before it gets large.
  if (table.size() >= 4096) {
    for (auto it = table.begin(); it != table.end();) {
      it = it->second <= now ? table.erase(it) : std::next(it);
    }
  }
  auto it = table.find(key);
  if (it != table.end()) {
    if (it->second > now) return;  // open flight: herd fetches never extend
    it->second = ready_at;         // expired: this fetch leads a new flight
  } else {
    table.emplace(key, ready_at);
  }
  faults_->flights_started++;
}

std::optional<SimTime> Cdn::OpenFlightReadyAt(int i, const std::string& key,
                                              SimTime now) {
  if (flights_.empty()) return std::nullopt;
  auto& table = flights_[static_cast<size_t>(i)];
  auto it = table.find(key);
  if (it == table.end()) return std::nullopt;
  if (it->second <= now) {
    table.erase(it);  // lazy reap: the flight landed before this arrival
    return std::nullopt;
  }
  return it->second;
}

EdgeFaultStats Cdn::TotalFaultStats() const {
  EdgeFaultStats total;
  for (const EdgeFaultStats& s : faults_->per_edge) total += s;
  return total;
}

HttpCacheStats Cdn::TotalStats() const {
  HttpCacheStats total;
  for (int i = 0; i < num_edges(); ++i) {
    const HttpCacheStats& s = slot(i).cache.stats();
    total.fresh_hits += s.fresh_hits;
    total.stale_hits += s.stale_hits;
    total.misses += s.misses;
    total.stores += s.stores;
    total.store_rejects += s.store_rejects;
    total.refreshes += s.refreshes;
    total.purges += s.purges;
  }
  return total;
}

}  // namespace speedkit::cache
