#include "cache/cdn.h"

#include <cassert>

#include "common/hash.h"

namespace speedkit::cache {

Cdn::Cdn(int num_edges, size_t edge_capacity_bytes)
    : map_(std::make_shared<ShardedEdgeMap>(num_edges, edge_capacity_bytes)) {
  assert(num_edges >= 1 && "Cdn requires at least one edge");
  owned_.reserve(static_cast<size_t>(num_edges));
  for (int i = 0; i < num_edges; ++i) owned_.push_back(i);
}

Cdn::Cdn(std::shared_ptr<ShardedEdgeMap> map, int shard, int shards)
    : map_(std::move(map)), shard_(shard), shards_(shards) {
  assert(shards >= 1 && shard >= 0 && shard < shards);
  assert(map_->num_edges() % shards == 0 &&
         "edge count must divide evenly across shards");
  owned_.reserve(static_cast<size_t>(map_->num_edges() / shards));
  for (int e = shard; e < map_->num_edges(); e += shards) owned_.push_back(e);
}

int Cdn::RouteFor(uint64_t client_id) const {
  // Route over the PHYSICAL tier so the client->edge pinning is identical
  // at every shard count, then translate to this view's local space.
  int physical =
      static_cast<int>(Mix64(client_id) % static_cast<uint64_t>(map_->num_edges()));
  return physical / shards_;
}

bool Cdn::OwnsClient(uint64_t client_id) const {
  int physical =
      static_cast<int>(Mix64(client_id) % static_cast<uint64_t>(map_->num_edges()));
  return physical % shards_ == shard_;
}

int Cdn::PurgeAll(std::string_view key) {
  int purged = 0;
  for (int i = 0; i < num_edges(); ++i) {
    ShardedEdgeMap::EdgeSlot& s = slot(i);
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.cache.Purge(key)) ++purged;
  }
  return purged;
}

EdgeFaultStats Cdn::TotalFaultStats() const {
  EdgeFaultStats total;
  for (int i = 0; i < num_edges(); ++i) total += slot(i).fault_stats;
  return total;
}

HttpCacheStats Cdn::TotalStats() const {
  HttpCacheStats total;
  for (int i = 0; i < num_edges(); ++i) {
    const HttpCacheStats& s = slot(i).cache.stats();
    total.fresh_hits += s.fresh_hits;
    total.stale_hits += s.stale_hits;
    total.misses += s.misses;
    total.stores += s.stores;
    total.store_rejects += s.store_rejects;
    total.refreshes += s.refreshes;
    total.purges += s.purges;
  }
  return total;
}

}  // namespace speedkit::cache
