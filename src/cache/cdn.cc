#include "cache/cdn.h"

#include <algorithm>

#include "common/hash.h"

namespace speedkit::cache {

Cdn::Cdn(int num_edges, size_t edge_capacity_bytes) {
  num_edges = std::max(1, num_edges);
  edges_.reserve(static_cast<size_t>(num_edges));
  for (int i = 0; i < num_edges; ++i) {
    edges_.push_back(
        std::make_unique<HttpCache>(/*shared=*/true, edge_capacity_bytes));
  }
  down_.assign(edges_.size(), false);
  fault_stats_.assign(edges_.size(), EdgeFaultStats{});
}

int Cdn::RouteFor(uint64_t client_id) const {
  return static_cast<int>(Mix64(client_id) % edges_.size());
}

int Cdn::PurgeAll(std::string_view key) {
  int purged = 0;
  for (auto& edge : edges_) {
    if (edge->Purge(key)) ++purged;
  }
  return purged;
}

EdgeFaultStats Cdn::TotalFaultStats() const {
  EdgeFaultStats total;
  for (const EdgeFaultStats& s : fault_stats_) total += s;
  return total;
}

HttpCacheStats Cdn::TotalStats() const {
  HttpCacheStats total;
  for (const auto& edge : edges_) {
    const HttpCacheStats& s = edge->stats();
    total.fresh_hits += s.fresh_hits;
    total.stale_hits += s.stale_hits;
    total.misses += s.misses;
    total.stores += s.stores;
    total.store_rejects += s.store_rejects;
    total.refreshes += s.refreshes;
    total.purges += s.purges;
  }
  return total;
}

}  // namespace speedkit::cache
