#!/usr/bin/env python3
"""Docs-consistency check: src/obs/metric_names.h <-> docs/METRICS.md.

The observability layer's contract is that every metric it can emit is
documented, and that the docs never describe metrics that do not exist.
Both directions are checked:

  1. every quoted string literal in src/obs/metric_names.h (the single
     source of truth for emitted names — see that header's comment) must
     appear, backticked, somewhere in docs/METRICS.md;
  2. every metric name documented in a METRICS.md table (the first
     backticked cell of a `| ... |` row that looks like a metric name,
     i.e. lowercase dotted) must be a literal in metric_names.h.

Exit code 0 when both hold, 1 with a per-name report otherwise. Run from
anywhere; paths resolve relative to the repo root. CI runs this on every
push (see .github/workflows/ci.yml, docs job).
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
NAMES_H = ROOT / "src" / "obs" / "metric_names.h"
METRICS_MD = ROOT / "docs" / "METRICS.md"

METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*\.[a-z0-9_.]+$")


def code_names() -> set[str]:
    text = NAMES_H.read_text()
    names = {m for m in re.findall(r'"([^"]+)"', text)}
    bad = sorted(n for n in names if not METRIC_NAME.match(n))
    if bad:
        sys.exit(f"ERROR: non-conforming literals in {NAMES_H.name}: {bad} "
                 "(metric names are lowercase dotted; keep other strings out "
                 "of this header)")
    return names


def documented_names(text: str) -> set[str]:
    """Metric names claimed by METRICS.md tables (first backticked cell)."""
    names = set()
    for line in text.splitlines():
        if not line.lstrip().startswith("|"):
            continue
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if not cells:
            continue
        m = re.match(r"^`([^`]+)`$", cells[0])
        if not m:
            continue
        name = m.group(1)
        if METRIC_NAME.match(name):
            names.add(name)
    return names


def main() -> int:
    emitted = code_names()
    md_text = METRICS_MD.read_text()
    mentioned = set(re.findall(r"`([^`]+)`", md_text))
    documented = documented_names(md_text)

    undocumented = sorted(n for n in emitted if n not in mentioned)
    phantom = sorted(n for n in documented if n not in emitted)

    ok = True
    if undocumented:
        ok = False
        print(f"ERROR: emitted by src/obs but missing from {METRICS_MD.name}:")
        for name in undocumented:
            print(f"  - {name}")
    if phantom:
        ok = False
        print(f"ERROR: documented in {METRICS_MD.name} but not emitted "
              "(no literal in metric_names.h):")
        for name in phantom:
            print(f"  - {name}")
    if ok:
        print(f"OK: {len(emitted)} metric names in {NAMES_H.name}, all "
              f"documented; {len(documented)} table entries, none phantom")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
