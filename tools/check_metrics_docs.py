#!/usr/bin/env python3
"""Docs-consistency check: metric-name headers <-> docs/METRICS.md.

The observability layer's contract is that every metric it can emit is
documented, and that the docs never describe metrics that do not exist.
Both directions are checked:

  1. every quoted string literal in a metric-name header (the single
     source of truth for emitted names: src/obs/metric_names.h for the
     simulation, src/net/net_metric_names.h for the socketed edge mode)
     must appear, backticked, somewhere in docs/METRICS.md;
  2. every metric name documented in a METRICS.md table (the first
     backticked cell of a `| ... |` row that looks like a metric name,
     i.e. lowercase dotted) must be a literal in one of those headers.

Exit code 0 when both hold, 1 with a per-name report otherwise. Run from
anywhere; paths resolve relative to the repo root. CI runs this on every
push (see .github/workflows/ci.yml, docs job).
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
NAME_HEADERS = [
    ROOT / "src" / "obs" / "metric_names.h",
    ROOT / "src" / "net" / "net_metric_names.h",
]
METRICS_MD = ROOT / "docs" / "METRICS.md"

METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*\.[a-z0-9_.]+$")


def code_names() -> set[str]:
    names: set[str] = set()
    for header in NAME_HEADERS:
        text = header.read_text()
        header_names = {m for m in re.findall(r'"([^"]+)"', text)}
        bad = sorted(n for n in header_names if not METRIC_NAME.match(n))
        if bad:
            sys.exit(f"ERROR: non-conforming literals in {header.name}: "
                     f"{bad} (metric names are lowercase dotted; keep other "
                     "strings out of this header)")
        overlap = sorted(names & header_names)
        if overlap:
            sys.exit(f"ERROR: names defined in more than one header: "
                     f"{overlap}")
        names |= header_names
    return names


def documented_names(text: str) -> set[str]:
    """Metric names claimed by METRICS.md tables (first backticked cell)."""
    names = set()
    for line in text.splitlines():
        if not line.lstrip().startswith("|"):
            continue
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if not cells:
            continue
        m = re.match(r"^`([^`]+)`$", cells[0])
        if not m:
            continue
        name = m.group(1)
        if METRIC_NAME.match(name):
            names.add(name)
    return names


def main() -> int:
    emitted = code_names()
    md_text = METRICS_MD.read_text()
    mentioned = set(re.findall(r"`([^`]+)`", md_text))
    documented = documented_names(md_text)

    undocumented = sorted(n for n in emitted if n not in mentioned)
    phantom = sorted(n for n in documented if n not in emitted)

    ok = True
    if undocumented:
        ok = False
        print("ERROR: emitted by a metric-name header but missing from "
              f"{METRICS_MD.name}:")
        for name in undocumented:
            print(f"  - {name}")
    if phantom:
        ok = False
        print(f"ERROR: documented in {METRICS_MD.name} but not emitted "
              "(no literal in any metric-name header):")
        for name in phantom:
            print(f"  - {name}")
    if ok:
        headers = ", ".join(h.name for h in NAME_HEADERS)
        print(f"OK: {len(emitted)} metric names in {headers}, all "
              f"documented; {len(documented)} table entries, none phantom")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
