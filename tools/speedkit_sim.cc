// speedkit_sim: run a configurable end-to-end simulation from the command
// line and print the operations dashboard.
//
//   speedkit_sim --variant=speed_kit --clients=40 --minutes=30 \
//                --writes-per-sec=3 --skew=0.9 --delta=30 --seed=42
//
// Variants: speed_kit | fixed_ttl_cdn | no_caching | pure_invalidation.
#include <cstdio>
#include <string>

#include "core/stack.h"
#include "core/traffic.h"
#include "obs/export.h"
#include "tools/flags.h"

using namespace speedkit;

namespace {

core::SystemVariant ParseVariant(const std::string& name) {
  if (name == "fixed_ttl_cdn") return core::SystemVariant::kFixedTtlCdn;
  if (name == "no_caching") return core::SystemVariant::kNoCaching;
  if (name == "pure_invalidation") {
    return core::SystemVariant::kPureInvalidation;
  }
  return core::SystemVariant::kSpeedKit;
}

int Usage() {
  std::printf(
      "usage: speedkit_sim [--variant=speed_kit|fixed_ttl_cdn|no_caching|"
      "pure_invalidation]\n"
      "                    [--clients=N] [--minutes=M] [--writes-per-sec=W]\n"
      "                    [--skew=S] [--delta=SECONDS] [--products=P]\n"
      "                    [--coherence=delta_atomic|serializable|"
      "fixed_ttl]\n"
      "                    [--categories=C] [--edges=E] [--fixed-ttl=SECONDS]\n"
      "                    [--seed=N]\n"
      "                    [--metrics[=METRICS.json]] write the metrics\n"
      "                    registry snapshot (docs/METRICS.md names)\n"
      "                    [--trace[=TRACE.csv]] record request traces,\n"
      "                    print the per-tier latency breakdown, and write\n"
      "                    the CSV tools/trace_report renders\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  if (flags.Has("help")) return Usage();

  core::StackConfig config;
  config.variant = ParseVariant(flags.GetString("variant", "speed_kit"));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.cdn_edges = static_cast<int>(flags.GetInt("edges", 4));
  config.coherence.delta = Duration::Seconds(flags.GetDouble("delta", 30));
  if (Status s = coherence::ParseCoherenceMode(
          flags.GetString("coherence", "delta_atomic"),
          &config.coherence.mode);
      !s.ok()) {
    std::fprintf(stderr, "--coherence: %s\n", s.ToString().c_str());
    return 2;
  }
  config.fixed_ttl = Duration::Seconds(flags.GetDouble("fixed-ttl", 120));
  if (flags.GetString("ttl-mode", "estimator") == "fixed") {
    config.ttl_mode = core::TtlMode::kFixed;
  }
  // Observability is inert by contract: with or without these flags the
  // dashboard numbers below are bit-for-bit identical.
  config.obs.metrics = flags.Has("metrics");
  config.obs.tracing = flags.Has("trace");
  core::SpeedKitStack stack(config);

  workload::CatalogConfig catalog_config;
  catalog_config.num_products =
      static_cast<size_t>(flags.GetInt("products", 5000));
  catalog_config.num_categories =
      static_cast<int>(flags.GetInt("categories", 40));
  workload::Catalog catalog(catalog_config, Pcg32(config.seed + 1));
  catalog.Populate(&stack.store(), stack.clock().Now());
  for (int c = 0; c < catalog.num_categories(); ++c) {
    (void)stack.origin().RegisterQuery(catalog.CategoryQuery(c));
    if (stack.pipeline() != nullptr) {
      (void)stack.pipeline()->WatchQuery(catalog.CategoryQuery(c),
                                         catalog.CategoryUrl(c));
    }
  }
  stack.Advance(Duration::Seconds(5));

  core::TrafficConfig traffic;
  traffic.num_clients = static_cast<size_t>(flags.GetInt("clients", 40));
  traffic.duration = Duration::Minutes(flags.GetDouble("minutes", 30));
  traffic.writes_per_sec = flags.GetDouble("writes-per-sec", 3.0);
  traffic.session.product_skew = flags.GetDouble("skew", 0.9);

  std::printf("speedkit_sim: variant=%s clients=%zu minutes=%.0f "
              "writes/s=%.1f skew=%.2f delta=%.0fs seed=%llu\n\n",
              std::string(core::SystemVariantName(config.variant)).c_str(),
              traffic.num_clients, traffic.duration.seconds() / 60,
              traffic.writes_per_sec, traffic.session.product_skew,
              config.coherence.delta.seconds(),
              static_cast<unsigned long long>(config.seed));

  core::TrafficSimulation sim(&stack, &catalog, traffic);
  core::TrafficResult result = sim.Run();

  const proxy::ProxyStats& p = result.proxies;
  double n = static_cast<double>(std::max<uint64_t>(1, p.requests));
  std::printf("requests %llu  (browser %.1f%%, swr %.1f%%, edge %.1f%%, "
              "304 %.1f%%, origin %.1f%%, offline %.1f%%)\n",
              static_cast<unsigned long long>(p.requests),
              100 * p.browser_hits / n, 100 * p.swr_serves / n,
              100 * p.edge_hits / n, 100 * p.revalidations_304 / n,
              100 * p.origin_fetches / n, 100 * p.offline_serves / n);
  std::printf("api latency  p50=%.1fms p90=%.1fms p99=%.1fms\n",
              result.api_latency_us.P50() / 1e3,
              result.api_latency_us.P90() / 1e3,
              result.api_latency_us.P99() / 1e3);

  const core::StalenessReport& s = stack.staleness().report();
  std::printf("coherence    writes=%llu stale_reads=%llu (%.3f%%) "
              "max_staleness=%.2fs\n",
              static_cast<unsigned long long>(result.writes_applied),
              static_cast<unsigned long long>(s.stale_reads),
              100 * s.StaleFraction(), s.max_staleness.seconds());
  if (stack.sketch() != nullptr) {
    std::printf("sketch       entries=%zu snapshot=%zuB refreshes=%llu "
                "bypasses=%llu\n",
                stack.sketch()->entries(),
                stack.sketch()->SerializedSnapshot(stack.clock().Now()).size(),
                static_cast<unsigned long long>(p.sketch_refreshes),
                static_cast<unsigned long long>(p.sketch_bypasses));
  }
  const origin::OriginStats& os = stack.origin().stats();
  std::printf("origin       requests=%llu render_cache_hits=%llu "
              "render_saved=%.1fs\n",
              static_cast<unsigned long long>(os.requests),
              static_cast<unsigned long long>(os.render_cache_hits),
              os.render_time_saved_us / 1e6);

  if (config.obs.tracing) {
    std::printf("\nper-tier latency (ms):  "
                "tier       requests     p50     p90     p99\n");
    auto tier_row = [](const char* tier, const Histogram& h) {
      if (h.count() == 0) return;
      std::printf("                        %-10s %8llu %7.1f %7.1f %7.1f\n",
                  tier, static_cast<unsigned long long>(h.count()),
                  h.P50() / 1e3, h.P90() / 1e3, h.P99() / 1e3);
    };
    tier_row("browser", p.latency_browser_us);
    tier_row("edge", p.latency_edge_us);
    tier_row("origin", p.latency_origin_us);
    tier_row("offline", p.latency_offline_us);
    tier_row("error", p.latency_error_us);
    tier_row("degraded", p.latency_degraded_us);

    std::string trace_path = flags.GetString("trace", "true");
    if (trace_path == "true") trace_path = "TRACE_sim.csv";
    obs::MetaList meta = {
        {"bench", "speedkit_sim"},
        {"seed", std::to_string(config.seed)},
        {"requests", std::to_string(p.requests)},
        {"served_total", std::to_string(p.ServedTotal())},
        {"trace_emitted", std::to_string(stack.trace_sink()->emitted())},
        {"trace_dropped", std::to_string(stack.trace_sink()->dropped())},
    };
    if (obs::WriteTraceCsv(trace_path, stack.trace_sink()->traces(), meta)) {
      std::printf("traces       wrote %zu to %s (render with "
                  "tools/trace_report)\n",
                  stack.trace_sink()->traces().size(), trace_path.c_str());
    }
  }
  if (config.obs.metrics) {
    stack.CollectMetrics(&result.proxies);
    std::string metrics_path = flags.GetString("metrics", "true");
    if (metrics_path == "true") metrics_path = "METRICS_sim.json";
    obs::MetaList meta = {
        {"bench", "speedkit_sim"},
        {"variant", std::string(core::SystemVariantName(config.variant))},
        {"seed", std::to_string(config.seed)},
    };
    if (obs::WriteMetricsJson(metrics_path, *stack.metrics(), meta)) {
      std::printf("metrics      wrote %zu series to %s (reference: "
                  "docs/METRICS.md)\n",
                  stack.metrics()->metrics().size(), metrics_path.c_str());
    }
  }
  return 0;
}
