// speedkit_edged: one edge node of the real-socket tier.
//
//   speedkit-edged --port=8080 --node=edge-a --ring=edge-a,edge-b,edge-c
//       --reject-misrouted --flight=coalesce --seed=42
//
// Serves plain HTTP/1.1; the request path runs the exact simulator stack
// (browser cache per X-SpeedKit-Client, Cache Sketch, CDN edge cache,
// origin) with wall time mapped onto the simulated clock. See
// docs/OPERATIONS.md for the full operator guide and flag reference.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "net/edged_server.h"
#include "tools/flags.h"

namespace {

speedkit::net::EdgedServer* g_server = nullptr;

void HandleSignal(int /*sig*/) {
  if (g_server != nullptr) g_server->Interrupt();  // async-signal-safe
}

speedkit::cache::OriginFlightMode ParseFlightMode(const std::string& name) {
  if (name == "instant") return speedkit::cache::OriginFlightMode::kInstant;
  if (name == "herd") return speedkit::cache::OriginFlightMode::kHerd;
  return speedkit::cache::OriginFlightMode::kCoalesce;
}

}  // namespace

int main(int argc, char** argv) {
  using speedkit::tools::Flags;
  Flags flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf(
        "speedkit-edged -- socketed Speed Kit edge node\n"
        "  --host=127.0.0.1         bind address (numeric IPv4)\n"
        "  --port=8080              bind port (0 = ephemeral, printed)\n"
        "  --node=edge-0            this node's ring identity\n"
        "  --ring=a,b,c             full ring member list (default: solo)\n"
        "  --ring-replicas=200      vnodes per ring member\n"
        "  --reject-misrouted       421 for keys owned by another member\n"
        "  --flight=coalesce        origin flights: instant|herd|coalesce\n"
        "  --seed=42                stack RNG seed\n"
        "  --coherence=delta_atomic coherence protocol: delta_atomic|\n"
        "                           serializable|fixed_ttl\n"
        "  --edges=1                CDN edges inside the embedded stack\n"
        "  --products=2000          synthetic catalog size\n"
        "  --idle-timeout-ms=30000  drop idle connections after this\n");
    return 0;
  }

  speedkit::net::EdgedConfig config;
  config.host = flags.GetString("host", "127.0.0.1");
  config.port = static_cast<uint16_t>(flags.GetInt("port", 8080));
  config.node_name = flags.GetString("node", "edge-0");
  std::string ring = flags.GetString("ring", "");
  if (!ring.empty()) {
    for (std::string_view n : speedkit::SplitView(ring, ',')) {
      config.ring_nodes.emplace_back(n);
    }
  }
  config.ring_replicas = static_cast<int>(flags.GetInt("ring-replicas", 200));
  config.reject_misrouted = flags.GetBool("reject-misrouted", false);
  config.idle_timeout_ms =
      static_cast<int>(flags.GetInt("idle-timeout-ms", 30000));
  config.stack.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (speedkit::Status s = speedkit::coherence::ParseCoherenceMode(
          flags.GetString("coherence", "delta_atomic"),
          &config.stack.coherence.mode);
      !s.ok()) {
    std::fprintf(stderr, "--coherence: %s\n", s.ToString().c_str());
    return 2;
  }
  config.stack.cdn_edges = static_cast<int>(flags.GetInt("edges", 1));
  config.stack.origin_flight =
      ParseFlightMode(flags.GetString("flight", "coalesce"));
  config.catalog.num_products =
      static_cast<size_t>(flags.GetInt("products", 2000));

  speedkit::net::EdgedServer server(config);
  if (!server.Start()) {
    std::fprintf(stderr, "speedkit-edged: failed to bind %s:%d\n",
                 config.host.c_str(), config.port);
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("speedkit-edged: node %s serving on %s:%u (flight=%s)\n",
              config.node_name.c_str(), config.host.c_str(),
              unsigned{server.port()},
              std::string(speedkit::cache::OriginFlightModeName(
                              config.stack.origin_flight))
                  .c_str());
  std::fflush(stdout);
  server.Run();
  std::printf("speedkit-edged: shut down cleanly\n");
  return 0;
}
