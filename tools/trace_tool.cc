// trace_tool: generate, inspect and replay workload traces.
//
//   trace_tool generate --out=day.trace --clients=20 --minutes=30 \
//                       --writes-per-sec=2 --products=5000 --seed=7
//   trace_tool info day.trace
//   trace_tool replay day.trace --variant=speed_kit
//
// Replaying one trace against several variants compares them on an
// identical request/write sequence.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <set>
#include <string>

#include "core/replay.h"
#include "tools/flags.h"

using namespace speedkit;

namespace {

int Usage() {
  std::printf(
      "usage:\n"
      "  trace_tool generate --out=FILE [--clients=N] [--minutes=M]\n"
      "                      [--writes-per-sec=W] [--products=P] [--seed=S]\n"
      "  trace_tool info FILE\n"
      "  trace_tool replay FILE [--variant=V] [--products=P] [--seed=S]\n");
  return 2;
}

Result<workload::Trace> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open trace file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return workload::Trace::Deserialize(buffer.str());
}

workload::Catalog MakeCatalog(const tools::Flags& flags) {
  workload::CatalogConfig config;
  config.num_products =
      static_cast<size_t>(flags.GetInt("products", 5000));
  return workload::Catalog(config,
                           Pcg32(static_cast<uint64_t>(flags.GetInt("seed", 7)) + 1));
}

int Generate(const tools::Flags& flags) {
  std::string out = flags.GetString("out", "");
  if (out.empty()) return Usage();
  workload::Catalog catalog = MakeCatalog(flags);
  workload::Trace trace = core::SynthesizeTrace(
      catalog, static_cast<size_t>(flags.GetInt("clients", 20)),
      Duration::Minutes(flags.GetDouble("minutes", 30)),
      flags.GetDouble("writes-per-sec", 2.0),
      static_cast<uint64_t>(flags.GetInt("seed", 7)));
  std::ofstream file(out);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  file << trace.Serialize();
  std::printf("wrote %zu events to %s\n", trace.size(), out.c_str());
  return 0;
}

int Info(const tools::Flags& flags) {
  if (flags.positional().size() < 2) return Usage();
  auto trace = LoadTrace(flags.positional()[1]);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }
  size_t fetches = 0;
  size_t writes = 0;
  std::set<uint64_t> clients;
  std::set<std::string> urls;
  SimTime first = SimTime::Max();
  SimTime last;
  for (const auto& ev : trace->events()) {
    if (ev.at < first) first = ev.at;
    if (ev.at > last) last = ev.at;
    if (ev.kind == workload::TraceEvent::Kind::kFetch) {
      ++fetches;
      clients.insert(ev.client_id);
      urls.insert(ev.url);
    } else {
      ++writes;
    }
  }
  std::printf("events:   %zu (%zu fetches, %zu writes)\n", trace->size(),
              fetches, writes);
  std::printf("clients:  %zu\n", clients.size());
  std::printf("urls:     %zu distinct\n", urls.size());
  std::printf("span:     %.1fs .. %.1fs (%.1f min)\n", first.seconds(),
              last.seconds(), (last - first).seconds() / 60);
  return 0;
}

int Replay(const tools::Flags& flags) {
  if (flags.positional().size() < 2) return Usage();
  auto trace = LoadTrace(flags.positional()[1]);
  if (!trace.ok()) {
    std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
    return 1;
  }
  core::StackConfig config;
  std::string variant = flags.GetString("variant", "speed_kit");
  if (variant == "fixed_ttl_cdn") {
    config.variant = core::SystemVariant::kFixedTtlCdn;
  } else if (variant == "no_caching") {
    config.variant = core::SystemVariant::kNoCaching;
  } else if (variant == "pure_invalidation") {
    config.variant = core::SystemVariant::kPureInvalidation;
  }
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  core::SpeedKitStack stack(config);
  workload::Catalog catalog = MakeCatalog(flags);
  catalog.Populate(&stack.store(), stack.clock().Now());
  for (int c = 0; c < catalog.num_categories(); ++c) {
    (void)stack.origin().RegisterQuery(catalog.CategoryQuery(c));
    if (stack.pipeline() != nullptr) {
      (void)stack.pipeline()->WatchQuery(catalog.CategoryQuery(c),
                                         catalog.CategoryUrl(c));
    }
  }
  stack.Advance(Duration::Seconds(5));

  core::TraceReplayer replayer(&stack);
  core::ReplayResult result = replayer.Replay(*trace);
  double n = static_cast<double>(std::max<uint64_t>(1, result.fetches));
  std::printf("variant:        %s\n",
              std::string(core::SystemVariantName(config.variant)).c_str());
  std::printf("fetches/writes: %llu / %llu (%llu errors)\n",
              static_cast<unsigned long long>(result.fetches),
              static_cast<unsigned long long>(result.writes),
              static_cast<unsigned long long>(result.errors));
  std::printf("latency:        p50=%.1fms p90=%.1fms p99=%.1fms\n",
              result.latency_us.P50() / 1e3, result.latency_us.P90() / 1e3,
              result.latency_us.P99() / 1e3);
  std::printf("served by:      browser %.1f%%, edge %.1f%%, origin %.1f%%\n",
              100 * result.proxies.browser_hits / n,
              100 * result.proxies.edge_hits / n,
              100 * result.proxies.origin_fetches / n);
  std::printf("staleness:      %llu stale reads, max %.2fs\n",
              static_cast<unsigned long long>(
                  stack.staleness().report().stale_reads),
              stack.staleness().report().max_staleness.seconds());
  std::printf("fingerprint:    %016llx\n",
              static_cast<unsigned long long>(result.Fingerprint()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string& command = flags.positional()[0];
  if (command == "generate") return Generate(flags);
  if (command == "info") return Info(flags);
  if (command == "replay") return Replay(flags);
  return Usage();
}
