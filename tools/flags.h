// Minimal --key=value flag parsing for the CLI tools. No dependencies, no
// registration: parse once, query typed getters with defaults.
#ifndef SPEEDKIT_TOOLS_FLAGS_H_
#define SPEEDKIT_TOOLS_FLAGS_H_

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace speedkit::tools {

class Flags {
 public:
  // Consumes "--key=value" and "--key value" forms; everything else is a
  // positional argument.
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        continue;
      }
      std::string body = arg.substr(2);
      size_t eq = body.find('=');
      if (eq != std::string::npos) {
        values_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[body] = argv[++i];
      } else {
        values_[body] = "true";
      }
    }
  }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtoll(it->second.c_str(),
                                                         nullptr, 10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& key, bool fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  bool Has(const std::string& key) const { return values_.count(key) != 0; }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace speedkit::tools

#endif  // SPEEDKIT_TOOLS_FLAGS_H_
