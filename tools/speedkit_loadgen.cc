// speedkit_loadgen: closed-loop load generator for a speedkit_edged tier.
//
//   speedkit-loadgen --targets=edge-a=127.0.0.1:8080,edge-b=127.0.0.1:8081 \
//       --workers=8 --requests=5000 --zipf=0.95
//
// Routes keys through the same consistent-hash ring the edge tier uses
// (client-side routing), keeps one keep-alive connection per worker per
// target, and prints the serve-tier split plus wall/predicted latency
// percentiles. See docs/OPERATIONS.md.
#include <cstdio>
#include <string>

#include "common/strings.h"
#include "net/loadgen.h"
#include "tools/flags.h"

int main(int argc, char** argv) {
  using speedkit::tools::Flags;
  Flags flags(argc, argv);
  if (flags.GetBool("help", false)) {
    std::printf(
        "speedkit-loadgen -- closed-loop client fleet for speedkit-edged\n"
        "  --targets=name=host:port[,...]  the edge ring (names must match)\n"
        "  --ring-replicas=200             vnodes per member (match edged)\n"
        "  --workers=4                     closed-loop clients (threads)\n"
        "  --requests=1000                 requests per worker\n"
        "  --seed=42                       workload RNG seed\n"
        "  --zipf=0.95                     popularity skew exponent\n"
        "  --hot-products=500              Zipf ranks drawn from first N\n"
        "  --products=2000                 catalog size (match edged)\n");
    return 0;
  }

  speedkit::net::LoadGenConfig config;
  std::string targets = flags.GetString("targets", "edge-0=127.0.0.1:8080");
  for (std::string_view spec : speedkit::SplitView(targets, ',')) {
    size_t eq = spec.find('=');
    size_t colon = spec.rfind(':');
    if (eq == std::string_view::npos || colon == std::string_view::npos ||
        colon < eq) {
      std::fprintf(stderr, "bad --targets entry (want name=host:port): %.*s\n",
                   static_cast<int>(spec.size()), spec.data());
      return 1;
    }
    speedkit::net::LoadGenTarget target;
    target.node_name = std::string(spec.substr(0, eq));
    target.host = std::string(spec.substr(eq + 1, colon - eq - 1));
    auto port = speedkit::ParseInt64(spec.substr(colon + 1));
    if (!port.has_value() || *port <= 0 || *port > 65535) {
      std::fprintf(stderr, "bad port in --targets entry: %.*s\n",
                   static_cast<int>(spec.size()), spec.data());
      return 1;
    }
    target.port = static_cast<uint16_t>(*port);
    config.targets.push_back(std::move(target));
  }
  config.ring_replicas = static_cast<int>(flags.GetInt("ring-replicas", 200));
  config.workers = static_cast<int>(flags.GetInt("workers", 4));
  config.requests_per_worker =
      static_cast<uint64_t>(flags.GetInt("requests", 1000));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.zipf_s = flags.GetDouble("zipf", 0.95);
  config.hot_products =
      static_cast<size_t>(flags.GetInt("hot-products", 500));
  config.catalog.num_products =
      static_cast<size_t>(flags.GetInt("products", 2000));

  speedkit::net::LoadGenReport report = speedkit::net::RunLoadGen(config);

  std::printf("requests            %llu\n",
              static_cast<unsigned long long>(report.requests));
  std::printf("responses           %llu\n",
              static_cast<unsigned long long>(report.responses));
  std::printf("transport errors    %llu\n",
              static_cast<unsigned long long>(report.transport_errors));
  std::printf("4xx / 5xx           %llu / %llu\n",
              static_cast<unsigned long long>(report.errors_4xx),
              static_cast<unsigned long long>(report.errors_5xx));
  for (const auto& [source, n] : report.sources) {
    std::printf("served from %-8s %llu\n", source.c_str(),
                static_cast<unsigned long long>(n));
  }
  std::printf("cache hit rate      %.4f\n", report.HitRate());
  std::printf("throughput          %.0f req/s\n",
              report.wall_seconds > 0
                  ? static_cast<double>(report.responses) / report.wall_seconds
                  : 0.0);
  std::printf("wall latency (us)   p50=%lld p90=%lld p99=%lld\n",
              static_cast<long long>(report.wall_latency_us.P50()),
              static_cast<long long>(report.wall_latency_us.P90()),
              static_cast<long long>(report.wall_latency_us.P99()));
  std::printf("sim-predicted (us)  p50=%lld p90=%lld p99=%lld\n",
              static_cast<long long>(report.predicted_us.P50()),
              static_cast<long long>(report.predicted_us.P90()),
              static_cast<long long>(report.predicted_us.P99()));
  return report.transport_errors == 0 && report.errors_5xx == 0 ? 0 : 1;
}
