// trace_report: render the trace CSV written by the --trace harness flag
// (obs::WriteTraceCsv) as a human-readable report:
//
//   - per-tier time breakdown: where request time is actually spent, summed
//     over every span of every request trace;
//   - request latency by serving tier (exact percentiles over the traces);
//   - ASCII waterfall of the top-N slowest requests, one bar per span;
//   - purge-propagation summary for purge-kind traces.
//
// It also re-checks the accounting invariant the producer stamped into the
// metadata: one request-kind trace per served request, i.e. the number of
// request traces equals served_total (ProxyStats::ServedTotal()). A
// mismatch exits nonzero so CI can gate on it. When the producer capped the
// sink (trace_dropped > 0) the check is skipped — the file is explicitly
// incomplete — and the report says so.
//
//   trace_report TRACE_faults.csv [--top=5] [--width=56]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "tools/flags.h"

namespace {

struct SpanRow {
  int index = 0;
  int parent = -1;
  std::string name;
  std::string tier;
  int64_t start_us = 0;
  int64_t duration_us = 0;
};

struct TraceRow {
  uint64_t id = 0;
  std::string kind;
  std::string url;
  std::string tier;
  int status = 0;
  bool degraded = false;
  int64_t start_us = 0;
  int64_t latency_us = 0;
  std::vector<SpanRow> spans;
};

// Splits one CSV line, honoring RFC-4180 double-quote escaping.
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

int64_t ToInt(const std::string& s) {
  return s.empty() ? 0 : std::strtoll(s.c_str(), nullptr, 10);
}

// Exact nearest-rank percentile over raw values (traces are few enough to
// keep raw; the histograms are for the in-simulator path).
int64_t Percentile(std::vector<int64_t> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(values.size()));
  rank = std::min(rank, values.size() - 1);
  return values[rank];
}

struct TierAgg {
  uint64_t spans = 0;
  int64_t total_us = 0;
};

void PrintBar(int64_t start, int64_t duration, int64_t scale, int width) {
  int lead = scale > 0 ? static_cast<int>(start * width / scale) : 0;
  int len = scale > 0 ? static_cast<int>(duration * width / scale) : 0;
  if (duration > 0 && len == 0) len = 1;
  lead = std::min(lead, width);
  len = std::min(len, width - lead);
  std::printf("%*s%.*s", lead, "", len,
              "########################################################"
              "########################################################");
}

}  // namespace

int main(int argc, char** argv) {
  speedkit::tools::Flags flags(argc, argv);
  if (flags.positional().empty() || flags.Has("help")) {
    std::fprintf(stderr,
                 "usage: trace_report <trace.csv> [--top=N] [--width=COLS]\n"
                 "renders the CSV written by a bench binary's --trace flag\n");
    return 2;
  }
  const std::string path = flags.positional()[0];
  const int top_n = static_cast<int>(flags.GetInt("top", 5));
  const int width = std::clamp<int>(
      static_cast<int>(flags.GetInt("width", 56)), 16, 112);

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot read %s\n", path.c_str());
    return 2;
  }

  std::map<std::string, std::string> meta;
  std::vector<TraceRow> traces;
  std::map<uint64_t, size_t> trace_index;
  std::string line;
  bool seen_header = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::string body = line.substr(line.find_first_not_of("# "));
      size_t eq = body.find('=');
      if (eq != std::string::npos) {
        meta[body.substr(0, eq)] = body.substr(eq + 1);
      }
      continue;
    }
    if (!seen_header) {  // the column-name row
      seen_header = true;
      continue;
    }
    std::vector<std::string> f = SplitCsv(line);
    if (f.size() < 12) continue;
    if (f[0] == "trace") {
      TraceRow t;
      t.id = static_cast<uint64_t>(ToInt(f[1]));
      t.kind = f[2];
      t.tier = f[6];
      t.start_us = ToInt(f[7]);
      t.latency_us = ToInt(f[8]);
      t.url = f[9];
      t.status = static_cast<int>(ToInt(f[10]));
      t.degraded = ToInt(f[11]) != 0;
      trace_index[t.id] = traces.size();
      traces.push_back(std::move(t));
    } else if (f[0] == "span") {
      auto it = trace_index.find(static_cast<uint64_t>(ToInt(f[1])));
      if (it == trace_index.end()) continue;
      SpanRow s;
      s.index = static_cast<int>(ToInt(f[3]));
      s.parent = static_cast<int>(ToInt(f[4]));
      s.name = f[5];
      s.tier = f[6];
      s.start_us = ToInt(f[7]);
      s.duration_us = ToInt(f[8]);
      traces[it->second].spans.push_back(std::move(s));
    }
  }

  std::vector<const TraceRow*> requests;
  std::vector<const TraceRow*> purges;
  for (const TraceRow& t : traces) {
    (t.kind == "purge" ? purges : requests).push_back(&t);
  }

  std::printf("trace report: %s\n", path.c_str());
  for (const auto& [k, v] : meta) {
    std::printf("  %s = %s\n", k.c_str(), v.c_str());
  }
  std::printf("  traces: %zu request, %zu purge\n\n", requests.size(),
              purges.size());

  // Where request time goes, attributed span by span.
  std::map<std::string, TierAgg> by_tier;
  int64_t total_span_us = 0;
  for (const TraceRow* t : requests) {
    for (const SpanRow& s : t->spans) {
      TierAgg& agg = by_tier[s.tier];
      agg.spans++;
      agg.total_us += s.duration_us;
      total_span_us += s.duration_us;
    }
  }
  std::printf("per-tier time breakdown (request traces):\n");
  std::printf("  %-10s %10s %14s %8s\n", "tier", "spans", "total_ms",
              "share");
  for (const auto& [tier, agg] : by_tier) {
    std::printf("  %-10s %10llu %14.1f %7.1f%%\n", tier.c_str(),
                static_cast<unsigned long long>(agg.spans),
                agg.total_us / 1e3,
                total_span_us > 0 ? 100.0 * agg.total_us / total_span_us : 0);
  }

  // End-to-end latency by serving tier.
  std::map<std::string, std::vector<int64_t>> latency_by_tier;
  for (const TraceRow* t : requests) {
    latency_by_tier[t->tier].push_back(t->latency_us);
  }
  std::printf("\nrequest latency by serving tier (ms):\n");
  std::printf("  %-10s %10s %10s %10s %10s\n", "tier", "requests", "p50",
              "p95", "max");
  for (const auto& [tier, values] : latency_by_tier) {
    std::printf("  %-10s %10zu %10.1f %10.1f %10.1f\n", tier.c_str(),
                values.size(), Percentile(values, 0.50) / 1e3,
                Percentile(values, 0.95) / 1e3,
                *std::max_element(values.begin(), values.end()) / 1e3);
  }

  // Waterfall of the slowest requests.
  std::vector<const TraceRow*> slowest = requests;
  std::stable_sort(slowest.begin(), slowest.end(),
                   [](const TraceRow* a, const TraceRow* b) {
                     return a->latency_us > b->latency_us;
                   });
  if (static_cast<int>(slowest.size()) > top_n) slowest.resize(top_n);
  std::printf("\ntop %zu slowest requests:\n", slowest.size());
  for (const TraceRow* t : slowest) {
    std::printf("\n  #%llu %s -> %s (status %d%s) %.1fms\n",
                static_cast<unsigned long long>(t->id), t->url.c_str(),
                t->tier.c_str(), t->status, t->degraded ? ", degraded" : "",
                t->latency_us / 1e3);
    for (const SpanRow& s : t->spans) {
      std::printf("    %-22s %-8s %8.1fms |", s.name.c_str(), s.tier.c_str(),
                  s.duration_us / 1e3);
      PrintBar(s.start_us, s.duration_us, t->latency_us, width);
      std::printf("\n");
    }
  }

  if (!purges.empty()) {
    std::vector<int64_t> prop;
    uint64_t degraded = 0;
    for (const TraceRow* t : purges) {
      prop.push_back(t->latency_us);
      if (t->degraded) degraded++;
    }
    std::printf("\npurge propagation: %zu purges, %llu faulted, "
                "p50=%.1fms p95=%.1fms max=%.1fms\n",
                purges.size(), static_cast<unsigned long long>(degraded),
                Percentile(prop, 0.50) / 1e3, Percentile(prop, 0.95) / 1e3,
                *std::max_element(prop.begin(), prop.end()) / 1e3);
  }

  // The accounting invariant: one request trace per served request.
  auto served_it = meta.find("served_total");
  uint64_t dropped = 0;
  if (auto it = meta.find("trace_dropped"); it != meta.end()) {
    dropped = static_cast<uint64_t>(ToInt(it->second));
  }
  if (served_it != meta.end()) {
    uint64_t served = static_cast<uint64_t>(ToInt(served_it->second));
    if (dropped > 0) {
      std::printf("\ncheck skipped: sink dropped %llu traces (capped "
                  "capture), span accounting is knowingly partial\n",
                  static_cast<unsigned long long>(dropped));
    } else if (requests.size() == served) {
      std::printf("\ncheck ok: %zu request traces == served_total %llu\n",
                  requests.size(), static_cast<unsigned long long>(served));
    } else {
      std::fprintf(stderr,
                   "\ncheck FAILED: %zu request traces != served_total %llu "
                   "— a request path is missing its trace\n",
                   requests.size(), static_cast<unsigned long long>(served));
      return 1;
    }
  }
  return 0;
}
