// Unit coverage for the pluggable coherence tier's building blocks: mode
// parsing, typed config validation, protocol construction/normalization,
// serializable read-vector validation, and the staleness tracker's
// snapshot-consistency check (the E18 anomaly audit).
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coherence/delta_atomic.h"
#include "coherence/fixed_ttl.h"
#include "coherence/protocol.h"
#include "coherence/serializable.h"
#include "coherence/staleness.h"

namespace speedkit::coherence {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

CoherenceConfig SmallConfig(CoherenceMode mode) {
  CoherenceConfig config;
  config.mode = mode;
  config.sketch_capacity = 1000;
  config.sketch_fpr = 0.01;
  config.delta = Duration::Seconds(10);
  return config;
}

TEST(CoherenceModeTest, NamesRoundTripThroughParse) {
  for (CoherenceMode mode :
       {CoherenceMode::kDeltaAtomic, CoherenceMode::kSerializable,
        CoherenceMode::kFixedTtl}) {
    CoherenceMode parsed;
    ASSERT_TRUE(ParseCoherenceMode(CoherenceModeName(mode), &parsed).ok());
    EXPECT_EQ(parsed, mode);
  }
}

TEST(CoherenceModeTest, UnknownNameIsRealErrorListingValidSet) {
  CoherenceMode mode = CoherenceMode::kSerializable;
  Status s = ParseCoherenceMode("eventual", &mode);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("delta_atomic"), std::string::npos);
  // A failed parse must not have written the output.
  EXPECT_EQ(mode, CoherenceMode::kSerializable);
}

TEST(CoherenceConfigTest, DefaultsValidateForEveryModeAndVariantKind) {
  for (CoherenceMode mode :
       {CoherenceMode::kDeltaAtomic, CoherenceMode::kSerializable,
        CoherenceMode::kFixedTtl}) {
    CoherenceConfig config;
    config.mode = mode;
    EXPECT_TRUE(config.Validate(/*sketch_variant=*/true).ok());
    EXPECT_TRUE(config.Validate(/*sketch_variant=*/false).ok());
  }
}

TEST(CoherenceConfigTest, RejectsOutOfRangeKnobs) {
  CoherenceConfig config;
  config.sketch_fpr = 0.0;
  EXPECT_FALSE(config.Validate(true).ok());
  config.sketch_fpr = 0.6;
  EXPECT_FALSE(config.Validate(true).ok());
  config = CoherenceConfig();
  config.delta = Duration::Zero();
  EXPECT_FALSE(config.Validate(true).ok());
  config = CoherenceConfig();
  config.max_txn_retries = -1;
  EXPECT_FALSE(config.Validate(true).ok());
}

TEST(CoherenceConfigTest, SketchCapacityOnlyRequiredWhereASketchExists) {
  CoherenceConfig config;
  config.sketch_capacity = 0;
  // Δ-atomic on a sketch variant actually builds the sketch: hard error.
  EXPECT_FALSE(config.Validate(/*sketch_variant=*/true).ok());
  // Baselines and sketchless modes never size one.
  EXPECT_TRUE(config.Validate(/*sketch_variant=*/false).ok());
  config.mode = CoherenceMode::kSerializable;
  EXPECT_TRUE(config.Validate(/*sketch_variant=*/true).ok());
  config.mode = CoherenceMode::kFixedTtl;
  EXPECT_TRUE(config.Validate(/*sketch_variant=*/true).ok());
}

TEST(MakeCoherenceProtocolTest, DeltaAtomicOwnsSketchAndWantsInvalidations) {
  auto protocol = MakeCoherenceProtocol(
      SmallConfig(CoherenceMode::kDeltaAtomic), /*sketch_variant=*/true);
  EXPECT_EQ(protocol->mode(), CoherenceMode::kDeltaAtomic);
  EXPECT_NE(protocol->sketch(), nullptr);
  EXPECT_TRUE(protocol->WantsInvalidations());
  EXPECT_TRUE(protocol->AdmitStaleWhileRevalidate());
  auto client = protocol->NewClient(Duration::Seconds(10));
  EXPECT_NE(client->client_sketch(), nullptr);
  // Fresh client: no snapshot yet, so both refresh gates fire.
  EXPECT_TRUE(client->NeedsRefresh(At(0)));
  EXPECT_TRUE(client->NeedsTxnRefresh(At(0)));
}

TEST(MakeCoherenceProtocolTest, SketchlessModesRunWithoutASketch) {
  for (CoherenceMode mode :
       {CoherenceMode::kSerializable, CoherenceMode::kFixedTtl}) {
    auto protocol =
        MakeCoherenceProtocol(SmallConfig(mode), /*sketch_variant=*/true);
    EXPECT_EQ(protocol->mode(), mode);
    EXPECT_EQ(protocol->sketch(), nullptr);
    EXPECT_FALSE(protocol->WantsInvalidations());
    EXPECT_FALSE(protocol->AdmitStaleWhileRevalidate());
    auto client = protocol->NewClient(Duration::Seconds(10));
    EXPECT_EQ(client->client_sketch(), nullptr);
    EXPECT_FALSE(client->NeedsRefresh(At(0)));
    EXPECT_FALSE(client->NeedsTxnRefresh(At(0)));
    EXPECT_FALSE(client->MustRevalidate("any"));
  }
}

// Baseline system variants hard-wire their coherence; whatever mode the
// config asks for, they get the fixed-TTL protocol and mode() tells the
// truth about it.
TEST(MakeCoherenceProtocolTest, NonSketchVariantsNormalizeToFixedTtl) {
  for (CoherenceMode mode :
       {CoherenceMode::kDeltaAtomic, CoherenceMode::kSerializable,
        CoherenceMode::kFixedTtl}) {
    auto protocol =
        MakeCoherenceProtocol(SmallConfig(mode), /*sketch_variant=*/false);
    EXPECT_EQ(protocol->mode(), CoherenceMode::kFixedTtl);
    EXPECT_EQ(protocol->sketch(), nullptr);
  }
}

// Δ-atomic's transaction gate is stricter than the per-read cadence: any
// nonzero snapshot age forces a refresh at the txn instant.
TEST(DeltaAtomicClientTest, TxnRefreshDemandsZeroAgeSnapshot) {
  DeltaAtomicProtocol protocol(SmallConfig(CoherenceMode::kDeltaAtomic));
  auto client = protocol.NewClient(Duration::Seconds(10));
  ASSERT_GT(client->InstallRefresh(At(0)), 0u);
  // Within Δ the per-read gate is satisfied...
  EXPECT_FALSE(client->NeedsRefresh(At(5)));
  // ...but a transaction at t=5 cannot trust a t=0 snapshot.
  EXPECT_TRUE(client->NeedsTxnRefresh(At(5)));
  EXPECT_FALSE(client->NeedsTxnRefresh(At(0)));
}

TEST(SerializableProtocolTest, StaleReadIndexesFlagsHeadMismatchesOnly) {
  SerializableProtocol protocol(SmallConfig(CoherenceMode::kSerializable));
  protocol.OnVersion("a", 1, At(0));
  protocol.OnVersion("a", 2, At(1));
  protocol.OnVersion("b", 7, At(2));

  // All heads match: certifiable.
  EXPECT_TRUE(protocol.StaleReadIndexes({{"a", 2}, {"b", 7}}).empty());
  // A read behind the head is flagged by its index.
  std::vector<size_t> stale =
      protocol.StaleReadIndexes({{"a", 1}, {"b", 7}, {"a", 2}});
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], 0u);
  // Keys the authority never saw written cannot mismatch; version-0 reads
  // of written keys predate every write and always mismatch.
  EXPECT_TRUE(protocol.StaleReadIndexes({{"never-written", 3}}).empty());
  stale = protocol.StaleReadIndexes({{"b", 0}});
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], 0u);
}

TEST(CheckSnapshotTest, OverlappingValidityIntervalsAreConsistent) {
  StalenessTracker tracker;
  tracker.RecordWrite("a", 1, At(0));
  tracker.RecordWrite("a", 2, At(10));
  tracker.RecordWrite("b", 1, At(5));

  // a@1 valid [0, 10); b@1 valid [5, inf): instant 5 witnesses both.
  SnapshotCheck check = tracker.CheckSnapshot({{"a", 1}, {"b", 1}});
  EXPECT_TRUE(check.consistent);
  EXPECT_FALSE(check.clamped);
  // Head reads never die: always consistent with each other.
  check = tracker.CheckSnapshot({{"a", 2}, {"b", 1}});
  EXPECT_TRUE(check.consistent);
  // Unwritten keys constrain nothing.
  check = tracker.CheckSnapshot({{"a", 1}, {"ghost", 4}});
  EXPECT_TRUE(check.consistent);
  // The empty set is trivially a snapshot.
  EXPECT_TRUE(tracker.CheckSnapshot({}).consistent);
}

TEST(CheckSnapshotTest, DisjointIntervalsAreAnAnomaly) {
  StalenessTracker tracker;
  tracker.RecordWrite("a", 1, At(0));
  tracker.RecordWrite("a", 2, At(10));
  tracker.RecordWrite("b", 1, At(0));
  tracker.RecordWrite("b", 2, At(10));

  // a@1 died at 10 exactly when b@2 was born: no common instant (the
  // interval is half-open — the txn cannot have run at both "before 10"
  // and "at/after 10").
  SnapshotCheck check = tracker.CheckSnapshot({{"a", 1}, {"b", 2}});
  EXPECT_FALSE(check.consistent);
  EXPECT_FALSE(check.clamped);
  // Strictly disjoint: same verdict.
  tracker.RecordWrite("c", 1, At(20));
  check = tracker.CheckSnapshot({{"a", 1}, {"c", 1}});
  EXPECT_FALSE(check.consistent);
}

TEST(CheckSnapshotTest, RingOverflowClampsTowardConsistent) {
  // A 1-slot ring forgets all but the newest write; missing bounds must
  // be taken as infinitely generous (flagged, never an invented anomaly).
  StalenessTracker tracker(/*ring_capacity=*/1);
  tracker.RecordWrite("a", 1, At(0));
  tracker.RecordWrite("a", 2, At(10));  // a@1's true death
  tracker.RecordWrite("a", 3, At(20));  // only this write stays dated
  tracker.RecordWrite("b", 1, At(15));

  // Truth: a@1 died at 10, b@1 was born at 15 — a genuine anomaly. The
  // ring only remembers a's v3@20, so a@1's death clamps out to 20 and
  // the check errs toward "consistent", flagging the clamp so E18's
  // anomaly counts are never silently weakened, only under-counted.
  SnapshotCheck check = tracker.CheckSnapshot({{"a", 1}, {"b", 1}});
  EXPECT_TRUE(check.consistent);
  EXPECT_TRUE(check.clamped);
}

}  // namespace
}  // namespace speedkit::coherence
