// The api_redesign safety net: re-homing the Cache Sketch behind the
// CoherenceProtocol interface must not move a single number. These
// fingerprints were captured on the hard-wired implementation (commit
// dee729d, pre-refactor) with FingerprintRun over the full merged stats —
// every counter and every latency distribution. A default-mode stack, a
// sharded fleet at any thread count, and every baseline variant must keep
// reproducing them bit-identically.
#include <cstdint>

#include <gtest/gtest.h>

#include "bench/workload_runner.h"

namespace speedkit::bench {
namespace {

// Captured pre-refactor; see file comment. requests pins are a fast
// cross-check that catches gross drift with a readable number.
constexpr uint64_t kDefaultFp = 0x24e1b5aaa3519cd9ull;
constexpr uint64_t kSharded8Fp = 0x536153c7033478a3ull;
constexpr uint64_t kFixedTtlCdnFp = 0xc2a77869e582d2cdull;
constexpr uint64_t kPureInvalidationFp = 0xfaa61ee9776ad812ull;
constexpr uint64_t kSharded8Delta10Fp = 0x9f24e87aa56a2f1eull;

RunSpec Sharded8Spec() {
  RunSpec spec = DefaultRunSpec();
  spec.stack.cdn_edges = 8;
  spec.stack.shards = 8;
  spec.traffic.num_clients = 64;
  return spec;
}

TEST(CoherenceInvarianceTest, DefaultDeltaAtomicStackMatchesPreRefactor) {
  RunOutput out = RunWorkload(DefaultRunSpec());
  EXPECT_EQ(out.traffic.proxies.requests, 1340u);
  EXPECT_EQ(FingerprintRun(out), kDefaultFp);
}

TEST(CoherenceInvarianceTest, Sharded8MatchesPreRefactorAtEveryThreadCount) {
  for (int threads : {1, 2, 4, 8}) {
    RunSpec spec = Sharded8Spec();
    spec.run_threads = threads;
    RunOutput out = RunWorkload(spec);
    EXPECT_EQ(out.traffic.proxies.requests, 3640u) << "threads=" << threads;
    EXPECT_EQ(FingerprintRun(out), kSharded8Fp) << "threads=" << threads;
  }
}

TEST(CoherenceInvarianceTest, TightDeltaShardedMatchesPreRefactor) {
  for (int threads : {1, 2, 4, 8}) {
    RunSpec spec = Sharded8Spec();
    spec.stack.coherence.delta = Duration::Seconds(10);
    spec.traffic.writes_per_sec = 4.0;
    spec.run_threads = threads;
    RunOutput out = RunWorkload(spec);
    EXPECT_EQ(FingerprintRun(out), kSharded8Delta10Fp)
        << "threads=" << threads;
  }
}

TEST(CoherenceInvarianceTest, FixedTtlCdnBaselineMatchesPreRefactor) {
  RunSpec spec = DefaultRunSpec();
  spec.stack.variant = core::SystemVariant::kFixedTtlCdn;
  RunOutput out = RunWorkload(spec);
  EXPECT_EQ(out.traffic.proxies.requests, 1446u);
  EXPECT_EQ(FingerprintRun(out), kFixedTtlCdnFp);
}

TEST(CoherenceInvarianceTest, PureInvalidationBaselineMatchesPreRefactor) {
  RunSpec spec = DefaultRunSpec();
  spec.stack.variant = core::SystemVariant::kPureInvalidation;
  RunOutput out = RunWorkload(spec);
  EXPECT_EQ(FingerprintRun(out), kPureInvalidationFp);
}

}  // namespace
}  // namespace speedkit::bench
