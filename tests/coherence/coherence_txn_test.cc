// End-to-end multi-key transaction behavior, mode by mode, against a real
// stack: Δ-atomic snapshots at the txn instant, serializable
// validate/retry/abort, fixed-TTL anomalies — plus determinism of the E18
// cart workload (same seed, same numbers, at any thread count).
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/workload_runner.h"
#include "core/cart_traffic.h"
#include "core/fleet.h"
#include "core/stack.h"
#include "proxy/client_proxy.h"
#include "workload/catalog.h"

namespace speedkit::core {
namespace {

// One stack over a small catalog, settled past the population writes so
// tests start from a clean sketch/version picture.
struct World {
  explicit World(coherence::CoherenceMode mode, int max_txn_retries = 2) {
    core::StackConfig config;
    config.seed = 42;
    config.coherence.mode = mode;
    config.coherence.delta = Duration::Seconds(10);
    config.coherence.max_txn_retries = max_txn_retries;
    stack = std::make_unique<SpeedKitStack>(config);

    workload::CatalogConfig ccfg;
    ccfg.num_products = 50;
    ccfg.num_categories = 5;
    catalog = std::make_unique<workload::Catalog>(ccfg, Pcg32(1));
    catalog->Populate(&stack->store(), stack->clock().Now());
    stack->Advance(Duration::Seconds(5));
    write_rng = stack->ForkRng(0x77);
  }

  // Bumps product `rank` to its next version through the object store, so
  // the write listeners date it and the pipeline invalidates it.
  void Write(size_t rank) {
    stack->store().Update(catalog->ProductId(rank),
                          catalog->PriceUpdate(rank, write_rng),
                          stack->clock().Now());
  }

  std::unique_ptr<SpeedKitStack> stack;
  std::unique_ptr<workload::Catalog> catalog;
  Pcg32 write_rng{0};
};

// Audits a committed transaction exactly the way the cart workload does.
coherence::SnapshotCheck Audit(World& w, const std::vector<std::string>& urls,
                               const proxy::TxnResult& txn) {
  std::vector<coherence::ReadVersion> reads;
  for (size_t i = 0; i < txn.reads.size(); ++i) {
    const proxy::FetchResult& r = txn.reads[i];
    if (!r.response.ok() || r.response.object_version == 0) continue;
    reads.push_back({urls[i], r.response.object_version});
  }
  return w.stack->staleness().CheckSnapshot(reads);
}

TEST(CoherenceTxnTest, DeltaAtomicTxnSnapshotsAtTheTransactionInstant) {
  World w(coherence::CoherenceMode::kDeltaAtomic);
  auto client = w.stack->MakeClient(w.stack->DefaultProxyConfig(), 1);
  std::vector<std::string> urls = {w.catalog->ProductUrl(0),
                                   w.catalog->ProductUrl(1)};
  // Warm both keys into the browser cache, then change one underneath.
  ASSERT_TRUE(client->Fetch(urls[0]).response.ok());
  ASSERT_TRUE(client->Fetch(urls[1]).response.ok());
  uint64_t old_version = client->Fetch(urls[0]).response.object_version;
  w.Write(0);
  w.stack->Advance(Duration::Seconds(2));  // purge + sketch flag propagate

  proxy::TxnResult txn = client->FetchTxn(urls);
  ASSERT_FALSE(txn.aborted);
  // The txn-instant sketch snapshot flags the changed key: the read
  // bypassed the (fresh-by-TTL) browser copy and fetched the new version.
  EXPECT_GT(txn.reads[0].response.object_version, old_version);
  EXPECT_TRUE(txn.reads[0].sketch_bypass);
  coherence::SnapshotCheck check = Audit(w, urls, txn);
  EXPECT_TRUE(check.consistent);
  // Δ-atomic never spends validation round trips.
  EXPECT_EQ(txn.retries, 0);
}

TEST(CoherenceTxnTest, SerializableRetriesStaleReadThenCommits) {
  World w(coherence::CoherenceMode::kSerializable);
  auto client = w.stack->MakeClient(w.stack->DefaultProxyConfig(), 1);
  std::vector<std::string> urls = {w.catalog->ProductUrl(0),
                                   w.catalog->ProductUrl(1)};
  ASSERT_TRUE(client->Fetch(urls[0]).response.ok());
  ASSERT_TRUE(client->Fetch(urls[1]).response.ok());
  uint64_t old_version = client->Fetch(urls[0]).response.object_version;
  w.Write(0);
  w.stack->Advance(Duration::Seconds(2));

  // Precondition for the retry: the stale copy really is still fresh by
  // TTL in the browser cache (nothing warned this client).
  proxy::FetchResult stale_probe = client->Fetch(urls[0]);
  ASSERT_EQ(stale_probe.source, proxy::ServedFrom::kBrowserCache);
  ASSERT_EQ(stale_probe.response.object_version, old_version);

  proxy::TxnResult txn = client->FetchTxn(urls);
  ASSERT_FALSE(txn.aborted);
  // Validation flagged the stale member; one re-fetch round converged.
  EXPECT_EQ(txn.retries, 1);
  EXPECT_GT(txn.reads[0].response.object_version, old_version);
  EXPECT_TRUE(Audit(w, urls, txn).consistent);
  EXPECT_GE(client->stats().txn_validations, 2u);  // failed + passing round
  EXPECT_EQ(client->stats().txn_commits, 1u);
}

TEST(CoherenceTxnTest, SerializableAbortsWhenRetryBudgetExhausted) {
  World w(coherence::CoherenceMode::kSerializable, /*max_txn_retries=*/0);
  auto client = w.stack->MakeClient(w.stack->DefaultProxyConfig(), 1);
  std::vector<std::string> urls = {w.catalog->ProductUrl(0),
                                   w.catalog->ProductUrl(1)};
  ASSERT_TRUE(client->Fetch(urls[0]).response.ok());
  ASSERT_TRUE(client->Fetch(urls[1]).response.ok());
  w.Write(0);
  w.stack->Advance(Duration::Seconds(2));
  ASSERT_EQ(client->Fetch(urls[0]).source, proxy::ServedFrom::kBrowserCache);

  proxy::TxnResult txn = client->FetchTxn(urls);
  // Zero retries allowed: the first mismatched validation is fatal.
  EXPECT_TRUE(txn.aborted);
  EXPECT_EQ(txn.retries, 0);
  EXPECT_EQ(client->stats().txn_aborts, 1u);
  EXPECT_EQ(client->stats().txn_commits, 0u);
}

TEST(CoherenceTxnTest, SerializableAbortsWithoutAReachableAuthority) {
  World w(coherence::CoherenceMode::kSerializable);
  auto client = w.stack->MakeClient(w.stack->DefaultProxyConfig(), 1);
  std::vector<std::string> urls = {w.catalog->ProductUrl(0),
                                   w.catalog->ProductUrl(1)};
  ASSERT_TRUE(client->Fetch(urls[0]).response.ok());
  ASSERT_TRUE(client->Fetch(urls[1]).response.ok());
  w.stack->origin().set_available(false);

  // Every member read serves fine from the browser cache, but the commit
  // cannot be certified against a dead origin: abort, never a blind commit.
  proxy::TxnResult txn = client->FetchTxn(urls);
  EXPECT_TRUE(txn.aborted);
  EXPECT_TRUE(txn.reads[0].response.ok());
  EXPECT_EQ(client->stats().txn_aborts, 1u);
}

TEST(CoherenceTxnTest, FixedTtlCommitsAnInconsistentSnapshot) {
  World w(coherence::CoherenceMode::kFixedTtl);
  auto client = w.stack->MakeClient(w.stack->DefaultProxyConfig(), 1);
  std::vector<std::string> urls = {w.catalog->ProductUrl(0),
                                   w.catalog->ProductUrl(1)};
  // Warm only the first key, then write both in order: the cached copy of
  // key 0 dies before key 1's new version is born, so reading stale-0 and
  // current-1 together admits no common instant.
  ASSERT_TRUE(client->Fetch(urls[0]).response.ok());
  uint64_t old_version = client->Fetch(urls[0]).response.object_version;
  w.Write(0);
  w.stack->Advance(Duration::Seconds(1));
  w.Write(1);
  w.stack->Advance(Duration::Seconds(1));

  proxy::TxnResult txn = client->FetchTxn(urls);
  // Fixed TTL neither refreshes nor validates: the stale read commits.
  ASSERT_FALSE(txn.aborted);
  EXPECT_EQ(txn.retries, 0);
  EXPECT_EQ(txn.reads[0].response.object_version, old_version);
  coherence::SnapshotCheck check = Audit(w, urls, txn);
  EXPECT_FALSE(check.consistent);  // the E18 anomaly, reproduced exactly
  EXPECT_EQ(client->stats().txn_validations, 0u);
}

CartTrafficConfig SmallCartConfig() {
  CartTrafficConfig cart;
  cart.num_clients = 8;
  cart.duration = Duration::Minutes(2);
  cart.keys_per_txn = 3;
  cart.mean_txn_gap = Duration::Seconds(10);
  cart.writes_per_sec = 4.0;
  return cart;
}

CartTrafficResult RunCart(coherence::CoherenceMode mode) {
  core::StackConfig config;
  config.seed = 7;
  config.coherence.mode = mode;
  config.coherence.delta = Duration::Seconds(10);
  SpeedKitStack stack(config);
  workload::CatalogConfig ccfg;
  ccfg.num_products = 200;
  ccfg.num_categories = 10;
  workload::Catalog catalog(ccfg, Pcg32(1));
  catalog.Populate(&stack.store(), stack.clock().Now());
  stack.Advance(Duration::Seconds(5));
  CartTrafficSimulation sim(&stack, &catalog, SmallCartConfig());
  return sim.Run();
}

void ExpectSameCartNumbers(const CartTrafficResult& a,
                           const CartTrafficResult& b) {
  EXPECT_EQ(a.txns_attempted, b.txns_attempted);
  EXPECT_EQ(a.txns_committed, b.txns_committed);
  EXPECT_EQ(a.txns_aborted, b.txns_aborted);
  EXPECT_EQ(a.txn_retries, b.txn_retries);
  EXPECT_EQ(a.anomalies, b.anomalies);
  EXPECT_EQ(a.anomaly_checks_clamped, b.anomaly_checks_clamped);
  EXPECT_EQ(a.writes_applied, b.writes_applied);
  EXPECT_EQ(a.txn_latency_us.Fingerprint(), b.txn_latency_us.Fingerprint());
  EXPECT_EQ(a.proxies.requests, b.proxies.requests);
}

TEST(CartTrafficTest, SameSeedSameNumbersInEveryMode) {
  for (coherence::CoherenceMode mode :
       {coherence::CoherenceMode::kDeltaAtomic,
        coherence::CoherenceMode::kSerializable,
        coherence::CoherenceMode::kFixedTtl}) {
    CartTrafficResult first = RunCart(mode);
    CartTrafficResult second = RunCart(mode);
    ASSERT_GT(first.txns_attempted, 0u);
    ExpectSameCartNumbers(first, second);
  }
}

// The coherent modes earn their keep on this workload; the baseline shows
// why the tier exists. (fig_coherence gates the same three facts at E18
// scale; this is the fast in-tree version.)
TEST(CartTrafficTest, CoherentModesCommitCleanSnapshotsFixedTtlDoesNot) {
  CartTrafficResult delta = RunCart(coherence::CoherenceMode::kDeltaAtomic);
  CartTrafficResult serial = RunCart(coherence::CoherenceMode::kSerializable);
  CartTrafficResult fixed = RunCart(coherence::CoherenceMode::kFixedTtl);
  ASSERT_GT(delta.txns_committed, 0u);
  ASSERT_GT(serial.txns_committed, 0u);
  ASSERT_GT(fixed.txns_committed, 0u);
  EXPECT_EQ(delta.anomalies, 0u);
  EXPECT_EQ(serial.anomalies, 0u);
  EXPECT_GT(fixed.anomalies, 0u);
}

// A sharded fleet runs one cart simulation per shard; merged numbers must
// not depend on how many worker threads executed the shards.
TEST(CartTrafficTest, ShardedCartIsThreadCountInvariant) {
  auto run_fleet = [](int run_threads) {
    core::StackConfig config;
    config.seed = 7;
    config.cdn_edges = 4;
    config.shards = 4;
    config.coherence.delta = Duration::Seconds(10);
    workload::CatalogConfig ccfg;
    ccfg.num_products = 200;
    ccfg.num_categories = 10;
    workload::Catalog catalog(ccfg, Pcg32(1));
    CartTrafficConfig cart = SmallCartConfig();
    cart.num_clients = 24;

    ShardedFleet fleet(config);
    std::vector<CartTrafficResult> parts(
        static_cast<size_t>(fleet.shards()));
    ForEachShard(fleet.shards(), run_threads, [&](int s) {
      SpeedKitStack& shard = fleet.shard(s);
      catalog.Populate(&shard.store(), shard.clock().Now());
      shard.Advance(Duration::Seconds(5));
      CartTrafficSimulation sim(&shard, &catalog, cart);
      parts[static_cast<size_t>(s)] = sim.Run();
    });
    CartTrafficResult merged = parts.front();
    for (size_t s = 1; s < parts.size(); ++s) merged.Merge(parts[s]);
    return merged;
  };
  CartTrafficResult serial = run_fleet(1);
  CartTrafficResult parallel = run_fleet(4);
  ASSERT_GT(serial.txns_attempted, 0u);
  ExpectSameCartNumbers(serial, parallel);
}

}  // namespace
}  // namespace speedkit::core
