#include "http/cache_control.h"

#include <gtest/gtest.h>

namespace speedkit::http {
namespace {

TEST(CacheControlTest, ParsesCommonDirectives) {
  CacheControl cc = CacheControl::Parse(
      "public, max-age=60, s-maxage=300, stale-while-revalidate=30");
  EXPECT_TRUE(cc.is_public);
  EXPECT_EQ(cc.max_age.value(), Duration::Seconds(60));
  EXPECT_EQ(cc.s_maxage.value(), Duration::Seconds(300));
  EXPECT_EQ(cc.stale_while_revalidate.value(), Duration::Seconds(30));
  EXPECT_FALSE(cc.no_store);
}

TEST(CacheControlTest, ParsesBooleans) {
  CacheControl cc =
      CacheControl::Parse("private, no-store, no-cache, must-revalidate, immutable");
  EXPECT_TRUE(cc.is_private);
  EXPECT_TRUE(cc.no_store);
  EXPECT_TRUE(cc.no_cache);
  EXPECT_TRUE(cc.must_revalidate);
  EXPECT_TRUE(cc.immutable);
}

TEST(CacheControlTest, CaseInsensitiveDirectives) {
  CacheControl cc = CacheControl::Parse("PUBLIC, Max-Age=10");
  EXPECT_TRUE(cc.is_public);
  EXPECT_EQ(cc.max_age.value(), Duration::Seconds(10));
}

TEST(CacheControlTest, QuotedValues) {
  CacheControl cc = CacheControl::Parse("max-age=\"120\"");
  EXPECT_EQ(cc.max_age.value(), Duration::Seconds(120));
}

TEST(CacheControlTest, MalformedNumericValueInvalidatesOnlyThatDirective) {
  CacheControl cc = CacheControl::Parse("public, max-age=abc, s-maxage=5");
  EXPECT_TRUE(cc.is_public);
  EXPECT_FALSE(cc.max_age.has_value());
  EXPECT_EQ(cc.s_maxage.value(), Duration::Seconds(5));
}

TEST(CacheControlTest, UnknownDirectivesIgnored) {
  CacheControl cc = CacheControl::Parse("frobnicate, max-age=9, x=y");
  EXPECT_EQ(cc.max_age.value(), Duration::Seconds(9));
}

TEST(CacheControlTest, EmptyValue) {
  CacheControl cc = CacheControl::Parse("");
  EXPECT_FALSE(cc.max_age.has_value());
  EXPECT_FALSE(cc.no_store);
  EXPECT_TRUE(cc.Storable(true));
}

TEST(CacheControlTest, RoundTripThroughToString) {
  CacheControl cc;
  cc.is_public = true;
  cc.max_age = Duration::Seconds(60);
  cc.s_maxage = Duration::Seconds(120);
  cc.no_cache = true;
  CacheControl back = CacheControl::Parse(cc.ToString());
  EXPECT_TRUE(back.is_public);
  EXPECT_TRUE(back.no_cache);
  EXPECT_EQ(back.max_age.value(), Duration::Seconds(60));
  EXPECT_EQ(back.s_maxage.value(), Duration::Seconds(120));
}

TEST(CacheControlTest, FreshnessSharedPrefersSMaxage) {
  CacheControl cc = CacheControl::Parse("max-age=60, s-maxage=300");
  EXPECT_EQ(cc.FreshnessForPrivateCache().value(), Duration::Seconds(60));
  EXPECT_EQ(cc.FreshnessForSharedCache().value(), Duration::Seconds(300));
}

TEST(CacheControlTest, FreshnessSharedFallsBackToMaxAge) {
  CacheControl cc = CacheControl::Parse("max-age=60");
  EXPECT_EQ(cc.FreshnessForSharedCache().value(), Duration::Seconds(60));
}

TEST(CacheControlTest, StorableRules) {
  EXPECT_FALSE(CacheControl::Parse("no-store").Storable(false));
  EXPECT_FALSE(CacheControl::Parse("no-store").Storable(true));
  EXPECT_TRUE(CacheControl::Parse("private").Storable(false));
  EXPECT_FALSE(CacheControl::Parse("private").Storable(true));
  EXPECT_TRUE(CacheControl::Parse("public, max-age=1").Storable(true));
  // no-cache is storable (it gates *use*, not storage).
  EXPECT_TRUE(CacheControl::Parse("no-cache").Storable(true));
}

}  // namespace
}  // namespace speedkit::http
