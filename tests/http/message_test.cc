#include "http/message.h"

#include <gtest/gtest.h>

namespace speedkit::http {
namespace {

TEST(MessageTest, MethodNames) {
  EXPECT_EQ(MethodName(Method::kGet), "GET");
  EXPECT_EQ(MethodName(Method::kPost), "POST");
  EXPECT_EQ(MethodName(Method::kDelete), "DELETE");
}

TEST(MessageTest, OnlyGetAndHeadCacheable) {
  EXPECT_TRUE(IsCacheableMethod(Method::kGet));
  EXPECT_TRUE(IsCacheableMethod(Method::kHead));
  EXPECT_FALSE(IsCacheableMethod(Method::kPost));
  EXPECT_FALSE(IsCacheableMethod(Method::kPut));
  EXPECT_FALSE(IsCacheableMethod(Method::kPatch));
  EXPECT_FALSE(IsCacheableMethod(Method::kDelete));
}

TEST(MessageTest, RequestConditionalDetection) {
  HttpRequest req = HttpRequest::Get(*Url::Parse("https://a.com/x"));
  EXPECT_FALSE(req.IsConditional());
  req.headers.Set("If-None-Match", "\"v1\"");
  EXPECT_TRUE(req.IsConditional());
}

TEST(MessageTest, MakeOkResponseCarriesEverything) {
  CacheControl cc;
  cc.is_public = true;
  cc.max_age = Duration::Seconds(60);
  HttpResponse resp =
      MakeOkResponse("body", cc, /*object_version=*/7,
                     SimTime::FromMicros(1000));
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.body, "body");
  EXPECT_EQ(resp.object_version, 7u);
  EXPECT_EQ(resp.generated_at.micros(), 1000);
  EXPECT_EQ(resp.GetCacheControl().max_age.value(), Duration::Seconds(60));
}

TEST(MessageTest, NotModifiedHasNoBody) {
  CacheControl cc;
  cc.max_age = Duration::Seconds(5);
  HttpResponse resp = MakeNotModified("\"v3\"", cc, 3, SimTime::Origin());
  EXPECT_TRUE(resp.IsNotModified());
  EXPECT_FALSE(resp.ok());
  EXPECT_TRUE(resp.body.empty());
  EXPECT_EQ(resp.ETag(), "\"v3\"");
}

TEST(MessageTest, ETagRoundTrip) {
  HttpResponse resp;
  EXPECT_EQ(resp.ETag(), "");
  resp.SetETag("\"abc\"");
  EXPECT_EQ(resp.ETag(), "\"abc\"");
}

TEST(MessageTest, WireSizeGrowsWithBodyAndHeaders) {
  HttpResponse small;
  small.body = "x";
  HttpResponse big;
  big.body = std::string(1000, 'x');
  big.headers.Set("ETag", "\"v1\"");
  EXPECT_GT(big.WireSize(), small.WireSize());
  EXPECT_GE(big.WireSize(), 1000u);
}

TEST(MessageTest, ErrorFactories) {
  EXPECT_EQ(MakeNotFound().status_code, 404);
  EXPECT_EQ(MakeServiceUnavailable().status_code, 503);
  EXPECT_FALSE(MakeServiceUnavailable().ok());
}

TEST(MessageTest, MissingCacheControlParsesAsEmpty) {
  HttpResponse resp;
  CacheControl cc = resp.GetCacheControl();
  EXPECT_FALSE(cc.max_age.has_value());
  EXPECT_FALSE(cc.no_store);
}

}  // namespace
}  // namespace speedkit::http
