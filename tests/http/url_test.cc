#include "http/url.h"

#include <gtest/gtest.h>

namespace speedkit::http {
namespace {

TEST(UrlTest, ParsesFullUrl) {
  auto url = Url::Parse("https://Shop.Example.com:8443/p/42?ref=a#top");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->scheme(), "https");
  EXPECT_EQ(url->host(), "shop.example.com");  // lowercased
  EXPECT_EQ(url->port(), 8443);
  EXPECT_EQ(url->path(), "/p/42");
  EXPECT_EQ(url->query(), "ref=a");
  EXPECT_EQ(url->fragment(), "top");
}

TEST(UrlTest, DefaultsForBareHost) {
  auto url = Url::Parse("http://example.com");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->path(), "/");
  EXPECT_EQ(url->query(), "");
  EXPECT_EQ(url->EffectivePort(), 80);
}

TEST(UrlTest, HttpsDefaultPort) {
  auto url = Url::Parse("https://example.com/x");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->EffectivePort(), 443);
}

TEST(UrlTest, RejectsMalformed) {
  EXPECT_FALSE(Url::Parse("no-scheme.com/path").ok());
  EXPECT_FALSE(Url::Parse("ftp://example.com/x").ok());
  EXPECT_FALSE(Url::Parse("http:///path-only").ok());
  EXPECT_FALSE(Url::Parse("http://host:0/x").ok());
  EXPECT_FALSE(Url::Parse("http://host:99999/x").ok());
  EXPECT_FALSE(Url::Parse("http://host:abc/x").ok());
  EXPECT_FALSE(Url::Parse("").ok());
}

TEST(UrlTest, CacheKeyDropsFragmentKeepsQuery) {
  auto url = Url::Parse("https://a.com/p?x=1#frag");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->CacheKey(), "https://a.com/p?x=1");
}

TEST(UrlTest, CacheKeyElidesDefaultPort) {
  EXPECT_EQ(Url::Parse("https://a.com:443/p")->CacheKey(), "https://a.com/p");
  EXPECT_EQ(Url::Parse("http://a.com:80/p")->CacheKey(), "http://a.com/p");
  EXPECT_EQ(Url::Parse("http://a.com:8080/p")->CacheKey(),
            "http://a.com:8080/p");
}

TEST(UrlTest, EqualityUsesCacheKey) {
  auto a = Url::Parse("https://A.com/p#x");
  auto b = Url::Parse("https://a.com/p#y");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a == *b);
}

TEST(UrlTest, QueryOnlyNoPath) {
  auto url = Url::Parse("https://a.com?x=1");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->path(), "/");
  EXPECT_EQ(url->query(), "x=1");
}

TEST(UrlTest, FragmentOnlyNoPath) {
  auto url = Url::Parse("https://a.com#frag");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->path(), "/");
  EXPECT_EQ(url->fragment(), "frag");
}

TEST(UrlTest, RoundTripToString) {
  auto url = Url::Parse("https://a.com/p/1?q=2#f");
  ASSERT_TRUE(url.ok());
  EXPECT_EQ(url->ToString(), "https://a.com/p/1?q=2#f");
}

}  // namespace
}  // namespace speedkit::http
