#include "http/headers.h"

#include <gtest/gtest.h>

namespace speedkit::http {
namespace {

TEST(HeaderMapTest, SetAndGetCaseInsensitive) {
  HeaderMap h;
  h.Set("Cache-Control", "max-age=60");
  EXPECT_EQ(h.Get("cache-control").value(), "max-age=60");
  EXPECT_EQ(h.Get("CACHE-CONTROL").value(), "max-age=60");
  EXPECT_FALSE(h.Get("ETag").has_value());
}

TEST(HeaderMapTest, SetReplacesAllValues) {
  HeaderMap h;
  h.Add("X-A", "1");
  h.Add("x-a", "2");
  h.Set("X-A", "3");
  EXPECT_EQ(h.GetAll("x-a").size(), 1u);
  EXPECT_EQ(h.Get("x-a").value(), "3");
}

TEST(HeaderMapTest, AddKeepsMultipleValues) {
  HeaderMap h;
  h.Add("Set-Cookie", "a=1");
  h.Add("Set-Cookie", "b=2");
  auto all = h.GetAll("set-cookie");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "a=1");
  EXPECT_EQ(all[1], "b=2");
  // Get returns the first.
  EXPECT_EQ(h.Get("set-cookie").value(), "a=1");
}

TEST(HeaderMapTest, RemoveDeletesAllMatches) {
  HeaderMap h;
  h.Add("X", "1");
  h.Add("x", "2");
  h.Add("Y", "3");
  h.Remove("X");
  EXPECT_FALSE(h.Has("x"));
  EXPECT_TRUE(h.Has("y"));
  EXPECT_EQ(h.size(), 1u);
}

TEST(HeaderMapTest, IterationPreservesInsertionOrder) {
  HeaderMap h;
  h.Add("B", "2");
  h.Add("A", "1");
  std::vector<std::string> names;
  for (const auto& [name, value] : h) names.push_back(name);
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "B");
  EXPECT_EQ(names[1], "A");
}

TEST(HeaderMapTest, WireSizeCountsSeparators) {
  HeaderMap h;
  h.Set("AB", "cd");  // "AB: cd\r\n" = 8 bytes
  EXPECT_EQ(h.WireSize(), 8u);
}

TEST(HeaderMapTest, EmptyMap) {
  HeaderMap h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.WireSize(), 0u);
  EXPECT_TRUE(h.GetAll("x").empty());
}

}  // namespace
}  // namespace speedkit::http
