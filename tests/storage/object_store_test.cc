#include "storage/object_store.h"

#include <gtest/gtest.h>

namespace speedkit::storage {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

TEST(RecordTest, FieldAccessAndRender) {
  Record r;
  r.id = "p1";
  r.version = 3;
  r.fields["price"] = 19.5;
  r.fields["title"] = std::string("Shoe");
  r.fields["stock"] = static_cast<int64_t>(7);
  r.fields["on_sale"] = true;
  ASSERT_NE(r.GetField("price"), nullptr);
  EXPECT_EQ(r.GetField("missing"), nullptr);
  std::string body = r.Render();
  EXPECT_NE(body.find("\"id\":\"p1\""), std::string::npos);
  EXPECT_NE(body.find("\"version\":3"), std::string::npos);
  EXPECT_NE(body.find("\"title\":\"Shoe\""), std::string::npos);
  EXPECT_NE(body.find("\"on_sale\":true"), std::string::npos);
  EXPECT_NE(body.find("\"stock\":7"), std::string::npos);
}

TEST(RecordTest, RenderIsDeterministic) {
  Record r;
  r.id = "x";
  r.fields["b"] = static_cast<int64_t>(2);
  r.fields["a"] = static_cast<int64_t>(1);
  EXPECT_EQ(r.Render(), r.Render());
  // Ordered map: "a" renders before "b" regardless of insertion order.
  EXPECT_LT(r.Render().find("\"a\""), r.Render().find("\"b\""));
}

TEST(CompareFieldsTest, NumericCrossTypeComparison) {
  EXPECT_EQ(CompareFields(FieldValue(static_cast<int64_t>(5)),
                          FieldValue(5.0)).value(), 0);
  EXPECT_LT(CompareFields(FieldValue(static_cast<int64_t>(4)),
                          FieldValue(5.0)).value(), 0);
  EXPECT_GT(CompareFields(FieldValue(6.0),
                          FieldValue(static_cast<int64_t>(5))).value(), 0);
}

TEST(CompareFieldsTest, StringsAndBools) {
  EXPECT_LT(CompareFields(FieldValue(std::string("a")),
                          FieldValue(std::string("b"))).value(), 0);
  EXPECT_EQ(CompareFields(FieldValue(true), FieldValue(true)).value(), 0);
  EXPECT_GT(CompareFields(FieldValue(true), FieldValue(false)).value(), 0);
}

TEST(CompareFieldsTest, IncomparableTypesReturnNullopt) {
  EXPECT_FALSE(CompareFields(FieldValue(std::string("a")),
                             FieldValue(static_cast<int64_t>(1))).has_value());
  EXPECT_FALSE(CompareFields(FieldValue(true), FieldValue(1.0)).has_value());
}

TEST(ObjectStoreTest, PutInsertsWithVersionOne) {
  ObjectStore store;
  uint64_t v = store.Put("p1", {{"price", 10.0}}, At(0));
  EXPECT_EQ(v, 1u);
  auto r = store.Get("p1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->version, 1u);
  EXPECT_EQ(store.VersionOf("p1"), 1u);
}

TEST(ObjectStoreTest, PutReplacesAndBumpsVersion) {
  ObjectStore store;
  store.Put("p1", {{"price", 10.0}, {"old", true}}, At(0));
  uint64_t v = store.Put("p1", {{"price", 12.0}}, At(1));
  EXPECT_EQ(v, 2u);
  auto r = store.Get("p1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->GetField("old"), nullptr);  // full replace
}

TEST(ObjectStoreTest, UpdateMergesFields) {
  ObjectStore store;
  store.Put("p1", {{"price", 10.0}, {"stock", static_cast<int64_t>(5)}},
            At(0));
  store.Update("p1", {{"price", 11.0}}, At(1));
  auto r = store.Get("p1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->version, 2u);
  EXPECT_NE(r->GetField("stock"), nullptr);  // preserved
  EXPECT_EQ(std::get<double>(*r->GetField("price")), 11.0);
}

TEST(ObjectStoreTest, UpdateOfAbsentKeyInserts) {
  ObjectStore store;
  store.Update("new", {{"x", true}}, At(0));
  EXPECT_TRUE(store.Get("new").ok());
}

TEST(ObjectStoreTest, GetMissingIsNotFound) {
  ObjectStore store;
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.VersionOf("nope"), 0u);
}

TEST(ObjectStoreTest, DeleteTombstonesAndBumpsVersion) {
  ObjectStore store;
  store.Put("p1", {{"x", true}}, At(0));
  ASSERT_TRUE(store.Delete("p1", At(1)).ok());
  EXPECT_TRUE(store.Get("p1").status().IsNotFound());
  EXPECT_EQ(store.VersionOf("p1"), 2u);  // tombstone is a new version
  EXPECT_EQ(store.Peek("p1"), nullptr);
  EXPECT_TRUE(store.Delete("p1", At(2)).IsNotFound());
}

TEST(ObjectStoreTest, ListenersSeeBeforeAndAfterImages) {
  ObjectStore store;
  // The before pointer is only valid during the callback: copy inside.
  std::optional<Record> seen_before;
  Record seen_after;
  store.AddWriteListener([&](const Record* before, const Record& after) {
    seen_before = before != nullptr ? std::optional<Record>(*before)
                                    : std::nullopt;
    seen_after = after;
  });
  store.Put("p1", {{"price", 10.0}}, At(0));
  EXPECT_FALSE(seen_before.has_value());  // insert: no before image
  EXPECT_EQ(seen_after.version, 1u);

  store.Update("p1", {{"price", 12.0}}, At(1));
  ASSERT_TRUE(seen_before.has_value());
  EXPECT_EQ(std::get<double>(*seen_before->GetField("price")), 10.0);
  EXPECT_EQ(std::get<double>(*seen_after.GetField("price")), 12.0);

  store.Delete("p1", At(2));
  EXPECT_TRUE(seen_after.deleted);
}

TEST(ObjectStoreTest, ScanSkipsDeleted) {
  ObjectStore store;
  store.Put("a", {}, At(0));
  store.Put("b", {}, At(0));
  store.Delete("a", At(1));
  int count = 0;
  store.Scan([&](const Record& r) {
    ++count;
    EXPECT_EQ(r.id, "b");
  });
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace speedkit::storage
