// Robustness fuzz: random corruption of serialized Bloom snapshots must
// never crash, and either fails Deserialize or yields a filter that is
// structurally sane. The snapshot crosses a (simulated) network boundary —
// treat it as untrusted input.
#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "sketch/bloom_filter.h"
#include "sketch/client_sketch.h"

namespace speedkit::sketch {
namespace {

std::string ValidSnapshot() {
  BloomFilter filter(2048, 5);
  for (int i = 0; i < 100; ++i) filter.Add("key" + std::to_string(i));
  return filter.Serialize().value();
}

TEST(SerializationFuzzTest, RandomByteFlipsNeverCrash) {
  std::string valid = ValidSnapshot();
  Pcg32 rng(5);
  for (int round = 0; round < 2000; ++round) {
    std::string corrupted = valid;
    uint32_t flips = 1 + rng.NextBounded(8);
    for (uint32_t i = 0; i < flips; ++i) {
      size_t pos = rng.NextBounded(static_cast<uint32_t>(corrupted.size()));
      corrupted[pos] = static_cast<char>(corrupted[pos] ^
                                         (1 << rng.NextBounded(8)));
    }
    auto result = BloomFilter::Deserialize(corrupted);
    if (result.ok()) {
      // Body flips are undetectable (no checksum by design: the sketch is
      // advisory); the filter must still be structurally sound.
      EXPECT_GE(result->bits(), 64u);
      EXPECT_GE(result->num_hashes(), 1);
      EXPECT_LE(result->num_hashes(), 16);
      result->MightContain("probe");  // must not crash
    }
  }
}

TEST(SerializationFuzzTest, RandomTruncationsNeverCrash) {
  std::string valid = ValidSnapshot();
  for (size_t len = 0; len < valid.size(); len += 7) {
    auto result = BloomFilter::Deserialize(valid.substr(0, len));
    EXPECT_FALSE(result.ok()) << "truncated to " << len;
  }
}

TEST(SerializationFuzzTest, RandomGarbageNeverCrashes) {
  Pcg32 rng(9);
  for (int round = 0; round < 500; ++round) {
    std::string garbage(rng.NextBounded(4096), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Next());
    auto result = BloomFilter::Deserialize(garbage);
    if (result.ok()) {
      result->MightContain("probe");
    }
  }
}

TEST(SerializationFuzzTest, ClientSketchSurvivesCorruptStream) {
  // A client fed a mix of valid and corrupt snapshots must keep working
  // and keep its last good snapshot on corrupt input.
  ClientSketch client(Duration::Seconds(30));
  std::string valid = ValidSnapshot();
  Pcg32 rng(13);
  SimTime t;
  int accepted = 0;
  for (int round = 0; round < 200; ++round) {
    t = t + Duration::Seconds(31);
    if (rng.WithProbability(0.5)) {
      if (client.Update(valid, t).ok()) ++accepted;
    } else {
      std::string bad = valid.substr(0, rng.NextBounded(
                                            static_cast<uint32_t>(valid.size())));
      EXPECT_FALSE(client.Update(bad, t).ok());
    }
    client.MightBeStale("key1");
  }
  EXPECT_GT(accepted, 0);
  EXPECT_TRUE(client.MightBeStale("key1"));     // from last good snapshot
  EXPECT_FALSE(client.MightBeStale("not-in"));  // and it still discriminates
}

}  // namespace
}  // namespace speedkit::sketch
