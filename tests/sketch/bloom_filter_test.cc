#include "sketch/bloom_filter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

namespace speedkit::sketch {
namespace {

std::string Key(int i) { return "https://shop.example.com/api/records/p" + std::to_string(i); }

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(1 << 14, 7);
  for (int i = 0; i < 1000; ++i) filter.Add(Key(i));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(filter.MightContain(Key(i))) << "false negative at " << i;
  }
}

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  BloomFilter filter(1024, 4);
  EXPECT_FALSE(filter.MightContain("anything"));
  EXPECT_EQ(filter.PopCount(), 0u);
  EXPECT_EQ(filter.EstimatedFpr(), 0.0);
}

TEST(BloomFilterTest, ClearResets) {
  BloomFilter filter(1024, 4);
  filter.Add("a");
  EXPECT_TRUE(filter.MightContain("a"));
  filter.Clear();
  EXPECT_FALSE(filter.MightContain("a"));
  EXPECT_EQ(filter.PopCount(), 0u);
}

TEST(BloomFilterTest, BitsRoundedUpToWord) {
  BloomFilter filter(65, 3);
  EXPECT_EQ(filter.bits(), 128u);
  BloomFilter tiny(1, 3);
  EXPECT_EQ(tiny.bits(), 64u);
}

TEST(BloomFilterTest, HashCountClamped) {
  EXPECT_EQ(BloomFilter(64, 0).num_hashes(), 1);
  EXPECT_EQ(BloomFilter(64, 99).num_hashes(), 16);
}

TEST(BloomFilterTest, OptimalSizingMatchesTheory) {
  // m = -n ln p / ln2^2: for n=1000, p=0.01 -> ~9585 bits, k ~ 7.
  size_t bits = BloomFilter::OptimalBits(1000, 0.01);
  EXPECT_NEAR(static_cast<double>(bits), 9585.0, 2.0);
  EXPECT_EQ(BloomFilter::OptimalHashes(bits, 1000), 7);
}

TEST(BloomFilterTest, SerializeDeserializeRoundTrip) {
  BloomFilter filter(2048, 5);
  for (int i = 0; i < 100; ++i) filter.Add(Key(i));
  Result<std::string> bytes = filter.Serialize();
  ASSERT_TRUE(bytes.ok());
  auto restored = BloomFilter::Deserialize(*bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == filter);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(restored->MightContain(Key(i)));
}

TEST(BloomFilterTest, SerializedSizeIsHeaderPlusWords) {
  BloomFilter filter(1024, 4);
  EXPECT_EQ(filter.Serialize().value().size(), 8u + 1024 / 8);
}

TEST(BloomFilterTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(BloomFilter::Deserialize("").ok());
  EXPECT_FALSE(BloomFilter::Deserialize("short").ok());
  // Valid header but truncated body.
  std::string bytes = BloomFilter(1024, 4).Serialize().value();
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(BloomFilter::Deserialize(bytes).ok());
  // Corrupt hash count.
  bytes = BloomFilter(1024, 4).Serialize().value();
  bytes[4] = 99;
  EXPECT_FALSE(BloomFilter::Deserialize(bytes).ok());
}

TEST(BloomFilterTest, SerializeReportsUnrepresentableBitCounts) {
  // A >= 2^48-bit filter cannot exist in memory (32 TiB of words), so the
  // error arm is exercised at the header writer Serialize shares with
  // CountingBloomFilter::Materialize: refusing must mean an OutOfRange
  // status at the API, never the old empty-string sentinel.
  std::string header;
  EXPECT_FALSE(BloomFilter::AppendSnapshotHeader(&header, 1ull << 48, 4));
  EXPECT_TRUE(header.empty());
  EXPECT_TRUE(BloomFilter::AppendSnapshotHeader(&header, (1ull << 48) - 64, 4));
  EXPECT_EQ(header.size(), 8u);
  // The representable path yields a value, not a status.
  Result<std::string> ok = BloomFilter(1024, 4).Serialize();
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(ok.value().empty());
}

TEST(BloomFilterTest, SerializeRoundTripsAtThe32BitBitCountBoundary) {
  // 2^32 bits no longer fits the old 4-byte bit-count field; the widened
  // header must carry the high bits instead of silently truncating to 0.
  constexpr size_t kBits = 1ull << 32;  // 512 MiB of words, transient
  BloomFilter filter(kBits, 3);
  for (int i = 0; i < 50; ++i) filter.Add(Key(i));
  std::string bytes = filter.Serialize().value();
  ASSERT_EQ(bytes.size(), 8u + kBits / 8);
  auto restored = BloomFilter::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->bits(), kBits);
  EXPECT_TRUE(*restored == filter);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(restored->MightContain(Key(i)));
}

TEST(BloomFilterTest, HeaderStaysByteCompatibleBelow32Bits) {
  // Filters under 2^32 bits must serialize byte-identically to the old
  // [u32 bits][u16 k][u16 reserved=0] layout.
  BloomFilter filter(1024, 4);
  std::string bytes = filter.Serialize().value();
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0x00);  // 1024 = 0x400 LE
  EXPECT_EQ(static_cast<uint8_t>(bytes[1]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]), 4);     // k
  EXPECT_EQ(static_cast<uint8_t>(bytes[6]), 0);     // bits_hi
  EXPECT_EQ(static_cast<uint8_t>(bytes[7]), 0);
}

// ---------------------------------------------------------------------------
// Property: measured FPR stays within ~2x of the analytic optimum across
// filter sizings (the sketch's protocol-level guarantee is "false positives
// are rare and bounded"; a broken hash or indexing bug shows up here).
// ---------------------------------------------------------------------------

class BloomFprProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BloomFprProperty, MeasuredFprNearAnalytic) {
  auto [n, target_fpr] = GetParam();
  BloomFilter filter = BloomFilter::ForCapacity(n, target_fpr);
  for (int i = 0; i < n; ++i) filter.Add(Key(i));

  int false_positives = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    if (filter.MightContain("absent/" + std::to_string(i))) {
      ++false_positives;
    }
  }
  double measured = static_cast<double>(false_positives) / kProbes;
  EXPECT_LT(measured, target_fpr * 2.0 + 0.002)
      << "n=" << n << " target=" << target_fpr;
  // The estimator from fill factor should agree with measurement.
  EXPECT_NEAR(filter.EstimatedFpr(), measured, target_fpr + 0.002);
}

INSTANTIATE_TEST_SUITE_P(
    Sizings, BloomFprProperty,
    ::testing::Combine(::testing::Values(100, 1000, 10000),
                       ::testing::Values(0.1, 0.05, 0.01)));

// Property: no false negatives for any sizing, even undersized filters.
class BloomNoFalseNegativeProperty : public ::testing::TestWithParam<int> {};

TEST_P(BloomNoFalseNegativeProperty, AllInsertedFound) {
  int n = GetParam();
  BloomFilter filter(256, 4);  // deliberately small: heavy saturation
  for (int i = 0; i < n; ++i) filter.Add(Key(i));
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(filter.MightContain(Key(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, BloomNoFalseNegativeProperty,
                         ::testing::Values(1, 10, 100, 1000, 5000));

}  // namespace
}  // namespace speedkit::sketch
