#include "sketch/client_sketch.h"

#include <gtest/gtest.h>

#include "sketch/cache_sketch.h"

namespace speedkit::sketch {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

TEST(ClientSketchTest, FreshClientNeedsRefreshAndAnswersConservatively) {
  ClientSketch client(Duration::Seconds(30));
  EXPECT_TRUE(client.NeedsRefresh(At(0)));
  EXPECT_FALSE(client.HasSnapshot());
  // No snapshot: everything might be stale.
  EXPECT_TRUE(client.MightBeStale("anything"));
  EXPECT_EQ(client.Age(At(0)), Duration::Max());
}

TEST(ClientSketchTest, UpdateInstallsSnapshot) {
  ClientSketch client(Duration::Seconds(30));
  BloomFilter filter(1024, 4);
  filter.Add("stale-key");
  ASSERT_TRUE(client.Update(filter.Serialize().value(), At(5)).ok());
  EXPECT_TRUE(client.HasSnapshot());
  EXPECT_TRUE(client.MightBeStale("stale-key"));
  EXPECT_FALSE(client.MightBeStale("fresh-key"));
  EXPECT_EQ(client.fetched_at(), At(5));
}

TEST(ClientSketchTest, RefreshDueExactlyAtDelta) {
  ClientSketch client(Duration::Seconds(30));
  ASSERT_TRUE(client.Update(BloomFilter(64, 1).Serialize().value(), At(0)).ok());
  EXPECT_FALSE(client.NeedsRefresh(At(29.999)));
  EXPECT_TRUE(client.NeedsRefresh(At(30)));
}

TEST(ClientSketchTest, AgeTracksSnapshot) {
  ClientSketch client(Duration::Seconds(30));
  ASSERT_TRUE(client.Update(BloomFilter(64, 1).Serialize().value(), At(10)).ok());
  EXPECT_EQ(client.Age(At(25)), Duration::Seconds(15));
}

TEST(ClientSketchTest, CorruptSnapshotRejectedKeepsOld) {
  ClientSketch client(Duration::Seconds(30));
  BloomFilter filter(1024, 4);
  filter.Add("k");
  ASSERT_TRUE(client.Update(filter.Serialize().value(), At(0)).ok());
  EXPECT_FALSE(client.Update("garbage", At(10)).ok());
  // Old snapshot still answers.
  EXPECT_TRUE(client.MightBeStale("k"));
  EXPECT_EQ(client.fetched_at(), At(0));
}

TEST(ClientSketchTest, StatsCountChecksAndPositives) {
  ClientSketch client(Duration::Seconds(30));
  BloomFilter filter(1024, 4);
  filter.Add("hit");
  ASSERT_TRUE(client.Update(filter.Serialize().value(), At(0)).ok());
  client.MightBeStale("hit");
  client.MightBeStale("miss");
  client.MightBeStale("miss2");
  EXPECT_EQ(client.stats().checks, 3u);
  EXPECT_EQ(client.stats().positives, 1u);
  EXPECT_EQ(client.stats().refreshes, 1u);
  EXPECT_GT(client.stats().bytes_fetched, 0u);
}

TEST(ClientSketchTest, EndToEndWithServerSketch) {
  CacheSketch server(1000, 0.01);
  ClientSketch client(Duration::Seconds(10));
  server.ReportInvalidation("k1", At(120), At(0));
  ASSERT_TRUE(client.Update(server.SerializedSnapshot(At(1)), At(1)).ok());
  EXPECT_TRUE(client.MightBeStale("k1"));
  EXPECT_FALSE(client.MightBeStale("k2"));
  // After server-side expiry, the next refresh clears the flag.
  ASSERT_TRUE(client.Update(server.SerializedSnapshot(At(121)), At(121)).ok());
  EXPECT_FALSE(client.MightBeStale("k1"));
}

}  // namespace
}  // namespace speedkit::sketch
