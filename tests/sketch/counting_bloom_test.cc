#include "sketch/counting_bloom.h"

#include <gtest/gtest.h>

#include <string>

namespace speedkit::sketch {
namespace {

std::string Key(int i) { return "key/" + std::to_string(i); }

TEST(CountingBloomTest, AddThenContains) {
  CountingBloomFilter cbf(4096, 5);
  cbf.Add("a");
  EXPECT_TRUE(cbf.MightContain("a"));
  EXPECT_FALSE(cbf.MightContain("b"));
}

TEST(CountingBloomTest, RemoveDeletesKey) {
  CountingBloomFilter cbf(4096, 5);
  cbf.Add("a");
  cbf.Remove("a");
  EXPECT_FALSE(cbf.MightContain("a"));
}

TEST(CountingBloomTest, RemoveDoesNotDisturbOtherKeys) {
  CountingBloomFilter cbf(1 << 14, 5);
  for (int i = 0; i < 500; ++i) cbf.Add(Key(i));
  for (int i = 0; i < 250; ++i) cbf.Remove(Key(i));
  // Every remaining key must still be found (no false negatives).
  for (int i = 250; i < 500; ++i) {
    EXPECT_TRUE(cbf.MightContain(Key(i))) << i;
  }
}

TEST(CountingBloomTest, DoubleAddNeedsDoubleRemove) {
  CountingBloomFilter cbf(4096, 5);
  cbf.Add("a");
  cbf.Add("a");
  cbf.Remove("a");
  EXPECT_TRUE(cbf.MightContain("a"));
  cbf.Remove("a");
  EXPECT_FALSE(cbf.MightContain("a"));
}

TEST(CountingBloomTest, SaturatedCountersAreSticky) {
  CountingBloomFilter cbf(64, 1);
  // 16+ adds of the same key saturate its counter at 15.
  for (int i = 0; i < 20; ++i) cbf.Add("hot");
  EXPECT_GE(cbf.saturated_cells(), 1u);
  // Removing 20 times must NOT produce a false negative for another key
  // hashing to the same cell: the counter sticks at 15.
  for (int i = 0; i < 20; ++i) cbf.Remove("hot");
  EXPECT_TRUE(cbf.MightContain("hot"));  // sticky, conservative
}

TEST(CountingBloomTest, CellsRounding) {
  CountingBloomFilter cbf(100, 4);
  EXPECT_EQ(cbf.cells(), 128u);
}

TEST(CountingBloomTest, ClearResets) {
  CountingBloomFilter cbf(1024, 4);
  cbf.Add("a");
  cbf.Clear();
  EXPECT_FALSE(cbf.MightContain("a"));
  EXPECT_EQ(cbf.saturated_cells(), 0u);
}

TEST(CountingBloomTest, MaterializeMatchesMembership) {
  CountingBloomFilter cbf(1 << 13, 6);
  for (int i = 0; i < 300; ++i) cbf.Add(Key(i));
  for (int i = 100; i < 200; ++i) cbf.Remove(Key(i));
  BloomFilter snapshot = cbf.Materialize();
  EXPECT_EQ(snapshot.bits(), cbf.cells());
  EXPECT_EQ(snapshot.num_hashes(), cbf.num_hashes());
  // Snapshot and CBF must answer identically on inserted & removed keys.
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(snapshot.MightContain(Key(i)), cbf.MightContain(Key(i))) << i;
  }
}

TEST(CountingBloomTest, MaterializeOfEmptyIsEmpty) {
  CountingBloomFilter cbf(1024, 4);
  BloomFilter snapshot = cbf.Materialize();
  EXPECT_EQ(snapshot.PopCount(), 0u);
}

TEST(CountingBloomTest, RemoveOfAbsentKeyCountsUnderflows) {
  CountingBloomFilter cbf(4096, 5);
  EXPECT_EQ(cbf.underflows(), 0u);
  cbf.Remove("ghost");
  // Every probe found its cell at zero: one underflow per hash function,
  // and the cells stay at zero (no wrap-around).
  EXPECT_EQ(cbf.underflows(), 5u);
  EXPECT_FALSE(cbf.MightContain("ghost"));
}

TEST(CountingBloomTest, BalancedLifecycleNeverUnderflows) {
  CountingBloomFilter cbf(1 << 14, 5);
  for (int i = 0; i < 500; ++i) cbf.Add(Key(i));
  for (int i = 0; i < 500; ++i) cbf.Remove(Key(i));
  EXPECT_EQ(cbf.underflows(), 0u);
}

TEST(CountingBloomTest, ClearResetsUnderflows) {
  CountingBloomFilter cbf(1024, 4);
  cbf.Remove("ghost");
  ASSERT_GT(cbf.underflows(), 0u);
  cbf.Clear();
  EXPECT_EQ(cbf.underflows(), 0u);
}

TEST(CountingBloomTest, MaterializeRoundTripsAtThe32BitCellCountBoundary) {
  // 2^32 cells overflows a u32, so a header that writes the bit count as
  // 32 bits materializes a snapshot claiming zero bits. The shared
  // 48-bit header must carry the full count through serialization too.
  constexpr size_t kCells = 1ull << 32;
  CountingBloomFilter cbf(kCells, 4);
  cbf.Add("big/a");
  cbf.Add("big/b");
  BloomFilter snapshot = cbf.Materialize();
  EXPECT_EQ(snapshot.bits(), kCells);
  EXPECT_EQ(snapshot.num_hashes(), 4);
  EXPECT_TRUE(snapshot.MightContain("big/a"));
  EXPECT_TRUE(snapshot.MightContain("big/b"));
  EXPECT_FALSE(snapshot.MightContain("big/c"));
  // 2 keys x 4 hashes, minus any colliding positions.
  EXPECT_GE(snapshot.PopCount(), 4u);
  EXPECT_LE(snapshot.PopCount(), 8u);

  auto restored = BloomFilter::Deserialize(snapshot.Serialize().value());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->bits(), kCells);
  EXPECT_EQ(restored->PopCount(), snapshot.PopCount());
  EXPECT_TRUE(restored->MightContain("big/a"));
}

TEST(CountingBloomTest, MaterializedSnapshotSerializes) {
  CountingBloomFilter cbf(2048, 5);
  cbf.Add("x");
  std::string bytes = cbf.Materialize().Serialize().value();
  auto restored = BloomFilter::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->MightContain("x"));
}

}  // namespace
}  // namespace speedkit::sketch
