#include "sketch/blocked_bloom.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sketch/bloom_filter.h"

namespace speedkit::sketch {
namespace {

std::string Key(int i) { return "https://shop.example.com/api/records/p" + std::to_string(i); }

TEST(BlockedBloomTest, NoFalseNegatives) {
  BlockedBloomFilter filter(1 << 16, 7);
  for (int i = 0; i < 2000; ++i) filter.Add(Key(i));
  for (int i = 0; i < 2000; ++i) {
    EXPECT_TRUE(filter.MightContain(Key(i))) << "false negative at " << i;
  }
}

TEST(BlockedBloomTest, BitsRoundUpToWholeBlocks) {
  BlockedBloomFilter filter(513, 4);
  EXPECT_EQ(filter.bits(), 2 * BlockedBloomFilter::kBlockBits);
  BlockedBloomFilter tiny(1, 4);
  EXPECT_EQ(tiny.bits(), BlockedBloomFilter::kBlockBits);
  EXPECT_EQ(tiny.num_blocks(), 1u);
}

// The headline trade: the blocked filter's measured FPR stays within a
// small constant factor of the plain BloomFilter at the SAME bits and
// hash count (the blocking skew costs ~1.5-3x, not an order of magnitude).
TEST(BlockedBloomTest, FprParityWithPlainBloomAtEqualSizing) {
  constexpr int kInserted = 10000;
  size_t bits = BloomFilter::OptimalBits(kInserted, 0.01);
  bits = (bits + BlockedBloomFilter::kBlockBits - 1) /
         BlockedBloomFilter::kBlockBits * BlockedBloomFilter::kBlockBits;
  int k = BloomFilter::OptimalHashes(bits, kInserted);

  BloomFilter plain(bits, k);
  BlockedBloomFilter blocked(bits, k);
  ASSERT_EQ(plain.bits(), blocked.bits());
  ASSERT_EQ(plain.num_hashes(), blocked.num_hashes());
  for (int i = 0; i < kInserted; ++i) {
    plain.Add(Key(i));
    blocked.Add(Key(i));
  }

  constexpr int kProbes = 50000;
  int plain_fp = 0;
  int blocked_fp = 0;
  for (int i = 0; i < kProbes; ++i) {
    std::string probe = Key(kInserted + 1000 + i);
    if (plain.MightContain(probe)) plain_fp++;
    if (blocked.MightContain(probe)) blocked_fp++;
  }
  double plain_rate = static_cast<double>(plain_fp) / kProbes;
  double blocked_rate = static_cast<double>(blocked_fp) / kProbes;
  // Plain filter should sit near its 1% design point.
  EXPECT_LT(plain_rate, 0.02);
  // Blocked pays the skew tax but stays in the same regime.
  EXPECT_LT(blocked_rate, 3.0 * plain_rate + 0.005);
}

TEST(BlockedBloomTest, BatchMatchesScalarBitForBit) {
  BlockedBloomFilter filter(1 << 15, 7);
  for (int i = 0; i < 3000; i += 2) filter.Add(Key(i));

  constexpr size_t kN = 4097;  // deliberately not a multiple of the lane
  std::vector<std::string> keys;
  std::vector<std::string_view> views;
  keys.reserve(kN);
  for (size_t i = 0; i < kN; ++i) keys.push_back(Key(static_cast<int>(i)));
  views.assign(keys.begin(), keys.end());

  std::unique_ptr<bool[]> out(new bool[kN]);
  filter.MightContainBatch(views.data(), kN, out.get());
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], filter.MightContain(views[i])) << "key " << keys[i];
  }
}

TEST(BlockedBloomTest, BatchHandlesEmptyInput) {
  BlockedBloomFilter filter(1 << 10, 4);
  filter.MightContainBatch(nullptr, 0, nullptr);  // must not crash
}

TEST(BlockedBloomTest, SerializeDeserializeRoundTrip) {
  BlockedBloomFilter filter(4 * BlockedBloomFilter::kBlockBits, 5);
  for (int i = 0; i < 100; ++i) filter.Add(Key(i));

  Result<std::string> bytes = filter.Serialize();
  ASSERT_TRUE(bytes.ok());
  Result<BlockedBloomFilter> restored = BlockedBloomFilter::Deserialize(*bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == filter);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(restored->MightContain(Key(i)));
}

// Wire format is the plain snapshot layout; a bit count that is not a
// whole number of blocks cannot be a blocked filter.
TEST(BlockedBloomTest, DeserializeRejectsUnalignedBitCount) {
  BloomFilter plain(128, 3);  // 128 bits: valid plain filter, not blocked
  plain.Add("x");
  Result<std::string> bytes = plain.Serialize();
  ASSERT_TRUE(bytes.ok());
  Result<BlockedBloomFilter> restored = BlockedBloomFilter::Deserialize(*bytes);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruption);
}

TEST(BlockedBloomTest, DeserializeRejectsTruncatedInput) {
  BlockedBloomFilter filter(BlockedBloomFilter::kBlockBits, 3);
  filter.Add("x");
  Result<std::string> bytes = filter.Serialize();
  ASSERT_TRUE(bytes.ok());
  std::string truncated = bytes->substr(0, bytes->size() - 4);
  Result<BlockedBloomFilter> restored =
      BlockedBloomFilter::Deserialize(truncated);
  EXPECT_FALSE(restored.ok());
}

TEST(BlockedBloomTest, ClearResets) {
  BlockedBloomFilter filter(1 << 10, 4);
  filter.Add("a");
  EXPECT_TRUE(filter.MightContain("a"));
  EXPECT_GT(filter.PopCount(), 0u);
  filter.Clear();
  EXPECT_FALSE(filter.MightContain("a"));
  EXPECT_EQ(filter.PopCount(), 0u);
  EXPECT_EQ(filter.EstimatedFpr(), 0.0);
}

}  // namespace
}  // namespace speedkit::sketch
