#include "sketch/cache_sketch.h"

#include <gtest/gtest.h>

#include <string>

namespace speedkit::sketch {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

TEST(CacheSketchTest, ReportedKeyAppearsInSnapshot) {
  CacheSketch sketch(1000, 0.01);
  sketch.ReportInvalidation("k1", At(60), At(0));
  BloomFilter snap = sketch.Snapshot(At(1));
  EXPECT_TRUE(snap.MightContain("k1"));
  EXPECT_TRUE(sketch.Contains("k1"));
  EXPECT_EQ(sketch.entries(), 1u);
}

TEST(CacheSketchTest, KeyExpiresAtStaleHorizon) {
  CacheSketch sketch(1000, 0.01);
  sketch.ReportInvalidation("k1", At(60), At(0));
  EXPECT_TRUE(sketch.Snapshot(At(59)).MightContain("k1"));
  EXPECT_FALSE(sketch.Snapshot(At(60)).MightContain("k1"));
  EXPECT_EQ(sketch.entries(), 0u);
  EXPECT_EQ(sketch.stats().expirations, 1u);
}

TEST(CacheSketchTest, PastHorizonReportsDropped) {
  CacheSketch sketch(1000, 0.01);
  sketch.ReportInvalidation("k1", At(5), At(10));  // already expired
  EXPECT_FALSE(sketch.Contains("k1"));
  EXPECT_EQ(sketch.stats().inserts, 0u);
  EXPECT_EQ(sketch.stats().reports, 1u);
}

TEST(CacheSketchTest, ReReportExtendsHorizon) {
  CacheSketch sketch(1000, 0.01);
  sketch.ReportInvalidation("k1", At(30), At(0));
  sketch.ReportInvalidation("k1", At(90), At(10));  // extend
  EXPECT_EQ(sketch.stats().inserts, 1u);
  EXPECT_EQ(sketch.stats().extensions, 1u);
  EXPECT_TRUE(sketch.Snapshot(At(60)).MightContain("k1"));
  EXPECT_FALSE(sketch.Snapshot(At(90)).MightContain("k1"));
}

TEST(CacheSketchTest, ShorterReReportDoesNotShrinkHorizon) {
  CacheSketch sketch(1000, 0.01);
  sketch.ReportInvalidation("k1", At(90), At(0));
  sketch.ReportInvalidation("k1", At(30), At(1));  // must not shrink
  EXPECT_TRUE(sketch.Snapshot(At(60)).MightContain("k1"));
}

TEST(CacheSketchTest, ManyKeysExpireIndependently) {
  CacheSketch sketch(10000, 0.01);
  for (int i = 0; i < 100; ++i) {
    sketch.ReportInvalidation("k" + std::to_string(i), At(10 + i), At(0));
  }
  sketch.ExpireUntil(At(60));
  // Keys with horizon <= 60s (i <= 50) are gone; later ones remain.
  EXPECT_FALSE(sketch.Contains("k0"));
  EXPECT_FALSE(sketch.Contains("k50"));
  EXPECT_TRUE(sketch.Contains("k51"));
  EXPECT_TRUE(sketch.Contains("k99"));
  EXPECT_EQ(sketch.entries(), 49u);
}

TEST(CacheSketchTest, SnapshotNeverMissesTrackedKey) {
  // Protocol invariant: the snapshot must contain every tracked key — a
  // miss would let a client serve a stale copy. Heavy load included.
  CacheSketch sketch(500, 0.05);  // deliberately undersized vs. load below
  for (int i = 0; i < 2000; ++i) {
    sketch.ReportInvalidation("key" + std::to_string(i), At(100), At(0));
  }
  BloomFilter snap = sketch.Snapshot(At(1));
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(snap.MightContain("key" + std::to_string(i))) << i;
  }
}

TEST(CacheSketchTest, SerializedSnapshotDeserializes) {
  CacheSketch sketch(1000, 0.01);
  sketch.ReportInvalidation("k1", At(60), At(0));
  auto filter = BloomFilter::Deserialize(sketch.SerializedSnapshot(At(1)));
  ASSERT_TRUE(filter.ok());
  EXPECT_TRUE(filter->MightContain("k1"));
}

TEST(CacheSketchTest, ExpirationRemovesFromFilterToo) {
  CacheSketch sketch(1000, 0.001);
  sketch.ReportInvalidation("solo", At(10), At(0));
  sketch.ExpireUntil(At(10));
  // With one key and a tight FPR the filter should be clean again.
  EXPECT_FALSE(sketch.Snapshot(At(11)).MightContain("solo"));
  EXPECT_EQ(sketch.Snapshot(At(11)).PopCount(), 0u);
}

TEST(CacheSketchTest, CompactSnapshotContainsAllTrackedKeys) {
  CacheSketch sketch(100000, 0.05);  // provisioned far above actual load
  for (int i = 0; i < 500; ++i) {
    sketch.ReportInvalidation("k" + std::to_string(i), At(100), At(0));
  }
  BloomFilter compact = sketch.CompactSnapshot(At(1), 0.02);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(compact.MightContain("k" + std::to_string(i))) << i;
  }
}

TEST(CacheSketchTest, CompactSnapshotSizeScalesWithEntriesNotCapacity) {
  CacheSketch sketch(100000, 0.05);
  for (int i = 0; i < 100; ++i) {
    sketch.ReportInvalidation("k" + std::to_string(i), At(100), At(0));
  }
  BloomFilter compact = sketch.CompactSnapshot(At(1), 0.02);
  BloomFilter provisioned = sketch.Snapshot(At(1));
  EXPECT_LT(compact.SizeBytes() * 100, provisioned.SizeBytes());
  // And it keeps the target FPR.
  int false_positives = 0;
  for (int i = 0; i < 20000; ++i) {
    if (compact.MightContain("absent" + std::to_string(i))) ++false_positives;
  }
  EXPECT_LT(false_positives / 20000.0, 0.05);
}

TEST(CacheSketchTest, EmptyCompactSnapshotIsTiny) {
  CacheSketch sketch(100000, 0.05);
  BloomFilter compact = sketch.CompactSnapshot(At(0));
  EXPECT_EQ(compact.PopCount(), 0u);
  EXPECT_LE(compact.SizeBytes(), 64u);
}

TEST(CacheSketchTest, StatsTrackSnapshots) {
  CacheSketch sketch(100, 0.01);
  sketch.Snapshot(At(0));
  sketch.Snapshot(At(1));
  EXPECT_EQ(sketch.stats().snapshots, 2u);
}

TEST(CacheSketchTest, FullLifecycleNeverUnderflowsTheFilter) {
  // The add/remove discipline over the backing counting filter: inserts,
  // horizon extensions (which must NOT double-add), and expirations must
  // balance exactly — any underflow means a counter went wrong and a
  // later snapshot could miss a tracked key.
  CacheSketch sketch(1000, 0.01);
  for (int i = 0; i < 200; ++i) {
    sketch.ReportInvalidation("k" + std::to_string(i), At(10 + i % 50), At(0));
  }
  // Extend some horizons (re-reports of tracked keys).
  for (int i = 0; i < 100; ++i) {
    sketch.ReportInvalidation("k" + std::to_string(i), At(200), At(5));
  }
  // Shorter re-reports (dropped) and expired reports (dropped) mixed in.
  sketch.ReportInvalidation("k0", At(20), At(6));
  sketch.ReportInvalidation("late", At(3), At(6));
  sketch.ExpireUntil(At(1000));
  EXPECT_EQ(sketch.entries(), 0u);
  EXPECT_EQ(sketch.filter().underflows(), 0u);
  EXPECT_EQ(sketch.Snapshot(At(1000)).PopCount(), 0u);
}

}  // namespace
}  // namespace speedkit::sketch
