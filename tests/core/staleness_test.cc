#include "core/staleness.h"

#include <gtest/gtest.h>

namespace speedkit::core {
namespace {

SimTime At(double seconds) {
  return SimTime::Origin() + Duration::Seconds(seconds);
}

TEST(StalenessTrackerTest, CurrentReadIsNotStale) {
  StalenessTracker tracker;
  tracker.RecordWrite("k", 1, At(0));
  EXPECT_EQ(tracker.RecordRead("k", 1, At(10)), Duration::Zero());
  EXPECT_EQ(tracker.report().stale_reads, 0u);
  EXPECT_EQ(tracker.report().reads, 1u);
}

TEST(StalenessTrackerTest, UnknownKeyIsNotStale) {
  StalenessTracker tracker;
  EXPECT_EQ(tracker.RecordRead("never-written", 5, At(10)), Duration::Zero());
}

TEST(StalenessTrackerTest, StaleReadMeasuredFromOverwriteTime) {
  StalenessTracker tracker;
  tracker.RecordWrite("k", 1, At(0));
  tracker.RecordWrite("k", 2, At(100));
  // Reading v1 at t=130: v1 died at t=100 -> staleness 30s.
  EXPECT_EQ(tracker.RecordRead("k", 1, At(130)), Duration::Seconds(30));
  EXPECT_EQ(tracker.report().stale_reads, 1u);
  EXPECT_EQ(tracker.report().max_staleness, Duration::Seconds(30));
}

TEST(StalenessTrackerTest, MultipleVersionsMeasureAgainstNextWrite) {
  StalenessTracker tracker;
  tracker.RecordWrite("k", 1, At(0));
  tracker.RecordWrite("k", 2, At(10));
  tracker.RecordWrite("k", 3, At(20));
  // v1 died at t=10, not t=20.
  EXPECT_EQ(tracker.RecordRead("k", 1, At(25)), Duration::Seconds(15));
  // v2 died at t=20.
  EXPECT_EQ(tracker.RecordRead("k", 2, At(25)), Duration::Seconds(5));
}

TEST(StalenessTrackerTest, FutureVersionTreatedAsCurrent) {
  StalenessTracker tracker;
  tracker.RecordWrite("k", 1, At(0));
  EXPECT_EQ(tracker.RecordRead("k", 7, At(5)), Duration::Zero());
}

TEST(StalenessTrackerTest, OutOfOrderWritesIgnored) {
  StalenessTracker tracker;
  tracker.RecordWrite("k", 2, At(10));
  tracker.RecordWrite("k", 1, At(50));  // stale write event: dropped
  EXPECT_EQ(tracker.RecordRead("k", 2, At(60)), Duration::Zero());
}

TEST(StalenessTrackerTest, RingOverflowClampsAndCounts) {
  StalenessTracker tracker(/*ring_capacity=*/4);
  for (uint64_t v = 1; v <= 10; ++v) {
    tracker.RecordWrite("k", v, At(static_cast<double>(v)));
  }
  // v1 rotated out of the ring: staleness is clamped, and flagged.
  tracker.RecordRead("k", 1, At(20));
  EXPECT_EQ(tracker.report().stale_reads, 1u);
  EXPECT_EQ(tracker.report().clamped, 1u);
  // Clamped staleness is still positive (bounded below).
  EXPECT_GT(tracker.report().max_staleness, Duration::Zero());
}

TEST(StalenessTrackerTest, HistogramCollectsStaleReadsOnly) {
  StalenessTracker tracker;
  tracker.RecordWrite("k", 1, At(0));
  tracker.RecordWrite("k", 2, At(10));
  tracker.RecordRead("k", 2, At(20));  // current
  tracker.RecordRead("k", 1, At(20));  // stale by 10s
  EXPECT_EQ(tracker.staleness_us().count(), 1u);
  EXPECT_NEAR(static_cast<double>(tracker.staleness_us().max()), 1e7, 1e5);
}

TEST(StalenessTrackerTest, StaleFraction) {
  StalenessTracker tracker;
  tracker.RecordWrite("k", 1, At(0));
  tracker.RecordWrite("k", 2, At(1));
  tracker.RecordRead("k", 2, At(2));
  tracker.RecordRead("k", 1, At(2));
  EXPECT_DOUBLE_EQ(tracker.report().StaleFraction(), 0.5);
}

TEST(StalenessTrackerTest, DeltaBoundCountsViolations) {
  StalenessTracker tracker;
  tracker.SetDeltaBound(Duration::Seconds(20));
  tracker.RecordWrite("k", 1, At(0));
  tracker.RecordWrite("k", 2, At(100));
  // 10s stale: within the bound.
  tracker.RecordRead("k", 1, At(110));
  EXPECT_EQ(tracker.report().stale_reads, 1u);
  EXPECT_EQ(tracker.report().delta_violations, 0u);
  // 30s stale: over the bound.
  tracker.RecordRead("k", 1, At(130));
  EXPECT_EQ(tracker.report().stale_reads, 2u);
  EXPECT_EQ(tracker.report().delta_violations, 1u);
  EXPECT_DOUBLE_EQ(tracker.report().ViolationFraction(), 0.5);
}

TEST(StalenessTrackerTest, ExcusedStaleReadIsNeverAViolation) {
  StalenessTracker tracker;
  tracker.SetDeltaBound(Duration::Seconds(20));
  tracker.RecordWrite("k", 1, At(0));
  tracker.RecordWrite("k", 2, At(100));
  // An offline serve during an outage: 200s stale, but excused.
  tracker.RecordRead("k", 1, At(300), /*excused=*/true);
  EXPECT_EQ(tracker.report().stale_reads, 1u);
  EXPECT_EQ(tracker.report().excused_stale_reads, 1u);
  EXPECT_EQ(tracker.report().delta_violations, 0u);
  // Staleness itself is still measured and reported.
  EXPECT_EQ(tracker.report().max_staleness, Duration::Seconds(200));
}

TEST(StalenessTrackerTest, UnarmedBoundNeverViolates) {
  StalenessTracker tracker;  // delta_bound stays Duration::Max()
  tracker.RecordWrite("k", 1, At(0));
  tracker.RecordWrite("k", 2, At(1));
  tracker.RecordRead("k", 1, At(100000));
  EXPECT_EQ(tracker.report().stale_reads, 1u);
  EXPECT_EQ(tracker.report().delta_violations, 0u);
}

TEST(StalenessTrackerTest, ReportMergeSumsViolationAccounting) {
  StalenessTracker a;
  a.SetDeltaBound(Duration::Seconds(1));
  a.RecordWrite("k", 1, At(0));
  a.RecordWrite("k", 2, At(1));
  a.RecordRead("k", 1, At(10));                    // violation
  a.RecordRead("k", 1, At(20), /*excused=*/true);  // excused

  StalenessReport merged;
  merged.Merge(a.report());
  merged.Merge(a.report());
  EXPECT_EQ(merged.reads, 4u);
  EXPECT_EQ(merged.delta_violations, 2u);
  EXPECT_EQ(merged.excused_stale_reads, 2u);
  EXPECT_EQ(merged.max_staleness, a.report().max_staleness);
}

}  // namespace
}  // namespace speedkit::core
