#include "core/stack.h"

#include <gtest/gtest.h>

namespace speedkit::core {
namespace {

TEST(StackTest, SpeedKitVariantWiresEverything) {
  StackConfig config;
  SpeedKitStack stack(config);
  EXPECT_NE(stack.sketch(), nullptr);
  EXPECT_NE(stack.pipeline(), nullptr);
  EXPECT_EQ(stack.cdn().num_edges(), config.cdn_edges);
  proxy::ProxyConfig pc = stack.DefaultProxyConfig();
  EXPECT_TRUE(pc.enabled);
  EXPECT_TRUE(pc.use_sketch);
  EXPECT_TRUE(pc.use_cdn);
  EXPECT_EQ(pc.sketch_refresh_interval, config.coherence.delta);
}

TEST(StackTest, FixedTtlCdnHasNoCoherence) {
  StackConfig config;
  config.variant = SystemVariant::kFixedTtlCdn;
  SpeedKitStack stack(config);
  EXPECT_EQ(stack.sketch(), nullptr);
  EXPECT_EQ(stack.pipeline(), nullptr);
  EXPECT_FALSE(stack.DefaultProxyConfig().use_sketch);
}

TEST(StackTest, NoCachingDisablesEverything) {
  StackConfig config;
  config.variant = SystemVariant::kNoCaching;
  SpeedKitStack stack(config);
  proxy::ProxyConfig pc = stack.DefaultProxyConfig();
  EXPECT_FALSE(pc.enabled);
  EXPECT_FALSE(pc.use_cdn);
  EXPECT_EQ(pc.browser_cache_bytes, 1u);
}

TEST(StackTest, PureInvalidationKeepsPipelineDropsSketch) {
  StackConfig config;
  config.variant = SystemVariant::kPureInvalidation;
  SpeedKitStack stack(config);
  EXPECT_EQ(stack.sketch(), nullptr);
  EXPECT_NE(stack.pipeline(), nullptr);
  EXPECT_FALSE(stack.DefaultProxyConfig().use_sketch);
}

TEST(StackTest, VariantNames) {
  EXPECT_EQ(SystemVariantName(SystemVariant::kSpeedKit), "speed_kit");
  EXPECT_EQ(SystemVariantName(SystemVariant::kFixedTtlCdn), "fixed_ttl_cdn");
  EXPECT_EQ(SystemVariantName(SystemVariant::kNoCaching), "no_caching");
  EXPECT_EQ(SystemVariantName(SystemVariant::kPureInvalidation),
            "pure_invalidation");
}

TEST(StackTest, WritesFlowIntoStalenessTracker) {
  StackConfig config;
  SpeedKitStack stack(config);
  stack.store().Put("p1", {{"price", 10.0}}, stack.clock().Now());
  stack.store().Update("p1", {{"price", 11.0}}, stack.clock().Now());
  // Reading v1 after v2 exists counts as stale.
  stack.staleness().RecordRead(invalidation::RecordCacheKey("p1"), 1,
                               stack.clock().Now());
  EXPECT_EQ(stack.staleness().report().stale_reads, 1u);
}

TEST(StackTest, WritesFlowIntoSketchViaPipeline) {
  StackConfig config;
  SpeedKitStack stack(config);
  std::string key = invalidation::RecordCacheKey("p1");
  stack.store().Put("p1", {{"price", 10.0}}, stack.clock().Now());
  // Serve once so the expiry book knows copies are outstanding.
  stack.origin().Handle(http::HttpRequest::Get(*http::Url::Parse(key)));
  stack.store().Update("p1", {{"price", 11.0}}, stack.clock().Now());
  EXPECT_TRUE(stack.sketch()->Contains(key));
}

TEST(StackTest, AdvanceRunsScheduledPurges) {
  StackConfig config;
  SpeedKitStack stack(config);
  std::string key = invalidation::RecordCacheKey("p1");
  stack.store().Put("p1", {{"price", 10.0}}, stack.clock().Now());
  // Seed an edge with the response.
  http::HttpResponse resp =
      stack.origin().Handle(http::HttpRequest::Get(*http::Url::Parse(key)));
  stack.cdn().edge(0).Store(key, resp, stack.clock().Now());
  stack.store().Update("p1", {{"price", 11.0}}, stack.clock().Now());
  stack.Advance(Duration::Seconds(5));
  EXPECT_EQ(stack.cdn().edge(0).Lookup(key, stack.clock().Now()).outcome,
            cache::LookupOutcome::kMiss);
}

TEST(StackTest, DeterministicAcrossRuns) {
  auto run = [] {
    StackConfig config;
    config.seed = 99;
    SpeedKitStack stack(config);
    auto client = stack.MakeClient(1);
    stack.store().Put("p1", {{"price", 10.0}}, stack.clock().Now());
    auto r = client->Fetch(invalidation::RecordCacheKey("p1"));
    return r.latency.micros();
  };
  EXPECT_EQ(run(), run());
}

TEST(StackTest, MakeClientUsesVariantDefaults) {
  StackConfig config;
  config.variant = SystemVariant::kNoCaching;
  SpeedKitStack stack(config);
  auto client = stack.MakeClient(1);
  EXPECT_FALSE(client->config().enabled);
}

TEST(StackTest, OriginOutageWindowTogglesAvailability) {
  StackConfig config;
  sim::FaultWindow window;
  window.start = SimTime::Origin() + Duration::Seconds(10);
  window.end = SimTime::Origin() + Duration::Seconds(20);
  config.faults.origin = {window};
  SpeedKitStack stack(config);

  EXPECT_TRUE(stack.origin().available());
  stack.AdvanceTo(SimTime::Origin() + Duration::Seconds(15));
  EXPECT_FALSE(stack.origin().available());
  stack.AdvanceTo(SimTime::Origin() + Duration::Seconds(21));
  EXPECT_TRUE(stack.origin().available());
}

TEST(StackTest, EdgeOutageWindowTogglesEdgeAvailability) {
  StackConfig config;
  sim::FaultWindow window;
  window.start = SimTime::Origin() + Duration::Seconds(10);
  window.end = SimTime::Origin() + Duration::Seconds(20);
  config.faults.edges = {{window}};  // edge 0 only
  SpeedKitStack stack(config);

  EXPECT_TRUE(stack.cdn().EdgeAvailable(0));
  stack.AdvanceTo(SimTime::Origin() + Duration::Seconds(15));
  EXPECT_FALSE(stack.cdn().EdgeAvailable(0));
  EXPECT_TRUE(stack.cdn().EdgeAvailable(1));  // unscheduled edges unaffected
  stack.AdvanceTo(SimTime::Origin() + Duration::Seconds(21));
  EXPECT_TRUE(stack.cdn().EdgeAvailable(0));
}

}  // namespace
}  // namespace speedkit::core
