#include "core/replay.h"

#include <gtest/gtest.h>

#include "core/bounce.h"

namespace speedkit::core {
namespace {

workload::CatalogConfig SmallCatalog() {
  workload::CatalogConfig config;
  config.num_products = 100;
  config.num_categories = 5;
  return config;
}

std::unique_ptr<SpeedKitStack> MakeStack(SystemVariant variant) {
  StackConfig config;
  config.variant = variant;
  config.seed = 11;
  auto stack = std::make_unique<SpeedKitStack>(config);
  return stack;
}

void Prepare(SpeedKitStack& stack, const workload::Catalog& catalog) {
  catalog.Populate(&stack.store(), stack.clock().Now());
  for (int c = 0; c < catalog.num_categories(); ++c) {
    (void)stack.origin().RegisterQuery(catalog.CategoryQuery(c));
    if (stack.pipeline() != nullptr) {
      (void)stack.pipeline()->WatchQuery(catalog.CategoryQuery(c),
                                         catalog.CategoryUrl(c));
    }
  }
  stack.Advance(Duration::Seconds(5));
}

TEST(ReplayTest, SynthesizedTraceHasFetchesAndWrites) {
  workload::Catalog catalog(SmallCatalog(), Pcg32(1));
  workload::Trace trace =
      SynthesizeTrace(catalog, 5, Duration::Minutes(5), 1.0, 42);
  ASSERT_GT(trace.size(), 50u);
  size_t fetches = 0;
  size_t writes = 0;
  SimTime prev;
  for (const auto& ev : trace.events()) {
    EXPECT_GE(ev.at, prev);  // sorted
    prev = ev.at;
    if (ev.kind == workload::TraceEvent::Kind::kFetch) {
      ++fetches;
    } else {
      ++writes;
    }
  }
  EXPECT_GT(fetches, 20u);
  EXPECT_NEAR(static_cast<double>(writes), 300.0, 90.0);  // 1/s for 5 min
}

TEST(ReplayTest, SynthesisIsDeterministic) {
  workload::Catalog catalog(SmallCatalog(), Pcg32(1));
  workload::Trace a = SynthesizeTrace(catalog, 5, Duration::Minutes(2), 1.0, 7);
  workload::Trace b = SynthesizeTrace(catalog, 5, Duration::Minutes(2), 1.0, 7);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  workload::Trace c = SynthesizeTrace(catalog, 5, Duration::Minutes(2), 1.0, 8);
  EXPECT_NE(a.Serialize(), c.Serialize());
}

TEST(ReplayTest, ReplayIsDeterministicAcrossStacks) {
  workload::Catalog catalog(SmallCatalog(), Pcg32(1));
  workload::Trace trace =
      SynthesizeTrace(catalog, 5, Duration::Minutes(5), 1.0, 42);
  auto run = [&]() {
    auto stack = MakeStack(SystemVariant::kSpeedKit);
    Prepare(*stack, catalog);
    TraceReplayer replayer(stack.get());
    return replayer.Replay(trace).Fingerprint();
  };
  EXPECT_EQ(run(), run());
}

TEST(ReplayTest, SerializedTraceReplaysIdentically) {
  workload::Catalog catalog(SmallCatalog(), Pcg32(1));
  workload::Trace trace =
      SynthesizeTrace(catalog, 3, Duration::Minutes(3), 1.0, 42);
  auto restored = workload::Trace::Deserialize(trace.Serialize());
  ASSERT_TRUE(restored.ok());

  auto run = [&](const workload::Trace& t) {
    auto stack = MakeStack(SystemVariant::kSpeedKit);
    Prepare(*stack, catalog);
    TraceReplayer replayer(stack.get());
    return replayer.Replay(t).Fingerprint();
  };
  EXPECT_EQ(run(trace), run(*restored));
}

TEST(ReplayTest, SameTraceDifferentVariantsDiverge) {
  workload::Catalog catalog(SmallCatalog(), Pcg32(1));
  workload::Trace trace =
      SynthesizeTrace(catalog, 5, Duration::Minutes(5), 1.0, 42);

  auto run = [&](SystemVariant variant) {
    auto stack = MakeStack(variant);
    Prepare(*stack, catalog);
    TraceReplayer replayer(stack.get());
    return replayer.Replay(trace);
  };
  ReplayResult sk = run(SystemVariant::kSpeedKit);
  ReplayResult none = run(SystemVariant::kNoCaching);
  EXPECT_EQ(sk.fetches, none.fetches);  // identical request stream
  EXPECT_EQ(sk.writes, none.writes);
  EXPECT_GT(sk.proxies.browser_hits, none.proxies.browser_hits);
  EXPECT_LT(sk.latency_us.Mean(), none.latency_us.Mean());
}

TEST(ReplayTest, ErrorsCountedForUnknownUrls) {
  workload::Catalog catalog(SmallCatalog(), Pcg32(1));
  auto stack = MakeStack(SystemVariant::kSpeedKit);
  Prepare(*stack, catalog);
  workload::Trace trace;
  trace.AddFetch(stack->clock().Now() + Duration::Seconds(1), 1,
                 "https://shop.example.com/api/records/ghost");
  TraceReplayer replayer(stack.get());
  ReplayResult result = replayer.Replay(trace);
  EXPECT_EQ(result.fetches, 1u);
  EXPECT_EQ(result.errors, 1u);
}

TEST(ReplayTest, MalformedUrlInTraceCountsAsErrorWithoutCrashing) {
  workload::Catalog catalog(SmallCatalog(), Pcg32(1));
  auto stack = MakeStack(SystemVariant::kSpeedKit);
  Prepare(*stack, catalog);
  workload::Trace trace;
  trace.AddFetch(stack->clock().Now() + Duration::Seconds(1), 1, "not a url");
  trace.AddFetch(stack->clock().Now() + Duration::Seconds(2), 1,
                 catalog.ProductUrl(0));
  TraceReplayer replayer(stack.get());
  ReplayResult result = replayer.Replay(trace);
  EXPECT_EQ(result.fetches, 2u);
  // The bad URL lands in the error count (both the proxy's and the
  // replayer's own staleness-tracking guard) and the good one still works.
  EXPECT_GE(result.errors, 1u);
  EXPECT_GE(result.proxies.browser_hits + result.proxies.edge_hits +
                result.proxies.origin_fetches,
            1u);
}

TEST(BounceModelTest, CurveShape) {
  BounceModel model(Duration::Seconds(3), 1.4);
  // Half the users bounce at the tolerance point.
  EXPECT_NEAR(model.BounceProbability(Duration::Seconds(3)), 0.5, 1e-9);
  // Fast pages rarely bounce; slow pages almost always.
  EXPECT_LT(model.BounceProbability(Duration::Millis(500)), 0.05);
  EXPECT_GT(model.BounceProbability(Duration::Seconds(8)), 0.97);
  // Monotone.
  double prev = 0;
  for (int ms = 0; ms <= 10000; ms += 250) {
    double p = model.BounceProbability(Duration::Millis(ms));
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(BounceModelTest, ToleranceShiftsCurve) {
  BounceModel strict(Duration::Seconds(1));
  BounceModel lax(Duration::Seconds(5));
  Duration load = Duration::Seconds(2);
  EXPECT_GT(strict.BounceProbability(load), lax.BounceProbability(load));
}

}  // namespace
}  // namespace speedkit::core
