// Concurrent-miss semantics at the edge (StackConfig::origin_flight).
// kInstant is the legacy instantaneous-store model; kHerd models the
// in-flight window honestly (a second miss stampedes to the origin);
// kCoalesce adds single-flight collapsing — the second client joins the
// leader's flight and the origin sees ONE request. This is the simulator
// adopting the exact mechanism speedkit_edged runs over real sockets.
#include <string>

#include <gtest/gtest.h>

#include "cache/cdn.h"
#include "core/stack.h"
#include "http/url.h"
#include "proxy/client_pool.h"
#include "proxy/client_proxy.h"
#include "workload/catalog.h"

namespace speedkit::core {
namespace {

struct FlightWorld {
  explicit FlightWorld(cache::OriginFlightMode mode) {
    StackConfig config;
    config.seed = 42;
    config.cdn_edges = 1;  // both clients share the one edge
    config.origin_flight = mode;
    stack = std::make_unique<SpeedKitStack>(config);
    workload::CatalogConfig catalog_config;
    catalog_config.num_products = 50;
    workload::Catalog catalog(catalog_config, stack->ForkRng(0xca7a10a));
    catalog.Populate(&stack->store(), stack->clock().Now());
    url = *http::Url::Parse(catalog.ProductUrl(0));
    // Step past the populate transient (cold TTL estimator + sketch churn)
    // so the fetches below behave like steady-state traffic.
    stack->Advance(Duration::Seconds(1));
    pool = stack->MakeClientPool(proxy::ClientPoolConfig{});
    a = pool->MakeClient(stack->DefaultProxyConfig(), 1);
    b = pool->MakeClient(stack->DefaultProxyConfig(), 2);
  }

  std::unique_ptr<SpeedKitStack> stack;
  std::unique_ptr<proxy::ClientPool> pool;
  proxy::ClientProxy* a = nullptr;
  proxy::ClientProxy* b = nullptr;
  http::Url url;
};

TEST(OriginFlightTest, CoalesceCollapsesTheSecondMissIntoTheFlight) {
  FlightWorld w(cache::OriginFlightMode::kCoalesce);

  // A misses cold: it leads the flight and pays the full origin trip.
  proxy::FetchResult first = w.a->Fetch(w.url);
  ASSERT_EQ(first.source, proxy::ServedFrom::kOrigin);
  EXPECT_EQ(w.stack->cdn().flights_started(), 1u);

  // B asks for the same key at the same instant — inside A's window. It
  // joins the flight instead of stampeding: served via the edge, charged
  // the remaining window, and the origin never hears about it.
  proxy::FetchResult second = w.b->Fetch(w.url);
  EXPECT_EQ(second.source, proxy::ServedFrom::kEdgeCache);
  EXPECT_EQ(w.stack->cdn().flight_joins(), 1u);
  EXPECT_EQ(w.stack->origin().stats().requests, 1u);
  // The join waits out the leader's flight: strictly slower than the
  // post-window edge hit measured below.
  w.stack->Advance(Duration::Seconds(2));  // well past the flight window
  proxy::FetchResult later = w.b->Fetch(w.url);
  if (later.source == proxy::ServedFrom::kEdgeCache) {
    EXPECT_GT(second.latency, later.latency);
  }
  EXPECT_EQ(w.stack->cdn().flight_joins(), 1u);  // no window, no join
}

TEST(OriginFlightTest, HerdModeStampedesToTheOrigin) {
  FlightWorld w(cache::OriginFlightMode::kHerd);

  ASSERT_EQ(w.a->Fetch(w.url).source, proxy::ServedFrom::kOrigin);
  // The honest no-collapsing baseline: B's miss during the window goes to
  // the origin too — the thundering herd kCoalesce exists to remove.
  proxy::FetchResult second = w.b->Fetch(w.url);
  EXPECT_EQ(second.source, proxy::ServedFrom::kOrigin);
  EXPECT_EQ(w.stack->origin().stats().requests, 2u);
  EXPECT_EQ(w.stack->cdn().herd_fetches(), 1u);
  EXPECT_EQ(w.stack->cdn().flight_joins(), 0u);
}

TEST(OriginFlightTest, InstantModeKeepsTheLegacyInstantaneousStore) {
  FlightWorld w(cache::OriginFlightMode::kInstant);

  ASSERT_EQ(w.a->Fetch(w.url).source, proxy::ServedFrom::kOrigin);
  // Legacy semantics: the edge copy exists the moment the leader's fetch
  // completes, with no flight bookkeeping at all.
  EXPECT_EQ(w.b->Fetch(w.url).source, proxy::ServedFrom::kEdgeCache);
  EXPECT_EQ(w.stack->origin().stats().requests, 1u);
  EXPECT_EQ(w.stack->cdn().flights_started(), 0u);
  EXPECT_EQ(w.stack->cdn().flight_joins(), 0u);
  EXPECT_EQ(w.stack->cdn().herd_fetches(), 0u);
}

TEST(OriginFlightTest, CoalesceAndHerdAgreeOnceTheWindowPasses) {
  // The modes only differ DURING a flight window. Sequential traffic —
  // each request after the previous one's window — behaves identically.
  for (cache::OriginFlightMode mode :
       {cache::OriginFlightMode::kCoalesce, cache::OriginFlightMode::kHerd}) {
    FlightWorld w(mode);
    ASSERT_EQ(w.a->Fetch(w.url).source, proxy::ServedFrom::kOrigin);
    w.stack->Advance(Duration::Seconds(2));
    EXPECT_EQ(w.b->Fetch(w.url).source, proxy::ServedFrom::kEdgeCache)
        << cache::OriginFlightModeName(mode);
    EXPECT_EQ(w.stack->origin().stats().requests, 1u)
        << cache::OriginFlightModeName(mode);
  }
}

}  // namespace
}  // namespace speedkit::core
