#include "core/fleet.h"

#include <gtest/gtest.h>

#include "core/stack.h"

namespace speedkit::core {
namespace {

TEST(StackConfigValidateTest, DefaultConfigIsValid) {
  StackConfig config;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(StackConfigValidateTest, RejectsNonPositiveEdgeCount) {
  StackConfig config;
  config.cdn_edges = 0;
  Status s = config.Validate();
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(StackConfigValidateTest, RejectsNonPositiveShards) {
  StackConfig config;
  config.shards = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
}

TEST(StackConfigValidateTest, RejectsShardsNotDividingEdges) {
  StackConfig config;
  config.cdn_edges = 4;
  config.shards = 3;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.shards = 4;
  EXPECT_TRUE(config.Validate().ok());
  config.shards = 2;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(StackConfigValidateTest, RejectsSketchFprOutOfRange) {
  StackConfig config;
  config.coherence.sketch_fpr = 0.0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.coherence.sketch_fpr = 0.6;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  config.coherence.sketch_fpr = 0.5;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(StackConfigValidateTest, RejectsZeroSketchCapacityForSpeedKit) {
  StackConfig config;
  config.coherence.sketch_capacity = 0;
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
  // Variants without a sketch don't need a capacity.
  config.variant = SystemVariant::kFixedTtlCdn;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(StackConfigValidateTest, RejectsNonPositiveDelta) {
  StackConfig config;
  config.coherence.delta = Duration::Zero();
  EXPECT_TRUE(config.Validate().IsInvalidArgument());
}

TEST(ShardOfClientTest, PartitionMatchesFleetOwnership) {
  StackConfig config;
  config.cdn_edges = 8;
  config.shards = 4;
  ShardedFleet fleet(config);
  ASSERT_EQ(fleet.shards(), 4);
  for (uint64_t client = 1; client <= 500; ++client) {
    int owner = ShardOfClient(client, config.cdn_edges, config.shards);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 4);
    // Exactly the owning shard claims the client, and nobody else.
    for (int s = 0; s < fleet.shards(); ++s) {
      EXPECT_EQ(fleet.shard(s).OwnsClient(client), s == owner)
          << "client " << client << " shard " << s;
    }
  }
}

TEST(ShardOfClientTest, SingleShardOwnsEverything) {
  for (uint64_t client = 1; client <= 100; ++client) {
    EXPECT_EQ(ShardOfClient(client, 4, 1), 0);
  }
}

http::HttpResponse CacheableResponse() {
  http::HttpResponse resp;
  resp.status_code = 200;
  resp.body = "x";
  resp.headers.Set("Cache-Control", "public, max-age=600");
  resp.generated_at = SimTime::Origin();
  return resp;
}

TEST(ShardedFleetTest, RemotePurgeAppliesAtOwnersNextCoherenceBoundary) {
  StackConfig config;
  config.cdn_edges = 4;
  config.shards = 2;
  config.coherence.delta = Duration::Seconds(30);
  ShardedFleet fleet(config);
  SpeedKitStack& s0 = fleet.shard(0);
  SpeedKitStack& s1 = fleet.shard(1);

  // The owner (shard 1) caches a key on physical edge 1 (its local 0).
  s1.cdn().edge(0).Store("k", CacheableResponse(), s1.clock().Now());

  // A non-owner posts the purge through the mailbox grid.
  s0.cdn().PostRemotePurge(/*physical=*/1, "k", s0.clock().Now());
  EXPECT_EQ(s0.cdn().remote_purges_posted(), 1u);

  // The SENDER crossing its own boundaries never applies the note...
  s0.Advance(Duration::Seconds(90));
  EXPECT_EQ(s1.cdn().edge(0).Lookup("k", s1.clock().Now()).outcome,
            cache::LookupOutcome::kFreshHit);

  // ...and neither does the owner BEFORE its boundary...
  s1.Advance(Duration::Seconds(10));
  EXPECT_EQ(s1.cdn().edge(0).Lookup("k", s1.clock().Now()).outcome,
            cache::LookupOutcome::kFreshHit);
  EXPECT_EQ(s1.cdn().remote_purges_drained(), 0u);

  // ...but the owner's first Δ boundary (t = 30s) drains the batch.
  s1.Advance(Duration::Seconds(25));
  EXPECT_EQ(s1.cdn().remote_purges_drained(), 1u);
  EXPECT_EQ(s1.cdn().remote_purges_effective(), 1u);
  EXPECT_EQ(s1.cdn().edge(0).Lookup("k", s1.clock().Now()).outcome,
            cache::LookupOutcome::kMiss);
}

TEST(ShardedFleetTest, ShardsShareOnePhysicalEdgeTier) {
  StackConfig config;
  config.cdn_edges = 6;
  config.shards = 3;
  ShardedFleet fleet(config);
  EXPECT_EQ(fleet.edge_map()->num_edges(), 6);
  for (int s = 0; s < fleet.shards(); ++s) {
    EXPECT_EQ(fleet.shard(s).shard(), s);
    EXPECT_EQ(fleet.shard(s).cdn().num_edges(), 2);
    EXPECT_EQ(fleet.shard(s).cdn().physical_edges(), 6);
  }
}

}  // namespace
}  // namespace speedkit::core
