#include "core/page_load.h"

#include <gtest/gtest.h>

#include "core/stack.h"

namespace speedkit::core {
namespace {

class PageLoadTest : public ::testing::Test {
 protected:
  PageLoadTest() : stack_(MakeConfig()), catalog_(CatalogConfig(), Pcg32(1)) {
    catalog_.Populate(&stack_.store(), stack_.clock().Now());
    for (int c = 0; c < catalog_.num_categories(); ++c) {
      EXPECT_TRUE(
          stack_.origin().RegisterQuery(catalog_.CategoryQuery(c)).ok());
    }
    // Population writes sit in the sketch until their purge horizon; let
    // the system quiesce so load-time arithmetic is clean.
    stack_.Advance(Duration::Seconds(5));
  }

  // Per-request service-worker interception cost in the default config.
  Duration Overhead() { return stack_.DefaultProxyConfig().device_overhead; }

  static StackConfig MakeConfig() {
    StackConfig config;
    // Deterministic latencies so load-time arithmetic is checkable.
    config.network.client_edge = sim::LinkSpec{Duration::Millis(20), 0.0, 0.0};
    config.network.client_origin =
        sim::LinkSpec{Duration::Millis(100), 0.0, 0.0};
    config.network.edge_origin = sim::LinkSpec{Duration::Millis(80), 0.0, 0.0};
    return config;
  }

  static workload::CatalogConfig CatalogConfig() {
    workload::CatalogConfig config;
    config.num_products = 100;
    return config;
  }

  SpeedKitStack stack_;
  workload::Catalog catalog_;
};

TEST_F(PageLoadTest, ColdLoadSlowerThanWarmLoad) {
  auto client = stack_.MakeClient(1);
  PageLoader loader;
  PageSpec page = MakeProductPage(catalog_, 5, 8, 4);
  PageLoadResult cold = loader.Load(*client, page);
  PageLoadResult warm = loader.Load(*client, page);
  EXPECT_GT(cold.load_time, warm.load_time);
  EXPECT_EQ(warm.served_from_cache, warm.resources);
  EXPECT_EQ(cold.errors, 0);
}

TEST_F(PageLoadTest, TtfbIsShellLatency) {
  auto client = stack_.MakeClient(1);
  PageLoader loader;
  PageSpec page = MakeHomePage(4);
  PageLoadResult cold = loader.Load(*client, page);
  // Cold shell: edge miss path (20 + 80) + shell render time + overhead;
  // the sketch refresh (20 ms) overlaps the in-flight request.
  EXPECT_EQ(cold.ttfb, Duration::Millis(100) +
                           origin::OriginConfig{}.shell_render_time +
                           Overhead());
  EXPECT_GT(cold.load_time, cold.ttfb);
}

TEST_F(PageLoadTest, ParallelismCapsConcurrentDownloads) {
  auto client = stack_.MakeClient(1);
  // 12 identical sub-resources over 6 connections: two waves.
  PageSpec page = MakeHomePage(12);
  PageLoader loader(6);
  PageLoadResult cold = loader.Load(*client, page);
  // Each cold sub-resource costs 100ms + asset render + overhead (edge
  // miss; sketch fresh after shell): 12 resources / 6 connections = 2
  // waves.
  EXPECT_EQ(cold.load_time - cold.ttfb,
            (Duration::Millis(100) +
             origin::OriginConfig{}.asset_render_time + Overhead()) *
                2.0);
}

TEST_F(PageLoadTest, SingleConnectionSerializes) {
  auto client = stack_.MakeClient(1);
  PageSpec page = MakeHomePage(4);
  PageLoader loader(1);
  PageLoadResult cold = loader.Load(*client, page);
  EXPECT_EQ(cold.load_time - cold.ttfb,
            (Duration::Millis(100) +
             origin::OriginConfig{}.asset_render_time + Overhead()) *
                4.0);
}

TEST_F(PageLoadTest, ProductPageCarriesApiVersion) {
  auto client = stack_.MakeClient(1);
  PageLoader loader;
  PageSpec page = MakeProductPage(catalog_, 7, 2, 1);
  PageLoadResult r = loader.Load(*client, page);
  EXPECT_EQ(r.object_version, 1u);  // freshly populated catalog
}

TEST_F(PageLoadTest, PersonalizedBlocksAreCountedAsResources) {
  auto client = stack_.MakeClient(1);
  personalization::PageTemplate tpl;
  tpl.url = "https://shop.example.com/pages/home";
  tpl.blocks = {
      {"banner", personalization::BlockScope::kStatic, 1024},
      {"recs", personalization::BlockScope::kSegment, 2048},
  };
  personalization::Segmenter segmenter(4);
  PageSpec page = MakeHomePage(2);
  page.page_template = &tpl;
  page.segmenter = &segmenter;
  PageLoader loader;
  PageLoadResult r = loader.Load(*client, page);
  EXPECT_EQ(r.resources, 1 + 2 + 2);  // shell + assets + blocks
}

TEST_F(PageLoadTest, PageBuildersProduceDistinctResources) {
  PageSpec home = MakeHomePage(3);
  PageSpec cat = MakeCategoryPage(catalog_, 2, 3, 5);
  PageSpec product = MakeProductPage(catalog_, 9, 3, 2);
  EXPECT_EQ(home.resource_urls.size(), 3u);
  EXPECT_EQ(cat.resource_urls.size(), 3u + 1 + 5);
  EXPECT_EQ(product.resource_urls.size(), 3u + 2 + 2);
  EXPECT_NE(home.shell_url, cat.shell_url);
  // Category page references the query result URL.
  bool has_query = false;
  for (const auto& url : cat.resource_urls) {
    if (url.find("/api/queries/") != std::string::npos) has_query = true;
  }
  EXPECT_TRUE(has_query);
}

}  // namespace
}  // namespace speedkit::core
