#include "core/traffic.h"

#include <gtest/gtest.h>

namespace speedkit::core {
namespace {

workload::CatalogConfig SmallCatalog() {
  workload::CatalogConfig config;
  config.num_products = 200;
  config.num_categories = 10;
  return config;
}

TrafficConfig ShortTraffic() {
  TrafficConfig config;
  config.num_clients = 10;
  config.duration = Duration::Minutes(5);
  config.writes_per_sec = 1.0;
  return config;
}

TEST(TrafficSimulationTest, GeneratesTrafficAndWrites) {
  StackConfig config;
  SpeedKitStack stack(config);
  workload::Catalog catalog(SmallCatalog(), Pcg32(1));
  catalog.Populate(&stack.store(), stack.clock().Now());
  for (int c = 0; c < catalog.num_categories(); ++c) {
    ASSERT_TRUE(stack.origin().RegisterQuery(catalog.CategoryQuery(c)).ok());
  }
  TrafficSimulation sim(&stack, &catalog, ShortTraffic());
  TrafficResult result = sim.Run();
  EXPECT_GT(result.page_views, 50u);
  EXPECT_GT(result.writes_applied, 200u);  // ~300 expected at 1/s for 5min
  EXPECT_GT(result.proxies.requests, 0u);
  EXPECT_GT(result.api_latency_us.count(), 0u);
  // Clock advanced the full duration.
  EXPECT_EQ(stack.clock().Now().seconds(), 300.0);
}

TEST(TrafficSimulationTest, CachingProducesHits) {
  StackConfig config;
  SpeedKitStack stack(config);
  workload::Catalog catalog(SmallCatalog(), Pcg32(1));
  catalog.Populate(&stack.store(), stack.clock().Now());
  TrafficConfig traffic = ShortTraffic();
  traffic.writes_per_sec = 0.1;  // mostly-read workload
  TrafficSimulation sim(&stack, &catalog, traffic);
  TrafficResult result = sim.Run();
  EXPECT_GT(result.BrowserHitRatio() + result.EdgeHitRatio(), 0.2);
  EXPECT_LT(result.OriginRatio(), 0.8);
}

TEST(TrafficSimulationTest, NoCachingBaselineAlwaysHitsOrigin) {
  StackConfig config;
  config.variant = SystemVariant::kNoCaching;
  SpeedKitStack stack(config);
  workload::Catalog catalog(SmallCatalog(), Pcg32(1));
  catalog.Populate(&stack.store(), stack.clock().Now());
  TrafficSimulation sim(&stack, &catalog, ShortTraffic());
  TrafficResult result = sim.Run();
  EXPECT_EQ(result.proxies.browser_hits, 0u);
  EXPECT_EQ(result.proxies.edge_hits, 0u);
  EXPECT_GT(result.proxies.origin_fetches, 0u);
}

TEST(TrafficSimulationTest, DeterministicForSameSeed) {
  auto run = [] {
    StackConfig config;
    config.seed = 7;
    SpeedKitStack stack(config);
    workload::Catalog catalog(SmallCatalog(), Pcg32(1));
    catalog.Populate(&stack.store(), stack.clock().Now());
    TrafficSimulation sim(&stack, &catalog, ShortTraffic());
    TrafficResult result = sim.Run();
    return std::make_tuple(result.page_views, result.writes_applied,
                           result.proxies.browser_hits,
                           result.api_latency_us.count(),
                           result.api_latency_us.max());
  };
  EXPECT_EQ(run(), run());
}

TEST(TrafficSimulationTest, SpeedKitReducesOriginLoadVsNoCache) {
  auto origin_requests = [](SystemVariant variant) {
    StackConfig config;
    config.variant = variant;
    SpeedKitStack stack(config);
    workload::Catalog catalog(SmallCatalog(), Pcg32(1));
    catalog.Populate(&stack.store(), stack.clock().Now());
    TrafficSimulation sim(&stack, &catalog, ShortTraffic());
    sim.Run();
    return stack.origin().stats().requests;
  };
  EXPECT_LT(origin_requests(SystemVariant::kSpeedKit),
            origin_requests(SystemVariant::kNoCaching));
}

}  // namespace
}  // namespace speedkit::core
