#include "obs/trace.h"

#include <gtest/gtest.h>

#include "bench/workload_runner.h"
#include "cache/cdn.h"
#include "proxy/client_proxy.h"

namespace speedkit::obs {
namespace {

TEST(TraceBuilderTest, InactiveWithNullTracer) {
  TraceBuilder b;
  b.Begin(nullptr, kTraceKindRequest, "/p/1", SimTime());
  EXPECT_FALSE(b.active());
  EXPECT_EQ(b.AddSpan("net.client_edge", kTierNetwork, Duration::Millis(5)),
            -1);
}

TEST(TraceBuilderTest, InactiveWithDisabledTracer) {
  Tracer tracer;  // default-constructed = null sink = disabled
  EXPECT_FALSE(tracer.enabled());
  TraceBuilder b;
  b.Begin(&tracer, kTraceKindRequest, "/p/1", SimTime());
  EXPECT_FALSE(b.active());
}

TEST(TraceBuilderTest, AddSpanLaysLegsEndToEnd) {
  InMemoryTraceSink sink;
  Tracer tracer(&sink);
  TraceBuilder b;
  b.Begin(&tracer, kTraceKindRequest, "/p/1", SimTime() + Duration::Seconds(3));
  EXPECT_TRUE(b.active());
  int first = b.AddSpan("proxy.overhead", kTierProxy, Duration::Millis(1));
  int second =
      b.AddSpan("net.client_edge", kTierNetwork, Duration::Millis(20), first);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  b.Finish(kTierEdge, 200, false, Duration::Millis(21));

  ASSERT_EQ(sink.traces().size(), 1u);
  const RequestTrace& t = sink.traces()[0];
  EXPECT_EQ(t.kind, kTraceKindRequest);
  EXPECT_EQ(t.url, "/p/1");
  EXPECT_EQ(t.start_us, Duration::Seconds(3).micros());
  EXPECT_EQ(t.tier, kTierEdge);
  EXPECT_EQ(t.latency_us, Duration::Millis(21).micros());
  ASSERT_EQ(t.spans.size(), 2u);
  EXPECT_EQ(t.spans[0].start_us, 0);
  EXPECT_EQ(t.spans[0].duration_us, Duration::Millis(1).micros());
  // The cursor advanced: the second leg starts where the first ended,
  // and carries the first as its parent.
  EXPECT_EQ(t.spans[1].start_us, Duration::Millis(1).micros());
  EXPECT_EQ(t.spans[1].parent, 0);
}

TEST(TraceBuilderTest, AddSpanAtDoesNotMoveCursor) {
  InMemoryTraceSink sink;
  Tracer tracer(&sink);
  TraceBuilder b;
  b.Begin(&tracer, kTraceKindPurge, "key", SimTime());
  // Parallel fan-out: both deliveries start at the same offset.
  b.AddSpanAt("purge.deliver", kTierPurge, Duration::Millis(2),
              Duration::Millis(10));
  b.AddSpanAt("purge.deliver", kTierPurge, Duration::Millis(2),
              Duration::Millis(30));
  int serial = b.AddSpan("after", kTierPurge, Duration::Millis(1));
  b.Finish(kTierPurge, 0, false, Duration::Millis(32));

  ASSERT_EQ(sink.traces().size(), 1u);
  const RequestTrace& t = sink.traces()[0];
  ASSERT_EQ(t.spans.size(), 3u);
  EXPECT_EQ(t.spans[0].start_us, t.spans[1].start_us);
  // AddSpanAt left the cursor at 0, so the serial span starts there.
  EXPECT_EQ(serial, 2);
  EXPECT_EQ(t.spans[2].start_us, 0);
}

TEST(TraceBuilderTest, AbandonEmitsNothing) {
  InMemoryTraceSink sink;
  Tracer tracer(&sink);
  TraceBuilder b;
  b.Begin(&tracer, kTraceKindRequest, "/p/1", SimTime());
  b.AddSpan("proxy.overhead", kTierProxy, Duration::Millis(1));
  b.Abandon();
  EXPECT_FALSE(b.active());
  EXPECT_EQ(sink.emitted(), 0u);
}

TEST(InMemoryTraceSinkTest, CapCountsDropsInsteadOfLosingThemSilently) {
  InMemoryTraceSink sink(/*max_traces=*/2);
  Tracer tracer(&sink);
  for (int i = 0; i < 5; ++i) {
    TraceBuilder b;
    b.Begin(&tracer, kTraceKindRequest, "/p", SimTime());
    b.Finish(kTierEdge, 200, false, Duration::Millis(1));
  }
  EXPECT_EQ(sink.traces().size(), 2u);
  EXPECT_EQ(sink.emitted(), 5u);
  EXPECT_EQ(sink.dropped(), 3u);
}

// --- end-to-end determinism -----------------------------------------------

bench::RunSpec TracedSpec(bool tracing, bool metrics) {
  bench::RunSpec spec = bench::DefaultRunSpec();
  // Small run: the properties under test are structural, not statistical.
  spec.traffic.num_clients = 5;
  spec.traffic.duration = Duration::Minutes(2);
  spec.stack.obs.tracing = tracing;
  spec.stack.obs.metrics = metrics;
  return spec;
}

TEST(TraceDeterminismTest, SameSeedSameSpanTree) {
  bench::RunOutput a = bench::RunWorkload(TracedSpec(true, false));
  bench::RunOutput b = bench::RunWorkload(TracedSpec(true, false));
  ASSERT_NE(a.traces, nullptr);
  ASSERT_NE(b.traces, nullptr);
  ASSERT_EQ(a.traces->traces().size(), b.traces->traces().size());
  // RequestTrace/Span have defaulted operator== — the whole tree must match.
  EXPECT_EQ(a.traces->traces(), b.traces->traces());
}

TEST(TraceDeterminismTest, TracingOnOffIdenticalResults) {
  bench::RunOutput off = bench::RunWorkload(TracedSpec(false, false));
  bench::RunOutput on = bench::RunWorkload(TracedSpec(true, true));
  EXPECT_EQ(off.traces, nullptr);
  ASSERT_NE(on.traces, nullptr);

  const proxy::ProxyStats& po = off.traffic.proxies;
  const proxy::ProxyStats& pt = on.traffic.proxies;
  EXPECT_EQ(po.requests, pt.requests);
  EXPECT_EQ(po.browser_hits, pt.browser_hits);
  EXPECT_EQ(po.edge_hits, pt.edge_hits);
  EXPECT_EQ(po.origin_fetches, pt.origin_fetches);
  EXPECT_EQ(po.swr_serves, pt.swr_serves);
  EXPECT_EQ(po.offline_serves, pt.offline_serves);
  EXPECT_EQ(po.errors, pt.errors);
  EXPECT_EQ(po.bytes_over_network, pt.bytes_over_network);
  EXPECT_EQ(po.latency_ok_us.count(), pt.latency_ok_us.count());
  EXPECT_EQ(po.latency_ok_us.Sum(), pt.latency_ok_us.Sum());
  EXPECT_EQ(off.staleness.reads, on.staleness.reads);
  EXPECT_EQ(off.staleness.stale_reads, on.staleness.stale_reads);
  EXPECT_EQ(off.origin_requests, on.origin_requests);
  EXPECT_EQ(off.pipeline.purges_effective, on.pipeline.purges_effective);
}

TEST(TraceDeterminismTest, OneRequestTracePerServedRequest) {
  bench::RunOutput out = bench::RunWorkload(TracedSpec(true, false));
  ASSERT_NE(out.traces, nullptr);
  EXPECT_EQ(out.traces->dropped(), 0u);

  uint64_t request_traces = 0;
  uint64_t purge_traces = 0;
  for (const RequestTrace& t : out.traces->traces()) {
    if (t.kind == kTraceKindPurge) {
      EXPECT_EQ(t.tier, kTierPurge);
      ++purge_traces;
    } else {
      EXPECT_EQ(t.kind, kTraceKindRequest);
      ++request_traces;
    }
  }
  EXPECT_EQ(request_traces, out.traffic.proxies.ServedTotal());
  EXPECT_GT(purge_traces, 0u);  // the SpeedKit variant purges on writes
}

TEST(TraceDeterminismTest, MetricsSnapshotMatchesStatsStructs) {
  bench::RunOutput out = bench::RunWorkload(TracedSpec(false, true));
  ASSERT_NE(out.metrics, nullptr);
  const Metric* requests = out.metrics->Find("proxy.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->counter, out.traffic.proxies.requests);
  const Metric* edge_serves = out.metrics->Find("proxy.serves", "tier=edge");
  ASSERT_NE(edge_serves, nullptr);
  EXPECT_EQ(edge_serves->counter, out.traffic.proxies.edge_hits);
  const Metric* latency =
      out.metrics->Find("request.latency_us", "fault=ok");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->histogram.count(),
            out.traffic.proxies.latency_ok_us.count());
}

// --- merge paths (the multi-seed aggregation bugfix) -----------------------

TEST(StatsMergeTest, ProxyStatsMergesHistogramsAndDegradedCounters) {
  proxy::ProxyStats a;
  a.requests = 10;
  a.timeouts = 1;
  a.retries = 2;
  a.fallback_serves = 1;
  a.background_revalidations = 3;
  a.latency_edge_us.Add(1000);
  a.latency_ok_us.Add(1000);

  proxy::ProxyStats b;
  b.requests = 5;
  b.timeouts = 4;
  b.retries = 1;
  b.fallback_serves = 2;
  b.background_revalidations = 2;
  b.latency_edge_us.Add(3000);
  b.latency_degraded_us.Add(9000);
  b.latency_ok_us.Add(3000);

  a += b;
  EXPECT_EQ(a.requests, 15u);
  EXPECT_EQ(a.timeouts, 5u);
  EXPECT_EQ(a.retries, 3u);
  EXPECT_EQ(a.fallback_serves, 3u);
  EXPECT_EQ(a.background_revalidations, 5u);
  EXPECT_EQ(a.latency_edge_us.count(), 2u);
  EXPECT_EQ(a.latency_edge_us.max(), 3000);
  EXPECT_EQ(a.latency_degraded_us.count(), 1u);
  EXPECT_EQ(a.latency_ok_us.Sum(), 4000);
}

TEST(StatsMergeTest, EdgeFaultStatsMergesPurgeDelayHistogram) {
  cache::EdgeFaultStats a;
  a.down_rejects = 2;
  a.purges_delayed = 1;
  a.purge_delay_us.Add(500);

  cache::EdgeFaultStats b;
  b.purges_dropped = 3;
  b.purges_delayed = 2;
  b.purge_delay_us.Add(1500);
  b.purge_delay_us.Add(2500);

  a += b;
  EXPECT_EQ(a.down_rejects, 2u);
  EXPECT_EQ(a.purges_dropped, 3u);
  EXPECT_EQ(a.purges_delayed, 3u);
  EXPECT_EQ(a.purge_delay_us.count(), 3u);
  EXPECT_EQ(a.purge_delay_us.max(), 2500);
}

}  // namespace
}  // namespace speedkit::obs
