#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/export.h"
#include "obs/metric_names.h"

namespace speedkit::obs {
namespace {

TEST(MetricsRegistryTest, CounterFindOrCreateIsStable) {
  MetricsRegistry reg;
  uint64_t* c = reg.Counter("proxy.requests");
  EXPECT_EQ(*c, 0u);
  *c += 3;
  EXPECT_EQ(reg.Counter("proxy.requests"), c);
  EXPECT_EQ(*reg.Counter("proxy.requests"), 3u);
}

TEST(MetricsRegistryTest, LabelsAreSeparateSeries) {
  MetricsRegistry reg;
  *reg.Counter("proxy.serves", "tier=browser") = 5;
  *reg.Counter("proxy.serves", "tier=edge") = 7;
  EXPECT_EQ(*reg.Counter("proxy.serves", "tier=browser"), 5u);
  EXPECT_EQ(*reg.Counter("proxy.serves", "tier=edge"), 7u);
  // The empty-label family total is a third, independent series.
  EXPECT_EQ(*reg.Counter("proxy.serves"), 0u);
  EXPECT_EQ(reg.metrics().size(), 3u);
}

TEST(MetricsRegistryTest, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.Find("network.rtt_us"), nullptr);
  reg.Histo("network.rtt_us", "link=client_edge");
  EXPECT_EQ(reg.Find("network.rtt_us"), nullptr);  // different label set
  const Metric* m = reg.Find("network.rtt_us", "link=client_edge");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kHistogram);
  EXPECT_EQ(reg.metrics().size(), 1u);
}

TEST(MetricsRegistryTest, RegistrationOrderIsPreserved) {
  MetricsRegistry reg;
  reg.Counter("b.first");
  reg.Gauge("a.second");
  reg.Histo("c.third");
  ASSERT_EQ(reg.metrics().size(), 3u);
  EXPECT_EQ(reg.metrics()[0]->name, "b.first");
  EXPECT_EQ(reg.metrics()[1]->name, "a.second");
  EXPECT_EQ(reg.metrics()[2]->name, "c.third");
}

TEST(MetricsRegistryDeathTest, KindMismatchDiesLoudly) {
  MetricsRegistry reg;
  reg.Counter("proxy.requests");
  EXPECT_DEATH(reg.Gauge("proxy.requests"), "registered as counter");
}

TEST(MetricsRegistryTest, MergeFromSumsCountersMaxesGaugesMergesHistos) {
  MetricsRegistry a;
  *a.Counter("proxy.requests") = 10;
  *a.Gauge("sketch.entries") = 4;
  a.Histo("request.latency_us")->Add(100);

  MetricsRegistry b;
  *b.Counter("proxy.requests") = 7;
  *b.Gauge("sketch.entries") = 9;
  b.Histo("request.latency_us")->Add(300);
  *b.Counter("proxy.timeouts") = 2;  // absent in a: adopted

  a.MergeFrom(b);
  EXPECT_EQ(*a.Counter("proxy.requests"), 17u);
  EXPECT_EQ(*a.Gauge("sketch.entries"), 9);
  EXPECT_EQ(a.Histo("request.latency_us")->count(), 2u);
  EXPECT_EQ(a.Histo("request.latency_us")->max(), 300);
  EXPECT_EQ(*a.Counter("proxy.timeouts"), 2u);
}

TEST(MetricsRegistryTest, MergeFromGaugeKeepsOwnLargerValue) {
  MetricsRegistry a;
  *a.Gauge("sketch.entries") = 12;
  MetricsRegistry b;
  *b.Gauge("sketch.entries") = 3;
  a.MergeFrom(b);
  EXPECT_EQ(*a.Gauge("sketch.entries"), 12);
}

TEST(MetricsExportTest, MetricsToJsonCarriesEverySeries) {
  MetricsRegistry reg;
  *reg.Counter("proxy.requests") = 41;
  *reg.Gauge("sketch.entries") = 5;
  reg.Histo("request.latency_us", "tier=edge")->Add(2500);
  bench::JsonValue json = MetricsToJson(reg);
  EXPECT_EQ(json.size(), 3u);
  std::string dump = json.Dump();
  EXPECT_NE(dump.find("\"proxy.requests\""), std::string::npos);
  EXPECT_NE(dump.find("41"), std::string::npos);
  EXPECT_NE(dump.find("tier=edge"), std::string::npos);
  EXPECT_NE(dump.find("\"p50\""), std::string::npos);
}

TEST(MetricsExportTest, WriteMetricsJsonAndCsv) {
  MetricsRegistry reg;
  *reg.Counter(kProxyRequests) = 1;
  reg.Histo(kRequestLatencyUs, "tier=origin")->Add(120000);
  const std::string json_path = testing::TempDir() + "metrics_test.json";
  const std::string csv_path = testing::TempDir() + "metrics_test.csv";
  ASSERT_TRUE(WriteMetricsJson(json_path, reg, {{"seed", "42"}}));
  ASSERT_TRUE(WriteMetricsCsv(csv_path, reg));

  std::stringstream json;
  json << std::ifstream(json_path).rdbuf();
  EXPECT_NE(json.str().find("\"seed\": \"42\""), std::string::npos);
  EXPECT_NE(json.str().find("proxy.requests"), std::string::npos);

  std::stringstream csv;
  csv << std::ifstream(csv_path).rdbuf();
  EXPECT_NE(csv.str().find("name,labels,kind"), std::string::npos);
  EXPECT_NE(csv.str().find("request.latency_us,tier=origin,histogram"),
            std::string::npos);
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(MetricsExportTest, TraceCsvQuotesAndMeta) {
  RequestTrace t;
  t.id = 7;
  t.kind = std::string(kTraceKindRequest);
  t.url = "https://x.test/a,b";  // comma forces RFC-4180 quoting
  t.tier = std::string(kTierEdge);
  t.status = 200;
  t.latency_us = 1500;
  Span s;
  s.name = "net.client_edge";
  s.tier = std::string(kTierNetwork);
  s.duration_us = 1500;
  t.spans.push_back(s);

  const std::string path = testing::TempDir() + "trace_test.csv";
  ASSERT_TRUE(WriteTraceCsv(path, {t}, {{"served_total", "1"}}));
  std::stringstream csv;
  csv << std::ifstream(path).rdbuf();
  EXPECT_NE(csv.str().find("# served_total=1"), std::string::npos);
  EXPECT_NE(csv.str().find("\"https://x.test/a,b\""), std::string::npos);
  EXPECT_NE(csv.str().find("span,7,request,0,-1,net.client_edge,network"),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace speedkit::obs
